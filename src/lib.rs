//! # taurus — Near Data Processing in Taurus Database, reproduced in Rust
//!
//! An executable reproduction of *Near Data Processing in Taurus Database*
//! (ICDE 2022): a compute/storage-disaggregated MySQL/InnoDB-style engine
//! whose Page Stores evaluate pushed-down selection, projection and
//! aggregation — plus the full TPC-H evaluation harness that regenerates
//! the paper's figures.
//!
//! ## The query API
//!
//! The public surface is a session-scoped query facade. Callers name
//! tables and columns; NDP pushdown, read-view selection, and
//! partial-aggregate merging are internal decisions — the API-level
//! mirror of the paper's claim that "the MySQL query execution layers
//! above the storage engine are unaware of NDP processing":
//!
//! ```no_run
//! use taurus::prelude::*;
//!
//! # fn demo(db: &std::sync::Arc<TaurusDb>) -> Result<()> {
//! let session = Session::new(db);
//!
//! // Scalar aggregate: AVG pushes down as SUM+COUNT when worthwhile.
//! let rows = session
//!     .query("worker")?
//!     .filter(col("age").lt(40))
//!     .agg(Agg::avg("salary"))
//!     .collect_rows()?;
//!
//! // Streaming scan: rows are pulled from storage on demand; dropping
//! // the stream early stops the scan. No full materialization.
//! for row in session
//!     .query("worker")?
//!     .select(["id", "name"])
//!     .filter(col("age").ge(60))
//!     .stream()?
//!     .take(10)
//! {
//!     println!("{:?}", row?);
//! }
//!
//! // EXPLAIN shows the Listing-2-style NDP annotations and the
//! // optimizer's per-table decision reports.
//! println!("{}", session.query("worker")?.filter(col("age").lt(40)).explain()?);
//! # Ok(()) }
//! ```
//!
//! ## SQL text
//!
//! The same sessions also take SQL directly: [`sql`] is a hand-written
//! lexer + recursive-descent parser and a catalog-aware binder that
//! lowers onto the very same plan layer, so NDP pushdown, columnar
//! execution, and the static plan gate apply to SQL text unchanged. All
//! 22 TPC-H queries are expressible ([`sql::tpch_sql`]) and
//! byte-reproduce the hand-built registry plans; malformed text fails
//! closed with a positioned `Error::Parse`:
//!
//! ```no_run
//! use taurus::prelude::*;
//!
//! # fn demo(db: &std::sync::Arc<TaurusDb>) -> Result<()> {
//! let session = Session::new(db);
//! let rows = session.sql(
//!     "select n_name, count(*) from customer \
//!      join nation on c_nationkey = n_nationkey \
//!      group by n_name order by n_name",
//! )?;
//! // `explain select ...` returns the physical plan, one line per row.
//! # let _ = rows; Ok(()) }
//! ```
//!
//! ## Columnar execution
//!
//! Scans can materialize column-major batches instead of rows
//! (`ClusterConfig::batch_layout`, or `TAURUS_BATCH_LAYOUT=columnar`):
//! filters then evaluate column-at-a-time over typed vectors and carry
//! survivors as selection vectors, on the compute node and inside
//! Page-Store NDP alike. Results are byte-identical in either layout —
//! the query API above is unchanged (see `DESIGN.md`, "Columnar
//! execution"):
//!
//! ```no_run
//! use taurus::prelude::*;
//!
//! let mut cfg = ClusterConfig::default();
//! cfg.batch_layout = BatchLayout::Columnar;
//! let db = TaurusDb::new(cfg);
//! // Sessions, streams, replicas and the wire protocol all behave
//! // identically; only the interchange format inside the pipeline
//! // (and the filter kernels) changed.
//! ```
//!
//! ## Read replicas
//!
//! Read traffic scales out without copying data: a [`prelude::Replica`]
//! attaches to a live cluster's Log Stores and Page Stores (§II: Log
//! Stores "serve log records to read replicas"), tails the redo log in
//! the background, and serves the same `Session` API at a
//! transaction-consistent LSN — lag-bounded via `replica.max_lag_lsn`:
//!
//! ```no_run
//! # use taurus::prelude::*;
//! # fn demo(db: &std::sync::Arc<TaurusDb>) -> Result<()> {
//! let replica = Replica::attach(db);
//! replica.wait_caught_up(std::time::Duration::from_secs(5))?;
//! let rows = Session::new(replica.db())
//!     .query("worker")?
//!     .agg(Agg::count_star())
//!     .collect_rows()?;
//! # let _ = rows; Ok(()) }
//! ```
//!
//! ## Serving over the network
//!
//! [`server`] turns the stack into a network-facing compute node: a TCP
//! front end speaking the [`protocol`] wire format, with lag-aware
//! read routing across the master and any attached replicas and
//! read-your-writes stickiness per connection (see `DESIGN.md`,
//! "Serving layer"):
//!
//! ```no_run
//! # use taurus::prelude::*;
//! # fn demo(db: &std::sync::Arc<TaurusDb>) -> Result<()> {
//! let replica = Replica::attach(db);
//! let handle = Server::start(db, vec![replica], tpch_registry())?;
//! let mut client = Client::connect(&handle.local_addr().to_string())?;
//! let reply = client.query_named("Q6", None)?;
//! println!("{} rows from node {}", reply.rows.len(), reply.node);
//! # Ok(()) }
//! ```
//!
//! ## Static verification
//!
//! Every plan is checkable *before* it runs: [`verify::verify_plan`]
//! infers the full output schema (types, widths, nullability) against
//! the live catalog, abstractly interprets every predicate program the
//! plan would compile (scalar IR and its vectorized twin), and returns
//! structured [`verify::Diagnostic`]s with plan-path locations instead
//! of letting a malformed tree surface as an internal error mid-scan.
//! Debug builds run [`verify::check_plan`] as a gate in front of every
//! execution entry point; CI runs the `taurus-verify` binary over every
//! registry plan and NDP descriptor program. The companion range
//! analysis proves TPC-H-style decimal predicates rescale-overflow-free
//! so the columnar kernels skip their per-lane checked-overflow
//! deferral (see `DESIGN.md`, "Static verification").
//!
//! Start with [`prelude`] and `examples/quickstart.rs`; `DESIGN.md` maps
//! the crate layout onto the paper's architecture (see its "Read
//! replicas" section for the replication design). Hand-built plan trees
//! (`taurus::optimizer::plan`) and `execute(plan, ctx)` remain available
//! as the internal lowering target — the TPC-H plan builders and parity
//! tests use them — but applications should not need them.

pub use taurus_btree as btree;
pub use taurus_bufferpool as bufferpool;
pub use taurus_common as common;
pub use taurus_executor as executor;
pub use taurus_expr as expr;
pub use taurus_logstore as logstore;
pub use taurus_mvcc as mvcc;
pub use taurus_ndp as ndp;
pub use taurus_optimizer as optimizer;
pub use taurus_page as page;
pub use taurus_pagestore as pagestore;
pub use taurus_protocol as protocol;
pub use taurus_replica as replica;
pub use taurus_sal as sal;
pub use taurus_server as server;
pub use taurus_sql as sql;
pub use taurus_tpch as tpch;
pub use taurus_verify as verify;

/// The commonly-used surface of the whole system: the session/query
/// facade, schema DDL types, and values.
pub mod prelude {
    pub use taurus_common::schema::{Column, Row, TableSchema};
    pub use taurus_common::{
        BatchLayout, ClusterConfig, DataType, Date32, Dec, Error, Metrics, MetricsSnapshot,
        NdpConfig, Result, RowBatch, Value,
    };
    pub use taurus_executor::dsl::{col, date, dec, lit, nth, QExpr};
    pub use taurus_executor::{Agg, Explained, QueryBuilder, QueryRun, RowStream, Session};
    pub use taurus_ndp::{Table, TaurusDb};
    pub use taurus_replica::Replica;
    pub use taurus_server::{tpch_registry, Client, QueryReply, Server, ServerHandle};
    pub use taurus_sql::{SessionSqlExt, SqlOutput};
    pub use taurus_verify::{check_plan, verify_plan, Diagnostic};
}
