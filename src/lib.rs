//! # taurus — Near Data Processing in Taurus Database, reproduced in Rust
//!
//! An executable reproduction of *Near Data Processing in Taurus Database*
//! (ICDE 2022): a compute/storage-disaggregated MySQL/InnoDB-style engine
//! whose Page Stores evaluate pushed-down selection, projection and
//! aggregation — plus the full TPC-H evaluation harness that regenerates
//! the paper's figures.
//!
//! Start with [`prelude`] and `examples/quickstart.rs`.

pub use taurus_btree as btree;
pub use taurus_bufferpool as bufferpool;
pub use taurus_common as common;
pub use taurus_executor as executor;
pub use taurus_expr as expr;
pub use taurus_logstore as logstore;
pub use taurus_mvcc as mvcc;
pub use taurus_ndp as ndp;
pub use taurus_optimizer as optimizer;
pub use taurus_page as page;
pub use taurus_pagestore as pagestore;
pub use taurus_sal as sal;
pub use taurus_tpch as tpch;

/// The commonly-used surface of the whole system.
pub mod prelude {
    pub use taurus_common::schema::{Column, Row, TableSchema};
    pub use taurus_common::{
        ClusterConfig, DataType, Date32, Dec, Error, Metrics, MetricsSnapshot, NdpConfig,
        Result, Value,
    };
    pub use taurus_executor::{execute, run_query, ExecContext, QueryRun};
    pub use taurus_expr::ast::Expr;
    pub use taurus_ndp::{
        scan, NdpChoice, ScanAggregation, ScanConsumer, ScanRange, ScanSpec, Table, TaurusDb,
    };
    pub use taurus_optimizer::{explain, ndp_post_process};
    pub use taurus_optimizer::plan::{
        AggFuncEx, AggItem, AggScanNode, JoinType, Plan, RangeSpec, ScanNode,
    };
}
