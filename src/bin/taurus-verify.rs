//! `taurus-verify` — the workspace's static-verification driver.
//!
//! Loads a small TPC-H catalog and runs every check in `taurus-verify`
//! (the crate) over every plan the repo can produce:
//!
//! * all TPC-H and micro registry plans, plus the PQ (fan-out) variant
//!   of every PQ-capable query — schema/width/nullability inference and
//!   scalar↔vector program checks (`verify_plan`);
//! * every NDP descriptor those plans push: the descriptor must build,
//!   and its wire-encoded predicate program must decode and pass the
//!   abstract interpreter — the same bytes a Page Store would execute;
//! * the range analysis, reported per query: how many residual/filter
//!   predicates are statically proven rescale-overflow-free (vector
//!   kernels skip their checked-overflow deferral) vs. deferring.
//!
//! CI runs `taurus-verify --all`; any error-severity diagnostic makes
//! the process exit non-zero. This is the release-build counterpart of
//! the `#[cfg(debug_assertions)]` gate in the executor.

use std::process::ExitCode;

use taurus_common::DataType;
use taurus_expr::ir::IrProgram;
use taurus_ndp::{build_descriptor, TaurusDb};
use taurus_optimizer::plan::{Plan, ScanNode};
use taurus_verify::{verify_plan, Diagnostic, Severity};

/// Per-query tally of what the static analyses concluded.
#[derive(Default)]
struct Tally {
    errors: usize,
    warnings: usize,
    descriptors: usize,
    predicates: usize,
    proven: usize,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if !(args.is_empty() || (args.len() == 1 && args[0] == "--all")) {
        eprintln!("usage: taurus-verify [--all]");
        return ExitCode::from(2);
    }

    let db = TaurusDb::new(taurus_common::config::ClusterConfig::default());
    if let Err(e) = taurus::tpch::load(&db, 0.01, 42) {
        eprintln!("taurus-verify: TPC-H load failed: {e}");
        return ExitCode::from(2);
    }

    let mut queries = taurus::tpch::tpch_queries();
    queries.extend(taurus::tpch::micro_queries());

    let mut total = Tally::default();
    let mut failed = 0usize;
    for q in &queries {
        // The main-stage plan, with NDP decisions applied; PQ-capable
        // queries are verified again in their fanned-out (Exchange) form.
        let variants: Vec<(String, Option<usize>)> = if q.pq_capable {
            vec![
                (q.name.to_string(), None),
                (format!("{}[pq]", q.name), Some(4)),
            ]
        } else {
            vec![(q.name.to_string(), None)]
        };
        for (label, pq) in variants {
            let plan = match (q.plan)(&db, pq) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("{label}: plan construction failed: {e}");
                    failed += 1;
                    continue;
                }
            };
            let mut t = Tally::default();
            let mut diags = verify_plan(&plan, &db);
            check_descriptors(&plan, &db, &mut diags, &mut t);
            range_report(&plan, &db, &mut t);
            for d in &diags {
                match d.severity {
                    Severity::Error => t.errors += 1,
                    Severity::Warning => t.warnings += 1,
                }
            }
            if t.errors > 0 {
                failed += 1;
                eprintln!("{label}: FAILED");
                for d in diags.iter().filter(|d| d.severity == Severity::Error) {
                    eprintln!("  {d}");
                }
            } else {
                println!(
                    "{label}: ok ({} descriptor(s), {}/{} predicate(s) proven overflow-safe{})",
                    t.descriptors,
                    t.proven,
                    t.predicates,
                    if t.warnings > 0 {
                        format!(", {} warning(s)", t.warnings)
                    } else {
                        String::new()
                    }
                );
            }
            total.errors += t.errors;
            total.warnings += t.warnings;
            total.descriptors += t.descriptors;
            total.predicates += t.predicates;
            total.proven += t.proven;
        }
    }

    println!(
        "taurus-verify: {} plan variant(s), {} NDP descriptor(s), {}/{} predicate(s) proven, {} error(s), {} warning(s)",
        queries.iter().map(|q| if q.pq_capable { 2 } else { 1 }).sum::<usize>(),
        total.descriptors,
        total.proven,
        total.predicates,
        total.errors,
        total.warnings,
    );
    if failed > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Walk every scan in the plan and verify the NDP descriptor it would
/// ship: build it against the live catalog, then decode and abstractly
/// interpret its predicate program — exactly the bytes a Page Store's
/// plugin would cache.
fn check_descriptors(plan: &Plan, db: &TaurusDb, diags: &mut Vec<Diagnostic>, t: &mut Tally) {
    for_each_scan(plan, &mut |node, path| {
        let Some(decision) = &node.ndp else { return };
        let table = match db.table(&node.table) {
            Ok(tb) => tb,
            Err(e) => {
                diags.push(Diagnostic::error(
                    taurus_verify::DiagKind::UnknownTable,
                    path,
                    format!("table {}: {e}", node.table),
                ));
                return;
            }
        };
        let desc = match build_descriptor(table.index(node.index), &decision.choice, 0) {
            Ok(d) => d,
            Err(e) => {
                diags.push(Diagnostic::error(
                    taurus_verify::DiagKind::IrShape,
                    path,
                    format!("NDP descriptor build failed: {e}"),
                ));
                return;
            }
        };
        t.descriptors += 1;
        if let Some(bitcode) = &desc.predicate_bitcode {
            match IrProgram::decode_bitcode(bitcode) {
                Ok(ir) => diags.extend(taurus_verify::check_ir(&ir, path)),
                Err(e) => diags.push(Diagnostic::error(
                    taurus_verify::DiagKind::IrShape,
                    path,
                    format!("descriptor predicate bitcode does not decode: {e}"),
                )),
            }
        }
    });
}

/// Mirror the executor's proven-safe decisions: scan residuals analyzed
/// in output-position dtype space, `Filter` predicates analyzed over the
/// inferred schema of a storage-backed input.
fn range_report(plan: &Plan, db: &TaurusDb, t: &mut Tally) {
    for_each_scan(plan, &mut |node, _| {
        let Ok(table) = db.table(&node.table) else {
            return;
        };
        let dtypes: Option<Vec<DataType>> = node
            .output
            .iter()
            .map(|&c| table.schema.columns.get(c).map(|col| col.dtype))
            .collect();
        let Some(dtypes) = dtypes else { return };
        for e in node.residual_conjuncts() {
            let Ok(remapped) = taurus_verify::remap_onto(
                e,
                &node.output,
                taurus_verify::DiagKind::ResidualNotInOutput,
                "scan",
            ) else {
                continue;
            };
            t.predicates += 1;
            if taurus_verify::analyze_predicate(&remapped, &dtypes).proven {
                t.proven += 1;
            }
        }
    });
    for_each_filter(plan, &mut |node| {
        if !taurus_verify::columns_storage_backed(&node.input) {
            return;
        }
        let Some(schema) = taurus_verify::infer_plan(&node.input, db).schema else {
            return;
        };
        let dtypes: Vec<DataType> = schema.iter().map(|c| c.dtype).collect();
        t.predicates += 1;
        if taurus_verify::analyze_predicate(&node.predicate, &dtypes).proven {
            t.proven += 1;
        }
    });
}

fn for_each_scan(plan: &Plan, f: &mut impl FnMut(&ScanNode, &str)) {
    match plan {
        Plan::Scan(s) => f(s, "Scan"),
        Plan::AggScan(a) => f(&a.scan, "AggScan"),
        Plan::LookupJoin(j) => for_each_scan(&j.outer, f),
        Plan::HashJoin(j) => {
            for_each_scan(&j.left, f);
            for_each_scan(&j.right, f);
        }
        Plan::HashAgg(a) => for_each_scan(&a.input, f),
        Plan::Project(p) => for_each_scan(&p.input, f),
        Plan::Filter(fl) => for_each_scan(&fl.input, f),
        Plan::Sort(s) => for_each_scan(&s.input, f),
        Plan::Limit { input, .. } => for_each_scan(input, f),
        Plan::Exchange(e) => for_each_scan(&e.child, f),
    }
}

fn for_each_filter(plan: &Plan, f: &mut impl FnMut(&taurus_optimizer::plan::FilterNode)) {
    match plan {
        Plan::Scan(_) | Plan::AggScan(_) => {}
        Plan::LookupJoin(j) => for_each_filter(&j.outer, f),
        Plan::HashJoin(j) => {
            for_each_filter(&j.left, f);
            for_each_filter(&j.right, f);
        }
        Plan::HashAgg(a) => for_each_filter(&a.input, f),
        Plan::Project(p) => for_each_filter(&p.input, f),
        Plan::Filter(fl) => {
            f(fl);
            for_each_filter(&fl.input, f);
        }
        Plan::Sort(s) => for_each_filter(&s.input, f),
        Plan::Limit { input, .. } => for_each_filter(input, f),
        Plan::Exchange(e) => for_each_filter(&e.child, f),
    }
}
