//! `taurus-sql` — an interactive SQL shell over an in-process instance.
//!
//! Loads the deterministic TPC-H dataset, then reads `;`-terminated
//! statements from stdin and prints one row per line with `|`-separated
//! values (doubles fixed to 4 decimals, so output is byte-stable across
//! runs and batch layouts). `EXPLAIN SELECT ...` prints the physical
//! plan, one line per row. Errors print the positioned diagnostic on
//! stderr and the shell keeps going — exactly the fail-closed contract
//! the server applies to wire SQL.
//!
//! ```text
//! taurus-sql [--sf F] [--seed N] [--no-ndp] [-e "stmt; stmt; ..."]
//! ```
//!
//! With `-e`, statements run non-interactively and the process exits
//! non-zero if any of them failed — the shape CI's byte-compare uses.

use std::io::{BufRead, Write};
use std::process::ExitCode;

use taurus_common::config::ClusterConfig;
use taurus_common::Value;
use taurus_executor::Session;
use taurus_ndp::TaurusDb;
use taurus_sql::{run, SqlOutput};

fn fmt_value(v: &Value) -> String {
    match v {
        Value::Double(d) => format!("{d:.4}"),
        other => other.to_string(),
    }
}

/// Run one statement, printing rows (or plan lines) to stdout.
fn run_stmt(session: &Session, text: &str) -> Result<(), taurus_common::Error> {
    let mut out = std::io::stdout().lock();
    match run(session, text)? {
        SqlOutput::Rows(rows) => {
            for row in &rows {
                let line = row.iter().map(fmt_value).collect::<Vec<_>>().join("|");
                let _ = writeln!(out, "{line}");
            }
            let _ = writeln!(out, "-- {} row(s)", rows.len());
        }
        SqlOutput::Explain(lines) => {
            for line in lines {
                let _ = writeln!(out, "{line}");
            }
        }
    }
    let _ = out.flush();
    Ok(())
}

fn main() -> ExitCode {
    let mut sf = 0.01f64;
    let mut seed = 42u64;
    let mut ndp = true;
    let mut script: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match a.as_str() {
            "--sf" => sf = val("--sf").parse().expect("--sf"),
            "--seed" => seed = val("--seed").parse().expect("--seed"),
            "--no-ndp" => ndp = false,
            "-e" => script = Some(val("-e")),
            other => {
                eprintln!("usage: taurus-sql [--sf F] [--seed N] [--no-ndp] [-e \"stmt; ...\"]");
                eprintln!("unknown argument {other}");
                return ExitCode::from(2);
            }
        }
    }

    eprintln!("taurus-sql: loading TPC-H SF {sf} (seed {seed}, ndp {ndp}) ...");
    let mut cfg = ClusterConfig::default();
    cfg.ndp.enabled = ndp;
    let db = TaurusDb::new(cfg);
    if let Err(e) = taurus::tpch::load(&db, sf, seed) {
        eprintln!("taurus-sql: TPC-H load failed: {e}");
        return ExitCode::from(2);
    }
    let mut session = Session::new(&db);
    session.set_ndp(ndp);

    if let Some(script) = script {
        let mut failures = 0usize;
        for stmt in script.split(';').map(str::trim).filter(|s| !s.is_empty()) {
            if let Err(e) = run_stmt(&session, stmt) {
                failures += 1;
                eprintln!("error: {e}");
            }
        }
        return if failures == 0 {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        };
    }

    // Interactive loop: statements end at `;`, blank lines are ignored,
    // any failure prints its diagnostic and the shell continues.
    eprintln!("taurus-sql: ready (statements end with `;`, ctrl-d quits)");
    let stdin = std::io::stdin();
    let mut buf = String::new();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        buf.push_str(&line);
        buf.push('\n');
        while let Some(at) = buf.find(';') {
            let stmt: String = buf.drain(..=at).collect();
            let stmt = stmt.trim_end_matches(';').trim();
            if !stmt.is_empty() {
                if let Err(e) = run_stmt(&session, stmt) {
                    eprintln!("error: {e}");
                }
            }
        }
    }
    ExitCode::SUCCESS
}
