//! The batch-native pull pipeline, observed from the outside: operator
//! traffic counters, LIMIT cancelling producing scans, dropped streams
//! stopping mid-plan producers, and the physical EXPLAIN tree.

use taurus::executor::{execute, ExecContext};
use taurus::optimizer::ndp_post::ndp_post_process;
use taurus::optimizer::plan::{HashJoinNode, JoinType, Plan, ScanNode};
use taurus::prelude::*;

fn tpch_db() -> std::sync::Arc<TaurusDb> {
    let mut cfg = ClusterConfig::small_for_tests();
    cfg.buffer_pool_pages = 64;
    let db = TaurusDb::new(cfg);
    taurus::tpch::load(&db, 0.005, 11).unwrap();
    db.buffer_pool().clear();
    db
}

fn lineitem_rows(db: &TaurusDb) -> u64 {
    db.table("lineitem").unwrap().stats.read().row_count
}

/// A join plan whose probe side streams lineitem: orders builds the hash
/// table, lineitem probes.
fn join_plan(db: &TaurusDb) -> Plan {
    let lineitem = Plan::Scan(ScanNode::new("lineitem", vec![0, 3, 4]));
    let orders = Plan::Scan(ScanNode::new("orders", vec![0, 1]));
    let mut plan = Plan::HashJoin(HashJoinNode {
        left: Box::new(lineitem),
        right: Box::new(orders),
        left_keys: vec![0],
        right_keys: vec![0],
        join: JoinType::Inner,
    });
    ndp_post_process(&mut plan, db).unwrap();
    plan
}

/// On a scan-only plan the operator emit counters pin against the scan
/// core's batch counters: the BatchScan operator re-emits exactly the
/// batches the scan flushed (no residual, no projection), so
/// `operator_rows == rows_batched` and `operator_batches ==
/// batches_emitted`.
#[test]
fn operator_counters_pin_against_scan_batches() {
    let db = tpch_db();
    let mut plan = Plan::Scan(ScanNode::new("lineitem", vec![0, 1, 2]));
    ndp_post_process(&mut plan, &db).unwrap();
    let before = db.metrics().snapshot();
    let rows = execute(&plan, &ExecContext::new(&db)).unwrap();
    let d = db.metrics().snapshot().since(&before);
    assert_eq!(rows.len() as u64, lineitem_rows(&db));
    assert_eq!(
        d.operator_rows, d.rows_batched,
        "scan-only: every batched row is emitted once"
    );
    assert_eq!(d.operator_batches, d.batches_emitted);
    assert!(d.operator_batches > 0);
}

/// Through a two-operator pipeline (Limit over BatchScan) each row is
/// charged at most once per operator that emits it.
#[test]
fn operator_counters_count_per_emit_site() {
    let db = tpch_db();
    let mut plan = Plan::Scan(ScanNode::new("lineitem", vec![0, 1])).limit(10);
    ndp_post_process(&mut plan, &db).unwrap();
    let before = db.metrics().snapshot();
    let rows = execute(&plan, &ExecContext::new(&db)).unwrap();
    let d = db.metrics().snapshot().since(&before);
    assert_eq!(rows.len(), 10);
    // Scan emits >= 10 rows (up to the channel look-ahead), Limit emits
    // exactly 10; the sum is strictly less than two full scans.
    assert!(
        d.operator_rows >= 20,
        "scan + limit both charge: {}",
        d.operator_rows
    );
    assert!(
        d.operator_rows < 2 * lineitem_rows(&db),
        "LIMIT must not let both operators emit the full table"
    );
}

/// `Plan::Limit` over a non-scan input stops pulling after `n` rows and
/// cancels the producing scans: the probe-side scan of a join terminates
/// far short of the full table.
#[test]
fn limit_over_join_cancels_probe_scan() {
    let db = tpch_db();
    let total = lineitem_rows(&db);
    let plan = join_plan(&db).limit(5);
    let before = db.metrics().snapshot();
    let rows = execute(&plan, &ExecContext::new(&db)).unwrap();
    let d = db.metrics().snapshot().since(&before);
    assert_eq!(rows.len(), 5);
    // The orders build side scans fully; the lineitem probe side must
    // stop after a handful of batches (bounded channel look-ahead), not
    // scan all of lineitem.
    let orders = db.table("orders").unwrap().stats.read().row_count;
    assert!(
        d.rows_scanned < orders + total / 2,
        "probe scan should stop early: scanned {} of {} lineitem rows",
        d.rows_scanned - orders.min(d.rows_scanned),
        total
    );
}

/// Acceptance: `RowStream` streams a sort-free filter/limit plan over a
/// join without materializing the full result set — dropping the stream
/// early stops the producer (and its scans), observed through the scan
/// counters freezing short of the full table.
#[test]
fn dropped_stream_over_join_stops_producer() {
    let db = tpch_db();
    let total = lineitem_rows(&db);
    let session = Session::new(&db);
    let plan = join_plan(&db).filter(taurus::expr::ast::Expr::ge(
        taurus::expr::ast::Expr::col(1),
        taurus::expr::ast::Expr::int(0),
    ));
    let before = db.metrics().snapshot();
    let mut stream = session.stream_plan(plan);
    for _ in 0..3 {
        stream.next().unwrap().unwrap();
    }
    drop(stream); // joins the producer; hanging here is the regression
    let d = db.metrics().snapshot().since(&before);
    let orders = db.table("orders").unwrap().stats.read().row_count;
    assert!(
        d.rows_scanned < orders + total / 2,
        "dropped stream must stop the probe scan: {} rows scanned",
        d.rows_scanned
    );
    // Producer is joined: the counters are final. A fresh query still
    // works on the same session.
    let d2 = db.metrics().snapshot().since(&before);
    assert_eq!(d.rows_scanned, d2.rows_scanned);
    assert!(!session
        .query("region")
        .unwrap()
        .collect_rows()
        .unwrap()
        .is_empty());
}

/// A LEFT OUTER hash join whose build side produces no rows must still
/// NULL-pad every left row to the full static right width (the legacy
/// executor emitted unpadded rows here, blowing up downstream operators
/// that index past the left columns).
#[test]
fn left_outer_join_with_empty_build_side_null_pads() {
    use taurus::expr::ast::Expr;
    let db = tpch_db();
    let lineitem = Plan::Scan(ScanNode::new("lineitem", vec![0, 4]));
    let no_orders = Plan::Scan(
        ScanNode::new("orders", vec![0, 1])
            .with_predicate(vec![Expr::lt(Expr::col(0), Expr::int(-1))]),
    );
    let mut plan = Plan::HashJoin(HashJoinNode {
        left: Box::new(lineitem),
        right: Box::new(no_orders),
        left_keys: vec![0],
        right_keys: vec![0],
        join: JoinType::LeftOuter,
    });
    ndp_post_process(&mut plan, &db).unwrap();
    assert_eq!(taurus::verify::plan_width(&plan), 4);
    let rows = execute(&plan.clone().limit(20), &ExecContext::new(&db)).unwrap();
    assert_eq!(rows.len(), 20);
    for r in &rows {
        assert_eq!(r.len(), 4, "left width 2 + right width 2, NULL-padded");
        assert!(r[2].is_null() && r[3].is_null());
    }
    // A downstream operator indexing into the right columns works:
    // COUNT(o_custkey) over the join is 0, not an error.
    let counted = execute(
        &taurus::optimizer::plan::Plan::HashAgg(taurus::optimizer::plan::HashAggNode {
            input: Box::new(plan),
            group: vec![],
            aggs: vec![taurus::optimizer::plan::AggItem {
                func: taurus::optimizer::plan::AggFuncEx::Count,
                input: Some(Expr::col(3)),
            }],
        }),
        &ExecContext::new(&db),
    )
    .unwrap();
    assert_eq!(counted, vec![vec![Value::Int(0)]]);
}

/// EXPLAIN renders the lowered physical pipeline alongside the logical
/// tree: operator names, batch size, and per-scan NDP decisions.
#[test]
fn explain_renders_physical_pipeline() {
    let db = tpch_db();
    let session = Session::new(&db);
    let explained = session
        .query("lineitem")
        .unwrap()
        .select(["l_orderkey", "l_quantity"])
        .filter(col("l_quantity").lt(10i64))
        .order_by(0, false)
        .limit(7)
        .explain()
        .unwrap();
    let text = explained.to_string();
    assert!(text.contains("Physical pipeline"), "{text}");
    assert!(
        text.contains(&format!("batch = {} rows", db.config().scan_batch_rows)),
        "{text}"
    );
    assert!(text.contains("TopN(7)"), "{text}");
    assert!(text.contains("BatchScan on lineitem"), "{text}");

    // The physical tree names every operator of a composite plan.
    let phys = taurus::optimizer::explain_physical(&join_plan(&db).limit(3), &db);
    for needle in [
        "Limit(3)",
        "HashJoin",
        "BatchScan on lineitem",
        "BatchScan on orders",
    ] {
        assert!(phys.contains(needle), "{needle} missing from:\n{phys}");
    }
}
