//! Read-replica integration tests: log tailing, catalog replication,
//! snapshot consistency under concurrent DML, staleness guardrails, and
//! the full TPC-H suite served from a replica.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use taurus::prelude::*;

const WAIT: Duration = Duration::from_secs(20);

fn account_schema() -> Arc<TableSchema> {
    TableSchema::new(
        "acct",
        vec![
            Column::new("id", DataType::BigInt),
            Column::new("bal", DataType::BigInt),
        ],
        vec![0],
    )
}

/// Master with an `acct(id, bal)` table holding `n` rows of balance 100
/// each. `with_secondary` adds an index on `bal` — only for workloads
/// that do not revisit balance values (the engine keeps delete-marked
/// secondary entries, so a re-inserted `(bal, id)` key collides; churn
/// workloads here use secondary-free tables).
fn acct_db(cfg: ClusterConfig, n: i64, with_secondary: bool) -> (Arc<TaurusDb>, Arc<Table>) {
    let db = TaurusDb::new(cfg);
    let secondaries: &[(&str, Vec<usize>)] = if with_secondary {
        &[("i_bal", vec![1])]
    } else {
        &[]
    };
    let table = db.create_table(account_schema(), secondaries).unwrap();
    let rows: Vec<Row> = (0..n)
        .map(|i| vec![Value::Int(i), Value::Int(100)])
        .collect();
    db.bulk_load(&table, rows).unwrap();
    (db, table)
}

fn sum_bal(db: &Arc<TaurusDb>) -> i64 {
    let session = Session::new(db);
    let rows = session
        .query("acct")
        .unwrap()
        .agg(Agg::sum("bal"))
        .collect_rows()
        .unwrap();
    rows[0][0].as_int().unwrap()
}

#[test]
fn replica_serves_loaded_table_and_catches_up() {
    let (db, table) = acct_db(ClusterConfig::small_for_tests(), 64, true);
    let replica = Replica::attach(&db);
    replica.wait_caught_up(WAIT).unwrap();

    // Full parity: collect and stream, master vs replica.
    let master_rows = Session::new(&db)
        .query("acct")
        .unwrap()
        .collect_rows()
        .unwrap();
    let rdb = replica.db();
    assert!(rdb.is_replica());
    let replica_rows = Session::new(rdb)
        .query("acct")
        .unwrap()
        .collect_rows()
        .unwrap();
    assert_eq!(master_rows, replica_rows);
    let streamed: Vec<Row> = Session::new(rdb)
        .query("acct")
        .unwrap()
        .stream()
        .unwrap()
        .collect::<Result<_>>()
        .unwrap();
    assert_eq!(master_rows, streamed);

    // Replica sees committed DML only after its boundary replicates, and a
    // session must refresh to observe it (snapshot semantics).
    let mut rsession = Session::new(rdb);
    let trx = db.begin();
    db.insert_row(&table, trx, &vec![Value::Int(1000), Value::Int(7)])
        .unwrap();
    db.commit(trx);
    replica.wait_caught_up(WAIT).unwrap();
    assert_eq!(
        rsession
            .query("acct")
            .unwrap()
            .collect_rows()
            .unwrap()
            .len(),
        64,
        "old session keeps its snapshot"
    );
    rsession.refresh();
    assert_eq!(
        rsession
            .query("acct")
            .unwrap()
            .collect_rows()
            .unwrap()
            .len(),
        65,
        "refreshed session sees the replicated commit"
    );

    // Observability: the replica's own metrics carry the gauges.
    let snap = rdb.metrics().snapshot();
    assert!(snap.replica_visible_lsn > 0);
    assert!(snap.replica_apply_bytes > 0);
    assert_eq!(rdb.replica_lag(), 0);
}

#[test]
fn tables_created_after_attach_replicate_too() {
    let db = TaurusDb::new(ClusterConfig::small_for_tests());
    let replica = Replica::attach(&db);
    // DDL + load happen entirely after the attach: the tailer must build
    // the catalog from the log alone.
    let table = db
        .create_table(account_schema(), &[("i_bal", vec![1])])
        .unwrap();
    let rows: Vec<Row> = (0..40)
        .map(|i| vec![Value::Int(i), Value::Int(100)])
        .collect();
    db.bulk_load(&table, rows).unwrap();
    replica.wait_caught_up(WAIT).unwrap();
    assert_eq!(sum_bal(replica.db()), 4000);
    // Secondary-index scans replicate as well (key cols, spaces, shape).
    let via_sec = Session::new(replica.db())
        .query("acct")
        .unwrap()
        .via_index("i_bal")
        .select(["bal"])
        .collect_rows()
        .unwrap();
    assert_eq!(via_sec.len(), 40);
}

#[test]
fn uncommitted_and_rolled_back_writes_stay_invisible() {
    let (db, table) = acct_db(ClusterConfig::small_for_tests(), 16, true);
    let replica = Replica::attach(&db);
    replica.wait_caught_up(WAIT).unwrap();
    assert_eq!(sum_bal(replica.db()), 1600);

    // An open transaction's update must never leak: even after the tailer
    // applies its page writes, no boundary covers them.
    let trx = db.begin();
    db.update_row(&table, trx, &vec![Value::Int(0), Value::Int(1_000_000)])
        .unwrap();
    // Give the tailer a moment to apply the un-committed writes.
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(
        sum_bal(replica.db()),
        1600,
        "mid-transaction state must be invisible on the replica"
    );

    // Roll it back: still 1600 after the abort boundary replicates.
    db.rollback(trx).unwrap();
    replica.wait_caught_up(WAIT).unwrap();
    assert_eq!(sum_bal(replica.db()), 1600);
    assert_eq!(
        Session::new(replica.db())
            .lookup("acct", &[Value::Int(0)])
            .unwrap()
            .unwrap()[1],
        Value::Int(100)
    );
}

/// A failed duplicate-key insert on the master must not poison the
/// replicated undo: its write-ahead `prev = None` entry would otherwise
/// sit newest on the row's chain and make the committed row vanish
/// during replica reconstruction while a later writer is in flight.
#[test]
fn failed_duplicate_insert_does_not_corrupt_replica_snapshots() {
    let (db, table) = acct_db(ClusterConfig::small_for_tests(), 8, true);
    let replica = Replica::attach(&db);
    replica.wait_caught_up(WAIT).unwrap();

    // The duplicate insert fails on every index *before* any undo ships.
    let t_dup = db.begin();
    assert!(db
        .insert_row(&table, t_dup, &vec![Value::Int(3), Value::Int(999)])
        .is_err());
    db.commit(t_dup);

    // A writer now updates the same row and stays in flight: the replica
    // must reconstruct the committed version (100), not lose the row.
    let t_open = db.begin();
    db.update_row(&table, t_open, &vec![Value::Int(3), Value::Int(555)])
        .unwrap();
    // Boundary from an unrelated commit so the replica publishes a view
    // with t_open active.
    let t_other = db.begin();
    db.insert_row(&table, t_other, &vec![Value::Int(70), Value::Int(0)])
        .unwrap();
    db.commit(t_other);
    replica.wait_caught_up(WAIT).unwrap();
    assert_eq!(
        Session::new(replica.db())
            .lookup("acct", &[Value::Int(3)])
            .unwrap()
            .expect("committed row must not vanish")[1],
        Value::Int(100),
        "replica must reconstruct the committed version around the open writer"
    );
    assert_eq!(sum_bal(replica.db()), 800);
    db.rollback(t_open).unwrap();
}

#[test]
fn replica_is_read_only_and_rejects_trx_sessions() {
    let (db, _) = acct_db(ClusterConfig::small_for_tests(), 8, true);
    let replica = Replica::attach(&db);
    replica.wait_caught_up(WAIT).unwrap();
    let rdb = replica.db();
    let rtable = rdb.table("acct").unwrap();
    let trx = rdb.begin();
    assert!(matches!(
        rdb.insert_row(&rtable, trx, &vec![Value::Int(99), Value::Int(1)]),
        Err(Error::InvalidState(_))
    ));
    assert!(matches!(
        rdb.update_row(&rtable, trx, &vec![Value::Int(0), Value::Int(1)]),
        Err(Error::InvalidState(_))
    ));
    assert!(matches!(
        rdb.delete_row(&rtable, trx, &[Value::Int(0)]),
        Err(Error::InvalidState(_))
    ));
    assert!(matches!(
        rdb.create_table(
            TableSchema::new("t2", vec![Column::new("a", DataType::Int)], vec![0]),
            &[]
        ),
        Err(Error::InvalidState(_))
    ));
    // A transaction-bound session makes no sense on a read-only node.
    let s = Session::for_trx(rdb, trx);
    assert!(matches!(s.query("acct"), Err(Error::Unsupported(_))));
    // SAL-level enforcement too: the attachment refuses log writes.
    assert!(rdb.sal().is_read_only());
}

#[test]
fn detached_replica_refuses_queries() {
    let (db, _) = acct_db(ClusterConfig::small_for_tests(), 8, true);
    let replica = Replica::attach(&db);
    replica.wait_caught_up(WAIT).unwrap();
    assert_eq!(sum_bal(replica.db()), 800);
    replica.detach();
    let err = match Session::new(replica.db()).query("acct") {
        Ok(_) => panic!("detached replica served a query"),
        Err(e) => e,
    };
    match err {
        Error::InvalidState(m) => assert!(m.contains("detached"), "unexpected message: {m}"),
        other => panic!("expected InvalidState, got {other:?}"),
    }
}

#[test]
fn lag_beyond_max_lag_refuses_queries_until_caught_up() {
    let mut cfg = ClusterConfig::small_for_tests();
    // A tailer that polls very rarely, and a tight staleness contract.
    cfg.replica.poll_interval_us = 2_000_000;
    cfg.replica.max_lag_lsn = Some(4);
    let (db, table) = acct_db(cfg, 8, true);
    let replica = Replica::attach(&db);
    replica.wait_caught_up(WAIT).unwrap();
    assert_eq!(sum_bal(replica.db()), 800, "within the lag bound: serves");

    // Let the tailer settle into its (2 s) idle sleep so none of the
    // upcoming writes can race into an in-progress poll, then pile up
    // master writes: the replica must refuse rather than serve a
    // snapshot staler than the contract.
    std::thread::sleep(Duration::from_millis(50));
    for i in 0..6 {
        let trx = db.begin();
        db.insert_row(&table, trx, &vec![Value::Int(500 + i), Value::Int(1)])
            .unwrap();
        db.commit(trx);
    }
    assert!(replica.lag() > 4);
    let err = match Session::new(replica.db()).query("acct") {
        Ok(_) => panic!("lagging replica served a query"),
        Err(e) => e,
    };
    match err {
        Error::InvalidState(m) => assert!(m.contains("lag"), "unexpected message: {m}"),
        other => panic!("expected InvalidState, got {other:?}"),
    }
    let snap = replica.db().metrics().snapshot();
    assert!(snap.replica_lag_lsn > 0 || replica.lag() > 0);
    // Once the tailer catches back up, service resumes.
    replica.wait_caught_up(WAIT).unwrap();
    assert!(Session::new(replica.db()).query("acct").is_ok());
}

/// The acceptance gate: a replica attached to a live cluster serves all
/// 22 TPC-H queries (and the micro suite), NDP on and off, with results
/// equal to a master snapshot — while concurrent DML keeps committing on
/// the master (on a side table; the replica's snapshot of the TPC-H
/// tables must be unaffected, and its side-table snapshots must be
/// transaction-consistent).
#[test]
fn tpch_queries_on_replica_match_master_snapshot() {
    use taurus::tpch::{micro_queries, tpch_queries};

    fn fmt_rows(rows: &[Row]) -> Vec<String> {
        rows.iter()
            .map(|r| {
                r.iter()
                    .map(|v| match v {
                        Value::Double(d) => format!("{d:.4}"),
                        other => other.to_string(),
                    })
                    .collect::<Vec<_>>()
                    .join("|")
            })
            .collect()
    }

    for ndp in [false, true] {
        let mut cfg = ClusterConfig::default();
        cfg.buffer_pool_pages = 256;
        cfg.slice_pages = 32;
        cfg.ndp.enabled = ndp;
        cfg.ndp.min_io_pages = 8;
        cfg.ndp.max_pages_look_ahead = 64;
        // Retention must cover write-rate x replication lag on hot pages
        // (see DESIGN.md); the default 8 is too tight for a full-speed
        // single-page churn loop.
        cfg.pagestore_versions_retained = 64;
        let db = TaurusDb::new(cfg);
        taurus::tpch::load(&db, 0.002, 7).unwrap();
        // No secondary on `bal`: the transfer churn revisits balance
        // values (see `acct_db`).
        let acct = db.create_table(account_schema(), &[]).unwrap();
        db.bulk_load(
            &acct,
            (0..16)
                .map(|i| vec![Value::Int(i), Value::Int(100)])
                .collect(),
        )
        .unwrap();
        let replica = Replica::attach(&db);
        replica.wait_caught_up(WAIT).unwrap();

        // Master snapshot of every query, quiesced.
        let queries: Vec<_> = tpch_queries().into_iter().chain(micro_queries()).collect();
        let master: Vec<(&str, Vec<String>)> = queries
            .iter()
            .map(|q| {
                let rows = (q.run)(&db, None)
                    .unwrap_or_else(|e| panic!("{} (master, ndp={ndp}): {e}", q.name));
                (q.name, fmt_rows(&rows))
            })
            .collect();

        // Churn the side table while the replica serves the suite.
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let db = db.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut k = 0i64;
                while !stop.load(Ordering::SeqCst) {
                    let trx = db.begin();
                    let (i, j) = (k % 16, (k + 7) % 16);
                    if i != j {
                        let get = |id: i64| {
                            db.lookup_row(&acct, &db.read_view(trx), &[Value::Int(id)])
                                .unwrap()
                                .unwrap()[1]
                                .as_int()
                                .unwrap()
                        };
                        let (bi, bj) = (get(i), get(j));
                        db.update_row(&acct, trx, &vec![Value::Int(i), Value::Int(bi - 1)])
                            .unwrap();
                        db.update_row(&acct, trx, &vec![Value::Int(j), Value::Int(bj + 1)])
                            .unwrap();
                    }
                    db.commit(trx);
                    k += 1;
                    std::thread::sleep(std::time::Duration::from_micros(20));
                }
            })
        };

        let rdb = replica.db();
        for (name, expect) in &master {
            let q = queries.iter().find(|q| q.name == *name).unwrap();
            let rows =
                (q.run)(rdb, None).unwrap_or_else(|e| panic!("{name} (replica, ndp={ndp}): {e}"));
            assert_eq!(
                &fmt_rows(&rows),
                expect,
                "{name}: replica result differs from master snapshot (ndp={ndp})"
            );
            // Interleave a consistency probe on the churned table.
            let sum = Session::new(rdb)
                .query("acct")
                .unwrap()
                .agg(Agg::sum("bal"))
                .collect_rows()
                .unwrap()[0][0]
                .as_int()
                .unwrap();
            assert_eq!(sum, 1600, "torn side-table snapshot during {name}");
        }
        stop.store(true, Ordering::SeqCst);
        writer.join().unwrap();
        assert!(
            rdb.metrics().snapshot().replica_visible_lsn > 0,
            "replica lag/visible gauges must be observable"
        );
    }
}

/// The log-tailing concurrency gate: a writer thread runs sum-preserving
/// transactions (transfers, paired inserts, paired deletes) while the
/// replica tails; every replica query must observe a transaction-
/// consistent snapshot — the balance invariant holds and stream==collect
/// — at every prefetch/batch-size combination.
#[test]
fn concurrent_writer_never_tears_replica_snapshots() {
    for (batch_rows, prefetch) in [(1usize, 1usize), (1, 2), (1024, 1), (1024, 2)] {
        let mut cfg = ClusterConfig::small_for_tests();
        cfg.scan_batch_rows = batch_rows;
        cfg.ndp.prefetch_batches = prefetch;
        // Hot-page version retention must cover the replica's lag under
        // the full-speed churn below.
        cfg.pagestore_versions_retained = 64;
        let (db, table) = acct_db(cfg, 32, false);
        let total: i64 = 32 * 100;
        let replica = Replica::attach(&db);
        replica.wait_caught_up(WAIT).unwrap();

        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let db = db.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut next_id = 10_000i64;
                let mut spare: Vec<(i64, i64)> = Vec::new();
                let mut k = 0i64;
                while !stop.load(Ordering::SeqCst) {
                    let trx = db.begin();
                    match k % 4 {
                        // Transfer between two seed rows.
                        0 | 1 => {
                            let (i, j) = ((k * 7 % 32).abs(), (k * 13 % 32).abs());
                            if i != j {
                                let d = 1 + k % 17;
                                let get = |id: i64| {
                                    db.lookup_row(&table, &db.read_view(trx), &[Value::Int(id)])
                                        .unwrap()
                                        .unwrap()[1]
                                        .as_int()
                                        .unwrap()
                                };
                                let (bi, bj) = (get(i), get(j));
                                db.update_row(
                                    &table,
                                    trx,
                                    &vec![Value::Int(i), Value::Int(bi - d)],
                                )
                                .unwrap();
                                db.update_row(
                                    &table,
                                    trx,
                                    &vec![Value::Int(j), Value::Int(bj + d)],
                                )
                                .unwrap();
                            }
                        }
                        // Insert a ±d pair (sum-preserving).
                        2 => {
                            let d = 5 + k % 11;
                            let (a, b) = (next_id, next_id + 1);
                            next_id += 2;
                            db.insert_row(&table, trx, &vec![Value::Int(a), Value::Int(d)])
                                .unwrap();
                            db.insert_row(&table, trx, &vec![Value::Int(b), Value::Int(-d)])
                                .unwrap();
                            spare.push((a, b));
                        }
                        // Delete a previously inserted pair (sums to 0).
                        _ => {
                            if let Some((a, b)) = spare.pop() {
                                db.delete_row(&table, trx, &[Value::Int(a)]).unwrap();
                                db.delete_row(&table, trx, &[Value::Int(b)]).unwrap();
                            }
                        }
                    }
                    db.commit(trx);
                    k += 1;
                    // Steady, heavy — but not retention-saturating — load.
                    std::thread::sleep(std::time::Duration::from_micros(20));
                }
            })
        };

        let rdb = replica.db().clone();
        for round in 0..30 {
            let session = Session::new(&rdb);
            // The pushed-down aggregate and the row stream must agree with
            // each other and with the invariant.
            let collected = session.query("acct").unwrap().collect_rows().unwrap();
            let streamed: Vec<Row> = session
                .query("acct")
                .unwrap()
                .stream()
                .unwrap()
                .collect::<Result<_>>()
                .unwrap();
            assert_eq!(
                collected, streamed,
                "stream/collect diverged (batch={batch_rows}, prefetch={prefetch}, round={round})"
            );
            let sum: i64 = collected.iter().map(|r| r[1].as_int().unwrap()).sum();
            assert_eq!(
                sum,
                total,
                "torn snapshot on the replica (batch={batch_rows}, prefetch={prefetch}, \
                 round={round}, rows={})",
                collected.len()
            );
            let agg = session
                .query("acct")
                .unwrap()
                .agg(Agg::sum("bal"))
                .collect_rows()
                .unwrap();
            assert_eq!(agg[0][0].as_int().unwrap(), total, "aggregate path tore");
        }
        stop.store(true, Ordering::SeqCst);
        writer.join().unwrap();
        // Quiesced: replica converges to the master's final state.
        replica.wait_caught_up(WAIT).unwrap();
        let master_rows = Session::new(&db)
            .query("acct")
            .unwrap()
            .collect_rows()
            .unwrap();
        let replica_rows = Session::new(&rdb)
            .query("acct")
            .unwrap()
            .collect_rows()
            .unwrap();
        assert_eq!(master_rows, replica_rows);
    }
}
