//! SQL frontend acceptance (PR 10): every TPC-H query expressed as SQL
//! text produces results **byte-equal** to the hand-built registry plan
//! it shadows — under the row and the columnar batch layout, with NDP
//! off and on — and malformed SQL fails closed with a positioned
//! `Error::Parse` before any operator opens.

use std::sync::{Arc, OnceLock};

use taurus::common::config::ClusterConfig;
use taurus::common::schema::Row;
use taurus::common::{BatchLayout, Error, Value};
use taurus::ndp::TaurusDb;
use taurus::prelude::Session;
use taurus::sql::SessionSqlExt;
use taurus::tpch;

const SF: f64 = 0.01;

fn db_with(layout: BatchLayout) -> Arc<TaurusDb> {
    let mut cfg = ClusterConfig::default();
    cfg.batch_layout = layout;
    cfg.ndp.enabled = true;
    cfg.ndp.min_io_pages = 8;
    let db = TaurusDb::new(cfg);
    tpch::load(&db, SF, 7).unwrap();
    db
}

fn row_db() -> &'static Arc<TaurusDb> {
    static DB: OnceLock<Arc<TaurusDb>> = OnceLock::new();
    DB.get_or_init(|| db_with(BatchLayout::Row))
}

fn col_db() -> &'static Arc<TaurusDb> {
    static DB: OnceLock<Arc<TaurusDb>> = OnceLock::new();
    DB.get_or_init(|| db_with(BatchLayout::Columnar))
}

/// Render rows exactly (Display is total for Value).
fn fmt_rows(rows: &[Row]) -> String {
    rows.iter()
        .map(|r| {
            r.iter()
                .map(|v| match v {
                    Value::Double(d) => format!("{d:.4}"),
                    other => other.to_string(),
                })
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// The registry's main-stage plan result for one query, under one NDP
/// setting (plans are built pre-optimization inside `qN_plan`, which
/// runs `ndp_post_process` itself; with NDP disabled in the catalog the
/// decisions all come back "don't push", so the same entry point serves
/// both settings).
fn registry_rows(db: &Arc<TaurusDb>, name: &str) -> Vec<Row> {
    let q = tpch::tpch_queries()
        .into_iter()
        .find(|q| q.name == name)
        .unwrap();
    let plan = (q.plan)(db, None).unwrap();
    taurus::executor::execute(&plan, &taurus::executor::ExecContext::new(db)).unwrap()
}

fn check_all(db: &'static Arc<TaurusDb>, ndp: bool) {
    for (name, text) in taurus::sql::tpch_sql::all() {
        let mut session = Session::new(db);
        session.set_ndp(ndp);
        let got = session
            .sql(text)
            .unwrap_or_else(|e| panic!("{name} failed to run via SQL: {e}"));
        let want = registry_rows(db, name);
        assert_eq!(
            fmt_rows(&got),
            fmt_rows(&want),
            "{name}: SQL result differs from the registry plan (ndp={ndp})"
        );
    }
}

#[test]
fn tpch_sql_matches_registry_row_layout() {
    check_all(row_db(), false);
    check_all(row_db(), true);
}

#[test]
fn tpch_sql_matches_registry_columnar_layout() {
    check_all(col_db(), false);
    check_all(col_db(), true);
}

#[test]
fn explain_produces_plan_text() {
    let session = Session::new(row_db());
    let rows = session
        .sql("explain select count(*) from lineitem")
        .unwrap();
    assert!(!rows.is_empty());
    let text = rows
        .iter()
        .map(|r| r[0].to_string())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(text.contains("Scan") || text.contains("Agg"), "{text}");
}

#[test]
fn malformed_sql_fails_closed_in_process() {
    let session = Session::new(row_db());
    for text in [
        "",
        "selec * from lineitem",
        "select from lineitem",
        "select * frm lineitem",
        "select * from lineitem where",
        "select count(* from lineitem",
        "select * from no_such_table",
        "select no_such_col from lineitem",
        "select l_orderkey from lineitem order by nope",
        "select 'str' + 1 from lineitem",
    ] {
        match session.sql(text) {
            Err(Error::Parse(msg)) => {
                assert!(
                    msg.starts_with("line "),
                    "diagnostic not positioned for {text:?}: {msg}"
                );
            }
            Err(other) => panic!("{text:?}: expected Error::Parse, got {other:?}"),
            Ok(_) => panic!("{text:?}: malformed SQL executed successfully"),
        }
    }
}
