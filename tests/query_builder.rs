//! `QueryBuilder` error paths and builder-vs-legacy-plan parity.
//!
//! The parity tests are the one sanctioned place outside the optimizer /
//! executor internals that still hand-builds `Plan` trees: they pin the
//! builder's lowering to the legacy `execute(plan, ctx)` path.

use taurus::executor::{execute, ExecContext};
use taurus::optimizer::ndp_post::ndp_post_process;
use taurus::optimizer::plan::{AggFuncEx, AggItem, AggScanNode, Plan, ScanNode};
use taurus::prelude::*;

fn tpch_db() -> std::sync::Arc<TaurusDb> {
    let mut cfg = ClusterConfig::small_for_tests();
    cfg.buffer_pool_pages = 64;
    let db = TaurusDb::new(cfg);
    taurus::tpch::load(&db, 0.005, 11).unwrap();
    db.buffer_pool().clear();
    db
}

// --- error paths -------------------------------------------------------------

#[test]
fn unknown_table_is_name_resolution_error() {
    let db = tpch_db();
    let session = Session::new(&db);
    let err = match session.query("lineitems") {
        Err(e) => e,
        Ok(_) => panic!("unknown table accepted"),
    };
    assert!(matches!(err, Error::NameResolution(_)), "{err}");
    assert!(err.to_string().contains("lineitems"), "{err}");
    // The message helps: it lists what does exist.
    assert!(err.to_string().contains("lineitem"), "{err}");
}

#[test]
fn unknown_column_name_is_name_resolution_error() {
    let db = tpch_db();
    let session = Session::new(&db);
    // In a filter...
    let err = session
        .query("lineitem")
        .unwrap()
        .filter(col("l_shipdat").lt(date("1998-01-01")))
        .collect_rows()
        .unwrap_err();
    assert!(matches!(err, Error::NameResolution(_)), "{err}");
    assert!(err.to_string().contains("l_shipdat"), "{err}");
    // ...in a select...
    let err = session
        .query("lineitem")
        .unwrap()
        .select(["l_orderkey", "l_oops"])
        .collect_rows()
        .unwrap_err();
    assert!(matches!(err, Error::NameResolution(_)), "{err}");
    // ...and in an aggregate input.
    let err = session
        .query("lineitem")
        .unwrap()
        .agg(Agg::sum("l_oops"))
        .collect_rows()
        .unwrap_err();
    assert!(matches!(err, Error::NameResolution(_)), "{err}");
}

#[test]
fn out_of_range_column_position_is_name_resolution_error() {
    let db = tpch_db();
    let session = Session::new(&db);
    // lineitem has 16 columns; position 16 is out of range.
    let err = session
        .query("lineitem")
        .unwrap()
        .select([0usize, 16])
        .collect_rows()
        .unwrap_err();
    assert!(matches!(err, Error::NameResolution(_)), "{err}");
    assert!(err.to_string().contains("16"), "{err}");
    let err = session
        .query("lineitem")
        .unwrap()
        .filter(nth(99).lt(1i64))
        .collect_rows()
        .unwrap_err();
    assert!(matches!(err, Error::NameResolution(_)), "{err}");
}

#[test]
fn unknown_index_is_name_resolution_error() {
    let db = tpch_db();
    let session = Session::new(&db);
    let err = session
        .query("lineitem")
        .unwrap()
        .via_index("i_no_such_index")
        .collect_rows()
        .unwrap_err();
    assert!(matches!(err, Error::NameResolution(_)), "{err}");
}

#[test]
fn group_by_non_key_prefix_is_unsupported() {
    let db = tpch_db();
    let session = Session::new(&db);
    // lineitem's primary key is (l_orderkey, l_linenumber); grouping by
    // l_returnflag cannot stream in index order.
    let err = session
        .query("lineitem")
        .unwrap()
        .group_by(["l_returnflag"])
        .agg(Agg::count_star())
        .collect_rows()
        .unwrap_err();
    assert!(matches!(err, Error::Unsupported(_)), "{err}");
    assert!(err.to_string().contains("prefix"), "{err}");
    // (l_linenumber) alone is not a prefix either — order matters.
    let err = session
        .query("lineitem")
        .unwrap()
        .group_by(["l_linenumber"])
        .agg(Agg::count_star())
        .collect_rows()
        .unwrap_err();
    assert!(matches!(err, Error::Unsupported(_)), "{err}");
}

#[test]
fn order_by_out_of_range_position_is_rejected() {
    let db = tpch_db();
    let session = Session::new(&db);
    let err = session
        .query("lineitem")
        .unwrap()
        .select(["l_orderkey"])
        .order_by(3, false)
        .collect_rows()
        .unwrap_err();
    assert!(matches!(err, Error::NameResolution(_)), "{err}");
}

#[test]
fn first_error_wins_and_chain_stays_fluent() {
    let db = tpch_db();
    let session = Session::new(&db);
    // Every stage after the bad column still chains; the terminal reports
    // the first failure.
    let err = session
        .query("lineitem")
        .unwrap()
        .filter(col("nope").lt(1i64))
        .select(["also_nope"])
        .group_by(["l_returnflag"])
        .agg(Agg::count_star())
        .collect_rows()
        .unwrap_err();
    assert!(err.to_string().contains("nope"), "{err}");
}

#[test]
fn select_combined_with_aggregation_is_unsupported() {
    let db = tpch_db();
    let session = Session::new(&db);
    let err = session
        .query("lineitem")
        .unwrap()
        .select(["l_quantity"])
        .group_by(["l_orderkey"])
        .agg(Agg::sum("l_quantity"))
        .collect_rows()
        .unwrap_err();
    assert!(matches!(err, Error::Unsupported(_)), "{err}");
    assert!(err.to_string().contains("select()"), "{err}");
}

#[test]
fn secondary_index_coverage_checked_at_build_time() {
    let db = tpch_db();
    let session = Session::new(&db);
    // i_l_partkey stores only (l_partkey, l_orderkey, l_linenumber);
    // l_comment is not covered — the builder must say so by name.
    let err = session
        .query("lineitem")
        .unwrap()
        .via_index("i_l_partkey")
        .select(["l_partkey", "l_comment"])
        .collect_rows()
        .unwrap_err();
    assert!(matches!(err, Error::Unsupported(_)), "{err}");
    assert!(err.to_string().contains("l_comment"), "{err}");
    assert!(err.to_string().contains("i_l_partkey"), "{err}");
    // A covered query through the same index works.
    let rows = session
        .query("lineitem")
        .unwrap()
        .via_index("i_l_partkey")
        .select(["l_partkey", "l_orderkey"])
        .filter(col("l_partkey").le(2i64))
        .collect_rows()
        .unwrap();
    assert!(!rows.is_empty());
    // Rows arrive in the secondary index's key order.
    let keys: Vec<i64> = rows.iter().map(|r| r[0].as_int().unwrap()).collect();
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    assert_eq!(keys, sorted);
}

#[test]
fn session_refresh_keeps_transaction_identity() {
    let db = tpch_db();
    let trx = db.begin();
    let t = db.table("region").unwrap();
    let mut session = Session::for_trx(&db, trx);
    db.insert_row(
        &t,
        trx,
        &vec![
            Value::Int(99),
            Value::str("ATLANTIS"),
            Value::str("uncommitted region"),
        ],
    )
    .unwrap();
    // Own uncommitted write is visible before and after refresh().
    session.refresh();
    assert!(session
        .lookup("region", &[Value::Int(99)])
        .unwrap()
        .is_some());
    // A plain session still cannot see it.
    assert!(Session::new(&db)
        .lookup("region", &[Value::Int(99)])
        .unwrap()
        .is_none());
    db.rollback(trx).unwrap();
}

// --- parity with the legacy plan path ---------------------------------------

/// Hand-built legacy plan, optimized and executed through the raw
/// `execute(plan, ctx)` layer.
fn run_legacy(db: &TaurusDb, mut plan: Plan) -> Vec<Row> {
    ndp_post_process(&mut plan, db).unwrap();
    execute(&plan, &ExecContext::new(db)).unwrap()
}

#[test]
fn builder_scan_equals_legacy_plan() {
    let db = tpch_db();
    // Legacy: SELECT l_orderkey, l_quantity FROM lineitem
    //         WHERE l_shipdate >= '1995-06-01'
    let legacy = run_legacy(
        &db,
        Plan::Project(taurus::optimizer::plan::ProjectNode {
            input: Box::new(Plan::Scan(
                ScanNode::new("lineitem", vec![0, 4, 10]).with_predicate(vec![
                    taurus::expr::ast::Expr::ge(
                        taurus::expr::ast::Expr::col(10),
                        taurus::expr::ast::Expr::date("1995-06-01"),
                    ),
                ]),
            )),
            exprs: vec![
                taurus::expr::ast::Expr::col(0),
                taurus::expr::ast::Expr::col(1),
            ],
        }),
    );
    db.buffer_pool().clear();
    let session = Session::new(&db);
    let built = session
        .query("lineitem")
        .unwrap()
        .select(["l_orderkey", "l_quantity"])
        .filter(col("l_shipdate").ge(date("1995-06-01")))
        .collect_rows()
        .unwrap();
    assert!(!built.is_empty());
    assert_eq!(built, legacy);
}

#[test]
fn builder_group_agg_equals_legacy_plan() {
    let db = tpch_db();
    // Legacy: SELECT l_orderkey, SUM(l_quantity), COUNT(*) FROM lineitem
    //         GROUP BY l_orderkey  (a key prefix -> AggScan)
    let legacy = run_legacy(
        &db,
        Plan::AggScan(AggScanNode {
            scan: ScanNode::new("lineitem", vec![0, 4]),
            group_cols: vec![0],
            aggs: vec![
                AggItem {
                    func: AggFuncEx::Sum,
                    input: Some(taurus::expr::ast::Expr::col(4)),
                },
                AggItem {
                    func: AggFuncEx::CountStar,
                    input: None,
                },
            ],
        }),
    );
    db.buffer_pool().clear();
    let session = Session::new(&db);
    let built = session
        .query("lineitem")
        .unwrap()
        .group_by(["l_orderkey"])
        .agg(Agg::sum("l_quantity"))
        .agg(Agg::count_star())
        .collect_rows()
        .unwrap();
    assert!(!built.is_empty());
    assert_eq!(built, legacy);
}

#[test]
fn builder_parallel_equals_serial() {
    let db = tpch_db();
    let session = Session::new(&db);
    let q = |degree: Option<usize>| {
        let mut q = session
            .query("lineitem")
            .unwrap()
            .filter(col("l_shipdate").lt(date("1997-01-01")))
            .agg(Agg::count_star())
            .agg(Agg::sum("l_extendedprice"));
        if let Some(d) = degree {
            q = q.parallel(d);
        }
        q.collect_rows().unwrap()
    };
    let serial = q(None);
    let parallel = q(Some(4));
    assert_eq!(serial, parallel);
    assert!(serial[0][0].as_int().unwrap() > 0);
}

#[test]
fn builder_ndp_on_equals_off() {
    let db = tpch_db();
    let q = |session: &Session| {
        session
            .query("lineitem")
            .unwrap()
            .select(["l_orderkey", "l_shipdate", "l_quantity"])
            .filter(col("l_quantity").lt(Dec::new(1000, 2)))
            .collect_rows()
            .unwrap()
    };
    let off = q(&Session::new(&db).with_ndp(false));
    db.buffer_pool().clear();
    let on = q(&Session::new(&db));
    assert_eq!(off, on);
}

// --- batched streaming ---------------------------------------------------

/// LIMIT landing mid-batch (scan_batch_rows = 7 in small_for_tests) must
/// truncate exactly, matching a prefix of the unlimited result.
#[test]
fn limit_lands_mid_batch() {
    let db = tpch_db();
    let session = Session::new(&db);
    let q = || {
        session
            .query("lineitem")
            .unwrap()
            .select(["l_orderkey", "l_linenumber", "l_quantity"])
    };
    let all = q().collect_rows().unwrap();
    for n in [1usize, 7, 10, 20] {
        let lim = q().limit(n).collect_rows().unwrap();
        assert_eq!(lim.len(), n);
        assert_eq!(lim, all[..n], "limit {n} must be a prefix");
        // The streaming path agrees with the materializing path.
        let streamed: Vec<Row> = q().stream().unwrap().take(n).map(|r| r.unwrap()).collect();
        assert_eq!(streamed, all[..n]);
    }
}

/// Dropping a stream mid-batch must unblock the producer thread and join
/// it (the test hanging = regression); the session stays usable.
#[test]
fn stream_dropped_mid_batch_unblocks_producer() {
    let db = tpch_db();
    let session = Session::new(&db);
    let mut stream = session.query("lineitem").unwrap().stream().unwrap();
    for _ in 0..3 {
        stream.next().unwrap().unwrap();
    }
    drop(stream); // joins the producer; must not hang
    let rows = session.query("region").unwrap().collect_rows().unwrap();
    assert!(!rows.is_empty(), "session survives a dropped stream");
}

/// A stream whose residual filters everything ends cleanly: no rows, no
/// error, producer joined.
#[test]
fn empty_stream_terminates() {
    let db = tpch_db();
    let session = Session::new(&db);
    let mut stream = session
        .query("lineitem")
        .unwrap()
        .filter(col("l_orderkey").lt(0i64))
        .stream()
        .unwrap();
    assert!(stream.next().is_none());
}

/// Full-stream drain equals collect_rows (one batch boundary cannot drop
/// or duplicate rows).
#[test]
fn stream_drain_equals_collect() {
    let db = tpch_db();
    let session = Session::new(&db);
    let q = || {
        session
            .query("orders")
            .unwrap()
            .select(["o_orderkey", "o_totalprice"])
            .filter(col("o_orderkey").le(500i64))
    };
    let collected = q().collect_rows().unwrap();
    let streamed: Vec<Row> = q().stream().unwrap().map(|r| r.unwrap()).collect();
    assert_eq!(streamed, collected);
    assert!(!collected.is_empty());
}

#[test]
fn order_by_and_limit_shape_results() {
    let db = tpch_db();
    let session = Session::new(&db);
    let rows = session
        .query("orders")
        .unwrap()
        .select(["o_orderkey", "o_totalprice"])
        .order_by(1, true)
        .limit(5)
        .collect_rows()
        .unwrap();
    assert_eq!(rows.len(), 5);
    for w in rows.windows(2) {
        assert!(w[0][1].cmp_total(&w[1][1]).is_ge(), "descending order");
    }
}
