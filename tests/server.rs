//! Serving-layer integration tests: end-to-end TPC-H parity over a real
//! socket, lag-aware replica routing under concurrent DML,
//! read-your-LSN stickiness, disconnect-driven scan cancellation, and
//! the session cap.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use taurus::prelude::*;
use taurus::protocol::{
    BuilderSpec, ColSel, DmlRequest, Message, QueryRequest, WireAggFunc, WireExpr, MASTER_NODE,
};

const WAIT: Duration = Duration::from_secs(20);

/// A server whose listener uses an ephemeral port, plus its address.
fn start_server(db: &Arc<TaurusDb>, replicas: Vec<Arc<Replica>>) -> (ServerHandle, String) {
    let handle = Server::start(db, replicas, tpch_registry()).unwrap();
    let addr = handle.local_addr().to_string();
    (handle, addr)
}

fn ephemeral(mut cfg: ClusterConfig) -> ClusterConfig {
    cfg.server.listen_addr = "127.0.0.1:0".into();
    cfg
}

fn acct_schema() -> Arc<TableSchema> {
    TableSchema::new(
        "acct",
        vec![
            Column::new("id", DataType::BigInt),
            Column::new("bal", DataType::BigInt),
        ],
        vec![0],
    )
}

fn sum_bal_spec() -> BuilderSpec {
    let mut spec = BuilderSpec::table("acct");
    spec.aggs = vec![(WireAggFunc::Sum, Some(WireExpr::Col("bal".into())))];
    spec
}

/// End-to-end parity: a TPC-H subset served over the socket decodes to
/// exactly the rows the same plan produces in-process, for named
/// queries, a serialized builder chain, and a point lookup. Also pins
/// the STATS scrape format.
#[test]
fn tpch_over_socket_matches_in_process() {
    let mut cfg = ephemeral(ClusterConfig::default());
    cfg.buffer_pool_pages = 256;
    cfg.slice_pages = 32;
    cfg.ndp.min_io_pages = 8;
    let db = TaurusDb::new(cfg);
    taurus::tpch::load(&db, 0.005, 7).unwrap();
    let (_handle, addr) = start_server(&db, Vec::new());
    let mut client = Client::connect(&addr).unwrap();
    assert_eq!(client.nodes(), 1);

    let session = Session::new(&db);
    let registry = tpch_registry();
    for name in ["Q1", "Q3", "Q6", "Q12", "Q14", "Q18", "Q001", "Q002"] {
        let plan = (registry.get(name).unwrap())(&db, None).unwrap();
        let want = session.execute_plan(&plan).unwrap();
        let got = client.query_named(name, None).unwrap();
        assert_eq!(got.rows, want, "{name}: wire rows differ from in-process");
        assert_eq!(got.node, MASTER_NODE);
    }

    // Serialized builder chain vs the same fluent chain in-process.
    let want = session
        .query("orders")
        .unwrap()
        .filter(col("o_custkey").lt(50))
        .select(["o_orderkey", "o_custkey"])
        .order_by(0, false)
        .collect_rows()
        .unwrap();
    assert!(!want.is_empty());
    let mut spec = BuilderSpec::table("orders");
    spec.filters.push(WireExpr::Cmp(
        2, // Lt
        Box::new(WireExpr::Col("o_custkey".into())),
        Box::new(WireExpr::Lit(Value::Int(50))),
    ));
    spec.select = vec![
        ColSel::Name("o_orderkey".into()),
        ColSel::Name("o_custkey".into()),
    ];
    spec.order = vec![(0, false)];
    let got = client.query_builder(spec).unwrap();
    assert_eq!(got.rows, want);

    // Point lookup parity: fetch a known pk over the wire.
    let pk = want[0][0].clone();
    let in_process = session
        .lookup("orders", std::slice::from_ref(&pk))
        .unwrap()
        .unwrap();
    let (wire_row, node) = client.lookup("orders", vec![pk]).unwrap();
    assert_eq!(wire_row.unwrap(), in_process);
    assert_eq!(node, MASTER_NODE);
    let (missing, _) = client.lookup("orders", vec![Value::Int(-1)]).unwrap();
    assert!(missing.is_none());

    // STATS: stable `name value` lines, counting this session's work.
    let stats = client.stats().unwrap();
    let served: u64 = stats
        .lines()
        .find_map(|l| l.strip_prefix("server_queries "))
        .unwrap()
        .parse()
        .unwrap();
    assert!(served >= 10);
    for line in stats.lines() {
        let (name, value) = line.split_once(' ').unwrap();
        assert!(!name.is_empty() && value.parse::<u64>().is_ok(), "{line}");
    }

    // Unknown names come back as structured NotFound, session intact.
    match client.query_named("Q99", None) {
        Err(Error::NotFound(m)) => assert!(m.contains("Q99"), "{m}"),
        other => panic!("expected NotFound, got {other:?}"),
    }
    assert!(client.query_named("Q6", None).is_ok());
}

/// SQL text over the wire: parity with the in-process facade, EXPLAIN
/// as single-column string rows, fail-closed positioned parse errors
/// (wire error code 1), and the `sql_queries` / `sql_parse_errors`
/// counters.
#[test]
fn sql_over_socket_matches_in_process_and_fails_closed() {
    let mut cfg = ephemeral(ClusterConfig::default());
    cfg.buffer_pool_pages = 256;
    cfg.slice_pages = 32;
    cfg.ndp.min_io_pages = 8;
    let db = TaurusDb::new(cfg);
    taurus::tpch::load(&db, 0.005, 7).unwrap();
    let (_handle, addr) = start_server(&db, Vec::new());
    let mut client = Client::connect(&addr).unwrap();

    // A TPC-H subset, both NDP modes, against the in-process facade.
    for ndp in [false, true] {
        for name in ["Q1", "Q3", "Q6", "Q14"] {
            let text = taurus::sql::tpch_sql::sql_for(name).unwrap();
            let mut session = Session::new(&db);
            session.set_ndp(ndp);
            let want = session.sql(text).unwrap();
            let got = client.query_sql(text, ndp).unwrap();
            assert_eq!(got.rows, want, "{name} (ndp={ndp}): wire rows differ");
            assert_eq!(got.node, MASTER_NODE);
        }
    }

    // Ad-hoc SQL with no registry entry works the same way.
    let adhoc = "select o_orderpriority, count(*) as n from orders \
                 where o_custkey < 100 group by o_orderpriority \
                 order by o_orderpriority";
    let want = Session::new(&db).sql(adhoc).unwrap();
    assert!(!want.is_empty());
    let got = client.query_sql(adhoc, false).unwrap();
    assert_eq!(got.rows, want);

    // EXPLAIN: one single-column string row per plan line.
    let got = client
        .query_sql(
            "explain select count(*) from lineitem where l_quantity < 10",
            true,
        )
        .unwrap();
    assert!(!got.rows.is_empty());
    assert!(got
        .rows
        .iter()
        .all(|r| r.len() == 1 && matches!(r[0], Value::Str(_))));

    // Malformed SQL fails closed with the positioned diagnostic and the
    // session stays usable.
    for bad in [
        "selec 1",
        "select * from nope",
        "select l_orderkey from lineitem where",
    ] {
        match client.query_sql(bad, false) {
            Err(Error::Parse(m)) => assert!(m.starts_with("line "), "{bad:?}: {m}"),
            other => panic!("expected Parse for {bad:?}, got {other:?}"),
        }
    }
    let ok = client
        .query_sql("select n_name from nation order by n_name limit 1", false)
        .unwrap();
    assert_eq!(ok.rows.len(), 1);

    let snap = db.metrics().snapshot();
    assert!(snap.sql_queries >= 14, "sql_queries = {}", snap.sql_queries);
    assert_eq!(snap.sql_parse_errors, 3);
}

/// Replica routing under write load: every wire read must observe a
/// transaction-consistent snapshot (the transfer invariant holds no
/// matter which node serves), and once the writer stops, the rotation
/// spreads reads across master and both replicas.
#[test]
fn replica_routing_holds_invariants_under_concurrent_writer() {
    let mut cfg = ephemeral(ClusterConfig::small_for_tests());
    cfg.pagestore_versions_retained = 64;
    let db = TaurusDb::new(cfg);
    let table = db.create_table(acct_schema(), &[]).unwrap();
    let rows: Vec<Row> = (0..32)
        .map(|i| vec![Value::Int(i), Value::Int(100)])
        .collect();
    db.bulk_load(&table, rows).unwrap();
    let total = 3200i64;

    let replicas = vec![Replica::attach(&db), Replica::attach(&db)];
    for r in &replicas {
        r.wait_caught_up(WAIT).unwrap();
    }
    let (_handle, addr) = start_server(&db, replicas.clone());
    let mut client = Client::connect(&addr).unwrap();
    assert_eq!(client.nodes(), 3);

    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let db = db.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut k = 0i64;
            while !stop.load(Ordering::SeqCst) {
                let trx = db.begin();
                let (i, j) = (k * 7 % 32, (k * 13 + 5) % 32);
                if i != j {
                    let get = |id: i64| {
                        db.lookup_row(&table, &db.read_view(trx), &[Value::Int(id)])
                            .unwrap()
                            .unwrap()[1]
                            .as_int()
                            .unwrap()
                    };
                    let (bi, bj) = (get(i), get(j));
                    db.update_row(&table, trx, &vec![Value::Int(i), Value::Int(bi - 1)])
                        .unwrap();
                    db.update_row(&table, trx, &vec![Value::Int(j), Value::Int(bj + 1)])
                        .unwrap();
                }
                db.commit(trx);
                k += 1;
                std::thread::sleep(Duration::from_micros(50));
            }
        })
    };

    for round in 0..25 {
        let reply = client.query_builder(sum_bal_spec()).unwrap();
        let sum = reply.rows[0][0].as_int().unwrap();
        assert_eq!(
            sum, total,
            "torn snapshot over the wire (round {round}, node {})",
            reply.node
        );
    }
    stop.store(true, Ordering::SeqCst);
    writer.join().unwrap();

    // Quiesced and caught up: the round-robin must reach every node.
    for r in &replicas {
        r.wait_caught_up(WAIT).unwrap();
    }
    let mut nodes = std::collections::HashSet::new();
    for _ in 0..12 {
        let reply = client.query_builder(sum_bal_spec()).unwrap();
        assert_eq!(reply.rows[0][0].as_int().unwrap(), total);
        nodes.insert(reply.node);
    }
    assert_eq!(nodes, std::collections::HashSet::from([0, 1, 2]));

    // The scrape shows replica engine counters under their prefix.
    let stats = client.stats().unwrap();
    assert!(stats.lines().any(|l| l.starts_with("replica0.")));
    assert!(stats.lines().any(|l| l.starts_with("replica1.")));
    let snap = db.metrics().snapshot();
    assert!(snap.server_routed_replica > 0);
    assert!(snap.server_routed_master > 0);
}

/// Read-your-LSN stickiness: after a wire write, the same connection's
/// reads must route around a replica that has not yet applied the
/// commit — and return to it once it catches up.
#[test]
fn reads_after_write_stick_to_caught_up_nodes() {
    let mut cfg = ephemeral(ClusterConfig::small_for_tests());
    // A tailer that polls rarely: writes stay invisible on the replica
    // for ~2 s, which is the window stickiness must cover.
    cfg.replica.poll_interval_us = 2_000_000;
    cfg.replica.max_lag_lsn = None;
    let db = TaurusDb::new(cfg);
    let table = db.create_table(acct_schema(), &[]).unwrap();
    let rows: Vec<Row> = (0..8)
        .map(|i| vec![Value::Int(i), Value::Int(100)])
        .collect();
    db.bulk_load(&table, rows).unwrap();
    let replica = Replica::attach(&db);
    replica.wait_caught_up(WAIT).unwrap();

    let (_handle, addr) = start_server(&db, vec![replica.clone()]);
    let mut client = Client::connect(&addr).unwrap();

    // Let the tailer settle into its idle sleep, then write over the
    // wire: the commit LSN comes back and becomes the session's bound.
    std::thread::sleep(Duration::from_millis(100));
    let lsn = client
        .execute(DmlRequest::Insert {
            table: "acct".into(),
            row: vec![Value::Int(1000), Value::Int(7)],
        })
        .unwrap();
    assert!(lsn > 0);
    assert!(replica.visible_lsn() < lsn, "replica must still lag here");

    // Until the replica applies the commit, every read on this
    // connection must see the row — which forces node 0.
    for i in 0..6 {
        let (row, node) = client.lookup("acct", vec![Value::Int(1000)]).unwrap();
        assert_eq!(
            row.expect("read-your-writes violated"),
            vec![Value::Int(1000), Value::Int(7)],
            "read {i}"
        );
        assert_eq!(node, MASTER_NODE, "read {i} routed to a stale replica");
    }
    assert_eq!(db.metrics().snapshot().server_routed_replica, 0);

    // Once caught up, the same connection's rotation includes the
    // replica again — and it serves the write.
    replica.wait_caught_up(WAIT).unwrap();
    let mut nodes = std::collections::HashSet::new();
    for _ in 0..6 {
        let (row, node) = client.lookup("acct", vec![Value::Int(1000)]).unwrap();
        assert_eq!(row.unwrap()[1], Value::Int(7));
        nodes.insert(node);
    }
    assert_eq!(nodes, std::collections::HashSet::from([0, 1]));
}

/// Dropping the client mid-stream must cancel the producing scan: NDP
/// in-flight batches and buffer-pool NDP frames drain to zero and the
/// session gauge returns to zero.
#[test]
fn client_drop_mid_stream_cancels_the_scan() {
    let mut cfg = ephemeral(ClusterConfig::small_for_tests());
    cfg.ndp.min_io_pages = 1;
    cfg.ndp.prefetch_batches = 2;
    let db = TaurusDb::new(cfg);
    taurus::tpch::load(&db, 0.005, 7).unwrap();
    let (handle, addr) = start_server(&db, Vec::new());

    let mut client = Client::connect(&addr).unwrap();
    // A selective-but-passing filter keeps the scan on the NDP path
    // while producing the full table as result frames.
    let mut spec = BuilderSpec::table("lineitem");
    spec.filters.push(WireExpr::Cmp(
        4, // Gt
        Box::new(WireExpr::Col("l_orderkey".into())),
        Box::new(WireExpr::Lit(Value::Int(0))),
    ));
    client
        .send(&Message::Query(QueryRequest::Builder(spec)))
        .unwrap();
    // Read exactly one result frame, then vanish.
    match client.recv().unwrap() {
        Message::RowBatch(b) => assert!(!b.is_empty()),
        other => panic!("expected a RowBatch first, got {other:?}"),
    }
    drop(client);

    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let snap = db.metrics().snapshot();
        if snap.ndp_batches_in_flight == 0
            && db.buffer_pool().ndp_frames_in_use() == 0
            && snap.server_sessions == 0
            && handle.live_sessions() == 0
        {
            assert!(
                snap.ndp_batches_in_flight_peak > 0,
                "precondition: the scan must actually have used NDP prefetch"
            );
            break;
        }
        assert!(
            Instant::now() < deadline,
            "scan not cancelled: in_flight={} ndp_frames={} sessions={}",
            snap.ndp_batches_in_flight,
            db.buffer_pool().ndp_frames_in_use(),
            snap.server_sessions
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// `server.max_sessions`: connection N+1 is refused with the *retryable*
/// Overloaded error naming the limit, and the slot frees once a session
/// ends.
#[test]
fn sessions_beyond_the_cap_are_refused_until_one_frees() {
    let mut cfg = ephemeral(ClusterConfig::small_for_tests());
    cfg.server.max_sessions = 2;
    let db = TaurusDb::new(cfg);
    let table = db.create_table(acct_schema(), &[]).unwrap();
    db.bulk_load(&table, vec![vec![Value::Int(1), Value::Int(10)]])
        .unwrap();
    let (_handle, addr) = start_server(&db, Vec::new());

    let c1 = Client::connect(&addr).unwrap();
    let mut c2 = Client::connect(&addr).unwrap();
    match Client::connect(&addr) {
        Err(Error::Overloaded(m)) => assert!(m.contains("max_sessions"), "{m}"),
        Err(other) => panic!("expected Overloaded, got {other:?}"),
        Ok(_) => panic!("third connection must be refused"),
    }
    assert!(db.metrics().snapshot().server_sessions_refused >= 1);
    // Surviving sessions are unaffected.
    let (row, _) = c2.lookup("acct", vec![Value::Int(1)]).unwrap();
    assert_eq!(row.unwrap()[1], Value::Int(10));

    // Freeing one slot re-admits new connections (poll: the server
    // notices the disconnect asynchronously).
    drop(c1);
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut c3 = loop {
        match Client::connect(&addr) {
            Ok(c) => break c,
            Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(50)),
            Err(e) => panic!("slot never freed: {e}"),
        }
    };
    let (row, _) = c3.lookup("acct", vec![Value::Int(1)]).unwrap();
    assert_eq!(row.unwrap()[1], Value::Int(10));
}

/// A replica detached mid-session silently leaves the rotation: later
/// queries on the same connection all succeed on the master.
#[test]
fn detached_replica_leaves_rotation_mid_session() {
    let mut cfg = ephemeral(ClusterConfig::small_for_tests());
    cfg.pagestore_versions_retained = 64;
    let db = TaurusDb::new(cfg);
    let table = db.create_table(acct_schema(), &[]).unwrap();
    let rows: Vec<Row> = (0..16)
        .map(|i| vec![Value::Int(i), Value::Int(100)])
        .collect();
    db.bulk_load(&table, rows).unwrap();
    let replica = Replica::attach(&db);
    replica.wait_caught_up(WAIT).unwrap();
    let (_handle, addr) = start_server(&db, vec![replica.clone()]);
    let mut client = Client::connect(&addr).unwrap();

    // Both nodes serve before the detach.
    let mut nodes = std::collections::HashSet::new();
    for _ in 0..6 {
        let reply = client.query_builder(sum_bal_spec()).unwrap();
        assert_eq!(reply.rows[0][0].as_int().unwrap(), 1600);
        nodes.insert(reply.node);
    }
    assert_eq!(nodes, std::collections::HashSet::from([0, 1]));

    replica.detach();
    for round in 0..8 {
        let reply = client.query_builder(sum_bal_spec()).unwrap();
        assert_eq!(reply.rows[0][0].as_int().unwrap(), 1600, "round {round}");
        assert_eq!(
            reply.node, MASTER_NODE,
            "round {round} hit a detached replica"
        );
    }
}
