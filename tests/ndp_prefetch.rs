//! The prefetching NDP read pipeline, end to end: parity with the
//! serial path across prefetch depths and batch sizes, the in-flight
//! overlap observable, cancellation from a dropped `RowStream` all the
//! way down to the SAL dispatch threads, and replica failover under a
//! killed Page Store.

use std::sync::Arc;

use taurus::prelude::*;

/// A lineitem-ish table wide enough that NDP projection/predicate pay
/// off, spread over enough pages for several leaf batches per scan.
fn build_db(mut cfg: ClusterConfig) -> Arc<TaurusDb> {
    cfg.ndp.min_io_pages = 1;
    cfg.page_size = 2048;
    cfg.slice_pages = 8;
    cfg.buffer_pool_pages = 64;
    cfg.ndp.max_pages_look_ahead = 8;
    let db = TaurusDb::new(cfg);
    let schema = TableSchema::new(
        "items",
        vec![
            Column::new("id", DataType::BigInt),
            Column::new("qty", DataType::Int),
            Column::new(
                "price",
                DataType::Decimal {
                    precision: 15,
                    scale: 2,
                },
            ),
            Column::new("d", DataType::Date),
            Column::new("note", DataType::Varchar(60)),
        ],
        vec![0],
    );
    let t = db.create_table(schema, &[]).unwrap();
    let rows: Vec<Row> = (0..4000i64)
        .map(|i| {
            vec![
                Value::Int(i),
                Value::Int(i % 50),
                Value::Decimal(Dec::new(((i % 900) * 100 + 17) as i128, 2)),
                Value::Date(Date32::from_ymd(1994, 1, 1).add_days((i % 730) as i32)),
                Value::str(format!("padding so rows span many pages, row {i}")),
            ]
        })
        .collect();
    db.bulk_load(&t, rows).unwrap();
    db.buffer_pool().clear();
    db
}

fn filtered_query<'a>(session: &'a Session) -> QueryBuilder<'a> {
    session
        .query("items")
        .unwrap()
        .select(["id", "price"])
        .filter(col("qty").lt(30))
}

/// stream == collect at every (prefetch_batches, scan_batch_rows) corner,
/// including the degenerate row-at-a-time and serial (prefetch=1)
/// configurations.
#[test]
fn prefetch_matrix_stream_equals_collect() {
    let mut reference: Option<Vec<Row>> = None;
    for prefetch in [1usize, 2, 8] {
        for batch_rows in [1usize, 1024] {
            let mut cfg = ClusterConfig::small_for_tests();
            cfg.ndp.prefetch_batches = prefetch;
            cfg.scan_batch_rows = batch_rows;
            let db = build_db(cfg);
            let session = Session::new(&db);
            let collected = filtered_query(&session).collect_rows().unwrap();
            db.buffer_pool().clear();
            let streamed: Vec<Row> = filtered_query(&session)
                .stream()
                .unwrap()
                .collect_rows()
                .unwrap();
            assert_eq!(
                streamed, collected,
                "stream/collect diverged at prefetch={prefetch} batch={batch_rows}"
            );
            match &reference {
                None => reference = Some(collected),
                Some(r) => assert_eq!(
                    &collected, r,
                    "results changed at prefetch={prefetch} batch={batch_rows}"
                ),
            }
            assert_eq!(
                db.metrics().snapshot().ndp_batches_in_flight,
                0,
                "in-flight gauge must balance after every scan"
            );
        }
    }
    assert!(reference.unwrap().len() > 1000, "non-trivial workload");
}

/// The pipeline observable: with prefetch ≥ 2 and several leaf batches,
/// batch N+1's read must be dispatched while batch N is consumed.
#[test]
fn prefetch_overlaps_fetch_with_consumption() {
    let mut cfg = ClusterConfig::small_for_tests();
    cfg.ndp.prefetch_batches = 2;
    let db = build_db(cfg);
    let session = Session::new(&db);
    let rows = filtered_query(&session).collect_rows().unwrap();
    assert!(rows.len() > 1000);
    let s = db.metrics().snapshot();
    assert!(
        s.ndp_batches_in_flight_peak >= 2,
        "expected ≥ 2 batches in flight, peak was {}",
        s.ndp_batches_in_flight_peak
    );
    assert_eq!(s.ndp_batches_in_flight, 0, "gauge balanced at rest");

    // Serial configuration: the pipeline never runs ahead.
    let mut cfg = ClusterConfig::small_for_tests();
    cfg.ndp.prefetch_batches = 1;
    let db = build_db(cfg);
    let session = Session::new(&db);
    filtered_query(&session).collect_rows().unwrap();
    assert_eq!(db.metrics().snapshot().ndp_batches_in_flight_peak, 1);
}

/// Dropping the stream mid-scan must cancel the prefetcher: NDP frames
/// all released, the in-flight gauge back to zero, and no storage thread
/// left running (joined via the RowStream → operator → scan → SAL chain).
#[test]
fn dropped_stream_cancels_prefetch_pipeline() {
    for prefetch in [1usize, 2, 8] {
        let mut cfg = ClusterConfig::small_for_tests();
        cfg.ndp.prefetch_batches = prefetch;
        let db = build_db(cfg);
        let session = Session::new(&db);
        let mut stream = filtered_query(&session).stream().unwrap();
        // Pull a handful of rows, then abandon the stream mid-batch.
        for _ in 0..5 {
            stream.next().unwrap().unwrap();
        }
        drop(stream); // joins the producer: scan fully unwound here
        let s = db.metrics().snapshot();
        assert_eq!(
            db.buffer_pool().ndp_frames_in_use(),
            0,
            "cancelled scan leaked NDP frames at prefetch={prefetch}"
        );
        assert_eq!(
            s.ndp_batches_in_flight, 0,
            "cancelled scan left batches in flight at prefetch={prefetch}"
        );
        let total = db.table("items").unwrap().stats.read().row_count;
        assert!(
            s.rows_scanned < total / 2,
            "dropped stream kept scanning: {} of {total} rows",
            s.rows_scanned
        );
    }
}

/// LIMIT satisfied mid-batch over an NDP aggregate scan: the aggregate
/// pipeline breaker runs its scan to completion, the stream stops after
/// one group — and the prefetcher unwinds cleanly either way.
#[test]
fn mid_batch_limit_over_ndp_aggregate_scan() {
    for batch_rows in [1usize, 1024] {
        let mut cfg = ClusterConfig::small_for_tests();
        cfg.ndp.prefetch_batches = 2;
        cfg.scan_batch_rows = batch_rows;
        let db = build_db(cfg);
        let session = Session::new(&db);
        fn agg<'a>(s: &'a Session) -> QueryBuilder<'a> {
            s.query("items")
                .unwrap()
                .filter(col("qty").lt(30))
                .agg(Agg::sum("price"))
                .agg(Agg::count_star())
        }
        let collected = agg(&session).collect_rows().unwrap();
        db.buffer_pool().clear();
        let mut stream = agg(&session).limit(1).stream().unwrap();
        let first = stream.next().unwrap().unwrap();
        drop(stream);
        assert_eq!(vec![first], collected, "batch={batch_rows}");
        assert_eq!(db.buffer_pool().ndp_frames_in_use(), 0);
        assert_eq!(db.metrics().snapshot().ndp_batches_in_flight, 0);
    }
}

/// Many concurrent NDP scans on a pool far too small for the sum of
/// their look-ahead quotas: staging degrades to deferred (consume-time)
/// frame allocation instead of erroring, so every scan completes with
/// identical results — the pre-pipeline guarantee that a scan needs only
/// one frame at a time to make progress.
#[test]
fn concurrent_scans_share_a_tiny_pool() {
    let mut cfg = ClusterConfig::small_for_tests();
    cfg.ndp.prefetch_batches = 2;
    // build_db pins buffer_pool_pages=64 / look_ahead=8: 12 concurrent
    // scans × an 8-frame quota ≫ 64 frames, far past the sum the pool
    // can stage at once.
    let db = build_db(cfg);
    let session = Session::new(&db);
    let expect = filtered_query(&session).collect_rows().unwrap();
    db.buffer_pool().clear();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..12)
            .map(|_| {
                let db = &db;
                let expect = &expect;
                s.spawn(move || {
                    let session = Session::new(db);
                    let rows = filtered_query(&session).collect_rows().unwrap();
                    assert_eq!(&rows, expect);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
    assert_eq!(db.buffer_pool().ndp_frames_in_use(), 0);
    assert_eq!(db.metrics().snapshot().ndp_batches_in_flight, 0);
}

/// Streams that stop being polled park their scans mid-backpressure
/// with staged look-ahead frames still held. An active scan must not
/// fail (or hang) because parked streams pin the NDP area — it degrades
/// to unaccounted consumption and completes with correct results.
#[test]
fn parked_streams_do_not_starve_active_scans() {
    let mut cfg = ClusterConfig::small_for_tests();
    cfg.ndp.prefetch_batches = 2;
    let db = build_db(cfg);
    let session = Session::new(&db);
    let expect = filtered_query(&session).collect_rows().unwrap();
    db.buffer_pool().clear();
    // Park 8 streams after one row each: each holds its channel
    // backpressure plus whatever look-ahead frames it staged.
    let mut parked = Vec::new();
    for _ in 0..8 {
        let mut s = filtered_query(&session).stream().unwrap();
        s.next().unwrap().unwrap();
        parked.push(s);
    }
    // The active scan completes correctly regardless of what the parked
    // scans pinned.
    let rows = filtered_query(&session).collect_rows().unwrap();
    assert_eq!(rows, expect);
    drop(parked);
    assert_eq!(db.buffer_pool().ndp_frames_in_use(), 0);
    assert_eq!(db.metrics().snapshot().ndp_batches_in_flight, 0);
}

/// Kill one Page Store replica: every sub-batch placed on it must fail
/// over to surviving replicas, the scan must return exactly the same
/// rows, and the retries must be visible on the wire accounting.
#[test]
fn ndp_scan_survives_killed_replica() {
    let mut cfg = ClusterConfig::small_for_tests();
    cfg.n_page_stores = 3;
    cfg.replication = 2;
    cfg.ndp.prefetch_batches = 2;
    let db = build_db(cfg);
    let session = Session::new(&db);
    let clean = filtered_query(&session).collect_rows().unwrap();

    // Kill replica 0 (every slice has a second copy elsewhere).
    db.sal().page_stores()[0].set_poisoned(true);
    db.buffer_pool().clear();
    let before = db.metrics().snapshot();
    let failed_over = filtered_query(&session).collect_rows().unwrap();
    let d = db.metrics().snapshot().since(&before);
    assert_eq!(failed_over, clean, "failover changed scan results");
    assert!(
        d.read_retries > 0,
        "a dead replica must show up as retries (got {})",
        d.read_retries
    );

    // All replicas of some slice down → the scan must error, not hang.
    db.sal().page_stores()[1].set_poisoned(true);
    db.sal().page_stores()[2].set_poisoned(true);
    db.buffer_pool().clear();
    let err = filtered_query(&session).collect_rows();
    assert!(err.is_err(), "no surviving replica must surface an error");
    assert_eq!(db.buffer_pool().ndp_frames_in_use(), 0);
    assert_eq!(db.metrics().snapshot().ndp_batches_in_flight, 0);

    for ps in db.sal().page_stores() {
        ps.set_poisoned(false);
    }
    db.buffer_pool().clear();
    assert_eq!(
        filtered_query(&session).collect_rows().unwrap(),
        clean,
        "revived cluster serves again"
    );
}
