//! Cross-crate integration through the public `taurus` API: DDL, DML,
//! transactions, the `Session`/`QueryBuilder` facade, EXPLAIN, and
//! streaming execution.

use taurus::prelude::*;

fn worker_db() -> (std::sync::Arc<TaurusDb>, std::sync::Arc<Table>) {
    let mut cfg = ClusterConfig::small_for_tests();
    cfg.ndp.min_io_pages = 1;
    let db = TaurusDb::new(cfg);
    // "The query only projects one column out of many" (§III) — the wide
    // columns are what makes NDP column projection worthwhile.
    let schema = TableSchema::new(
        "worker",
        vec![
            Column::new("id", DataType::BigInt),
            Column::new("age", DataType::Int),
            Column::new("joindate", DataType::Date),
            Column::new(
                "salary",
                DataType::Decimal {
                    precision: 15,
                    scale: 2,
                },
            ),
            Column::new("name", DataType::Varchar(40)),
            Column::new("resume", DataType::Varchar(120)),
        ],
        vec![0],
    );
    let t = db.create_table(schema, &[]).unwrap();
    let rows: Vec<Row> = (0..2000i64)
        .map(|i| {
            vec![
                Value::Int(i),
                Value::Int(20 + i % 50),
                Value::Date(Date32::from_ymd(2008, 1, 1).add_days((i % 2000) as i32)),
                Value::Decimal(Dec::new((40_000 + i * 13) as i128, 2)),
                Value::str(format!("worker number {i}")),
                Value::str(format!(
                    "joined the company and wrote code, id {i}, more text here"
                )),
            ]
        })
        .collect();
    db.bulk_load(&t, rows).unwrap();
    db.buffer_pool().clear();
    (db, t)
}

/// The §III Listing-1 query through the facade.
fn listing1(session: &Session) -> Result<QueryBuilder<'_>> {
    let start = Date32::parse("2010-01-01").unwrap();
    Ok(session
        .query("worker")?
        .filter(col("age").lt(40))
        .filter(col("joindate").ge(start))
        .filter(col("joindate").lt(start.add_years(1)))
        .agg(Agg::avg("salary")))
}

#[test]
fn explain_prints_listing2_annotations() {
    let (db, _t) = worker_db();
    let session = Session::new(&db);
    let explained = listing1(&session).unwrap().explain().unwrap();
    let text = explained.to_string();
    assert!(text.contains("Using pushed NDP condition"), "{text}");
    assert!(text.contains("Using pushed NDP columns"), "{text}");
    assert!(text.contains("Using pushed NDP aggregate"), "{text}");
    assert!(text.contains("joindate"), "column names resolved: {text}");
    assert!(text.contains("est_io"), "reports rendered: {text}");
    assert_eq!(explained.reports.len(), 1);
    assert!(explained.reports[0].aggregation);
}

#[test]
fn listing1_avg_matches_with_and_without_ndp() {
    let (db, _t) = worker_db();
    let plain = listing1(&Session::new(&db).with_ndp(false))
        .unwrap()
        .run()
        .unwrap();
    db.buffer_pool().clear();
    let ndp = listing1(&Session::new(&db)).unwrap().run().unwrap();
    assert_eq!(plain.rows, ndp.rows);
    assert!(matches!(ndp.rows[0][0], Value::Decimal(_)));
}

#[test]
fn transactions_commit_rollback_through_api() {
    let (db, t) = worker_db();
    // A session opened now must never see rows committed later (its read
    // view is fixed at creation — the paper's InnoDB MVCC behaviour).
    let session_before = Session::new(&db);
    // Committed insert becomes visible; rolled-back one never does.
    let t1 = db.begin();
    db.insert_row(
        &t,
        t1,
        &vec![
            Value::Int(99_991),
            Value::Int(30),
            Value::Date(Date32::parse("2012-05-01").unwrap()),
            Value::Decimal(Dec::new(1, 2)),
            Value::str("committed worker"),
            Value::str("n/a"),
        ],
    )
    .unwrap();
    db.commit(t1);
    let t2 = db.begin();
    db.insert_row(
        &t,
        t2,
        &vec![
            Value::Int(99_992),
            Value::Int(31),
            Value::Date(Date32::parse("2012-05-01").unwrap()),
            Value::Decimal(Dec::new(2, 2)),
            Value::str("rolled-back worker"),
            Value::str("n/a"),
        ],
    )
    .unwrap();
    db.rollback(t2).unwrap();

    let session_after = Session::new(&db);
    assert!(session_after
        .lookup("worker", &[Value::Int(99_991)])
        .unwrap()
        .is_some());
    assert!(session_after
        .lookup("worker", &[Value::Int(99_992)])
        .unwrap()
        .is_none());
    // The old snapshot sees neither.
    assert!(session_before
        .lookup("worker", &[Value::Int(99_991)])
        .unwrap()
        .is_none());

    // The same visibility through a filtered query.
    let rows = session_after
        .query("worker")
        .unwrap()
        .select(["id", "name"])
        .filter(col("id").ge(99_000i64))
        .collect_rows()
        .unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0][0], Value::Int(99_991));
}

#[test]
fn ndp_gate_respects_min_io_pages() {
    // With a huge min-IO threshold, the post-processing pass must refuse
    // NDP (the paper's Q11/Q17/Q19/Q20 behaviour).
    let (db, _t) = worker_db();
    let mut cfg = db.config().clone();
    cfg.ndp.min_io_pages = 1_000_000;
    let db2 = TaurusDb::new(cfg);
    let schema = db.table("worker").unwrap().schema.clone();
    let t2 = db2.create_table(schema, &[]).unwrap();
    db2.bulk_load(
        &t2,
        vec![vec![
            Value::Int(1),
            Value::Int(30),
            Value::Date(Date32::parse("2010-06-01").unwrap()),
            Value::Decimal(Dec::new(100, 2)),
            Value::str("only worker"),
            Value::str("n/a"),
        ]],
    )
    .unwrap();
    let session = Session::new(&db2);
    let explained = listing1(&session).unwrap().explain().unwrap();
    assert!(explained.reports[0].gated_by_io);
    assert!(
        !explained.text.contains("Using pushed NDP"),
        "{}",
        explained.text
    );
    // The gated query still runs (classical path) and returns a result.
    let rows = listing1(&session).unwrap().collect_rows().unwrap();
    assert_eq!(rows.len(), 1);
}

#[test]
fn row_stream_over_lineitem_does_not_materialize() {
    // A streaming scan over TPC-H lineitem: taking a handful of rows must
    // not scan (let alone materialize) the whole table.
    let mut cfg = ClusterConfig::small_for_tests();
    cfg.buffer_pool_pages = 32;
    let db = TaurusDb::new(cfg);
    taurus::tpch::load(&db, 0.01, 42).unwrap();
    let total = db.table("lineitem").unwrap().stats.read().row_count;
    assert!(total > 1000, "need a non-trivial table, got {total} rows");
    db.buffer_pool().clear();

    let session = Session::new(&db);
    let before = db.metrics().snapshot();
    let mut streamed: Vec<Row> = Vec::new();
    for row in session
        .query("lineitem")
        .unwrap()
        .select(["l_orderkey", "l_linenumber", "l_quantity"])
        .stream()
        .unwrap()
        .take(10)
    {
        streamed.push(row.unwrap());
    }
    let delta = db.metrics().snapshot().since(&before);
    assert_eq!(streamed.len(), 10);
    assert!(streamed.iter().all(|r| r.len() == 3));
    // Rows arrive in primary-key order.
    let keys: Vec<i64> = streamed.iter().map(|r| r[0].as_int().unwrap()).collect();
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    assert_eq!(keys, sorted);
    // The early-stopped scan touched only the stream's look-ahead window,
    // not the table.
    assert!(
        delta.rows_scanned < total / 2,
        "streaming scanned {} of {total} rows — materialized?",
        delta.rows_scanned
    );

    // The same stream, fully drained, equals the materializing terminal.
    let all_streamed: Vec<Row> = session
        .query("lineitem")
        .unwrap()
        .select(["l_orderkey", "l_linenumber", "l_quantity"])
        .stream()
        .unwrap()
        .collect_rows()
        .unwrap();
    let all_collected = session
        .query("lineitem")
        .unwrap()
        .select(["l_orderkey", "l_linenumber", "l_quantity"])
        .collect_rows()
        .unwrap();
    assert_eq!(all_streamed.len(), total as usize);
    assert_eq!(all_streamed, all_collected);
}
