//! Cross-crate integration through the public `taurus` API: DDL, DML,
//! transactions, planning, EXPLAIN, and query execution.

use taurus::prelude::*;
use taurus::optimizer::plan::AggScanNode;

fn worker_db() -> (std::sync::Arc<TaurusDb>, std::sync::Arc<Table>) {
    let mut cfg = ClusterConfig::small_for_tests();
    cfg.ndp.min_io_pages = 1;
    let db = TaurusDb::new(cfg);
    // "The query only projects one column out of many" (§III) — the wide
    // columns are what makes NDP column projection worthwhile.
    let schema = TableSchema::new(
        "worker",
        vec![
            Column::new("id", DataType::BigInt),
            Column::new("age", DataType::Int),
            Column::new("joindate", DataType::Date),
            Column::new("salary", DataType::Decimal { precision: 15, scale: 2 }),
            Column::new("name", DataType::Varchar(40)),
            Column::new("resume", DataType::Varchar(120)),
        ],
        vec![0],
    );
    let t = db.create_table(schema, &[]).unwrap();
    let rows: Vec<Row> = (0..2000i64)
        .map(|i| {
            vec![
                Value::Int(i),
                Value::Int(20 + i % 50),
                Value::Date(Date32::from_ymd(2008, 1, 1).add_days((i % 2000) as i32)),
                Value::Decimal(Dec::new((40_000 + i * 13) as i128, 2)),
                Value::str(format!("worker number {i}")),
                Value::str(format!("joined the company and wrote code, id {i}, more text here")),
            ]
        })
        .collect();
    db.bulk_load(&t, rows).unwrap();
    db.buffer_pool().clear();
    (db, t)
}

fn listing1_plan() -> Plan {
    let start = Date32::parse("2010-01-01").unwrap();
    Plan::AggScan(AggScanNode {
        scan: ScanNode::new("worker", vec![1, 2, 3]).with_predicate(vec![
            Expr::lt(Expr::col(1), Expr::int(40)),
            Expr::ge(Expr::col(2), Expr::lit(Value::Date(start))),
            Expr::lt(Expr::col(2), Expr::lit(Value::Date(start.add_years(1)))),
        ]),
        group_cols: vec![],
        aggs: vec![AggItem { func: AggFuncEx::Avg, input: Some(Expr::col(3)) }],
    })
}

#[test]
fn explain_prints_listing2_annotations() {
    let (db, _t) = worker_db();
    let mut plan = listing1_plan();
    ndp_post_process(&mut plan, &db).unwrap();
    let text = explain(&plan, &db);
    assert!(text.contains("Using pushed NDP condition"), "{text}");
    assert!(text.contains("Using pushed NDP columns"), "{text}");
    assert!(text.contains("Using pushed NDP aggregate"), "{text}");
    assert!(text.contains("joindate"), "column names resolved: {text}");
}

#[test]
fn listing1_avg_matches_with_and_without_ndp() {
    let (db, _t) = worker_db();
    let plain = run_query(&db, &listing1_plan()).unwrap();
    let mut optimized = listing1_plan();
    ndp_post_process(&mut optimized, &db).unwrap();
    db.buffer_pool().clear();
    let ndp = run_query(&db, &optimized).unwrap();
    assert_eq!(plain.rows, ndp.rows);
    assert!(matches!(ndp.rows[0][0], Value::Decimal(_)));
}

#[test]
fn transactions_commit_rollback_through_api() {
    let (db, t) = worker_db();
    let view0 = db.read_view(0);
    // Committed insert becomes visible; rolled-back one never does.
    let t1 = db.begin();
    db.insert_row(&t, t1, &vec![
        Value::Int(99_991),
        Value::Int(30),
        Value::Date(Date32::parse("2012-05-01").unwrap()),
        Value::Decimal(Dec::new(1, 2)),
        Value::str("committed worker"),
        Value::str("n/a"),
    ])
    .unwrap();
    db.commit(t1);
    let t2 = db.begin();
    db.insert_row(&t, t2, &vec![
        Value::Int(99_992),
        Value::Int(31),
        Value::Date(Date32::parse("2012-05-01").unwrap()),
        Value::Decimal(Dec::new(2, 2)),
        Value::str("rolled-back worker"),
        Value::str("n/a"),
    ])
    .unwrap();
    db.rollback(t2).unwrap();
    let view1 = db.read_view(0);
    assert!(db.lookup_row(&t, &view1, &[Value::Int(99_991)]).unwrap().is_some());
    assert!(db.lookup_row(&t, &view1, &[Value::Int(99_992)]).unwrap().is_none());
    // The old snapshot sees neither.
    assert!(db.lookup_row(&t, &view0, &[Value::Int(99_991)]).unwrap().is_none());
}

#[test]
fn ndp_gate_respects_min_io_pages() {
    // With a huge min-IO threshold, the post-processing pass must refuse
    // NDP (the paper's Q11/Q17/Q19/Q20 behaviour).
    let (db, _t) = worker_db();
    let mut plan = listing1_plan();
    // Rebuild the db config path: clone a config with a huge gate.
    let mut cfg = db.config().clone();
    cfg.ndp.min_io_pages = 1_000_000;
    let db2 = TaurusDb::new(cfg);
    let schema = db.table("worker").unwrap().schema.clone();
    let t2 = db2.create_table(schema, &[]).unwrap();
    db2.bulk_load(&t2, vec![vec![
        Value::Int(1),
        Value::Int(30),
        Value::Date(Date32::parse("2010-06-01").unwrap()),
        Value::Decimal(Dec::new(100, 2)),
        Value::str("only worker"),
        Value::str("n/a"),
    ]])
    .unwrap();
    let reports = ndp_post_process(&mut plan, &db2).unwrap();
    assert!(reports[0].gated_by_io);
    let text = explain(&plan, &db2);
    assert!(!text.contains("Using pushed NDP"), "{text}");
}
