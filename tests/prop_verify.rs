//! Property tests for the static verifier's gate contract (PR 9):
//!
//! * a plan the verifier **accepts** executes without `Error::Internal`
//!   — under the row and the columnar batch layout, with NDP off and
//!   with NDP decisions applied (typed runtime errors like `Error::Type`
//!   are allowed; internal invariant breaks are not) — and when both
//!   layouts succeed their results are identical;
//! * a plan the verifier **rejects** fails *before any operator opens*:
//!   the collect path returns `Error::Verify`, and the stream path
//!   delivers it as the first and only item.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;
use taurus::common::config::ClusterConfig;
use taurus::common::{BatchLayout, Error, Value};
use taurus::expr::ast::Expr;
use taurus::ndp::TaurusDb;
use taurus::optimizer::ndp_post::ndp_post_process;
use taurus::optimizer::plan::{Plan, ScanNode, SortNode};
use taurus::prelude::Session;

fn db_with(layout: BatchLayout) -> Arc<TaurusDb> {
    let mut cfg = ClusterConfig::default();
    cfg.batch_layout = layout;
    let db = TaurusDb::new(cfg);
    taurus::tpch::load(&db, 0.01, 42).unwrap();
    db
}

fn row_db() -> &'static Arc<TaurusDb> {
    static DB: OnceLock<Arc<TaurusDb>> = OnceLock::new();
    DB.get_or_init(|| db_with(BatchLayout::Row))
}

fn col_db() -> &'static Arc<TaurusDb> {
    static DB: OnceLock<Arc<TaurusDb>> = OnceLock::new();
    DB.get_or_init(|| db_with(BatchLayout::Columnar))
}

/// A random (often malformed) comparison conjunct: column indices range
/// past lineitem's 16 columns, so some plans reference columns that do
/// not exist or that the scan does not deliver.
fn conjunct() -> impl Strategy<Value = Expr> {
    (0usize..20, -5i64..40).prop_map(|(c, v)| Expr::le(Expr::col(c), Expr::lit(Value::Int(v))))
}

/// A random plan over lineitem: scan with random output/predicate,
/// optionally wrapped in Sort and/or Limit (with sometimes-out-of-range
/// sort keys).
fn plan() -> impl Strategy<Value = Plan> {
    (
        proptest::collection::vec(0usize..18, 1..5),
        proptest::collection::vec(conjunct(), 0..3),
        0usize..8,
        0usize..3,
    )
        .prop_map(|(output, preds, sort_key, shape)| {
            let scan = Plan::Scan(ScanNode::new("lineitem", output).with_predicate(preds));
            match shape {
                0 => scan,
                1 => Plan::Sort(SortNode {
                    input: Box::new(scan),
                    keys: vec![(sort_key, false)],
                    limit: None,
                }),
                _ => Plan::Limit {
                    input: Box::new(scan),
                    n: 10,
                },
            }
        })
}

/// Execute on one db; `Ok(None)` = typed runtime rejection (allowed),
/// `Ok(Some(rows))` = success. Panics the test on `Error::Internal`.
fn run_checked(db: &Arc<TaurusDb>, plan: &Plan, what: &str) -> Option<Vec<Vec<Value>>> {
    match Session::new(db).execute_plan(plan) {
        Ok(rows) => Some(rows),
        Err(Error::Internal(msg)) => {
            panic!("verifier-accepted plan hit Error::Internal ({what}): {msg}")
        }
        Err(_) => None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    #[test]
    fn accepted_executes_rejected_fails_closed(plan in plan()) {
        // NDP off, and (where the post-process finds anything to push)
        // NDP on: the gate contract must hold for both.
        let mut variants = vec![plan.clone()];
        {
            let mut p = plan.clone();
            if ndp_post_process(&mut p, row_db()).is_ok() {
                variants.push(p);
            }
        }
        for p in &variants {
            if taurus::verify::check_plan(p, row_db()).is_ok() {
                let a = run_checked(row_db(), p, "row layout");
                let b = run_checked(col_db(), p, "columnar layout");
                if let (Some(mut a), Some(mut b)) = (a, b) {
                    a.sort_by(|x, y| format!("{x:?}").cmp(&format!("{y:?}")));
                    b.sort_by(|x, y| format!("{x:?}").cmp(&format!("{y:?}")));
                    prop_assert_eq!(a, b);
                }
            } else {
                // Collect path: rejected before lowering.
                match Session::new(row_db()).execute_plan(p) {
                    Err(Error::Verify(_)) => {}
                    other => panic!("expected Err(Verify), got {other:?}"),
                }
                // Stream path: the rejection is the one and only item,
                // delivered before any producer thread spawned.
                let mut stream = Session::new(row_db()).stream_plan(p.clone());
                match stream.next() {
                    Some(Err(Error::Verify(_))) => {}
                    other => panic!("expected first stream item Err(Verify), got {other:?}"),
                }
                prop_assert!(stream.next().is_none());
            }
        }
    }
}
