//! Pinning tests for the static verifier (PR 9).
//!
//! One test per `DiagKind`: each malformed plan/program shape must
//! produce its specific structured diagnostic, error-severity kinds must
//! reject the plan at the pre-execution gate (before any operator
//! opens), and the range analysis must prove a real TPC-H decimal
//! predicate overflow-safe with byte-equal row/columnar parity.

use std::sync::{Arc, OnceLock};

use taurus::common::config::ClusterConfig;
use taurus::common::{BatchLayout, DataType, Error, Value};
use taurus::expr::ast::{CmpOp, Expr};
use taurus::expr::ir::{IrInstr, IrProgram};
use taurus::expr::vector::VectorProgram;
use taurus::ndp::TaurusDb;
use taurus::optimizer::plan::{
    AggFuncEx, AggItem, AggScanNode, HashJoinNode, JoinType, NdpDecision, Plan, RangeSpec,
    ScanNode, SortNode,
};
use taurus::page::record::RecordLayout;
use taurus::prelude::Session;
use taurus::verify::{verify_plan, DiagKind, Severity};

/// A catalog-only TPC-H cluster (schemas, no rows): plenty for the
/// structural diagnostics, and cheap enough to share across tests.
fn catalog() -> &'static Arc<TaurusDb> {
    static DB: OnceLock<Arc<TaurusDb>> = OnceLock::new();
    DB.get_or_init(|| {
        let db = TaurusDb::new(ClusterConfig::default());
        taurus::tpch::schema::create_all(&db).unwrap();
        db
    })
}

/// All (kind, severity) pairs a plan verifies to.
fn kinds(plan: &Plan) -> Vec<(DiagKind, Severity)> {
    verify_plan(plan, catalog())
        .iter()
        .map(|d| (d.kind, d.severity))
        .collect()
}

fn has_error(plan: &Plan, kind: DiagKind) -> bool {
    kinds(plan).contains(&(kind, Severity::Error))
}

#[test]
fn unknown_table_is_pinned() {
    let plan = Plan::Scan(ScanNode::new("no_such_table", vec![0]));
    assert!(has_error(&plan, DiagKind::UnknownTable));
}

#[test]
fn unknown_index_is_pinned() {
    let plan = Plan::Scan(ScanNode::new("lineitem", vec![0]).with_index(9));
    assert!(has_error(&plan, DiagKind::UnknownIndex));
}

#[test]
fn column_out_of_range_is_pinned() {
    let plan = Plan::Scan(ScanNode::new("lineitem", vec![0, 99]));
    assert!(has_error(&plan, DiagKind::ColumnOutOfRange));
}

#[test]
fn residual_not_in_output_is_pinned() {
    // Predicate over l_quantity (col 4), but the scan only delivers col
    // 0 — the executor could never remap the residual.
    let plan = Plan::Scan(
        ScanNode::new("lineitem", vec![0])
            .with_predicate(vec![Expr::lt(Expr::col(4), Expr::dec("24"))]),
    );
    assert!(has_error(&plan, DiagKind::ResidualNotInOutput));
}

#[test]
fn group_col_not_in_output_is_pinned() {
    let plan = Plan::AggScan(AggScanNode {
        scan: ScanNode::new("lineitem", vec![0]),
        group_cols: vec![8],
        aggs: vec![],
    });
    assert!(has_error(&plan, DiagKind::GroupColNotInOutput));
}

#[test]
fn agg_input_not_in_output_is_pinned() {
    let plan = Plan::AggScan(AggScanNode {
        scan: ScanNode::new("lineitem", vec![0]),
        group_cols: vec![0],
        aggs: vec![AggItem {
            func: AggFuncEx::Sum,
            input: Some(Expr::col(5)),
        }],
    });
    assert!(has_error(&plan, DiagKind::AggInputNotInOutput));
}

#[test]
fn key_prefix_too_long_is_pinned() {
    let range = RangeSpec {
        lower: Some((vec![Value::Int(1); 17], true)),
        upper: None,
    };
    let plan = Plan::Scan(ScanNode::new("lineitem", vec![0]).with_range(range));
    assert!(has_error(&plan, DiagKind::KeyPrefixTooLong));
}

#[test]
fn key_out_of_range_is_pinned() {
    let plan = Plan::Sort(SortNode {
        input: Box::new(Plan::Scan(ScanNode::new("lineitem", vec![0]))),
        keys: vec![(99, false)],
        limit: None,
    });
    assert!(has_error(&plan, DiagKind::KeyOutOfRange));
}

#[test]
fn arity_mismatch_is_pinned() {
    let plan = Plan::HashJoin(HashJoinNode {
        left: Box::new(Plan::Scan(ScanNode::new("lineitem", vec![0]))),
        right: Box::new(Plan::Scan(ScanNode::new("orders", vec![0]))),
        left_keys: vec![0],
        right_keys: vec![],
        join: JoinType::Inner,
    });
    assert!(has_error(&plan, DiagKind::ArityMismatch));
}

#[test]
fn pushed_out_of_range_is_pinned() {
    let mut scan = ScanNode::new("lineitem", vec![0]);
    scan.ndp = Some(NdpDecision {
        pushed: vec![7], // ... but the predicate has zero conjuncts
        ..Default::default()
    });
    let plan = Plan::Scan(scan);
    assert!(has_error(&plan, DiagKind::PushedOutOfRange));
}

#[test]
fn type_mismatch_is_a_warning_not_an_error() {
    // l_shipdate (Date) compared against an integer literal: the runtime
    // rejects this with a typed Error::Type, so the verifier only warns
    // and the gate lets the plan through.
    let plan = Plan::Scan(
        ScanNode::new("lineitem", vec![10])
            .with_predicate(vec![Expr::lt(Expr::col(10), Expr::lit(Value::Int(7)))]),
    );
    let ks = kinds(&plan);
    assert!(ks.contains(&(DiagKind::TypeMismatch, Severity::Warning)));
    assert!(taurus::verify::check_plan(&plan, catalog()).is_ok());
}

/// A bounds-valid program that reads a register nothing ever wrote.
fn read_before_write_ir() -> IrProgram {
    IrProgram {
        instrs: vec![
            IrInstr::Cmp {
                op: CmpOp::Eq,
                dst: 1,
                a: 0,
                b: 0,
            },
            IrInstr::Ret { src: 1 },
        ],
        consts: vec![],
        n_regs: 2,
    }
}

#[test]
fn ir_shape_is_pinned() {
    let diags = taurus::verify::check_ir(&read_before_write_ir(), "test");
    assert!(diags
        .iter()
        .any(|d| d.kind == DiagKind::IrShape && d.severity == Severity::Error));
}

#[test]
fn vector_shape_is_pinned() {
    // The same malformed program survives straight-line extraction (it
    // is structurally bounds-valid), so the vector checker must catch
    // the unwritten read on its side of the scalar↔vector boundary too.
    let layout = RecordLayout::new(vec![DataType::BigInt]);
    let vp = VectorProgram::from_ir(&read_before_write_ir(), &layout, &[0]).unwrap();
    let diags = taurus::verify::check_vector(&vp, "test");
    assert!(diags
        .iter()
        .any(|d| d.kind == DiagKind::VectorShape && d.severity == Severity::Error));
}

#[test]
fn equivalence_is_pinned() {
    // A scalar program and a vector program compiled from *different*
    // expressions read different columns: the type-level equivalence
    // check must refuse to treat them as twins.
    let ir =
        taurus::expr::compile::lower(&Expr::lt(Expr::col(0), Expr::lit(Value::Int(5)))).unwrap();
    let vp = VectorProgram::from_expr(&Expr::lt(Expr::col(1), Expr::lit(Value::Int(5)))).unwrap();
    let diags = taurus::verify::check_equivalence(&ir, &vp, "test");
    assert!(diags
        .iter()
        .any(|d| d.kind == DiagKind::Equivalence && d.severity == Severity::Error));
}

// --- the gate: rejected plans fail before any operator opens ---------------

#[test]
fn rejected_plan_fails_collect_before_execution() {
    let plan = Plan::Scan(
        ScanNode::new("lineitem", vec![0])
            .with_predicate(vec![Expr::lt(Expr::col(4), Expr::dec("24"))]),
    );
    let session = Session::new(catalog());
    let err = session.execute_plan(&plan).unwrap_err();
    assert!(matches!(err, Error::Verify(_)), "got {err:?}");
}

#[test]
fn rejected_plan_fails_stream_before_any_producer_spawns() {
    let plan = Plan::Scan(
        ScanNode::new("lineitem", vec![0])
            .with_predicate(vec![Expr::lt(Expr::col(4), Expr::dec("24"))]),
    );
    let session = Session::new(catalog());
    let mut stream = session.stream_plan(plan);
    // The stream's first (and only) item is the verifier's rejection.
    match stream.next() {
        Some(Err(Error::Verify(msg))) => assert!(msg.contains("residual")),
        other => panic!("expected Err(Verify), got {other:?}"),
    }
    assert!(stream.next().is_none());
}

// --- range analysis: a real TPC-H Dec predicate, proven and byte-equal -----

/// The Q6-shape predicate over scan output [l_quantity, l_extendedprice,
/// l_discount] — decimal comparisons the range analysis proves
/// rescale-overflow-free, so the columnar filter kernel runs without its
/// per-lane checked-overflow deferral.
fn q6_predicate() -> Expr {
    Expr::and(vec![
        Expr::lt(Expr::col(0), Expr::dec("24")),
        Expr::between(Expr::col(2), Expr::dec("0.05"), Expr::dec("0.07")),
    ])
}

fn q6_filter_plan() -> Plan {
    Plan::Filter(taurus::optimizer::plan::FilterNode {
        input: Box::new(Plan::Scan(ScanNode::new("lineitem", vec![4, 5, 6]))),
        predicate: q6_predicate(),
    })
}

#[test]
fn tpch_dec_predicate_is_statically_proven() {
    let plan = q6_filter_plan();
    let Plan::Filter(f) = &plan else {
        unreachable!()
    };
    // The executor's two proven-safe preconditions hold for this plan...
    assert!(taurus::verify::columns_storage_backed(&f.input));
    let schema = taurus::verify::infer_plan(&f.input, catalog())
        .schema
        .unwrap();
    let dtypes: Vec<DataType> = schema.iter().map(|c| c.dtype).collect();
    // ...and the analysis itself discharges every comparison leaf.
    let verdict = taurus::verify::analyze_predicate(&q6_predicate(), &dtypes);
    assert!(verdict.proven, "deferring leaves: {:?}", verdict.deferring);
}

#[test]
fn proven_kernel_parity_row_vs_columnar_is_byte_equal() {
    let run = |layout: BatchLayout| {
        let mut cfg = ClusterConfig::default();
        cfg.batch_layout = layout;
        let db = TaurusDb::new(cfg);
        taurus::tpch::load(&db, 0.01, 42).unwrap();
        let mut rows = Session::new(&db).execute_plan(&q6_filter_plan()).unwrap();
        rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        rows
    };
    let row_rows = run(BatchLayout::Row);
    // The columnar run takes FilterOp's vector path with proven_safe set
    // (asserted above): identical results prove the skipped deferral
    // never changes a verdict.
    let col_rows = run(BatchLayout::Columnar);
    assert!(!row_rows.is_empty());
    assert_eq!(row_rows, col_rows);
}
