//! Property-based tests for the reproduction's master invariants:
//!
//! 1. An NDP scan returns exactly what the classical scan returns, for
//!    random data, random predicates, random projections, and random
//!    resource-control skip patterns.
//! 2. Rows always arrive in index-key order.
//! 3. Record encode/decode round-trips for arbitrary values.

use proptest::prelude::*;
use taurus::expr::ast::Expr;
use taurus::ndp::{scan, NdpChoice, ScanConsumer, ScanRange, ScanSpec};
use taurus::pagestore::SkipPolicy;
use taurus::prelude::*;

fn schema() -> std::sync::Arc<TableSchema> {
    TableSchema::new(
        "t",
        vec![
            Column::new("k", DataType::BigInt),
            Column::new("a", DataType::Int),
            Column::new(
                "d",
                DataType::Decimal {
                    precision: 15,
                    scale: 2,
                },
            ),
            Column::new("s", DataType::Varchar(16)),
        ],
        vec![0],
    )
}

#[derive(Clone, Debug)]
struct Dataset {
    rows: Vec<(i64, i32, i64, String)>,
}

fn dataset() -> impl Strategy<Value = Dataset> {
    proptest::collection::vec(
        (0i64..5000, any::<i32>(), -10_000i64..10_000, "[a-z]{0,12}"),
        20..400,
    )
    .prop_map(|mut rows| {
        rows.sort_by_key(|r| r.0);
        rows.dedup_by_key(|r| r.0);
        Dataset { rows }
    })
}

/// A random single-conjunct predicate over the table.
fn predicate() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (any::<i32>()).prop_map(|v| Expr::lt(Expr::col(1), Expr::int(v as i64))),
        (-10_000i64..10_000).prop_map(|v| Expr::ge(
            Expr::col(2),
            Expr::lit(Value::Decimal(Dec::new(v as i128, 2)))
        )),
        "[a-z]{0,3}".prop_map(|s| Expr::like(Expr::col(3), &format!("{s}%"))),
        (0i64..5000).prop_map(|v| Expr::gt(Expr::col(0), Expr::int(v))),
    ]
}

struct Rows(Vec<Row>);

impl ScanConsumer for Rows {
    fn on_row(&mut self, row: &[Value]) -> Result<bool> {
        self.0.push(row.to_vec());
        Ok(true)
    }
    fn on_partial(&mut self, _s: Vec<taurus::ndp::AggState>) -> Result<bool> {
        panic!("no aggregation in these scans")
    }
}

fn build_db(data: &Dataset) -> (std::sync::Arc<TaurusDb>, std::sync::Arc<Table>) {
    let mut cfg = ClusterConfig::small_for_tests();
    cfg.page_size = 2048;
    cfg.buffer_pool_pages = 16;
    cfg.ndp.max_pages_look_ahead = 5;
    let db = TaurusDb::new(cfg);
    let t = db.create_table(schema(), &[]).unwrap();
    let rows: Vec<Row> = data
        .rows
        .iter()
        .map(|(k, a, d, s)| {
            vec![
                Value::Int(*k),
                Value::Int(*a as i64),
                Value::Decimal(Dec::new(*d as i128, 2)),
                Value::str(s),
            ]
        })
        .collect();
    db.bulk_load(&t, rows).unwrap();
    db.buffer_pool().clear();
    (db, t)
}

fn run_scan(db: &TaurusDb, t: &Table, ndp: Option<NdpChoice>, output: Vec<usize>) -> Vec<Row> {
    let spec = ScanSpec {
        index: 0,
        range: ScanRange::full(),
        ndp,
        output_cols: output,
    };
    let mut c = Rows(Vec::new());
    let view = db.read_view(0);
    scan(db, t, &spec, &view, &mut c).unwrap();
    c.0
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    #[test]
    fn ndp_scan_equals_classical(data in dataset(), pred in predicate(), skip in 0u64..4) {
        let (db, t) = build_db(&data);
        // Classical reference: full scan + compute-side filter.
        let all = run_scan(&db, &t, None, vec![0, 1, 2, 3]);
        let expected: Vec<Row> = all
            .into_iter()
            .filter(|r| taurus::expr::eval::eval_pred(&pred, r).unwrap() == Some(true))
            .collect();
        // NDP with injected skip pattern.
        let policy = match skip {
            0 => SkipPolicy::None,
            1 => SkipPolicy::EveryNth(2),
            2 => SkipPolicy::EveryNth(3),
            _ => SkipPolicy::All,
        };
        for ps in db.sal().page_stores() {
            ps.set_skip_policy(policy.clone());
        }
        db.buffer_pool().clear();
        let got = run_scan(
            &db,
            &t,
            Some(NdpChoice {
                predicate: Some(pred.clone()),
                projection: Some(vec![0, 1, 2, 3]),
                ..Default::default()
            }),
            vec![0, 1, 2, 3],
        );
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn scan_rows_arrive_in_key_order(data in dataset()) {
        let (db, t) = build_db(&data);
        let rows = run_scan(
            &db,
            &t,
            Some(NdpChoice { projection: Some(vec![0]), ..Default::default() }),
            vec![0],
        );
        let keys: Vec<i64> = rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        prop_assert_eq!(&keys, &sorted);
        prop_assert_eq!(keys.len(), data.rows.len());
    }

    #[test]
    fn record_roundtrip(k in any::<i64>(), a in any::<i32>(), d in -1_000_000i64..1_000_000, s in "[a-zA-Z0-9 ]{0,16}") {
        use taurus::page::{encode_record, RecordLayout, RecordMeta, RecordView};
        let layout = RecordLayout::new(vec![
            DataType::BigInt,
            DataType::Int,
            DataType::Decimal { precision: 15, scale: 2 },
            DataType::Varchar(16),
        ]);
        let vals = vec![
            Value::Int(k),
            Value::Int(a as i64),
            Value::Decimal(Dec::new(d as i128, 2)),
            Value::str(&s),
        ];
        let mut buf = Vec::new();
        encode_record(&layout, &vals, RecordMeta::ordinary(7), None, &mut buf).unwrap();
        let view = RecordView::new(&buf, &layout);
        prop_assert_eq!(view.values(), vals);
        prop_assert_eq!(view.trx_id(), 7);
        prop_assert_eq!(view.total_len(), buf.len());
    }

    #[test]
    fn key_encoding_preserves_order(a in any::<i64>(), b in any::<i64>()) {
        use taurus::common::schema::encode_key;
        let ka = encode_key(&[Value::Int(a)], &[DataType::BigInt]);
        let kb = encode_key(&[Value::Int(b)], &[DataType::BigInt]);
        prop_assert_eq!(a.cmp(&b), ka.cmp(&kb));
    }
}
