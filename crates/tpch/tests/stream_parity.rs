//! Stream-vs-collect parity through the batch-native operator pipeline.
//!
//! Every TPC-H (and micro-benchmark) query's main-stage plan must produce
//! identical rows whether collected via `execute()` (a thin collect over
//! the pipeline) or drained through `RowStream` (the same pipeline behind
//! the bounded batch channel). A degenerate-batch matrix re-runs the
//! composite shapes — join, aggregate, sort, LIMIT landing mid-batch,
//! empty inputs, dropped-stream cancellation — at `scan_batch_rows ∈
//! {1, 7, 1024}` so row-at-a-time, tiny-odd, and default batch sizes all
//! exercise the same edges.

use std::sync::Arc;

use taurus_common::schema::Row;
use taurus_common::{BatchLayout, ClusterConfig, Value};
use taurus_executor::Session;
use taurus_expr::ast::Expr;
use taurus_ndp::TaurusDb;
use taurus_optimizer::plan::{HashAggNode, HashJoinNode, JoinType, Plan, ScanNode};
use taurus_tpch::queries1::{q1_plan, q3_plan};
use taurus_tpch::queries2::q12_plan;
use taurus_tpch::{load, micro_queries, tpch_queries};

const SF: f64 = 0.002;

fn db_custom(batch: Option<usize>, layout: BatchLayout, ndp: bool) -> Arc<TaurusDb> {
    let mut cfg = ClusterConfig::default();
    cfg.buffer_pool_pages = 256; // far smaller than the data
    cfg.slice_pages = 32;
    cfg.ndp.min_io_pages = 8;
    cfg.ndp.max_pages_look_ahead = 64;
    cfg.ndp.enabled = ndp;
    // Explicit layout: parity must not depend on the ambient
    // TAURUS_BATCH_LAYOUT override baked into `default()`.
    cfg.batch_layout = layout;
    if let Some(b) = batch {
        cfg.scan_batch_rows = b;
    }
    let db = TaurusDb::new(cfg);
    load(&db, SF, 7).unwrap();
    db
}

fn db_with_batch(batch: Option<usize>) -> Arc<TaurusDb> {
    db_custom(batch, BatchLayout::Row, true)
}

fn fmt_rows(rows: &[Row]) -> Vec<String> {
    rows.iter()
        .map(|r| {
            r.iter()
                .map(|v| match v {
                    // Doubles can round differently across plans; compare
                    // with bounded precision.
                    Value::Double(d) => format!("{d:.4}"),
                    other => other.to_string(),
                })
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect()
}

/// All 22 TPC-H queries (and the micro-benchmark queries): draining the
/// streamed pipeline equals collecting it, row for row.
#[test]
fn stream_equals_collect_for_all_queries() {
    let db = db_with_batch(None);
    let session = Session::new(&db);
    for q in tpch_queries().iter().chain(micro_queries().iter()) {
        let plan = (q.plan)(&db, None).unwrap_or_else(|e| panic!("{} plan: {e}", q.name));
        let collected = session
            .execute_plan(&plan)
            .unwrap_or_else(|e| panic!("{} collect: {e}", q.name));
        let streamed: Vec<Row> = session
            .stream_plan(plan.clone())
            .map(|r| r.unwrap_or_else(|e| panic!("{} stream: {e}", q.name)))
            .collect();
        assert_eq!(
            fmt_rows(&streamed),
            fmt_rows(&collected),
            "{}: stream/collect mismatch",
            q.name
        );
    }
}

/// The PQ (Exchange/Gather) stage streams too: plan-level parity for the
/// PQ-capable queries with a parallel degree.
#[test]
fn stream_equals_collect_under_pq() {
    let db = db_with_batch(None);
    let session = Session::new(&db);
    for q in tpch_queries().iter().filter(|q| q.pq_capable) {
        let plan = (q.plan)(&db, Some(4)).unwrap();
        let collected = session.execute_plan(&plan).unwrap();
        let streamed: Vec<Row> = session
            .stream_plan(plan.clone())
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(
            fmt_rows(&streamed),
            fmt_rows(&collected),
            "{}: PQ stream/collect mismatch",
            q.name
        );
    }
}

/// A lineitem scan whose predicate can never match (empty input for the
/// composite shapes).
fn empty_lineitem() -> Plan {
    Plan::Scan(
        ScanNode::new("lineitem", vec![0, 5, 6])
            .with_predicate(vec![Expr::lt(Expr::col(0), Expr::int(-1))]),
    )
}

#[test]
fn degenerate_batch_matrix() {
    for batch in [1usize, 7, 1024] {
        let db = db_with_batch(Some(batch));
        assert_eq!(db.config().scan_batch_rows, batch);
        let session = Session::new(&db);
        // Composite shapes: join+agg+TopN (Q3), agg+sort (Q1),
        // join+agg+sort (Q12).
        let plans = [
            ("q3", q3_plan(&db, None).unwrap()),
            ("q1", q1_plan(&db, None).unwrap()),
            ("q12", q12_plan(&db, None).unwrap()),
        ];
        for (name, plan) in &plans {
            // Stream == collect at this batch size.
            let collected = session.execute_plan(plan).unwrap();
            let streamed: Vec<Row> = session
                .stream_plan(plan.clone())
                .map(|r| r.unwrap())
                .collect();
            assert_eq!(
                fmt_rows(&streamed),
                fmt_rows(&collected),
                "{name} @ batch={batch}"
            );
            // LIMIT landing mid-batch stops after exactly n rows and
            // matches the unlimited prefix.
            for n in [1usize, 3, 10] {
                let limited = session.execute_plan(&plan.clone().limit(n)).unwrap();
                let want = n.min(collected.len());
                assert_eq!(limited.len(), want, "{name} limit {n} @ batch={batch}");
                assert_eq!(
                    fmt_rows(&limited),
                    fmt_rows(&collected[..want]),
                    "{name} limit {n} must be a prefix @ batch={batch}"
                );
                let streamed_lim: Vec<Row> = session
                    .stream_plan(plan.clone().limit(n))
                    .map(|r| r.unwrap())
                    .collect();
                assert_eq!(fmt_rows(&streamed_lim), fmt_rows(&limited));
            }
            // Dropped-stream cancellation: pull one row, drop; the
            // producer (and every scan under it) must stop and join —
            // the test hanging here is the regression.
            let mut stream = session.stream_plan(plan.clone());
            let _ = stream.next();
            drop(stream);
            // The session stays fully usable afterwards.
            let again = session.execute_plan(plan).unwrap();
            assert_eq!(fmt_rows(&again), fmt_rows(&collected));
        }
        // Empty inputs through join / aggregate / sort shapes.
        let empty_join = Plan::HashJoin(HashJoinNode {
            left: Box::new(empty_lineitem()),
            right: Box::new(empty_lineitem()),
            left_keys: vec![0],
            right_keys: vec![0],
            join: JoinType::Inner,
        });
        assert!(session.execute_plan(&empty_join).unwrap().is_empty());
        assert_eq!(session.stream_plan(empty_join.clone()).count(), 0);
        let empty_sorted = empty_join.clone().sort(vec![(0, false)]);
        assert_eq!(session.stream_plan(empty_sorted).count(), 0);
        // Scalar aggregate over an empty input: exactly one group
        // (COUNT = 0), streamed and collected alike.
        let scalar_agg = Plan::HashAgg(HashAggNode {
            input: Box::new(empty_lineitem()),
            group: vec![],
            aggs: vec![taurus_optimizer::plan::AggItem {
                func: taurus_optimizer::plan::AggFuncEx::CountStar,
                input: None,
            }],
        });
        let collected = session.execute_plan(&scalar_agg).unwrap();
        assert_eq!(collected, vec![vec![Value::Int(0)]]);
        let streamed: Vec<Row> = session
            .stream_plan(scalar_agg.clone())
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(streamed, collected, "scalar agg over empty @ batch={batch}");
    }
}

/// Run every TPC-H + micro query on both databases and demand *exact*
/// `Value` equality (not formatted-with-rounding equality): the columnar
/// pipeline only reorders evaluation, never arithmetic, so results must
/// be byte-identical to the row-major pipeline. The columnar side is
/// additionally drained through `RowStream` to cover the column→row
/// boundary conversion in `stream.rs`.
fn assert_layout_parity(row_db: &Arc<TaurusDb>, col_db: &Arc<TaurusDb>, tag: &str) {
    assert_eq!(row_db.config().batch_layout, BatchLayout::Row);
    assert_eq!(col_db.config().batch_layout, BatchLayout::Columnar);
    let row_session = Session::new(row_db);
    let col_session = Session::new(col_db);
    for q in tpch_queries().iter().chain(micro_queries().iter()) {
        let row_plan = (q.plan)(row_db, None).unwrap_or_else(|e| panic!("{} plan: {e}", q.name));
        let col_plan = (q.plan)(col_db, None).unwrap();
        let row_rows = row_session
            .execute_plan(&row_plan)
            .unwrap_or_else(|e| panic!("{} row collect ({tag}): {e}", q.name));
        let col_rows = col_session
            .execute_plan(&col_plan)
            .unwrap_or_else(|e| panic!("{} columnar collect ({tag}): {e}", q.name));
        assert_eq!(
            col_rows, row_rows,
            "{} ({tag}): columnar != row-major",
            q.name
        );
        let col_streamed: Vec<Row> = col_session
            .stream_plan(col_plan)
            .map(|r| r.unwrap_or_else(|e| panic!("{} columnar stream ({tag}): {e}", q.name)))
            .collect();
        assert_eq!(
            col_streamed, row_rows,
            "{} ({tag}): columnar stream != row-major",
            q.name
        );
    }
}

/// All 22 TPC-H queries + micro queries: columnar is byte-equal to
/// row-major, with NDP pushdown enabled (vectorized Page-Store path) and
/// disabled (compute-node-only path).
#[test]
fn columnar_equals_row_major_all_queries() {
    for ndp in [true, false] {
        let row_db = db_custom(None, BatchLayout::Row, ndp);
        let col_db = db_custom(None, BatchLayout::Columnar, ndp);
        assert_layout_parity(&row_db, &col_db, if ndp { "ndp=on" } else { "ndp=off" });
    }
}

/// PQ (Exchange/Gather) plans under the columnar layout: stream equals
/// collect, and both equal the row-major result.
#[test]
fn columnar_equals_row_major_under_pq() {
    let row_db = db_custom(None, BatchLayout::Row, true);
    let col_db = db_custom(None, BatchLayout::Columnar, true);
    let row_session = Session::new(&row_db);
    let col_session = Session::new(&col_db);
    for q in tpch_queries().iter().filter(|q| q.pq_capable) {
        let row_rows = row_session
            .execute_plan(&(q.plan)(&row_db, Some(4)).unwrap())
            .unwrap();
        let col_plan = (q.plan)(&col_db, Some(4)).unwrap();
        let col_rows = col_session.execute_plan(&col_plan).unwrap();
        assert_eq!(col_rows, row_rows, "{}: PQ columnar != row-major", q.name);
        let col_streamed: Vec<Row> = col_session
            .stream_plan(col_plan)
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(col_streamed, row_rows, "{}: PQ columnar stream", q.name);
    }
}

/// The degenerate-batch matrix, columnar edition: composite shapes at
/// `scan_batch_rows ∈ {1, 7, 1024}` × NDP on/off must match the
/// row-major pipeline at the same settings. Batch size 1 exercises
/// one-row columns + selections; 7 straddles page boundaries oddly; 1024
/// is the default full-width vector.
#[test]
fn columnar_batch_size_matrix() {
    for batch in [1usize, 7, 1024] {
        for ndp in [true, false] {
            let row_db = db_custom(Some(batch), BatchLayout::Row, ndp);
            let col_db = db_custom(Some(batch), BatchLayout::Columnar, ndp);
            let row_session = Session::new(&row_db);
            let col_session = Session::new(&col_db);
            let shapes = [
                (
                    "q1",
                    q1_plan(&row_db, None).unwrap(),
                    q1_plan(&col_db, None).unwrap(),
                ),
                (
                    "q3",
                    q3_plan(&row_db, None).unwrap(),
                    q3_plan(&col_db, None).unwrap(),
                ),
                (
                    "q12",
                    q12_plan(&row_db, None).unwrap(),
                    q12_plan(&col_db, None).unwrap(),
                ),
            ];
            for (name, row_plan, col_plan) in shapes {
                let row_rows = row_session.execute_plan(&row_plan).unwrap();
                let col_rows = col_session.execute_plan(&col_plan).unwrap();
                assert_eq!(
                    col_rows, row_rows,
                    "{name} @ batch={batch} ndp={ndp}: columnar != row-major"
                );
                // LIMIT through a selection-carrying batch truncates by
                // *selected* rows, not physical rows.
                for n in [1usize, 3] {
                    let lim = col_session
                        .execute_plan(&col_plan.clone().limit(n))
                        .unwrap();
                    let want = n.min(row_rows.len());
                    assert_eq!(lim, row_rows[..want], "{name} limit {n} @ batch={batch}");
                }
            }
        }
    }
}
