//! The reproduction's master correctness gate: every TPC-H query (and
//! every micro-benchmark query) must produce byte-identical results with
//! NDP off, NDP on, NDP on with forced resource-control skips, and NDP+PQ.

use std::sync::Arc;

use taurus_common::schema::Row;
use taurus_common::{ClusterConfig, Value};
use taurus_ndp::TaurusDb;
use taurus_pagestore::{FaultPolicy, SkipPolicy};
use taurus_tpch::{load, micro_queries, tpch_queries};

const SF: f64 = 0.002;

fn db_with(ndp: bool) -> Arc<TaurusDb> {
    let mut cfg = ClusterConfig::default();
    cfg.buffer_pool_pages = 256; // far smaller than the data
    cfg.slice_pages = 32;
    cfg.ndp.enabled = ndp;
    cfg.ndp.min_io_pages = 8;
    cfg.ndp.max_pages_look_ahead = 64;
    let db = TaurusDb::new(cfg);
    load(&db, SF, 7).unwrap();
    db
}

/// CI's replica matrix leg: with `TAURUS_REPLICA=1`, attach a log-tailing
/// read replica to the freshly-loaded cluster and hand back *its* engine —
/// the whole parity suite then runs against the replica, so every query
/// shape is exercised over replicated catalog/undo/pages at a pinned LSN.
fn maybe_replica(db: &Arc<TaurusDb>) -> (Arc<TaurusDb>, Option<Arc<taurus_replica::Replica>>) {
    if std::env::var("TAURUS_REPLICA").ok().as_deref() != Some("1") {
        return (db.clone(), None);
    }
    let replica = taurus_replica::Replica::attach(db);
    replica
        .wait_caught_up(std::time::Duration::from_secs(120))
        .expect("replica catch-up");
    (replica.db().clone(), Some(replica))
}

fn fmt_rows(rows: &[Row]) -> Vec<String> {
    rows.iter()
        .map(|r| {
            r.iter()
                .map(|v| match v {
                    // Doubles can round differently across plans; compare
                    // with bounded precision.
                    Value::Double(d) => format!("{d:.4}"),
                    other => other.to_string(),
                })
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect()
}

#[test]
fn all_queries_ndp_on_equals_off() {
    let (off, _off_replica) = maybe_replica(&db_with(false));
    let (on, _on_replica) = maybe_replica(&db_with(true));
    let mut empties: Vec<&str> = Vec::new();
    for q in tpch_queries() {
        let a = (q.run)(&off, None).unwrap_or_else(|e| panic!("{} (NDP off): {e}", q.name));
        let b = (q.run)(&on, None).unwrap_or_else(|e| panic!("{} (NDP on): {e}", q.name));
        assert_eq!(
            fmt_rows(&a),
            fmt_rows(&b),
            "{}: NDP on/off result mismatch",
            q.name
        );
        if a.is_empty() {
            empties.push(q.name);
        }
    }
    // Tiny-SF runs legitimately zero out the most selective queries
    // (exactly which depends on the generator stream — e.g. Q7 needs
    // FRANCE<->GERMANY trade among ~20 suppliers). But the paper's pillar
    // queries filter on broad ranges and must return rows, and an empty
    // result for most of the suite would mean the generator is broken.
    for must in [
        "Q1", "Q3", "Q4", "Q5", "Q6", "Q10", "Q12", "Q13", "Q14", "Q15",
    ] {
        assert!(!empties.contains(&must), "{must}: empty result");
    }
    assert!(
        empties.len() <= 8,
        "too many empty query results: {empties:?}"
    );
}

#[test]
fn micro_queries_ndp_on_equals_off() {
    let off = db_with(false);
    let on = db_with(true);
    for q in micro_queries() {
        let a = (q.run)(&off, None).unwrap();
        let b = (q.run)(&on, None).unwrap();
        assert_eq!(fmt_rows(&a), fmt_rows(&b), "{}: mismatch", q.name);
    }
    // Q0 must count every lineitem row.
    let rows = (micro_queries()[0].run)(&on, None).unwrap();
    let expect = on.table("lineitem").unwrap().stats.read().row_count as i64;
    assert_eq!(rows[0][0], Value::Int(expect));
}

#[test]
fn queries_survive_forced_ndp_skips() {
    let on = db_with(true);
    let reference: Vec<Vec<String>> = tpch_queries()
        .iter()
        .map(|q| fmt_rows(&(q.run)(&on, None).unwrap()))
        .collect();
    for ps in on.sal().page_stores() {
        ps.set_skip_policy(SkipPolicy::EveryNth(3));
    }
    on.buffer_pool().clear();
    for (q, expect) in tpch_queries().iter().zip(&reference) {
        let got = fmt_rows(&(q.run)(&on, None).unwrap());
        assert_eq!(&got, expect, "{}: mismatch under forced skips", q.name);
    }
    for ps in on.sal().page_stores() {
        ps.set_skip_policy(SkipPolicy::None);
    }
}

/// The governance PR's correctness gate: results must stay byte-equal
/// under *compound* degradation — every store skipping NDP for every
/// other page (`EveryNth(2)`), store-level shed forced on (whole batches
/// degrade to raw page reads), and one store browned out with injected
/// latency — at both a pathological (1) and a large (1024) scan batch
/// size. Degraded modes may only move work, never change answers.
#[test]
fn queries_survive_compound_degradation() {
    for batch_rows in [1usize, 1024] {
        let mut cfg = ClusterConfig::default();
        cfg.buffer_pool_pages = 256;
        cfg.slice_pages = 32;
        cfg.ndp.enabled = true;
        cfg.ndp.min_io_pages = 8;
        cfg.ndp.max_pages_look_ahead = 64;
        cfg.scan_batch_rows = batch_rows;
        let db = TaurusDb::new(cfg);
        load(&db, SF, 7).unwrap();

        let reference: Vec<Vec<String>> = tpch_queries()
            .iter()
            .map(|q| fmt_rows(&(q.run)(&db, None).unwrap()))
            .collect();

        let stores = db.sal().page_stores();
        for ps in stores {
            ps.set_skip_policy(SkipPolicy::EveryNth(2));
            ps.set_force_shed(true);
        }
        stores[0].set_fault(FaultPolicy::Latency(std::time::Duration::from_millis(1)));
        db.buffer_pool().clear();

        for (q, expect) in tpch_queries().iter().zip(&reference) {
            let got = fmt_rows(
                &(q.run)(&db, None)
                    .unwrap_or_else(|e| panic!("{} (batch {batch_rows}, degraded): {e}", q.name)),
            );
            assert_eq!(
                &got, expect,
                "{}: mismatch under compound degradation (batch {batch_rows})",
                q.name
            );
        }
        // The degraded modes actually engaged: shed pages were billed.
        assert!(
            db.metrics().snapshot().ps_ndp_shed > 0,
            "forced shed never triggered (batch {batch_rows})"
        );
    }
}

#[test]
fn pq_equals_serial() {
    let on = db_with(true);
    for q in tpch_queries().iter().chain(micro_queries().iter()) {
        if !q.pq_capable {
            continue;
        }
        let serial = fmt_rows(&(q.run)(&on, None).unwrap());
        let parallel = fmt_rows(&(q.run)(&on, Some(4)).unwrap());
        assert_eq!(serial, parallel, "{}: PQ result mismatch", q.name);
    }
}

#[test]
fn q6_matches_brute_force() {
    let on = db_with(true);
    let data = taurus_tpch::generate(SF, 7);
    let d0 = taurus_common::Date32::parse("1994-01-01").unwrap();
    let d1 = taurus_common::Date32::parse("1995-01-01").unwrap();
    let mut expect = taurus_common::Dec::new(0, 4);
    for l in &data.lineitem {
        let sd = l[10].as_date().unwrap();
        let disc = l[6].as_dec().unwrap();
        let qty = l[4].as_dec().unwrap();
        if sd >= d0
            && sd < d1
            && disc
                .cmp_dec(taurus_common::Dec::parse("0.05").unwrap())
                .is_ge()
            && disc
                .cmp_dec(taurus_common::Dec::parse("0.07").unwrap())
                .is_le()
            && qty.cmp_dec(taurus_common::Dec::from_int(24)).is_lt()
        {
            expect = expect.add(l[5].as_dec().unwrap().mul(disc));
        }
    }
    let got = taurus_tpch::queries1::q6(&on, None).unwrap();
    assert_eq!(
        got[0][0].as_dec().unwrap().cmp_dec(expect),
        std::cmp::Ordering::Equal
    );
}

#[test]
fn q1_matches_brute_force_counts() {
    let on = db_with(true);
    let data = taurus_tpch::generate(SF, 7);
    let cutoff = taurus_common::Date32::parse("1998-09-02").unwrap();
    let mut groups: std::collections::BTreeMap<(String, String), i64> = Default::default();
    for l in &data.lineitem {
        if l[10].as_date().unwrap() <= cutoff {
            let k = (
                l[8].as_str().unwrap().to_string(),
                l[9].as_str().unwrap().to_string(),
            );
            *groups.entry(k).or_insert(0) += 1;
        }
    }
    let rows = taurus_tpch::queries1::q1(&on, None).unwrap();
    assert_eq!(rows.len(), groups.len());
    for r in &rows {
        let k = (
            r[0].as_str().unwrap().to_string(),
            r[1].as_str().unwrap().to_string(),
        );
        // count(*) is the last output column.
        assert_eq!(r[r.len() - 1], Value::Int(groups[&k]), "group {k:?}");
    }
}
