//! The eight TPC-H table schemas (spec column order) and the secondary
//! indexes the paper's plans rely on (e.g. the Q002 secondary-index scan
//! and the Q14/Q17/Q19 lookups of lineitem by part key).

use std::sync::Arc;

use taurus_common::schema::{Column, TableSchema};
use taurus_common::DataType;
use taurus_ndp::{Table, TaurusDb};

fn dec() -> DataType {
    DataType::Decimal {
        precision: 15,
        scale: 2,
    }
}

pub fn region() -> Arc<TableSchema> {
    TableSchema::new(
        "region",
        vec![
            Column::new("r_regionkey", DataType::BigInt),
            Column::new("r_name", DataType::Char(25)),
            Column::new("r_comment", DataType::Varchar(152)),
        ],
        vec![0],
    )
}

pub fn nation() -> Arc<TableSchema> {
    TableSchema::new(
        "nation",
        vec![
            Column::new("n_nationkey", DataType::BigInt),
            Column::new("n_name", DataType::Char(25)),
            Column::new("n_regionkey", DataType::BigInt),
            Column::new("n_comment", DataType::Varchar(152)),
        ],
        vec![0],
    )
}

pub fn supplier() -> Arc<TableSchema> {
    TableSchema::new(
        "supplier",
        vec![
            Column::new("s_suppkey", DataType::BigInt),
            Column::new("s_name", DataType::Char(25)),
            Column::new("s_address", DataType::Varchar(40)),
            Column::new("s_nationkey", DataType::BigInt),
            Column::new("s_phone", DataType::Char(15)),
            Column::new("s_acctbal", dec()),
            Column::new("s_comment", DataType::Varchar(101)),
        ],
        vec![0],
    )
}

pub fn customer() -> Arc<TableSchema> {
    TableSchema::new(
        "customer",
        vec![
            Column::new("c_custkey", DataType::BigInt),
            Column::new("c_name", DataType::Varchar(25)),
            Column::new("c_address", DataType::Varchar(40)),
            Column::new("c_nationkey", DataType::BigInt),
            Column::new("c_phone", DataType::Char(15)),
            Column::new("c_acctbal", dec()),
            Column::new("c_mktsegment", DataType::Char(10)),
            Column::new("c_comment", DataType::Varchar(117)),
        ],
        vec![0],
    )
}

pub fn part() -> Arc<TableSchema> {
    TableSchema::new(
        "part",
        vec![
            Column::new("p_partkey", DataType::BigInt),
            Column::new("p_name", DataType::Varchar(55)),
            Column::new("p_mfgr", DataType::Char(25)),
            Column::new("p_brand", DataType::Char(10)),
            Column::new("p_type", DataType::Varchar(25)),
            Column::new("p_size", DataType::Int),
            Column::new("p_container", DataType::Char(10)),
            Column::new("p_retailprice", dec()),
            Column::new("p_comment", DataType::Varchar(23)),
        ],
        vec![0],
    )
}

pub fn partsupp() -> Arc<TableSchema> {
    TableSchema::new(
        "partsupp",
        vec![
            Column::new("ps_partkey", DataType::BigInt),
            Column::new("ps_suppkey", DataType::BigInt),
            Column::new("ps_availqty", DataType::Int),
            Column::new("ps_supplycost", dec()),
            Column::new("ps_comment", DataType::Varchar(199)),
        ],
        vec![0, 1],
    )
}

pub fn orders() -> Arc<TableSchema> {
    TableSchema::new(
        "orders",
        vec![
            Column::new("o_orderkey", DataType::BigInt),
            Column::new("o_custkey", DataType::BigInt),
            Column::new("o_orderstatus", DataType::Char(1)),
            Column::new("o_totalprice", dec()),
            Column::new("o_orderdate", DataType::Date),
            Column::new("o_orderpriority", DataType::Char(15)),
            Column::new("o_clerk", DataType::Char(15)),
            Column::new("o_shippriority", DataType::Int),
            Column::new("o_comment", DataType::Varchar(79)),
        ],
        vec![0],
    )
}

pub fn lineitem() -> Arc<TableSchema> {
    TableSchema::new(
        "lineitem",
        vec![
            Column::new("l_orderkey", DataType::BigInt),       // 0
            Column::new("l_partkey", DataType::BigInt),        // 1
            Column::new("l_suppkey", DataType::BigInt),        // 2
            Column::new("l_linenumber", DataType::Int),        // 3
            Column::new("l_quantity", dec()),                  // 4
            Column::new("l_extendedprice", dec()),             // 5
            Column::new("l_discount", dec()),                  // 6
            Column::new("l_tax", dec()),                       // 7
            Column::new("l_returnflag", DataType::Char(1)),    // 8
            Column::new("l_linestatus", DataType::Char(1)),    // 9
            Column::new("l_shipdate", DataType::Date),         // 10
            Column::new("l_commitdate", DataType::Date),       // 11
            Column::new("l_receiptdate", DataType::Date),      // 12
            Column::new("l_shipinstruct", DataType::Char(25)), // 13
            Column::new("l_shipmode", DataType::Char(10)),     // 14
            Column::new("l_comment", DataType::Varchar(44)),   // 15
        ],
        vec![0, 3],
    )
}

/// Create all eight tables with their secondary indexes.
pub fn create_all(db: &Arc<TaurusDb>) -> taurus_common::Result<Vec<Arc<Table>>> {
    Ok(vec![
        db.create_table(region(), &[])?,
        db.create_table(nation(), &[])?,
        db.create_table(supplier(), &[])?,
        db.create_table(customer(), &[])?,
        db.create_table(part(), &[])?,
        // ps_suppkey lookups for Q11/Q20.
        db.create_table(partsupp(), &[("i_ps_suppkey", vec![1])])?,
        // o_custkey lookups for Q13/Q22.
        db.create_table(orders(), &[("i_o_custkey", vec![1])])?,
        // l_suppkey (the paper's Q002 secondary scan) and l_partkey
        // (Q14/Q17/Q19 NL-join lookups).
        db.create_table(
            lineitem(),
            &[("i_l_suppkey", vec![2]), ("i_l_partkey", vec![1])],
        )?,
    ])
}

/// Well-known index positions for plan builders.
pub mod idx {
    /// partsupp secondary: ps_suppkey.
    pub const PS_SUPPKEY: usize = 1;
    /// lineitem secondary: l_suppkey.
    pub const L_SUPPKEY: usize = 1;
    /// lineitem secondary: l_partkey.
    pub const L_PARTKEY: usize = 2;
    /// orders secondary: o_custkey.
    pub const O_CUSTKEY: usize = 1;
}
