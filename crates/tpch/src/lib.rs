//! TPC-H for the Taurus NDP reproduction: a deterministic dbgen-shaped
//! generator ([`dbgen`]), the eight table schemas with the secondary
//! indexes the paper's plans use ([`schema`]), and plan builders for all
//! 22 queries plus the §VII-A micro-benchmark ([`queries1`], [`queries2`]).

pub mod dbgen;
pub mod queries1;
pub mod queries2;
pub mod schema;

pub use dbgen::{generate, load, TpchData};
pub use queries1::optimized;
pub use queries2::{micro_queries, tpch_queries, Query};
