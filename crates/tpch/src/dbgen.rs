//! Deterministic TPC-H-shaped data generation (a laptop-scale dbgen).
//!
//! Cardinalities scale with SF exactly like the spec (lineitem ≈ 6M·SF);
//! value distributions, column widths, date ranges and the spec's quirks
//! that the queries depend on are preserved: only two thirds of customers
//! place orders (Q13/Q22), `l_shipdate = o_orderdate + 1..121`,
//! part types/containers/brands come from the spec word lists, comments
//! have spec-like widths so projection benefits are realistic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use taurus_common::schema::Row;
use taurus_common::{Date32, Dec, Value};

pub const NATIONS: [(&str, i64); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];

pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECI", "5-LOW"];
const SHIP_MODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
const SHIP_INSTRUCT: [&str; 4] = [
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
];
const TYPE_SYL1: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
const TYPE_SYL2: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
const TYPE_SYL3: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];
const CONTAINER_SYL1: [&str; 5] = ["SM", "LG", "MED", "JUMBO", "WRAP"];
const CONTAINER_SYL2: [&str; 8] = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"];
const NAME_WORDS: [&str; 24] = [
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "black",
    "blanched",
    "blue",
    "blush",
    "brown",
    "burlywood",
    "burnished",
    "chartreuse",
    "chiffon",
    "chocolate",
    "coral",
    "cornflower",
    "cream",
    "cyan",
    "dark",
    "deep",
    "forest",
    "green",
];
const COMMENT_WORDS: [&str; 20] = [
    "carefully",
    "quickly",
    "furiously",
    "slyly",
    "blithely",
    "deposits",
    "packages",
    "requests",
    "accounts",
    "instructions",
    "theodolites",
    "platelets",
    "pinto",
    "beans",
    "foxes",
    "ideas",
    "dependencies",
    "excuses",
    "asymptotes",
    "pearls",
];

/// All eight tables' rows for one scale factor.
pub struct TpchData {
    pub region: Vec<Row>,
    pub nation: Vec<Row>,
    pub supplier: Vec<Row>,
    pub customer: Vec<Row>,
    pub part: Vec<Row>,
    pub partsupp: Vec<Row>,
    pub orders: Vec<Row>,
    pub lineitem: Vec<Row>,
}

pub fn cardinalities(sf: f64) -> (usize, usize, usize, usize, usize) {
    let supplier = ((10_000.0 * sf) as usize).max(10);
    let part = ((200_000.0 * sf) as usize).max(50);
    let customer = ((150_000.0 * sf) as usize).max(30);
    let orders = customer * 10;
    let partsupp = part * 4;
    (supplier, part, customer, orders, partsupp)
}

fn comment(rng: &mut StdRng, max: usize) -> Value {
    let n_words = rng.gen_range(3..8);
    let mut s = String::new();
    for i in 0..n_words {
        if i > 0 {
            s.push(' ');
        }
        s.push_str(COMMENT_WORDS[rng.gen_range(0..COMMENT_WORDS.len())]);
        if s.len() > max.saturating_sub(12) {
            break;
        }
    }
    s.truncate(max);
    Value::str(s)
}

/// Occasionally plant the Q13/Q16/Q21-relevant phrases.
fn order_comment(rng: &mut StdRng) -> Value {
    if rng.gen_bool(0.02) {
        Value::str("handle special requests carefully special requests")
    } else {
        comment(rng, 79)
    }
}

fn supplier_comment(rng: &mut StdRng) -> Value {
    if rng.gen_bool(0.01) {
        Value::str("Customer recent Complaints about deliveries")
    } else {
        comment(rng, 101)
    }
}

fn money(rng: &mut StdRng, lo: i64, hi: i64) -> Value {
    Value::Decimal(Dec::new(rng.gen_range(lo * 100..hi * 100) as i128, 2))
}

fn phone(rng: &mut StdRng, nation: i64) -> Value {
    Value::str(format!(
        "{:02}-{:03}-{:03}-{:04}",
        nation + 10,
        rng.gen_range(100..1000),
        rng.gen_range(100..1000),
        rng.gen_range(1000..10_000)
    ))
}

/// Generate the full dataset, deterministically for a given (sf, seed).
pub fn generate(sf: f64, seed: u64) -> TpchData {
    let (n_supp, n_part, n_cust, n_ord, n_ps) = cardinalities(sf);
    let mut rng = StdRng::seed_from_u64(seed);

    let region: Vec<Row> = REGIONS
        .iter()
        .enumerate()
        .map(|(i, name)| {
            vec![
                Value::Int(i as i64),
                Value::str(*name),
                comment(&mut rng, 152),
            ]
        })
        .collect();

    let nation: Vec<Row> = NATIONS
        .iter()
        .enumerate()
        .map(|(i, (name, region))| {
            vec![
                Value::Int(i as i64),
                Value::str(*name),
                Value::Int(*region),
                comment(&mut rng, 152),
            ]
        })
        .collect();

    let supplier: Vec<Row> = (0..n_supp)
        .map(|i| {
            let nk = rng.gen_range(0..25i64);
            vec![
                Value::Int(i as i64 + 1),
                Value::str(format!("Supplier#{:09}", i + 1)),
                Value::str(format!("addr {} supplier lane", i + 1)),
                Value::Int(nk),
                phone(&mut rng, nk),
                money(&mut rng, -999, 9999),
                supplier_comment(&mut rng),
            ]
        })
        .collect();

    let customer: Vec<Row> = (0..n_cust)
        .map(|i| {
            let nk = rng.gen_range(0..25i64);
            vec![
                Value::Int(i as i64 + 1),
                Value::str(format!("Customer#{:09}", i + 1)),
                Value::str(format!("addr {} customer way", i + 1)),
                Value::Int(nk),
                phone(&mut rng, nk),
                money(&mut rng, -999, 9999),
                Value::str(SEGMENTS[rng.gen_range(0..SEGMENTS.len())]),
                comment(&mut rng, 117),
            ]
        })
        .collect();

    let part: Vec<Row> = (0..n_part)
        .map(|i| {
            let w = |r: &mut StdRng| NAME_WORDS[r.gen_range(0..NAME_WORDS.len())];
            let name = format!(
                "{} {} {} {} {}",
                w(&mut rng),
                w(&mut rng),
                w(&mut rng),
                w(&mut rng),
                w(&mut rng)
            );
            let m = rng.gen_range(1..6);
            let brand = format!("Brand#{}{}", m, rng.gen_range(1..6));
            let ptype = format!(
                "{} {} {}",
                TYPE_SYL1[rng.gen_range(0..6)],
                TYPE_SYL2[rng.gen_range(0..5)],
                TYPE_SYL3[rng.gen_range(0..5)]
            );
            let container = format!(
                "{} {}",
                CONTAINER_SYL1[rng.gen_range(0..5)],
                CONTAINER_SYL2[rng.gen_range(0..8)]
            );
            // Spec: retail price ~ 900 + key-derived drift.
            let price = 90_000 + (i as i128 % 20_001) * 10 / 2;
            vec![
                Value::Int(i as i64 + 1),
                Value::str(name),
                Value::str(format!("Manufacturer#{m}")),
                Value::str(brand),
                Value::str(ptype),
                Value::Int(rng.gen_range(1..51)),
                Value::str(container),
                Value::Decimal(Dec::new(price, 2)),
                comment(&mut rng, 23),
            ]
        })
        .collect();

    let partsupp: Vec<Row> = (0..n_ps)
        .map(|i| {
            let partkey = (i / 4) as i64 + 1;
            let suppkey = ((partkey as usize + (i % 4) * (n_supp / 4 + 1)) % n_supp) as i64 + 1;
            vec![
                Value::Int(partkey),
                Value::Int(suppkey),
                Value::Int(rng.gen_range(1..10_000)),
                money(&mut rng, 1, 1000),
                comment(&mut rng, 199),
            ]
        })
        .collect();

    let start = Date32::from_ymd(1992, 1, 1);
    let end = Date32::from_ymd(1998, 8, 2);
    let date_span = end.0 - start.0 - 151;

    let mut orders: Vec<Row> = Vec::with_capacity(n_ord);
    let mut lineitem: Vec<Row> = Vec::with_capacity(n_ord * 4);
    for i in 0..n_ord {
        let orderkey = i as i64 + 1;
        // Only two thirds of customers have orders (spec: custkey % 3 != 0).
        let mut custkey = rng.gen_range(1..=n_cust as i64);
        if custkey % 3 == 0 {
            custkey = (custkey % (n_cust as i64 - 1)) + 1;
            if custkey % 3 == 0 {
                custkey += 1;
            }
        }
        let odate = start.add_days(rng.gen_range(0..date_span));
        let n_lines = rng.gen_range(1..8);
        let mut total = Dec::new(0, 2);
        let mut all_f = true;
        let mut all_o = true;
        for ln in 0..n_lines {
            let partkey = rng.gen_range(1..=n_part as i64);
            let suppkey = ((partkey as usize + (ln % 4) * (n_supp / 4 + 1)) % n_supp) as i64 + 1;
            let qty = rng.gen_range(1..51i64);
            let retail = 90_000 + ((partkey - 1) as i128 % 20_001) * 10 / 2;
            let extprice = Dec::new(retail * qty as i128, 2);
            let discount = Dec::new(rng.gen_range(0..11), 2);
            let tax = Dec::new(rng.gen_range(0..9), 2);
            let shipdate = odate.add_days(rng.gen_range(1..122));
            let commitdate = odate.add_days(rng.gen_range(30..91));
            let receiptdate = shipdate.add_days(rng.gen_range(1..31));
            let today = Date32::from_ymd(1995, 6, 17);
            let (rf, ls) = if receiptdate <= today {
                (if rng.gen_bool(0.5) { "R" } else { "A" }, "F")
            } else {
                ("N", "O")
            };
            if ls == "F" {
                all_o = false;
            } else {
                all_f = false;
            }
            total = total.add(extprice);
            lineitem.push(vec![
                Value::Int(orderkey),
                Value::Int(partkey),
                Value::Int(suppkey),
                Value::Int(ln as i64 + 1),
                Value::Decimal(Dec::new(qty as i128 * 100, 2)),
                Value::Decimal(extprice),
                Value::Decimal(discount),
                Value::Decimal(tax),
                Value::str(rf),
                Value::str(ls),
                Value::Date(shipdate),
                Value::Date(commitdate),
                Value::Date(receiptdate),
                Value::str(SHIP_INSTRUCT[rng.gen_range(0..4)]),
                Value::str(SHIP_MODES[rng.gen_range(0..7)]),
                comment(&mut rng, 44),
            ]);
        }
        let status = if all_f {
            "F"
        } else if all_o {
            "O"
        } else {
            "P"
        };
        orders.push(vec![
            Value::Int(orderkey),
            Value::Int(custkey),
            Value::str(status),
            Value::Decimal(total),
            Value::Date(odate),
            Value::str(PRIORITIES[rng.gen_range(0..5)]),
            Value::str(format!("Clerk#{:09}", rng.gen_range(1..1000))),
            Value::Int(0),
            order_comment(&mut rng),
        ]);
    }

    TpchData {
        region,
        nation,
        supplier,
        customer,
        part,
        partsupp,
        orders,
        lineitem,
    }
}

/// Create the schema and load a full dataset into `db`.
pub fn load(
    db: &std::sync::Arc<taurus_ndp::TaurusDb>,
    sf: f64,
    seed: u64,
) -> taurus_common::Result<TpchData2> {
    let tables = crate::schema::create_all(db)?;
    let data = generate(sf, seed);
    db.bulk_load(&tables[0], data.region.clone())?;
    db.bulk_load(&tables[1], data.nation.clone())?;
    db.bulk_load(&tables[2], data.supplier.clone())?;
    db.bulk_load(&tables[3], data.customer.clone())?;
    db.bulk_load(&tables[4], data.part.clone())?;
    db.bulk_load(&tables[5], data.partsupp.clone())?;
    db.bulk_load(&tables[6], data.orders.clone())?;
    db.bulk_load(&tables[7], data.lineitem.clone())?;
    // Start every experiment cold, like the paper's fresh-server runs.
    db.buffer_pool().clear();
    Ok(TpchData2 { rows: data })
}

/// Loaded dataset handle (kept for test cross-checks).
pub struct TpchData2 {
    pub rows: TpchData,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let a = generate(0.001, 42);
        let b = generate(0.001, 42);
        assert_eq!(a.lineitem.len(), b.lineitem.len());
        assert_eq!(a.lineitem[0], b.lineitem[0]);
        assert_eq!(a.orders[10], b.orders[10]);
        let c = generate(0.001, 43);
        assert_ne!(a.lineitem[0], c.lineitem[0]);
    }

    #[test]
    fn cardinalities_scale() {
        let (s, p, c, o, ps) = cardinalities(0.01);
        assert_eq!(s, 100);
        assert_eq!(p, 2000);
        assert_eq!(c, 1500);
        assert_eq!(o, 15_000);
        assert_eq!(ps, 8000);
        let d = generate(0.001, 1);
        assert_eq!(d.region.len(), 5);
        assert_eq!(d.nation.len(), 25);
        // ~4 lineitems per order.
        let ratio = d.lineitem.len() as f64 / d.orders.len() as f64;
        assert!((2.0..6.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn orders_skip_every_third_customer() {
        let d = generate(0.005, 7);
        assert!(d.orders.iter().all(|o| o[1].as_int().unwrap() % 3 != 0));
    }

    #[test]
    fn lineitem_dates_follow_order_date() {
        let d = generate(0.001, 9);
        let odates: std::collections::HashMap<i64, Date32> = d
            .orders
            .iter()
            .map(|o| (o[0].as_int().unwrap(), o[4].as_date().unwrap()))
            .collect();
        for l in &d.lineitem {
            let ok = l[0].as_int().unwrap();
            let od = odates[&ok];
            let ship = l[10].as_date().unwrap();
            let receipt = l[12].as_date().unwrap();
            assert!(ship.0 > od.0 && ship.0 <= od.0 + 121);
            assert!(receipt.0 > ship.0 && receipt.0 <= ship.0 + 30);
        }
    }

    #[test]
    fn returnflag_consistent_with_linestatus() {
        let d = generate(0.001, 11);
        for l in &d.lineitem {
            let rf = l[8].as_str().unwrap().to_string();
            let ls = l[9].as_str().unwrap().to_string();
            match ls.as_str() {
                "O" => assert_eq!(rf, "N"),
                "F" => assert!(rf == "R" || rf == "A"),
                other => panic!("bad linestatus {other}"),
            }
        }
    }
}
