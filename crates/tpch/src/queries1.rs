//! TPC-H queries 1–11 as plan builders (join orders fixed as the paper
//! describes MySQL choosing them). Every query runs the optimizer's NDP
//! post-processing pass before execution; the `pq` argument wraps the
//! parallelizable stage in an Exchange for the PQ-capable queries (§VII-E:
//! "the remaining queries saw no further reductions because the optimizer
//! chose fully serial plans").

use taurus_common::schema::Row;
use taurus_common::Result;
use taurus_executor::{execute, ExecContext};
use taurus_expr::ast::Expr;
use taurus_ndp::TaurusDb;
use taurus_optimizer::ndp_post::ndp_post_process;
use taurus_optimizer::plan::{
    AggFuncEx, AggItem, HashAggNode, HashJoinNode, JoinType, LookupJoinNode, Plan, ScanNode,
};

pub(crate) fn agg(func: AggFuncEx, input: Option<Expr>) -> AggItem {
    AggItem { func, input }
}

pub(crate) fn sum(e: Expr) -> AggItem {
    agg(AggFuncEx::Sum, Some(e))
}

pub(crate) fn avg(e: Expr) -> AggItem {
    agg(AggFuncEx::Avg, Some(e))
}

pub(crate) fn count_star() -> AggItem {
    agg(AggFuncEx::CountStar, None)
}

pub(crate) fn hash_join(
    left: Plan,
    right: Plan,
    lk: Vec<usize>,
    rk: Vec<usize>,
    join: JoinType,
) -> Plan {
    Plan::HashJoin(HashJoinNode {
        left: Box::new(left),
        right: Box::new(right),
        left_keys: lk,
        right_keys: rk,
        join,
    })
}

pub(crate) fn hash_agg(input: Plan, group: Vec<Expr>, aggs: Vec<AggItem>) -> Plan {
    Plan::HashAgg(HashAggNode {
        input: Box::new(input),
        group,
        aggs,
    })
}

/// Volume expression `ep * (1 - disc)` over row positions.
pub(crate) fn volume(ep: usize, disc: usize) -> Expr {
    Expr::mul(Expr::col(ep), Expr::sub(Expr::int(1), Expr::col(disc)))
}

/// Optimize (NDP post-process) then execute.
pub(crate) fn finish(mut plan: Plan, db: &TaurusDb) -> Result<Vec<Row>> {
    ndp_post_process(&mut plan, db)?;
    execute(&plan, &ExecContext::new(db))
}

/// Execute an already-optimized plan (the tail of every `qN`, which
/// builds the plan via its `qN_plan` sibling so benches and parity tests
/// can run the very same plan through other terminals — streaming,
/// EXPLAIN, PQ staging).
pub(crate) fn run_plan(plan: &Plan, db: &TaurusDb) -> Result<Vec<Row>> {
    execute(plan, &ExecContext::new(db))
}

/// Optimize then return the plan (callers needing EXPLAIN or staging).
pub fn optimized(mut plan: Plan, db: &TaurusDb) -> Result<Plan> {
    ndp_post_process(&mut plan, db)?;
    Ok(plan)
}

// --- Q1: pricing summary report -------------------------------------------

pub fn q1(db: &TaurusDb, pq: Option<usize>) -> Result<Vec<Row>> {
    run_plan(&q1_plan(db, pq)?, db)
}

/// The optimized plan q1 executes.
pub fn q1_plan(db: &TaurusDb, pq: Option<usize>) -> Result<Plan> {
    // Scan output: [qty, ep, disc, tax, rf, ls, sd] -> positions 0..6.
    let scan = ScanNode::new("lineitem", vec![4, 5, 6, 7, 8, 9, 10])
        .with_predicate(vec![Expr::le(Expr::col(10), Expr::date("1998-09-02"))]);
    let agg_plan = hash_agg(
        Plan::Scan(scan),
        vec![Expr::col(4), Expr::col(5)],
        vec![
            sum(Expr::col(0)),
            sum(Expr::col(1)),
            sum(Expr::mul(
                Expr::col(1),
                Expr::sub(Expr::int(1), Expr::col(2)),
            )),
            sum(Expr::mul(
                Expr::mul(Expr::col(1), Expr::sub(Expr::int(1), Expr::col(2))),
                Expr::add(Expr::int(1), Expr::col(3)),
            )),
            avg(Expr::col(0)),
            avg(Expr::col(1)),
            avg(Expr::col(2)),
            count_star(),
        ],
    );
    let agg_plan = match pq {
        Some(d) => agg_plan.exchange(d),
        None => agg_plan,
    };
    optimized(agg_plan.sort(vec![(0, false), (1, false)]), db)
}

// --- Q2: minimum cost supplier ----------------------------------------------

pub fn q2(db: &TaurusDb, pq: Option<usize>) -> Result<Vec<Row>> {
    run_plan(&q2_plan(db, pq)?, db)
}

/// The optimized plan q2 executes.
pub fn q2_plan(db: &TaurusDb, _pq: Option<usize>) -> Result<Plan> {
    // Europe supply costs: [ps_pk, ps_sk, cost, s_sk, s_name, s_addr,
    //                       s_nk, s_phone, s_bal, s_comment, n_nk, n_name,
    //                       n_rk, r_rk, r_name]
    let euro_chain = |out_full: bool| -> Plan {
        let ps = Plan::Scan(ScanNode::new("partsupp", vec![0, 1, 3]));
        let supp_out = if out_full {
            vec![0, 1, 2, 3, 4, 5, 6]
        } else {
            vec![0, 3]
        };
        let s = Plan::Scan(ScanNode::new("supplier", supp_out.clone()));
        let j1 = hash_join(ps, s, vec![1], vec![0], JoinType::Inner);
        let s_nk_pos = 3 + supp_out.iter().position(|&c| c == 3).unwrap();
        let n = Plan::Scan(ScanNode::new("nation", vec![0, 1, 2]));
        let j2 = hash_join(j1, n, vec![s_nk_pos], vec![0], JoinType::Inner);
        let n_rk_pos = 3 + supp_out.len() + 2;
        let r = Plan::Scan(
            ScanNode::new("region", vec![0, 1])
                .with_predicate(vec![Expr::eq(Expr::col(1), Expr::str("EUROPE"))]),
        );
        hash_join(j2, r, vec![n_rk_pos], vec![0], JoinType::Inner)
    };
    // Min cost per part in Europe.
    let mins = hash_agg(
        euro_chain(false),
        vec![Expr::col(0)],
        vec![agg(AggFuncEx::Min, Some(Expr::col(2)))],
    );
    // Qualifying parts.
    let parts = Plan::Scan(ScanNode::new("part", vec![0, 2, 4, 5]).with_predicate(vec![
        Expr::eq(Expr::col(5), Expr::int(15)),
        Expr::like(Expr::col(4), "%BRASS"),
    ]));
    // Full chain with supplier details: positions
    // [ps_pk0, ps_sk1, cost2, s_sk3, s_name4, s_addr5, s_nk6, s_phone7,
    //  s_bal8, s_comment9, n_nk10, n_name11, n_rk12, r_rk13, r_name14]
    let full = euro_chain(true);
    // Join with parts on partkey: + [p_pk15, p_mfgr16, p_type17, p_size18]
    let with_parts = hash_join(full, parts, vec![0], vec![0], JoinType::Inner);
    // Join with the minimum: keys (partkey, cost) == (pk, min).
    let best = hash_join(with_parts, mins, vec![0, 2], vec![0, 1], JoinType::Inner);
    // Output: s_acctbal, s_name, n_name, p_partkey, p_mfgr, s_address,
    //         s_phone, s_comment
    let projected = best.project(vec![
        Expr::col(8),
        Expr::col(4),
        Expr::col(11),
        Expr::col(15),
        Expr::col(16),
        Expr::col(5),
        Expr::col(7),
        Expr::col(9),
    ]);
    optimized(
        projected.top_n(vec![(0, true), (2, false), (1, false), (3, false)], 100),
        db,
    )
}

// --- Q3: shipping priority ---------------------------------------------------

pub fn q3(db: &TaurusDb, pq: Option<usize>) -> Result<Vec<Row>> {
    run_plan(&q3_plan(db, pq)?, db)
}

/// The optimized plan q3 executes.
pub fn q3_plan(db: &TaurusDb, _pq: Option<usize>) -> Result<Plan> {
    let customer = Plan::Scan(
        ScanNode::new("customer", vec![0, 6])
            .with_predicate(vec![Expr::eq(Expr::col(6), Expr::str("BUILDING"))]),
    );
    let orders = Plan::Scan(
        ScanNode::new("orders", vec![0, 1, 4, 7])
            .with_predicate(vec![Expr::lt(Expr::col(4), Expr::date("1995-03-15"))]),
    );
    // [o_ok0, o_ck1, o_od2, o_sp3, c_ck4, c_seg5]
    let oc = hash_join(orders, customer, vec![1], vec![0], JoinType::Inner);
    let lineitem = Plan::Scan(
        ScanNode::new("lineitem", vec![0, 5, 6, 10])
            .with_predicate(vec![Expr::gt(Expr::col(10), Expr::date("1995-03-15"))]),
    );
    // [l_ok0, l_ep1, l_disc2, l_sd3, o_ok4, o_ck5, o_od6, o_sp7, c_ck8, c_seg9]
    let j = hash_join(lineitem, oc, vec![0], vec![0], JoinType::Inner);
    let g = hash_agg(
        j,
        vec![Expr::col(0), Expr::col(6), Expr::col(7)],
        vec![sum(volume(1, 2))],
    );
    // Output: l_orderkey, revenue, o_orderdate, o_shippriority.
    let p = g.project(vec![Expr::col(0), Expr::col(3), Expr::col(1), Expr::col(2)]);
    optimized(p.top_n(vec![(1, true), (2, false)], 10), db)
}

// --- Q4: order priority checking ---------------------------------------------

pub fn q4(db: &TaurusDb, pq: Option<usize>) -> Result<Vec<Row>> {
    run_plan(&q4_plan(db, pq)?, db)
}

/// The optimized plan q4 executes.
pub fn q4_plan(db: &TaurusDb, pq: Option<usize>) -> Result<Plan> {
    let orders = ScanNode::new("orders", vec![0, 4, 5]).with_predicate(vec![
        Expr::ge(Expr::col(4), Expr::date("1993-07-01")),
        Expr::lt(Expr::col(4), Expr::date("1993-10-01")),
    ]);
    // EXISTS lineitem with commitdate < receiptdate, same order: NL semi
    // join on the lineitem primary key prefix (the paper's Q4 plan).
    let semi = Plan::LookupJoin(LookupJoinNode {
        outer: Box::new(Plan::Scan(orders)),
        table: "lineitem".into(),
        index: 0,
        outer_key_cols: vec![0],
        on: None,
        inner_output: vec![],
        join: JoinType::Semi,
        inner_predicate: vec![Expr::lt(Expr::col(11), Expr::col(12))],
    });
    let semi = match pq {
        Some(d) => semi.exchange(d),
        None => semi,
    };
    let g = hash_agg(semi, vec![Expr::col(2)], vec![count_star()]);
    optimized(g.sort(vec![(0, false)]), db)
}

// --- Q5: local supplier volume -------------------------------------------------

pub fn q5(db: &TaurusDb, pq: Option<usize>) -> Result<Vec<Row>> {
    run_plan(&q5_plan(db, pq)?, db)
}

/// The optimized plan q5 executes.
pub fn q5_plan(db: &TaurusDb, pq: Option<usize>) -> Result<Plan> {
    let orders = ScanNode::new("orders", vec![0, 1, 4]).with_predicate(vec![
        Expr::ge(Expr::col(4), Expr::date("1994-01-01")),
        Expr::lt(Expr::col(4), Expr::date("1995-01-01")),
    ]);
    // NL join to lineitem (parallelizable outer): [o_ok0, o_ck1, o_od2,
    // l_sk3, l_ep4, l_disc5]
    let ol = Plan::LookupJoin(LookupJoinNode {
        outer: Box::new(Plan::Scan(orders)),
        table: "lineitem".into(),
        index: 0,
        outer_key_cols: vec![0],
        on: None,
        inner_output: vec![2, 5, 6],
        join: JoinType::Inner,
        inner_predicate: vec![],
    });
    let ol = match pq {
        Some(d) => ol.exchange(d),
        None => ol,
    };
    // + [c_ck6, c_nk7]
    let c = Plan::Scan(ScanNode::new("customer", vec![0, 3]));
    let j1 = hash_join(ol, c, vec![1], vec![0], JoinType::Inner);
    // supplier on (l_sk, c_nk) == (s_sk, s_nk): + [s_sk8, s_nk9]
    let s = Plan::Scan(ScanNode::new("supplier", vec![0, 3]));
    let j2 = hash_join(j1, s, vec![3, 7], vec![0, 1], JoinType::Inner);
    // + [n_nk10, n_name11, n_rk12]
    let n = Plan::Scan(ScanNode::new("nation", vec![0, 1, 2]));
    let j3 = hash_join(j2, n, vec![9], vec![0], JoinType::Inner);
    // region ASIA: + [r_rk13, r_name14]
    let r = Plan::Scan(
        ScanNode::new("region", vec![0, 1])
            .with_predicate(vec![Expr::eq(Expr::col(1), Expr::str("ASIA"))]),
    );
    let j4 = hash_join(j3, r, vec![12], vec![0], JoinType::Inner);
    let g = hash_agg(j4, vec![Expr::col(11)], vec![sum(volume(4, 5))]);
    optimized(g.sort(vec![(1, true)]), db)
}

// --- Q6: revenue change forecast ---------------------------------------------

pub fn q6(db: &TaurusDb, pq: Option<usize>) -> Result<Vec<Row>> {
    run_plan(&q6_plan(db, pq)?, db)
}

/// The optimized plan q6 executes.
pub fn q6_plan(db: &TaurusDb, pq: Option<usize>) -> Result<Plan> {
    // Scan output: [qty0, ep1, disc2, sd3].
    let scan = ScanNode::new("lineitem", vec![4, 5, 6, 10]).with_predicate(vec![
        Expr::ge(Expr::col(10), Expr::date("1994-01-01")),
        Expr::lt(Expr::col(10), Expr::date("1995-01-01")),
        Expr::between(Expr::col(6), Expr::dec("0.05"), Expr::dec("0.07")),
        Expr::lt(Expr::col(4), Expr::int(24)),
    ]);
    let agg_plan = hash_agg(
        Plan::Scan(scan),
        vec![],
        vec![sum(Expr::mul(Expr::col(1), Expr::col(2)))],
    );
    let agg_plan = match pq {
        Some(d) => agg_plan.exchange(d),
        None => agg_plan,
    };
    optimized(agg_plan, db)
}

// --- Q7: volume shipping -------------------------------------------------------

pub fn q7(db: &TaurusDb, pq: Option<usize>) -> Result<Vec<Row>> {
    run_plan(&q7_plan(db, pq)?, db)
}

/// The optimized plan q7 executes.
pub fn q7_plan(db: &TaurusDb, _pq: Option<usize>) -> Result<Plan> {
    let lineitem = Plan::Scan(
        ScanNode::new("lineitem", vec![0, 2, 5, 6, 10]).with_predicate(vec![
            Expr::ge(Expr::col(10), Expr::date("1995-01-01")),
            Expr::le(Expr::col(10), Expr::date("1996-12-31")),
        ]),
    );
    // + [s_sk5, s_nk6]
    let s = Plan::Scan(ScanNode::new("supplier", vec![0, 3]));
    let j1 = hash_join(lineitem, s, vec![1], vec![0], JoinType::Inner);
    // + [o_ok7, o_ck8]
    let o = Plan::Scan(ScanNode::new("orders", vec![0, 1]));
    let j2 = hash_join(j1, o, vec![0], vec![0], JoinType::Inner);
    // + [c_ck9, c_nk10]
    let c = Plan::Scan(ScanNode::new("customer", vec![0, 3]));
    let j3 = hash_join(j2, c, vec![8], vec![0], JoinType::Inner);
    // + [n1_nk11, n1_name12]
    let n1 = Plan::Scan(ScanNode::new("nation", vec![0, 1]));
    let j4 = hash_join(j3, n1, vec![6], vec![0], JoinType::Inner);
    // + [n2_nk13, n2_name14]
    let n2 = Plan::Scan(ScanNode::new("nation", vec![0, 1]));
    let j5 = hash_join(j4, n2, vec![10], vec![0], JoinType::Inner);
    let pair = Expr::or(vec![
        Expr::and(vec![
            Expr::eq(Expr::col(12), Expr::str("FRANCE")),
            Expr::eq(Expr::col(14), Expr::str("GERMANY")),
        ]),
        Expr::and(vec![
            Expr::eq(Expr::col(12), Expr::str("GERMANY")),
            Expr::eq(Expr::col(14), Expr::str("FRANCE")),
        ]),
    ]);
    let f = j5.filter(pair);
    let p = f.project(vec![
        Expr::col(12),
        Expr::col(14),
        Expr::ExtractYear(Box::new(Expr::col(4))),
        volume(2, 3),
    ]);
    let g = hash_agg(
        p,
        vec![Expr::col(0), Expr::col(1), Expr::col(2)],
        vec![sum(Expr::col(3))],
    );
    optimized(g.sort(vec![(0, false), (1, false), (2, false)]), db)
}

// --- Q8: national market share ---------------------------------------------------

pub fn q8(db: &TaurusDb, pq: Option<usize>) -> Result<Vec<Row>> {
    run_plan(&q8_plan(db, pq)?, db)
}

/// The optimized plan q8 executes.
pub fn q8_plan(db: &TaurusDb, _pq: Option<usize>) -> Result<Plan> {
    let lineitem = Plan::Scan(ScanNode::new("lineitem", vec![0, 1, 2, 5, 6]));
    let part = Plan::Scan(
        ScanNode::new("part", vec![0, 4]).with_predicate(vec![Expr::eq(
            Expr::col(4),
            Expr::str("ECONOMY ANODIZED STEEL"),
        )]),
    );
    // + [p_pk5, p_type6]
    let j1 = hash_join(lineitem, part, vec![1], vec![0], JoinType::Inner);
    let orders = Plan::Scan(ScanNode::new("orders", vec![0, 1, 4]).with_predicate(vec![
        Expr::ge(Expr::col(4), Expr::date("1995-01-01")),
        Expr::le(Expr::col(4), Expr::date("1996-12-31")),
    ]));
    // + [o_ok7, o_ck8, o_od9]
    let j2 = hash_join(j1, orders, vec![0], vec![0], JoinType::Inner);
    // + [c_ck10, c_nk11]
    let c = Plan::Scan(ScanNode::new("customer", vec![0, 3]));
    let j3 = hash_join(j2, c, vec![8], vec![0], JoinType::Inner);
    // + [n1_nk12, n1_rk13]
    let n1 = Plan::Scan(ScanNode::new("nation", vec![0, 2]));
    let j4 = hash_join(j3, n1, vec![11], vec![0], JoinType::Inner);
    // region AMERICA: + [r_rk14, r_name15]
    let r = Plan::Scan(
        ScanNode::new("region", vec![0, 1])
            .with_predicate(vec![Expr::eq(Expr::col(1), Expr::str("AMERICA"))]),
    );
    let j5 = hash_join(j4, r, vec![13], vec![0], JoinType::Inner);
    // supplier nation: + [s_sk16, s_nk17] + [n2_nk18, n2_name19]
    let s = Plan::Scan(ScanNode::new("supplier", vec![0, 3]));
    let j6 = hash_join(j5, s, vec![2], vec![0], JoinType::Inner);
    let n2 = Plan::Scan(ScanNode::new("nation", vec![0, 1]));
    let j7 = hash_join(j6, n2, vec![17], vec![0], JoinType::Inner);
    let p = j7.project(vec![
        Expr::ExtractYear(Box::new(Expr::col(9))),
        volume(3, 4),
        Expr::Case {
            branches: vec![(Expr::eq(Expr::col(19), Expr::str("BRAZIL")), volume(3, 4))],
            else_: Box::new(Expr::dec("0.00")),
        },
    ]);
    let g = hash_agg(
        p,
        vec![Expr::col(0)],
        vec![sum(Expr::col(2)), sum(Expr::col(1))],
    );
    let share = g.project(vec![Expr::col(0), Expr::div(Expr::col(1), Expr::col(2))]);
    optimized(share.sort(vec![(0, false)]), db)
}

// --- Q9: product type profit ------------------------------------------------------

pub fn q9(db: &TaurusDb, pq: Option<usize>) -> Result<Vec<Row>> {
    run_plan(&q9_plan(db, pq)?, db)
}

/// The optimized plan q9 executes.
pub fn q9_plan(db: &TaurusDb, _pq: Option<usize>) -> Result<Plan> {
    let lineitem = Plan::Scan(ScanNode::new("lineitem", vec![0, 1, 2, 4, 5, 6]));
    let part = Plan::Scan(
        ScanNode::new("part", vec![0, 1]).with_predicate(vec![Expr::like(Expr::col(1), "%green%")]),
    );
    // + [p_pk6, p_name7]
    let j1 = hash_join(lineitem, part, vec![1], vec![0], JoinType::Inner);
    // + [s_sk8, s_nk9]
    let s = Plan::Scan(ScanNode::new("supplier", vec![0, 3]));
    let j2 = hash_join(j1, s, vec![2], vec![0], JoinType::Inner);
    // + [ps_pk10, ps_sk11, ps_cost12]
    let ps = Plan::Scan(ScanNode::new("partsupp", vec![0, 1, 3]));
    let j3 = hash_join(j2, ps, vec![1, 2], vec![0, 1], JoinType::Inner);
    // + [o_ok13, o_od14]
    let o = Plan::Scan(ScanNode::new("orders", vec![0, 4]));
    let j4 = hash_join(j3, o, vec![0], vec![0], JoinType::Inner);
    // + [n_nk15, n_name16]
    let n = Plan::Scan(ScanNode::new("nation", vec![0, 1]));
    let j5 = hash_join(j4, n, vec![9], vec![0], JoinType::Inner);
    let p = j5.project(vec![
        Expr::col(16),
        Expr::ExtractYear(Box::new(Expr::col(14))),
        Expr::sub(volume(4, 5), Expr::mul(Expr::col(12), Expr::col(3))),
    ]);
    let g = hash_agg(p, vec![Expr::col(0), Expr::col(1)], vec![sum(Expr::col(2))]);
    optimized(g.sort(vec![(0, false), (1, true)]), db)
}

// --- Q10: returned item reporting ---------------------------------------------------

pub fn q10(db: &TaurusDb, pq: Option<usize>) -> Result<Vec<Row>> {
    run_plan(&q10_plan(db, pq)?, db)
}

/// The optimized plan q10 executes.
pub fn q10_plan(db: &TaurusDb, _pq: Option<usize>) -> Result<Plan> {
    let orders = Plan::Scan(ScanNode::new("orders", vec![0, 1, 4]).with_predicate(vec![
        Expr::ge(Expr::col(4), Expr::date("1993-10-01")),
        Expr::lt(Expr::col(4), Expr::date("1994-01-01")),
    ]));
    let lineitem = Plan::Scan(
        ScanNode::new("lineitem", vec![0, 5, 6, 8])
            .with_predicate(vec![Expr::eq(Expr::col(8), Expr::str("R"))]),
    );
    // [l_ok0, l_ep1, l_disc2, l_rf3, o_ok4, o_ck5, o_od6]
    let j1 = hash_join(lineitem, orders, vec![0], vec![0], JoinType::Inner);
    // + [c_ck7, c_name8, c_addr9, c_nk10, c_phone11, c_bal12, c_comment13]
    let c = Plan::Scan(ScanNode::new("customer", vec![0, 1, 2, 3, 4, 5, 7]));
    let j2 = hash_join(j1, c, vec![5], vec![0], JoinType::Inner);
    // + [n_nk14, n_name15]
    let n = Plan::Scan(ScanNode::new("nation", vec![0, 1]));
    let j3 = hash_join(j2, n, vec![10], vec![0], JoinType::Inner);
    let g = hash_agg(
        j3,
        vec![
            Expr::col(7),
            Expr::col(8),
            Expr::col(12),
            Expr::col(11),
            Expr::col(15),
            Expr::col(9),
            Expr::col(13),
        ],
        vec![sum(volume(1, 2))],
    );
    // Output: custkey, name, revenue, acctbal, n_name, address, phone, comment.
    let p = g.project(vec![
        Expr::col(0),
        Expr::col(1),
        Expr::col(7),
        Expr::col(2),
        Expr::col(4),
        Expr::col(5),
        Expr::col(3),
        Expr::col(6),
    ]);
    optimized(p.top_n(vec![(2, true)], 20), db)
}

// --- Q11: important stock identification ----------------------------------------------

/// Q11's two aggregate stages over the shared supplier→partsupp lookup
/// plan: (per-part value sums, scalar total).
fn q11_stages() -> (Plan, Plan) {
    // German suppliers (small), then partsupp via index lookups — which is
    // why the paper's Q11 has no NDP opportunity beyond the tiny Nation
    // scan.
    let suppliers = Plan::Scan(ScanNode::new("supplier", vec![0, 3]));
    let nation = Plan::Scan(
        ScanNode::new("nation", vec![0, 1])
            .with_predicate(vec![Expr::eq(Expr::col(1), Expr::str("GERMANY"))]),
    );
    // [s_sk0, s_nk1, n_nk2, n_name3]
    let sn = hash_join(suppliers, nation, vec![1], vec![0], JoinType::Inner);
    // Lookup partsupp by suppkey (secondary index): + [ps_pk4, ps_avail5,
    // ps_cost6]
    let ps = Plan::LookupJoin(LookupJoinNode {
        outer: Box::new(sn),
        table: "partsupp".into(),
        index: crate::schema::idx::PS_SUPPKEY,
        outer_key_cols: vec![0],
        on: None,
        inner_output: vec![0, 2, 3],
        join: JoinType::Inner,
        inner_predicate: vec![],
    });
    let value = Expr::mul(Expr::col(6), Expr::col(5));
    let per_part = hash_agg(ps.clone(), vec![Expr::col(4)], vec![sum(value.clone())]);
    let total = hash_agg(ps, vec![], vec![sum(value)]);
    (per_part, total)
}

/// The optimized main-stage plan q11 executes (per-part value sums; the
/// scalar-total stage and the threshold filter run on top of it).
pub fn q11_plan(db: &TaurusDb, _pq: Option<usize>) -> Result<Plan> {
    optimized(q11_stages().0, db)
}

pub fn q11(db: &TaurusDb, pq: Option<usize>) -> Result<Vec<Row>> {
    let (_, total) = q11_stages();
    let per_part_rows = run_plan(&q11_plan(db, pq)?, db)?;
    let total_rows = finish(total, db)?;
    // SUM over an empty input is NULL (no German suppliers at tiny scale
    // factors): the query result is simply empty, not an error.
    if total_rows[0][0].is_null() {
        return Ok(Vec::new());
    }
    let total_val = total_rows[0][0].as_dec()?;
    // value(ps) > total * FRACTION; FRACTION = 0.0001 / SF, approximated
    // from the loaded row count.
    let n_supp = db.table("supplier")?.stats.read().row_count.max(1);
    let sf = n_supp as f64 / 10_000.0;
    // Spec fraction 0.0001/SF, capped so sub-0.01 scale factors (used in
    // tests) keep a meaningful threshold.
    let threshold = total_val.to_f64() * (0.0001 / sf.max(0.0001)).min(0.01);
    let mut out: Vec<Row> = per_part_rows
        .into_iter()
        .filter(|r| {
            r[1].as_dec()
                .map(|d| d.to_f64() > threshold)
                .unwrap_or(false)
        })
        .collect();
    out.sort_by(|a, b| b[1].cmp_total(&a[1]));
    Ok(out)
}
