//! TPC-H queries 12–22, the §VII-A micro-benchmark queries (Listing 5),
//! and the query registry used by the benchmark harnesses.

use std::collections::HashMap;

use taurus_common::schema::Row;
use taurus_common::{Dec, Result, Value};
use taurus_expr::ast::Expr;
use taurus_ndp::TaurusDb;
use taurus_optimizer::plan::{
    AggFuncEx, AggScanNode, JoinType, LookupJoinNode, Plan, RangeSpec, ScanNode,
};

use crate::queries1::{
    agg, avg, count_star, finish, hash_agg, hash_join, optimized, run_plan, sum, volume,
};
use crate::schema::idx;

// --- Q12: shipping modes and order priority ------------------------------------

pub fn q12(db: &TaurusDb, pq: Option<usize>) -> Result<Vec<Row>> {
    run_plan(&q12_plan(db, pq)?, db)
}

/// The optimized plan q12 executes.
pub fn q12_plan(db: &TaurusDb, _pq: Option<usize>) -> Result<Plan> {
    let lineitem = Plan::Scan(
        ScanNode::new("lineitem", vec![0, 10, 11, 12, 14]).with_predicate(vec![
            Expr::in_list(Expr::col(14), vec![Value::str("MAIL"), Value::str("SHIP")]),
            Expr::lt(Expr::col(11), Expr::col(12)),
            Expr::lt(Expr::col(10), Expr::col(11)),
            Expr::ge(Expr::col(12), Expr::date("1994-01-01")),
            Expr::lt(Expr::col(12), Expr::date("1995-01-01")),
        ]),
    );
    // + [o_ok5, o_op6]
    let orders = Plan::Scan(ScanNode::new("orders", vec![0, 5]));
    let j = hash_join(lineitem, orders, vec![0], vec![0], JoinType::Inner);
    let p = j.project(vec![
        Expr::col(4),
        Expr::Case {
            branches: vec![(
                Expr::in_list(
                    Expr::col(6),
                    vec![Value::str("1-URGENT"), Value::str("2-HIGH")],
                ),
                Expr::int(1),
            )],
            else_: Box::new(Expr::int(0)),
        },
        Expr::Case {
            branches: vec![(
                Expr::in_list(
                    Expr::col(6),
                    vec![Value::str("1-URGENT"), Value::str("2-HIGH")],
                ),
                Expr::int(0),
            )],
            else_: Box::new(Expr::int(1)),
        },
    ]);
    let g = hash_agg(
        p,
        vec![Expr::col(0)],
        vec![sum(Expr::col(1)), sum(Expr::col(2))],
    );
    optimized(g.sort(vec![(0, false)]), db)
}

// --- Q13: customer distribution ----------------------------------------------

pub fn q13(db: &TaurusDb, pq: Option<usize>) -> Result<Vec<Row>> {
    run_plan(&q13_plan(db, pq)?, db)
}

/// The optimized plan q13 executes.
pub fn q13_plan(db: &TaurusDb, _pq: Option<usize>) -> Result<Plan> {
    let customer = Plan::Scan(ScanNode::new("customer", vec![0]));
    let orders = Plan::Scan(
        ScanNode::new("orders", vec![0, 1, 8])
            .with_predicate(vec![Expr::not_like(Expr::col(8), "%special%requests%")]),
    );
    // LEFT OUTER: [c_ck0, o_ok1, o_ck2, o_comment3]
    let j = hash_join(customer, orders, vec![0], vec![1], JoinType::LeftOuter);
    let per_cust = hash_agg(
        j,
        vec![Expr::col(0)],
        vec![agg(AggFuncEx::Count, Some(Expr::col(1)))],
    );
    let dist = hash_agg(per_cust, vec![Expr::col(1)], vec![count_star()]);
    optimized(dist.sort(vec![(1, true), (0, true)]), db)
}

// --- Q14: promotion effect -----------------------------------------------------

pub fn q14(db: &TaurusDb, pq: Option<usize>) -> Result<Vec<Row>> {
    run_plan(&q14_plan(db, pq)?, db)
}

/// The optimized plan q14 executes.
pub fn q14_plan(db: &TaurusDb, pq: Option<usize>) -> Result<Plan> {
    let lineitem = ScanNode::new("lineitem", vec![1, 5, 6, 10]).with_predicate(vec![
        Expr::ge(Expr::col(10), Expr::date("1995-09-01")),
        Expr::lt(Expr::col(10), Expr::date("1995-10-01")),
    ]);
    // NL join to part (the paper's Q14 plan): + [p_type4]
    let j = Plan::LookupJoin(LookupJoinNode {
        outer: Box::new(Plan::Scan(lineitem)),
        table: "part".into(),
        index: 0,
        outer_key_cols: vec![0],
        on: None,
        inner_output: vec![4],
        join: JoinType::Inner,
        inner_predicate: vec![],
    });
    let j = match pq {
        Some(d) => j.exchange(d),
        None => j,
    };
    let p = j.project(vec![
        Expr::Case {
            branches: vec![(Expr::like(Expr::col(4), "PROMO%"), volume(1, 2))],
            else_: Box::new(Expr::dec("0.00")),
        },
        volume(1, 2),
    ]);
    let g = hash_agg(p, vec![], vec![sum(Expr::col(0)), sum(Expr::col(1))]);
    let out = g.project(vec![Expr::div(
        Expr::mul(Expr::dec("100.00"), Expr::col(0)),
        Expr::col(1),
    )]);
    optimized(out, db)
}

// --- Q15: top supplier ----------------------------------------------------------

/// The optimized main-stage plan q15 executes (the revenue view:
/// per-supplier Q1'96 revenue; the max-revenue filter and the serial
/// supplier join run on top of it).
pub fn q15_plan(db: &TaurusDb, pq: Option<usize>) -> Result<Plan> {
    let lineitem = ScanNode::new("lineitem", vec![2, 5, 6, 10]).with_predicate(vec![
        Expr::ge(Expr::col(10), Expr::date("1996-01-01")),
        Expr::lt(Expr::col(10), Expr::date("1996-04-01")),
    ]);
    // revenue per supplier (positions: sk0 ep1 disc2 sd3).
    let rev = hash_agg(
        Plan::Scan(lineitem),
        vec![Expr::col(0)],
        vec![sum(volume(1, 2))],
    );
    let rev = match pq {
        Some(d) => rev.exchange(d),
        None => rev,
    };
    optimized(rev, db)
}

pub fn q15(db: &TaurusDb, pq: Option<usize>) -> Result<Vec<Row>> {
    let rev_rows = run_plan(&q15_plan(db, pq)?, db)?;
    // max(total_revenue) — the view's outer scalar subquery.
    let max_rev = rev_rows
        .iter()
        .map(|r| r[1].as_dec().unwrap())
        .max_by(|a, b| a.cmp_dec(*b))
        .unwrap_or(Dec::new(0, 2));
    let winners: HashMap<i64, Dec> = rev_rows
        .iter()
        .filter(|r| r[1].as_dec().unwrap().cmp_dec(max_rev).is_eq())
        .map(|r| (r[0].as_int().unwrap(), r[1].as_dec().unwrap()))
        .collect();
    // The paper's Q15 joins supplier serially (the NL stage limiting PQ).
    let suppliers = finish(Plan::Scan(ScanNode::new("supplier", vec![0, 1, 2, 4])), db)?;
    let mut out: Vec<Row> = suppliers
        .into_iter()
        .filter_map(|s| {
            let sk = s[0].as_int().ok()?;
            winners.get(&sk).map(|rev| {
                vec![
                    s[0].clone(),
                    s[1].clone(),
                    s[2].clone(),
                    s[3].clone(),
                    Value::Decimal(*rev),
                ]
            })
        })
        .collect();
    out.sort_by(|a, b| a[0].cmp_total(&b[0]));
    Ok(out)
}

// --- Q16: parts/supplier relationship --------------------------------------------

pub fn q16(db: &TaurusDb, pq: Option<usize>) -> Result<Vec<Row>> {
    run_plan(&q16_plan(db, pq)?, db)
}

/// The optimized plan q16 executes.
pub fn q16_plan(db: &TaurusDb, _pq: Option<usize>) -> Result<Plan> {
    let part = Plan::Scan(ScanNode::new("part", vec![0, 3, 4, 5]).with_predicate(vec![
        Expr::ne(Expr::col(3), Expr::str("Brand#45")),
        Expr::not_like(Expr::col(4), "MEDIUM POLISHED%"),
        Expr::in_list(
            Expr::col(5),
            [49, 14, 23, 45, 19, 3, 36, 9].iter().map(|&v| Value::Int(v)).collect(),
        ),
    ]));
    let ps = Plan::Scan(ScanNode::new("partsupp", vec![0, 1]));
    // [p_pk0, brand1, type2, size3, ps_pk4, ps_sk5]
    let j = hash_join(part, ps, vec![0], vec![0], JoinType::Inner);
    // Anti-join suppliers with complaints.
    let bad_supp = Plan::Scan(
        ScanNode::new("supplier", vec![0, 6])
            .with_predicate(vec![Expr::like(Expr::col(6), "%Customer%Complaints%")]),
    );
    let clean = hash_join(j, bad_supp, vec![5], vec![0], JoinType::Anti);
    // COUNT(DISTINCT ps_suppkey): dedup via a first grouping level.
    let dedup = hash_agg(
        clean,
        vec![Expr::col(1), Expr::col(2), Expr::col(3), Expr::col(5)],
        vec![count_star()],
    );
    let g = hash_agg(
        dedup,
        vec![Expr::col(0), Expr::col(1), Expr::col(2)],
        vec![count_star()],
    );
    optimized(
        g.sort(vec![(3, true), (0, false), (1, false), (2, false)]),
        db,
    )
}

// --- Q17: small-quantity-order revenue --------------------------------------------

/// The optimized main-stage plan q17 executes (part→lineitem lookups;
/// the correlated-average filter runs in memory on its output).
pub fn q17_plan(db: &TaurusDb, _pq: Option<usize>) -> Result<Plan> {
    let part = ScanNode::new("part", vec![0, 3, 6]).with_predicate(vec![
        Expr::eq(Expr::col(3), Expr::str("Brand#23")),
        Expr::eq(Expr::col(6), Expr::str("MED BOX")),
    ]);
    // Lookup lineitem per part (secondary index on l_partkey):
    // [p_pk0, brand1, cont2, l_qty3, l_ep4]
    let j = Plan::LookupJoin(LookupJoinNode {
        outer: Box::new(Plan::Scan(part)),
        table: "lineitem".into(),
        index: idx::L_PARTKEY,
        outer_key_cols: vec![0],
        on: None,
        inner_output: vec![4, 5],
        join: JoinType::Inner,
        inner_predicate: vec![],
    });
    optimized(j, db)
}

pub fn q17(db: &TaurusDb, pq: Option<usize>) -> Result<Vec<Row>> {
    let rows = run_plan(&q17_plan(db, pq)?, db)?;
    // Correlated avg: qty < 0.2 * avg(qty) per part.
    let mut sums: HashMap<i64, (f64, u64)> = HashMap::new();
    for r in &rows {
        let e = sums.entry(r[0].as_int()?).or_insert((0.0, 0));
        e.0 += r[3].as_dec()?.to_f64();
        e.1 += 1;
    }
    let mut total = 0.0f64;
    for r in &rows {
        let (s, n) = sums[&r[0].as_int()?];
        let avg_q = s / n as f64;
        if r[3].as_dec()?.to_f64() < 0.2 * avg_q {
            total += r[4].as_dec()?.to_f64();
        }
    }
    Ok(vec![vec![Value::Double(total / 7.0)]])
}

// --- Q18: large volume customers ----------------------------------------------------

pub fn q18(db: &TaurusDb, pq: Option<usize>) -> Result<Vec<Row>> {
    run_plan(&q18_plan(db, pq)?, db)
}

/// The optimized plan q18 executes.
pub fn q18_plan(db: &TaurusDb, _pq: Option<usize>) -> Result<Plan> {
    let big = hash_agg(
        Plan::Scan(ScanNode::new("lineitem", vec![0, 4])),
        vec![Expr::col(0)],
        vec![sum(Expr::col(1))],
    )
    .filter(Expr::gt(Expr::col(1), Expr::int(300)));
    // + [o_ok2, o_ck3, o_tp4, o_od5]
    let orders = Plan::Scan(ScanNode::new("orders", vec![0, 1, 3, 4]));
    let j1 = hash_join(big, orders, vec![0], vec![0], JoinType::Inner);
    // + [c_ck6, c_name7]
    let customer = Plan::Scan(ScanNode::new("customer", vec![0, 1]));
    let j2 = hash_join(j1, customer, vec![3], vec![0], JoinType::Inner);
    // Output: c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice, sum(qty).
    let p = j2.project(vec![
        Expr::col(7),
        Expr::col(6),
        Expr::col(2),
        Expr::col(5),
        Expr::col(4),
        Expr::col(1),
    ]);
    optimized(p.top_n(vec![(4, true), (3, false)], 100), db)
}

// --- Q19: discounted revenue ---------------------------------------------------------

pub fn q19(db: &TaurusDb, pq: Option<usize>) -> Result<Vec<Row>> {
    run_plan(&q19_plan(db, pq)?, db)
}

/// The optimized plan q19 executes.
pub fn q19_plan(db: &TaurusDb, pq: Option<usize>) -> Result<Plan> {
    let sm_containers: Vec<Value> = ["SM CASE", "SM BOX", "SM PACK", "SM PKG"]
        .iter()
        .map(|s| Value::str(*s))
        .collect();
    let med_containers: Vec<Value> = ["MED BAG", "MED BOX", "MED PKG", "MED PACK"]
        .iter()
        .map(|s| Value::str(*s))
        .collect();
    let lg_containers: Vec<Value> = ["LG CASE", "LG BOX", "LG PACK", "LG PKG"]
        .iter()
        .map(|s| Value::str(*s))
        .collect();
    // Part-side union of the three branches.
    let part_pred = Expr::or(vec![
        Expr::and(vec![
            Expr::eq(Expr::col(3), Expr::str("Brand#12")),
            Expr::in_list(Expr::col(6), sm_containers.clone()),
            Expr::between(Expr::col(5), Expr::int(1), Expr::int(5)),
        ]),
        Expr::and(vec![
            Expr::eq(Expr::col(3), Expr::str("Brand#23")),
            Expr::in_list(Expr::col(6), med_containers.clone()),
            Expr::between(Expr::col(5), Expr::int(1), Expr::int(10)),
        ]),
        Expr::and(vec![
            Expr::eq(Expr::col(3), Expr::str("Brand#34")),
            Expr::in_list(Expr::col(6), lg_containers.clone()),
            Expr::between(Expr::col(5), Expr::int(1), Expr::int(15)),
        ]),
    ]);
    // Outer part scan: [p_pk0, brand1, size2, cont3] (paper: NL join with
    // lineitem inner via the l_partkey index, ~28 rows per part).
    let part = ScanNode::new("part", vec![0, 3, 5, 6]).with_predicate(vec![part_pred]);
    // Combined row: + [l_qty4, l_ep5, l_disc6, l_si7, l_sm8]
    let on = Expr::or(vec![
        Expr::and(vec![
            Expr::eq(Expr::col(1), Expr::str("Brand#12")),
            Expr::in_list(Expr::col(3), sm_containers),
            Expr::between(Expr::col(4), Expr::int(1), Expr::int(11)),
        ]),
        Expr::and(vec![
            Expr::eq(Expr::col(1), Expr::str("Brand#23")),
            Expr::in_list(Expr::col(3), med_containers),
            Expr::between(Expr::col(4), Expr::int(10), Expr::int(20)),
        ]),
        Expr::and(vec![
            Expr::eq(Expr::col(1), Expr::str("Brand#34")),
            Expr::in_list(Expr::col(3), lg_containers),
            Expr::between(Expr::col(4), Expr::int(20), Expr::int(30)),
        ]),
    ]);
    let j = Plan::LookupJoin(LookupJoinNode {
        outer: Box::new(Plan::Scan(part)),
        table: "lineitem".into(),
        index: idx::L_PARTKEY,
        outer_key_cols: vec![0],
        on: Some(on),
        inner_output: vec![4, 5, 6, 13, 14],
        join: JoinType::Inner,
        inner_predicate: vec![
            Expr::eq(Expr::col(13), Expr::str("DELIVER IN PERSON")),
            Expr::in_list(
                Expr::col(14),
                vec![Value::str("AIR"), Value::str("AIR REG")],
            ),
        ],
    });
    let j = match pq {
        Some(d) => j.exchange(d),
        None => j,
    };
    let g = hash_agg(j, vec![], vec![sum(volume(5, 6))]);
    optimized(g, db)
}

// --- Q20: potential part promotion -----------------------------------------------------

/// The optimized main-stage plan q20 executes (Canadian suppliers; the
/// forest-part / half-quantity stages feed the in-memory filter above
/// this plan's output).
pub fn q20_plan(db: &TaurusDb, _pq: Option<usize>) -> Result<Plan> {
    optimized(
        hash_join(
            Plan::Scan(ScanNode::new("supplier", vec![0, 1, 2, 3])),
            Plan::Scan(
                ScanNode::new("nation", vec![0, 1])
                    .with_predicate(vec![Expr::eq(Expr::col(1), Expr::str("CANADA"))]),
            ),
            vec![3],
            vec![0],
            JoinType::Inner,
        ),
        db,
    )
}

pub fn q20(db: &TaurusDb, _pq: Option<usize>) -> Result<Vec<Row>> {
    // Forest parts.
    let parts = finish(
        Plan::Scan(
            ScanNode::new("part", vec![0, 1])
                .with_predicate(vec![Expr::like(Expr::col(1), "forest%")]),
        ),
        db,
    )?;
    let forest: std::collections::HashSet<i64> =
        parts.iter().map(|r| r[0].as_int().unwrap()).collect();
    // Half of 1994's shipped quantity per (part, supp).
    let qty = finish(
        hash_agg(
            Plan::Scan(
                ScanNode::new("lineitem", vec![1, 2, 4, 10]).with_predicate(vec![
                    Expr::ge(Expr::col(10), Expr::date("1994-01-01")),
                    Expr::lt(Expr::col(10), Expr::date("1995-01-01")),
                ]),
            ),
            vec![Expr::col(0), Expr::col(1)],
            vec![sum(Expr::col(2))],
        ),
        db,
    )?;
    let half_qty: HashMap<(i64, i64), f64> = qty
        .iter()
        .map(|r| {
            (
                (r[0].as_int().unwrap(), r[1].as_int().unwrap()),
                r[2].as_dec().unwrap().to_f64() * 0.5,
            )
        })
        .collect();
    // Partsupp availability.
    let ps = finish(Plan::Scan(ScanNode::new("partsupp", vec![0, 1, 2])), db)?;
    let mut good_suppliers: std::collections::HashSet<i64> = Default::default();
    for r in &ps {
        let pk = r[0].as_int()?;
        let sk = r[1].as_int()?;
        if !forest.contains(&pk) {
            continue;
        }
        let avail = r[2].as_int()? as f64;
        if let Some(&h) = half_qty.get(&(pk, sk)) {
            if avail > h {
                good_suppliers.insert(sk);
            }
        }
    }
    // Canadian suppliers among them.
    let sn = run_plan(&q20_plan(db, _pq)?, db)?;
    let mut out: Vec<Row> = sn
        .into_iter()
        .filter(|r| good_suppliers.contains(&r[0].as_int().unwrap()))
        .map(|r| vec![r[1].clone(), r[2].clone()])
        .collect();
    out.sort_by(|a, b| a[0].cmp_total(&b[0]));
    Ok(out)
}

// --- Q21: suppliers who kept orders waiting ----------------------------------------------

pub fn q21(db: &TaurusDb, pq: Option<usize>) -> Result<Vec<Row>> {
    run_plan(&q21_plan(db, pq)?, db)
}

/// The optimized plan q21 executes.
pub fn q21_plan(db: &TaurusDb, _pq: Option<usize>) -> Result<Plan> {
    // l1: late lines. [l_ok0, l_sk1, l_cd2, l_rd3]
    let l1 = Plan::Scan(
        ScanNode::new("lineitem", vec![0, 2, 11, 12])
            .with_predicate(vec![Expr::gt(Expr::col(12), Expr::col(11))]),
    );
    // + [o_ok4, o_os5] (status F).
    let orders = Plan::Scan(
        ScanNode::new("orders", vec![0, 2])
            .with_predicate(vec![Expr::eq(Expr::col(2), Expr::str("F"))]),
    );
    let j1 = hash_join(l1, orders, vec![0], vec![0], JoinType::Inner);
    // + [s_sk6, s_name7, s_nk8]
    let s = Plan::Scan(ScanNode::new("supplier", vec![0, 1, 3]));
    let j2 = hash_join(j1, s, vec![1], vec![0], JoinType::Inner);
    // + [n_nk9, n_name10] (SAUDI ARABIA).
    let n = Plan::Scan(
        ScanNode::new("nation", vec![0, 1])
            .with_predicate(vec![Expr::eq(Expr::col(1), Expr::str("SAUDI ARABIA"))]),
    );
    let j3 = hash_join(j2, n, vec![8], vec![0], JoinType::Inner);
    // EXISTS l2: another supplier in the same order.
    let semi = Plan::LookupJoin(LookupJoinNode {
        outer: Box::new(j3),
        table: "lineitem".into(),
        index: 0,
        outer_key_cols: vec![0],
        // combined: outer(11 cols) ++ [l2_sk at 11]
        on: Some(Expr::ne(Expr::col(11), Expr::col(1))),
        inner_output: vec![2],
        join: JoinType::Semi,
        inner_predicate: vec![],
    });
    // NOT EXISTS l3: another supplier late in the same order.
    let anti = Plan::LookupJoin(LookupJoinNode {
        outer: Box::new(semi),
        table: "lineitem".into(),
        index: 0,
        outer_key_cols: vec![0],
        on: Some(Expr::ne(Expr::col(11), Expr::col(1))),
        inner_output: vec![2],
        join: JoinType::Anti,
        inner_predicate: vec![Expr::gt(Expr::col(12), Expr::col(11))],
    });
    let g = hash_agg(anti, vec![Expr::col(7)], vec![count_star()]);
    optimized(g.top_n(vec![(1, true), (0, false)], 100), db)
}

// --- Q22: global sales opportunity ---------------------------------------------------------

pub fn q22(db: &TaurusDb, pq: Option<usize>) -> Result<Vec<Row>> {
    run_plan(&q22_plan(db, pq)?, db)
}

/// The optimized main-stage plan q22 executes. Phase 1 (the scalar
/// average-balance subquery) runs eagerly here — its result is a literal
/// inside the returned phase-2 plan, exactly how MySQL executes the
/// uncorrelated scalar subquery once.
pub fn q22_plan(db: &TaurusDb, _pq: Option<usize>) -> Result<Plan> {
    let codes: Vec<Value> = ["13", "31", "23", "29", "30", "18", "17"]
        .iter()
        .map(|s| Value::str(*s))
        .collect();
    let cntry = |col: usize| Expr::Substr {
        expr: Box::new(Expr::col(col)),
        from: 1,
        len: 2,
    };
    // Phase 1: average positive balance among the country codes.
    let avg_bal = finish(
        hash_agg(
            Plan::Scan(ScanNode::new("customer", vec![4, 5]).with_predicate(vec![
                Expr::gt(Expr::col(5), Expr::dec("0.00")),
                Expr::in_list(cntry(4), codes.clone()),
            ])),
            vec![],
            vec![avg(Expr::col(1))],
        ),
        db,
    )?;
    let threshold = avg_bal[0][0].clone();
    // Phase 2: rich customers with no orders.
    let rich = Plan::Scan(
        ScanNode::new("customer", vec![0, 4, 5]).with_predicate(vec![
            Expr::in_list(cntry(4), codes),
            Expr::gt(Expr::col(5), Expr::lit(threshold)),
        ]),
    );
    let anti = Plan::LookupJoin(LookupJoinNode {
        outer: Box::new(rich),
        table: "orders".into(),
        index: idx::O_CUSTKEY,
        outer_key_cols: vec![0],
        on: None,
        inner_output: vec![],
        join: JoinType::Anti,
        inner_predicate: vec![],
    });
    let p = anti.project(vec![cntry(1), Expr::col(2)]);
    let g = hash_agg(p, vec![Expr::col(0)], vec![count_star(), sum(Expr::col(1))]);
    optimized(g.sort(vec![(0, false)]), db)
}

// --- §VII-A micro-benchmark (Listing 5) -------------------------------------------------

/// Q0: `SELECT COUNT(*) FROM lineitem` — full NDP aggregation pushdown.
pub fn q0(db: &TaurusDb, pq: Option<usize>) -> Result<Vec<Row>> {
    run_plan(&q0_plan(db, pq)?, db)
}

/// The optimized plan q0 executes.
pub fn q0_plan(db: &TaurusDb, pq: Option<usize>) -> Result<Plan> {
    let plan = Plan::AggScan(AggScanNode {
        scan: ScanNode::new("lineitem", vec![0]),
        group_cols: vec![],
        aggs: vec![count_star()],
    });
    let plan = match pq {
        Some(d) => plan.exchange(d),
        None => plan,
    };
    optimized(plan, db)
}

/// Q001: COUNT(*) with a shipdate filter — table (primary) scan.
pub fn q001(db: &TaurusDb, pq: Option<usize>) -> Result<Vec<Row>> {
    run_plan(&q001_plan(db, pq)?, db)
}

/// The optimized plan q001 executes.
pub fn q001_plan(db: &TaurusDb, pq: Option<usize>) -> Result<Plan> {
    let plan = Plan::AggScan(AggScanNode {
        scan: ScanNode::new("lineitem", vec![10])
            .with_predicate(vec![Expr::lt(Expr::col(10), Expr::date("1998-07-01"))]),
        group_cols: vec![],
        aggs: vec![count_star()],
    });
    let plan = match pq {
        Some(d) => plan.exchange(d),
        None => plan,
    };
    optimized(plan, db)
}

/// Q002: COUNT(*) over a suppkey range — secondary index scan.
pub fn q002(db: &TaurusDb, pq: Option<usize>) -> Result<Vec<Row>> {
    run_plan(&q002_plan(db, pq)?, db)
}

/// The optimized plan q002 executes.
pub fn q002_plan(db: &TaurusDb, pq: Option<usize>) -> Result<Plan> {
    let n_supp = db.table("supplier")?.stats.read().row_count.max(2) as i64;
    let k = n_supp / 2;
    let plan = Plan::AggScan(AggScanNode {
        scan: ScanNode::new("lineitem", vec![2])
            .with_index(idx::L_SUPPKEY)
            .with_range(RangeSpec {
                lower: None,
                upper: Some((vec![Value::Int(k)], true)),
            })
            .with_predicate(vec![Expr::le(Expr::col(2), Expr::int(k))]),
        group_cols: vec![],
        aggs: vec![count_star()],
    });
    let plan = match pq {
        Some(d) => plan.exchange(d),
        None => plan,
    };
    optimized(plan, db)
}

// --- registry ----------------------------------------------------------------------------

/// A registered query: name, runner, and whether the optimizer produces a
/// parallel plan for it (§VII-E: seven queries benefit from PQ).
pub struct Query {
    pub name: &'static str,
    pub run: fn(&TaurusDb, Option<usize>) -> Result<Vec<Row>>,
    /// The query's optimized **main-stage** plan. For single-plan queries
    /// (most of the suite) `run` is exactly a collect over this plan; the
    /// multi-phase queries (Q11, Q15, Q17, Q20, Q22) post-process its
    /// output (or, for Q22, bake an eagerly-computed scalar subquery into
    /// it). Stream-vs-collect parity tests run this plan through both
    /// executor terminals.
    pub plan: fn(&TaurusDb, Option<usize>) -> Result<Plan>,
    pub pq_capable: bool,
}

/// The 22 TPC-H queries.
pub fn tpch_queries() -> Vec<Query> {
    use crate::queries1::*;
    vec![
        Query {
            name: "Q1",
            run: q1,
            plan: q1_plan,
            pq_capable: true,
        },
        Query {
            name: "Q2",
            run: q2,
            plan: q2_plan,
            pq_capable: false,
        },
        Query {
            name: "Q3",
            run: q3,
            plan: q3_plan,
            pq_capable: false,
        },
        Query {
            name: "Q4",
            run: q4,
            plan: q4_plan,
            pq_capable: true,
        },
        Query {
            name: "Q5",
            run: q5,
            plan: q5_plan,
            pq_capable: true,
        },
        Query {
            name: "Q6",
            run: q6,
            plan: q6_plan,
            pq_capable: true,
        },
        Query {
            name: "Q7",
            run: q7,
            plan: q7_plan,
            pq_capable: false,
        },
        Query {
            name: "Q8",
            run: q8,
            plan: q8_plan,
            pq_capable: false,
        },
        Query {
            name: "Q9",
            run: q9,
            plan: q9_plan,
            pq_capable: false,
        },
        Query {
            name: "Q10",
            run: q10,
            plan: q10_plan,
            pq_capable: false,
        },
        Query {
            name: "Q11",
            run: q11,
            plan: q11_plan,
            pq_capable: false,
        },
        Query {
            name: "Q12",
            run: q12,
            plan: q12_plan,
            pq_capable: false,
        },
        Query {
            name: "Q13",
            run: q13,
            plan: q13_plan,
            pq_capable: false,
        },
        Query {
            name: "Q14",
            run: q14,
            plan: q14_plan,
            pq_capable: true,
        },
        Query {
            name: "Q15",
            run: q15,
            plan: q15_plan,
            pq_capable: true,
        },
        Query {
            name: "Q16",
            run: q16,
            plan: q16_plan,
            pq_capable: false,
        },
        Query {
            name: "Q17",
            run: q17,
            plan: q17_plan,
            pq_capable: false,
        },
        Query {
            name: "Q18",
            run: q18,
            plan: q18_plan,
            pq_capable: false,
        },
        Query {
            name: "Q19",
            run: q19,
            plan: q19_plan,
            pq_capable: true,
        },
        Query {
            name: "Q20",
            run: q20,
            plan: q20_plan,
            pq_capable: false,
        },
        Query {
            name: "Q21",
            run: q21,
            plan: q21_plan,
            pq_capable: false,
        },
        Query {
            name: "Q22",
            run: q22,
            plan: q22_plan,
            pq_capable: false,
        },
    ]
}

/// The §VII-A micro-benchmark queries (Listing 5 + Q1 + Q6).
pub fn micro_queries() -> Vec<Query> {
    use crate::queries1::{q1, q1_plan, q6, q6_plan};
    vec![
        Query {
            name: "Q0",
            run: q0,
            plan: q0_plan,
            pq_capable: true,
        },
        Query {
            name: "Q001",
            run: q001,
            plan: q001_plan,
            pq_capable: true,
        },
        Query {
            name: "Q002",
            run: q002,
            plan: q002_plan,
            pq_capable: true,
        },
        Query {
            name: "Q1",
            run: q1,
            plan: q1_plan,
            pq_capable: true,
        },
        Query {
            name: "Q6",
            run: q6,
            plan: q6_plan,
            pq_capable: true,
        },
    ]
}
