//! The simulated compute↔storage network.
//!
//! All bytes crossing the SAL boundary are metered here — this is the
//! single source of truth for the paper's "network traffic" axis (Fig. 5,
//! Fig. 7). Optionally a shared bandwidth limiter models the 25 Gbps NIC
//! of §VII-A: transfers share a common medium, so a 32-way parallel raw
//! scan becomes I/O-bound exactly like the paper's "must each transfer
//! about 950 GB … and bottleneck on I/O".

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use taurus_common::{Metrics, NetworkConfig};

/// Transfer direction, for metering.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    ToStorage,
    FromStorage,
}

/// Shared-medium rate limiter modelling the NIC as a processor-sharing
/// queue: every in-flight transfer gets an equal share of the wire, so a
/// transfer's duration is `bytes / (rate / n)` with `n` the number of
/// concurrent transfers when it starts. A switched full-duplex NIC
/// interleaves flows at packet granularity — a FIFO reservation queue
/// (the previous model) would park a tenant's 4 KB result frame behind
/// megabytes of another tenant's bulk pages, and that head-of-line
/// artifact, not real contention, would defeat the admission-control
/// isolation of §IV-D2.
struct RateLimiter {
    bytes_per_sec: u64,
    in_flight: AtomicU64,
}

impl RateLimiter {
    fn acquire(&self, bytes: u64) {
        let n = self.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
        let dur = Duration::from_secs_f64(bytes as f64 * n as f64 / self.bytes_per_sec as f64);
        std::thread::sleep(dur);
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The metered (and optionally rate-limited) network.
pub struct Network {
    limiter: Option<RateLimiter>,
    latency: Duration,
    metrics: Arc<Metrics>,
}

impl Network {
    pub fn new(cfg: &NetworkConfig, metrics: Arc<Metrics>) -> Arc<Network> {
        Arc::new(Network {
            limiter: cfg.bandwidth_bytes_per_sec.map(|b| RateLimiter {
                bytes_per_sec: b.max(1),
                in_flight: AtomicU64::new(0),
            }),
            latency: Duration::from_micros(cfg.latency_us),
            metrics,
        })
    }

    /// Account (and, if configured, pace) one transfer.
    pub fn transfer(&self, direction: Direction, bytes: u64) {
        match direction {
            Direction::ToStorage => self.metrics.add(|m| &m.net_bytes_to_storage, bytes),
            Direction::FromStorage => self.metrics.add(|m| &m.net_bytes_from_storage, bytes),
        }
        if !self.latency.is_zero() {
            std::thread::sleep(self.latency);
        }
        if let Some(l) = &self.limiter {
            l.acquire(bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn metering_without_limiter_is_instant() {
        let m = Metrics::shared();
        let net = Network::new(&NetworkConfig::default(), m.clone());
        net.transfer(Direction::FromStorage, 1000);
        net.transfer(Direction::ToStorage, 10);
        let s = m.snapshot();
        assert_eq!(s.net_bytes_from_storage, 1000);
        assert_eq!(s.net_bytes_to_storage, 10);
    }

    #[test]
    fn limiter_paces_transfers() {
        let m = Metrics::shared();
        let cfg = NetworkConfig {
            bandwidth_bytes_per_sec: Some(1_000_000),
            latency_us: 0,
        };
        let net = Network::new(&cfg, m);
        let t0 = Instant::now();
        // 200 KB at 1 MB/s ≈ 200 ms.
        net.transfer(Direction::FromStorage, 200_000);
        let dt = t0.elapsed();
        assert!(
            dt >= Duration::from_millis(150),
            "transfer finished too fast: {dt:?}"
        );
    }

    #[test]
    fn limiter_is_shared_across_threads() {
        let m = Metrics::shared();
        let cfg = NetworkConfig {
            bandwidth_bytes_per_sec: Some(1_000_000),
            latency_us: 0,
        };
        let net = Network::new(&cfg, m);
        let t0 = Instant::now();
        // 4 threads × 50 KB = 200 KB over a shared 1 MB/s wire ≈ 200 ms,
        // NOT 50 ms (the medium is shared, not per-thread).
        crossbeam::thread::scope(|s| {
            for _ in 0..4 {
                let net = &net;
                s.spawn(move |_| net.transfer(Direction::FromStorage, 50_000));
            }
        })
        .unwrap();
        let dt = t0.elapsed();
        assert!(
            dt >= Duration::from_millis(150),
            "shared medium not enforced: {dt:?}"
        );
    }

    #[test]
    fn small_transfer_is_not_blocked_behind_bulk_stream() {
        // Processor sharing, not FIFO reservations: while a 500 KB bulk
        // transfer occupies the 1 MB/s wire (≥500 ms), a concurrent 1 KB
        // transfer must complete in milliseconds (its fair share), not
        // wait for the bulk reservation to drain.
        let m = Metrics::shared();
        let cfg = NetworkConfig {
            bandwidth_bytes_per_sec: Some(1_000_000),
            latency_us: 0,
        };
        let net = Network::new(&cfg, m);
        crossbeam::thread::scope(|s| {
            s.spawn(|_| net.transfer(Direction::FromStorage, 500_000));
            // Let the bulk transfer start first.
            std::thread::sleep(Duration::from_millis(50));
            let t0 = Instant::now();
            net.transfer(Direction::FromStorage, 1_000);
            let dt = t0.elapsed();
            assert!(
                dt < Duration::from_millis(100),
                "small transfer head-of-line blocked behind bulk stream: {dt:?}"
            );
        })
        .unwrap();
    }
}
