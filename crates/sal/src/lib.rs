//! The Storage Abstraction Layer (§II).
//!
//! The SAL runs on the database server and "isolates the database frontend
//! from the underlying complexity of remote storage": it writes log records
//! to Log Stores (in triplicate), distributes them to the Page Stores
//! hosting the affected slices, routes page reads, and — for NDP — "splits
//! a batch read into multiple sub-batches, based on where the pages are
//! located … and concurrently sends the sub-batches to Page Stores, with
//! the effect that multiple Page Stores are engaged in parallel" (§VI-2).
//!
//! Every byte crossing this layer is metered by [`network::Network`].

pub mod network;

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;
use taurus_common::govern::backoff_delay;
use taurus_common::{
    ClusterConfig, Error, Lsn, Metrics, PageNo, PageRef, QueryCtx, Result, SliceId, SpaceId,
};
use taurus_logstore::LogStore;
use taurus_page::Page;
use taurus_pagestore::{
    FaultPolicy, NdpBatchRequest, PagePayload, PageResult, PageStore, PageStoreConfig, RedoRecord,
    SkipPolicy,
};

pub use network::{Direction, Network};

/// Fixed per-request framing overhead we charge on the wire (headers,
/// page ids, LSN), so "bytes" stay honest without a real RPC layer.
const REQ_HEADER_BYTES: u64 = 32;
const PER_PAGE_ID_BYTES: u64 = 8;
const PER_PAGE_RESULT_HEADER: u64 = 16;

/// The Storage Abstraction Layer: slice placement, log fan-out, page-read
/// routing, batch splitting.
pub struct Sal {
    cfg: ClusterConfig,
    page_stores: Vec<Arc<PageStore>>,
    log_stores: Vec<Arc<LogStore>>,
    /// Shared with read-only attachments (replicas see master placements).
    placement: Arc<RwLock<HashMap<SliceId, Vec<usize>>>>,
    /// Shared with read-only attachments (replicas compute lag against
    /// the master's LSN cursor).
    next_lsn: Arc<AtomicU64>,
    network: Arc<Network>,
    metrics: Arc<Metrics>,
    rr_counter: AtomicU64,
    /// Rotates the starting replica of batch-read sub-dispatches so read
    /// load spreads across a slice's replicas instead of pinning
    /// `replicas[0]`.
    read_rr: AtomicU64,
    /// Read-only attachment (replica compute node): `write_log` is
    /// refused; everything else — page reads, batch reads, log reads —
    /// works against the same shared storage services.
    read_only: bool,
}

impl Sal {
    /// Bring up a full storage cluster (Page Stores + Log Stores) per the
    /// configuration.
    pub fn new(cfg: ClusterConfig, metrics: Arc<Metrics>) -> Arc<Sal> {
        let ps_cfg = PageStoreConfig {
            versions_retained: cfg.pagestore_versions_retained,
            ndp_threads: cfg.pagestore_ndp_threads,
            ndp_queue: cfg.pagestore_ndp_queue,
            ndp_service_us: cfg.pagestore_ndp_service_us,
            descriptor_cache: cfg.ndp.descriptor_cache,
            slice_pages: cfg.slice_pages,
        };
        let page_stores: Vec<Arc<PageStore>> = (0..cfg.n_page_stores)
            .map(|i| PageStore::new(i, ps_cfg.clone(), metrics.clone()))
            .collect();
        // Governance + fault injection from config/env (`TAURUS_NDP_*`,
        // `TAURUS_FAULT_*`) applies only to stores the SAL builds —
        // directly-constructed stores (unit tests) are never faulted.
        for ps in &page_stores {
            if cfg.govern.ndp_tenant_quota > 0 {
                ps.set_ndp_tenant_quota(cfg.govern.ndp_tenant_quota);
            }
            if cfg.govern.ndp_force_shed {
                ps.set_force_shed(true);
            }
            if cfg.fault.skip_every_nth > 0 {
                ps.set_skip_policy(SkipPolicy::EveryNth(cfg.fault.skip_every_nth));
            }
        }
        if let Some(idx) = cfg.fault.store {
            if let Some(ps) = page_stores.get(idx) {
                let fault = if cfg.fault.latency_ms > 0 {
                    FaultPolicy::Latency(Duration::from_millis(cfg.fault.latency_ms))
                } else if cfg.fault.error_rate > 0 {
                    FaultPolicy::ErrorRate(cfg.fault.error_rate)
                } else if cfg.fault.until_lsn > 0 {
                    FaultPolicy::ErrorUntilLsn(cfg.fault.until_lsn)
                } else {
                    FaultPolicy::None
                };
                ps.set_fault(fault);
            }
        }
        let log_stores = (0..cfg.n_log_stores)
            .map(|i| Arc::new(LogStore::new(i)))
            .collect();
        let network = Network::new(&cfg.network, metrics.clone());
        Arc::new(Sal {
            cfg,
            page_stores,
            log_stores,
            placement: Arc::new(RwLock::new(HashMap::new())),
            next_lsn: Arc::new(AtomicU64::new(1)),
            network,
            metrics,
            rr_counter: AtomicU64::new(0),
            read_rr: AtomicU64::new(0),
            read_only: false,
        })
    }

    /// Attach a read-only compute node (a read replica, §II) to this
    /// cluster's storage services: the attachment shares the Page Stores,
    /// Log Stores, slice placements and the master's LSN cursor — no page
    /// data is copied — but gets its own [`Network`] metered into
    /// `metrics` (per-node traffic accounting) and refuses `write_log`.
    pub fn attach_read_only(self: &Arc<Self>, metrics: Arc<Metrics>) -> Arc<Sal> {
        Arc::new(Sal {
            cfg: self.cfg.clone(),
            page_stores: self.page_stores.clone(),
            log_stores: self.log_stores.clone(),
            placement: self.placement.clone(),
            next_lsn: self.next_lsn.clone(),
            network: Network::new(&self.cfg.network, metrics.clone()),
            metrics,
            rr_counter: AtomicU64::new(0),
            read_rr: AtomicU64::new(0),
            read_only: true,
        })
    }

    pub fn is_read_only(&self) -> bool {
        self.read_only
    }

    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    pub fn page_stores(&self) -> &[Arc<PageStore>] {
        &self.page_stores
    }

    pub fn log_stores(&self) -> &[Arc<LogStore>] {
        &self.log_stores
    }

    /// The newest allocated LSN (all redo up to here has been applied —
    /// this simulation applies synchronously on the write path).
    pub fn current_lsn(&self) -> Lsn {
        self.next_lsn.load(Ordering::SeqCst).saturating_sub(1)
    }

    fn slice_of(&self, space: SpaceId, page_no: PageNo) -> SliceId {
        SliceId::of(space, page_no, self.cfg.slice_pages)
    }

    /// Ensure a slice exists, choosing replicas round-robin across Page
    /// Stores (the multi-tenant placement of §II).
    pub fn ensure_slice(&self, slice: SliceId) -> Vec<usize> {
        if let Some(r) = self.placement.read().get(&slice) {
            return r.clone();
        }
        let mut w = self.placement.write();
        if let Some(r) = w.get(&slice) {
            return r.clone();
        }
        let n = self.page_stores.len();
        let k = self.cfg.effective_replication();
        let start = (self.rr_counter.fetch_add(1, Ordering::Relaxed) as usize) % n;
        let replicas: Vec<usize> = (0..k).map(|i| (start + i) % n).collect();
        for &r in &replicas {
            self.page_stores[r].create_slice(slice);
        }
        w.insert(slice, replicas.clone());
        replicas
    }

    /// Replica placement of a slice (first = preferred replica for
    /// single-page reads), if it has one.
    pub fn replicas_of(&self, slice: SliceId) -> Option<Vec<usize>> {
        self.placement.read().get(&slice).cloned()
    }

    fn replicas_for(&self, slice: SliceId) -> Result<Vec<usize>> {
        self.placement
            .read()
            .get(&slice)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("slice {slice:?} has no placement")))
    }

    /// Write path (§II): assign LSNs, append to all Log Stores (triplicate
    /// durability), then distribute records to the Page Store replicas of
    /// each affected slice and apply. System records (`RedoBody::Sys*`)
    /// are durably logged but never distributed — they exist *for* the
    /// log, which is the only channel read replicas tail.
    ///
    /// The triplicate appends dispatch concurrently (one thread per Log
    /// Store, the PR-4 sub-batch pattern): commit latency pays the
    /// *slowest* replica once, not all three in sequence. The flush wall
    /// time lands in `log_flush_ns`/`log_flushes`.
    pub fn write_log(&self, mut records: Vec<RedoRecord>) -> Result<Lsn> {
        if self.read_only {
            return Err(Error::InvalidState(
                "write_log on a read-only SAL attachment (replicas never write)".into(),
            ));
        }
        if records.is_empty() {
            return Ok(self.current_lsn());
        }
        let n = records.len() as u64;
        let base = self.next_lsn.fetch_add(n, Ordering::SeqCst);
        for (i, r) in records.iter_mut().enumerate() {
            r.lsn = base + i as u64;
        }
        let batch = RedoRecord::encode_batch(&records);
        let last = base + n - 1;
        let t0 = std::time::Instant::now();
        let append_one = |ls: &LogStore| {
            self.network
                .transfer(Direction::ToStorage, batch.len() as u64);
            ls.append(&batch, base, last);
            self.metrics
                .add(|m| &m.log_bytes_appended, batch.len() as u64);
            // Durability ack.
            self.network.transfer(Direction::FromStorage, 16);
        };
        // Concurrent dispatch exists to overlap *wire* time — when the
        // network model paces transfers, commit latency pays the slowest
        // replica once instead of all three in sequence. With no wire
        // model an append is a nanosecond-scale memory write and thread
        // spawns would dominate the DML hot path, so append serially.
        let paced =
            self.cfg.network.latency_us > 0 || self.cfg.network.bandwidth_bytes_per_sec.is_some();
        if paced && self.log_stores.len() > 1 {
            std::thread::scope(|s| {
                // n-1 dispatch threads; the caller serves the last store
                // itself instead of idling.
                let (inline, rest) = self
                    .log_stores
                    .split_last()
                    // lint:allow(panic): a cluster is constructed with >= 1 log store
                    .expect("clusters have log stores");
                for ls in rest {
                    s.spawn(|| append_one(ls));
                }
                append_one(inline);
            });
        } else {
            for ls in &self.log_stores {
                append_one(ls);
            }
        }
        self.metrics
            .add(|m| &m.log_flush_ns, t0.elapsed().as_nanos() as u64);
        self.metrics.add(|m| &m.log_flushes, 1);
        // Distribute to Page Stores by slice.
        let mut by_slice: HashMap<SliceId, Vec<RedoRecord>> = HashMap::new();
        for r in records {
            if r.body.is_system() {
                continue;
            }
            by_slice
                .entry(r.slice(self.cfg.slice_pages))
                .or_default()
                .push(r);
        }
        for (slice, recs) in by_slice {
            let replicas = self.ensure_slice(slice);
            let bytes = RedoRecord::encode_batch(&recs).len() as u64;
            for &ps in &replicas {
                self.network.transfer(Direction::ToStorage, bytes);
                self.page_stores[ps].apply_redo(&recs)?;
            }
        }
        Ok(base + n - 1)
    }

    /// Regular single-page read (the non-NDP scan path — "a regular InnoDB
    /// scan does not perform batch reads", §I). Default query context: the
    /// anonymous tenant, no deadline.
    pub fn read_page(&self, pref: PageRef, at_lsn: Option<Lsn>) -> Result<Arc<Page>> {
        self.read_page_ctx(pref, at_lsn, &QueryCtx::new())
    }

    /// Single-page read under a query context: replica failover inside a
    /// round, then — for *transient* failures only — up to
    /// `govern.read_retry_rounds` rounds with jittered exponential backoff
    /// between them, the whole thing bounded by the context's deadline.
    /// Every attempted replica is charged identically to the no-retry
    /// path (request bytes + `net_read_requests`; attempts beyond the
    /// first count as `read_retries`).
    pub fn read_page_ctx(
        &self,
        pref: PageRef,
        at_lsn: Option<Lsn>,
        ctx: &QueryCtx,
    ) -> Result<Arc<Page>> {
        let slice = self.slice_of(pref.space, pref.page_no);
        let replicas = self.replicas_for(slice)?;
        let retry = self.retry_policy(*ctx);
        let mut last_err = Error::NotFound(format!("page {pref:?}"));
        let mut attempt = 0usize;
        for round in 1..=retry.rounds {
            if round > 1 {
                check_deadline(&self.metrics, &retry.ctx, "single-page read retry")?;
                self.backoff_between_rounds(&retry, round, pref.page_no as u64);
            }
            for &ps in replicas.iter() {
                check_deadline(&self.metrics, &retry.ctx, "single-page read")?;
                charge_read_attempt(
                    &self.metrics,
                    &self.network,
                    attempt,
                    REQ_HEADER_BYTES + PER_PAGE_ID_BYTES,
                );
                attempt += 1;
                match self.page_stores[ps].read_page(slice, pref.page_no, at_lsn) {
                    Ok(p) => {
                        self.network.transfer(
                            Direction::FromStorage,
                            p.byte_len() as u64 + PER_PAGE_RESULT_HEADER,
                        );
                        self.metrics.add(|m| &m.pages_shipped_raw, 1);
                        return Ok(p);
                    }
                    Err(e) => last_err = e,
                }
            }
            if !is_transient(&last_err) {
                break;
            }
        }
        Err(last_err)
    }

    fn retry_policy(&self, ctx: QueryCtx) -> RetryPolicy {
        RetryPolicy {
            rounds: self.cfg.govern.read_retry_rounds.max(1),
            backoff: Duration::from_micros(self.cfg.govern.read_backoff_us),
            ctx,
        }
    }

    /// Jittered exponential backoff before retry round `round` (>= 2),
    /// metered so starvation under overload is observable.
    fn backoff_between_rounds(&self, retry: &RetryPolicy, round: u32, seed: u64) {
        let d = backoff_delay(retry.backoff, round - 1, seed ^ round as u64);
        if !d.is_zero() {
            self.metrics.add(|m| &m.read_backoff_waits, 1);
            std::thread::sleep(d);
        }
    }

    /// NDP batch read (§IV-C4, §VI-2): split by slice, dispatch sub-batches
    /// concurrently, reassemble in request order. Convenience join-all
    /// wrapper over [`Sal::batch_read_streaming`].
    pub fn batch_read(
        &self,
        space: SpaceId,
        pages: &[PageNo],
        read_lsn: Lsn,
        descriptor: Arc<Vec<u8>>,
    ) -> Result<Vec<PageResult>> {
        self.batch_read_ctx(space, pages, read_lsn, descriptor, &QueryCtx::new())
    }

    /// [`Sal::batch_read`] under a query context (tenant attribution,
    /// deadline, retry rounds).
    pub fn batch_read_ctx(
        &self,
        space: SpaceId,
        pages: &[PageNo],
        read_lsn: Lsn,
        descriptor: Arc<Vec<u8>>,
        ctx: &QueryCtx,
    ) -> Result<Vec<PageResult>> {
        let mut handle = self.batch_read_streaming_ctx(space, pages, read_lsn, descriptor, ctx)?;
        let mut by_page: HashMap<PageNo, PageResult> = HashMap::with_capacity(pages.len());
        while let Some(sub) = handle.recv() {
            for pr in sub? {
                by_page.insert(pr.page_no, pr);
            }
        }
        pages
            .iter()
            .map(|p| {
                by_page
                    .remove(p)
                    .ok_or_else(|| Error::Internal(format!("page {p} missing from batch")))
            })
            .collect()
    }

    /// Streaming NDP batch read: split `pages` into per-slice sub-batches
    /// and dispatch each on its own thread, like [`Sal::batch_read`] — but
    /// deliver each sub-batch's [`PageResult`]s through a bounded channel
    /// **as it completes**, so the caller can consume early sub-batches
    /// (and prefetch further leaf batches) while slower Page Stores are
    /// still working. The caller enforces logical page order; this layer
    /// only promises that every requested page eventually arrives in
    /// exactly one delivered sub-batch (or an error does).
    ///
    /// Each sub-batch picks its starting replica round-robin (load
    /// spread) and fails over to the slice's remaining replicas on error,
    /// charging request bytes per attempted replica — the batch analogue
    /// of [`Sal::read_page`]'s failover.
    ///
    /// Dropping the returned handle cancels delivery: the channel closes,
    /// in-flight sub-batch threads finish their current store call, fail
    /// to send, and are joined before `drop` returns — no dispatch thread
    /// ever outlives its handle.
    pub fn batch_read_streaming(
        &self,
        space: SpaceId,
        pages: &[PageNo],
        read_lsn: Lsn,
        descriptor: Arc<Vec<u8>>,
    ) -> Result<BatchReadHandle> {
        self.batch_read_streaming_ctx(space, pages, read_lsn, descriptor, &QueryCtx::new())
    }

    /// [`Sal::batch_read_streaming`] under a query context: sub-batches
    /// are billed to the context's tenant on the Page-Store side, replica
    /// failover gains bounded backoff-retry rounds for transient errors,
    /// and the context's deadline caps the whole dispatch.
    pub fn batch_read_streaming_ctx(
        &self,
        space: SpaceId,
        pages: &[PageNo],
        read_lsn: Lsn,
        descriptor: Arc<Vec<u8>>,
        ctx: &QueryCtx,
    ) -> Result<BatchReadHandle> {
        let retry = self.retry_policy(*ctx);
        // Group into per-slice sub-batches, preserving order within each.
        let mut sub: HashMap<SliceId, Vec<PageNo>> = HashMap::new();
        for &p in pages {
            sub.entry(self.slice_of(space, p)).or_default().push(p);
        }
        // Resolve placements up front: an unknown slice fails the whole
        // read before any thread is spawned.
        let mut jobs: Vec<(SliceId, Vec<PageNo>, Vec<Arc<PageStore>>)> =
            Vec::with_capacity(sub.len());
        for (slice, nos) in sub {
            let replicas = self.replicas_for(slice)?;
            let start = (self.read_rr.fetch_add(1, Ordering::Relaxed) as usize) % replicas.len();
            let stores: Vec<Arc<PageStore>> = (0..replicas.len())
                .map(|i| self.page_stores[replicas[(start + i) % replicas.len()]].clone())
                .collect();
            jobs.push((slice, nos, stores));
        }
        // One slot per sub-batch: dispatch threads never block on send, so
        // a stalled consumer cannot wedge a Page Store worker; memory is
        // bounded by the caller's look-ahead quota, which sizes `pages`.
        let (tx, rx) = crossbeam::channel::bounded::<Result<Vec<PageResult>>>(jobs.len().max(1));
        let mut threads = Vec::with_capacity(jobs.len());
        for (slice, nos, stores) in jobs {
            let descriptor = descriptor.clone();
            let network = self.network.clone();
            let metrics = self.metrics.clone();
            let tx = tx.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("sal-subbatch-{}", slice.seq))
                    .spawn(move || {
                        let req = NdpBatchRequest {
                            slice,
                            pages: nos,
                            read_lsn,
                            descriptor,
                            tenant: retry.ctx.tenant,
                        };
                        // A panic must surface as this sub-batch's error,
                        // not be swallowed by the handle's join (where it
                        // would masquerade as "page missing from batch").
                        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            serve_sub_batch(&stores, &req, &network, &metrics, &retry)
                        }))
                        .unwrap_or_else(|panic| {
                            let msg = panic
                                .downcast_ref::<&str>()
                                .map(|s| s.to_string())
                                .or_else(|| panic.downcast_ref::<String>().cloned())
                                .unwrap_or_else(|| "non-string panic payload".into());
                            Err(Error::Internal(format!(
                                "sal sub-batch dispatch panicked: {msg}"
                            )))
                        });
                        // A failed send means the handle was dropped
                        // (cancelled scan); the result is discarded.
                        let _ = tx.send(out);
                    })
                    // lint:allow(panic): thread spawn fails only on OS resource exhaustion
                    .expect("spawn sal sub-batch dispatch"),
            );
        }
        Ok(BatchReadHandle {
            rx: Some(rx),
            threads,
        })
    }
}

/// Wire accounting for one read attempt against one replica, shared by
/// the single-page and sub-batch failover loops so they cannot drift:
/// every attempted replica is a real request (request bytes + a
/// `net_read_requests` count — a silent retry is not free), and attempts
/// beyond the first count as `read_retries`.
fn charge_read_attempt(metrics: &Metrics, network: &Network, attempt: usize, request_bytes: u64) {
    metrics.add(|m| &m.net_read_requests, 1);
    if attempt > 0 {
        metrics.add(|m| &m.read_retries, 1);
    }
    network.transfer(Direction::ToStorage, request_bytes);
}

/// The read-retry discipline for one query: how many replica-sweep rounds
/// to run, the base backoff between them, and the query context whose
/// deadline bounds the whole thing.
#[derive(Clone, Copy)]
struct RetryPolicy {
    rounds: u32,
    backoff: Duration,
    ctx: QueryCtx,
}

/// Is this failure worth another round? Only conditions that can clear on
/// their own: a down/browned-out store ([`Error::InvalidState`] from
/// fault injection or a lagging slice) or explicit overload. Everything
/// else — missing pages, corruption, parse errors — is deterministic and
/// retrying it just burns the deadline.
fn is_transient(e: &Error) -> bool {
    matches!(e, Error::InvalidState(_) | Error::Overloaded(_))
}

/// Serve one per-slice sub-batch with replica failover: try each store in
/// the (rotated) replica order, charging the request per attempt, until
/// one serves it; meter the result bytes of the successful attempt. For
/// transient failures, sweep the replicas again (up to `retry.rounds`
/// rounds) after a jittered backoff; the context's deadline cuts the
/// loop off wherever it stands.
fn serve_sub_batch(
    stores: &[Arc<PageStore>],
    req: &NdpBatchRequest,
    network: &Network,
    metrics: &Metrics,
    retry: &RetryPolicy,
) -> Result<Vec<PageResult>> {
    let request_bytes =
        REQ_HEADER_BYTES + req.descriptor.len() as u64 + PER_PAGE_ID_BYTES * req.pages.len() as u64;
    let mut last_err = Error::Internal("sub-batch had no replicas".into());
    let mut attempt = 0usize;
    for round in 1..=retry.rounds.max(1) {
        if round > 1 {
            check_deadline(metrics, &retry.ctx, "batch read retry")?;
            let d = backoff_delay(
                retry.backoff,
                round - 1,
                req.slice.seq as u64 ^ round as u64,
            );
            if !d.is_zero() {
                metrics.add(|m| &m.read_backoff_waits, 1);
                std::thread::sleep(d);
            }
        }
        for store in stores.iter() {
            check_deadline(metrics, &retry.ctx, "batch read dispatch")?;
            charge_read_attempt(metrics, network, attempt, request_bytes);
            attempt += 1;
            match store.serve_ndp_batch(req) {
                Ok(out) => {
                    let mut bytes = 0u64;
                    for r in &out {
                        bytes += r.payload.byte_len() as u64 + PER_PAGE_RESULT_HEADER;
                        match &r.payload {
                            PagePayload::Ndp(p) => {
                                if p.page_type() == taurus_page::PageType::NdpEmpty {
                                    metrics.add(|m| &m.pages_shipped_empty, 1);
                                } else {
                                    metrics.add(|m| &m.pages_shipped_ndp, 1);
                                }
                            }
                            PagePayload::Raw(_) => {
                                metrics.add(|m| &m.pages_shipped_raw, 1);
                            }
                        }
                    }
                    network.transfer(Direction::FromStorage, bytes);
                    return Ok(out);
                }
                Err(e) => last_err = e,
            }
        }
        if !is_transient(&last_err) {
            break;
        }
    }
    Err(last_err)
}

/// Deadline check that meters expiries (shared by the in-line read path
/// and the sub-batch dispatch threads).
fn check_deadline(metrics: &Metrics, ctx: &QueryCtx, what: &str) -> Result<()> {
    ctx.check(what).inspect_err(|_| {
        metrics.add(|m| &m.deadline_exceeded, 1);
    })
}

/// A streaming batch read in flight: receive completed sub-batches with
/// [`BatchReadHandle::recv`]; drop to cancel (joins all dispatch
/// threads). See [`Sal::batch_read_streaming`].
pub struct BatchReadHandle {
    rx: Option<crossbeam::channel::Receiver<Result<Vec<PageResult>>>>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl BatchReadHandle {
    /// The next completed sub-batch, blocking until one finishes; `None`
    /// once every sub-batch has been delivered.
    pub fn recv(&mut self) -> Option<Result<Vec<PageResult>>> {
        self.rx.as_ref()?.recv().ok()
    }
}

impl Drop for BatchReadHandle {
    fn drop(&mut self) {
        // Close the channel first so any thread blocked in `send` (or
        // about to send) observes the cancellation, then join: after
        // `drop` returns, no dispatch thread is still running.
        self.rx = None;
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taurus_common::{DataType, Value};
    use taurus_expr::descriptor::NdpDescriptor;
    use taurus_page::{encode_record, RecordLayout, RecordMeta};
    use taurus_pagestore::RedoBody;

    fn test_cfg() -> ClusterConfig {
        let mut cfg = ClusterConfig::small_for_tests();
        cfg.slice_pages = 4; // tiny slices => multi-slice batches
        cfg.n_page_stores = 3;
        cfg.replication = 2;
        cfg
    }

    fn leaf_image(space: u32, page_no: u32, keys: &[i64]) -> Vec<u8> {
        let l = RecordLayout::new(vec![DataType::BigInt]);
        let mut p = Page::new_index(1024, SpaceId(space), page_no, 7, 0);
        for &k in keys {
            let mut b = Vec::new();
            encode_record(&l, &[Value::Int(k)], RecordMeta::ordinary(1), None, &mut b).unwrap();
            p.append_record(&b).unwrap();
        }
        p.into_bytes()
    }

    fn no_work_descriptor() -> Arc<Vec<u8>> {
        Arc::new(
            NdpDescriptor {
                index_id: 7,
                record_dtypes: vec![DataType::BigInt],
                key_positions: vec![0],
                projection: None,
                predicate_bitcode: None,
                aggregation: None,
                low_watermark: 100,
            }
            .encode(),
        )
    }

    #[test]
    fn write_log_triplicates_and_applies_to_replicas() {
        let m = Metrics::shared();
        let sal = Sal::new(test_cfg(), m.clone());
        let space = SpaceId(1);
        sal.ensure_slice(SliceId::of(space, 0, 4));
        let lsn = sal
            .write_log(vec![RedoRecord {
                lsn: 0,
                space,
                page_no: 0,
                body: RedoBody::NewPage(leaf_image(1, 0, &[1, 2, 3])),
            }])
            .unwrap();
        assert!(lsn >= 1);
        // All three log stores got the batch.
        for ls in sal.log_stores() {
            assert_eq!(ls.len(), 1);
        }
        // Exactly `replication` page stores can serve the page.
        let served = sal
            .page_stores()
            .iter()
            .filter(|ps| ps.read_page(SliceId::of(space, 0, 4), 0, None).is_ok())
            .count();
        assert_eq!(served, 2);
        assert!(m.snapshot().log_bytes_appended > 0);
    }

    #[test]
    fn write_log_meters_flush_latency_and_appends_identically() {
        let m = Metrics::shared();
        let sal = Sal::new(test_cfg(), m.clone());
        let space = SpaceId(12);
        sal.ensure_slice(SliceId::of(space, 0, 4));
        sal.write_log(vec![RedoRecord {
            lsn: 0,
            space,
            page_no: 0,
            body: RedoBody::NewPage(leaf_image(12, 0, &[1])),
        }])
        .unwrap();
        for i in 0..3u32 {
            sal.write_log(vec![RedoRecord {
                lsn: 0,
                space,
                page_no: 0,
                body: RedoBody::SetNext(i),
            }])
            .unwrap();
        }
        let d = m.snapshot();
        assert_eq!(d.log_flushes, 4, "one flush per write_log");
        assert!(d.log_flush_ns > 0, "flush wall time metered");
        // The concurrent triplicate dispatch must leave all three stores
        // byte-identical and LSN-sorted.
        let ls = sal.log_stores();
        let a = ls[0].read_from_lsn(1, 100);
        for other in &ls[1..] {
            assert_eq!(a, other.read_from_lsn(1, 100));
        }
        assert_eq!(ls[0].max_lsn(), sal.current_lsn());
    }

    #[test]
    fn system_records_stay_in_the_log() {
        let m = Metrics::shared();
        let sal = Sal::new(test_cfg(), m.clone());
        let space = SpaceId(13);
        sal.ensure_slice(SliceId::of(space, 0, 4));
        let lsn = sal
            .write_log(vec![
                RedoRecord {
                    lsn: 0,
                    space: SpaceId(0),
                    page_no: 0,
                    body: RedoBody::SysTrxEnd {
                        trx: 9,
                        aborted: false,
                        active: vec![],
                        low_limit: 10,
                    },
                },
                RedoRecord {
                    lsn: 0,
                    space,
                    page_no: 0,
                    body: RedoBody::NewPage(leaf_image(13, 0, &[1])),
                },
            ])
            .unwrap();
        // Both durably logged…
        assert_eq!(sal.log_stores()[0].max_lsn(), lsn);
        // …but only the page record reached Page Stores: space 0 (the
        // system pseudo-space) got no slice placement.
        assert!(sal.replicas_of(SliceId::of(SpaceId(0), 0, 4)).is_none());
        let served = sal
            .page_stores()
            .iter()
            .filter(|ps| ps.read_page(SliceId::of(space, 0, 4), 0, None).is_ok())
            .count();
        assert_eq!(served, 2);
    }

    #[test]
    fn read_only_attachment_reads_but_never_writes() {
        let (_m, sal) = populated_sal(14);
        let replica_metrics = Metrics::shared();
        let ro = sal.attach_read_only(replica_metrics.clone());
        assert!(ro.is_read_only() && !sal.is_read_only());
        // Shares placements + stores: reads work and meter into the
        // attachment's own metrics.
        let p = ro.read_page(PageRef::new(SpaceId(14), 0), None).unwrap();
        assert_eq!(p.n_recs(), 1);
        assert_eq!(replica_metrics.snapshot().pages_shipped_raw, 1);
        // Shares the LSN cursor, refuses writes.
        assert_eq!(ro.current_lsn(), sal.current_lsn());
        let r = ro.write_log(vec![RedoRecord {
            lsn: 0,
            space: SpaceId(14),
            page_no: 0,
            body: RedoBody::SetNext(1),
        }]);
        assert!(matches!(r, Err(Error::InvalidState(_))));
    }

    #[test]
    fn lsns_are_monotonic_across_batches() {
        let sal = Sal::new(test_cfg(), Metrics::shared());
        let space = SpaceId(2);
        sal.ensure_slice(SliceId::of(space, 0, 4));
        let l1 = sal
            .write_log(vec![RedoRecord {
                lsn: 0,
                space,
                page_no: 0,
                body: RedoBody::NewPage(leaf_image(2, 0, &[1])),
            }])
            .unwrap();
        let l2 = sal
            .write_log(vec![
                RedoRecord {
                    lsn: 0,
                    space,
                    page_no: 0,
                    body: RedoBody::SetNext(1),
                },
                RedoRecord {
                    lsn: 0,
                    space,
                    page_no: 0,
                    body: RedoBody::SetPrev(9),
                },
            ])
            .unwrap();
        assert!(l2 > l1);
        assert_eq!(sal.current_lsn(), l2);
    }

    #[test]
    fn read_page_meters_network() {
        let m = Metrics::shared();
        let sal = Sal::new(test_cfg(), m.clone());
        let space = SpaceId(1);
        sal.ensure_slice(SliceId::of(space, 0, 4));
        sal.write_log(vec![RedoRecord {
            lsn: 0,
            space,
            page_no: 0,
            body: RedoBody::NewPage(leaf_image(1, 0, &[1, 2])),
        }])
        .unwrap();
        let before = m.snapshot();
        let p = sal.read_page(PageRef::new(space, 0), None).unwrap();
        assert_eq!(p.n_recs(), 2);
        let d = m.snapshot().since(&before);
        assert_eq!(d.pages_shipped_raw, 1);
        assert!(d.net_bytes_from_storage >= 1024);
        assert!(d.net_bytes_to_storage >= REQ_HEADER_BYTES);
    }

    #[test]
    fn batch_read_splits_by_slice_and_reassembles_in_order() {
        let m = Metrics::shared();
        let sal = Sal::new(test_cfg(), m.clone());
        let space = SpaceId(3);
        // 12 pages over slices {0..3},{4..7},{8..11}: 3 slices.
        let mut recs = Vec::new();
        for no in 0..12u32 {
            sal.ensure_slice(SliceId::of(space, no, 4));
            recs.push(RedoRecord {
                lsn: 0,
                space,
                page_no: no,
                body: RedoBody::NewPage(leaf_image(3, no, &[no as i64])),
            });
        }
        sal.write_log(recs).unwrap();
        let pages: Vec<PageNo> = (0..12).collect();
        let before = m.snapshot();
        let out = sal
            .batch_read(space, &pages, sal.current_lsn(), no_work_descriptor())
            .unwrap();
        assert_eq!(out.len(), 12);
        for (i, r) in out.iter().enumerate() {
            assert_eq!(r.page_no, i as u32, "order must match the request");
        }
        let d = m.snapshot().since(&before);
        assert_eq!(d.net_read_requests, 3, "one sub-batch per slice");
        assert_eq!(d.pages_shipped_raw, 12);
    }

    #[test]
    fn batch_read_unknown_slice_fails() {
        let sal = Sal::new(test_cfg(), Metrics::shared());
        let r = sal.batch_read(SpaceId(9), &[0, 1], 1, no_work_descriptor());
        assert!(r.is_err());
    }

    /// Load 12 single-key pages over 3 slices into a fresh cluster.
    fn populated_sal(space: u32) -> (Arc<Metrics>, Arc<Sal>) {
        let m = Metrics::shared();
        let sal = Sal::new(test_cfg(), m.clone());
        let space = SpaceId(space);
        let mut recs = Vec::new();
        for no in 0..12u32 {
            sal.ensure_slice(SliceId::of(space, no, 4));
            recs.push(RedoRecord {
                lsn: 0,
                space,
                page_no: no,
                body: RedoBody::NewPage(leaf_image(space.0, no, &[no as i64])),
            });
        }
        sal.write_log(recs).unwrap();
        (m, sal)
    }

    #[test]
    fn read_page_fails_over_and_charges_per_attempt() {
        let (m, sal) = populated_sal(5);
        let space = SpaceId(5);
        let slice = SliceId::of(space, 0, 4);
        let replicas = sal.replicas_of(slice).unwrap();
        assert_eq!(replicas.len(), 2);
        sal.page_stores()[replicas[0]].set_poisoned(true);
        let before = m.snapshot();
        let p = sal.read_page(PageRef::new(space, 0), None).unwrap();
        assert_eq!(p.n_recs(), 1);
        let d = m.snapshot().since(&before);
        assert_eq!(d.read_retries, 1, "one failover hop");
        assert_eq!(d.net_read_requests, 2, "both attempts are requests");
        assert_eq!(
            d.net_bytes_to_storage,
            2 * (REQ_HEADER_BYTES + PER_PAGE_ID_BYTES),
            "request bytes charged per attempted replica"
        );
        assert_eq!(d.pages_shipped_raw, 1, "result shipped once");
        sal.page_stores()[replicas[0]].set_poisoned(false);
    }

    #[test]
    fn batch_read_fails_over_to_surviving_replicas() {
        let (m, sal) = populated_sal(6);
        let space = SpaceId(6);
        let pages: Vec<PageNo> = (0..12).collect();
        let clean = sal
            .batch_read(space, &pages, sal.current_lsn(), no_work_descriptor())
            .unwrap();
        // Kill one store: every slice placed on it must fail over.
        sal.page_stores()[0].set_poisoned(true);
        let before = m.snapshot();
        let out = sal
            .batch_read(space, &pages, sal.current_lsn(), no_work_descriptor())
            .unwrap();
        let d = m.snapshot().since(&before);
        assert_eq!(out.len(), 12);
        for (i, (a, b)) in clean.iter().zip(&out).enumerate() {
            assert_eq!(a.page_no, b.page_no, "order preserved at {i}");
            assert_eq!(a.payload.byte_len(), b.payload.byte_len());
        }
        // With replication 2 over 3 stores, at least one of the 3 slices
        // is placed on store 0; rotation may or may not start there, so
        // retries are probabilistic per run — but *correctness* is not,
        // and a poisoned store never serves.
        assert_eq!(d.pages_shipped_raw, 12);
        sal.page_stores()[0].set_poisoned(false);
    }

    #[test]
    fn batch_read_retries_when_preferred_replica_is_down() {
        let (m, sal) = populated_sal(7);
        let space = SpaceId(7);
        // Poison every replica that any slice's rotation could start on
        // except one surviving store, so failover must happen for some
        // sub-batch: kill stores 0 and 1, leaving store 2.
        // (replication=2: every slice keeps at least one live replica
        // only if its placement includes store 2 — restrict the batch to
        // slices that do.)
        let mut served_by_2: Vec<PageNo> = Vec::new();
        for no in 0..12u32 {
            let reps = sal.replicas_of(SliceId::of(space, no, 4)).unwrap();
            if reps.contains(&2) {
                served_by_2.push(no);
            }
        }
        assert!(!served_by_2.is_empty(), "rr placement covers store 2");
        sal.page_stores()[0].set_poisoned(true);
        sal.page_stores()[1].set_poisoned(true);
        let before = m.snapshot();
        let out = sal
            .batch_read(space, &served_by_2, sal.current_lsn(), no_work_descriptor())
            .unwrap();
        let d = m.snapshot().since(&before);
        assert_eq!(out.len(), served_by_2.len());
        // Every sub-batch whose rotated start hit a dead store retried;
        // all requests beyond one per sub-batch are retries.
        assert_eq!(
            d.net_read_requests - d.read_retries,
            served_by_2
                .iter()
                .map(|&no| SliceId::of(space, no, 4))
                .collect::<std::collections::HashSet<_>>()
                .len() as u64,
            "exactly one successful attempt per sub-batch"
        );
        for ps in sal.page_stores() {
            ps.set_poisoned(false);
        }
    }

    #[test]
    fn batch_read_fails_when_all_replicas_down() {
        let (_m, sal) = populated_sal(8);
        for ps in sal.page_stores() {
            ps.set_poisoned(true);
        }
        let r = sal.batch_read(SpaceId(8), &[0, 1], sal.current_lsn(), no_work_descriptor());
        assert!(r.is_err(), "no replica left to serve");
        for ps in sal.page_stores() {
            ps.set_poisoned(false);
        }
    }

    #[test]
    fn transient_failures_get_backoff_retry_rounds() {
        let (m, sal) = populated_sal(20);
        for ps in sal.page_stores() {
            ps.set_poisoned(true);
        }
        let before = m.snapshot();
        // Default config: 2 retry rounds. All replicas down with a
        // transient (InvalidState) error → a second sweep after backoff.
        let r = sal.read_page(PageRef::new(SpaceId(20), 0), None);
        assert!(r.is_err());
        let d = m.snapshot().since(&before);
        assert_eq!(d.read_backoff_waits, 1, "one backoff between two rounds");
        assert_eq!(
            d.net_read_requests, 4,
            "2 replicas swept twice, every attempt charged"
        );
        assert_eq!(d.read_retries, 3, "all attempts after the first");
        for ps in sal.page_stores() {
            ps.set_poisoned(false);
        }
        // NotFound is deterministic: no second round, no backoff.
        let before = m.snapshot();
        let r = sal.read_page(PageRef::new(SpaceId(20), 9999), None);
        assert!(matches!(r, Err(Error::NotFound(_))));
        let d = m.snapshot().since(&before);
        assert_eq!(d.read_backoff_waits, 0, "deterministic errors never retry");
    }

    #[test]
    fn expired_deadline_cuts_reads_off_and_is_metered() {
        let (m, sal) = populated_sal(21);
        let ctx = QueryCtx::for_tenant(5).with_budget_ms(1);
        std::thread::sleep(std::time::Duration::from_millis(5));
        let r = sal.read_page_ctx(PageRef::new(SpaceId(21), 0), None, &ctx);
        assert!(matches!(r, Err(Error::DeadlineExceeded(_))), "{r:?}");
        assert!(m.snapshot().deadline_exceeded >= 1);
        // The batch path honors the same deadline inside its dispatch.
        let pages: Vec<PageNo> = (0..12).collect();
        let r = sal.batch_read_ctx(
            SpaceId(21),
            &pages,
            sal.current_lsn(),
            no_work_descriptor(),
            &ctx,
        );
        assert!(matches!(r, Err(Error::DeadlineExceeded(_))), "{r:?}");
        // A fresh unexpired context reads normally.
        let ctx = QueryCtx::for_tenant(5).with_budget_ms(60_000);
        assert!(sal
            .read_page_ctx(PageRef::new(SpaceId(21), 0), None, &ctx)
            .is_ok());
    }

    #[test]
    fn batch_reads_bill_the_context_tenant() {
        let (m, sal) = populated_sal(22);
        let ctx = QueryCtx::for_tenant(42);
        let pages: Vec<PageNo> = (0..12).collect();
        // Force store-level shed so the tenant's pages_shed counter moves
        // (a no-work descriptor never submits NDP jobs).
        for ps in sal.page_stores() {
            ps.set_force_shed(true);
        }
        let desc = Arc::new(
            NdpDescriptor {
                index_id: 7,
                record_dtypes: vec![DataType::BigInt],
                key_positions: vec![0],
                projection: Some(vec![0]),
                predicate_bitcode: None,
                aggregation: None,
                low_watermark: 100,
            }
            .encode(),
        );
        let out = sal
            .batch_read_ctx(SpaceId(22), &pages, sal.current_lsn(), desc, &ctx)
            .unwrap();
        assert_eq!(out.len(), 12);
        assert!(
            out.iter().all(|r| matches!(r.payload, PagePayload::Raw(_))),
            "shed batches ship raw"
        );
        let shed = m.tenants.tenant(42).pages_shed.load(Ordering::Relaxed);
        assert_eq!(shed, 12, "all shed pages billed to tenant 42");
        assert_eq!(m.snapshot().ps_ndp_shed, 12);
        for ps in sal.page_stores() {
            ps.set_force_shed(false);
        }
    }

    #[test]
    fn streaming_handle_delivers_all_sub_batches_then_none() {
        let (m, sal) = populated_sal(10);
        let space = SpaceId(10);
        let pages: Vec<PageNo> = (0..12).collect();
        let before = m.snapshot();
        let mut handle = sal
            .batch_read_streaming(space, &pages, sal.current_lsn(), no_work_descriptor())
            .unwrap();
        let mut seen = std::collections::HashSet::new();
        let mut subs = 0;
        while let Some(sub) = handle.recv() {
            subs += 1;
            for pr in sub.unwrap() {
                assert!(seen.insert(pr.page_no), "page delivered exactly once");
            }
        }
        assert_eq!(subs, 3, "one delivery per slice sub-batch");
        assert_eq!(seen.len(), 12);
        let d = m.snapshot().since(&before);
        assert_eq!(d.pages_shipped_raw, 12);
    }

    #[test]
    fn dropping_streaming_handle_joins_dispatch_threads() {
        let (_m, sal) = populated_sal(11);
        let space = SpaceId(11);
        let pages: Vec<PageNo> = (0..12).collect();
        let mut handle = sal
            .batch_read_streaming(space, &pages, sal.current_lsn(), no_work_descriptor())
            .unwrap();
        // Take one sub-batch, then abandon the read mid-flight.
        let first = handle.recv().unwrap().unwrap();
        assert!(!first.is_empty());
        drop(handle); // must join all dispatch threads, not hang or leak
                      // A subsequent read on the same SAL works normally.
        let out = sal
            .batch_read(space, &pages, sal.current_lsn(), no_work_descriptor())
            .unwrap();
        assert_eq!(out.len(), 12);
    }
}
