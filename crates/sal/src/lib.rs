//! The Storage Abstraction Layer (§II).
//!
//! The SAL runs on the database server and "isolates the database frontend
//! from the underlying complexity of remote storage": it writes log records
//! to Log Stores (in triplicate), distributes them to the Page Stores
//! hosting the affected slices, routes page reads, and — for NDP — "splits
//! a batch read into multiple sub-batches, based on where the pages are
//! located … and concurrently sends the sub-batches to Page Stores, with
//! the effect that multiple Page Stores are engaged in parallel" (§VI-2).
//!
//! Every byte crossing this layer is metered by [`network::Network`].

pub mod network;

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use taurus_common::{
    ClusterConfig, Error, Lsn, Metrics, PageNo, PageRef, Result, SliceId, SpaceId,
};
use taurus_logstore::LogStore;
use taurus_page::Page;
use taurus_pagestore::{
    NdpBatchRequest, PagePayload, PageResult, PageStore, PageStoreConfig, RedoRecord,
};

pub use network::{Direction, Network};

/// Fixed per-request framing overhead we charge on the wire (headers,
/// page ids, LSN), so "bytes" stay honest without a real RPC layer.
const REQ_HEADER_BYTES: u64 = 32;
const PER_PAGE_ID_BYTES: u64 = 8;
const PER_PAGE_RESULT_HEADER: u64 = 16;

/// The Storage Abstraction Layer: slice placement, log fan-out, page-read
/// routing, batch splitting.
pub struct Sal {
    cfg: ClusterConfig,
    page_stores: Vec<Arc<PageStore>>,
    log_stores: Vec<Arc<LogStore>>,
    placement: RwLock<HashMap<SliceId, Vec<usize>>>,
    next_lsn: AtomicU64,
    network: Arc<Network>,
    metrics: Arc<Metrics>,
    rr_counter: AtomicU64,
}

impl Sal {
    /// Bring up a full storage cluster (Page Stores + Log Stores) per the
    /// configuration.
    pub fn new(cfg: ClusterConfig, metrics: Arc<Metrics>) -> Arc<Sal> {
        let ps_cfg = PageStoreConfig {
            versions_retained: cfg.pagestore_versions_retained,
            ndp_threads: cfg.pagestore_ndp_threads,
            ndp_queue: cfg.pagestore_ndp_queue,
            descriptor_cache: cfg.ndp.descriptor_cache,
            slice_pages: cfg.slice_pages,
        };
        let page_stores = (0..cfg.n_page_stores)
            .map(|i| PageStore::new(i, ps_cfg.clone(), metrics.clone()))
            .collect();
        let log_stores = (0..cfg.n_log_stores)
            .map(|i| Arc::new(LogStore::new(i)))
            .collect();
        let network = Network::new(&cfg.network, metrics.clone());
        Arc::new(Sal {
            cfg,
            page_stores,
            log_stores,
            placement: RwLock::new(HashMap::new()),
            next_lsn: AtomicU64::new(1),
            network,
            metrics,
            rr_counter: AtomicU64::new(0),
        })
    }

    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    pub fn page_stores(&self) -> &[Arc<PageStore>] {
        &self.page_stores
    }

    pub fn log_stores(&self) -> &[Arc<LogStore>] {
        &self.log_stores
    }

    /// The newest allocated LSN (all redo up to here has been applied —
    /// this simulation applies synchronously on the write path).
    pub fn current_lsn(&self) -> Lsn {
        self.next_lsn.load(Ordering::SeqCst).saturating_sub(1)
    }

    fn slice_of(&self, space: SpaceId, page_no: PageNo) -> SliceId {
        SliceId::of(space, page_no, self.cfg.slice_pages)
    }

    /// Ensure a slice exists, choosing replicas round-robin across Page
    /// Stores (the multi-tenant placement of §II).
    pub fn ensure_slice(&self, slice: SliceId) -> Vec<usize> {
        if let Some(r) = self.placement.read().get(&slice) {
            return r.clone();
        }
        let mut w = self.placement.write();
        if let Some(r) = w.get(&slice) {
            return r.clone();
        }
        let n = self.page_stores.len();
        let k = self.cfg.effective_replication();
        let start = (self.rr_counter.fetch_add(1, Ordering::Relaxed) as usize) % n;
        let replicas: Vec<usize> = (0..k).map(|i| (start + i) % n).collect();
        for &r in &replicas {
            self.page_stores[r].create_slice(slice);
        }
        w.insert(slice, replicas.clone());
        replicas
    }

    fn replicas_for(&self, slice: SliceId) -> Result<Vec<usize>> {
        self.placement
            .read()
            .get(&slice)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("slice {slice:?} has no placement")))
    }

    /// Write path (§II): assign LSNs, append to all Log Stores (triplicate
    /// durability), then distribute records to the Page Store replicas of
    /// each affected slice and apply.
    pub fn write_log(&self, mut records: Vec<RedoRecord>) -> Result<Lsn> {
        if records.is_empty() {
            return Ok(self.current_lsn());
        }
        let n = records.len() as u64;
        let base = self.next_lsn.fetch_add(n, Ordering::SeqCst);
        for (i, r) in records.iter_mut().enumerate() {
            r.lsn = base + i as u64;
        }
        let batch = RedoRecord::encode_batch(&records);
        for ls in &self.log_stores {
            self.network
                .transfer(Direction::ToStorage, batch.len() as u64);
            ls.append(&batch);
            self.metrics
                .add(|m| &m.log_bytes_appended, batch.len() as u64);
            // Durability ack.
            self.network.transfer(Direction::FromStorage, 16);
        }
        // Distribute to Page Stores by slice.
        let mut by_slice: HashMap<SliceId, Vec<RedoRecord>> = HashMap::new();
        for r in records {
            by_slice
                .entry(r.slice(self.cfg.slice_pages))
                .or_default()
                .push(r);
        }
        for (slice, recs) in by_slice {
            let replicas = self.ensure_slice(slice);
            let bytes = RedoRecord::encode_batch(&recs).len() as u64;
            for &ps in &replicas {
                self.network.transfer(Direction::ToStorage, bytes);
                self.page_stores[ps].apply_redo(&recs)?;
            }
        }
        Ok(base + n - 1)
    }

    /// Regular single-page read (the non-NDP scan path — "a regular InnoDB
    /// scan does not perform batch reads", §I).
    pub fn read_page(&self, pref: PageRef, at_lsn: Option<Lsn>) -> Result<Arc<Page>> {
        let slice = self.slice_of(pref.space, pref.page_no);
        let replicas = self.replicas_for(slice)?;
        self.metrics.add(|m| &m.net_read_requests, 1);
        self.network
            .transfer(Direction::ToStorage, REQ_HEADER_BYTES + PER_PAGE_ID_BYTES);
        let mut last_err = Error::NotFound(format!("page {pref:?}"));
        for &ps in &replicas {
            match self.page_stores[ps].read_page(slice, pref.page_no, at_lsn) {
                Ok(p) => {
                    self.network.transfer(
                        Direction::FromStorage,
                        p.byte_len() as u64 + PER_PAGE_RESULT_HEADER,
                    );
                    self.metrics.add(|m| &m.pages_shipped_raw, 1);
                    return Ok(p);
                }
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }

    /// NDP batch read (§IV-C4, §VI-2): split by slice, dispatch sub-batches
    /// concurrently, reassemble in request order.
    pub fn batch_read(
        &self,
        space: SpaceId,
        pages: &[PageNo],
        read_lsn: Lsn,
        descriptor: Arc<Vec<u8>>,
    ) -> Result<Vec<PageResult>> {
        // Group into per-slice sub-batches, preserving order within each.
        let mut sub: HashMap<SliceId, Vec<PageNo>> = HashMap::new();
        for &p in pages {
            sub.entry(self.slice_of(space, p)).or_default().push(p);
        }
        let mut jobs: Vec<(SliceId, Vec<PageNo>, usize)> = Vec::with_capacity(sub.len());
        for (slice, nos) in sub {
            let replicas = self.replicas_for(slice)?;
            jobs.push((slice, nos, replicas[0]));
        }

        let results: Vec<Result<Vec<PageResult>>> = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = jobs
                .iter()
                .map(|(slice, nos, ps)| {
                    let descriptor = descriptor.clone();
                    let network = self.network.clone();
                    let metrics = self.metrics.clone();
                    let store = self.page_stores[*ps].clone();
                    let slice = *slice;
                    let nos = nos.clone();
                    s.spawn(move |_| {
                        metrics.add(|m| &m.net_read_requests, 1);
                        network.transfer(
                            Direction::ToStorage,
                            REQ_HEADER_BYTES
                                + descriptor.len() as u64
                                + PER_PAGE_ID_BYTES * nos.len() as u64,
                        );
                        let req = NdpBatchRequest {
                            slice,
                            pages: nos,
                            read_lsn,
                            descriptor,
                        };
                        let out = store.serve_ndp_batch(&req)?;
                        let mut bytes = 0u64;
                        for r in &out {
                            bytes += r.payload.byte_len() as u64 + PER_PAGE_RESULT_HEADER;
                            match &r.payload {
                                PagePayload::Ndp(p) => {
                                    if p.page_type() == taurus_page::PageType::NdpEmpty {
                                        metrics.add(|m| &m.pages_shipped_empty, 1);
                                    } else {
                                        metrics.add(|m| &m.pages_shipped_ndp, 1);
                                    }
                                }
                                PagePayload::Raw(_) => {
                                    metrics.add(|m| &m.pages_shipped_raw, 1);
                                }
                            }
                        }
                        network.transfer(Direction::FromStorage, bytes);
                        Ok(out)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sal dispatch thread"))
                .collect()
        })
        .expect("sal scope");

        // Reassemble in the caller's page order.
        let mut by_page: HashMap<PageNo, PageResult> = HashMap::with_capacity(pages.len());
        for r in results {
            for pr in r? {
                by_page.insert(pr.page_no, pr);
            }
        }
        pages
            .iter()
            .map(|p| {
                by_page
                    .remove(p)
                    .ok_or_else(|| Error::Internal(format!("page {p} missing from batch")))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taurus_common::{DataType, Value};
    use taurus_expr::descriptor::NdpDescriptor;
    use taurus_page::{encode_record, RecordLayout, RecordMeta};
    use taurus_pagestore::RedoBody;

    fn test_cfg() -> ClusterConfig {
        let mut cfg = ClusterConfig::small_for_tests();
        cfg.slice_pages = 4; // tiny slices => multi-slice batches
        cfg.n_page_stores = 3;
        cfg.replication = 2;
        cfg
    }

    fn leaf_image(space: u32, page_no: u32, keys: &[i64]) -> Vec<u8> {
        let l = RecordLayout::new(vec![DataType::BigInt]);
        let mut p = Page::new_index(1024, SpaceId(space), page_no, 7, 0);
        for &k in keys {
            let mut b = Vec::new();
            encode_record(&l, &[Value::Int(k)], RecordMeta::ordinary(1), None, &mut b).unwrap();
            p.append_record(&b).unwrap();
        }
        p.into_bytes()
    }

    fn no_work_descriptor() -> Arc<Vec<u8>> {
        Arc::new(
            NdpDescriptor {
                index_id: 7,
                record_dtypes: vec![DataType::BigInt],
                key_positions: vec![0],
                projection: None,
                predicate_bitcode: None,
                aggregation: None,
                low_watermark: 100,
            }
            .encode(),
        )
    }

    #[test]
    fn write_log_triplicates_and_applies_to_replicas() {
        let m = Metrics::shared();
        let sal = Sal::new(test_cfg(), m.clone());
        let space = SpaceId(1);
        sal.ensure_slice(SliceId::of(space, 0, 4));
        let lsn = sal
            .write_log(vec![RedoRecord {
                lsn: 0,
                space,
                page_no: 0,
                body: RedoBody::NewPage(leaf_image(1, 0, &[1, 2, 3])),
            }])
            .unwrap();
        assert!(lsn >= 1);
        // All three log stores got the batch.
        for ls in sal.log_stores() {
            assert_eq!(ls.len(), 1);
        }
        // Exactly `replication` page stores can serve the page.
        let served = sal
            .page_stores()
            .iter()
            .filter(|ps| ps.read_page(SliceId::of(space, 0, 4), 0, None).is_ok())
            .count();
        assert_eq!(served, 2);
        assert!(m.snapshot().log_bytes_appended > 0);
    }

    #[test]
    fn lsns_are_monotonic_across_batches() {
        let sal = Sal::new(test_cfg(), Metrics::shared());
        let space = SpaceId(2);
        sal.ensure_slice(SliceId::of(space, 0, 4));
        let l1 = sal
            .write_log(vec![RedoRecord {
                lsn: 0,
                space,
                page_no: 0,
                body: RedoBody::NewPage(leaf_image(2, 0, &[1])),
            }])
            .unwrap();
        let l2 = sal
            .write_log(vec![
                RedoRecord {
                    lsn: 0,
                    space,
                    page_no: 0,
                    body: RedoBody::SetNext(1),
                },
                RedoRecord {
                    lsn: 0,
                    space,
                    page_no: 0,
                    body: RedoBody::SetPrev(9),
                },
            ])
            .unwrap();
        assert!(l2 > l1);
        assert_eq!(sal.current_lsn(), l2);
    }

    #[test]
    fn read_page_meters_network() {
        let m = Metrics::shared();
        let sal = Sal::new(test_cfg(), m.clone());
        let space = SpaceId(1);
        sal.ensure_slice(SliceId::of(space, 0, 4));
        sal.write_log(vec![RedoRecord {
            lsn: 0,
            space,
            page_no: 0,
            body: RedoBody::NewPage(leaf_image(1, 0, &[1, 2])),
        }])
        .unwrap();
        let before = m.snapshot();
        let p = sal.read_page(PageRef::new(space, 0), None).unwrap();
        assert_eq!(p.n_recs(), 2);
        let d = m.snapshot().since(&before);
        assert_eq!(d.pages_shipped_raw, 1);
        assert!(d.net_bytes_from_storage >= 1024);
        assert!(d.net_bytes_to_storage >= REQ_HEADER_BYTES);
    }

    #[test]
    fn batch_read_splits_by_slice_and_reassembles_in_order() {
        let m = Metrics::shared();
        let sal = Sal::new(test_cfg(), m.clone());
        let space = SpaceId(3);
        // 12 pages over slices {0..3},{4..7},{8..11}: 3 slices.
        let mut recs = Vec::new();
        for no in 0..12u32 {
            sal.ensure_slice(SliceId::of(space, no, 4));
            recs.push(RedoRecord {
                lsn: 0,
                space,
                page_no: no,
                body: RedoBody::NewPage(leaf_image(3, no, &[no as i64])),
            });
        }
        sal.write_log(recs).unwrap();
        let pages: Vec<PageNo> = (0..12).collect();
        let before = m.snapshot();
        let out = sal
            .batch_read(space, &pages, sal.current_lsn(), no_work_descriptor())
            .unwrap();
        assert_eq!(out.len(), 12);
        for (i, r) in out.iter().enumerate() {
            assert_eq!(r.page_no, i as u32, "order must match the request");
        }
        let d = m.snapshot().since(&before);
        assert_eq!(d.net_read_requests, 3, "one sub-batch per slice");
        assert_eq!(d.pages_shipped_raw, 12);
    }

    #[test]
    fn batch_read_unknown_slice_fails() {
        let sal = Sal::new(test_cfg(), Metrics::shared());
        let r = sal.batch_read(SpaceId(9), &[0, 1], 1, no_work_descriptor());
        assert!(r.is_err());
    }
}
