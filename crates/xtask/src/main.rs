//! `taurus-xtask` — offline, dependency-free workspace lints.
//!
//! `cargo run -p taurus-xtask -- lint` runs four source-level rules the
//! compiler cannot express, against the workspace this binary lives in:
//!
//! 1. **Panic discipline** — no `unwrap()` / `expect()` / `panic!` /
//!    `unreachable!` / `todo!` in the hot-path crates (executor,
//!    pagestore, sal, server, protocol). A panic on a serving thread
//!    takes the whole node down, so every residual site must carry a
//!    `// lint:allow(panic): <reason>` annotation on its own line or the
//!    line above. Test modules (`#[cfg(test)]`) are exempt.
//! 2. **Append-only wire tables** — the NDP bitcode opcodes, the wire
//!    frame opcodes, the query-request payload tags, and the wire error
//!    codes are published contracts.
//!    Each is parsed out of its source of truth and compared against a
//!    pinned manifest under `crates/xtask/manifests/`; renumbering or
//!    removing an entry fails, and adding one forces a deliberate
//!    manifest update in the same commit.
//! 3. **Metrics-name registry** — the `metrics_struct!` declaration list
//!    (the STATS scrape format) must match `manifests/metrics.txt` in
//!    order, with unique snake_case names.
//! 4. **Config-knob documentation** — every `TAURUS_*` environment
//!    variable referenced by non-test source must be documented in
//!    `DESIGN.md`.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("lint");
    match cmd {
        "lint" => lint(),
        other => {
            eprintln!("unknown command {other:?}; usage: taurus-xtask lint");
            ExitCode::FAILURE
        }
    }
}

fn workspace_root() -> PathBuf {
    // crates/xtask/ -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives two levels under the workspace root")
        .to_path_buf()
}

fn lint() -> ExitCode {
    let root = workspace_root();
    let mut violations: Vec<String> = Vec::new();

    panic_discipline(&root, &mut violations);
    append_only_tables(&root, &mut violations);
    metrics_registry(&root, &mut violations);
    knob_docs(&root, &mut violations);

    if violations.is_empty() {
        println!("taurus-xtask lint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("taurus-xtask lint: {} violation(s)", violations.len());
        for v in &violations {
            eprintln!("  {v}");
        }
        ExitCode::FAILURE
    }
}

// --- shared helpers ----------------------------------------------------------

fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .display()
        .to_string()
}

/// Remove double-quoted string literals from a line (handling `\"`
/// escapes) so text inside messages never matches a code pattern.
fn strip_strings(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars();
    let mut in_str = false;
    while let Some(c) = chars.next() {
        match c {
            '\\' if in_str => {
                chars.next(); // skip the escaped char
            }
            '"' => in_str = !in_str,
            _ if in_str => {}
            _ => out.push(c),
        }
    }
    out
}

// --- rule 1: panic discipline ------------------------------------------------

const HOT_PATH_CRATES: &[&str] = &[
    "crates/executor",
    "crates/pagestore",
    "crates/sal",
    "crates/server",
    "crates/protocol",
];

const PANIC_PATTERNS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
];

const ALLOW_MARKER: &str = "lint:allow(panic):";

fn panic_discipline(root: &Path, violations: &mut Vec<String>) {
    for krate in HOT_PATH_CRATES {
        let mut files = Vec::new();
        rust_files(&root.join(krate).join("src"), &mut files);
        // Binary entry points (`src/bin/`) abort on startup failure by
        // design — the panic rule protects library serving code.
        files.retain(|f| !f.components().any(|c| c.as_os_str() == "bin"));
        files.sort();
        for file in files {
            let Ok(text) = fs::read_to_string(&file) else {
                violations.push(format!("{}: unreadable", rel(root, &file)));
                continue;
            };
            scan_panics(&text, &rel(root, &file), violations);
        }
    }
}

/// Scan one file. `#[cfg(test)]` items (modules or single functions) are
/// skipped by brace tracking: from the attribute, everything up to the
/// end of the item it covers is test-only code.
fn scan_panics(text: &str, file: &str, violations: &mut Vec<String>) {
    let lines: Vec<&str> = text.lines().collect();
    let mut skip_depth: i32 = 0; // brace depth inside a #[cfg(test)] item
    let mut skipping = false;
    let mut pending_cfg_test = false;
    let mut prev_allow = false;
    for (idx, raw) in lines.iter().enumerate() {
        let trimmed = raw.trim_start();
        if !skipping && !pending_cfg_test && trimmed.starts_with("#[cfg(test)]") {
            pending_cfg_test = true;
            continue;
        }
        if pending_cfg_test || skipping {
            let code = strip_strings(raw);
            let code = code.split("//").next().unwrap_or("");
            let opens = code.matches('{').count() as i32;
            let closes = code.matches('}').count() as i32;
            if pending_cfg_test {
                if opens > 0 {
                    pending_cfg_test = false;
                    skipping = true;
                    skip_depth = opens - closes;
                    if skip_depth <= 0 {
                        skipping = false;
                    }
                } else if code.contains(';') {
                    // An attribute over a brace-less item (`mod tests;`,
                    // a use): ends at the semicolon.
                    pending_cfg_test = false;
                }
            } else {
                skip_depth += opens - closes;
                if skip_depth <= 0 {
                    skipping = false;
                }
            }
            continue;
        }
        // Doc and plain comments cannot panic. An allow marker stays in
        // effect through the rest of a contiguous comment block, so the
        // reason may continue onto following `//` lines.
        if trimmed.starts_with("//") {
            if trimmed.contains(ALLOW_MARKER) && has_reason(trimmed) {
                prev_allow = true;
            }
            continue;
        }
        let stripped = strip_strings(raw);
        let (code, comment) = match stripped.find("//") {
            Some(p) => stripped.split_at(p),
            None => (stripped.as_str(), ""),
        };
        let allowed = prev_allow || (comment.contains(ALLOW_MARKER) && has_reason(comment));
        prev_allow = false;
        for pat in PANIC_PATTERNS {
            if code.contains(pat) {
                if allowed {
                    break;
                }
                violations.push(format!(
                    "{file}:{}: `{pat}` in hot-path crate without `// {ALLOW_MARKER} <reason>`",
                    idx + 1
                ));
                break;
            }
        }
    }
}

fn has_reason(comment: &str) -> bool {
    comment
        .split(ALLOW_MARKER)
        .nth(1)
        .is_some_and(|r| !r.trim().is_empty())
}

// --- rule 2: append-only tables ---------------------------------------------

fn append_only_tables(root: &Path, violations: &mut Vec<String>) {
    // Wire error codes: `N => Error::Name(` arms of decode_error.
    let errcode_src = root.join("crates/protocol/src/errcode.rs");
    let parsed = parse_code_arms(&errcode_src, "=> Error::", violations);
    check_table(root, "errcodes.txt", "wire error code", &parsed, violations);

    // Wire frame opcodes: `N => Opcode::Name,` arms of Opcode::from_u8.
    let message_src = root.join("crates/protocol/src/message.rs");
    let parsed = parse_code_arms(&message_src, "=> Opcode::", violations);
    check_table(root, "wire_opcodes.txt", "wire opcode", &parsed, violations);

    // Query-request payload tags: `N => QueryRequest::Name` arms of
    // get_query (the Query frame's leading tag byte).
    let parsed = parse_code_arms(&message_src, "=> QueryRequest::", violations);
    check_table(
        root,
        "query_tags.txt",
        "query request tag",
        &parsed,
        violations,
    );

    // NDP bitcode opcodes: `IrInstr::Name ... => { out.push(N);` pairs
    // in encode_instr.
    let ir_src = root.join("crates/expr/src/ir.rs");
    let parsed = parse_ir_opcodes(&ir_src, violations);
    check_table(
        root,
        "ir_opcodes.txt",
        "bitcode opcode",
        &parsed,
        violations,
    );
}

/// Parse `<integer> <arrow-prefix><Name><non-ident>` arms anywhere in a
/// file, e.g. `4 => Error::Corruption(message),`.
fn parse_code_arms(path: &Path, arrow: &str, violations: &mut Vec<String>) -> Vec<(u32, String)> {
    let Ok(text) = fs::read_to_string(path) else {
        violations.push(format!("{}: unreadable", path.display()));
        return Vec::new();
    };
    let mut out = Vec::new();
    for line in text.lines() {
        let trimmed = line.trim();
        let Some(pos) = trimmed.find(arrow) else {
            continue;
        };
        let Ok(code) = trimmed[..pos].trim().parse::<u32>() else {
            continue; // `_ =>` fallback or a reverse-direction arm
        };
        let name: String = trimmed[pos + arrow.len()..]
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if !name.is_empty() {
            out.push((code, name));
        }
    }
    out
}

/// Parse the (variant, opcode byte) pairs out of `encode_instr`: the
/// variant is the last `IrInstr::Name` match arm seen, the opcode the
/// next integer-literal `out.push(N)`.
fn parse_ir_opcodes(path: &Path, violations: &mut Vec<String>) -> Vec<(u32, String)> {
    let Ok(text) = fs::read_to_string(path) else {
        violations.push(format!("{}: unreadable", path.display()));
        return Vec::new();
    };
    let Some(start) = text.find("fn encode_instr") else {
        violations.push(format!("{}: no encode_instr found", path.display()));
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut pending: Option<String> = None;
    let mut depth = 0i32;
    let mut entered = false;
    for line in text[start..].lines() {
        depth += line.matches('{').count() as i32 - line.matches('}').count() as i32;
        if depth > 0 {
            entered = true;
        } else if entered {
            break; // end of encode_instr
        }
        if let Some(pos) = line.find("IrInstr::") {
            let name: String = line[pos + "IrInstr::".len()..]
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                pending = Some(name);
            }
        }
        if let Some(pos) = line.find("out.push(") {
            let arg: String = line[pos + "out.push(".len()..]
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect();
            if let (Ok(code), Some(name)) = (arg.parse::<u32>(), pending.take()) {
                out.push((code, name));
            }
        }
    }
    out
}

/// Compare a parsed (code, name) table against its pinned manifest.
fn check_table(
    root: &Path,
    manifest: &str,
    what: &str,
    parsed: &[(u32, String)],
    violations: &mut Vec<String>,
) {
    let path = root.join("crates/xtask/manifests").join(manifest);
    let Ok(text) = fs::read_to_string(&path) else {
        violations.push(format!("{}: unreadable manifest", path.display()));
        return;
    };
    let mut pinned: Vec<(u32, String)> = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.splitn(2, ' ');
        match (
            it.next().and_then(|c| c.parse::<u32>().ok()),
            it.next().map(str::trim),
        ) {
            (Some(code), Some(name)) if !name.is_empty() => pinned.push((code, name.to_string())),
            _ => violations.push(format!("{manifest}: malformed line {line:?}")),
        }
    }
    if parsed.is_empty() {
        violations.push(format!(
            "{manifest}: parsed no {what}s from source — parser broken?"
        ));
        return;
    }
    for (code, name) in &pinned {
        match parsed.iter().find(|(_, n)| n == name) {
            None => violations.push(format!(
                "{manifest}: pinned {what} {code} {name} removed from source (append-only table)"
            )),
            Some((c, _)) if c != code => violations.push(format!(
                "{manifest}: {what} {name} renumbered {code} -> {c} (append-only table)"
            )),
            _ => {}
        }
    }
    for (code, name) in parsed {
        if !pinned.iter().any(|(_, n)| n == name) {
            violations.push(format!(
                "{manifest}: source {what} {code} {name} not pinned — append it to the manifest"
            ));
        }
    }
    // Appended entries must extend the numbering, never recycle it.
    let mut sorted = parsed.to_vec();
    sorted.sort();
    for w in sorted.windows(2) {
        if w[0].0 == w[1].0 {
            violations.push(format!(
                "{what} {} assigned twice: {} and {}",
                w[0].0, w[0].1, w[1].1
            ));
        }
    }
}

// --- rule 3: metrics registry ------------------------------------------------

fn metrics_registry(root: &Path, violations: &mut Vec<String>) {
    let src = root.join("crates/common/src/metrics.rs");
    let Ok(text) = fs::read_to_string(&src) else {
        violations.push(format!("{}: unreadable", src.display()));
        return;
    };
    let Some(start) = text.find("metrics_struct! {") else {
        violations.push("metrics.rs: no metrics_struct! invocation found".into());
        return;
    };
    let mut names: Vec<String> = Vec::new();
    for line in text[start..].lines().skip(1) {
        let line = line.trim();
        if line == "}" {
            break;
        }
        if line.starts_with("//") || line.starts_with('#') || line.is_empty() {
            continue;
        }
        let name = line.trim_end_matches(',');
        if !name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        {
            violations.push(format!(
                "metrics.rs: metric name {name:?} is not snake_case"
            ));
            continue;
        }
        names.push(name.to_string());
    }
    for (i, n) in names.iter().enumerate() {
        if names[..i].contains(n) {
            violations.push(format!("metrics.rs: duplicate metric name {n}"));
        }
    }
    let path = root.join("crates/xtask/manifests/metrics.txt");
    let Ok(manifest) = fs::read_to_string(&path) else {
        violations.push(format!("{}: unreadable manifest", path.display()));
        return;
    };
    let pinned: Vec<&str> = manifest
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect();
    // The scrape format is positional: the pinned list must be a prefix
    // of the declaration order (append-only), and every declared name
    // must be pinned (forcing a deliberate manifest update).
    for (i, pin) in pinned.iter().enumerate() {
        match names.get(i) {
            Some(n) if n == pin => {}
            Some(n) => violations.push(format!(
                "metrics.txt: position {i} pinned {pin} but source declares {n} (append-only, order is the scrape format)"
            )),
            None => violations.push(format!("metrics.txt: pinned metric {pin} removed from source")),
        }
    }
    for n in names.iter().skip(pinned.len()) {
        violations.push(format!(
            "metrics.rs: new metric {n} not pinned — append it to manifests/metrics.txt"
        ));
    }
}

// --- rule 4: knob documentation ---------------------------------------------

fn knob_docs(root: &Path, violations: &mut Vec<String>) {
    let Ok(design) = fs::read_to_string(root.join("DESIGN.md")) else {
        violations.push("DESIGN.md: unreadable".into());
        return;
    };
    let mut files = Vec::new();
    let Ok(entries) = fs::read_dir(root.join("crates")) else {
        violations.push("crates/: unreadable".into());
        return;
    };
    for entry in entries.flatten() {
        let dir = entry.path();
        if dir.file_name().is_some_and(|n| n == "xtask") {
            continue; // the linter itself mentions the pattern
        }
        rust_files(&dir.join("src"), &mut files);
    }
    rust_files(&root.join("src"), &mut files);
    files.sort();
    let mut vars: Vec<(String, String)> = Vec::new();
    for file in &files {
        let Ok(text) = fs::read_to_string(file) else {
            continue;
        };
        let mut rest = text.as_str();
        while let Some(pos) = rest.find("\"TAURUS_") {
            let tail = &rest[pos + 1..];
            let name: String = tail
                .chars()
                .take_while(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || *c == '_')
                .collect();
            if name.len() > "TAURUS_".len() && !vars.iter().any(|(v, _)| *v == name) {
                vars.push((name, rel(root, file)));
            }
            rest = &rest[pos + 1..];
        }
    }
    for (var, file) in &vars {
        if !design.contains(var.as_str()) {
            violations.push(format!(
                "{var} (referenced in {file}) is not documented in DESIGN.md"
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_stripper_removes_literal_content() {
        assert_eq!(strip_strings(r#"let x = "panic!"; y"#), "let x = ; y");
        assert_eq!(strip_strings(r#"f("a\"b.unwrap()"); g"#), "f(); g");
    }

    #[test]
    fn cfg_test_modules_are_skipped() {
        let text = "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn b() { y.unwrap(); }\n}\nfn c() { z.unwrap(); }\n";
        let mut v = Vec::new();
        scan_panics(text, "f.rs", &mut v);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].contains("f.rs:1"));
        assert!(v[1].contains("f.rs:6"));
    }

    #[test]
    fn allow_annotation_needs_a_reason() {
        let mut v = Vec::new();
        scan_panics(
            "let a = b.unwrap(); // lint:allow(panic): checked above\n",
            "f.rs",
            &mut v,
        );
        assert!(v.is_empty(), "{v:?}");
        scan_panics(
            "let a = b.unwrap(); // lint:allow(panic):\n",
            "f.rs",
            &mut v,
        );
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn preceding_line_annotation_counts() {
        let text =
            "// lint:allow(panic): poisoned lock is unrecoverable\nlet g = m.lock().unwrap();\n";
        let mut v = Vec::new();
        scan_panics(text, "f.rs", &mut v);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn the_workspace_is_lint_clean() {
        let root = workspace_root();
        let mut v = Vec::new();
        panic_discipline(&root, &mut v);
        append_only_tables(&root, &mut v);
        metrics_registry(&root, &mut v);
        knob_docs(&root, &mut v);
        assert!(v.is_empty(), "workspace lint violations:\n{}", v.join("\n"));
    }
}
