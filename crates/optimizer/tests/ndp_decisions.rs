//! Unit tests for the §IV-B NDP post-processing decisions: the I/O gate,
//! buffer-pool awareness, the predicate allow-list, the width threshold,
//! and the §V-C aggregation rules.

use std::sync::Arc;

use taurus_common::schema::{Column, TableSchema};
use taurus_common::{ClusterConfig, DataType, Dec, Value};
use taurus_expr::ast::Expr;
use taurus_ndp::TaurusDb;
use taurus_optimizer::ndp_post::ndp_post_process;
use taurus_optimizer::plan::{AggFuncEx, AggItem, AggScanNode, Plan, ScanNode};

fn wide_schema() -> Arc<TableSchema> {
    TableSchema::new(
        "t",
        vec![
            Column::new("id", DataType::BigInt),
            Column::new("v", DataType::Int),
            Column::new(
                "price",
                DataType::Decimal {
                    precision: 15,
                    scale: 2,
                },
            ),
            Column::new("pad1", DataType::Varchar(100)),
            Column::new("pad2", DataType::Varchar(100)),
        ],
        vec![0],
    )
}

fn load(db: &Arc<TaurusDb>, rows: i64) -> Arc<taurus_ndp::Table> {
    let t = db.create_table(wide_schema(), &[]).unwrap();
    let data: Vec<Vec<Value>> = (0..rows)
        .map(|i| {
            vec![
                Value::Int(i),
                Value::Int(i % 100),
                Value::Decimal(Dec::new((i % 500) as i128, 2)),
                Value::str(format!("{:0>90}", i)),
                Value::str(format!("{:0>90}", i)),
            ]
        })
        .collect();
    db.bulk_load(&t, data).unwrap();
    db.buffer_pool().clear();
    t
}

fn mk_db(min_io: u64) -> Arc<TaurusDb> {
    let mut cfg = ClusterConfig::small_for_tests();
    cfg.ndp.min_io_pages = min_io;
    cfg.buffer_pool_pages = 64;
    TaurusDb::new(cfg)
}

#[test]
fn io_gate_blocks_small_scans() {
    let db = mk_db(10_000);
    load(&db, 2000);
    let mut plan = Plan::Scan(
        ScanNode::new("t", vec![0, 1]).with_predicate(vec![Expr::lt(Expr::col(1), Expr::int(5))]),
    );
    let reports = ndp_post_process(&mut plan, &db).unwrap();
    assert!(reports[0].gated_by_io);
    match &plan {
        Plan::Scan(s) => assert!(s.ndp.is_none()),
        _ => unreachable!(),
    }
}

#[test]
fn cached_pages_reduce_estimated_io() {
    // The §VII-C footnote-4 effect: a fully cached table does not qualify.
    let db = mk_db(4);
    let t = load(&db, 800);
    // Warm ALL pages via a classical full read.
    let view = db.read_view(0);
    let spec = taurus_ndp::ScanSpec {
        index: 0,
        range: taurus_ndp::ScanRange::full(),
        ndp: None,
        output_cols: vec![0],
    };
    struct Sink;
    impl taurus_ndp::ScanConsumer for Sink {
        fn on_row(&mut self, _r: &[Value]) -> taurus_common::Result<bool> {
            Ok(true)
        }
        fn on_partial(&mut self, _s: Vec<taurus_ndp::AggState>) -> taurus_common::Result<bool> {
            Ok(true)
        }
    }
    // Grow the pool so everything fits, then warm it.
    let leaves = t.primary.tree.n_leaves();
    assert!(leaves > 4);
    let mut cfg = db.config().clone();
    cfg.buffer_pool_pages = leaves as usize * 4;
    let db2 = TaurusDb::new(cfg);
    let t2 = load(&db2, 800);
    taurus_ndp::scan(&db2, &t2, &spec, &view, &mut Sink).unwrap();
    let mut plan = Plan::Scan(
        ScanNode::new("t", vec![0, 1]).with_predicate(vec![Expr::lt(Expr::col(1), Expr::int(5))]),
    );
    let reports = ndp_post_process(&mut plan, &db2).unwrap();
    assert!(reports[0].cached_pages > 0);
    assert!(
        reports[0].gated_by_io,
        "warm buffer pool must disqualify the scan: {:?}",
        reports[0]
    );
}

#[test]
fn unselective_predicate_not_pushed_but_projection_is() {
    // Tighten the filter-factor gate (default is open, 1.0) to exercise
    // the §V-B1 selectivity rule.
    let mut cfg = ClusterConfig::small_for_tests();
    cfg.ndp.min_io_pages = 1;
    cfg.ndp.predicate_max_filter_factor = 0.95;
    cfg.buffer_pool_pages = 64;
    let db = TaurusDb::new(cfg);
    load(&db, 2000);
    // v < 99 keeps ~99 % of rows: above the 0.95 filter-factor threshold.
    let mut plan = Plan::Scan(
        ScanNode::new("t", vec![0, 1]).with_predicate(vec![Expr::lt(Expr::col(1), Expr::int(99))]),
    );
    let reports = ndp_post_process(&mut plan, &db).unwrap();
    assert!(reports[0].filter_factor > 0.9);
    match &plan {
        Plan::Scan(s) => {
            let d = s.ndp.as_ref().expect("projection should still fire");
            assert!(d.choice.predicate.is_none(), "predicate must not be pushed");
            assert!(
                d.choice.projection.is_some(),
                "narrow outputs on a wide row"
            );
            // Unpushed conjunct stays residual.
            assert_eq!(s.residual_conjuncts().len(), 1);
        }
        _ => unreachable!(),
    }
}

#[test]
fn case_predicate_stays_residual() {
    let db = mk_db(1);
    load(&db, 2000);
    let case = Expr::gt(
        Expr::Case {
            branches: vec![(Expr::lt(Expr::col(1), Expr::int(10)), Expr::int(1))],
            else_: Box::new(Expr::int(0)),
        },
        Expr::int(0),
    );
    let selective = Expr::lt(Expr::col(1), Expr::int(3));
    let mut plan = Plan::Scan(ScanNode::new("t", vec![0, 1]).with_predicate(vec![case, selective]));
    ndp_post_process(&mut plan, &db).unwrap();
    match &plan {
        Plan::Scan(s) => {
            let d = s.ndp.as_ref().expect("ndp fires");
            assert_eq!(d.pushed.len(), 1, "only the allow-listed conjunct goes");
            assert_eq!(
                s.residual_conjuncts().len(),
                1,
                "CASE stays with the executor"
            );
        }
        _ => unreachable!(),
    }
}

#[test]
fn aggregation_requires_no_residual() {
    let db = mk_db(1);
    load(&db, 2000);
    let case = Expr::gt(
        Expr::Case {
            branches: vec![(Expr::lt(Expr::col(1), Expr::int(10)), Expr::int(1))],
            else_: Box::new(Expr::int(0)),
        },
        Expr::int(0),
    );
    let mut plan = Plan::AggScan(AggScanNode {
        scan: ScanNode::new("t", vec![1, 2]).with_predicate(vec![case]),
        group_cols: vec![],
        aggs: vec![AggItem {
            func: AggFuncEx::Sum,
            input: Some(Expr::col(2)),
        }],
    });
    let reports = ndp_post_process(&mut plan, &db).unwrap();
    assert!(
        !reports[0].aggregation,
        "residual CASE must block aggregation pushdown (§V-C)"
    );
}

#[test]
fn aggregation_pushes_avg_as_sum_count() {
    let db = mk_db(1);
    load(&db, 2000);
    let mut plan = Plan::AggScan(AggScanNode {
        scan: ScanNode::new("t", vec![1, 2])
            .with_predicate(vec![Expr::lt(Expr::col(1), Expr::int(50))]),
        group_cols: vec![],
        aggs: vec![AggItem {
            func: AggFuncEx::Avg,
            input: Some(Expr::col(2)),
        }],
    });
    let reports = ndp_post_process(&mut plan, &db).unwrap();
    assert!(reports[0].aggregation);
    match &plan {
        Plan::AggScan(a) => {
            let agg = a
                .scan
                .ndp
                .as_ref()
                .unwrap()
                .choice
                .aggregation
                .as_ref()
                .unwrap();
            assert_eq!(agg.specs.len(), 2, "AVG decomposes into SUM + COUNT");
        }
        _ => unreachable!(),
    }
}

#[test]
fn grouping_must_be_index_prefix() {
    let db = mk_db(1);
    load(&db, 2000);
    // GROUP BY a non-key column: no aggregation pushdown.
    let mut plan = Plan::AggScan(AggScanNode {
        scan: ScanNode::new("t", vec![1, 2])
            .with_predicate(vec![Expr::lt(Expr::col(1), Expr::int(50))]),
        group_cols: vec![1],
        aggs: vec![AggItem {
            func: AggFuncEx::CountStar,
            input: None,
        }],
    });
    let reports = ndp_post_process(&mut plan, &db).unwrap();
    assert!(!reports[0].aggregation, "non-prefix GROUP BY must not push");
    // GROUP BY the key prefix: pushes.
    let mut plan2 = Plan::AggScan(AggScanNode {
        scan: ScanNode::new("t", vec![0, 1, 2])
            .with_predicate(vec![Expr::lt(Expr::col(1), Expr::int(50))]),
        group_cols: vec![0],
        aggs: vec![AggItem {
            func: AggFuncEx::CountStar,
            input: None,
        }],
    });
    let reports2 = ndp_post_process(&mut plan2, &db).unwrap();
    assert!(reports2[0].aggregation);
}

#[test]
fn ndp_disabled_config_disables_everything() {
    let mut cfg = ClusterConfig::small_for_tests();
    cfg.ndp.enabled = false;
    cfg.ndp.min_io_pages = 1;
    let db = TaurusDb::new(cfg);
    load(&db, 2000);
    let mut plan = Plan::Scan(
        ScanNode::new("t", vec![0, 1]).with_predicate(vec![Expr::lt(Expr::col(1), Expr::int(5))]),
    );
    ndp_post_process(&mut plan, &db).unwrap();
    match &plan {
        Plan::Scan(s) => assert!(s.ndp.is_none()),
        _ => unreachable!(),
    }
}
