//! Query plans.
//!
//! Plans are built programmatically (the reproduction's stand-in for
//! MySQL's parser + join-order search — join orders are fixed by the
//! builders exactly as the paper describes MySQL choosing them), then run
//! through the optimizer's classical checks and the §IV-B *NDP
//! post-processing step*, which annotates table accesses with their
//! [`NdpChoice`] without touching plan shape.

use taurus_common::Value;
use taurus_expr::agg::AggFunc;
use taurus_expr::ast::Expr;
use taurus_ndp::NdpChoice;

/// Key-range endpoints for an index access, as literal key values (a
/// prefix of the index key).
#[derive(Clone, Debug, Default)]
pub struct RangeSpec {
    pub lower: Option<(Vec<Value>, bool)>,
    pub upper: Option<(Vec<Value>, bool)>,
}

impl RangeSpec {
    pub fn full() -> RangeSpec {
        RangeSpec::default()
    }

    pub fn point(key: Vec<Value>) -> RangeSpec {
        RangeSpec {
            lower: Some((key.clone(), true)),
            upper: Some((key, true)),
        }
    }
}

/// One table access. `predicate` holds the *classically pushed-down*
/// conjuncts (§V-B1: "MySQL's query optimizer always pushes down
/// predicates into a table access when possible") — including any
/// conjuncts that the range already encodes. The NDP pass selects a subset
/// of them for storage-side evaluation; the executor evaluates the rest as
/// residuals.
#[derive(Clone, Debug)]
pub struct ScanNode {
    pub table: String,
    /// 0 = primary, i+1 = secondaries[i].
    pub index: usize,
    pub range: RangeSpec,
    /// Conjuncts of the access-level predicate (table columns).
    pub predicate: Vec<Expr>,
    /// Table columns delivered by the scan, in order. Must cover every
    /// column referenced by `predicate` conjuncts that could stay residual.
    pub output: Vec<usize>,
    /// Filled in by NDP post-processing; `None` until then (or when NDP is
    /// not worthwhile). `pushed` lists which `predicate` conjuncts went to
    /// storage.
    pub ndp: Option<NdpDecision>,
}

/// Outcome of the §IV-B post-processing for one table access.
#[derive(Clone, Debug, Default)]
pub struct NdpDecision {
    pub choice: NdpChoice,
    /// Indices into `ScanNode::predicate` that were pushed.
    pub pushed: Vec<usize>,
}

impl ScanNode {
    pub fn new(table: &str, output: Vec<usize>) -> ScanNode {
        ScanNode {
            table: table.to_string(),
            index: 0,
            range: RangeSpec::full(),
            predicate: Vec::new(),
            output,
            ndp: None,
        }
    }

    pub fn with_predicate(mut self, conjuncts: Vec<Expr>) -> ScanNode {
        self.predicate = conjuncts;
        self
    }

    pub fn with_index(mut self, index: usize) -> ScanNode {
        self.index = index;
        self
    }

    pub fn with_range(mut self, range: RangeSpec) -> ScanNode {
        self.range = range;
        self
    }

    /// Conjuncts the executor must still evaluate.
    pub fn residual_conjuncts(&self) -> Vec<&Expr> {
        match &self.ndp {
            None => self.predicate.iter().collect(),
            Some(d) => self
                .predicate
                .iter()
                .enumerate()
                .filter(|(i, _)| !d.pushed.contains(i))
                .map(|(_, e)| e)
                .collect(),
        }
    }
}

/// Aggregate item: function + input expression over table/input columns
/// (`None` for COUNT(*)). AVG is decomposed by builders that feed
/// [`Plan::Exchange`]; elsewhere the executor handles it as SUM/COUNT.
#[derive(Clone, Debug)]
pub struct AggItem {
    pub func: AggFuncEx,
    pub input: Option<Expr>,
}

/// Aggregate functions at the plan level (superset of the storage-side
/// [`AggFunc`]: AVG exists only here).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AggFuncEx {
    CountStar,
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

impl AggFuncEx {
    /// The storage-side function, if directly pushable.
    pub fn storage_func(&self) -> Option<AggFunc> {
        Some(match self {
            AggFuncEx::CountStar => AggFunc::CountStar,
            AggFuncEx::Count => AggFunc::Count,
            AggFuncEx::Sum => AggFunc::Sum,
            AggFuncEx::Min => AggFunc::Min,
            AggFuncEx::Max => AggFunc::Max,
            AggFuncEx::Avg => return None,
        })
    }
}

/// Aggregation fused onto a single table scan — the only shape eligible
/// for NDP aggregation (§V-C: the table must be the last access of its
/// block with no residual predicates).
#[derive(Clone, Debug)]
pub struct AggScanNode {
    pub scan: ScanNode,
    /// GROUP BY columns (table columns). Must be empty (scalar) or a
    /// prefix of the chosen index key; output order is group order.
    pub group_cols: Vec<usize>,
    /// Aggregates; inputs are expressions over *table* columns.
    pub aggs: Vec<AggItem>,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JoinType {
    Inner,
    /// Left rows with no match pass through (right side NULL-padded).
    LeftOuter,
    /// Emit left row iff a match exists.
    Semi,
    /// Emit left row iff no match exists.
    Anti,
}

/// Nested-loop join driven by inner-index lookups (MySQL's NL join; the
/// plan shape of Q4/Q19 in §VII).
#[derive(Clone, Debug)]
pub struct LookupJoinNode {
    pub outer: Box<Plan>,
    pub table: String,
    pub index: usize,
    /// Positions in the outer row forming the inner index key prefix.
    pub outer_key_cols: Vec<usize>,
    /// Extra predicate over (outer row ++ inner row) columns: outer
    /// positions first, then inner `output` positions.
    pub on: Option<Expr>,
    /// Inner table columns appended to matching output rows.
    pub inner_output: Vec<usize>,
    pub join: JoinType,
    /// Inner-side access predicate (inner table columns).
    pub inner_predicate: Vec<Expr>,
}

/// Hash join; build side is the right child.
#[derive(Clone, Debug)]
pub struct HashJoinNode {
    pub left: Box<Plan>,
    pub right: Box<Plan>,
    pub left_keys: Vec<usize>,
    pub right_keys: Vec<usize>,
    pub join: JoinType,
}

/// Generic hash aggregation over any input.
#[derive(Clone, Debug)]
pub struct HashAggNode {
    pub input: Box<Plan>,
    /// Group expressions over the input row (empty = scalar).
    pub group: Vec<Expr>,
    pub aggs: Vec<AggItem>,
}

#[derive(Clone, Debug)]
pub struct ProjectNode {
    pub input: Box<Plan>,
    pub exprs: Vec<Expr>,
}

#[derive(Clone, Debug)]
pub struct FilterNode {
    pub input: Box<Plan>,
    pub predicate: Expr,
}

#[derive(Clone, Debug)]
pub struct SortNode {
    pub input: Box<Plan>,
    /// (position, descending).
    pub keys: Vec<(usize, bool)>,
    pub limit: Option<usize>,
}

/// Parallel query (§VI): run `child` over `degree` partitions of its
/// (outer-most) scan, merging at the leader. Supported children: `Scan`,
/// `AggScan`, `HashAgg(Scan)`, `LookupJoin` with a `Scan` outer.
#[derive(Clone, Debug)]
pub struct ExchangeNode {
    pub child: Box<Plan>,
    pub degree: usize,
}

/// A query plan.
#[derive(Clone, Debug)]
pub enum Plan {
    Scan(ScanNode),
    AggScan(AggScanNode),
    LookupJoin(LookupJoinNode),
    HashJoin(HashJoinNode),
    HashAgg(HashAggNode),
    Project(ProjectNode),
    Filter(FilterNode),
    Sort(SortNode),
    Limit { input: Box<Plan>, n: usize },
    Exchange(ExchangeNode),
}

impl Plan {
    pub fn project(self, exprs: Vec<Expr>) -> Plan {
        Plan::Project(ProjectNode {
            input: Box::new(self),
            exprs,
        })
    }

    pub fn filter(self, predicate: Expr) -> Plan {
        Plan::Filter(FilterNode {
            input: Box::new(self),
            predicate,
        })
    }

    pub fn sort(self, keys: Vec<(usize, bool)>) -> Plan {
        Plan::Sort(SortNode {
            input: Box::new(self),
            keys,
            limit: None,
        })
    }

    pub fn top_n(self, keys: Vec<(usize, bool)>, n: usize) -> Plan {
        Plan::Sort(SortNode {
            input: Box::new(self),
            keys,
            limit: Some(n),
        })
    }

    pub fn limit(self, n: usize) -> Plan {
        Plan::Limit {
            input: Box::new(self),
            n,
        }
    }

    pub fn exchange(self, degree: usize) -> Plan {
        Plan::Exchange(ExchangeNode {
            child: Box::new(self),
            degree,
        })
    }

    // The static output width of a plan lives in the verifier
    // (`taurus_verify::plan_width`), derived from the same structural
    // walk as the full schema inference — one definition, not two.

    /// Visit every scan node mutably (the NDP pass and tests use this).
    pub fn for_each_scan_mut(&mut self, f: &mut impl FnMut(&mut ScanNode, bool)) {
        match self {
            Plan::Scan(s) => f(s, false),
            Plan::AggScan(a) => f(&mut a.scan, true),
            Plan::LookupJoin(j) => j.outer.for_each_scan_mut(f),
            Plan::HashJoin(j) => {
                j.left.for_each_scan_mut(f);
                j.right.for_each_scan_mut(f);
            }
            Plan::HashAgg(a) => a.input.for_each_scan_mut(f),
            Plan::Project(p) => p.input.for_each_scan_mut(f),
            Plan::Filter(p) => p.input.for_each_scan_mut(f),
            Plan::Sort(s) => s.input.for_each_scan_mut(f),
            Plan::Limit { input, .. } => input.for_each_scan_mut(f),
            Plan::Exchange(e) => e.child.for_each_scan_mut(f),
        }
    }

    /// Visit every scan node immutably.
    pub fn for_each_scan(&self, f: &mut impl FnMut(&ScanNode, bool)) {
        match self {
            Plan::Scan(s) => f(s, false),
            Plan::AggScan(a) => f(&a.scan, true),
            Plan::LookupJoin(j) => j.outer.for_each_scan(f),
            Plan::HashJoin(j) => {
                j.left.for_each_scan(f);
                j.right.for_each_scan(f);
            }
            Plan::HashAgg(a) => a.input.for_each_scan(f),
            Plan::Project(p) => p.input.for_each_scan(f),
            Plan::Filter(p) => p.input.for_each_scan(f),
            Plan::Sort(s) => s.input.for_each_scan(f),
            Plan::Limit { input, .. } => input.for_each_scan(f),
            Plan::Exchange(e) => e.child.for_each_scan(f),
        }
    }
}
