//! The query optimizer layer: programmatic plan construction, the §IV-B
//! NDP post-processing pass, selectivity estimation, and EXPLAIN output
//! shaped like the paper's Listing 2.

pub mod explain;
pub mod ndp_post;
pub mod plan;

pub use explain::{explain, explain_physical};
pub use ndp_post::{estimate_filter_factor, ndp_post_process, NdpReport};
pub use plan::{
    AggFuncEx, AggItem, AggScanNode, ExchangeNode, FilterNode, HashAggNode, HashJoinNode, JoinType,
    LookupJoinNode, NdpDecision, Plan, ProjectNode, RangeSpec, ScanNode, SortNode,
};
