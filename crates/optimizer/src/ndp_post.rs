//! The NDP post-processing step (§IV-B).
//!
//! Taurus deliberately does *not* fold NDP into plan enumeration: "finalize
//! a query plan without considering NDP, and then consider enabling NDP for
//! each of the table accesses in the plan." This pass is that step. For
//! each access it decides, independently (§III: "the three decisions are
//! taken independently"):
//!
//! * **predicate pushdown** — only allow-listed operators/types (§V-B1),
//!   only if the estimated filter factor is good enough;
//! * **column projection** — only if the width reduction clears the
//!   threshold (§V-A);
//! * **aggregation** — only on an [`crate::plan::AggScanNode`] (the last
//!   and only table of its block) with no residual predicates, bare-column
//!   inputs, and an index-satisfied GROUP BY (§V-C);
//!
//! all gated by the *estimated physical I/O* rule: "NDP is enabled on a
//! scan only if the scan is estimated to cause at least 10,000 pages of
//! I/O", where pages already resident in the buffer pool do not count
//! (§VII-C footnote 4 — the reason Q11/Q17/Q19/Q20 see no NDP).

use taurus_common::{DataType, Result, Value};
use taurus_expr::agg::AggSpec;
use taurus_expr::ast::{CmpOp, Expr};
use taurus_ndp::{NdpChoice, ScanAggregation, TableStats, TaurusDb};

use crate::plan::{AggScanNode, NdpDecision, Plan, RangeSpec, ScanNode};

/// Why a table access did or did not get each NDP feature (EXPLAIN food).
#[derive(Clone, Debug, Default)]
pub struct NdpReport {
    pub table: String,
    pub est_io_pages: f64,
    pub cached_pages: u64,
    pub gated_by_io: bool,
    pub pushed_predicates: usize,
    pub filter_factor: f64,
    pub projection: bool,
    pub width_ratio: f64,
    pub aggregation: bool,
}

/// Run the pass over a finalized plan. Returns one report per table access
/// (pre-order).
pub fn ndp_post_process(plan: &mut Plan, db: &TaurusDb) -> Result<Vec<NdpReport>> {
    let mut reports = Vec::new();
    process(plan, db, &mut reports)?;
    Ok(reports)
}

fn process(plan: &mut Plan, db: &TaurusDb, out: &mut Vec<NdpReport>) -> Result<()> {
    match plan {
        Plan::Scan(s) => {
            let r = decide_scan(s, None, db)?;
            out.push(r);
        }
        Plan::AggScan(a) => {
            let AggScanNode {
                scan,
                group_cols,
                aggs,
            } = a;
            let r = decide_scan(scan, Some((group_cols, aggs)), db)?;
            out.push(r);
        }
        Plan::LookupJoin(j) => process(&mut j.outer, db, out)?,
        Plan::HashJoin(j) => {
            process(&mut j.left, db, out)?;
            process(&mut j.right, db, out)?;
        }
        Plan::HashAgg(a) => process(&mut a.input, db, out)?,
        Plan::Project(p) => process(&mut p.input, db, out)?,
        Plan::Filter(p) => process(&mut p.input, db, out)?,
        Plan::Sort(s) => process(&mut s.input, db, out)?,
        Plan::Limit { input, .. } => process(input, db, out)?,
        Plan::Exchange(e) => process(&mut e.child, db, out)?,
    }
    Ok(())
}

#[allow(clippy::type_complexity)]
fn decide_scan(
    node: &mut ScanNode,
    agg: Option<(&Vec<usize>, &Vec<crate::plan::AggItem>)>,
    db: &TaurusDb,
) -> Result<NdpReport> {
    let cfg = db.config().ndp.clone();
    let table = db.table(&node.table)?;
    let idx = table.index(node.index);
    let stats = table.stats.read().clone();
    let mut report = NdpReport {
        table: node.table.clone(),
        ..Default::default()
    };
    node.ndp = None;
    if !cfg.enabled {
        return Ok(report);
    }

    // --- the I/O gate ------------------------------------------------------
    let leaves = idx.tree.n_leaves() as f64;
    let range_frac = estimate_range_fraction(&node.range, node, &table, &stats);
    let cached = idx
        .store
        .buffer_pool()
        .count_pages_in_space(idx.tree.def.space)
        .min(idx.tree.n_leaves() as usize) as f64;
    // Cached pages reduce expected physical I/O uniformly over the range.
    let est_io = (leaves * range_frac - cached * range_frac).max(0.0);
    report.est_io_pages = est_io;
    report.cached_pages = cached as u64;
    if est_io < cfg.min_io_pages as f64 {
        report.gated_by_io = true;
        return Ok(report);
    }

    let dtypes: Vec<DataType> = table.schema.dtypes();
    let mut choice = NdpChoice::default();
    let mut pushed: Vec<usize> = Vec::new();

    // --- predicate pushdown (§V-B1) ----------------------------------------
    let eligible: Vec<usize> = node
        .predicate
        .iter()
        .enumerate()
        .filter(|(_, e)| e.is_ndp_supported(&dtypes) && taurus_expr::compile::lower(e).is_ok())
        .map(|(i, _)| i)
        .collect();
    if !eligible.is_empty() {
        let ff: f64 = eligible
            .iter()
            .map(|&i| estimate_filter_factor(&node.predicate[i], &table, &stats))
            .product::<f64>()
            .clamp(0.0005, 1.0);
        report.filter_factor = ff;
        if ff <= cfg.predicate_max_filter_factor {
            let conjuncts: Vec<Expr> = eligible
                .iter()
                .map(|&i| node.predicate[i].clone())
                .collect();
            choice.predicate = Some(Expr::and(conjuncts));
            pushed = eligible;
            report.pushed_predicates = pushed.len();
        }
    }

    // --- projection (§V-A) ---------------------------------------------------
    // Needed: declared outputs + columns of residual conjuncts.
    let mut needed: Vec<usize> = node.output.clone();
    for (i, e) in node.predicate.iter().enumerate() {
        if !pushed.contains(&i) {
            needed.extend(e.columns());
        }
    }
    for &k in &table.schema.pk {
        needed.push(k);
    }
    needed.sort_unstable();
    needed.dedup();
    let full_width: f64 = stats
        .columns
        .iter()
        .map(|c| c.avg_width.max(1.0))
        .sum::<f64>()
        .max(1.0);
    let kept_width: f64 = needed
        .iter()
        .map(|&c| {
            stats
                .columns
                .get(c)
                .map(|s| s.avg_width.max(1.0))
                .unwrap_or(8.0)
        })
        .sum();
    report.width_ratio = kept_width / full_width;
    // Only meaningful when this index stores more than what we need.
    let stored = idx.tree.def.stored_cols();
    let narrowing_possible = needed.len() < stored.len();
    if narrowing_possible && report.width_ratio <= cfg.projection_width_threshold {
        let keep: Vec<usize> = needed
            .iter()
            .copied()
            .filter(|c| stored.contains(c))
            .collect();
        choice.projection = Some(keep);
        report.projection = true;
    }

    // --- aggregation (§V-C) ---------------------------------------------------
    if let Some((group_cols, aggs)) = agg {
        let residual_empty = pushed.len() == node.predicate.len();
        let range_covered =
            matches!((&node.range.lower, &node.range.upper), (None, None)) || !pushed.is_empty();
        let inputs_are_columns = aggs.iter().all(|a| {
            let col_input = matches!(&a.input, None | Some(Expr::Col(_)));
            // AVG decomposes into SUM + COUNT ("the calculation of AVG is
            // pushed down as well", §III) — pushable iff its input is a
            // bare column.
            col_input
                && (a.func.storage_func().is_some()
                    || (a.func == crate::plan::AggFuncEx::Avg && a.input.is_some()))
        });
        let key_cols = &idx.tree.def.key_cols;
        let group_is_prefix = group_cols.len() <= key_cols.len()
            && group_cols.iter().zip(key_cols.iter()).all(|(a, b)| a == b);
        if residual_empty && range_covered && inputs_are_columns && group_is_prefix {
            let mut specs: Vec<AggSpec> = Vec::with_capacity(aggs.len());
            for a in aggs {
                let col = a.input.as_ref().map(|e| match e {
                    Expr::Col(c) => *c as u16,
                    _ => unreachable!("checked"),
                });
                match a.func.storage_func() {
                    Some(f) => specs.push(AggSpec { func: f, col }),
                    None => {
                        // AVG -> SUM + COUNT pair.
                        let c = col.expect("checked");
                        specs.push(AggSpec {
                            func: taurus_expr::agg::AggFunc::Sum,
                            col: Some(c),
                        });
                        specs.push(AggSpec {
                            func: taurus_expr::agg::AggFunc::Count,
                            col: Some(c),
                        });
                    }
                }
            }
            choice.aggregation = Some(ScanAggregation {
                specs,
                group_cols: group_cols.clone(),
            });
            report.aggregation = true;
            // Group columns must survive projection for the carrier rows.
            if let Some(keep) = &mut choice.projection {
                for g in group_cols {
                    if !keep.contains(g) {
                        keep.push(*g);
                    }
                }
                keep.sort_unstable();
            }
        }
    }

    if !choice.is_empty() {
        node.ndp = Some(NdpDecision { choice, pushed });
    }
    Ok(report)
}

/// Fraction of the index the range covers (1.0 = full scan).
fn estimate_range_fraction(
    range: &RangeSpec,
    node: &ScanNode,
    table: &taurus_ndp::Table,
    stats: &TableStats,
) -> f64 {
    if range.lower.is_none() && range.upper.is_none() {
        return 1.0;
    }
    // Point access?
    if let (Some((lo, _)), Some((hi, _))) = (&range.lower, &range.upper) {
        if lo == hi {
            let key_cols = &table.index(node.index).tree.def.key_cols;
            if lo.len() == key_cols.len() {
                return (1.0 / stats.row_count.max(1) as f64).min(1.0);
            }
        }
    }
    // First-column interpolation.
    let idx = table.index(node.index);
    let first_key_col = idx.tree.def.key_cols[0];
    let cs = match stats.columns.get(first_key_col) {
        Some(c) => c,
        None => return 0.3,
    };
    let (Some(min), Some(max)) = (&cs.min, &cs.max) else {
        return 0.3;
    };
    let (Some(min), Some(max)) = (value_as_f64(min), value_as_f64(max)) else {
        return 0.3;
    };
    if max <= min {
        return 1.0;
    }
    let lo = range
        .lower
        .as_ref()
        .and_then(|(v, _)| v.first())
        .and_then(value_as_f64)
        .unwrap_or(min);
    let hi = range
        .upper
        .as_ref()
        .and_then(|(v, _)| v.first())
        .and_then(value_as_f64)
        .unwrap_or(max);
    ((hi - lo) / (max - min)).clamp(0.001, 1.0)
}

fn value_as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Int(x) => Some(*x as f64),
        Value::Decimal(d) => Some(d.to_f64()),
        Value::Date(d) => Some(d.0 as f64),
        Value::Double(x) => Some(*x),
        _ => None,
    }
}

/// Estimate the fraction of rows satisfying `e` ("the optimizer then
/// calculates the filter factors of the predicates", §V-B1).
#[allow(clippy::only_used_in_recursion)] // `table` is part of the public signature
pub fn estimate_filter_factor(e: &Expr, table: &taurus_ndp::Table, stats: &TableStats) -> f64 {
    match e {
        Expr::And(xs) => xs
            .iter()
            .map(|x| estimate_filter_factor(x, table, stats))
            .product::<f64>()
            .clamp(0.0, 1.0),
        Expr::Or(xs) => xs
            .iter()
            .map(|x| estimate_filter_factor(x, table, stats))
            .sum::<f64>()
            .clamp(0.0, 1.0),
        Expr::Not(x) => 1.0 - estimate_filter_factor(x, table, stats),
        Expr::Cmp(op, a, b) => {
            let (col, lit, op) = match (&**a, &**b) {
                (Expr::Col(c), Expr::Lit(v)) => (*c, v.clone(), *op),
                (Expr::Lit(v), Expr::Col(c)) => (*c, v.clone(), op.flip()),
                _ => return 0.33,
            };
            let cs = match stats.columns.get(col) {
                Some(c) => c,
                None => return 0.33,
            };
            match op {
                CmpOp::Eq => 1.0 / cs.ndv.max(1) as f64,
                CmpOp::Ne => 1.0 - 1.0 / cs.ndv.max(1) as f64,
                CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
                    let (Some(min), Some(max)) = (&cs.min, &cs.max) else {
                        return 0.33;
                    };
                    let (Some(min), Some(max), Some(v)) =
                        (value_as_f64(min), value_as_f64(max), value_as_f64(&lit))
                    else {
                        return 0.33;
                    };
                    if max <= min {
                        return 0.5;
                    }
                    let frac = ((v - min) / (max - min)).clamp(0.0, 1.0);
                    match op {
                        CmpOp::Lt | CmpOp::Le => frac.max(0.001),
                        _ => (1.0 - frac).max(0.001),
                    }
                }
            }
        }
        Expr::Between { expr, lo, hi } => {
            let a =
                estimate_filter_factor(&Expr::ge((**expr).clone(), (**lo).clone()), table, stats);
            let b =
                estimate_filter_factor(&Expr::le((**expr).clone(), (**hi).clone()), table, stats);
            (a + b - 1.0).clamp(0.001, 1.0)
        }
        Expr::InList { list, negated, .. } => {
            let base = (list.len() as f64 * 0.05).clamp(0.01, 0.9);
            if *negated {
                1.0 - base
            } else {
                base
            }
        }
        Expr::Like {
            pattern, negated, ..
        } => {
            let base = if pattern.starts_with('%') { 0.09 } else { 0.05 };
            if *negated {
                1.0 - base
            } else {
                base
            }
        }
        Expr::IsNull { negated, .. } => {
            if *negated {
                0.95
            } else {
                0.05
            }
        }
        _ => 0.33,
    }
}
