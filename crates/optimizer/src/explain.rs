//! EXPLAIN output, shaped like the paper's Listing 2: table accesses that
//! received NDP annotations print `Using pushed NDP condition (...)`,
//! `Using pushed NDP columns`, and `Using pushed NDP aggregate`.
//!
//! Alongside the logical tree, EXPLAIN renders the **physical operator
//! pipeline** the executor lowers the plan to ([`explain_physical`]):
//! one line per pull operator with the configured batch size and, for
//! scan leaves, the NDP decision. The mapping is the executor's `lower`
//! pass verbatim — Scan→BatchScan, Sort(+limit)→TopN,
//! Exchange→Gather, …

use taurus_expr::ast::Expr;
use taurus_ndp::TaurusDb;

use crate::plan::{Plan, ScanNode};

/// Render a plan: the logical tree with NDP annotations, followed by the
/// lowered physical operator pipeline.
pub fn explain(plan: &Plan, db: &TaurusDb) -> String {
    let mut out = String::new();
    render(plan, db, 0, &mut out);
    out.push_str(&explain_physical(plan, db));
    out
}

/// Render only the physical operator pipeline the plan lowers to.
pub fn explain_physical(plan: &Plan, db: &TaurusDb) -> String {
    let mut out = format!(
        "Physical pipeline (batch = {} rows):\n",
        db.config().scan_batch_rows.max(1)
    );
    render_physical(plan, db, 0, &mut out);
    out
}

fn render_physical(plan: &Plan, db: &TaurusDb, depth: usize, out: &mut String) {
    pad(depth, out);
    match plan {
        Plan::Scan(s) => {
            out.push_str(&format!(
                "BatchScan on {} via {}{}\n",
                s.table,
                index_name(s, db),
                ndp_tag(s)
            ));
        }
        Plan::AggScan(a) => {
            out.push_str(&format!(
                "AggScan on {} via {}{}\n",
                a.scan.table,
                index_name(&a.scan, db),
                ndp_tag(&a.scan)
            ));
        }
        Plan::LookupJoin(j) => {
            out.push_str(&format!(
                "LookupJoin ({:?}, inner {}, streamed outer)\n",
                j.join, j.table
            ));
            render_physical(&j.outer, db, depth + 1, out);
        }
        Plan::HashJoin(j) => {
            out.push_str(&format!(
                "HashJoin ({:?}, build right, streamed probe)\n",
                j.join
            ));
            render_physical(&j.left, db, depth + 1, out);
            render_physical(&j.right, db, depth + 1, out);
        }
        Plan::HashAgg(a) => {
            out.push_str("HashAgg (breaker)\n");
            render_physical(&a.input, db, depth + 1, out);
        }
        Plan::Project(p) => {
            out.push_str("Project\n");
            render_physical(&p.input, db, depth + 1, out);
        }
        Plan::Filter(f) => {
            out.push_str("Filter\n");
            render_physical(&f.input, db, depth + 1, out);
        }
        Plan::Sort(s) => {
            match s.limit {
                Some(n) => out.push_str(&format!("TopN({n}) (breaker)\n")),
                None => out.push_str("Sort (breaker)\n"),
            }
            render_physical(&s.input, db, depth + 1, out);
        }
        Plan::Limit { input, n } => {
            out.push_str(&format!("Limit({n}) (early-stop)\n"));
            render_physical(input, db, depth + 1, out);
        }
        Plan::Exchange(e) => {
            out.push_str(&format!("Gather (degree {}, breaker)\n", e.degree));
            render_physical(&e.child, db, depth + 1, out);
        }
    }
}

/// The chosen index's name (falls back to its ordinal when the table is
/// unknown to this catalog).
fn index_name(s: &ScanNode, db: &TaurusDb) -> String {
    db.table(&s.table)
        .ok()
        .map(|t| t.index(s.index).tree.def.name.clone())
        .unwrap_or_else(|| format!("#{}", s.index))
}

/// The NDP decision annotation on a physical scan leaf.
fn ndp_tag(s: &ScanNode) -> String {
    match &s.ndp {
        None => " [classical]".to_string(),
        Some(d) => {
            let mut parts: Vec<&str> = Vec::new();
            if d.choice.predicate.is_some() {
                parts.push("predicate");
            }
            if d.choice.projection.is_some() {
                parts.push("projection");
            }
            if d.choice.aggregation.is_some() {
                parts.push("aggregation");
            }
            if parts.is_empty() {
                " [classical]".to_string()
            } else {
                format!(" [ndp: {}]", parts.join("+"))
            }
        }
    }
}

fn pad(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("    ");
    }
    out.push_str("-> ");
}

fn line(depth: usize, out: &mut String, s: &str) {
    for _ in 0..depth {
        out.push_str("    ");
    }
    out.push_str("   ");
    out.push_str(s);
    out.push('\n');
}

/// Rewrite `colN` references into real column names for readability.
fn pretty_expr(e: &Expr, db: &TaurusDb, table: &str) -> String {
    let mut s = e.to_string();
    if let Ok(t) = db.table(table) {
        // Replace longest indexes first so col12 is not clobbered by col1.
        let mut order: Vec<usize> = (0..t.schema.columns.len()).collect();
        order.sort_by_key(|i| std::cmp::Reverse(*i));
        for i in order {
            s = s.replace(&format!("col{i}"), &t.schema.columns[i].name);
        }
    }
    s
}

fn render_scan(s: &ScanNode, db: &TaurusDb, depth: usize, out: &mut String, agg: bool) {
    pad(depth, out);
    let index_name = db
        .table(&s.table)
        .ok()
        .map(|t| t.index(s.index).tree.def.name.clone())
        .unwrap_or_else(|| format!("#{}", s.index));
    let kind = if s.range.lower.is_none() && s.range.upper.is_none() {
        "Index scan"
    } else {
        "Index range scan"
    };
    out.push_str(&format!("{kind} on {} using {index_name}\n", s.table));
    match &s.ndp {
        Some(d) => {
            if let Some(p) = &d.choice.predicate {
                line(
                    depth,
                    out,
                    &format!(
                        "Using pushed NDP condition {}",
                        pretty_expr(p, db, &s.table)
                    ),
                );
            }
            if d.choice.projection.is_some() {
                line(depth, out, "Using pushed NDP columns");
            }
            if d.choice.aggregation.is_some() {
                line(depth, out, "Using pushed NDP aggregate");
            }
            let residual = s.residual_conjuncts();
            if !residual.is_empty() {
                let txt = residual
                    .iter()
                    .map(|e| pretty_expr(e, db, &s.table))
                    .collect::<Vec<_>>()
                    .join(" AND ");
                line(depth, out, &format!("Residual condition: {txt}"));
            }
        }
        None => {
            if !s.predicate.is_empty() {
                let txt = s
                    .predicate
                    .iter()
                    .map(|e| pretty_expr(e, db, &s.table))
                    .collect::<Vec<_>>()
                    .join(" AND ");
                line(depth, out, &format!("Condition: {txt}"));
            }
        }
    }
    if agg {
        line(depth, out, "Aggregate during scan");
    }
}

fn render(plan: &Plan, db: &TaurusDb, depth: usize, out: &mut String) {
    match plan {
        Plan::Scan(s) => render_scan(s, db, depth, out, false),
        Plan::AggScan(a) => render_scan(&a.scan, db, depth, out, true),
        Plan::LookupJoin(j) => {
            pad(depth, out);
            out.push_str(&format!(
                "Nested-loop {:?} join: lookup {} per outer row\n",
                j.join, j.table
            ));
            render(&j.outer, db, depth + 1, out);
        }
        Plan::HashJoin(j) => {
            pad(depth, out);
            out.push_str(&format!("Hash {:?} join\n", j.join));
            render(&j.left, db, depth + 1, out);
            render(&j.right, db, depth + 1, out);
        }
        Plan::HashAgg(a) => {
            pad(depth, out);
            out.push_str(&format!(
                "Aggregate ({} groups cols, {} aggs)\n",
                a.group.len(),
                a.aggs.len()
            ));
            render(&a.input, db, depth + 1, out);
        }
        Plan::Project(p) => {
            pad(depth, out);
            out.push_str("Project\n");
            render(&p.input, db, depth + 1, out);
        }
        Plan::Filter(f) => {
            pad(depth, out);
            out.push_str("Filter\n");
            render(&f.input, db, depth + 1, out);
        }
        Plan::Sort(s) => {
            pad(depth, out);
            match s.limit {
                Some(n) => out.push_str(&format!("Sort (top {n})\n")),
                None => out.push_str("Sort\n"),
            }
            render(&s.input, db, depth + 1, out);
        }
        Plan::Limit { input, n } => {
            pad(depth, out);
            out.push_str(&format!("Limit {n}\n"));
            render(input, db, depth + 1, out);
        }
        Plan::Exchange(e) => {
            pad(depth, out);
            out.push_str(&format!("Gather (parallel query, degree {})\n", e.degree));
            render(&e.child, db, depth + 1, out);
        }
    }
}
