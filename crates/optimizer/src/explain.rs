//! EXPLAIN output, shaped like the paper's Listing 2: table accesses that
//! received NDP annotations print `Using pushed NDP condition (...)`,
//! `Using pushed NDP columns`, and `Using pushed NDP aggregate`.

use taurus_expr::ast::Expr;
use taurus_ndp::TaurusDb;

use crate::plan::{Plan, ScanNode};

/// Render a plan tree with NDP annotations.
pub fn explain(plan: &Plan, db: &TaurusDb) -> String {
    let mut out = String::new();
    render(plan, db, 0, &mut out);
    out
}

fn pad(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("    ");
    }
    out.push_str("-> ");
}

fn line(depth: usize, out: &mut String, s: &str) {
    for _ in 0..depth {
        out.push_str("    ");
    }
    out.push_str("   ");
    out.push_str(s);
    out.push('\n');
}

/// Rewrite `colN` references into real column names for readability.
fn pretty_expr(e: &Expr, db: &TaurusDb, table: &str) -> String {
    let mut s = e.to_string();
    if let Ok(t) = db.table(table) {
        // Replace longest indexes first so col12 is not clobbered by col1.
        let mut order: Vec<usize> = (0..t.schema.columns.len()).collect();
        order.sort_by_key(|i| std::cmp::Reverse(*i));
        for i in order {
            s = s.replace(&format!("col{i}"), &t.schema.columns[i].name);
        }
    }
    s
}

fn render_scan(s: &ScanNode, db: &TaurusDb, depth: usize, out: &mut String, agg: bool) {
    pad(depth, out);
    let index_name = db
        .table(&s.table)
        .ok()
        .map(|t| t.index(s.index).tree.def.name.clone())
        .unwrap_or_else(|| format!("#{}", s.index));
    let kind = if s.range.lower.is_none() && s.range.upper.is_none() {
        "Index scan"
    } else {
        "Index range scan"
    };
    out.push_str(&format!("{kind} on {} using {index_name}\n", s.table));
    match &s.ndp {
        Some(d) => {
            if let Some(p) = &d.choice.predicate {
                line(
                    depth,
                    out,
                    &format!(
                        "Using pushed NDP condition {}",
                        pretty_expr(p, db, &s.table)
                    ),
                );
            }
            if d.choice.projection.is_some() {
                line(depth, out, "Using pushed NDP columns");
            }
            if d.choice.aggregation.is_some() {
                line(depth, out, "Using pushed NDP aggregate");
            }
            let residual = s.residual_conjuncts();
            if !residual.is_empty() {
                let txt = residual
                    .iter()
                    .map(|e| pretty_expr(e, db, &s.table))
                    .collect::<Vec<_>>()
                    .join(" AND ");
                line(depth, out, &format!("Residual condition: {txt}"));
            }
        }
        None => {
            if !s.predicate.is_empty() {
                let txt = s
                    .predicate
                    .iter()
                    .map(|e| pretty_expr(e, db, &s.table))
                    .collect::<Vec<_>>()
                    .join(" AND ");
                line(depth, out, &format!("Condition: {txt}"));
            }
        }
    }
    if agg {
        line(depth, out, "Aggregate during scan");
    }
}

fn render(plan: &Plan, db: &TaurusDb, depth: usize, out: &mut String) {
    match plan {
        Plan::Scan(s) => render_scan(s, db, depth, out, false),
        Plan::AggScan(a) => render_scan(&a.scan, db, depth, out, true),
        Plan::LookupJoin(j) => {
            pad(depth, out);
            out.push_str(&format!(
                "Nested-loop {:?} join: lookup {} per outer row\n",
                j.join, j.table
            ));
            render(&j.outer, db, depth + 1, out);
        }
        Plan::HashJoin(j) => {
            pad(depth, out);
            out.push_str(&format!("Hash {:?} join\n", j.join));
            render(&j.left, db, depth + 1, out);
            render(&j.right, db, depth + 1, out);
        }
        Plan::HashAgg(a) => {
            pad(depth, out);
            out.push_str(&format!(
                "Aggregate ({} groups cols, {} aggs)\n",
                a.group.len(),
                a.aggs.len()
            ));
            render(&a.input, db, depth + 1, out);
        }
        Plan::Project(p) => {
            pad(depth, out);
            out.push_str("Project\n");
            render(&p.input, db, depth + 1, out);
        }
        Plan::Filter(f) => {
            pad(depth, out);
            out.push_str("Filter\n");
            render(&f.input, db, depth + 1, out);
        }
        Plan::Sort(s) => {
            pad(depth, out);
            match s.limit {
                Some(n) => out.push_str(&format!("Sort (top {n})\n")),
                None => out.push_str("Sort\n"),
            }
            render(&s.input, db, depth + 1, out);
        }
        Plan::Limit { input, n } => {
            pad(depth, out);
            out.push_str(&format!("Limit {n}\n"));
            render(input, db, depth + 1, out);
        }
        Plan::Exchange(e) => {
            pad(depth, out);
            out.push_str(&format!("Gather (parallel query, degree {})\n", e.degree));
            render(&e.child, db, depth + 1, out);
        }
    }
}
