//! End-to-end NDP scan correctness: the central invariant is that a scan
//! with NDP enabled produces *exactly* the rows and aggregates of the
//! classical scan — under filtering, projection, aggregation, resource-
//! control skips, buffer-pool overlap, MVCC with concurrent writers, and
//! range boundaries.

use std::sync::Arc;

use taurus_common::schema::{Column, TableSchema};
use taurus_common::{ClusterConfig, DataType, Date32, Dec, Value};
use taurus_expr::agg::{AggSpec, AggState};
use taurus_expr::ast::Expr;
use taurus_ndp::{scan, NdpChoice, ScanAggregation, ScanConsumer, ScanRange, ScanSpec, TaurusDb};
use taurus_pagestore::SkipPolicy;

fn schema() -> Arc<TableSchema> {
    TableSchema::new(
        "orders_like",
        vec![
            Column::new("grp", DataType::BigInt), // 0: group key (pk prefix)
            Column::new("id", DataType::BigInt),  // 1: pk suffix
            Column::new("qty", DataType::Int),    // 2
            Column::new(
                "price",
                DataType::Decimal {
                    precision: 15,
                    scale: 2,
                },
            ), // 3
            Column::new("d", DataType::Date),     // 4
            Column::new("mode", DataType::Char(10)), // 5
            Column::new("note", DataType::Varchar(40)), // 6
        ],
        vec![0, 1],
    )
}

fn sample_rows(n: i64) -> Vec<Vec<Value>> {
    let modes = ["MAIL", "SHIP", "AIR", "RAIL", "TRUCK"];
    (0..n)
        .map(|i| {
            vec![
                Value::Int(i / 50),
                Value::Int(i),
                Value::Int((i * 7) % 50),
                Value::Decimal(Dec::new(((i % 1000) * 100 + 25) as i128, 2)),
                Value::Date(Date32::from_ymd(1994, 1, 1).add_days((i % 730) as i32)),
                Value::str(modes[(i % 5) as usize]),
                Value::str(format!("note for row {i} with some padding")),
            ]
        })
        .collect()
}

fn fresh_db(rows: i64) -> (Arc<TaurusDb>, Arc<taurus_ndp::Table>) {
    let mut cfg = ClusterConfig::small_for_tests();
    cfg.page_size = 2048;
    cfg.buffer_pool_pages = 32; // small: most pages are NOT cached
    cfg.slice_pages = 16;
    cfg.ndp.max_pages_look_ahead = 11; // odd: exercises resume paths
    let db = TaurusDb::new(cfg);
    let t = db.create_table(schema(), &[]).unwrap();
    db.bulk_load(&t, sample_rows(rows)).unwrap();
    db.buffer_pool().clear(); // cold start
    (db, t)
}

/// Collects rows and merges partials onto running aggregate states.
struct Collector {
    rows: Vec<Vec<Value>>,
    agg: Option<(Vec<AggSpec>, Vec<AggState>, Vec<usize>)>, // specs, states, input cols (row-relative)
    stop_after: Option<usize>,
}

impl Collector {
    fn plain() -> Collector {
        Collector {
            rows: Vec::new(),
            agg: None,
            stop_after: None,
        }
    }

    /// Aggregating collector: `inputs[i]` = position in the delivered row
    /// of the i-th aggregate's input (usize::MAX for COUNT(*)).
    fn aggregating(
        specs: Vec<AggSpec>,
        inputs: Vec<usize>,
        dtypes: Vec<Option<DataType>>,
    ) -> Collector {
        let states = specs
            .iter()
            .zip(&dtypes)
            .map(|(s, dt)| AggState::new(s, *dt))
            .collect();
        Collector {
            rows: Vec::new(),
            agg: Some((specs, states, inputs)),
            stop_after: None,
        }
    }
}

impl ScanConsumer for Collector {
    fn on_row(&mut self, row: &[Value]) -> taurus_common::Result<bool> {
        if let Some((_, states, inputs)) = &mut self.agg {
            for (st, &inp) in states.iter_mut().zip(inputs.iter()) {
                if inp == usize::MAX {
                    st.update(&Value::Int(1));
                } else {
                    st.update(&row[inp]);
                }
            }
        }
        self.rows.push(row.to_vec());
        if let Some(n) = self.stop_after {
            return Ok(self.rows.len() < n);
        }
        Ok(true)
    }

    fn on_partial(&mut self, states: Vec<AggState>) -> taurus_common::Result<bool> {
        let (_, mine, _) = self.agg.as_mut().expect("partials only in agg scans");
        for (m, s) in mine.iter_mut().zip(&states) {
            m.merge(s).unwrap();
        }
        Ok(true)
    }
}

fn run(db: &TaurusDb, t: &taurus_ndp::Table, spec: &ScanSpec, mut c: Collector) -> Collector {
    let view = db.read_view(0);
    scan(db, t, spec, &view, &mut c).unwrap();
    c
}

fn q6ish_predicate() -> Expr {
    Expr::and(vec![
        Expr::ge(Expr::col(4), Expr::date("1994-06-01")),
        Expr::lt(Expr::col(4), Expr::date("1995-06-01")),
        Expr::lt(Expr::col(2), Expr::int(25)),
    ])
}

#[test]
fn filter_pushdown_matches_classical() {
    let (db, t) = fresh_db(4000);
    let base = ScanSpec {
        index: 0,
        range: ScanRange::full(),
        ndp: None,
        output_cols: vec![0, 1, 2, 3, 4, 5, 6],
    };
    // Classical: scan all, filter on the compute node.
    let all = run(&db, &t, &base, Collector::plain());
    let pred = q6ish_predicate();
    let expected: Vec<Vec<Value>> = all
        .rows
        .iter()
        .filter(|r| taurus_expr::eval::eval_pred(&pred, r).unwrap() == Some(true))
        .cloned()
        .collect();
    assert!(!expected.is_empty() && expected.len() < all.rows.len());

    db.buffer_pool().clear();
    let ndp_spec = ScanSpec {
        ndp: Some(NdpChoice {
            predicate: Some(pred),
            ..Default::default()
        }),
        ..base
    };
    let before = db.metrics().snapshot();
    let got = run(&db, &t, &ndp_spec, Collector::plain());
    let delta = db.metrics().snapshot().since(&before);
    assert_eq!(
        got.rows, expected,
        "NDP filter must equal compute-side filter"
    );
    assert!(
        delta.pages_shipped_ndp > 0,
        "storage must actually have processed pages"
    );
    assert!(delta.ps_records_filtered > 0);
}

#[test]
fn projection_pushdown_matches_and_ships_less() {
    let (db, t) = fresh_db(4000);
    let base = ScanSpec {
        index: 0,
        range: ScanRange::full(),
        ndp: None,
        output_cols: vec![1, 3],
    };
    let before_off = db.metrics().snapshot();
    let expected = run(&db, &t, &base, Collector::plain());
    let bytes_off = db
        .metrics()
        .snapshot()
        .since(&before_off)
        .net_bytes_from_storage;

    db.buffer_pool().clear();
    let ndp_spec = ScanSpec {
        ndp: Some(NdpChoice {
            projection: Some(vec![1, 3]),
            ..Default::default()
        }),
        ..base.clone()
    };
    let before_on = db.metrics().snapshot();
    let got = run(&db, &t, &ndp_spec, Collector::plain());
    let bytes_on = db
        .metrics()
        .snapshot()
        .since(&before_on)
        .net_bytes_from_storage;
    assert_eq!(got.rows, expected.rows);
    // CI's chaos leg injects `SkipPolicy::EveryNth` via env, which ships
    // a fraction of NDP pages raw (full 16 KB) by design — correctness
    // above must hold regardless, but the byte-reduction ratio only
    // holds when pushdown is not being deliberately degraded.
    if taurus_common::ClusterConfig::default().fault.skip_every_nth == 0 {
        assert!(
            bytes_on * 2 < bytes_off,
            "projection should cut network bytes: {bytes_on} vs {bytes_off}"
        );
    }
}

#[test]
fn scalar_aggregation_pushdown_matches() {
    let (db, t) = fresh_db(3000);
    // SELECT COUNT(*), SUM(price) WHERE qty < 25 — NDP fully pushed.
    let pred = Expr::lt(Expr::col(2), Expr::int(25));
    let specs = vec![AggSpec::count_star(), AggSpec::sum(3)];
    let dtypes = vec![
        None,
        Some(DataType::Decimal {
            precision: 15,
            scale: 2,
        }),
    ];

    // Reference: classical scan + compute-side aggregation.
    let classical = ScanSpec {
        index: 0,
        range: ScanRange::full(),
        ndp: None,
        output_cols: vec![3],
    };
    let all = run(&db, &t, &classical, Collector::plain());
    // Re-filter manually: fetch qty too for the reference.
    let ref_spec = ScanSpec {
        index: 0,
        range: ScanRange::full(),
        ndp: None,
        output_cols: vec![2, 3],
    };
    let all2 = run(&db, &t, &ref_spec, Collector::plain());
    let mut expect_count = 0i64;
    let mut expect_sum = AggState::new(&specs[1], dtypes[1]);
    for r in &all2.rows {
        if r[0].cmp_sql(&Value::Int(25)) == Some(std::cmp::Ordering::Less) {
            expect_count += 1;
            expect_sum.update(&r[1]);
        }
    }
    drop(all);

    db.buffer_pool().clear();
    let ndp_spec = ScanSpec {
        index: 0,
        range: ScanRange::full(),
        ndp: Some(NdpChoice {
            predicate: Some(pred),
            aggregation: Some(ScanAggregation {
                specs: specs.clone(),
                group_cols: vec![],
            }),
            ..Default::default()
        }),
        output_cols: vec![3],
    };
    let got = run(
        &db,
        &t,
        &ndp_spec,
        Collector::aggregating(specs.clone(), vec![usize::MAX, 0], dtypes.clone()),
    );
    let (_, states, _) = got.agg.as_ref().unwrap();
    assert_eq!(states[0].finalize(), Value::Int(expect_count));
    assert_eq!(states[1].finalize(), expect_sum.finalize());
    // Far fewer rows crossed the consumer than exist in the table.
    assert!(
        got.rows.len() < 3000 / 2,
        "aggregation should collapse rows: {}",
        got.rows.len()
    );
}

#[test]
fn grouped_aggregation_pushdown_matches() {
    let (db, t) = fresh_db(3000);
    // GROUP BY grp (pk prefix): SUM(qty), COUNT(*).
    let specs = vec![AggSpec::sum(2), AggSpec::count_star()];
    let _dtypes: Vec<Option<DataType>> = vec![Some(DataType::Int), None];
    // Reference.
    let ref_spec = ScanSpec {
        index: 0,
        range: ScanRange::full(),
        ndp: None,
        output_cols: vec![0, 2],
    };
    let all = run(&db, &t, &ref_spec, Collector::plain());
    let mut expect: std::collections::BTreeMap<i64, (i128, i64)> = Default::default();
    for r in &all.rows {
        let e = expect.entry(r[0].as_int().unwrap()).or_insert((0, 0));
        e.0 += r[1].as_int().unwrap() as i128;
        e.1 += 1;
    }

    db.buffer_pool().clear();
    let ndp_spec = ScanSpec {
        index: 0,
        range: ScanRange::full(),
        ndp: Some(NdpChoice {
            aggregation: Some(ScanAggregation {
                specs: specs.clone(),
                group_cols: vec![0],
            }),
            ..Default::default()
        }),
        output_cols: vec![0, 2],
    };
    // Stream-aggregate by group on the consumer side.
    struct GroupAgg {
        cur: Option<i64>,
        states: Vec<AggState>,
        out: std::collections::BTreeMap<i64, (i128, i64)>,
    }
    impl GroupAgg {
        fn flush(&mut self) {
            if let Some(g) = self.cur.take() {
                let sum = match self.states[0].finalize() {
                    Value::Int(v) => v as i128,
                    Value::Decimal(d) => d.raw,
                    Value::Null => 0,
                    other => panic!("{other:?}"),
                };
                let cnt = match self.states[1].finalize() {
                    Value::Int(v) => v,
                    other => panic!("{other:?}"),
                };
                self.out.insert(g, (sum, cnt));
            }
        }
        fn reset(&mut self) {
            self.states = vec![
                AggState::new(&AggSpec::sum(2), Some(DataType::Int)),
                AggState::new(&AggSpec::count_star(), None),
            ];
        }
    }
    impl ScanConsumer for GroupAgg {
        fn on_row(&mut self, row: &[Value]) -> taurus_common::Result<bool> {
            let g = row[0].as_int().unwrap();
            if self.cur != Some(g) {
                self.flush();
                self.reset();
                self.cur = Some(g);
            }
            self.states[0].update(&row[1]);
            self.states[1].update(&Value::Int(1));
            Ok(true)
        }
        fn on_partial(&mut self, states: Vec<AggState>) -> taurus_common::Result<bool> {
            for (m, s) in self.states.iter_mut().zip(&states) {
                m.merge(s).unwrap();
            }
            Ok(true)
        }
    }
    let mut ga = GroupAgg {
        cur: None,
        states: Vec::new(),
        out: Default::default(),
    };
    ga.reset();
    let view = db.read_view(0);
    scan(&db, &t, &ndp_spec, &view, &mut ga).unwrap();
    ga.flush();
    assert_eq!(ga.out, expect);
}

#[test]
fn resource_control_skips_are_transparent() {
    let (db, t) = fresh_db(3000);
    let pred = q6ish_predicate();
    let base = ScanSpec {
        index: 0,
        range: ScanRange::full(),
        ndp: Some(NdpChoice {
            predicate: Some(pred.clone()),
            projection: Some(vec![1, 2, 3, 4]),
            ..Default::default()
        }),
        output_cols: vec![1, 3],
    };
    let clean = run(&db, &t, &base, Collector::plain());
    // Now force skips on every store: every 2nd page comes back raw.
    for ps in db.sal().page_stores() {
        ps.set_skip_policy(SkipPolicy::EveryNth(2));
    }
    db.buffer_pool().clear();
    let before = db.metrics().snapshot();
    let skipped = run(&db, &t, &base, Collector::plain());
    let delta = db.metrics().snapshot().since(&before);
    assert_eq!(
        clean.rows, skipped.rows,
        "skips must be invisible to results"
    );
    assert!(delta.ps_ndp_skipped > 0);
    assert!(
        delta.ndp_completed_on_compute > 0,
        "InnoDB must have completed raw pages"
    );
    // All skipped: still identical.
    for ps in db.sal().page_stores() {
        ps.set_skip_policy(SkipPolicy::All);
    }
    db.buffer_pool().clear();
    let all_skipped = run(&db, &t, &base, Collector::plain());
    assert_eq!(clean.rows, all_skipped.rows);
    for ps in db.sal().page_stores() {
        ps.set_skip_policy(SkipPolicy::None);
    }
}

#[test]
fn buffer_pool_overlap_pages_are_copied_not_fetched() {
    let (db, t) = fresh_db(1500);
    let base = ScanSpec {
        index: 0,
        range: ScanRange::full(),
        ndp: Some(NdpChoice {
            predicate: Some(Expr::lt(Expr::col(2), Expr::int(10))),
            ..Default::default()
        }),
        output_cols: vec![1, 2],
    };
    // Warm the pool with a classical scan first.
    let warm_spec = ScanSpec {
        ndp: None,
        ..base.clone()
    };
    let expected = run(&db, &t, &warm_spec, Collector::plain());
    // Delivered rows are (id, qty): qty is at position 1 here.
    let pred = Expr::lt(Expr::col(1), Expr::int(10));
    let expected: Vec<_> = expected
        .rows
        .into_iter()
        .filter(|r| taurus_expr::eval::eval_pred(&pred, r).unwrap() == Some(true))
        .collect();
    let before = db.metrics().snapshot();
    let got = run(&db, &t, &base, Collector::plain());
    let delta = db.metrics().snapshot().since(&before);
    assert_eq!(got.rows, expected);
    assert!(
        delta.ndp_completed_on_compute > 0,
        "cached pages must be completed on the compute node"
    );
}

#[test]
fn range_scan_with_ndp_respects_boundaries() {
    let (db, t) = fresh_db(4000);
    let idx = &t.primary;
    let lo = idx.tree.encode_search_key(&[Value::Int(10)]); // grp = 10..20
    let hi = idx.tree.encode_search_key(&[Value::Int(20)]);
    let range = ScanRange {
        lower: Some((lo, true)),
        upper: Some((hi, false)),
    };
    let base = ScanSpec {
        index: 0,
        range: range.clone(),
        ndp: None,
        output_cols: vec![0, 1],
    };
    let expected = run(&db, &t, &base, Collector::plain());
    assert!(!expected.rows.is_empty());
    assert!(expected.rows.iter().all(|r| {
        let g = r[0].as_int().unwrap();
        (10..20).contains(&g)
    }));
    db.buffer_pool().clear();
    let ndp_spec = ScanSpec {
        ndp: Some(NdpChoice {
            projection: Some(vec![0, 1]),
            ..Default::default()
        }),
        ..base
    };
    let got = run(&db, &t, &ndp_spec, Collector::plain());
    assert_eq!(got.rows, expected.rows);
}

#[test]
fn mvcc_concurrent_writer_is_invisible_to_old_view() {
    let (db, t) = fresh_db(500);
    let base = ScanSpec {
        index: 0,
        range: ScanRange::full(),
        ndp: Some(NdpChoice {
            predicate: Some(Expr::ge(Expr::col(2), Expr::int(0))),
            ..Default::default()
        }),
        output_cols: vec![0, 1, 2],
    };
    // Reader snapshots now.
    let reader = db.begin();
    let view = db.read_view(reader);
    // A concurrent transaction updates qty of id 0..20 and deletes id 30.
    let writer = db.begin();
    for i in 0..20i64 {
        let mut row = sample_rows(500)[i as usize].clone();
        row[2] = Value::Int(999); // would fail the reader's data expectations
        db.update_row(&t, writer, &row).unwrap();
    }
    db.delete_row(&t, writer, &[Value::Int(30 / 50), Value::Int(30)])
        .unwrap();

    db.buffer_pool().clear();
    let mut c = Collector::plain();
    scan(&db, &t, &base, &view, &mut c).unwrap();
    // The reader must see the ORIGINAL values everywhere.
    assert_eq!(
        c.rows.len(),
        500,
        "deleted row must still be visible to the old view"
    );
    for r in &c.rows {
        assert_ne!(r[2], Value::Int(999), "update by concurrent trx leaked in");
    }
    // After commit, a fresh view sees the new data (19+1 modified rows).
    db.commit(writer);
    db.commit(reader);
    let fresh = db.read_view(0);
    let mut c2 = Collector::plain();
    scan(&db, &t, &base, &fresh, &mut c2).unwrap();
    assert_eq!(c2.rows.len(), 499);
    let nines = c2.rows.iter().filter(|r| r[2] == Value::Int(999)).count();
    assert_eq!(nines, 20);
}

#[test]
fn rollback_restores_old_images() {
    let (db, t) = fresh_db(300);
    let writer = db.begin();
    let mut row = sample_rows(300)[10].clone();
    row[2] = Value::Int(777);
    db.update_row(&t, writer, &row).unwrap();
    db.delete_row(&t, writer, &[Value::Int(11 / 50), Value::Int(11)])
        .unwrap();
    db.rollback(writer).unwrap();
    let view = db.read_view(0);
    let got = db
        .lookup_row(&t, &view, &[Value::Int(10 / 50), Value::Int(10)])
        .unwrap()
        .unwrap();
    assert_eq!(got[2], sample_rows(300)[10][2]);
    assert!(db
        .lookup_row(&t, &view, &[Value::Int(11 / 50), Value::Int(11)])
        .unwrap()
        .is_some());
}

/// The batch counters must account for every delivered row: batching is
/// observable (`rows_batched` / `batches_emitted`) and lossless.
#[test]
fn batch_counters_account_for_all_rows() {
    let (db, t) = fresh_db(2000);
    let spec = ScanSpec {
        index: 0,
        range: ScanRange::full(),
        ndp: None,
        output_cols: vec![0, 1],
    };
    let batch_rows = db.config().scan_batch_rows as u64; // 7 in small_for_tests
    let before = db.metrics().snapshot();
    let c = run(&db, &t, &spec, Collector::plain());
    let d = db.metrics().snapshot().since(&before);
    assert_eq!(c.rows.len(), 2000);
    assert_eq!(d.rows_batched, 2000, "every delivered row rides a batch");
    assert_eq!(d.rows_batched, d.rows_scanned);
    assert!(
        d.batches_emitted >= 2000 / batch_rows,
        "at least ceil(rows/batch) flushes: {}",
        d.batches_emitted
    );
    // Amortization only exists for batch sizes > 1; under the degenerate
    // row-at-a-time configuration (TAURUS_SCAN_BATCH_ROWS=1 in CI) every
    // row is its own batch by construction.
    if batch_rows > 1 {
        assert!(
            d.batches_emitted < 2000,
            "batches must amortize rows, got {} batches for 2000 rows",
            d.batches_emitted
        );
    } else {
        assert_eq!(d.batches_emitted, 2000);
    }
}

/// Empty tables emit no batches; a single row makes a single-row batch.
#[test]
fn empty_table_and_single_row_batches() {
    for n in [0i64, 1] {
        let (db, t) = fresh_db(n);
        let spec = ScanSpec {
            index: 0,
            range: ScanRange::full(),
            ndp: None,
            output_cols: vec![0, 1, 2],
        };
        let before = db.metrics().snapshot();
        let c = run(&db, &t, &spec, Collector::plain());
        let d = db.metrics().snapshot().since(&before);
        assert_eq!(c.rows.len(), n as usize);
        assert_eq!(d.rows_batched, n as u64);
        assert_eq!(d.batches_emitted, n as u64, "empty batches are not emitted");
        // The NDP path agrees.
        db.buffer_pool().clear();
        let ndp_spec = ScanSpec {
            ndp: Some(NdpChoice {
                projection: Some(vec![0, 1, 2]),
                ..Default::default()
            }),
            ..spec
        };
        let c2 = run(&db, &t, &ndp_spec, Collector::plain());
        assert_eq!(c2.rows, c.rows);
    }
}

/// A batch-native consumer that stops after its first batch: the scan
/// must terminate immediately and deliver exactly one (full) batch.
#[test]
fn batch_native_consumer_stops_after_first_batch() {
    use taurus_common::RowBatch;
    struct OneBatch {
        rows: usize,
        batches: usize,
    }
    impl ScanConsumer for OneBatch {
        fn on_row(&mut self, _row: &[Value]) -> taurus_common::Result<bool> {
            panic!("scan core must deliver through on_batch");
        }
        fn on_batch(&mut self, batch: &RowBatch) -> taurus_common::Result<bool> {
            self.rows += batch.len();
            self.batches += 1;
            Ok(false)
        }
        fn on_partial(&mut self, _s: Vec<AggState>) -> taurus_common::Result<bool> {
            unreachable!("plain scan has no partials")
        }
    }
    let (db, t) = fresh_db(2000);
    let spec = ScanSpec {
        index: 0,
        range: ScanRange::full(),
        ndp: None,
        output_cols: vec![0, 1],
    };
    let mut c = OneBatch {
        rows: 0,
        batches: 0,
    };
    let view = db.read_view(0);
    scan(&db, &t, &spec, &view, &mut c).unwrap();
    assert_eq!(c.batches, 1);
    // Between 1 row and the configured capacity (exactly the capacity
    // unless a page boundary legitimately flushed the batch earlier).
    assert!(
        c.rows >= 1 && c.rows <= db.config().scan_batch_rows,
        "first batch had {} rows",
        c.rows
    );
}

#[test]
fn early_stop_via_consumer() {
    // 17 deliberately lands mid-batch (scan_batch_rows = 7 in
    // small_for_tests): the row-level stop must hold exactly even though
    // delivery is batched.
    let (db, t) = fresh_db(2000);
    let spec = ScanSpec {
        index: 0,
        range: ScanRange::full(),
        ndp: Some(NdpChoice {
            projection: Some(vec![0, 1]),
            ..Default::default()
        }),
        output_cols: vec![0, 1],
    };
    let mut c = Collector::plain();
    c.stop_after = Some(17);
    let view = db.read_view(0);
    scan(&db, &t, &spec, &view, &mut c).unwrap();
    assert_eq!(c.rows.len(), 17);
}

#[test]
fn partition_ranges_cover_disjointly() {
    let (db, t) = fresh_db(4000);
    let parts = taurus_ndp::partition_ranges(&t, 0, &ScanRange::full(), 4).unwrap();
    assert!(
        parts.len() >= 2,
        "expected multiple partitions, got {}",
        parts.len()
    );
    let mut total = 0usize;
    let mut all_rows: Vec<Vec<Value>> = Vec::new();
    for r in &parts {
        let spec = ScanSpec {
            index: 0,
            range: r.clone(),
            ndp: None,
            output_cols: vec![0, 1],
        };
        let c = run(&db, &t, &spec, Collector::plain());
        total += c.rows.len();
        all_rows.extend(c.rows);
    }
    assert_eq!(total, 4000, "partitions must cover every row exactly once");
    // Rows must still be globally sorted when concatenated in order.
    let keys: Vec<(i64, i64)> = all_rows
        .iter()
        .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    assert_eq!(keys, sorted);
}
