//! Catalog replication payload codecs.
//!
//! The log is the only cross-node channel (§II: masters write log records,
//! never pages), so everything a read replica needs beyond page deltas has
//! to travel *through* it. Two system-record payloads are defined here:
//!
//! * [`CatalogPayload`] (`RedoBody::SysCatalog`) — emitted by
//!   `create_table`: the table schema plus every index definition (name,
//!   id, space, key columns), enough for a replica to rebuild `Table` /
//!   `BTree` objects over its own read-pinned stores.
//! * [`LoadedPayload`] (`RedoBody::SysLoaded`) — emitted when `bulk_load`
//!   completes: per-index tree shapes (root / height / leaf count — state
//!   the master mutates outside the page substrate) and the optimizer
//!   statistics, so a replica makes the *same* NDP decisions the master
//!   would.
//!
//! Encodings are little-endian and length-prefixed, like the redo wire
//! format one layer down; `Value`s reuse the expression IR codec.

use taurus_common::schema::{Column, TableSchema};
use taurus_common::{DataType, Error, PageNo, Result, Value};
use taurus_expr::ir::{decode_value, encode_value};

use crate::engine::{ColumnStats, TableStats};

/// One index of a replicated table.
#[derive(Clone, Debug, PartialEq)]
pub struct IndexMeta {
    pub name: String,
    pub index_id: u64,
    pub space: u32,
    /// Positions into the table schema of the declared key, in key order.
    pub key_cols: Vec<usize>,
    pub is_primary: bool,
}

/// `SysCatalog` payload: everything `create_table` decided.
#[derive(Clone, Debug)]
pub struct CatalogPayload {
    pub name: String,
    pub columns: Vec<Column>,
    pub pk: Vec<usize>,
    pub indexes: Vec<IndexMeta>,
}

/// Shape of one B+ tree at bulk-load completion.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TreeShape {
    pub space: u32,
    pub root: PageNo,
    pub height: u32,
    pub n_leaves: u32,
}

/// `SysLoaded` payload: tree shapes + optimizer statistics, plus the
/// master's read-view ingredients (a load completion is a
/// transaction-consistent boundary, and replicas publish an exact master
/// view at every boundary).
#[derive(Clone, Debug)]
pub struct LoadedPayload {
    pub table: String,
    pub shapes: Vec<TreeShape>,
    pub stats: TableStats,
    /// Transaction ids active on the master at load completion (sorted).
    pub active: Vec<u64>,
    /// The master's next transaction id at load completion.
    pub low_limit: u64,
}

// --- primitive writers/readers ----------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn err() -> Error {
    Error::Corruption("truncated replication payload".into())
}

fn take<'a>(buf: &'a [u8], at: &mut usize, n: usize) -> Result<&'a [u8]> {
    let s = buf.get(*at..*at + n).ok_or_else(err)?;
    *at += n;
    Ok(s)
}

fn get_u32(buf: &[u8], at: &mut usize) -> Result<u32> {
    Ok(u32::from_le_bytes(take(buf, at, 4)?.try_into().unwrap()))
}

fn get_u64(buf: &[u8], at: &mut usize) -> Result<u64> {
    Ok(u64::from_le_bytes(take(buf, at, 8)?.try_into().unwrap()))
}

fn get_f64(buf: &[u8], at: &mut usize) -> Result<f64> {
    Ok(f64::from_bits(get_u64(buf, at)?))
}

fn get_str(buf: &[u8], at: &mut usize) -> Result<String> {
    let n = get_u32(buf, at)? as usize;
    String::from_utf8(take(buf, at, n)?.to_vec())
        .map_err(|_| Error::Corruption("non-utf8 name in replication payload".into()))
}

fn put_dtype(out: &mut Vec<u8>, dt: DataType) {
    match dt {
        DataType::Int => out.push(0),
        DataType::BigInt => out.push(1),
        DataType::Decimal { precision, scale } => {
            out.push(2);
            out.push(precision);
            out.push(scale);
        }
        DataType::Date => out.push(3),
        DataType::Char(n) => {
            out.push(4);
            out.extend_from_slice(&n.to_le_bytes());
        }
        DataType::Varchar(n) => {
            out.push(5);
            out.extend_from_slice(&n.to_le_bytes());
        }
        DataType::Double => out.push(6),
    }
}

fn get_dtype(buf: &[u8], at: &mut usize) -> Result<DataType> {
    Ok(match take(buf, at, 1)?[0] {
        0 => DataType::Int,
        1 => DataType::BigInt,
        2 => {
            let p = take(buf, at, 2)?;
            DataType::Decimal {
                precision: p[0],
                scale: p[1],
            }
        }
        3 => DataType::Date,
        4 => DataType::Char(u16::from_le_bytes(take(buf, at, 2)?.try_into().unwrap())),
        5 => DataType::Varchar(u16::from_le_bytes(take(buf, at, 2)?.try_into().unwrap())),
        6 => DataType::Double,
        t => return Err(Error::Corruption(format!("bad dtype tag {t}"))),
    })
}

fn put_opt_value(out: &mut Vec<u8>, v: &Option<Value>) {
    match v {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            encode_value(v, out);
        }
    }
}

fn get_opt_value(buf: &[u8], at: &mut usize) -> Result<Option<Value>> {
    Ok(match take(buf, at, 1)?[0] {
        0 => None,
        _ => Some(decode_value(buf, at)?),
    })
}

fn put_usizes(out: &mut Vec<u8>, v: &[usize]) {
    put_u32(out, v.len() as u32);
    for &x in v {
        put_u32(out, x as u32);
    }
}

fn get_usizes(buf: &[u8], at: &mut usize) -> Result<Vec<usize>> {
    let n = get_u32(buf, at)? as usize;
    (0..n).map(|_| Ok(get_u32(buf, at)? as usize)).collect()
}

// --- payload codecs ----------------------------------------------------------

impl CatalogPayload {
    pub fn from_parts(schema: &TableSchema, indexes: Vec<IndexMeta>) -> CatalogPayload {
        CatalogPayload {
            name: schema.name.clone(),
            columns: schema.columns.clone(),
            pk: schema.pk.clone(),
            indexes,
        }
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128);
        put_str(&mut out, &self.name);
        put_u32(&mut out, self.columns.len() as u32);
        for c in &self.columns {
            put_str(&mut out, &c.name);
            put_dtype(&mut out, c.dtype);
            out.push(c.nullable as u8);
        }
        put_usizes(&mut out, &self.pk);
        put_u32(&mut out, self.indexes.len() as u32);
        for ix in &self.indexes {
            put_str(&mut out, &ix.name);
            put_u64(&mut out, ix.index_id);
            put_u32(&mut out, ix.space);
            put_usizes(&mut out, &ix.key_cols);
            out.push(ix.is_primary as u8);
        }
        out
    }

    pub fn decode(buf: &[u8]) -> Result<CatalogPayload> {
        let at = &mut 0usize;
        let name = get_str(buf, at)?;
        let n_cols = get_u32(buf, at)? as usize;
        let mut columns = Vec::with_capacity(n_cols);
        for _ in 0..n_cols {
            let cname = get_str(buf, at)?;
            let dtype = get_dtype(buf, at)?;
            let nullable = take(buf, at, 1)?[0] != 0;
            columns.push(Column {
                name: cname,
                dtype,
                nullable,
            });
        }
        let pk = get_usizes(buf, at)?;
        let n_ix = get_u32(buf, at)? as usize;
        let mut indexes = Vec::with_capacity(n_ix);
        for _ in 0..n_ix {
            indexes.push(IndexMeta {
                name: get_str(buf, at)?,
                index_id: get_u64(buf, at)?,
                space: get_u32(buf, at)?,
                key_cols: get_usizes(buf, at)?,
                is_primary: take(buf, at, 1)?[0] != 0,
            });
        }
        Ok(CatalogPayload {
            name,
            columns,
            pk,
            indexes,
        })
    }
}

impl LoadedPayload {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128);
        put_str(&mut out, &self.table);
        put_u32(&mut out, self.shapes.len() as u32);
        for s in &self.shapes {
            put_u32(&mut out, s.space);
            put_u32(&mut out, s.root);
            put_u32(&mut out, s.height);
            put_u32(&mut out, s.n_leaves);
        }
        put_u64(&mut out, self.stats.row_count);
        put_u64(&mut out, self.stats.leaf_pages);
        put_f64(&mut out, self.stats.avg_row_width);
        put_u32(&mut out, self.stats.columns.len() as u32);
        for c in &self.stats.columns {
            put_opt_value(&mut out, &c.min);
            put_opt_value(&mut out, &c.max);
            put_u64(&mut out, c.ndv);
            put_f64(&mut out, c.avg_width);
        }
        put_u32(&mut out, self.active.len() as u32);
        for &a in &self.active {
            put_u64(&mut out, a);
        }
        put_u64(&mut out, self.low_limit);
        out
    }

    pub fn decode(buf: &[u8]) -> Result<LoadedPayload> {
        let at = &mut 0usize;
        let table = get_str(buf, at)?;
        let n_shapes = get_u32(buf, at)? as usize;
        let mut shapes = Vec::with_capacity(n_shapes);
        for _ in 0..n_shapes {
            shapes.push(TreeShape {
                space: get_u32(buf, at)?,
                root: get_u32(buf, at)?,
                height: get_u32(buf, at)?,
                n_leaves: get_u32(buf, at)?,
            });
        }
        let row_count = get_u64(buf, at)?;
        let leaf_pages = get_u64(buf, at)?;
        let avg_row_width = get_f64(buf, at)?;
        let n_cols = get_u32(buf, at)? as usize;
        let mut columns = Vec::with_capacity(n_cols);
        for _ in 0..n_cols {
            columns.push(ColumnStats {
                min: get_opt_value(buf, at)?,
                max: get_opt_value(buf, at)?,
                ndv: get_u64(buf, at)?,
                avg_width: get_f64(buf, at)?,
            });
        }
        let n_active = get_u32(buf, at)? as usize;
        let active = (0..n_active)
            .map(|_| get_u64(buf, at))
            .collect::<Result<_>>()?;
        let low_limit = get_u64(buf, at)?;
        Ok(LoadedPayload {
            table,
            shapes,
            stats: TableStats {
                row_count,
                leaf_pages,
                avg_row_width,
                columns,
            },
            active,
            low_limit,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taurus_common::Dec;

    #[test]
    fn catalog_payload_roundtrip() {
        let schema = TableSchema::new(
            "orders",
            vec![
                Column::new("o_id", DataType::BigInt),
                Column::nullable("o_comment", DataType::Varchar(80)),
                Column::new(
                    "o_total",
                    DataType::Decimal {
                        precision: 15,
                        scale: 2,
                    },
                ),
            ],
            vec![0],
        );
        let p = CatalogPayload::from_parts(
            &schema,
            vec![
                IndexMeta {
                    name: "orders_pk".into(),
                    index_id: 3,
                    space: 7,
                    key_cols: vec![0],
                    is_primary: true,
                },
                IndexMeta {
                    name: "i_total".into(),
                    index_id: 4,
                    space: 8,
                    key_cols: vec![2],
                    is_primary: false,
                },
            ],
        );
        let d = CatalogPayload::decode(&p.encode()).unwrap();
        assert_eq!(d.name, "orders");
        assert_eq!(d.columns, schema.columns);
        assert_eq!(d.pk, vec![0]);
        assert_eq!(d.indexes, p.indexes);
    }

    #[test]
    fn loaded_payload_roundtrip() {
        let p = LoadedPayload {
            table: "t".into(),
            active: vec![4, 9],
            low_limit: 10,
            shapes: vec![TreeShape {
                space: 1,
                root: 9,
                height: 2,
                n_leaves: 8,
            }],
            stats: TableStats {
                row_count: 100,
                leaf_pages: 8,
                avg_row_width: 33.5,
                columns: vec![
                    ColumnStats {
                        min: Some(Value::Int(1)),
                        max: Some(Value::Int(100)),
                        ndv: 100,
                        avg_width: 8.0,
                    },
                    ColumnStats {
                        min: Some(Value::Decimal(Dec::new(150, 2))),
                        max: None,
                        ndv: 7,
                        avg_width: 8.0,
                    },
                ],
            },
        };
        let d = LoadedPayload::decode(&p.encode()).unwrap();
        assert_eq!(d.table, "t");
        assert_eq!(d.shapes, p.shapes);
        assert_eq!(d.stats.row_count, 100);
        assert_eq!(d.stats.avg_row_width, 33.5);
        assert_eq!(d.stats.columns[0].min, Some(Value::Int(1)));
        assert_eq!(d.stats.columns[1].min, p.stats.columns[1].min);
        assert_eq!(d.stats.columns[1].max, None);
    }

    #[test]
    fn truncated_payload_is_corruption() {
        let schema = TableSchema::new("t", vec![Column::new("a", DataType::Int)], vec![0]);
        let enc = CatalogPayload::from_parts(&schema, vec![]).encode();
        assert!(matches!(
            CatalogPayload::decode(&enc[..enc.len() - 1]),
            Err(Error::Corruption(_))
        ));
    }
}
