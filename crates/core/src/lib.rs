//! `taurus-ndp` — the paper's primary contribution: near-data processing
//! engineered into an InnoDB-style storage engine over disaggregated
//! storage.
//!
//! * [`engine`] — the compute-node engine: catalog, transactions (MVCC +
//!   undo), DML, bulk load, and the [`engine::SpaceStore`] adapter that
//!   routes every page mutation through the buffer pool and the SAL as
//!   redo.
//! * [`scan`] — the scans: the classical page-at-a-time path and the NDP
//!   path (descriptor build, level-1 batch extraction, buffer-pool overlap
//!   handling, ordered NDP-page consumption, InnoDB-side completion of
//!   raw/ambiguous work), plus PQ range partitioning.
//! * [`replication`] — the catalog/statistics payloads read replicas
//!   rebuild their state from; the replica engine itself
//!   ([`TaurusDb::attach_replica`], [`engine::ReplicaState`]) pins every
//!   read at the replicated LSN, and the log tailer lives in
//!   `taurus-replica`.
//!
//! The executor above talks only to [`scan::scan`] through
//! [`scan::ScanConsumer`] — it cannot tell whether filtering, projection,
//! or aggregation happened in a Page Store or on the compute node, which
//! is exactly the paper's encapsulation claim.

pub mod engine;
pub mod replication;
pub mod scan;

pub use engine::{ColumnStats, ReplicaState, SpaceStore, Table, TableIndex, TableStats, TaurusDb};
pub use scan::{
    build_descriptor, partition_ranges, scan, scan_ctx, NdpChoice, ScanAggregation, ScanConsumer,
    ScanSpec, ScanStats,
};

// Re-export the vocabulary types users need alongside the engine.
pub use taurus_btree::ScanRange;
pub use taurus_common::{
    ClusterConfig, Metrics, MetricsSnapshot, NdpConfig, NetworkConfig, RowBatch,
};
pub use taurus_expr::agg::{AggFunc, AggSpec, AggState};
pub use taurus_mvcc::ReadView;
