//! Scans: the regular InnoDB path and the NDP path (§III, §IV-C).
//!
//! The NDP scan is where the paper's machinery comes together:
//!
//! 1. descend to level 1 under the shared structure latch, extract up to
//!    `innodb_ndp_max_pages_look_ahead` child leaf page numbers bounded by
//!    the scan range, and capture the LSN (§IV-C4);
//! 2. check the buffer pool: already-cached pages are *copied* into the
//!    NDP area (no I/O, completed by InnoDB — §IV-C4), the rest go into
//!    one batch read that the SAL fans out across Page Stores;
//! 3. consume the returned pages **in logical page order** regardless of
//!    Page Store completion order ("the logical page ordering is enforced
//!    in the frontend storage engine" — §IV-D), releasing each NDP frame
//!    as soon as its page is drained;
//! 4. complete whatever NDP work storage did not do: raw pages (resource
//!    control skips), buffer-pool copies, and ambiguous records (full
//!    read-view visibility + undo reconstruction) — the four cases of
//!    §V-B1.
//!
//! Steps 1–3 run as a **prefetch pipeline**: up to
//! `ndp.prefetch_batches` leaf batches are in flight at once, each with
//! its own streaming SAL fan-out ([`taurus_sal::Sal::batch_read_streaming`]),
//! so batch N+1's Page Store work overlaps batch N's consumption. The
//! per-scan frame quota is split across the in-flight batches — see
//! [`ndp_scan`] and DESIGN.md's "NDP prefetch pipeline" section.
//!
//! Everything above the scan sees only rows and aggregate partials through
//! [`ScanConsumer`] — "the MySQL query execution layers above the storage
//! engine are unaware of NDP processing".
//!
//! Delivery is **batch-at-a-time**: surviving rows accumulate into one
//! reusable batch (`ClusterConfig::scan_batch_rows`, default 1024) that
//! is flushed to the consumer at capacity and at page boundaries — so
//! page frames are still released as soon as a page drains, and nothing
//! downstream pays a per-row hand-off. Under
//! `ClusterConfig::batch_layout = Columnar` the batch is a column-major
//! [`ColumnBatch`] (typed vectors + validity bitmaps) flushed through
//! [`ScanConsumer::on_col_batch`]; otherwise it is the classical
//! [`RowBatch`] through [`ScanConsumer::on_batch`]. Aggregate partials
//! force a flush first, keeping them ordered right after their carrier
//! row.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;

use taurus_btree::{ScanRange, TreeStore};
use taurus_bufferpool::{BufferPool, NdpFrameGuard};
use taurus_common::{
    BatchLayout, ColumnBatch, DataType, Error, Metrics, PageNo, QueryCtx, Result, RowBatch, Value,
};
use taurus_expr::agg::{AggSpec, AggState};
use taurus_expr::ast::Expr;
use taurus_expr::descriptor::{NdpAggSpec, NdpDescriptor};
use taurus_mvcc::ReadView;
use taurus_page::{Page, PageType, RecType, RecordLayout, RecordView};
use taurus_pagestore::PagePayload;
use taurus_sal::BatchReadHandle;

use crate::engine::{Table, TableIndex, TaurusDb};

/// Aggregation requested from a scan (column refs are *table* columns).
#[derive(Clone, Debug)]
pub struct ScanAggregation {
    pub specs: Vec<AggSpec>,
    /// GROUP BY columns; must be a prefix of the chosen index key.
    pub group_cols: Vec<usize>,
}

/// The optimizer's per-table-access NDP decision (§IV-B): any subset of
/// {projection, predicate, aggregation} may be enabled.
#[derive(Clone, Debug, Default)]
pub struct NdpChoice {
    /// Table columns to keep (key columns are added automatically).
    pub projection: Option<Vec<usize>>,
    /// Pushed predicate over table columns. When aggregation is pushed,
    /// this predicate must subsume the scan's range condition (the
    /// optimizer guarantees it; see DESIGN.md).
    pub predicate: Option<Expr>,
    pub aggregation: Option<ScanAggregation>,
}

impl NdpChoice {
    pub fn is_empty(&self) -> bool {
        self.projection.is_none() && self.predicate.is_none() && self.aggregation.is_none()
    }
}

/// A fully-specified table access.
#[derive(Clone, Debug)]
pub struct ScanSpec {
    /// Which index: 0 = primary, i+1 = secondaries[i].
    pub index: usize,
    pub range: ScanRange,
    /// NDP decision; `None` = classical scan.
    pub ndp: Option<NdpChoice>,
    /// Table columns the scan delivers, in this order. All must be stored
    /// in the chosen index.
    pub output_cols: Vec<usize>,
}

/// Receives scan output. Rows arrive in index-key order; aggregate
/// partials follow their carrier row immediately (the scan flushes its
/// batch before delivering a partial).
///
/// The scan core only ever calls [`ScanConsumer::on_batch`]; the default
/// implementation unbatches into [`ScanConsumer::on_row`], so simple
/// (test/diagnostic) consumers need not know about batches, while hot
/// consumers override `on_batch` and amortize per-row dispatch away.
///
/// Returning `false` is the engine's **cancellation contract**: the
/// executor's pull pipeline maps a closed batch channel (dropped stream,
/// satisfied LIMIT) onto it, so storage-side work — look-ahead
/// extraction, batch reads, NDP frames — stops within one batch of the
/// consumer losing interest. No further callback is made after a
/// `false`.
pub trait ScanConsumer {
    /// A row (values in `output_cols` order). Return `false` to stop.
    fn on_row(&mut self, row: &[Value]) -> Result<bool>;

    /// A batch of rows (each in `output_cols` order). Return `false` to
    /// stop the scan; stopping mid-batch discards the batch's remaining
    /// rows, exactly like returning `false` from `on_row` always has.
    fn on_batch(&mut self, batch: &RowBatch) -> Result<bool> {
        for row in batch.rows() {
            if !self.on_row(row)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// A column-major batch (`ClusterConfig::batch_layout = Columnar`).
    /// The default gathers to row-major and delegates, so layout-blind
    /// consumers keep working unchanged; hot consumers override this to
    /// evaluate column-at-a-time without materializing rows.
    fn on_col_batch(&mut self, batch: &ColumnBatch) -> Result<bool> {
        self.on_batch(&batch.to_row_batch())
    }

    /// Partial aggregate states attached to the just-delivered carrier row.
    fn on_partial(&mut self, states: Vec<AggState>) -> Result<bool>;
}

/// Scan-side statistics for one execution.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ScanStats {
    /// Rows handed to the consumer, counted at batch granularity: a
    /// consumer that stops mid-batch still received the whole batch, so
    /// the count may exceed what it retained by up to one batch.
    pub rows_delivered: u64,
    pub pages_total: u64,
    pub pages_from_cache: u64,
    pub pages_ndp: u64,
    pub pages_raw: u64,
    pub partials_merged: u64,
    pub ambiguous_resolved: u64,
}

/// Build the NDP descriptor for a choice (col refs rebased onto record
/// positions — the Page Store needs no table schema).
pub fn build_descriptor(
    index: &TableIndex,
    choice: &NdpChoice,
    low_watermark: u64,
) -> Result<NdpDescriptor> {
    let tree = &index.tree;
    let stored = tree.def.stored_cols();
    let pos_of = |table_col: usize| -> Result<u16> {
        stored
            .iter()
            .position(|&c| c == table_col)
            .map(|p| p as u16)
            .ok_or_else(|| {
                Error::InvalidState(format!(
                    "column {table_col} not stored in index {}",
                    tree.def.name
                ))
            })
    };
    let key_positions: Vec<u16> = tree.key_positions.iter().map(|&p| p as u16).collect();
    let projection = match &choice.projection {
        None => None,
        Some(cols) => {
            let mut keep: Vec<u16> = cols.iter().map(|&c| pos_of(c)).collect::<Result<_>>()?;
            keep.extend_from_slice(&key_positions);
            if let Some(agg) = &choice.aggregation {
                for s in &agg.specs {
                    if let Some(c) = s.col {
                        keep.push(pos_of(c as usize)?);
                    }
                }
            }
            keep.sort_unstable();
            keep.dedup();
            Some(keep)
        }
    };
    let predicate_bitcode = match &choice.predicate {
        None => None,
        Some(e) => {
            let remapped = e.remap_columns(&|c| {
                stored
                    .iter()
                    .position(|&s| s == c)
                    .expect("predicate col stored")
            });
            Some(taurus_expr::compile::lower(&remapped)?.encode_bitcode())
        }
    };
    let aggregation = match &choice.aggregation {
        None => None,
        Some(a) => Some(NdpAggSpec {
            specs: a
                .specs
                .iter()
                .map(|s| {
                    Ok(AggSpec {
                        func: s.func,
                        col: match s.col {
                            Some(c) => Some(pos_of(c as usize)?),
                            None => None,
                        },
                    })
                })
                .collect::<Result<_>>()?,
            group_cols: a
                .group_cols
                .iter()
                .map(|&c| pos_of(c))
                .collect::<Result<_>>()?,
        }),
    };
    let d = NdpDescriptor {
        index_id: tree.def.index_id.0,
        record_dtypes: tree.leaf_layout.dtypes.clone(),
        key_positions,
        projection,
        predicate_bitcode,
        aggregation,
        low_watermark,
    };
    d.validate()?;
    Ok(d)
}

/// Pre-resolved, immutable machinery for one scan execution. Everything
/// here is resolved **once per scan** — layouts and projection positions
/// are borrowed from here for the whole scan, never cloned per page or
/// per record.
struct ScanCtx<'a> {
    db: &'a TaurusDb,
    index: &'a TableIndex,
    spec: &'a ScanSpec,
    view: &'a ReadView,
    /// Query context: tenant attribution for storage-side admission and
    /// the deadline that bounds the whole scan.
    qctx: QueryCtx,
    watermark: u64,
    /// Output columns as record positions (full layout).
    out_pos: Vec<usize>,
    /// Projected layout + output positions within it (when projecting).
    proj: Option<(RecordLayout, Vec<usize>)>,
    /// Record positions kept by the projection (resolved once).
    proj_keep: Vec<usize>,
    /// Pushed predicate rebased to record positions (compute-side
    /// completion uses the classical interpreter, like InnoDB calling the
    /// executor's evaluation callbacks).
    pred_record: Option<Expr>,
}

/// The reusable output batch in whichever layout the cluster config
/// selected. Both variants share the push/flush/clear lifecycle; only
/// the flush call site dispatches differently.
enum OutBatch {
    Row(RowBatch),
    Col(ColumnBatch),
}

impl OutBatch {
    fn push_row(&mut self, row: impl IntoIterator<Item = Value>) {
        match self {
            OutBatch::Row(b) => b.push_row(row),
            OutBatch::Col(b) => b.push_row(row),
        }
    }

    fn is_full(&self) -> bool {
        match self {
            OutBatch::Row(b) => b.is_full(),
            OutBatch::Col(b) => b.is_full(),
        }
    }

    fn is_empty(&self) -> bool {
        match self {
            OutBatch::Row(b) => b.is_empty(),
            OutBatch::Col(b) => b.is_empty(),
        }
    }

    fn len(&self) -> usize {
        match self {
            OutBatch::Row(b) => b.len(),
            OutBatch::Col(b) => b.len(),
        }
    }

    fn clear(&mut self) {
        match self {
            OutBatch::Row(b) => b.clear(),
            OutBatch::Col(b) => b.clear(),
        }
    }
}

/// The mutable side of a scan: statistics plus the one reusable output
/// batch. Kept apart from [`ScanCtx`] so delivery can mutate it while
/// record views still borrow the context's layouts.
struct ScanState {
    stats: ScanStats,
    batch: OutBatch,
}

impl<'a> ScanCtx<'a> {
    fn new(
        db: &'a TaurusDb,
        table: &'a Table,
        spec: &'a ScanSpec,
        view: &'a ReadView,
        qctx: QueryCtx,
    ) -> Result<ScanCtx<'a>> {
        let index = table.index(spec.index);
        let stored = index.tree.def.stored_cols();
        let out_pos: Vec<usize> = spec
            .output_cols
            .iter()
            .map(|&c| {
                stored.iter().position(|&s| s == c).ok_or_else(|| {
                    Error::InvalidState(format!(
                        "output column {c} not stored in index {}",
                        index.tree.def.name
                    ))
                })
            })
            .collect::<Result<_>>()?;
        let choice = spec.ndp.as_ref();
        let watermark = view.low_watermark();
        let mut proj_keep: Vec<usize> = Vec::new();
        let proj = match choice.and_then(|c| c.projection.as_ref()) {
            None => None,
            Some(_) => {
                // Mirror build_descriptor's keep-set computation.
                let desc = build_descriptor(index, choice.unwrap(), watermark)?;
                let keep = desc.projection.expect("projection requested");
                let keep_usize: Vec<usize> = keep.iter().map(|&k| k as usize).collect();
                let layout = index.tree.leaf_layout.project(&keep_usize);
                let out_in_proj: Vec<usize> = out_pos
                    .iter()
                    .map(|&p| {
                        keep_usize.iter().position(|&k| k == p).ok_or_else(|| {
                            Error::InvalidState(format!(
                                "output position {p} dropped by NDP projection"
                            ))
                        })
                    })
                    .collect::<Result<_>>()?;
                proj_keep = keep_usize;
                Some((layout, out_in_proj))
            }
        };
        let pred_record = choice
            .and_then(|c| c.predicate.as_ref())
            .map(|e| e.remap_columns(&|c| stored.iter().position(|&s| s == c).expect("stored")));
        Ok(ScanCtx {
            db,
            index,
            spec,
            view,
            qctx,
            watermark,
            out_pos,
            proj,
            proj_keep,
            pred_record,
        })
    }

    fn fresh_state(&self) -> ScanState {
        let capacity = self.db.config().scan_batch_rows.max(1);
        let batch = match self.db.config().batch_layout {
            BatchLayout::Row => {
                OutBatch::Row(RowBatch::with_capacity(self.out_pos.len(), capacity))
            }
            BatchLayout::Columnar => {
                // Output column types come from the leaf layout at the
                // delivered positions — NDP-projected rows decode to the
                // same logical types, so one builder serves both paths.
                let dtypes: Vec<DataType> = self
                    .out_pos
                    .iter()
                    .map(|&p| self.layout().dtypes[p])
                    .collect();
                OutBatch::Col(ColumnBatch::with_capacity(&dtypes, capacity))
            }
        };
        ScanState {
            stats: ScanStats::default(),
            batch,
        }
    }

    /// The full leaf layout, borrowed for the scan's whole lifetime (the
    /// index outlives the scan, so this does not tie up `self`).
    fn layout(&self) -> &'a RecordLayout {
        &self.index.tree.leaf_layout
    }

    // --- batched delivery ---------------------------------------------------

    /// Append one output row to the batch, flushing at capacity. Returns
    /// `false` when the consumer asked to stop.
    fn push_row(
        &self,
        state: &mut ScanState,
        row: impl IntoIterator<Item = Value>,
        consumer: &mut dyn ScanConsumer,
    ) -> Result<bool> {
        state.batch.push_row(row);
        if state.batch.is_full() {
            return self.flush(state, consumer);
        }
        Ok(true)
    }

    /// Hand the buffered batch to the consumer (no-op when empty).
    fn flush(&self, state: &mut ScanState, consumer: &mut dyn ScanConsumer) -> Result<bool> {
        if state.batch.is_empty() {
            return Ok(true);
        }
        // Delivery is counted here, at batch granularity: rows are
        // "delivered" when their batch is handed over, so
        // `rows_delivered`, `rows_scanned` and `rows_batched` all agree
        // by construction — on every path, including scans that error
        // out mid-way. A consumer stopping mid-batch counts the whole
        // final batch (it received it), mirroring how the row-at-a-time
        // path counted the row it stopped on.
        state.stats.rows_delivered += state.batch.len() as u64;
        self.db
            .metrics()
            .add(|m| &m.rows_scanned, state.batch.len() as u64);
        self.db
            .metrics()
            .add(|m| &m.rows_batched, state.batch.len() as u64);
        self.db.metrics().add(|m| &m.batches_emitted, 1);
        let keep_going = match &state.batch {
            OutBatch::Row(b) => consumer.on_batch(b)?,
            OutBatch::Col(b) => consumer.on_col_batch(b)?,
        };
        state.batch.clear();
        Ok(keep_going)
    }

    // --- per-record machinery ----------------------------------------------

    /// Are all records of this page within the scan range? (First/last key
    /// check — avoids per-record range checks on interior pages.)
    fn page_fully_in_range(&self, page: &Page, layout_probe: &RecordLayout) -> bool {
        let mut first: Option<u16> = None;
        let mut last: Option<u16> = None;
        for off in page.iter_chain() {
            if first.is_none() {
                first = Some(off);
            }
            last = Some(off);
        }
        let (Some(f), Some(l)) = (first, last) else {
            return true;
        };
        let key_of = |off: u16| -> Option<Vec<u8>> {
            let bytes = page.record_at(off);
            let probe = RecordView::new(bytes, layout_probe);
            match probe.rec_type() {
                RecType::Ordinary => {
                    let v = RecordView::new(bytes, self.layout());
                    Some(self.index.tree.key_of_leaf_record(&v))
                }
                RecType::NdpProjection | RecType::NdpAggregate => {
                    // Projected records always carry the key columns
                    // (§V-A); extract the key through the projected layout.
                    let (pl, _) = self.proj.as_ref()?;
                    let v = RecordView::new(bytes, pl);
                    Some(self.key_of_projected(&v))
                }
                _ => None,
            }
        };
        match (key_of(f), key_of(l)) {
            (Some(fk), Some(lk)) => self.spec.range.contains(&fk) && self.spec.range.contains(&lk),
            _ => false,
        }
    }

    /// Encoded key of a record in the projected layout.
    fn key_of_projected(&self, v: &RecordView<'_>) -> Vec<u8> {
        let key_vals: Vec<Value> = self
            .index
            .tree
            .key_positions
            .iter()
            .map(|&kp| {
                let pos = self
                    .proj_keep
                    .iter()
                    .position(|&k| k == kp)
                    .expect("keys kept");
                v.value(pos)
            })
            .collect();
        taurus_common::schema::encode_key(&key_vals, &self.index.tree.def.key_dtypes())
    }

    /// Deliver one full-layout record (visible, already filtered).
    fn deliver_full(
        &self,
        state: &mut ScanState,
        view_rec: &RecordView<'_>,
        consumer: &mut dyn ScanConsumer,
    ) -> Result<bool> {
        self.push_row(
            state,
            self.out_pos.iter().map(|&p| view_rec.value(p)),
            consumer,
        )
    }

    /// Full compute-side processing of one record image (ambiguous / raw /
    /// cached pages): visibility, undo rebuild, delete-mark, predicate.
    fn process_full_record(
        &self,
        state: &mut ScanState,
        bytes: &[u8],
        layout: &RecordLayout,
        check_range: bool,
        consumer: &mut dyn ScanConsumer,
    ) -> Result<bool> {
        let v = RecordView::new(bytes, layout);
        let key = self.index.tree.key_of_leaf_record(&v);
        let image;
        let rec = if self.view.visible(v.trx_id()) {
            v
        } else {
            state.stats.ambiguous_resolved += 1;
            match self
                .db
                .undo
                .reconstruct(self.index.tree.def.space, &key, bytes, self.view)
            {
                None => return Ok(true),
                Some(img) => {
                    image = img;
                    RecordView::new(&image, layout)
                }
            }
        };
        if rec.delete_mark() {
            return Ok(true);
        }
        if check_range && !self.spec.range.contains(&key) {
            return Ok(true);
        }
        if let Some(pred) = &self.pred_record {
            let vals = rec.values();
            if taurus_expr::eval::eval_pred(pred, &vals)? != Some(true) {
                return Ok(true);
            }
        }
        self.push_row(state, self.out_pos.iter().map(|&p| rec.value(p)), consumer)
    }

    /// Consume one page in any form, flushing the batch at the page
    /// boundary (so the caller may release the page frame immediately).
    /// Returns false when the consumer asked to stop.
    fn consume_page(
        &self,
        state: &mut ScanState,
        page: &Page,
        was_processed_by_storage: bool,
        consumer: &mut dyn ScanConsumer,
    ) -> Result<bool> {
        state.stats.pages_total += 1;
        if page.page_type() == PageType::NdpEmpty {
            return Ok(true);
        }
        let full_layout = self.layout();
        let check_range = !self.page_fully_in_range(page, full_layout);
        if !was_processed_by_storage {
            // Raw or cached page: InnoDB completes all requested NDP work.
            self.db.metrics().add(|m| &m.ndp_completed_on_compute, 1);
            for off in page.iter_chain() {
                if !self.process_full_record(
                    state,
                    page.record_at(off),
                    full_layout,
                    check_range,
                    consumer,
                )? {
                    return Ok(false);
                }
            }
            return self.flush(state, consumer);
        }
        // An NDP page: mixed record types (§IV-C2). Resolve the layout the
        // NDP records use once per page, not per record.
        let (proj_layout, out_in_proj): (&RecordLayout, &[usize]) = match &self.proj {
            Some((l, o)) => (l, o.as_slice()),
            None => (full_layout, self.out_pos.as_slice()),
        };
        for off in page.iter_chain() {
            let bytes = page.record_at(off);
            let probe = RecordView::new(bytes, full_layout);
            match probe.rec_type() {
                RecType::Ordinary => {
                    if probe.trx_id() < self.watermark {
                        // Visible survivor: storage already filtered it.
                        if check_range {
                            let key = self.index.tree.key_of_leaf_record(&probe);
                            if !self.spec.range.contains(&key) {
                                continue;
                            }
                        }
                        if !self.deliver_full(state, &probe, consumer)? {
                            return Ok(false);
                        }
                    } else {
                        // Ambiguous: InnoDB does visibility/undo/predicate.
                        if !self.process_full_record(
                            state,
                            bytes,
                            full_layout,
                            check_range,
                            consumer,
                        )? {
                            return Ok(false);
                        }
                    }
                }
                RecType::NdpProjection | RecType::NdpAggregate => {
                    let v = RecordView::new(bytes, proj_layout);
                    if check_range {
                        let key = if self.proj.is_some() {
                            self.key_of_projected(&v)
                        } else {
                            self.index.tree.key_of_leaf_record(&v)
                        };
                        if !self.spec.range.contains(&key) {
                            continue;
                        }
                    }
                    if !self.push_row(state, out_in_proj.iter().map(|&p| v.value(p)), consumer)? {
                        return Ok(false);
                    }
                    if probe.rec_type() == RecType::NdpAggregate {
                        let payload = v.agg_payload().ok_or_else(|| {
                            Error::Corruption("agg record without payload".into())
                        })?;
                        let states = taurus_expr::agg::decode_states(payload)?;
                        state.stats.partials_merged += 1;
                        // Partials trail their carrier row immediately:
                        // drain the batch before delivering them.
                        if !self.flush(state, consumer)? {
                            return Ok(false);
                        }
                        if !consumer.on_partial(states)? {
                            return Ok(false);
                        }
                    }
                }
                other => {
                    return Err(Error::Corruption(format!(
                        "unexpected record type {other:?} in NDP page"
                    )))
                }
            }
        }
        self.flush(state, consumer)
    }
}

/// Execute a scan against `table`, delivering into `consumer`, under the
/// default query context (anonymous tenant, no deadline).
pub fn scan(
    db: &TaurusDb,
    table: &Table,
    spec: &ScanSpec,
    view: &ReadView,
    consumer: &mut dyn ScanConsumer,
) -> Result<ScanStats> {
    scan_ctx(db, table, spec, view, QueryCtx::new(), consumer)
}

/// Execute a scan under a query context: batch reads are billed to the
/// context's tenant on the Page-Store side, and the context's deadline is
/// checked at every page boundary — an expired deadline stops the scan
/// (and its prefetch pipeline) with [`Error::DeadlineExceeded`] instead
/// of letting a browned-out store stall it indefinitely.
pub fn scan_ctx(
    db: &TaurusDb,
    table: &Table,
    spec: &ScanSpec,
    view: &ReadView,
    qctx: QueryCtx,
    consumer: &mut dyn ScanConsumer,
) -> Result<ScanStats> {
    let ctx = ScanCtx::new(db, table, spec, view, qctx)?;
    let mut state = ctx.fresh_state();
    match &spec.ndp {
        Some(choice) if !choice.is_empty() && db.config().ndp.enabled => {
            ndp_scan(&ctx, &mut state, choice, consumer)?;
        }
        _ => {
            regular_scan(&ctx, &mut state, consumer)?;
        }
    }
    // Pages flush at their boundary, so this only fires for scans that
    // ended without draining a page (defensive; stops leave no residue).
    // All row metrics (`rows_scanned`, `rows_batched`) are charged inside
    // `flush`, so errored scans account for what they delivered.
    ctx.flush(&mut state, consumer)?;
    Ok(state.stats)
}

/// Deadline check at a page boundary, metering expiries.
fn check_deadline(db: &TaurusDb, qctx: &QueryCtx, what: &str) -> Result<()> {
    qctx.check(what).inspect_err(|_| {
        db.metrics().add(|m| &m.deadline_exceeded, 1);
    })
}

/// The classical InnoDB scan: one page at a time through the buffer pool;
/// no batch reads (§I), all filtering above.
fn regular_scan(
    ctx: &ScanCtx<'_>,
    state: &mut ScanState,
    consumer: &mut dyn ScanConsumer,
) -> Result<()> {
    let store = ctx.index.store.clone();
    let tree = &ctx.index.tree;
    let full = ctx.layout();
    let mut page = match tree.seek_leaf(store.as_ref(), &ctx.spec.range)? {
        Some(p) => p,
        None => return Ok(()),
    };
    loop {
        check_deadline(ctx.db, &ctx.qctx, "regular scan page")?;
        state.stats.pages_total += 1;
        let check_range = !ctx.page_fully_in_range(&page, full);
        let mut past_end = false;
        for off in page.iter_chain() {
            let bytes = page.record_at(off);
            if check_range {
                let v = RecordView::new(bytes, full);
                let key = tree.key_of_leaf_record(&v);
                if ctx.spec.range.past_upper(&key) {
                    past_end = true;
                    break;
                }
            }
            if !ctx.process_full_record(state, bytes, full, check_range, consumer)? {
                return Ok(());
            }
        }
        // Page boundary: drain the batch before moving on (or stopping).
        if !ctx.flush(state, consumer)? || past_end {
            return Ok(());
        }
        match page.next() {
            taurus_page::NO_PAGE => break,
            next => {
                // Stop early if the next page starts past the range.
                page = store.read(next)?;
                if let Some(first_off) = page.iter_chain().next() {
                    let v = RecordView::new(page.record_at(first_off), full);
                    let key = tree.key_of_leaf_record(&v);
                    if ctx.spec.range.past_upper(&key) {
                        break;
                    }
                }
            }
        }
    }
    Ok(())
}

// --- the prefetching NDP read pipeline --------------------------------------

/// Which path staged a page (drives [`ScanStats`] at consume time).
enum StagedKind {
    Cache,
    Ndp,
    Raw,
}

/// A page staged for in-order consumption. Staging allocates its NDP
/// frame best-effort, so in the common case every staged page — cached
/// copy or arrived fetch — is charged against the pool's NDP area for
/// exactly as long as it is held; the frame releases the moment the
/// consumer drains the page (guard drop), or when a cancelled scan drops
/// the whole in-flight queue. Under cross-scan contention the NDP area
/// may be exhausted by *other* scans' look-ahead; then `guard` stays
/// `None` and allocation is deferred to consume time, where the scan
/// needs only one frame to make progress — exactly the pre-pipeline
/// footprint, so concurrent scans never fail on look-ahead they could
/// have survived one page at a time.
struct StagedPage {
    page: Arc<Page>,
    guard: Option<NdpFrameGuard>,
    processed_by_storage: bool,
    kind: StagedKind,
}

/// RAII leg of the `ndp_batches_in_flight` gauge: counts one issued leaf
/// batch from dispatch until it is fully consumed *or* dropped by a
/// cancelled scan, so the gauge stays balanced on every exit path.
struct InflightGauge {
    metrics: Arc<Metrics>,
}

impl InflightGauge {
    fn new(metrics: Arc<Metrics>) -> InflightGauge {
        metrics.gauge_inc(
            |m| &m.ndp_batches_in_flight,
            |m| &m.ndp_batches_in_flight_peak,
        );
        InflightGauge { metrics }
    }
}

impl Drop for InflightGauge {
    fn drop(&mut self) {
        self.metrics.sub(|m| &m.ndp_batches_in_flight, 1);
    }
}

/// One issued leaf batch: its logical page order, the pages staged so far
/// (cached copies at issue time, fetched pages as their sub-batches
/// arrive), and the streaming batch read delivering the rest. Dropping an
/// `InflightBatch` mid-flight releases its staged frames and cancels its
/// [`BatchReadHandle`] (joining the SAL dispatch threads).
struct InflightBatch {
    pages: Vec<PageNo>,
    staged: HashMap<PageNo, StagedPage>,
    read: Option<BatchReadHandle>,
    /// `Some` iff the batch dispatched a storage read — fully-cached
    /// batches never count as "in flight", so the overlap observable
    /// (`ndp_batches_in_flight_peak` ≥ 2) cannot be satisfied by
    /// buffer-pool hits alone.
    _gauge: Option<InflightGauge>,
}

/// Cursor over the leaf-batch sequence of one scan range.
struct PrefetchCursor {
    resume: Option<Vec<u8>>,
    exhausted: bool,
}

/// Extract and dispatch the next leaf batch: descend for up to
/// `per_batch` leaf page numbers, copy buffer-pool hits straight into the
/// NDP area, and start the streaming SAL fan-out for the misses. Returns
/// `None` once the range is exhausted. This is the *issue* half of the
/// pipeline — it never blocks on storage.
fn issue_next_batch(
    ctx: &ScanCtx<'_>,
    bp: &Arc<BufferPool>,
    descriptor: &Arc<Vec<u8>>,
    per_batch: usize,
    cursor: &mut PrefetchCursor,
) -> Result<Option<InflightBatch>> {
    if cursor.exhausted {
        return Ok(None);
    }
    let store = &ctx.index.store;
    let (pages, lsn, next_resume) = ctx.index.tree.collect_leaf_batch(
        store.as_ref(),
        &ctx.spec.range,
        cursor.resume.as_deref(),
        per_batch,
    )?;
    match next_resume {
        Some(k) => cursor.resume = Some(k),
        None => cursor.exhausted = true,
    }
    if pages.is_empty() {
        cursor.exhausted = true;
        return Ok(None);
    }
    let space = ctx.index.tree.def.space;
    // Buffer-pool overlap: cached pages are copied to the NDP area and
    // completed by InnoDB; only misses go into the batch read. The probe
    // is pinned at the *batch's* captured LSN (not the advancing replica
    // pin): every page of the batch — cached copy or versioned fetch —
    // must come from the same cut the leaf set was enumerated at, or a
    // split landing mid-batch could tear record placement across pages.
    let mut staged: HashMap<PageNo, StagedPage> = HashMap::with_capacity(pages.len());
    let mut missing: Vec<PageNo> = Vec::with_capacity(pages.len());
    for &no in &pages {
        match store.cached_at(no, lsn) {
            Some(p) => {
                staged.insert(
                    no,
                    StagedPage {
                        guard: bp.try_alloc_ndp_frame(p.clone()),
                        page: p,
                        processed_by_storage: false,
                        kind: StagedKind::Cache,
                    },
                );
            }
            None => missing.push(no),
        }
    }
    let read = if missing.is_empty() {
        None
    } else {
        Some(store.sal().batch_read_streaming_ctx(
            space,
            &missing,
            lsn,
            descriptor.clone(),
            &ctx.qctx,
        )?)
    };
    let gauge = read
        .as_ref()
        .map(|_| InflightGauge::new(ctx.db.metrics().clone()));
    Ok(Some(InflightBatch {
        pages,
        staged,
        read,
        _gauge: gauge,
    }))
}

/// Take the staged page `no` out of `batch`, blocking on the streaming
/// read until its sub-batch arrives if it is still on the wire. Every
/// arriving sub-batch is staged wholesale (frames allocated
/// best-effort), so later pages of the batch are consumed without
/// further waits. Time spent blocked here is the pipeline's stall — 0
/// when prefetch fully hides storage behind compute.
fn take_staged(
    batch: &mut InflightBatch,
    no: PageNo,
    bp: &Arc<BufferPool>,
    metrics: &Arc<Metrics>,
) -> Result<StagedPage> {
    if let Some(s) = batch.staged.remove(&no) {
        return Ok(s);
    }
    let t0 = Instant::now();
    let result = loop {
        let Some(read) = batch.read.as_mut() else {
            break Err(Error::Internal(format!("page {no} missing from batch")));
        };
        match read.recv() {
            Some(Ok(sub)) => {
                for pr in sub {
                    let (page, processed_by_storage, kind) = match pr.payload {
                        PagePayload::Ndp(p) => (p, true, StagedKind::Ndp),
                        PagePayload::Raw(p) => (p, false, StagedKind::Raw),
                    };
                    batch.staged.insert(
                        pr.page_no,
                        StagedPage {
                            guard: bp.try_alloc_ndp_frame(page.clone()),
                            page,
                            processed_by_storage,
                            kind,
                        },
                    );
                }
                if let Some(s) = batch.staged.remove(&no) {
                    break Ok(s);
                }
            }
            Some(Err(e)) => break Err(e),
            None => break Err(Error::Internal(format!("page {no} missing from batch"))),
        }
    };
    metrics.add(|m| &m.prefetch_stall_ns, t0.elapsed().as_nanos() as u64);
    result
}

/// Drop every NDP frame this scan holds for *staged* (not-yet-consumed)
/// pages, keeping the pages themselves. Called before a zero-frame wait
/// so a contended scan never waits while sitting on look-ahead
/// accounting other scans could use; frames are re-acquired lazily at
/// each page's consume step.
fn shed_staged_frames(batch: &mut InflightBatch, inflight: &mut VecDeque<InflightBatch>) {
    for s in batch.staged.values_mut() {
        s.guard = None;
    }
    for b in inflight.iter_mut() {
        for s in b.staged.values_mut() {
            s.guard = None;
        }
    }
}

/// The NDP scan (§IV-C4): a pipelined batch extraction → BP overlap check
/// → SAL fan-out → ordered consumption loop. Up to
/// `ndp.prefetch_batches` leaf batches are in flight at once: batch N+1's
/// storage reads run (and its Page Store NDP work happens) while batch N
/// is consumed in logical page order — the compute/storage overlap of
/// §VI-2 — with the per-scan frame quota (`max_pages_look_ahead`, capped
/// at half the pool) *split* across the in-flight batches so look-ahead
/// can never exhaust the NDP area. Frames release as each page drains.
///
/// Cancellation: when the consumer stops (dropped `RowStream`, satisfied
/// LIMIT), the in-flight queue drops on return — releasing every staged
/// frame and joining every SAL sub-batch dispatch thread before the scan
/// returns to its caller.
fn ndp_scan(
    ctx: &ScanCtx<'_>,
    state: &mut ScanState,
    choice: &NdpChoice,
    consumer: &mut dyn ScanConsumer,
) -> Result<()> {
    let bp = ctx.index.store.buffer_pool().clone();
    let descriptor = Arc::new(build_descriptor(ctx.index, choice, ctx.watermark)?.encode());
    let cfg = ctx.db.config();
    let look_ahead = cfg.ndp.max_pages_look_ahead.max(1);
    let frame_quota = look_ahead.min((bp.capacity() / 2).max(1));
    // Clamping the depth to the quota keeps `prefetch * per_batch <=
    // frame_quota` exact even with floor division — depth beyond one
    // page per in-flight batch cannot buy overlap anyway.
    let prefetch = cfg.ndp.prefetch_batches.clamp(1, frame_quota);
    let per_batch = (frame_quota / prefetch).max(1);

    let mut cursor = PrefetchCursor {
        resume: None,
        exhausted: false,
    };
    // Set after the scan's first consume-time frame deferral: the NDP
    // area is contended, so later deferrals skip the grace wait instead
    // of paying it once per batch for the rest of the scan.
    let mut contended = false;
    let mut inflight: VecDeque<InflightBatch> = VecDeque::with_capacity(prefetch);
    loop {
        // Keep the pipeline full: batches N+1.. dispatch here, then the
        // front batch is drained below while they complete in storage.
        while !cursor.exhausted && inflight.len() < prefetch {
            match issue_next_batch(ctx, &bp, &descriptor, per_batch, &mut cursor)? {
                Some(b) => inflight.push_back(b),
                None => break,
            }
        }
        let Some(mut batch) = inflight.pop_front() else {
            break;
        };
        // Consume strictly in logical page order.
        for i in 0..batch.pages.len() {
            // Page-boundary deadline check: a browned-out or saturated
            // store cannot stall the scan past its budget (dropping the
            // in-flight queue on return cancels the remaining reads).
            check_deadline(ctx.db, &ctx.qctx, "ndp scan page")?;
            let no = batch.pages[i];
            let mut staged = take_staged(&mut batch, no, &bp, ctx.db.metrics())?;
            match staged.kind {
                StagedKind::Cache => state.stats.pages_from_cache += 1,
                StagedKind::Ndp => state.stats.pages_ndp += 1,
                StagedKind::Raw => state.stats.pages_raw += 1,
            }
            // Deferred frame allocation: staging found the NDP area full
            // (concurrent scans' look-ahead). Shed this scan's *own*
            // staged-frame accounting and try to take the one frame this
            // page needs, granting a brief zero-frames-held grace wait
            // (once per batch) for a release. If the area stays full —
            // e.g. parked streams pinning their look-ahead — consume
            // **unaccounted**: the page is already resident, the NDP-area
            // budget is backpressure, and neither correctness nor
            // availability may depend on frames this scan does not need.
            let _frame: Option<NdpFrameGuard> = match staged.guard.take() {
                Some(g) => Some(g),
                None => {
                    shed_staged_frames(&mut batch, &mut inflight);
                    let grace = if contended {
                        std::time::Duration::ZERO
                    } else {
                        std::time::Duration::from_millis(100)
                    };
                    contended = true;
                    bp.alloc_ndp_frame_timeout(staged.page.clone(), grace).ok()
                }
            };
            let keep_going =
                ctx.consume_page(state, &staged.page, staged.processed_by_storage, consumer)?;
            // Frame released as soon as its page drains.
            drop(_frame);
            if !keep_going {
                return Ok(());
            }
        }
    }
    Ok(())
}

/// Split a table access into `parts` disjoint ranges along level-1
/// boundaries — the PQ partitioning of §VI-1. Returns at most `parts`
/// ranges covering `range` exactly.
pub fn partition_ranges(
    table: &Table,
    index: usize,
    range: &ScanRange,
    parts: usize,
) -> Result<Vec<ScanRange>> {
    let idx = table.index(index);
    let leaves = idx.tree.n_leaves().max(1) as usize;
    let per = leaves.div_ceil(parts.max(1)).max(1);
    let mut boundaries: Vec<Vec<u8>> = Vec::new();
    let mut resume: Option<Vec<u8>> = None;
    loop {
        let (pages, _, next) =
            idx.tree
                .collect_leaf_batch(idx.store.as_ref(), range, resume.as_deref(), per)?;
        if pages.is_empty() {
            break;
        }
        match next {
            Some(k) => {
                boundaries.push(k.clone());
                resume = Some(k);
            }
            None => break,
        }
    }
    let mut ranges = Vec::with_capacity(boundaries.len() + 1);
    let mut lower = range.lower.clone();
    for b in boundaries {
        ranges.push(ScanRange {
            lower: lower.clone(),
            upper: Some((b.clone(), false)),
        });
        lower = Some((b, true));
    }
    ranges.push(ScanRange {
        lower,
        upper: range.upper.clone(),
    });
    Ok(ranges)
}
