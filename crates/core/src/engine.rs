//! The Taurus engine facade: catalog, transactions, DML, and the glue
//! between B+ trees, the buffer pool, the undo log, and the SAL.
//!
//! This is the "compute node": everything here runs on query/loader
//! threads whose CPU time lands in `compute_cpu_ns`, while Page Store work
//! happens on the storage side. All page mutations flow through
//! [`SpaceStore::write`], which mirrors each operation into the buffer
//! pool and ships it as redo through the SAL — the master never writes
//! pages, only log records (§II).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use taurus_btree::builder::bulk_build;
use taurus_btree::{BTree, RedoOp, TreeStore};
use taurus_bufferpool::BufferPool;
use taurus_common::schema::{IndexDef, Row, TableSchema};
use taurus_common::{
    ClusterConfig, Error, IndexId, Lsn, Metrics, PageNo, PageRef, Result, SliceId, SpaceId, TrxId,
    Value,
};
use taurus_mvcc::{ReadView, TrxManager, UndoLog};
use taurus_page::{Page, RecordView};
use taurus_pagestore::{RedoBody, RedoRecord};
use taurus_sal::Sal;

use crate::replication::{CatalogPayload, IndexMeta, LoadedPayload, TreeShape};

/// Shared read state of a replica compute node, maintained by the log
/// tailer (`taurus-replica`) and consulted by every read path.
///
/// Two cursors with distinct jobs:
///
/// * **`applied_lsn`** — everything at or below it has been applied by
///   the tailer (page deltas *and* write-ahead undo). This is the **read
///   pin**: pages are served at this LSN, so any transaction id a scan
///   can encounter already has its undo replicated.
/// * **`visible_lsn`** — the newest *transaction-consistent boundary*
///   (commit watermark / load completion). The published read `snapshot`
///   corresponds to it: writers without a replicated commit ≤ the
///   boundary are active ⇒ invisible, and their on-page effects are
///   reconstructed around via the replicated undo.
///
/// The invariant every reader relies on: **`snapshot` is never newer
/// than the read pin** — visibility decisions of a published view can
/// always be resolved against pages read at `applied_lsn ≥ visible_lsn`.
/// Pinning at `applied` rather than `visible` also keeps hot pages
/// inside the Page Stores' version-retention window: the pin trails the
/// master by actual replication lag, not by commit cadence.
pub struct ReplicaState {
    applied_lsn: AtomicU64,
    visible_lsn: AtomicU64,
    /// The read view at the `visible_lsn` boundary.
    snapshot: Mutex<ReadView>,
    /// Seqlock-style publication marker: odd while a boundary publication
    /// is in flight (the pin may already cover the boundary but the view
    /// swap has not happened). "Applied ≥ L with a stable even epoch"
    /// therefore implies every boundary ≤ L is fully published — what
    /// `Replica::wait_for_lsn` needs to promise its caller.
    publish_epoch: AtomicU64,
    detached: AtomicBool,
    /// Staleness bound: refuse to serve when `master_lsn - visible_lsn`
    /// exceeds this ([`TaurusDb::check_serveable`]).
    max_lag: Option<u64>,
}

impl ReplicaState {
    fn new(max_lag: Option<u64>) -> ReplicaState {
        ReplicaState {
            applied_lsn: AtomicU64::new(0),
            visible_lsn: AtomicU64::new(0),
            publish_epoch: AtomicU64::new(0),
            // Until the first boundary arrives, nothing is visible except
            // the bootstrap loader (ids < 2).
            snapshot: Mutex::new(ReadView {
                low_limit: 2,
                up_limit: 2,
                active: Vec::new(),
                creator: 0,
            }),
            detached: AtomicBool::new(false),
            max_lag,
        }
    }

    /// The LSN replica reads pin pages at (the tailer's applied cursor).
    pub fn read_pin(&self) -> Lsn {
        self.applied_lsn.load(Ordering::SeqCst)
    }

    /// The newest transaction-consistent boundary this replica serves.
    pub fn visible_lsn(&self) -> Lsn {
        self.visible_lsn.load(Ordering::SeqCst)
    }

    /// The read view at the published boundary.
    pub fn snapshot_view(&self) -> ReadView {
        self.snapshot.lock().clone()
    }

    /// Advance the applied cursor (monotone): called by the tailer after
    /// each *log batch* lands — one batch is one `write_log`, i.e. one
    /// tree operation, so multi-record ops (splits; delete-mark +
    /// trx-stamp pairs) are atomic under the pin — and before a
    /// boundary's tree shapes are installed, so a reader holding a
    /// freshly-published root finds its pages readable at whatever pin
    /// it loads afterwards.
    pub fn advance_applied(&self, lsn: Lsn) {
        self.applied_lsn.fetch_max(lsn, Ordering::SeqCst);
    }

    /// Mark a boundary publication in flight (epoch becomes odd). Call
    /// *before* the pin is advanced to the boundary; [`ReplicaState::publish`]
    /// closes it.
    pub fn begin_publish(&self) {
        self.publish_epoch.fetch_add(1, Ordering::SeqCst);
    }

    /// Publication marker; even = no boundary publication in flight.
    pub fn publish_epoch(&self) -> u64 {
        self.publish_epoch.load(Ordering::SeqCst)
    }

    /// Publish a boundary: the pin covers it *before* the view swaps, so
    /// no reader can pair a new view with an older pin.
    pub fn publish(&self, lsn: Lsn, view: ReadView) {
        self.advance_applied(lsn);
        self.visible_lsn.fetch_max(lsn, Ordering::SeqCst);
        *self.snapshot.lock() = view;
        self.publish_epoch.fetch_add(1, Ordering::SeqCst);
    }

    pub fn detach(&self) {
        self.detached.store(true, Ordering::SeqCst);
    }

    pub fn is_detached(&self) -> bool {
        self.detached.load(Ordering::SeqCst)
    }

    pub fn max_lag(&self) -> Option<u64> {
        self.max_lag
    }
}

/// Storage adapter for one space (one B+ tree): implements [`TreeStore`]
/// over the buffer pool + SAL.
pub struct SpaceStore {
    pub space: SpaceId,
    sal: Arc<Sal>,
    bp: Arc<BufferPool>,
    next_page: AtomicU32,
    latch: RwLock<()>,
    page_size: usize,
    slice_pages: u32,
    /// `Some` on a replica compute node: every read is pinned at the
    /// replica's visible LSN and writes are refused.
    replica: Option<Arc<ReplicaState>>,
}

impl SpaceStore {
    fn new(
        space: SpaceId,
        sal: Arc<Sal>,
        bp: Arc<BufferPool>,
        cfg: &ClusterConfig,
        replica: Option<Arc<ReplicaState>>,
    ) -> SpaceStore {
        SpaceStore {
            space,
            sal,
            bp,
            next_page: AtomicU32::new(0),
            latch: RwLock::new(()),
            page_size: cfg.page_size,
            slice_pages: cfg.slice_pages,
            replica,
        }
    }

    /// Buffer-pool lookup honouring the replica version pin: on a
    /// replica, a cached page is the *newest tailer-applied* version
    /// (its `lsn()` is the last redo applied to it), so it equals the
    /// at-pin version **iff** `lsn() <=` the read pin — a page the
    /// tailer just touched but whose LSN the pin has not covered yet must
    /// be re-read from a Page Store version chain instead. On the master
    /// this is a plain cache probe.
    pub fn cached_for_read(&self, page_no: PageNo) -> Option<Arc<Page>> {
        match &self.replica {
            Some(rs) => self.cached_at(page_no, rs.read_pin()),
            None => self.bp.get(self.pref(page_no)),
        }
    }

    /// Buffer-pool lookup pinned at a *specific* LSN (replica only):
    /// usable iff the page has not changed past `at` — then the cached
    /// (newest-applied) state *is* the at-`at` version. NDP batch
    /// extraction pins its whole batch — structure walk, cache probes,
    /// fetches — at one captured LSN through this, so a split landing
    /// mid-batch cannot mix physical cuts across the batch's pages.
    pub fn cached_at(&self, page_no: PageNo, at: Lsn) -> Option<Arc<Page>> {
        let p = self.bp.get(self.pref(page_no))?;
        if self.replica.is_some() && p.lsn() > at {
            return None;
        }
        Some(p)
    }

    pub fn page_size(&self) -> usize {
        self.page_size
    }

    pub fn buffer_pool(&self) -> &Arc<BufferPool> {
        &self.bp
    }

    pub fn sal(&self) -> &Arc<Sal> {
        &self.sal
    }

    fn pref(&self, page_no: PageNo) -> PageRef {
        PageRef::new(self.space, page_no)
    }

    /// Mirror one op into the buffer pool (only if the page is cached),
    /// keeping cached pages byte-identical to what Page Stores will hold.
    fn mirror_to_bp(&self, op: &RedoOp) {
        match op {
            RedoOp::NewPage(p) => {
                self.bp.insert(self.pref(p.page_no()), Arc::new(p.clone()));
            }
            RedoOp::InsertRecord {
                page_no,
                slot_idx,
                rec,
            } => {
                self.bp.update(self.pref(*page_no), |pg| {
                    pg.insert_at_slot(*slot_idx as usize, rec)
                        .expect("bp mirror insert");
                });
            }
            RedoOp::SetDeleteMark {
                page_no,
                rec_at,
                mark,
            } => {
                self.bp.update(self.pref(*page_no), |pg| {
                    taurus_page::record::set_delete_mark(pg.raw_mut(), *rec_at as usize, *mark);
                });
            }
            RedoOp::WriteBytes { page_no, at, bytes } => {
                self.bp.update(self.pref(*page_no), |pg| {
                    pg.raw_mut()[*at as usize..*at as usize + bytes.len()].copy_from_slice(bytes);
                });
            }
            RedoOp::SetPrev { page_no, prev } => {
                self.bp.update(self.pref(*page_no), |pg| pg.set_prev(*prev));
            }
        }
    }

    fn to_redo(&self, op: RedoOp) -> RedoRecord {
        let (page_no, body) = match op {
            RedoOp::NewPage(p) => (p.page_no(), RedoBody::NewPage(p.into_bytes())),
            RedoOp::InsertRecord {
                page_no,
                slot_idx,
                rec,
            } => (page_no, RedoBody::InsertRecord { slot_idx, rec }),
            RedoOp::SetDeleteMark {
                page_no,
                rec_at,
                mark,
            } => (page_no, RedoBody::SetDeleteMark { rec_at, mark }),
            RedoOp::WriteBytes { page_no, at, bytes } => {
                (page_no, RedoBody::WriteBytes { at, bytes })
            }
            RedoOp::SetPrev { page_no, prev } => (page_no, RedoBody::SetPrev(prev)),
        };
        RedoRecord {
            lsn: 0,
            space: self.space,
            page_no,
            body,
        }
    }
}

impl TreeStore for SpaceStore {
    fn read(&self, page_no: PageNo) -> Result<Arc<Page>> {
        let pref = self.pref(page_no);
        if let Some(rs) = &self.replica {
            // Replica: serve the version at the read pin (the tailer's
            // applied cursor). The cache holds the tailer's newest
            // applied state — usable only when the pin already covers the
            // page's last change; otherwise read the pinned version from
            // a Page Store chain. Pinned reads are *not* inserted into
            // the pool: only the tailer populates it, so "cached" always
            // means "newest applied" and the pin check stays sound.
            //
            // A page hotter than the Page Stores' retention window can
            // have its at-pin version trimmed while the replica trails
            // (the pin lags by actual replication lag). The pin only
            // advances, so retry briefly with a refreshed pin — the
            // tailer usually re-caches the page or catches up within the
            // window; a replica that stays too far behind surfaces the
            // trimmed-version error as its staleness signal.
            if let Some(p) = self.cached_for_read(page_no) {
                return Ok(p);
            }
            let t0 = std::time::Instant::now();
            loop {
                match self.sal.read_page(pref, Some(rs.read_pin())) {
                    Ok(p) => return Ok(p),
                    Err(e @ Error::InvalidState(_)) => {
                        if t0.elapsed() > taurus_common::config::STALE_PIN_RETRY {
                            return Err(e);
                        }
                        std::thread::yield_now();
                        if let Some(p) = self.cached_for_read(page_no) {
                            return Ok(p);
                        }
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        if let Some(p) = self.bp.get(pref) {
            return Ok(p);
        }
        let p = self.sal.read_page(pref, None)?;
        self.bp.insert(pref, p.clone());
        Ok(p)
    }

    fn read_pinned(&self, page_no: PageNo, lsn: Lsn) -> Result<Arc<Page>> {
        if self.replica.is_none() {
            return self.read(page_no);
        }
        // Replica: the exact at-`lsn` version, no pin refresh — the
        // caller is assembling a single-cut walk and restarts it whole
        // at a fresh cut on failure (`pin_retryable`).
        if let Some(p) = self.cached_at(page_no, lsn) {
            return Ok(p);
        }
        self.sal.read_page(self.pref(page_no), Some(lsn))
    }

    fn pin_retryable(&self) -> bool {
        self.replica.is_some()
    }

    fn allocate(&self) -> PageNo {
        let no = self.next_page.fetch_add(1, Ordering::SeqCst);
        if self.replica.is_none() {
            self.sal
                .ensure_slice(SliceId::of(self.space, no, self.slice_pages));
        }
        no
    }

    fn write(&self, ops: Vec<RedoOp>) -> Result<()> {
        if self.replica.is_some() {
            return Err(Error::InvalidState(
                "page write on a read replica (replicas are read-only)".into(),
            ));
        }
        for op in &ops {
            self.mirror_to_bp(op);
        }
        let records: Vec<RedoRecord> = ops.into_iter().map(|op| self.to_redo(op)).collect();
        self.sal.write_log(records)?;
        Ok(())
    }

    fn structure_latch(&self) -> &RwLock<()> {
        &self.latch
    }

    fn current_lsn(&self) -> Lsn {
        // Replica scans pin everything — leaf-batch LSN capture included —
        // at the read pin; the master reports the cluster LSN cursor.
        match &self.replica {
            Some(rs) => rs.read_pin(),
            None => self.sal.current_lsn(),
        }
    }
}

/// Per-column statistics gathered at load time (the optimizer's "table
/// statistics" for width and filter-factor estimation, §V-A/§V-B1).
#[derive(Clone, Debug, Default)]
pub struct ColumnStats {
    pub min: Option<Value>,
    pub max: Option<Value>,
    /// Approximate distinct count (exact for small loads).
    pub ndv: u64,
    /// Observed average byte width.
    pub avg_width: f64,
}

#[derive(Clone, Debug, Default)]
pub struct TableStats {
    pub row_count: u64,
    pub leaf_pages: u64,
    pub avg_row_width: f64,
    pub columns: Vec<ColumnStats>,
}

/// An index attached to a table: the tree plus its storage adapter.
pub struct TableIndex {
    pub tree: BTree,
    pub store: Arc<SpaceStore>,
}

/// A table: primary index, secondary indexes, statistics.
pub struct Table {
    pub schema: Arc<TableSchema>,
    pub primary: TableIndex,
    pub secondaries: Vec<TableIndex>,
    pub stats: RwLock<TableStats>,
}

impl Table {
    /// The index used by a scan: 0 = primary, i+1 = secondaries[i].
    pub fn index(&self, which: usize) -> &TableIndex {
        if which == 0 {
            &self.primary
        } else {
            &self.secondaries[which - 1]
        }
    }

    pub fn find_index(&self, name: &str) -> Option<usize> {
        if self.primary.tree.def.name == name {
            return Some(0);
        }
        self.secondaries
            .iter()
            .position(|s| s.tree.def.name == name)
            .map(|i| i + 1)
    }
}

/// The database engine: a master compute node, or — when constructed via
/// [`TaurusDb::attach_replica`] — a read-only replica compute node whose
/// reads are pinned at the replicated visible LSN.
pub struct TaurusDb {
    cfg: ClusterConfig,
    sal: Arc<Sal>,
    bp: Arc<BufferPool>,
    pub trx: TrxManager,
    pub undo: UndoLog,
    metrics: Arc<Metrics>,
    catalog: RwLock<HashMap<String, Arc<Table>>>,
    /// Serializes DDL: with creates one-at-a-time, the log order of
    /// `SysCatalog` records equals catalog insertion order, so replicas
    /// rebuilding from the log cannot install a same-name loser.
    ddl: Mutex<()>,
    /// Serializes boundary emission (commit / rollback / load
    /// completion): view capture, the record's LSN allocation, and the
    /// local transaction end happen atomically, so a later-LSN boundary
    /// can never carry a *staler* active set than an earlier one (which
    /// would re-hide an already-visible transaction on replicas).
    boundary: Mutex<()>,
    next_space: AtomicU32,
    next_index_id: AtomicU64,
    replica: Option<Arc<ReplicaState>>,
}

impl TaurusDb {
    /// Bring up a database over a fresh simulated cluster.
    pub fn new(cfg: ClusterConfig) -> Arc<TaurusDb> {
        let metrics = Metrics::shared();
        Self::with_metrics(cfg, metrics)
    }

    pub fn with_metrics(cfg: ClusterConfig, metrics: Arc<Metrics>) -> Arc<TaurusDb> {
        let sal = Sal::new(cfg.clone(), metrics.clone());
        let bp = BufferPool::new(cfg.buffer_pool_pages, metrics.clone());
        Arc::new(TaurusDb {
            cfg,
            sal,
            bp,
            trx: TrxManager::new(),
            undo: UndoLog::new(),
            metrics,
            catalog: RwLock::new(HashMap::new()),
            ddl: Mutex::new(()),
            boundary: Mutex::new(()),
            next_space: AtomicU32::new(1),
            next_index_id: AtomicU64::new(1),
            replica: None,
        })
    }

    /// Attach a **read replica** compute node to an existing cluster's
    /// storage services (no page copies): a read-only SAL attachment over
    /// the shared Page/Log Stores, a fresh buffer pool and metrics
    /// registry, an empty catalog, and a [`ReplicaState`] read pin at LSN
    /// 0. The returned engine serves nothing until a log tailer
    /// (`taurus-replica`) replays the master's log into it and publishes
    /// boundaries; queries are refused while detached or lagging beyond
    /// `replica.max_lag_lsn` ([`TaurusDb::check_serveable`]).
    pub fn attach_replica(master_sal: &Arc<Sal>) -> Arc<TaurusDb> {
        let metrics = Metrics::shared();
        let cfg = master_sal.config().clone();
        let sal = master_sal.attach_read_only(metrics.clone());
        let bp = BufferPool::new(cfg.buffer_pool_pages, metrics.clone());
        let state = Arc::new(ReplicaState::new(cfg.replica.max_lag_lsn));
        Arc::new(TaurusDb {
            cfg,
            sal,
            bp,
            trx: TrxManager::new(),
            undo: UndoLog::new(),
            metrics,
            catalog: RwLock::new(HashMap::new()),
            ddl: Mutex::new(()),
            boundary: Mutex::new(()),
            next_space: AtomicU32::new(1),
            next_index_id: AtomicU64::new(1),
            replica: Some(state),
        })
    }

    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    pub fn is_replica(&self) -> bool {
        self.replica.is_some()
    }

    /// The replica read-pin state (`None` on a master).
    pub fn replica_state(&self) -> Option<&Arc<ReplicaState>> {
        self.replica.as_ref()
    }

    /// The newest LSN this node serves reads at: the visible LSN on a
    /// replica, the cluster LSN cursor on the master.
    pub fn visible_lsn(&self) -> Lsn {
        match &self.replica {
            Some(rs) => rs.visible_lsn(),
            None => self.sal.current_lsn(),
        }
    }

    /// Replication lag in LSNs (0 on a master).
    pub fn replica_lag(&self) -> u64 {
        match &self.replica {
            Some(rs) => self.sal.current_lsn().saturating_sub(rs.visible_lsn()),
            None => 0,
        }
    }

    /// The staleness guardrail: a detached replica, or one lagging beyond
    /// `replica.max_lag_lsn`, refuses to serve new queries rather than
    /// hand out snapshots staler than the contract allows. Masters always
    /// pass.
    pub fn check_serveable(&self) -> Result<()> {
        let Some(rs) = &self.replica else {
            return Ok(());
        };
        if rs.is_detached() {
            return Err(Error::InvalidState(
                "replica is detached from the log (tailer stopped); re-attach to serve queries"
                    .into(),
            ));
        }
        if let Some(max) = rs.max_lag() {
            let lag = self.replica_lag();
            if lag > max {
                return Err(Error::InvalidState(format!(
                    "replica lag {lag} LSNs exceeds replica.max_lag_lsn {max}; \
                     refusing to serve until the tailer catches up"
                )));
            }
        }
        Ok(())
    }

    fn ensure_master(&self, what: &str) -> Result<()> {
        if self.replica.is_some() {
            return Err(Error::InvalidState(format!(
                "{what} on a read replica (replicas are read-only)"
            )));
        }
        Ok(())
    }

    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    pub fn sal(&self) -> &Arc<Sal> {
        &self.sal
    }

    pub fn buffer_pool(&self) -> &Arc<BufferPool> {
        &self.bp
    }

    /// Create a table with its primary index and the named secondary
    /// indexes (`(name, key columns)`).
    pub fn create_table(
        self: &Arc<Self>,
        schema: Arc<TableSchema>,
        secondary_indexes: &[(&str, Vec<usize>)],
    ) -> Result<Arc<Table>> {
        self.ensure_master("CREATE TABLE")?;
        // DDL is serialized (not by the catalog's write lock — holding
        // that across the log flush would stall every concurrent table
        // lookup) so that the log order of SysCatalog records equals
        // catalog insertion order: replicas install first-payload-wins
        // per name, which must match the master's winner.
        let _ddl = self.ddl.lock();
        if self.catalog.read().contains_key(&schema.name) {
            return Err(Error::InvalidState(format!("table {} exists", schema.name)));
        }
        let mk_index = |name: String, key_cols: Vec<usize>, is_primary: bool| {
            let space = SpaceId(self.next_space.fetch_add(1, Ordering::SeqCst));
            let index_id = IndexId(self.next_index_id.fetch_add(1, Ordering::SeqCst));
            let def = IndexDef {
                name,
                index_id,
                space,
                table: schema.clone(),
                key_cols,
                is_primary,
            };
            let store = Arc::new(SpaceStore::new(
                space,
                self.sal.clone(),
                self.bp.clone(),
                &self.cfg,
                None,
            ));
            TableIndex {
                tree: BTree::new(def),
                store,
            }
        };
        let primary = mk_index(format!("{}_pk", schema.name), schema.pk.clone(), true);
        let secondaries: Vec<TableIndex> = secondary_indexes
            .iter()
            .map(|(n, cols)| mk_index((*n).to_string(), cols.clone(), false))
            .collect();
        // DDL travels through the log — the only cross-node channel — so
        // replicas can rebuild the catalog (a `SysCatalog` record with
        // every decision this function just made).
        let meta = std::iter::once(&primary)
            .chain(&secondaries)
            .map(|ix| IndexMeta {
                name: ix.tree.def.name.clone(),
                index_id: ix.tree.def.index_id.0,
                space: ix.tree.def.space.0,
                key_cols: ix.tree.def.key_cols.clone(),
                is_primary: ix.tree.def.is_primary,
            })
            .collect();
        self.sal.write_log(vec![RedoRecord {
            lsn: 0,
            space: SpaceId(0),
            page_no: 0,
            body: RedoBody::SysCatalog(CatalogPayload::from_parts(&schema, meta).encode()),
        }])?;
        let table = Arc::new(Table {
            schema: schema.clone(),
            primary,
            secondaries,
            stats: RwLock::new(TableStats::default()),
        });
        self.catalog
            .write()
            .insert(schema.name.clone(), table.clone());
        Ok(table)
    }

    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        self.catalog
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("table {name}")))
    }

    pub fn tables(&self) -> Vec<Arc<Table>> {
        self.catalog.read().values().cloned().collect()
    }

    /// Bulk load rows (sorted or not — they are sorted here) as the
    /// bootstrap transaction, building all indexes bottom-up and gathering
    /// statistics.
    pub fn bulk_load(&self, table: &Table, mut rows: Vec<Row>) -> Result<u64> {
        self.ensure_master("bulk load")?;
        let n = rows.len() as u64;
        // Gather stats on the way in.
        let mut stats = TableStats {
            row_count: n,
            leaf_pages: 0,
            avg_row_width: 0.0,
            columns: vec![ColumnStats::default(); table.schema.columns.len()],
        };
        let mut distinct: Vec<std::collections::HashSet<String>> =
            vec![std::collections::HashSet::new(); table.schema.columns.len()];
        let mut width_sum = 0u64;
        for row in &rows {
            for (c, v) in row.iter().enumerate() {
                let cs = &mut stats.columns[c];
                if cs
                    .min
                    .as_ref()
                    .map(|m| v.cmp_total(m).is_lt())
                    .unwrap_or(true)
                {
                    cs.min = Some(v.clone());
                }
                if cs
                    .max
                    .as_ref()
                    .map(|m| v.cmp_total(m).is_gt())
                    .unwrap_or(true)
                {
                    cs.max = Some(v.clone());
                }
                let w = match v {
                    Value::Str(s) => s.len(),
                    _ => table.schema.columns[c].dtype.fixed_width().unwrap_or(8),
                };
                cs.avg_width += w as f64;
                width_sum += w as u64;
                if distinct[c].len() < 4096 {
                    distinct[c].insert(v.to_string());
                }
            }
        }
        for (c, d) in distinct.iter().enumerate() {
            stats.columns[c].ndv = d.len() as u64;
            if n > 0 {
                stats.columns[c].avg_width /= n as f64;
            }
        }
        stats.avg_row_width = if n > 0 {
            width_sum as f64 / n as f64
        } else {
            0.0
        };

        // Primary: sort by PK and build.
        let ptree = &table.primary.tree;
        rows.sort_by_key(|r| ptree.key_of_row(r));
        let leaves = bulk_build(
            ptree,
            table.primary.store.as_ref(),
            self.cfg.page_size,
            rows.iter().cloned(),
            taurus_mvcc::BOOTSTRAP_TRX,
        )?;
        stats.leaf_pages = leaves as u64;

        // Secondaries: project stored columns, sort, build.
        for sec in &table.secondaries {
            let stored = sec.tree.def.stored_cols();
            let mut sec_rows: Vec<Row> = rows
                .iter()
                .map(|r| stored.iter().map(|&c| r[c].clone()).collect())
                .collect();
            let stree = &sec.tree;
            sec_rows.sort_by_key(|r| stree.key_of_row(r));
            bulk_build(
                stree,
                sec.store.as_ref(),
                self.cfg.page_size,
                sec_rows.into_iter(),
                taurus_mvcc::BOOTSTRAP_TRX,
            )?;
        }
        // Bulk-load completion travels through the log: tree shapes (root /
        // height / leaf count live outside the page substrate) plus the
        // optimizer statistics, and the record doubles as a
        // transaction-consistent boundary replicas advance their visible
        // LSN to (every leaf image precedes it in the log).
        let shapes = std::iter::once(&table.primary)
            .chain(&table.secondaries)
            .map(|ix| TreeShape {
                space: ix.tree.def.space.0,
                root: ix.tree.root(),
                height: ix.tree.height(),
                n_leaves: ix.tree.n_leaves(),
            })
            .collect();
        {
            // Boundary emission: view + LSN captured atomically (see
            // `TaurusDb::boundary`).
            let _b = self.boundary.lock();
            let view = self.trx.read_view(0);
            let payload = LoadedPayload {
                table: table.schema.name.clone(),
                shapes,
                stats: stats.clone(),
                active: view.active,
                low_limit: view.low_limit,
            };
            self.sal.write_log(vec![RedoRecord {
                lsn: 0,
                space: SpaceId(0),
                page_no: 0,
                body: RedoBody::SysLoaded(payload.encode()),
            }])?;
        }
        *table.stats.write() = stats;
        Ok(n)
    }

    // --- transactions -------------------------------------------------------

    pub fn begin(&self) -> TrxId {
        self.trx.begin()
    }

    /// Commit: emit the commit-watermark record (`SysTrxEnd`) *before*
    /// ending the transaction locally. The record's LSN is a
    /// transaction-consistent boundary — every write of this transaction
    /// (and its write-ahead undo) precedes it in the log — so replicas may
    /// advance their visible LSN to it.
    pub fn commit(&self, trx: TrxId) {
        if self.replica.is_none() {
            // View capture + LSN allocation + local end are one atomic
            // step (`boundary`): a later-LSN watermark can never carry a
            // staler active set. The append itself is infallible
            // in-memory (write_log only fails on a read-only
            // attachment, which this is not).
            let _b = self.boundary.lock();
            let _ = self.sal.write_log(vec![self.trx_end_record(trx, false)]);
        }
        self.trx.end(trx);
    }

    /// Build the commit-watermark record for `trx`: the boundary marker
    /// plus the master's read-view ingredients at this instant (active
    /// ids excluding `trx`, and the id allocation cursor), so replicas
    /// publish an *exact* master view at the boundary.
    fn trx_end_record(&self, trx: TrxId, aborted: bool) -> RedoRecord {
        let view = self.trx.read_view(trx);
        RedoRecord {
            lsn: 0,
            space: SpaceId(0),
            page_no: 0,
            body: RedoBody::SysTrxEnd {
                trx,
                aborted,
                active: view.active,
                low_limit: view.low_limit,
            },
        }
    }

    /// Roll back: restore previous images from the undo log, then end.
    /// The compensation writes travel through the log like any other
    /// redo; the closing `SysTrxEnd { aborted: true }` tells replicas the
    /// writer is gone for good (it stays invisible forever) and marks the
    /// post-compensation boundary.
    pub fn rollback(&self, trx: TrxId) -> Result<()> {
        self.ensure_master("ROLLBACK")?;
        let entries = self.undo.take_for_rollback(trx);
        for (space, key, entry) in entries {
            let table = self
                .tables()
                .into_iter()
                .find(|t| {
                    t.primary.tree.def.space == space
                        || t.secondaries.iter().any(|s| s.tree.def.space == space)
                })
                .ok_or_else(|| Error::Internal(format!("no table for space {space:?}")))?;
            let idx = if table.primary.tree.def.space == space {
                &table.primary
            } else {
                table
                    .secondaries
                    .iter()
                    .find(|s| s.tree.def.space == space)
                    .expect("matched above")
            };
            let store = idx.store.as_ref();
            match entry.prev_image {
                Some(img) => {
                    // Restore the previous image in place.
                    let loc = idx
                        .tree
                        .get(store, &key)?
                        .ok_or_else(|| Error::Internal("rolled-back record vanished".into()))?;
                    let mut img = img;
                    img[1..5].copy_from_slice(&loc.bytes[1..5]); // keep chain + heap_no
                    store.write(vec![RedoOp::WriteBytes {
                        page_no: loc.page_no,
                        at: loc.rec_at,
                        bytes: img,
                    }])?;
                }
                None => {
                    // The write was an insert: make the row permanently
                    // invisible (delete-marked as the bootstrap writer).
                    // Undo entries are pushed write-ahead, so compensate
                    // only an insert this transaction actually performed:
                    // if the key is absent, or its current image belongs
                    // to another writer (this transaction's insert lost a
                    // race and never landed), there is nothing to undo —
                    // delete-marking someone else's committed row would
                    // be permanent data loss.
                    if let Some(loc) = idx.tree.get(store, &key)? {
                        let v = RecordView::new(&loc.bytes, &idx.tree.leaf_layout);
                        if v.trx_id() == trx {
                            idx.tree.set_delete_mark(
                                store,
                                &key,
                                taurus_mvcc::BOOTSTRAP_TRX,
                                true,
                            )?;
                        }
                    }
                }
            }
        }
        {
            let _b = self.boundary.lock();
            self.sal.write_log(vec![self.trx_end_record(trx, true)])?;
            self.trx.end(trx);
        }
        Ok(())
    }

    /// A consistent read view. On a replica this is **always** the
    /// replicated boundary snapshot — never the local [`TrxManager`],
    /// which knows nothing of the master's transactions (deriving a view
    /// from it would declare every master write visible and serve torn
    /// transactions).
    pub fn read_view(&self, trx: TrxId) -> ReadView {
        match &self.replica {
            Some(rs) => rs.snapshot_view(),
            None => self.trx.read_view(trx),
        }
    }

    // --- DML ------------------------------------------------------------------

    /// Ship one undo entry through the log, **write-ahead**: the entry is
    /// logged *before* the tree write it protects, so any replica that has
    /// applied a write has always already applied the undo needed to
    /// reconstruct around it — no boundary can fall between a write and
    /// its undo. (The local [`UndoLog`] push still happens after the op
    /// succeeds, so failed ops leave no local entry, exactly as before;
    /// a logged entry for a failed op is dead weight replicas never
    /// consult, since the record it would reconstruct never changed.)
    fn log_undo(
        &self,
        space: SpaceId,
        key: &[u8],
        writer: TrxId,
        prev: Option<Vec<u8>>,
    ) -> Result<()> {
        self.sal.write_log(vec![RedoRecord {
            lsn: 0,
            space,
            page_no: 0,
            body: RedoBody::SysUndo {
                key: key.to_vec(),
                writer,
                prev,
            },
        }])?;
        Ok(())
    }

    fn tree_shape(ix: &TableIndex) -> (PageNo, u32, u32) {
        (ix.tree.root(), ix.tree.height(), ix.tree.n_leaves())
    }

    /// Root splits and leaf-count changes live outside the page substrate;
    /// ship them as a `SysShape` record (after the split's redo, before the
    /// owning transaction's commit watermark) so replicas publish the new
    /// shape together with the boundary that makes its pages readable.
    fn log_shape_if_changed(&self, ix: &TableIndex, before: (PageNo, u32, u32)) -> Result<()> {
        let after = Self::tree_shape(ix);
        if after == before {
            return Ok(());
        }
        self.sal.write_log(vec![RedoRecord {
            lsn: 0,
            space: ix.tree.def.space,
            page_no: 0,
            body: RedoBody::SysShape {
                root: after.0,
                height: after.1,
                n_leaves: after.2,
            },
        }])?;
        Ok(())
    }

    /// Current record image of `key` in one index (the write-ahead undo
    /// payload for deletes/updates).
    fn prev_image(&self, ix: &TableIndex, key: &[u8]) -> Result<Vec<u8>> {
        Ok(ix
            .tree
            .get(ix.store.as_ref(), key)?
            .ok_or_else(|| Error::NotFound("row image for undo".into()))?
            .bytes)
    }

    /// A write-ahead insertion undo entry (`prev = None`) that never gets
    /// its insert is poison for replicas: reconstruction walking the
    /// replicated chain newest-first would hit it and make the row's
    /// *committed* versions vanish. So the duplicate check runs *before*
    /// `log_undo` — mirroring the check `BTree::insert` repeats under the
    /// latch. (Prev-image entries are harmless to over-log: they carry
    /// the correct previous version.)
    fn check_no_duplicate(&self, ix: &TableIndex, key: &[u8]) -> Result<()> {
        if ix.tree.get(ix.store.as_ref(), key)?.is_some() {
            return Err(Error::InvalidState(format!(
                "duplicate key in index {}",
                ix.tree.def.name
            )));
        }
        Ok(())
    }

    /// Insert one row under `trx`.
    pub fn insert_row(&self, table: &Table, trx: TrxId, row: &Row) -> Result<()> {
        self.ensure_master("INSERT")?;
        let pkey = table.primary.tree.key_of_row(row);
        // Validate every index *before* the first write-ahead undo record
        // leaves this node (see `check_no_duplicate`).
        self.check_no_duplicate(&table.primary, &pkey)?;
        let sec_rows: Vec<(Row, Vec<u8>)> = table
            .secondaries
            .iter()
            .map(|sec| {
                let stored = sec.tree.def.stored_cols();
                let srow: Row = stored.iter().map(|&c| row[c].clone()).collect();
                let skey = sec.tree.key_of_row(&srow);
                (srow, skey)
            })
            .collect();
        for (sec, (_, skey)) in table.secondaries.iter().zip(&sec_rows) {
            self.check_no_duplicate(sec, skey)?;
        }
        // Undo is write-ahead *locally* too, not just in the log: a
        // concurrent master scan that sees this insert's record must
        // already find its chain entry, or reconstruction around the
        // still-active writer silently serves a stale version. (The
        // failure paths this ordering could orphan are pre-validated
        // above; rollback tolerates a missing row defensively.)
        self.log_undo(table.primary.tree.def.space, &pkey, trx, None)?;
        self.undo
            .push(table.primary.tree.def.space, &pkey, trx, None);
        let shape = Self::tree_shape(&table.primary);
        table
            .primary
            .tree
            .insert(table.primary.store.as_ref(), row, trx)?;
        self.log_shape_if_changed(&table.primary, shape)?;
        for (sec, (srow, skey)) in table.secondaries.iter().zip(&sec_rows) {
            self.log_undo(sec.tree.def.space, skey, trx, None)?;
            self.undo.push(sec.tree.def.space, skey, trx, None);
            let shape = Self::tree_shape(sec);
            sec.tree.insert(sec.store.as_ref(), srow, trx)?;
            self.log_shape_if_changed(sec, shape)?;
        }
        Ok(())
    }

    /// Delete (mark) a row by primary key values under `trx`.
    pub fn delete_row(&self, table: &Table, trx: TrxId, pk_values: &[Value]) -> Result<()> {
        self.ensure_master("DELETE")?;
        let pkey = table.primary.tree.encode_search_key(pk_values);
        // One descent serves both needs: the row values (for secondary
        // maintenance) and the previous image (write-ahead undo).
        let prev = self
            .prev_image(&table.primary, &pkey)
            .map_err(|_| Error::NotFound("row to delete".into()))?;
        let row = RecordView::new(&prev, &table.primary.tree.leaf_layout).values();
        self.log_undo(table.primary.tree.def.space, &pkey, trx, Some(prev.clone()))?;
        self.undo
            .push(table.primary.tree.def.space, &pkey, trx, Some(prev));
        table
            .primary
            .tree
            .set_delete_mark(table.primary.store.as_ref(), &pkey, trx, true)?;
        for sec in &table.secondaries {
            let stored = sec.tree.def.stored_cols();
            let srow: Row = stored.iter().map(|&c| row[c].clone()).collect();
            let skey = sec.tree.key_of_row(&srow);
            let prev = self.prev_image(sec, &skey)?;
            self.log_undo(sec.tree.def.space, &skey, trx, Some(prev.clone()))?;
            self.undo.push(sec.tree.def.space, &skey, trx, Some(prev));
            sec.tree
                .set_delete_mark(sec.store.as_ref(), &skey, trx, true)?;
        }
        Ok(())
    }

    /// Update a row (primary key unchanged, fixed-width columns only).
    pub fn update_row(&self, table: &Table, trx: TrxId, new_row: &Row) -> Result<()> {
        self.ensure_master("UPDATE")?;
        let pkey = table.primary.tree.key_of_row(new_row);
        let prev = self
            .prev_image(&table.primary, &pkey)
            .map_err(|_| Error::NotFound("row to update".into()))?;
        let old_row = RecordView::new(&prev, &table.primary.tree.leaf_layout).values();
        self.log_undo(table.primary.tree.def.space, &pkey, trx, Some(prev.clone()))?;
        self.undo
            .push(table.primary.tree.def.space, &pkey, trx, Some(prev));
        table
            .primary
            .tree
            .update_in_place(table.primary.store.as_ref(), new_row, trx)?;
        for sec in &table.secondaries {
            let stored = sec.tree.def.stored_cols();
            let old_s: Row = stored.iter().map(|&c| old_row[c].clone()).collect();
            let new_s: Row = stored.iter().map(|&c| new_row[c].clone()).collect();
            let old_key = sec.tree.key_of_row(&old_s);
            let new_key = sec.tree.key_of_row(&new_s);
            if old_key == new_key {
                if old_s != new_s {
                    let prev = self.prev_image(sec, &old_key)?;
                    self.log_undo(sec.tree.def.space, &old_key, trx, Some(prev.clone()))?;
                    self.undo
                        .push(sec.tree.def.space, &old_key, trx, Some(prev));
                    sec.tree.update_in_place(sec.store.as_ref(), &new_s, trx)?;
                }
            } else {
                // Key change: delete-mark old entry, insert new one. The
                // insert's duplicate check runs before either write-ahead
                // undo record ships (see `check_no_duplicate`).
                self.check_no_duplicate(sec, &new_key)?;
                let prev = self.prev_image(sec, &old_key)?;
                self.log_undo(sec.tree.def.space, &old_key, trx, Some(prev.clone()))?;
                self.undo
                    .push(sec.tree.def.space, &old_key, trx, Some(prev));
                sec.tree
                    .set_delete_mark(sec.store.as_ref(), &old_key, trx, true)?;
                self.log_undo(sec.tree.def.space, &new_key, trx, None)?;
                self.undo.push(sec.tree.def.space, &new_key, trx, None);
                let shape = Self::tree_shape(sec);
                sec.tree.insert(sec.store.as_ref(), &new_s, trx)?;
                self.log_shape_if_changed(sec, shape)?;
            }
        }
        Ok(())
    }

    /// MVCC point lookup: the version of the row visible to `view`.
    pub fn lookup_row(
        &self,
        table: &Table,
        view: &ReadView,
        pk_values: &[Value],
    ) -> Result<Option<Row>> {
        let pkey = table.primary.tree.encode_search_key(pk_values);
        let loc = match table
            .primary
            .tree
            .get(table.primary.store.as_ref(), &pkey)?
        {
            None => return Ok(None),
            Some(l) => l,
        };
        let space = table.primary.tree.def.space;
        let image = match self.undo.reconstruct(space, &pkey, &loc.bytes, view) {
            Some(img) => img,
            None => return Ok(None),
        };
        let v = RecordView::new(&image, &table.primary.tree.leaf_layout);
        if v.delete_mark() {
            return Ok(None);
        }
        Ok(Some(v.values()))
    }

    // --- replica catalog reconstruction (log-tailer hooks) -------------------

    /// Rebuild a table from a replicated `SysCatalog` payload: the same
    /// `Table`/`BTree` objects `create_table` builds on the master, over
    /// read-pinned stores. First payload per name wins (a duplicate can
    /// only come from a master-side race whose loser never entered the
    /// master catalog either). Replica engines only.
    pub fn install_replicated_table(&self, payload: &CatalogPayload) -> Result<()> {
        let rs = self
            .replica
            .as_ref()
            .ok_or_else(|| Error::InvalidState("catalog replication into a master".into()))?;
        let schema = TableSchema::new(&payload.name, payload.columns.clone(), payload.pk.clone());
        let mut primary: Option<TableIndex> = None;
        let mut secondaries: Vec<TableIndex> = Vec::new();
        for ix in &payload.indexes {
            let def = IndexDef {
                name: ix.name.clone(),
                index_id: IndexId(ix.index_id),
                space: SpaceId(ix.space),
                table: schema.clone(),
                key_cols: ix.key_cols.clone(),
                is_primary: ix.is_primary,
            };
            let store = Arc::new(SpaceStore::new(
                def.space,
                self.sal.clone(),
                self.bp.clone(),
                &self.cfg,
                Some(rs.clone()),
            ));
            let t = TableIndex {
                tree: BTree::new(def),
                store,
            };
            if ix.is_primary {
                primary = Some(t);
            } else {
                secondaries.push(t);
            }
        }
        let primary = primary
            .ok_or_else(|| Error::Corruption("catalog payload without a primary index".into()))?;
        let table = Arc::new(Table {
            schema: schema.clone(),
            primary,
            secondaries,
            stats: RwLock::new(TableStats::default()),
        });
        // First-wins: if two racing master creates both logged a payload
        // for the same name, only the one whose insert won exists on the
        // master — the earlier-LSN record. Never replace.
        self.catalog
            .write()
            .entry(schema.name.clone())
            .or_insert(table);
        Ok(())
    }

    /// Apply a replicated `SysLoaded` payload: tree shapes + optimizer
    /// statistics (so replica NDP decisions match the master's).
    pub fn apply_replicated_load(&self, payload: &LoadedPayload) -> Result<()> {
        let table = self.table(&payload.table)?;
        for s in &payload.shapes {
            self.apply_replicated_shape(SpaceId(s.space), s.root, s.height, s.n_leaves)?;
        }
        *table.stats.write() = payload.stats.clone();
        Ok(())
    }

    /// Apply a replicated `SysShape` record to the index owning `space`.
    ///
    /// Shape records can arrive LSN-inverted: the master reads the shape
    /// and logs it *after* releasing the tree latch, so two racing
    /// splitters may log (newer shape, lower LSN) then (older shape,
    /// higher LSN). Shapes are strictly ordered by leaf count (every
    /// shape change includes exactly one leaf split; there are no
    /// merges), so a record whose `n_leaves` does not exceed the
    /// installed one is stale — or a duplicate — and is skipped.
    pub fn apply_replicated_shape(
        &self,
        space: SpaceId,
        root: PageNo,
        height: u32,
        n_leaves: u32,
    ) -> Result<()> {
        let set = |tree: &BTree| {
            if n_leaves > tree.n_leaves() || tree.root() == taurus_page::NO_PAGE {
                tree.set_shape(root, height, n_leaves);
            }
        };
        for t in self.tables() {
            if t.primary.tree.def.space == space {
                set(&t.primary.tree);
                return Ok(());
            }
            if let Some(s) = t.secondaries.iter().find(|s| s.tree.def.space == space) {
                set(&s.tree);
                return Ok(());
            }
        }
        Err(Error::NotFound(format!(
            "no replicated index owns space {space:?} (shape record before its catalog record?)"
        )))
    }
}
