//! The Taurus engine facade: catalog, transactions, DML, and the glue
//! between B+ trees, the buffer pool, the undo log, and the SAL.
//!
//! This is the "compute node": everything here runs on query/loader
//! threads whose CPU time lands in `compute_cpu_ns`, while Page Store work
//! happens on the storage side. All page mutations flow through
//! [`SpaceStore::write`], which mirrors each operation into the buffer
//! pool and ships it as redo through the SAL — the master never writes
//! pages, only log records (§II).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use taurus_btree::builder::bulk_build;
use taurus_btree::{BTree, RedoOp, TreeStore};
use taurus_bufferpool::BufferPool;
use taurus_common::schema::{IndexDef, Row, TableSchema};
use taurus_common::{
    ClusterConfig, Error, IndexId, Lsn, Metrics, PageNo, PageRef, Result, SliceId, SpaceId, TrxId,
    Value,
};
use taurus_mvcc::{ReadView, TrxManager, UndoLog};
use taurus_page::{Page, RecordView};
use taurus_pagestore::{RedoBody, RedoRecord};
use taurus_sal::Sal;

/// Storage adapter for one space (one B+ tree): implements [`TreeStore`]
/// over the buffer pool + SAL.
pub struct SpaceStore {
    pub space: SpaceId,
    sal: Arc<Sal>,
    bp: Arc<BufferPool>,
    next_page: AtomicU32,
    latch: RwLock<()>,
    page_size: usize,
    slice_pages: u32,
}

impl SpaceStore {
    fn new(space: SpaceId, sal: Arc<Sal>, bp: Arc<BufferPool>, cfg: &ClusterConfig) -> SpaceStore {
        SpaceStore {
            space,
            sal,
            bp,
            next_page: AtomicU32::new(0),
            latch: RwLock::new(()),
            page_size: cfg.page_size,
            slice_pages: cfg.slice_pages,
        }
    }

    pub fn page_size(&self) -> usize {
        self.page_size
    }

    pub fn buffer_pool(&self) -> &Arc<BufferPool> {
        &self.bp
    }

    pub fn sal(&self) -> &Arc<Sal> {
        &self.sal
    }

    fn pref(&self, page_no: PageNo) -> PageRef {
        PageRef::new(self.space, page_no)
    }

    /// Mirror one op into the buffer pool (only if the page is cached),
    /// keeping cached pages byte-identical to what Page Stores will hold.
    fn mirror_to_bp(&self, op: &RedoOp) {
        match op {
            RedoOp::NewPage(p) => {
                self.bp.insert(self.pref(p.page_no()), Arc::new(p.clone()));
            }
            RedoOp::InsertRecord {
                page_no,
                slot_idx,
                rec,
            } => {
                self.bp.update(self.pref(*page_no), |pg| {
                    pg.insert_at_slot(*slot_idx as usize, rec)
                        .expect("bp mirror insert");
                });
            }
            RedoOp::SetDeleteMark {
                page_no,
                rec_at,
                mark,
            } => {
                self.bp.update(self.pref(*page_no), |pg| {
                    taurus_page::record::set_delete_mark(pg.raw_mut(), *rec_at as usize, *mark);
                });
            }
            RedoOp::WriteBytes { page_no, at, bytes } => {
                self.bp.update(self.pref(*page_no), |pg| {
                    pg.raw_mut()[*at as usize..*at as usize + bytes.len()].copy_from_slice(bytes);
                });
            }
            RedoOp::SetPrev { page_no, prev } => {
                self.bp.update(self.pref(*page_no), |pg| pg.set_prev(*prev));
            }
        }
    }

    fn to_redo(&self, op: RedoOp) -> RedoRecord {
        let (page_no, body) = match op {
            RedoOp::NewPage(p) => (p.page_no(), RedoBody::NewPage(p.into_bytes())),
            RedoOp::InsertRecord {
                page_no,
                slot_idx,
                rec,
            } => (page_no, RedoBody::InsertRecord { slot_idx, rec }),
            RedoOp::SetDeleteMark {
                page_no,
                rec_at,
                mark,
            } => (page_no, RedoBody::SetDeleteMark { rec_at, mark }),
            RedoOp::WriteBytes { page_no, at, bytes } => {
                (page_no, RedoBody::WriteBytes { at, bytes })
            }
            RedoOp::SetPrev { page_no, prev } => (page_no, RedoBody::SetPrev(prev)),
        };
        RedoRecord {
            lsn: 0,
            space: self.space,
            page_no,
            body,
        }
    }
}

impl TreeStore for SpaceStore {
    fn read(&self, page_no: PageNo) -> Result<Arc<Page>> {
        let pref = self.pref(page_no);
        if let Some(p) = self.bp.get(pref) {
            return Ok(p);
        }
        let p = self.sal.read_page(pref, None)?;
        self.bp.insert(pref, p.clone());
        Ok(p)
    }

    fn allocate(&self) -> PageNo {
        let no = self.next_page.fetch_add(1, Ordering::SeqCst);
        self.sal
            .ensure_slice(SliceId::of(self.space, no, self.slice_pages));
        no
    }

    fn write(&self, ops: Vec<RedoOp>) -> Result<()> {
        for op in &ops {
            self.mirror_to_bp(op);
        }
        let records: Vec<RedoRecord> = ops.into_iter().map(|op| self.to_redo(op)).collect();
        self.sal.write_log(records)?;
        Ok(())
    }

    fn structure_latch(&self) -> &RwLock<()> {
        &self.latch
    }

    fn current_lsn(&self) -> Lsn {
        self.sal.current_lsn()
    }
}

/// Per-column statistics gathered at load time (the optimizer's "table
/// statistics" for width and filter-factor estimation, §V-A/§V-B1).
#[derive(Clone, Debug, Default)]
pub struct ColumnStats {
    pub min: Option<Value>,
    pub max: Option<Value>,
    /// Approximate distinct count (exact for small loads).
    pub ndv: u64,
    /// Observed average byte width.
    pub avg_width: f64,
}

#[derive(Clone, Debug, Default)]
pub struct TableStats {
    pub row_count: u64,
    pub leaf_pages: u64,
    pub avg_row_width: f64,
    pub columns: Vec<ColumnStats>,
}

/// An index attached to a table: the tree plus its storage adapter.
pub struct TableIndex {
    pub tree: BTree,
    pub store: Arc<SpaceStore>,
}

/// A table: primary index, secondary indexes, statistics.
pub struct Table {
    pub schema: Arc<TableSchema>,
    pub primary: TableIndex,
    pub secondaries: Vec<TableIndex>,
    pub stats: RwLock<TableStats>,
}

impl Table {
    /// The index used by a scan: 0 = primary, i+1 = secondaries[i].
    pub fn index(&self, which: usize) -> &TableIndex {
        if which == 0 {
            &self.primary
        } else {
            &self.secondaries[which - 1]
        }
    }

    pub fn find_index(&self, name: &str) -> Option<usize> {
        if self.primary.tree.def.name == name {
            return Some(0);
        }
        self.secondaries
            .iter()
            .position(|s| s.tree.def.name == name)
            .map(|i| i + 1)
    }
}

/// The database engine.
pub struct TaurusDb {
    cfg: ClusterConfig,
    sal: Arc<Sal>,
    bp: Arc<BufferPool>,
    pub trx: TrxManager,
    pub undo: UndoLog,
    metrics: Arc<Metrics>,
    catalog: RwLock<HashMap<String, Arc<Table>>>,
    next_space: AtomicU32,
    next_index_id: AtomicU64,
}

impl TaurusDb {
    /// Bring up a database over a fresh simulated cluster.
    pub fn new(cfg: ClusterConfig) -> Arc<TaurusDb> {
        let metrics = Metrics::shared();
        Self::with_metrics(cfg, metrics)
    }

    pub fn with_metrics(cfg: ClusterConfig, metrics: Arc<Metrics>) -> Arc<TaurusDb> {
        let sal = Sal::new(cfg.clone(), metrics.clone());
        let bp = BufferPool::new(cfg.buffer_pool_pages, metrics.clone());
        Arc::new(TaurusDb {
            cfg,
            sal,
            bp,
            trx: TrxManager::new(),
            undo: UndoLog::new(),
            metrics,
            catalog: RwLock::new(HashMap::new()),
            next_space: AtomicU32::new(1),
            next_index_id: AtomicU64::new(1),
        })
    }

    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    pub fn sal(&self) -> &Arc<Sal> {
        &self.sal
    }

    pub fn buffer_pool(&self) -> &Arc<BufferPool> {
        &self.bp
    }

    /// Create a table with its primary index and the named secondary
    /// indexes (`(name, key columns)`).
    pub fn create_table(
        self: &Arc<Self>,
        schema: Arc<TableSchema>,
        secondary_indexes: &[(&str, Vec<usize>)],
    ) -> Result<Arc<Table>> {
        let mut catalog = self.catalog.write();
        if catalog.contains_key(&schema.name) {
            return Err(Error::InvalidState(format!("table {} exists", schema.name)));
        }
        let mk_index = |name: String, key_cols: Vec<usize>, is_primary: bool| {
            let space = SpaceId(self.next_space.fetch_add(1, Ordering::SeqCst));
            let index_id = IndexId(self.next_index_id.fetch_add(1, Ordering::SeqCst));
            let def = IndexDef {
                name,
                index_id,
                space,
                table: schema.clone(),
                key_cols,
                is_primary,
            };
            let store = Arc::new(SpaceStore::new(
                space,
                self.sal.clone(),
                self.bp.clone(),
                &self.cfg,
            ));
            TableIndex {
                tree: BTree::new(def),
                store,
            }
        };
        let primary = mk_index(format!("{}_pk", schema.name), schema.pk.clone(), true);
        let secondaries = secondary_indexes
            .iter()
            .map(|(n, cols)| mk_index((*n).to_string(), cols.clone(), false))
            .collect();
        let table = Arc::new(Table {
            schema: schema.clone(),
            primary,
            secondaries,
            stats: RwLock::new(TableStats::default()),
        });
        catalog.insert(schema.name.clone(), table.clone());
        Ok(table)
    }

    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        self.catalog
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("table {name}")))
    }

    pub fn tables(&self) -> Vec<Arc<Table>> {
        self.catalog.read().values().cloned().collect()
    }

    /// Bulk load rows (sorted or not — they are sorted here) as the
    /// bootstrap transaction, building all indexes bottom-up and gathering
    /// statistics.
    pub fn bulk_load(&self, table: &Table, mut rows: Vec<Row>) -> Result<u64> {
        let n = rows.len() as u64;
        // Gather stats on the way in.
        let mut stats = TableStats {
            row_count: n,
            leaf_pages: 0,
            avg_row_width: 0.0,
            columns: vec![ColumnStats::default(); table.schema.columns.len()],
        };
        let mut distinct: Vec<std::collections::HashSet<String>> =
            vec![std::collections::HashSet::new(); table.schema.columns.len()];
        let mut width_sum = 0u64;
        for row in &rows {
            for (c, v) in row.iter().enumerate() {
                let cs = &mut stats.columns[c];
                if cs
                    .min
                    .as_ref()
                    .map(|m| v.cmp_total(m).is_lt())
                    .unwrap_or(true)
                {
                    cs.min = Some(v.clone());
                }
                if cs
                    .max
                    .as_ref()
                    .map(|m| v.cmp_total(m).is_gt())
                    .unwrap_or(true)
                {
                    cs.max = Some(v.clone());
                }
                let w = match v {
                    Value::Str(s) => s.len(),
                    _ => table.schema.columns[c].dtype.fixed_width().unwrap_or(8),
                };
                cs.avg_width += w as f64;
                width_sum += w as u64;
                if distinct[c].len() < 4096 {
                    distinct[c].insert(v.to_string());
                }
            }
        }
        for (c, d) in distinct.iter().enumerate() {
            stats.columns[c].ndv = d.len() as u64;
            if n > 0 {
                stats.columns[c].avg_width /= n as f64;
            }
        }
        stats.avg_row_width = if n > 0 {
            width_sum as f64 / n as f64
        } else {
            0.0
        };

        // Primary: sort by PK and build.
        let ptree = &table.primary.tree;
        rows.sort_by_key(|r| ptree.key_of_row(r));
        let leaves = bulk_build(
            ptree,
            table.primary.store.as_ref(),
            self.cfg.page_size,
            rows.iter().cloned(),
            taurus_mvcc::BOOTSTRAP_TRX,
        )?;
        stats.leaf_pages = leaves as u64;

        // Secondaries: project stored columns, sort, build.
        for sec in &table.secondaries {
            let stored = sec.tree.def.stored_cols();
            let mut sec_rows: Vec<Row> = rows
                .iter()
                .map(|r| stored.iter().map(|&c| r[c].clone()).collect())
                .collect();
            let stree = &sec.tree;
            sec_rows.sort_by_key(|r| stree.key_of_row(r));
            bulk_build(
                stree,
                sec.store.as_ref(),
                self.cfg.page_size,
                sec_rows.into_iter(),
                taurus_mvcc::BOOTSTRAP_TRX,
            )?;
        }
        *table.stats.write() = stats;
        Ok(n)
    }

    // --- transactions -------------------------------------------------------

    pub fn begin(&self) -> TrxId {
        self.trx.begin()
    }

    pub fn commit(&self, trx: TrxId) {
        self.trx.end(trx);
    }

    /// Roll back: restore previous images from the undo log, then end.
    pub fn rollback(&self, trx: TrxId) -> Result<()> {
        let entries = self.undo.take_for_rollback(trx);
        for (space, key, entry) in entries {
            let table = self
                .tables()
                .into_iter()
                .find(|t| {
                    t.primary.tree.def.space == space
                        || t.secondaries.iter().any(|s| s.tree.def.space == space)
                })
                .ok_or_else(|| Error::Internal(format!("no table for space {space:?}")))?;
            let idx = if table.primary.tree.def.space == space {
                &table.primary
            } else {
                table
                    .secondaries
                    .iter()
                    .find(|s| s.tree.def.space == space)
                    .expect("matched above")
            };
            let store = idx.store.as_ref();
            match entry.prev_image {
                Some(img) => {
                    // Restore the previous image in place.
                    let loc = idx
                        .tree
                        .get(store, &key)?
                        .ok_or_else(|| Error::Internal("rolled-back record vanished".into()))?;
                    let mut img = img;
                    img[1..5].copy_from_slice(&loc.bytes[1..5]); // keep chain + heap_no
                    store.write(vec![RedoOp::WriteBytes {
                        page_no: loc.page_no,
                        at: loc.rec_at,
                        bytes: img,
                    }])?;
                }
                None => {
                    // The write was an insert: make the row permanently
                    // invisible (delete-marked as the bootstrap writer).
                    idx.tree
                        .set_delete_mark(store, &key, taurus_mvcc::BOOTSTRAP_TRX, true)?;
                }
            }
        }
        self.trx.end(trx);
        Ok(())
    }

    pub fn read_view(&self, trx: TrxId) -> ReadView {
        self.trx.read_view(trx)
    }

    // --- DML ------------------------------------------------------------------

    /// Insert one row under `trx`.
    pub fn insert_row(&self, table: &Table, trx: TrxId, row: &Row) -> Result<()> {
        let pkey = table.primary.tree.key_of_row(row);
        table
            .primary
            .tree
            .insert(table.primary.store.as_ref(), row, trx)?;
        self.undo
            .push(table.primary.tree.def.space, &pkey, trx, None);
        for sec in &table.secondaries {
            let stored = sec.tree.def.stored_cols();
            let srow: Row = stored.iter().map(|&c| row[c].clone()).collect();
            let skey = sec.tree.key_of_row(&srow);
            sec.tree.insert(sec.store.as_ref(), &srow, trx)?;
            self.undo.push(sec.tree.def.space, &skey, trx, None);
        }
        Ok(())
    }

    /// Read the newest version of a row by primary key (no MVCC filtering).
    fn newest_row(&self, table: &Table, pkey: &[u8]) -> Result<Option<Row>> {
        match table.primary.tree.get(table.primary.store.as_ref(), pkey)? {
            None => Ok(None),
            Some(loc) => {
                let v = RecordView::new(&loc.bytes, &table.primary.tree.leaf_layout);
                Ok(Some(v.values()))
            }
        }
    }

    /// Delete (mark) a row by primary key values under `trx`.
    pub fn delete_row(&self, table: &Table, trx: TrxId, pk_values: &[Value]) -> Result<()> {
        let pkey = table.primary.tree.encode_search_key(pk_values);
        let row = self
            .newest_row(table, &pkey)?
            .ok_or_else(|| Error::NotFound("row to delete".into()))?;
        let old =
            table
                .primary
                .tree
                .set_delete_mark(table.primary.store.as_ref(), &pkey, trx, true)?;
        self.undo
            .push(table.primary.tree.def.space, &pkey, trx, Some(old));
        for sec in &table.secondaries {
            let stored = sec.tree.def.stored_cols();
            let srow: Row = stored.iter().map(|&c| row[c].clone()).collect();
            let skey = sec.tree.key_of_row(&srow);
            let old = sec
                .tree
                .set_delete_mark(sec.store.as_ref(), &skey, trx, true)?;
            self.undo.push(sec.tree.def.space, &skey, trx, Some(old));
        }
        Ok(())
    }

    /// Update a row (primary key unchanged, fixed-width columns only).
    pub fn update_row(&self, table: &Table, trx: TrxId, new_row: &Row) -> Result<()> {
        let pkey = table.primary.tree.key_of_row(new_row);
        let old_row = self
            .newest_row(table, &pkey)?
            .ok_or_else(|| Error::NotFound("row to update".into()))?;
        let old_img =
            table
                .primary
                .tree
                .update_in_place(table.primary.store.as_ref(), new_row, trx)?;
        self.undo
            .push(table.primary.tree.def.space, &pkey, trx, Some(old_img));
        for sec in &table.secondaries {
            let stored = sec.tree.def.stored_cols();
            let old_s: Row = stored.iter().map(|&c| old_row[c].clone()).collect();
            let new_s: Row = stored.iter().map(|&c| new_row[c].clone()).collect();
            let old_key = sec.tree.key_of_row(&old_s);
            let new_key = sec.tree.key_of_row(&new_s);
            if old_key == new_key {
                if old_s != new_s {
                    let img = sec.tree.update_in_place(sec.store.as_ref(), &new_s, trx)?;
                    self.undo.push(sec.tree.def.space, &old_key, trx, Some(img));
                }
            } else {
                // Key change: delete-mark old entry, insert new one.
                let img = sec
                    .tree
                    .set_delete_mark(sec.store.as_ref(), &old_key, trx, true)?;
                self.undo.push(sec.tree.def.space, &old_key, trx, Some(img));
                sec.tree.insert(sec.store.as_ref(), &new_s, trx)?;
                self.undo.push(sec.tree.def.space, &new_key, trx, None);
            }
        }
        Ok(())
    }

    /// MVCC point lookup: the version of the row visible to `view`.
    pub fn lookup_row(
        &self,
        table: &Table,
        view: &ReadView,
        pk_values: &[Value],
    ) -> Result<Option<Row>> {
        let pkey = table.primary.tree.encode_search_key(pk_values);
        let loc = match table
            .primary
            .tree
            .get(table.primary.store.as_ref(), &pkey)?
        {
            None => return Ok(None),
            Some(l) => l,
        };
        let space = table.primary.tree.def.space;
        let image = match self.undo.reconstruct(space, &pkey, &loc.bytes, view) {
            Some(img) => img,
            None => return Ok(None),
        };
        let v = RecordView::new(&image, &table.primary.tree.leaf_layout);
        if v.delete_mark() {
            return Ok(None);
        }
        Ok(Some(v.values()))
    }
}
