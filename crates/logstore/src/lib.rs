//! Log Stores (§II): durable, append-only storage for redo log records.
//!
//! "Once all of the log records belonging to a transaction have been made
//! durable, transaction completion can be acknowledged to the client." The
//! SAL writes every batch to three Log Stores (triplication) and separately
//! distributes the records to Page Stores for application. Log Stores treat
//! batches as opaque bytes — the redo format belongs to the Page Store /
//! engine layer — and additionally serve reads from an offset, which is how
//! read replicas would catch up (§II: Log Stores "serve log records to read
//! replicas").

use parking_lot::Mutex;

/// One durable, append-only log service instance.
pub struct LogStore {
    id: usize,
    segments: Mutex<Vec<Vec<u8>>>,
    bytes: Mutex<u64>,
}

impl LogStore {
    pub fn new(id: usize) -> LogStore {
        LogStore {
            id,
            segments: Mutex::new(Vec::new()),
            bytes: Mutex::new(0),
        }
    }

    pub fn id(&self) -> usize {
        self.id
    }

    /// Durably append one batch; returns its sequence number (offset).
    pub fn append(&self, batch: &[u8]) -> u64 {
        let mut segs = self.segments.lock();
        *self.bytes.lock() += batch.len() as u64;
        segs.push(batch.to_vec());
        (segs.len() - 1) as u64
    }

    /// Serve batches from `offset` (read-replica catch-up path).
    pub fn read_from(&self, offset: u64, max_batches: usize) -> Vec<Vec<u8>> {
        let segs = self.segments.lock();
        segs.iter()
            .skip(offset as usize)
            .take(max_batches)
            .cloned()
            .collect()
    }

    /// Number of batches stored.
    pub fn len(&self) -> u64 {
        self.segments.lock().len() as u64
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes stored on this replica.
    pub fn bytes_stored(&self) -> u64 {
        *self.bytes.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_assigns_sequential_offsets() {
        let ls = LogStore::new(0);
        assert_eq!(ls.append(b"aaa"), 0);
        assert_eq!(ls.append(b"bb"), 1);
        assert_eq!(ls.len(), 2);
        assert_eq!(ls.bytes_stored(), 5);
    }

    #[test]
    fn read_from_serves_replica_catchup() {
        let ls = LogStore::new(1);
        for i in 0..5u8 {
            ls.append(&[i; 3]);
        }
        let got = ls.read_from(2, 2);
        assert_eq!(got, vec![vec![2u8; 3], vec![3u8; 3]]);
        // Past the end: empty.
        assert!(ls.read_from(9, 4).is_empty());
        // Everything.
        assert_eq!(ls.read_from(0, 100).len(), 5);
    }
}
