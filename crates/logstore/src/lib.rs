//! Log Stores (§II): durable, append-only storage for redo log records.
//!
//! "Once all of the log records belonging to a transaction have been made
//! durable, transaction completion can be acknowledged to the client." The
//! SAL writes every batch to three Log Stores (triplication) and separately
//! distributes the records to Page Stores for application. Log Stores treat
//! batches as opaque bytes — the redo format belongs to the Page Store /
//! engine layer — and additionally serve reads *by LSN*, which is how read
//! replicas catch up (§II: Log Stores "serve log records to read
//! replicas"): a replica's tailer asks for "everything from LSN x" and gets
//! back whole batches, each tagged with the LSN range it covers.
//!
//! Batches are indexed by their first LSN and kept sorted: the SAL
//! allocates a batch's LSN range *before* appending, so two concurrent
//! `write_log` calls can reach a Log Store out of LSN order — the sorted
//! insert puts them back, and [`LogStore::read_from_lsn`] can binary-search
//! instead of scanning ordinals. All of a store's state lives behind one
//! mutex, so a reader can never observe `segments` and `bytes` (or the
//! LSN index) mid-update.

use parking_lot::Mutex;
use taurus_common::Lsn;

/// One appended batch: the LSN range it covers plus the opaque bytes.
struct Segment {
    first_lsn: Lsn,
    last_lsn: Lsn,
    data: Vec<u8>,
}

/// All mutable state of a Log Store, under a single lock: batch index and
/// byte accounting can never be observed inconsistently.
#[derive(Default)]
struct Inner {
    /// Sorted by `first_lsn`; LSN ranges are disjoint (the SAL allocates
    /// them from one counter), so `last_lsn` is sorted too.
    segments: Vec<Segment>,
    bytes: u64,
}

/// One durable, append-only log service instance.
pub struct LogStore {
    id: usize,
    inner: Mutex<Inner>,
}

impl LogStore {
    pub fn new(id: usize) -> LogStore {
        LogStore {
            id,
            inner: Mutex::new(Inner::default()),
        }
    }

    pub fn id(&self) -> usize {
        self.id
    }

    /// Durably append one batch covering `[first_lsn, last_lsn]`; returns
    /// its position in the store. Inserted sorted by `first_lsn` so that
    /// a batch whose append raced ahead of an earlier-LSN batch does not
    /// break the LSN index.
    pub fn append(&self, batch: &[u8], first_lsn: Lsn, last_lsn: Lsn) -> u64 {
        debug_assert!(first_lsn <= last_lsn);
        let mut g = self.inner.lock();
        g.bytes += batch.len() as u64;
        let at = g
            .segments
            .partition_point(|s| s.first_lsn < first_lsn)
            .min(g.segments.len());
        g.segments.insert(
            at,
            Segment {
                first_lsn,
                last_lsn,
                data: batch.to_vec(),
            },
        );
        at as u64
    }

    /// Serve batches by position (diagnostics; replicas use
    /// [`LogStore::read_from_lsn`]).
    pub fn read_from(&self, offset: u64, max_batches: usize) -> Vec<Vec<u8>> {
        let g = self.inner.lock();
        g.segments
            .iter()
            .skip(offset as usize)
            .take(max_batches)
            .map(|s| s.data.clone())
            .collect()
    }

    /// The read-replica catch-up path: every batch containing or following
    /// `lsn`, as `(first_lsn, bytes)` pairs, up to `max_batches`. Seeks by
    /// binary search on the LSN index — a tailer resuming at LSN 10⁹ does
    /// not scan 10⁹ batch ordinals to get there. The caller checks
    /// contiguity (a gap means an earlier-LSN append is still in flight).
    pub fn read_from_lsn(&self, lsn: Lsn, max_batches: usize) -> Vec<(Lsn, Vec<u8>)> {
        let g = self.inner.lock();
        let start = g.segments.partition_point(|s| s.last_lsn < lsn);
        g.segments[start..]
            .iter()
            .take(max_batches)
            .map(|s| (s.first_lsn, s.data.clone()))
            .collect()
    }

    /// The highest LSN stored (0 when empty). With sorted disjoint
    /// ranges, that is the last segment's `last_lsn`.
    pub fn max_lsn(&self) -> Lsn {
        self.inner.lock().segments.last().map_or(0, |s| s.last_lsn)
    }

    /// Number of batches stored.
    pub fn len(&self) -> u64 {
        self.inner.lock().segments.len() as u64
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes stored on this replica.
    pub fn bytes_stored(&self) -> u64 {
        self.inner.lock().bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_assigns_sequential_offsets() {
        let ls = LogStore::new(0);
        assert_eq!(ls.append(b"aaa", 1, 1), 0);
        assert_eq!(ls.append(b"bb", 2, 3), 1);
        assert_eq!(ls.len(), 2);
        assert_eq!(ls.bytes_stored(), 5);
        assert_eq!(ls.max_lsn(), 3);
    }

    #[test]
    fn read_from_serves_replica_catchup() {
        let ls = LogStore::new(1);
        for i in 0..5u8 {
            ls.append(&[i; 3], 1 + i as u64, 1 + i as u64);
        }
        let got = ls.read_from(2, 2);
        assert_eq!(got, vec![vec![2u8; 3], vec![3u8; 3]]);
        // Past the end: empty.
        assert!(ls.read_from(9, 4).is_empty());
        // Everything.
        assert_eq!(ls.read_from(0, 100).len(), 5);
    }

    #[test]
    fn read_from_lsn_seeks_into_covering_batch() {
        let ls = LogStore::new(2);
        // Batches covering [1,3], [4,4], [5,9].
        ls.append(b"a", 1, 3);
        ls.append(b"b", 4, 4);
        ls.append(b"c", 5, 9);
        // LSN 2 is inside the first batch: delivery starts there.
        let got = ls.read_from_lsn(2, 10);
        assert_eq!(
            got.iter().map(|(l, _)| *l).collect::<Vec<_>>(),
            vec![1, 4, 5]
        );
        // LSN 4 skips the first batch entirely.
        let got = ls.read_from_lsn(4, 1);
        assert_eq!(got, vec![(4, b"b".to_vec())]);
        // Beyond the end: nothing.
        assert!(ls.read_from_lsn(10, 10).is_empty());
    }

    #[test]
    fn out_of_order_appends_are_resorted_by_lsn() {
        let ls = LogStore::new(3);
        // A later-LSN batch lands first (concurrent write_log race).
        ls.append(b"late", 5, 6);
        ls.append(b"early", 1, 4);
        let got = ls.read_from_lsn(1, 10);
        assert_eq!(got[0], (1, b"early".to_vec()));
        assert_eq!(got[1], (5, b"late".to_vec()));
        assert_eq!(ls.max_lsn(), 6);
    }

    #[test]
    fn byte_accounting_consistent_under_concurrent_appends() {
        use std::sync::Arc;
        let ls = Arc::new(LogStore::new(4));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let ls = ls.clone();
                s.spawn(move || {
                    for i in 0..50u64 {
                        let lsn = t * 50 + i + 1;
                        ls.append(&[0u8; 10], lsn, lsn);
                    }
                });
            }
        });
        assert_eq!(ls.len(), 200);
        assert_eq!(ls.bytes_stored(), 2000);
        // Fully sorted by LSN despite interleaved appends.
        let all = ls.read_from_lsn(1, 1000);
        for (i, (l, _)) in all.iter().enumerate() {
            assert_eq!(*l, i as u64 + 1);
        }
    }
}
