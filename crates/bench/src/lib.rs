//! Shared harness for the figure-regeneration benchmarks (§VII).
//!
//! Each `cargo bench` target prints the rows of one of the paper's figures
//! (or an ablation). Absolute numbers differ from the paper's testbed —
//! the *shapes* are what EXPERIMENTS.md compares: who wins, by what rough
//! factor, where the crossovers fall.

use std::sync::Arc;
use std::time::Duration;

use taurus_common::{ClusterConfig, MetricsSnapshot};
use taurus_ndp::TaurusDb;
use taurus_tpch::Query;

/// Default scale factor for the TPC-H benches (paper: 100 GB; here a
/// laptop-scale slice with the same distributions).
pub const BENCH_SF: f64 = 0.02;
/// Scale factor for the §VII-A micro benchmark (paper: 1 TB).
pub const MICRO_SF: f64 = 0.05;
pub const SEED: u64 = 42;

/// Cluster configuration mirroring the paper's setup, scaled (4 Page
/// Stores; buffer pool ≈ 20 % of data like 20 GB / 100 GB).
pub fn bench_config(ndp: bool) -> ClusterConfig {
    let mut cfg = ClusterConfig::default();
    cfg.n_page_stores = 4;
    cfg.replication = 3;
    cfg.pagestore_ndp_threads = 4;
    cfg.slice_pages = 128;
    cfg.buffer_pool_pages = 700; // ~11 MB vs ~55 MB of SF 0.02 data
    cfg.ndp.enabled = ndp;
    cfg.ndp.min_io_pages = 64; // the paper's 10,000-page gate, scaled
    cfg.ndp.max_pages_look_ahead = 1024;
    // The paper's cluster moves pages over a real (25 Gbps, shared) NIC;
    // without a wire model, shipping 16 KB costs the same as shipping 48
    // bytes and Fig. 7/8's run-time effects vanish.
    cfg.network.bandwidth_bytes_per_sec = Some(250_000_000);
    cfg
}

/// Build + load a database.
pub fn setup(sf: f64, cfg: ClusterConfig) -> Arc<TaurusDb> {
    let db = TaurusDb::new(cfg);
    taurus_tpch::load(&db, sf, SEED).expect("load tpch");
    db
}

/// One measured query execution.
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    pub wall: Duration,
    /// SQL-node CPU nanoseconds (query thread + PQ workers).
    pub cpu_ns: u64,
    /// Bytes shipped storage -> compute.
    pub bytes_from_storage: u64,
    pub pages_ndp: u64,
    pub pages_raw: u64,
    pub rows: usize,
}

/// Run one query, measuring wall, SQL-node CPU and network bytes.
pub fn measure(db: &TaurusDb, q: &Query, pq: Option<usize>) -> Measurement {
    let before = db.metrics().snapshot();
    let t0 = std::time::Instant::now();
    let rows = {
        let _cpu = taurus_common::metrics::CpuGuard::new(&db.metrics().compute_cpu_ns);
        (q.run)(db, pq).unwrap_or_else(|e| panic!("{} failed: {e}", q.name))
    };
    let wall = t0.elapsed();
    let d = db.metrics().snapshot().since(&before);
    Measurement {
        wall,
        cpu_ns: d.compute_cpu_ns,
        bytes_from_storage: d.net_bytes_from_storage,
        pages_ndp: d.pages_shipped_ndp + d.pages_shipped_empty,
        pages_raw: d.pages_shipped_raw,
        rows: rows.len(),
    }
}

/// Percentage reduction, the figures' common y-axis.
pub fn reduction(on: f64, off: f64) -> f64 {
    if off <= 0.0 {
        return 0.0;
    }
    (1.0 - on / off) * 100.0
}

pub fn snapshot_delta(db: &TaurusDb, before: &MetricsSnapshot) -> MetricsSnapshot {
    db.metrics().snapshot().since(before)
}

/// Pretty milliseconds.
pub fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

pub fn header(title: &str) {
    println!();
    println!("=== {title} ===");
}
