//! Fig. 7 — "CPU time and network traffic reduction with NDP, TPC-H"
//! (§VII-C). All 22 queries run in sequence without restarting (the
//! paper's protocol — which is what sets up the Q4 buffer-pool anomaly),
//! NDP off vs on; SQL-node CPU and bytes-from-storage reductions.

use taurus_bench::*;

fn main() {
    header("Fig. 7: CPU and network reduction with NDP (TPC-H, in sequence)");
    let off = setup(BENCH_SF, bench_config(false));
    let on = setup(BENCH_SF, bench_config(true));
    println!(
        "{:<5} {:>12} {:>12} {:>8} | {:>12} {:>12} {:>8}",
        "query", "net off(KB)", "net on(KB)", "net red%", "cpu off(ms)", "cpu on(ms)", "cpu red%"
    );
    let (mut tot_net_off, mut tot_net_on, mut tot_cpu_off, mut tot_cpu_on) =
        (0u64, 0u64, 0u64, 0u64);
    let mut winners = 0;
    for q in taurus_tpch::tpch_queries() {
        let a = measure(&off, &q, None);
        let b = measure(&on, &q, None);
        let net_red = reduction(b.bytes_from_storage as f64, a.bytes_from_storage as f64);
        let cpu_red = reduction(b.cpu_ns as f64, a.cpu_ns as f64);
        if net_red > 1.0 {
            winners += 1;
        }
        tot_net_off += a.bytes_from_storage;
        tot_net_on += b.bytes_from_storage;
        tot_cpu_off += a.cpu_ns;
        tot_cpu_on += b.cpu_ns;
        println!(
            "{:<5} {:>12} {:>12} {:>7.1}% | {:>12.1} {:>12.1} {:>7.1}%",
            q.name,
            a.bytes_from_storage / 1024,
            b.bytes_from_storage / 1024,
            net_red,
            a.cpu_ns as f64 / 1e6,
            b.cpu_ns as f64 / 1e6,
            cpu_red,
        );
    }
    println!(
        "TOTAL: network reduced {:.1}% (paper: 63%), CPU reduced {:.1}% (paper: 50%), {} of 22 queries benefited (paper: 18)",
        reduction(tot_net_on as f64, tot_net_off as f64),
        reduction(tot_cpu_on as f64, tot_cpu_off as f64),
        winners
    );
}
