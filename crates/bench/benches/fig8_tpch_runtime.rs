//! Fig. 8 — "Run time reduction with NDP" for the 22 TPC-H queries
//! (§VII-D), including the Q4 buffer-pool anomaly detail: with NDP on,
//! Q1–Q3 leave almost no lineitem pages in the buffer pool, so Q4's
//! NL-join lookups start cold (paper: 1,272,972 vs 24,186 pages).

use taurus_bench::*;

fn main() {
    header("Fig. 8: run time reduction with NDP (TPC-H, in sequence)");
    let off = setup(BENCH_SF, bench_config(false));
    let on = setup(BENCH_SF, bench_config(true));
    println!(
        "{:<5} {:>12} {:>12} {:>9}",
        "query", "off (ms)", "on (ms)", "red %"
    );
    let (mut tot_off, mut tot_on) = (0.0f64, 0.0f64);
    let li_off = off.table("lineitem").unwrap().primary.tree.def.space;
    let li_on = on.table("lineitem").unwrap().primary.tree.def.space;
    let mut bp_counts = (0usize, 0usize);
    for (i, q) in taurus_tpch::tpch_queries().into_iter().enumerate() {
        if i == 3 {
            // Right before Q4: count cached lineitem pages (the anomaly).
            bp_counts = (
                off.buffer_pool().count_pages_in_space(li_off),
                on.buffer_pool().count_pages_in_space(li_on),
            );
        }
        let a = measure(&off, &q, None);
        let b = measure(&on, &q, None);
        tot_off += ms(a.wall);
        tot_on += ms(b.wall);
        println!(
            "{:<5} {:>12.1} {:>12.1} {:>8.1}%",
            q.name,
            ms(a.wall),
            ms(b.wall),
            reduction(ms(b.wall), ms(a.wall))
        );
    }
    println!(
        "TOTAL: run time reduced {:.1}% (paper: 28%)",
        reduction(tot_on, tot_off)
    );
    println!(
        "Q4 buffer-pool experiment: lineitem pages cached after Q1-Q3: NDP-off={} NDP-on={} (paper: 1,272,972 vs 24,186)",
        bp_counts.0, bp_counts.1
    );
}
