//! §V-B2 ablation — compiled predicate evaluation (the "LLVM" register VM
//! over raw record bytes) vs the classical tree-walking interpreter over
//! materialized rows. Criterion micro-benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use taurus_common::{DataType, Date32, Dec, Value};
use taurus_expr::ast::Expr;
use taurus_expr::compile::lower;
use taurus_expr::vm::CompiledPredicate;
use taurus_page::{encode_record, RecordLayout, RecordMeta, RecordView};

fn layout() -> RecordLayout {
    RecordLayout::new(vec![
        DataType::Decimal {
            precision: 15,
            scale: 2,
        }, // qty
        DataType::Decimal {
            precision: 15,
            scale: 2,
        }, // extendedprice
        DataType::Decimal {
            precision: 15,
            scale: 2,
        }, // discount
        DataType::Date,     // shipdate
        DataType::Char(10), // shipmode
    ])
}

fn q6_predicate() -> Expr {
    Expr::and(vec![
        Expr::ge(Expr::col(3), Expr::date("1994-01-01")),
        Expr::lt(Expr::col(3), Expr::date("1995-01-01")),
        Expr::between(Expr::col(2), Expr::dec("0.05"), Expr::dec("0.07")),
        Expr::lt(Expr::col(0), Expr::int(24)),
    ])
}

fn bench(c: &mut Criterion) {
    let l = layout();
    // 1024 synthetic records.
    let mut records: Vec<Vec<u8>> = Vec::new();
    let mut rows: Vec<Vec<Value>> = Vec::new();
    for i in 0..1024i64 {
        let row = vec![
            Value::Decimal(Dec::new((i % 50) as i128 * 100, 2)),
            Value::Decimal(Dec::new(90000 + i as i128, 2)),
            Value::Decimal(Dec::new((i % 11) as i128, 2)),
            Value::Date(Date32::from_ymd(1994, 1, 1).add_days((i % 600) as i32)),
            Value::str(["MAIL", "SHIP", "AIR"][(i % 3) as usize]),
        ];
        let mut b = Vec::new();
        encode_record(&l, &row, RecordMeta::ordinary(1), None, &mut b).unwrap();
        records.push(b);
        rows.push(row);
    }
    let pred = q6_predicate();
    let ir = lower(&pred).unwrap();
    let identity: Vec<u16> = (0..5).collect();
    let compiled = CompiledPredicate::compile(&ir, &l, &identity).unwrap();

    c.bench_function("classical_interpreter_1k_rows", |b| {
        b.iter(|| {
            let mut n = 0;
            for r in &rows {
                if taurus_expr::eval::eval_pred(&pred, r).unwrap() == Some(true) {
                    n += 1;
                }
            }
            std::hint::black_box(n)
        })
    });
    c.bench_function("compiled_vm_1k_records", |b| {
        let mut offsets = Vec::new();
        b.iter(|| {
            let mut n = 0;
            for bytes in &records {
                let v = RecordView::new(bytes, &l);
                if compiled.eval_record(&v, &mut offsets).unwrap() == taurus_expr::vm::TriBool::True
                {
                    n += 1;
                }
            }
            std::hint::black_box(n)
        })
    });
    // Include decode cost on the interpreter side (the realistic path:
    // classical evaluation materializes rows first).
    c.bench_function("decode_plus_interpreter_1k_records", |b| {
        b.iter(|| {
            let mut n = 0;
            for bytes in &records {
                let v = RecordView::new(bytes, &l);
                let row = v.values();
                if taurus_expr::eval::eval_pred(&pred, &row).unwrap() == Some(true) {
                    n += 1;
                }
            }
            std::hint::black_box(n)
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
