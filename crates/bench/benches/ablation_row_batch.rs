//! Ablation — scan-result batch size (`ClusterConfig::scan_batch_rows`):
//! throughput of the frontend scan→consumer→stream hot path vs how many
//! rows ride in each [`taurus_common::RowBatch`].
//!
//! Batch size 1 approximates the row-at-a-time pipeline this PR
//! replaced: one consumer hand-off and one stream-channel message per
//! row. It is not a bit-exact replica — the old pipeline ran its per-row
//! sends over a 256-row channel, while every point here uses the same
//! 2-batch channel, which handicaps the batch=1 baseline (≈2 rows of
//! look-ahead); read the headline speedup as an upper bound on the win
//! attributable to batching alone. Larger batches amortize the per-row
//! overhead; the effect plateaus once a batch covers a full page of
//! records, because the scan also flushes at page boundaries (frames
//! must be releasable as soon as a page drains).
//!
//! Two workloads over TPC-H `lineitem`, both drained through the
//! `Session`/`RowStream` facade with NDP off and a warm buffer pool, so
//! the row pipeline itself — not storage I/O or pushdown — is what is
//! measured:
//!
//! * **full_scan**: every row survives and crosses the stream.
//! * **selective_scan**: a Q6-style predicate evaluated as a residual in
//!   the consumer; few rows cross, the per-record work dominates.
//!
//! Run with `cargo bench --bench ablation_row_batch`. The final JSON
//! block is what `BENCH_row_batch.json` at the repo root records.

use std::sync::Arc;
use std::time::Instant;

use criterion::{black_box, Criterion};
use taurus_bench::{header, setup};
use taurus_common::ClusterConfig;
use taurus_executor::Session;
use taurus_ndp::TaurusDb;

const SF: f64 = 0.01;
const BATCH_SIZES: [usize; 5] = [1, 64, 256, 1024, 4096];
const SAMPLES: usize = 7;

fn pipeline_config(batch_rows: usize) -> ClusterConfig {
    let mut cfg = ClusterConfig::default();
    cfg.scan_batch_rows = batch_rows;
    // Working set fully cached and no simulated wire: isolate the
    // frontend row pipeline from storage I/O effects.
    cfg.buffer_pool_pages = 16 * 1024;
    cfg
}

/// Drain a full-table scan through the stream; returns rows pulled.
fn drain_full(db: &Arc<TaurusDb>) -> usize {
    let session = Session::new(db).with_ndp(false);
    let stream = session
        .query("lineitem")
        .unwrap()
        .select(["l_orderkey", "l_quantity", "l_extendedprice", "l_shipdate"])
        .stream()
        .unwrap();
    let mut n = 0usize;
    for row in stream {
        black_box(row.unwrap());
        n += 1;
    }
    n
}

/// Drain a selective scan (residual predicate in the consumer; ~4 % of
/// rows survive, so per-scanned-record work dominates).
fn drain_selective(db: &Arc<TaurusDb>) -> usize {
    use taurus_common::Dec;
    use taurus_executor::dsl::col;
    let session = Session::new(db).with_ndp(false);
    let stream = session
        .query("lineitem")
        .unwrap()
        .select(["l_orderkey", "l_extendedprice"])
        .filter(col("l_quantity").lt(Dec::new(300, 2)))
        .stream()
        .unwrap();
    let mut n = 0usize;
    for row in stream {
        black_box(row.unwrap());
        n += 1;
    }
    n
}

/// Median wall time over `SAMPLES` runs; returns (rows, median ms).
fn measure(db: &Arc<TaurusDb>, f: impl Fn(&Arc<TaurusDb>) -> usize) -> (usize, f64) {
    let mut times: Vec<f64> = Vec::with_capacity(SAMPLES);
    let mut rows = 0usize;
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        rows = f(db);
        times.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    times.sort_by(|a, b| a.total_cmp(b));
    (rows, times[times.len() / 2])
}

fn main() {
    header("Ablation: scan-result batch size (ClusterConfig::scan_batch_rows)");
    println!(
        "{:>10} {:>12} {:>14} {:>14} {:>14} {:>14}",
        "batch", "rows", "full ms", "full rows/s", "sel ms", "sel rows/s"
    );
    let mut c = Criterion::default();
    let mut json_rows: Vec<String> = Vec::new();
    let mut baseline: Option<(f64, f64)> = None;
    let mut at_1024: Option<(f64, f64)> = None;
    for &bs in &BATCH_SIZES {
        let db = setup(SF, pipeline_config(bs));
        // Warm: tree internals + buffer pool.
        let table_rows = drain_full(&db);
        let (full_rows, full_ms) = measure(&db, drain_full);
        let (sel_rows, sel_ms) = measure(&db, drain_selective);
        // Throughput is rows *scanned* per second: both workloads walk the
        // whole table; the selective one just delivers few of its rows.
        let full_rate = full_rows as f64 / (full_ms / 1e3);
        let sel_rate = table_rows as f64 / (sel_ms / 1e3);
        println!(
            "{bs:>10} {full_rows:>12} {full_ms:>14.1} {full_rate:>14.0} {sel_ms:>14.1} {sel_rate:>14.0}"
        );
        c.bench_function(&format!("full_scan/batch={bs}"), |b| {
            b.iter(|| drain_full(&db))
        });
        if bs == 1 {
            baseline = Some((full_ms, sel_ms));
        }
        if bs == 1024 {
            at_1024 = Some((full_ms, sel_ms));
        }
        json_rows.push(format!(
            "    {{\"batch_rows\": {bs}, \"full_scan\": {{\"rows_out\": {full_rows}, \"median_ms\": {full_ms:.2}, \"scanned_rows_per_sec\": {full_rate:.0}}}, \
             \"selective_scan\": {{\"rows_out\": {sel_rows}, \"median_ms\": {sel_ms:.2}, \"scanned_rows_per_sec\": {sel_rate:.0}}}}}"
        ));
    }
    let (b_full, b_sel) = baseline.expect("batch size 1 measured");
    let (k_full, k_sel) = at_1024.expect("batch size 1024 measured");
    println!();
    println!(
        "speedup @1024 vs @1: full_scan {:.2}x, selective_scan {:.2}x",
        b_full / k_full,
        b_sel / k_sel
    );
    println!();
    println!("--- BENCH_row_batch.json ---");
    println!("{{");
    println!("  \"bench\": \"ablation_row_batch\",");
    println!("  \"workload\": \"TPC-H lineitem SF {SF}, Session/RowStream drain, NDP off, warm buffer pool\",");
    println!("  \"samples_per_point\": {SAMPLES},");
    println!("  \"results\": [");
    println!("{}", json_rows.join(",\n"));
    println!("  ],");
    println!("  \"speedup_full_scan_1024_vs_1\": {:.2},", b_full / k_full);
    println!(
        "  \"speedup_selective_scan_1024_vs_1\": {:.2}",
        b_sel / k_sel
    );
    println!("}}");
}
