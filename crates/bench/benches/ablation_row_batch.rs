//! Ablation — scan-result batch size (`ClusterConfig::scan_batch_rows`):
//! throughput of the frontend scan→consumer→stream hot path vs how many
//! rows ride in each [`taurus_common::RowBatch`].
//!
//! Batch size 1 approximates the row-at-a-time pipeline this PR
//! replaced: one consumer hand-off and one stream-channel message per
//! row. It is not a bit-exact replica — the old pipeline ran its per-row
//! sends over a 256-row channel, while every point here uses the same
//! 2-batch channel, which handicaps the batch=1 baseline (≈2 rows of
//! look-ahead); read the headline speedup as an upper bound on the win
//! attributable to batching alone. Larger batches amortize the per-row
//! overhead; the effect plateaus once a batch covers a full page of
//! records, because the scan also flushes at page boundaries (frames
//! must be releasable as soon as a page drains).
//!
//! Two workloads over TPC-H `lineitem`, both drained through the
//! `Session`/`RowStream` facade with NDP off and a warm buffer pool, so
//! the row pipeline itself — not storage I/O or pushdown — is what is
//! measured:
//!
//! * **full_scan**: every row survives and crosses the stream.
//! * **selective_scan**: a Q6-style predicate evaluated as a residual in
//!   the consumer; few rows cross, the per-record work dominates.
//!
//! Run with `cargo bench --bench ablation_row_batch`. The final JSON
//! blocks are what `BENCH_row_batch.json` and `BENCH_columnar.json` at
//! the repo root record.
//!
//! The columnar extension measures two layers:
//!
//! * **filter kernel**: one Q6-shaped predicate over an in-memory
//!   64k-row batch — `eval_pred` per row (row-major) vs one
//!   `VectorProgram::eval_batch` (column-at-a-time). This isolates the
//!   expression-evaluation win from pipeline plumbing.
//! * **pipeline**: the same three workload shapes end-to-end under
//!   `BatchLayout::Row` vs `BatchLayout::Columnar` — full scan (column
//!   materialization + boundary conversion, no filter win available),
//!   selective filter (selection vectors carry the win), and the
//!   Q1-style aggregation (filter columnar, breaker converts to rows).

use std::sync::Arc;
use std::time::Instant;

use criterion::{black_box, Criterion};
use taurus_bench::{header, setup};
use taurus_common::schema::Row;
use taurus_common::{BatchLayout, ClusterConfig, ColumnBatch, DataType, Date32, Dec, Value};
use taurus_executor::Session;
use taurus_expr::ast::Expr;
use taurus_expr::eval::eval_pred;
use taurus_expr::vector::VectorProgram;
use taurus_ndp::TaurusDb;
use taurus_tpch::tpch_queries;

const SF: f64 = 0.01;
const BATCH_SIZES: [usize; 5] = [1, 64, 256, 1024, 4096];
const SAMPLES: usize = 7;

fn pipeline_config(batch_rows: usize) -> ClusterConfig {
    let mut cfg = ClusterConfig::default();
    cfg.scan_batch_rows = batch_rows;
    // Working set fully cached and no simulated wire: isolate the
    // frontend row pipeline from storage I/O effects.
    cfg.buffer_pool_pages = 16 * 1024;
    cfg
}

/// Drain a full-table scan through the stream; returns rows pulled.
fn drain_full(db: &Arc<TaurusDb>) -> usize {
    let session = Session::new(db).with_ndp(false);
    let stream = session
        .query("lineitem")
        .unwrap()
        .select(["l_orderkey", "l_quantity", "l_extendedprice", "l_shipdate"])
        .stream()
        .unwrap();
    let mut n = 0usize;
    for row in stream {
        black_box(row.unwrap());
        n += 1;
    }
    n
}

/// Drain a selective scan (residual predicate in the consumer; ~4 % of
/// rows survive, so per-scanned-record work dominates).
fn drain_selective(db: &Arc<TaurusDb>) -> usize {
    use taurus_common::Dec;
    use taurus_executor::dsl::col;
    let session = Session::new(db).with_ndp(false);
    let stream = session
        .query("lineitem")
        .unwrap()
        .select(["l_orderkey", "l_extendedprice"])
        .filter(col("l_quantity").lt(Dec::new(300, 2)))
        .stream()
        .unwrap();
    let mut n = 0usize;
    for row in stream {
        black_box(row.unwrap());
        n += 1;
    }
    n
}

/// Median wall time over `SAMPLES` runs; returns (rows, median ms).
fn measure(db: &Arc<TaurusDb>, f: impl Fn(&Arc<TaurusDb>) -> usize) -> (usize, f64) {
    let mut times: Vec<f64> = Vec::with_capacity(SAMPLES);
    let mut rows = 0usize;
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        rows = f(db);
        times.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    times.sort_by(|a, b| a.total_cmp(b));
    (rows, times[times.len() / 2])
}

/// Median wall time (ms) of a free-standing closure over `SAMPLES` runs.
fn median_ms(mut f: impl FnMut() -> usize) -> (usize, f64) {
    let mut times: Vec<f64> = Vec::with_capacity(SAMPLES);
    let mut n = 0usize;
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        n = black_box(f());
        times.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    times.sort_by(|a, b| a.total_cmp(b));
    (n, times[times.len() / 2])
}

/// Q1's full run (filter → wide aggregation → sort) through the public
/// query entry point — the aggregation breaker converts columns to rows.
fn drain_q1(db: &Arc<TaurusDb>) -> usize {
    let q1 = tpch_queries()
        .into_iter()
        .find(|q| q.name == "Q1")
        .expect("Q1 present");
    (q1.run)(db, None).unwrap().len()
}

const KERNEL_ROWS: usize = 64 * 1024;

/// Deterministic Q6-shaped rows: (quantity Dec(2), discount Dec(2),
/// shipdate Date). Selectivity lands around 4 %, like the real Q6.
fn kernel_rows() -> Vec<Row> {
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..KERNEL_ROWS)
        .map(|_| {
            vec![
                Value::Decimal(Dec::new((next() % 5_000) as i128, 2)),
                Value::Decimal(Dec::new((next() % 11) as i128, 2)),
                Value::Date(Date32(8_400 + (next() % 1_200) as i32)),
            ]
        })
        .collect()
}

fn kernel_predicate() -> Expr {
    Expr::and(vec![
        Expr::ge(Expr::col(2), Expr::date("1994-01-01")),
        Expr::lt(Expr::col(2), Expr::date("1995-01-01")),
        Expr::between(Expr::col(1), Expr::dec("0.05"), Expr::dec("0.07")),
        Expr::lt(Expr::col(0), Expr::dec("24.00")),
    ])
}

/// (survivors, scalar median ms, vector median ms).
fn bench_filter_kernel() -> (usize, f64, f64) {
    let rows = kernel_rows();
    let pred = kernel_predicate();
    let dtypes = [
        DataType::Decimal {
            precision: 15,
            scale: 2,
        },
        DataType::Decimal {
            precision: 15,
            scale: 2,
        },
        DataType::Date,
    ];
    let mut cb = ColumnBatch::with_capacity(&dtypes, KERNEL_ROWS);
    for r in &rows {
        cb.push_row(r.iter().cloned());
    }
    let vp = VectorProgram::from_expr(&pred).expect("Q6 shape vectorizes");
    let (scalar_n, scalar_ms) = median_ms(|| {
        rows.iter()
            .filter(|r| eval_pred(&pred, r).unwrap() == Some(true))
            .count()
    });
    let (vector_n, vector_ms) = median_ms(|| vp.eval_batch(&cb).unwrap().count_true());
    assert_eq!(scalar_n, vector_n, "kernel parity");
    (vector_n, scalar_ms, vector_ms)
}

fn main() {
    header("Ablation: scan-result batch size (ClusterConfig::scan_batch_rows)");
    println!(
        "{:>10} {:>12} {:>14} {:>14} {:>14} {:>14}",
        "batch", "rows", "full ms", "full rows/s", "sel ms", "sel rows/s"
    );
    let mut c = Criterion::default();
    let mut json_rows: Vec<String> = Vec::new();
    let mut baseline: Option<(f64, f64)> = None;
    let mut at_1024: Option<(f64, f64)> = None;
    for &bs in &BATCH_SIZES {
        let db = setup(SF, pipeline_config(bs));
        // Warm: tree internals + buffer pool.
        let table_rows = drain_full(&db);
        let (full_rows, full_ms) = measure(&db, drain_full);
        let (sel_rows, sel_ms) = measure(&db, drain_selective);
        // Throughput is rows *scanned* per second: both workloads walk the
        // whole table; the selective one just delivers few of its rows.
        let full_rate = full_rows as f64 / (full_ms / 1e3);
        let sel_rate = table_rows as f64 / (sel_ms / 1e3);
        println!(
            "{bs:>10} {full_rows:>12} {full_ms:>14.1} {full_rate:>14.0} {sel_ms:>14.1} {sel_rate:>14.0}"
        );
        c.bench_function(&format!("full_scan/batch={bs}"), |b| {
            b.iter(|| drain_full(&db))
        });
        if bs == 1 {
            baseline = Some((full_ms, sel_ms));
        }
        if bs == 1024 {
            at_1024 = Some((full_ms, sel_ms));
        }
        json_rows.push(format!(
            "    {{\"batch_rows\": {bs}, \"full_scan\": {{\"rows_out\": {full_rows}, \"median_ms\": {full_ms:.2}, \"scanned_rows_per_sec\": {full_rate:.0}}}, \
             \"selective_scan\": {{\"rows_out\": {sel_rows}, \"median_ms\": {sel_ms:.2}, \"scanned_rows_per_sec\": {sel_rate:.0}}}}}"
        ));
    }
    let (b_full, b_sel) = baseline.expect("batch size 1 measured");
    let (k_full, k_sel) = at_1024.expect("batch size 1024 measured");
    println!();
    println!(
        "speedup @1024 vs @1: full_scan {:.2}x, selective_scan {:.2}x",
        b_full / k_full,
        b_sel / k_sel
    );
    println!();
    println!("--- BENCH_row_batch.json ---");
    println!("{{");
    println!("  \"bench\": \"ablation_row_batch\",");
    println!("  \"workload\": \"TPC-H lineitem SF {SF}, Session/RowStream drain, NDP off, warm buffer pool\",");
    println!("  \"samples_per_point\": {SAMPLES},");
    println!("  \"results\": [");
    println!("{}", json_rows.join(",\n"));
    println!("  ],");
    println!("  \"speedup_full_scan_1024_vs_1\": {:.2},", b_full / k_full);
    println!(
        "  \"speedup_selective_scan_1024_vs_1\": {:.2}",
        b_sel / k_sel
    );
    println!("}}");

    // ------- columnar extension: row-major vs column-at-a-time -------
    header("Ablation: batch layout (row-major vs columnar, batch = 1024)");
    let (survivors, scalar_ms, vector_ms) = bench_filter_kernel();
    println!(
        "filter kernel ({KERNEL_ROWS} rows, {survivors} survive): scalar {scalar_ms:.2} ms, \
         vector {vector_ms:.2} ms ({:.2}x)",
        scalar_ms / vector_ms
    );
    println!(
        "{:>16} {:>12} {:>12} {:>12} {:>10}",
        "workload", "rows", "row ms", "columnar ms", "speedup"
    );
    let mut layout_json: Vec<String> = Vec::new();
    let workloads: [(&str, fn(&Arc<TaurusDb>) -> usize); 3] = [
        ("full_scan", drain_full),
        ("selective_filter", drain_selective),
        ("q1_agg", drain_q1),
    ];
    let mut cfg_row = pipeline_config(1024);
    cfg_row.batch_layout = BatchLayout::Row;
    let mut cfg_col = pipeline_config(1024);
    cfg_col.batch_layout = BatchLayout::Columnar;
    let row_db = setup(SF, cfg_row);
    let col_db = setup(SF, cfg_col);
    for (name, f) in workloads {
        f(&row_db); // warm both pools
        f(&col_db);
        let (row_rows, row_ms) = measure(&row_db, f);
        let (col_rows, col_ms) = measure(&col_db, f);
        assert_eq!(row_rows, col_rows, "{name}: layout parity");
        println!(
            "{name:>16} {row_rows:>12} {row_ms:>12.1} {col_ms:>12.1} {:>9.2}x",
            row_ms / col_ms
        );
        layout_json.push(format!(
            "    {{\"workload\": \"{name}\", \"rows_out\": {row_rows}, \"row_median_ms\": {row_ms:.2}, \
             \"columnar_median_ms\": {col_ms:.2}, \"speedup\": {:.2}}}",
            row_ms / col_ms
        ));
    }
    println!();
    println!("--- BENCH_columnar.json ---");
    println!("{{");
    println!("  \"bench\": \"ablation_row_batch (columnar extension)\",");
    println!("  \"workload\": \"TPC-H lineitem SF {SF}, batch 1024, warm buffer pool; kernel: {KERNEL_ROWS}-row Q6-shaped batch\",");
    println!("  \"samples_per_point\": {SAMPLES},");
    println!("  \"filter_kernel\": {{");
    println!("    \"rows\": {KERNEL_ROWS},");
    println!("    \"survivors\": {survivors},");
    println!("    \"scalar_median_ms\": {scalar_ms:.3},");
    println!("    \"vector_median_ms\": {vector_ms:.3},");
    println!("    \"speedup\": {:.2}", scalar_ms / vector_ms);
    println!("  }},");
    println!("  \"pipeline\": [");
    println!("{}", layout_json.join(",\n"));
    println!("  ]");
    println!("}}");
}
