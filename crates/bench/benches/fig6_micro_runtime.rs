//! Fig. 6 — "Run time reduction with NDP and PQ" (§VII-A).
//!
//! Relative run-time reduction vs single-threaded NDP-off execution, for
//! PQ-only, NDP-only, and NDP+PQ. A shared bandwidth limiter makes raw
//! scans I/O-bound, reproducing the paper's "PQ-only bottlenecks on I/O
//! below the theoretical maximum; NDP+PQ reaches it" shape.

use taurus_bench::*;

const PQ: usize = 8; // paper: 32 threads; scaled to laptop cores

fn main() {
    header("Fig. 6: run time reduction vs serial NDP-off (micro benchmark)");
    let theoretical = (1.0 - 1.0 / PQ as f64) * 100.0;
    println!("(PQ degree {PQ}; theoretical maximum reduction {theoretical:.1}%)");
    // Shared-wire bandwidth: sized so a full raw lineitem transfer takes
    // several times its compute cost (the paper's 25 Gbps vs ~1 TB).
    let mut limited_off = bench_config(false);
    limited_off.network.bandwidth_bytes_per_sec = Some(300_000_000);
    let mut limited_on = bench_config(true);
    limited_on.network.bandwidth_bytes_per_sec = Some(300_000_000);

    let off = setup(MICRO_SF, limited_off);
    let on = setup(MICRO_SF, limited_on);
    println!(
        "{:<6} {:>12} {:>12} {:>12} {:>12} | {:>9} {:>9} {:>9}",
        "query", "serial ms", "PQ-only ms", "NDP ms", "NDP+PQ ms", "PQ-only%", "NDP%", "NDP+PQ%"
    );
    for q in taurus_tpch::micro_queries() {
        let base = measure(&off, &q, None);
        let pq_only = measure(&off, &q, Some(PQ));
        let ndp_only = measure(&on, &q, None);
        let both = measure(&on, &q, Some(PQ));
        println!(
            "{:<6} {:>12.1} {:>12.1} {:>12.1} {:>12.1} | {:>8.1}% {:>8.1}% {:>8.1}%",
            q.name,
            ms(base.wall),
            ms(pq_only.wall),
            ms(ndp_only.wall),
            ms(both.wall),
            reduction(ms(pq_only.wall), ms(base.wall)),
            reduction(ms(ndp_only.wall), ms(base.wall)),
            reduction(ms(both.wall), ms(base.wall)),
        );
    }
}
