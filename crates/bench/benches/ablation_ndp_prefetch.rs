//! Ablation — NDP prefetch depth (`NdpConfig::prefetch_batches`): wall
//! time of NDP scans over TPC-H `lineitem` vs how many leaf batches the
//! scan keeps in flight.
//!
//! `prefetch_batches = 1` is the serial fetch-then-consume pipeline this
//! PR replaced at the *batch* level (sub-batches within one batch already
//! stream as Page Stores complete them); 2 is the shipped double-buffered
//! default; 4 runs deeper. The simulated network (shared-medium
//! bandwidth + per-request latency, as in the paper's 25 Gbps testbed
//! model) is what the prefetcher hides: while the consumer drains batch
//! N, batch N+1's pages are crossing the wire and being NDP-processed in
//! the Page Stores. `prefetch_stall_ns` shows the residual wait;
//! `ndp_batches_in_flight_peak` confirms the overlap actually happened.
//!
//! Two workloads, both cold-cache (buffer pool cleared before every
//! sample) so every page crosses the SAL:
//!
//! * **full_scan**: project 4 of 16 lineitem columns, no predicate —
//!   bandwidth-bound; the wire transfer is what overlaps with compute.
//! * **selective_scan**: Q6-style pushed predicate — Page Store CPU and
//!   mostly-empty result pages; storage-side processing overlaps with
//!   compute-side completion.
//!
//! Run with `cargo bench --bench ablation_ndp_prefetch`. The final JSON
//! block is what `BENCH_ndp_prefetch.json` at the repo root records.

use std::sync::Arc;
use std::time::Instant;

use criterion::black_box;
use taurus_bench::{header, setup, SEED};
use taurus_common::{ClusterConfig, Dec};
use taurus_executor::dsl::col;
use taurus_executor::Session;
use taurus_ndp::TaurusDb;

const SF: f64 = 0.02;
const PREFETCH_DEPTHS: [usize; 3] = [1, 2, 4];
const SAMPLES: usize = 5;

fn prefetch_config(prefetch: usize) -> ClusterConfig {
    let mut cfg = ClusterConfig::default();
    cfg.n_page_stores = 4;
    cfg.replication = 3;
    cfg.slice_pages = 128;
    cfg.buffer_pool_pages = 2048;
    cfg.ndp.enabled = true;
    cfg.ndp.min_io_pages = 64;
    cfg.ndp.max_pages_look_ahead = 256;
    cfg.ndp.prefetch_batches = prefetch;
    // The paper's shared 25 Gbps NIC, scaled: without a wire model there
    // is nothing for the prefetcher to hide.
    cfg.network.bandwidth_bytes_per_sec = Some(250_000_000);
    cfg.network.latency_us = 100;
    cfg
}

/// Full-width-ish scan: NDP projection pushed, every row survives.
fn drain_full(db: &Arc<TaurusDb>) -> usize {
    let session = Session::new(db);
    let stream = session
        .query("lineitem")
        .unwrap()
        .select(["l_orderkey", "l_quantity", "l_extendedprice", "l_shipdate"])
        .stream()
        .unwrap();
    let mut n = 0usize;
    for row in stream {
        black_box(row.unwrap());
        n += 1;
    }
    n
}

/// Q6-style selective scan: predicate pushed to the Page Stores.
fn drain_selective(db: &Arc<TaurusDb>) -> usize {
    let session = Session::new(db);
    let stream = session
        .query("lineitem")
        .unwrap()
        .select(["l_orderkey", "l_extendedprice"])
        .filter(col("l_quantity").lt(Dec::new(300, 2)))
        .stream()
        .unwrap();
    let mut n = 0usize;
    for row in stream {
        black_box(row.unwrap());
        n += 1;
    }
    n
}

/// Median cold-cache wall time over `SAMPLES` runs; returns
/// (rows, median ms, stall ms at the median run's metrics delta).
fn measure(db: &Arc<TaurusDb>, f: impl Fn(&Arc<TaurusDb>) -> usize) -> (usize, f64, f64) {
    let mut times: Vec<(f64, f64)> = Vec::with_capacity(SAMPLES);
    let mut rows = 0usize;
    for _ in 0..SAMPLES {
        db.buffer_pool().clear();
        let before = db.metrics().snapshot();
        let t0 = Instant::now();
        rows = f(db);
        let wall = t0.elapsed().as_secs_f64() * 1e3;
        let d = db.metrics().snapshot().since(&before);
        times.push((wall, d.prefetch_stall_ns as f64 / 1e6));
    }
    times.sort_by(|a, b| a.0.total_cmp(&b.0));
    let (median_ms, stall_ms) = times[times.len() / 2];
    (rows, median_ms, stall_ms)
}

fn main() {
    header("Ablation: NDP prefetch depth (NdpConfig::prefetch_batches)");
    println!(
        "{:>9} {:>9} {:>12} {:>11} {:>12} {:>11} {:>9}",
        "prefetch", "rows", "full ms", "stall ms", "sel ms", "stall ms", "peak"
    );
    let mut json_rows: Vec<String> = Vec::new();
    let mut at_depth: Vec<(f64, f64)> = Vec::new();
    for &prefetch in &PREFETCH_DEPTHS {
        let db = setup(SF, prefetch_config(prefetch));
        // Warm the tree internals (not the leaf pages — each sample
        // clears the pool), then measure.
        drain_full(&db);
        let (full_rows, full_ms, full_stall) = measure(&db, drain_full);
        let (sel_rows, sel_ms, sel_stall) = measure(&db, drain_selective);
        let peak = db.metrics().snapshot().ndp_batches_in_flight_peak;
        println!(
            "{prefetch:>9} {full_rows:>9} {full_ms:>12.1} {full_stall:>11.1} {sel_ms:>12.1} {sel_stall:>11.1} {peak:>9}"
        );
        at_depth.push((full_ms, sel_ms));
        json_rows.push(format!(
            "    {{\"prefetch_batches\": {prefetch}, \
             \"full_scan\": {{\"rows_out\": {full_rows}, \"median_ms\": {full_ms:.2}, \"prefetch_stall_ms\": {full_stall:.2}}}, \
             \"selective_scan\": {{\"rows_out\": {sel_rows}, \"median_ms\": {sel_ms:.2}, \"prefetch_stall_ms\": {sel_stall:.2}}}, \
             \"ndp_batches_in_flight_peak\": {peak}}}"
        ));
    }
    let (serial_full, serial_sel) = at_depth[0];
    let (db_full, db_sel) = at_depth[1];
    println!();
    println!(
        "speedup prefetch=2 vs 1: full_scan {:.2}x, selective_scan {:.2}x",
        serial_full / db_full,
        serial_sel / db_sel
    );
    println!();
    println!("--- BENCH_ndp_prefetch.json ---");
    println!("{{");
    println!("  \"bench\": \"ablation_ndp_prefetch\",");
    println!("  \"workload\": \"TPC-H lineitem SF {SF} (seed {SEED}), NDP on, cold buffer pool per sample, shared 250 MB/s wire + 100 us request latency\",");
    println!("  \"samples_per_point\": {SAMPLES},");
    println!("  \"results\": [");
    println!("{}", json_rows.join(",\n"));
    println!("  ],");
    println!(
        "  \"speedup_full_scan_prefetch2_vs_1\": {:.2},",
        serial_full / db_full
    );
    println!(
        "  \"speedup_selective_scan_prefetch2_vs_1\": {:.2}",
        serial_sel / db_sel
    );
    println!("}}");
}
