//! Fig. 9 — "Further run time reduction from PQ" (§VII-E): with NDP on,
//! the PQ-capable queries at degree 16 vs serial. The paper's shape: six
//! near the theoretical maximum, Q15 at about half (its NL stage is
//! serial).

use taurus_bench::*;

const PQ: usize = 8; // paper: 16; scaled to laptop cores

fn main() {
    header("Fig. 9: further run time reduction from PQ (NDP on)");
    let theoretical = (1.0 - 1.0 / PQ as f64) * 100.0;
    println!("(degree {PQ}; theoretical maximum {theoretical:.1}%)");
    let on = setup(BENCH_SF, bench_config(true));
    println!(
        "{:<5} {:>12} {:>12} {:>9}",
        "query", "serial ms", "PQ ms", "red %"
    );
    for q in taurus_tpch::tpch_queries() {
        if !q.pq_capable {
            continue;
        }
        let serial = measure(&on, &q, None);
        let parallel = measure(&on, &q, Some(PQ));
        println!(
            "{:<5} {:>12.1} {:>12.1} {:>8.1}%",
            q.name,
            ms(serial.wall),
            ms(parallel.wall),
            reduction(ms(parallel.wall), ms(serial.wall))
        );
    }
    println!("(queries absent from this table run fully serial plans, as in the paper)");
}
