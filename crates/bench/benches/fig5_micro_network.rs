//! Fig. 5 — "Network read reduction with NDP" (§VII-A).
//!
//! The Listing-5 COUNT(*) variants plus TPC-H Q1/Q6 over the lineitem
//! table; bytes shipped storage→compute with NDP off vs on. Paper shape:
//! near-total reduction for Q0/Q001/Q002/Q6, smaller but large for Q1.

use taurus_bench::*;

fn main() {
    header("Fig. 5: network read reduction with NDP (micro benchmark)");
    let off = setup(MICRO_SF, bench_config(false));
    let on = setup(MICRO_SF, bench_config(true));
    println!(
        "{:<6} {:>14} {:>14} {:>12}",
        "query", "bytes NDP-off", "bytes NDP-on", "reduction %"
    );
    for q in taurus_tpch::micro_queries() {
        let a = measure(&off, &q, None);
        let b = measure(&on, &q, None);
        println!(
            "{:<6} {:>14} {:>14} {:>11.1}%",
            q.name,
            a.bytes_from_storage,
            b.bytes_from_storage,
            reduction(b.bytes_from_storage as f64, a.bytes_from_storage as f64)
        );
    }
}
