//! §IV-D1 ablation — the NDP descriptor cache: "decoding caused a
//! bottleneck … a few milliseconds per decoding … dramatically reduced …
//! to less than 5 microseconds, and improved performance on some
//! benchmarks by up to 50%."
//!
//! We run a repeated NDP scan with the cache enabled vs disabled and
//! report per-request decode+JIT time and query wall time.

use taurus_bench::*;

fn run_with_cache(enabled: bool) -> (f64, f64, u64, u64) {
    let mut cfg = bench_config(true);
    cfg.ndp.descriptor_cache = enabled;
    // Small look-ahead => many batch requests => many descriptor decodes.
    cfg.ndp.max_pages_look_ahead = 16;
    let db = setup(0.01, cfg);
    let q6 = &taurus_tpch::micro_queries()[4];
    // Warm once, then measure repeated runs (the paper's "many waves of
    // NDP page read requests with the same descriptor").
    measure(&db, q6, None);
    let before = db.metrics().snapshot();
    let t0 = std::time::Instant::now();
    for _ in 0..5 {
        measure(&db, q6, None);
    }
    let wall = t0.elapsed().as_secs_f64() * 1e3;
    let d = db.metrics().snapshot().since(&before);
    let decodes = d.ps_desc_cache_misses.max(1);
    (
        wall,
        d.ps_desc_decode_ns as f64 / 1e3 / decodes as f64,
        d.ps_desc_cache_hits,
        d.ps_desc_cache_misses,
    )
}

fn main() {
    header("Ablation: NDP descriptor cache (§IV-D1)");
    let (wall_on, decode_on, hits_on, miss_on) = run_with_cache(true);
    let (wall_off, decode_off, hits_off, miss_off) = run_with_cache(false);
    println!("cache ON : 5 runs of Q6 in {wall_on:.1} ms; avg decode+JIT {decode_on:.1} us/miss; hits={hits_on} misses={miss_on}");
    println!("cache OFF: 5 runs of Q6 in {wall_off:.1} ms; avg decode+JIT {decode_off:.1} us/miss; hits={hits_off} misses={miss_off}");
    println!(
        "cache speedup: {:.1}% (paper: up to 50%)",
        reduction(wall_on, wall_off)
    );
}
