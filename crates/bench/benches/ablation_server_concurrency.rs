//! Ablation — serving-layer concurrency: latency percentiles and
//! aggregate throughput of the TCP front end at 8 / 64 / 256 client
//! connections, master-only vs master + 2 log-tailing read replicas.
//!
//! Two wire workloads per cell:
//! - **lookup** — MVCC point lookups on `orders` by primary keys
//!   spread across the whole key range.
//! - **ndp_scan** — a Q6-style selective NDP scan over `lineitem`
//!   (selection + projection pushed to the Page Stores, result rows
//!   streamed back over the node's wire).
//!
//! Why routing wins here: NDP result pages live in transient frames
//! and are *never* inserted into the buffer pool (by design — the NDP
//! area is invisible to other queries), so the master re-ships the
//! scan's result bytes over its storage wire on **every** execution,
//! and that wire is a token-bucket shared medium (`sal::network`) —
//! a per-node capacity. A log-tailing replica, by contrast, has
//! materialized every tailer-applied page image in its own pool, so
//! the same scan runs against local cache. Routing scans across
//! master+2 replicas therefore multiplies serving capacity even
//! though all three nodes share the same Page Stores. Point lookups
//! are the control: cache-served everywhere, they are host-CPU-bound,
//! and on this single-core bench box routing cannot add CPU — expect
//! ~parity (minus tailer overhead), not a win.
//!
//! Clients are closed-loop threads over real sockets against a real
//! `Server`; the permit gate (`server.worker_threads = 32`) bounds
//! concurrently executing queries while connections can pile far
//! higher. Each cell runs an untimed warm phase (master pulls its hot
//! leaf/aux pages once) before the measure window. Run with
//! `cargo bench --bench ablation_server_concurrency`; the final JSON
//! block is what `BENCH_server_concurrency.json` at the repo root
//! records.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use taurus_bench::{header, SEED};
use taurus_common::{ClusterConfig, Dec, Value};
use taurus_executor::Session;
use taurus_ndp::TaurusDb;
use taurus_protocol::{BuilderSpec, ColSel, WireExpr};
use taurus_replica::Replica;
use taurus_server::{tpch_registry, Client, Server};

const SF: f64 = 0.01;
const REPLICA_COUNTS: [usize; 2] = [0, 2];
const CONNECTIONS: [usize; 3] = [8, 64, 256];
const WARM: Duration = Duration::from_millis(1500);
const MEASURE: Duration = Duration::from_secs(2);

fn bench_cfg() -> ClusterConfig {
    let mut cfg = ClusterConfig::default();
    cfg.n_page_stores = 4;
    cfg.replication = 3;
    cfg.slice_pages = 128;
    // Large enough that every tailer-applied page image stays resident
    // on a replica (and the master's hot B-tree pages stay cached) —
    // what keeps crossing the wire is exactly the master's per-scan NDP
    // result traffic, which bypasses the pool by design.
    cfg.buffer_pool_pages = 2048;
    cfg.ndp.enabled = true;
    cfg.ndp.min_io_pages = 16;
    cfg.ndp.max_pages_look_ahead = 256;
    // Per-node simulated NIC (sleep-based, not CPU): deliberately tight
    // so the master's NDP shipping — not the shared host core — is the
    // binding resource for the scan workload.
    cfg.network.bandwidth_bytes_per_sec = Some(3_000_000);
    cfg.network.latency_us = 100;
    // Tailers only idle-poll during the read-only measure windows; a
    // longer poll keeps their single-core overhead out of the lookup
    // numbers.
    cfg.replica.poll_interval_us = 2_000;
    // Serving knobs: executing queries are wire-sleep-bound, so the
    // worker pool runs far wider than the core count; sessions must
    // admit the largest connection sweep.
    cfg.server.listen_addr = "127.0.0.1:0".into();
    cfg.server.worker_threads = 32;
    cfg.server.max_sessions = 512;
    cfg
}

#[derive(Clone, Copy, PartialEq)]
enum Workload {
    Lookup,
    NdpScan,
}

impl Workload {
    fn name(self) -> &'static str {
        match self {
            Workload::Lookup => "lookup",
            Workload::NdpScan => "ndp_scan",
        }
    }
}

/// The Q6-style wire request: `SELECT l_orderkey, l_extendedprice FROM
/// lineitem WHERE l_quantity < 5.00`, NDP on.
fn scan_spec() -> BuilderSpec {
    let mut spec = BuilderSpec::table("lineitem");
    spec.filters.push(WireExpr::Cmp(
        2, // Lt
        Box::new(WireExpr::Col("l_quantity".into())),
        Box::new(WireExpr::Lit(Value::Decimal(Dec::new(500, 2)))),
    ));
    spec.select = vec![
        ColSel::Name("l_orderkey".into()),
        ColSel::Name("l_extendedprice".into()),
    ];
    spec
}

struct Cell {
    queries: u64,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
}

/// One measured cell: `conns` closed-loop clients hammering `addr`
/// with one workload — an untimed warm phase, then the measure window.
fn run_cell(addr: &str, conns: usize, workload: Workload, pks: &Arc<Vec<Value>>) -> Cell {
    let stop = Arc::new(AtomicBool::new(false));
    let measuring = Arc::new(AtomicBool::new(false));
    let start = Arc::new(Barrier::new(conns + 1));
    let handles: Vec<_> = (0..conns)
        .map(|c| {
            let addr = addr.to_string();
            let stop = stop.clone();
            let measuring = measuring.clone();
            let start = start.clone();
            let pks = pks.clone();
            std::thread::spawn(move || {
                let mut client =
                    Client::connect_retry(&addr, Duration::from_secs(30)).expect("connect");
                start.wait();
                let mut lat_us: Vec<u64> = Vec::new();
                let mut warmed = false;
                let mut k = c;
                while !stop.load(Ordering::SeqCst) {
                    if !warmed && measuring.load(Ordering::SeqCst) {
                        // Discard warm-phase samples; the window starts now.
                        warmed = true;
                        lat_us.clear();
                    }
                    let t0 = Instant::now();
                    match workload {
                        Workload::Lookup => {
                            let pk = pks[k % pks.len()].clone();
                            let (row, _) = client.lookup("orders", vec![pk]).expect("lookup");
                            assert!(row.is_some(), "known pk must resolve");
                        }
                        Workload::NdpScan => {
                            let reply = client.query_builder(scan_spec()).expect("scan");
                            assert!(!reply.rows.is_empty());
                        }
                    }
                    lat_us.push(t0.elapsed().as_micros() as u64);
                    k += 1;
                }
                lat_us
            })
        })
        .collect();
    start.wait();
    std::thread::sleep(WARM);
    let t0 = Instant::now();
    measuring.store(true, Ordering::SeqCst);
    std::thread::sleep(MEASURE);
    stop.store(true, Ordering::SeqCst);
    let mut lat: Vec<u64> = Vec::new();
    for h in handles {
        lat.extend(h.join().unwrap());
    }
    let elapsed = t0.elapsed().as_secs_f64();
    lat.sort_unstable();
    let pct = |p: usize| -> f64 {
        if lat.is_empty() {
            return 0.0;
        }
        lat[(lat.len() * p / 100).min(lat.len() - 1)] as f64 / 1e3
    };
    Cell {
        queries: lat.len() as u64,
        qps: lat.len() as f64 / elapsed,
        p50_ms: pct(50),
        p99_ms: pct(99),
    }
}

fn main() {
    header("Ablation: serving-layer concurrency (connections x replica routing)");
    let db = TaurusDb::new(bench_cfg());
    taurus_tpch::load(&db, SF, SEED).expect("load tpch");

    // A pool of known order keys for the point-lookup workload, strided
    // across the whole key range so lookups touch every leaf page (the
    // first N keys would all sit on a handful of cached leaves).
    let all_keys: Vec<Value> = Session::new(&db)
        .query("orders")
        .unwrap()
        .select(["o_orderkey"])
        .collect_rows()
        .unwrap()
        .into_iter()
        .map(|mut r| r.remove(0))
        .collect();
    assert!(!all_keys.is_empty());
    let stride = (all_keys.len() / 512).max(1);
    let pks: Arc<Vec<Value>> = Arc::new(all_keys.into_iter().step_by(stride).collect());

    println!(
        "{:>9} {:>9} {:>6} {:>10} {:>11} {:>9} {:>9}",
        "workload", "replicas", "conns", "queries", "agg q/s", "p50 ms", "p99 ms"
    );
    let mut json_rows: Vec<String> = Vec::new();
    for &n_replicas in &REPLICA_COUNTS {
        let replicas: Vec<Arc<Replica>> = (0..n_replicas).map(|_| Replica::attach(&db)).collect();
        for r in &replicas {
            r.wait_caught_up(Duration::from_secs(60)).expect("catch up");
        }
        let handle = Server::start(&db, replicas.clone(), tpch_registry()).expect("start server");
        let addr = handle.local_addr().to_string();
        for workload in [Workload::Lookup, Workload::NdpScan] {
            // Warm each node's cache once through the wire path — every
            // lookup key (so no measure window pays a cold leaf fetch
            // over the rate-limited wire) / one scan per node.
            let mut warm = Client::connect(&addr).expect("warm connect");
            for _ in 0..(1 + n_replicas) {
                match workload {
                    Workload::Lookup => {
                        for pk in pks.iter() {
                            drop(warm.lookup("orders", vec![pk.clone()]).unwrap());
                        }
                    }
                    Workload::NdpScan => drop(warm.query_builder(scan_spec()).unwrap()),
                }
            }
            drop(warm);
            for &conns in &CONNECTIONS {
                let cell = run_cell(&addr, conns, workload, &pks);
                println!(
                    "{:>9} {n_replicas:>9} {conns:>6} {:>10} {:>11.2} {:>9.2} {:>9.2}",
                    workload.name(),
                    cell.queries,
                    cell.qps,
                    cell.p50_ms,
                    cell.p99_ms
                );
                json_rows.push(format!(
                    "    {{\"workload\": \"{}\", \"replicas\": {n_replicas}, \
                     \"connections\": {conns}, \"queries_completed\": {}, \
                     \"aggregate_qps\": {:.2}, \"p50_ms\": {:.2}, \"p99_ms\": {:.2}}}",
                    workload.name(),
                    cell.queries,
                    cell.qps,
                    cell.p50_ms,
                    cell.p99_ms
                ));
            }
        }
        drop(handle);
        for r in replicas {
            r.detach();
        }
    }

    println!();
    println!("--- BENCH_server_concurrency.json ---");
    println!("{{");
    println!("  \"bench\": \"ablation_server_concurrency\",");
    println!(
        "  \"workload\": \"TPC-H SF {SF} (seed {SEED}) served over TCP; closed-loop client \
         threads; point lookups on orders (keys strided over the whole range; cache-served \
         everywhere, so host-CPU-bound: the single-core control, ~parity expected) + \
         Q6-style selective NDP scan on lineitem (NDP results bypass the buffer pool, so \
         the master re-ships them over its per-node 3 MB/s token-bucket wire every run, \
         while replicas serve tailer-materialized pages from cache: routing multiplies \
         capacity); {}s warm + {}s measure per cell; worker gate 32; lag-aware round-robin \
         routing across master + replicas\",",
        WARM.as_secs_f64(),
        MEASURE.as_secs()
    );
    println!("  \"results\": [");
    println!("{}", json_rows.join(",\n"));
    println!("  ]");
    println!("}}");
}
