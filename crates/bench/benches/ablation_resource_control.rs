//! §IV-D2 ablation — resource control / best-effort NDP: force skip rates
//! on the Page Stores and show that results stay correct while compute-
//! side completion grows; NDP benefit is page-scoped, "not all-or-nothing".

use taurus_bench::*;
use taurus_pagestore::SkipPolicy;

fn main() {
    header("Ablation: resource control / best-effort NDP (§IV-D2)");
    let db = setup(0.02, bench_config(true));
    let q6 = &taurus_tpch::micro_queries()[4];
    println!(
        "{:>12} {:>12} {:>12} {:>12} {:>14}",
        "skip", "wall (ms)", "NDP pages", "raw pages", "bytes (KB)"
    );
    for (name, policy) in [
        ("none", SkipPolicy::None),
        ("every 4th", SkipPolicy::EveryNth(4)),
        ("every 2nd", SkipPolicy::EveryNth(2)),
        ("all", SkipPolicy::All),
    ] {
        for ps in db.sal().page_stores() {
            ps.set_skip_policy(policy.clone());
        }
        db.buffer_pool().clear();
        let m = measure(&db, q6, None);
        println!(
            "{:>12} {:>12.1} {:>12} {:>12} {:>14}",
            name,
            ms(m.wall),
            m.pages_ndp,
            m.pages_raw,
            m.bytes_from_storage / 1024
        );
    }
    for ps in db.sal().page_stores() {
        ps.set_skip_policy(SkipPolicy::None);
    }
}
