//! Ablation — NDP resource governance and degraded-mode serving.
//!
//! Two experiments:
//!
//! **(a) Tenant isolation under an antagonist.** A latency-sensitive
//! tenant runs a selective Q6-style NDP scan in a closed loop while an
//! antagonist tenant floods the same Page Stores with full-table NDP
//! scans from several threads. Each slice batch fans out to one pool
//! job per page, each job pays a simulated NDP service time, and the
//! single pool worker makes the queue a real finite server — the
//! antagonist's floods back it up, delaying (and at the global cap,
//! shedding) the victim's own batches onto the rate-limited wire.
//! Three cells: the victim alone (baseline), contended with no quota,
//! and contended with a per-tenant quota of three batches' worth of
//! queued jobs per store — the quota caps how many slots the
//! antagonist can hold, its overflow degrades to raw reads *billed to
//! it*, and the victim's p99 must stay within 2x of its uncontended
//! baseline.
//!
//! **(b) Brownout serving.** One of the four stores gets a +50 ms
//! injected latency fault (`FaultPolicy::Latency`). Every TPC-H query
//! must still complete — slices replicate across 3 stores, so batch
//! reads route around the slow store where a healthy preferred replica
//! exists, and NDP/raw serving both stay correct — and must finish
//! within the serving deadline (`session_read_timeout_ms`, 30 s).
//!
//! Run with `cargo bench --bench ablation_ndp_governance`; the final
//! JSON block is what `BENCH_ndp_governance.json` at the repo root
//! records.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use taurus_bench::{header, ms, SEED};
use taurus_common::{ClusterConfig, Dec, TenantId, Value};
use taurus_executor::dsl::col;
use taurus_executor::Session;
use taurus_ndp::TaurusDb;
use taurus_pagestore::FaultPolicy;
use taurus_tpch::tpch_queries;

const SF: f64 = 0.01;
const VICTIM: TenantId = 1;
const ANTAGONIST: TenantId = 2;
const VICTIM_RUNS: usize = 60;
const ANTAGONIST_THREADS: usize = 2;
/// One slice batch fans out to `slice_pages` per-page pool jobs and the
/// scan pipeline keeps up to two batches in flight per store
/// (double-buffered prefetch), so the per-tenant quota admits three
/// batches' worth of queued jobs: one closed-loop tenant's pipeline is
/// never self-throttled (even when prefetch rotation briefly overlaps a
/// third batch), but a multi-threaded flood (4+ batches in flight per
/// store) overflows it and degrades to raw reads billed to the flooder.
const TENANT_QUOTA: usize = 192;
const BROWNOUT: Duration = Duration::from_millis(50);
const DEADLINE_MS: u64 = 30_000;

fn bench_cfg() -> ClusterConfig {
    let mut cfg = ClusterConfig::default();
    cfg.n_page_stores = 4;
    cfg.replication = 3;
    cfg.slice_pages = 64;
    cfg.buffer_pool_pages = 512; // smaller than the data: scans hit the stores
    cfg.ndp.enabled = true;
    cfg.ndp.min_io_pages = 8;
    cfg.ndp.max_pages_look_ahead = 256;
    // A small NDP pool per store: 1 worker, 200 us of simulated service
    // per page (a 64-page batch occupies the worker for ~13 ms), and a
    // queue of 8 batches' worth of jobs. Two quota-bound tenants (3
    // batches each) fit with ample headroom; only an ungoverned flood
    // can drive occupancy to the cap and shed arriving batches.
    cfg.pagestore_ndp_threads = 1;
    cfg.pagestore_ndp_queue = 512;
    cfg.pagestore_ndp_service_us = 200;
    // A real storage wire: per-request round-trip latency plus a shared
    // rate limit, so shedding a scan to raw page reads has the paper's
    // price (pages crossing the NIC) instead of being free.
    cfg.network.bandwidth_bytes_per_sec = Some(64_000_000);
    cfg.network.latency_us = 5_000;
    cfg
}

/// The victim's latency-sensitive query: selective NDP scan on lineitem.
/// Admitted, its batches come back as small NDP result pages; shed, the
/// same scan ships every raw page over the shared wire.
fn victim_query(session: &Session) -> usize {
    session
        .query("lineitem")
        .unwrap()
        .filter(col("l_quantity").lt(Value::Decimal(Dec::new(300, 2))))
        .select(["l_orderkey", "l_extendedprice"])
        .collect_rows()
        .expect("victim query")
        .len()
}

/// The antagonist's queue-hogging query: a full-table NDP scan whose
/// predicate matches nothing. Its jobs occupy the stores' NDP queues
/// for entire batches while shipping almost no result bytes — the
/// worst neighbor for admission control specifically.
fn antagonist_query(session: &Session) -> usize {
    session
        .query("lineitem")
        .unwrap()
        .filter(col("l_quantity").lt(Value::Decimal(Dec::new(-100, 2))))
        .select(["l_orderkey"])
        .collect_rows()
        .expect("antagonist query")
        .len()
}

struct Cell {
    p50_ms: f64,
    p99_ms: f64,
}

fn percentile(lat_us: &mut [u64], p: usize) -> f64 {
    lat_us.sort_unstable();
    if lat_us.is_empty() {
        return 0.0;
    }
    lat_us[(lat_us.len() * p / 100).min(lat_us.len() - 1)] as f64 / 1e3
}

/// Measure the victim's closed-loop latency distribution, optionally
/// against a running antagonist fleet.
fn run_victim_cell(db: &Arc<TaurusDb>, with_antagonist: bool) -> Cell {
    let stop = Arc::new(AtomicBool::new(false));
    let antagonists: Vec<_> = if with_antagonist {
        (0..ANTAGONIST_THREADS)
            .map(|_| {
                let db = db.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let session = Session::new(&db).with_tenant(ANTAGONIST);
                    while !stop.load(Ordering::SeqCst) {
                        antagonist_query(&session);
                    }
                })
            })
            .collect()
    } else {
        Vec::new()
    };

    let session = Session::new(db).with_tenant(VICTIM);
    // Warm-up runs outside the measure window (the first post-load scans
    // also warm the buffer pool's hot set and descriptor caches).
    for _ in 0..10 {
        victim_query(&session);
    }
    let mut lat_us: Vec<u64> = Vec::with_capacity(VICTIM_RUNS);
    for _ in 0..VICTIM_RUNS {
        let t0 = Instant::now();
        victim_query(&session);
        lat_us.push(t0.elapsed().as_micros() as u64);
    }

    stop.store(true, Ordering::SeqCst);
    for h in antagonists {
        h.join().unwrap();
    }
    Cell {
        p50_ms: percentile(&mut lat_us, 50),
        p99_ms: percentile(&mut lat_us, 99),
    }
}

fn main() {
    header("Ablation: NDP governance (tenant quotas) and degraded-mode serving (brownout)");
    let db = TaurusDb::new(bench_cfg());
    taurus_tpch::load(&db, SF, SEED).expect("load tpch");

    // --- (a) tenant isolation ------------------------------------------------
    println!("{:>28} {:>9} {:>9}", "victim cell", "p50 ms", "p99 ms");
    let baseline = run_victim_cell(&db, false);
    println!(
        "{:>28} {:>9.2} {:>9.2}",
        "alone (baseline)", baseline.p50_ms, baseline.p99_ms
    );
    let contended = run_victim_cell(&db, true);
    println!(
        "{:>28} {:>9.2} {:>9.2}",
        "antagonist, no quota", contended.p50_ms, contended.p99_ms
    );
    for ps in db.sal().page_stores() {
        ps.set_ndp_tenant_quota(TENANT_QUOTA);
    }
    let governed = run_victim_cell(&db, true);
    println!(
        "{:>28} {:>9.2} {:>9.2}",
        "antagonist, quota on", governed.p50_ms, governed.p99_ms
    );
    for ps in db.sal().page_stores() {
        ps.set_ndp_tenant_quota(0);
    }
    let snap_a = db.metrics().snapshot();
    let governed_ratio = governed.p99_ms / baseline.p99_ms.max(0.001);
    println!(
        "p99 ratio vs baseline: no-quota {:.2}x, quota {:.2}x (target < 2x) -> {}",
        contended.p99_ms / baseline.p99_ms.max(0.001),
        governed_ratio,
        if governed_ratio < 2.0 { "PASS" } else { "FAIL" }
    );
    println!(
        "quota rejections {} / shed pages {} (antagonist overflow degraded to raw reads)",
        snap_a.ps_ndp_quota_rejected, snap_a.ps_ndp_shed
    );
    for (name, id) in [("victim", VICTIM), ("antagonist", ANTAGONIST)] {
        let t = db.metrics().tenants.tenant(id);
        println!(
            "  tenant {name}: admitted {} quota-rejected {} pages-shed {}",
            t.ndp_admitted.load(Ordering::SeqCst),
            t.ndp_quota_rejected.load(Ordering::SeqCst),
            t.pages_shed.load(Ordering::SeqCst)
        );
    }

    // --- (b) brownout serving ------------------------------------------------
    println!();
    println!(
        "brownout: store 0 +{} ms per request; all TPC-H queries, {} ms deadline",
        BROWNOUT.as_millis(),
        DEADLINE_MS
    );
    db.sal().page_stores()[0].set_fault(FaultPolicy::Latency(BROWNOUT));
    db.buffer_pool().clear();
    let mut brownout_rows: Vec<String> = Vec::new();
    let mut worst_ms = 0f64;
    let mut errors = 0usize;
    for q in tpch_queries() {
        let t0 = Instant::now();
        let outcome = (q.run)(&db, None);
        let wall = t0.elapsed();
        let ok = outcome.is_ok() && wall < Duration::from_millis(DEADLINE_MS);
        if outcome.is_err() {
            errors += 1;
        }
        worst_ms = worst_ms.max(ms(wall));
        println!(
            "{:>4} {:>9.1} ms {}",
            q.name,
            ms(wall),
            if ok { "ok" } else { "LATE/ERR" }
        );
        brownout_rows.push(format!(
            "    {{\"query\": \"{}\", \"wall_ms\": {:.1}, \"within_deadline\": {}}}",
            q.name,
            ms(wall),
            ok
        ));
    }
    db.sal().page_stores()[0].set_fault(FaultPolicy::None);
    println!(
        "brownout summary: worst {worst_ms:.1} ms, errors {errors} -> {}",
        if errors == 0 && worst_ms < DEADLINE_MS as f64 {
            "PASS"
        } else {
            "FAIL"
        }
    );

    // --- JSON ---------------------------------------------------------------
    println!();
    println!("--- BENCH_ndp_governance.json ---");
    println!("{{");
    println!("  \"bench\": \"ablation_ndp_governance\",");
    println!(
        "  \"workload\": \"TPC-H SF {SF} (seed {SEED}); 4 stores, replication 3, NDP pool 1 \
         worker x 200 us/page / 512 queue slots per store, 64 MB/s + 5 ms storage wire. \
         (a) closed-loop \
         selective NDP scan (tenant {VICTIM}) vs {ANTAGONIST_THREADS} antagonist threads of \
         full-table empty-result NDP scans (tenant {ANTAGONIST}): victim alone, contended \
         without quota, contended with per-tenant quota {TENANT_QUOTA}. (b) store 0 browned \
         out (+{} ms per request): every TPC-H query under a {} ms deadline\",",
        BROWNOUT.as_millis(),
        DEADLINE_MS
    );
    println!("  \"tenant_isolation\": {{");
    println!(
        "    \"baseline\": {{\"p50_ms\": {:.2}, \"p99_ms\": {:.2}}},",
        baseline.p50_ms, baseline.p99_ms
    );
    println!(
        "    \"contended_no_quota\": {{\"p50_ms\": {:.2}, \"p99_ms\": {:.2}}},",
        contended.p50_ms, contended.p99_ms
    );
    println!(
        "    \"contended_quota\": {{\"p50_ms\": {:.2}, \"p99_ms\": {:.2}}},",
        governed.p50_ms, governed.p99_ms
    );
    println!("    \"governed_p99_over_baseline\": {governed_ratio:.2},");
    println!(
        "    \"quota_rejections\": {},",
        snap_a.ps_ndp_quota_rejected
    );
    println!("    \"shed_pages\": {}", snap_a.ps_ndp_shed);
    println!("  }},");
    println!("  \"brownout\": [");
    println!("{}", brownout_rows.join(",\n"));
    println!("  ],");
    println!(
        "  \"brownout_summary\": {{\"worst_ms\": {worst_ms:.1}, \"errors\": {errors}, \
         \"deadline_ms\": {DEADLINE_MS}}}"
    );
    println!("}}");
}
