//! Ablation — read-replica scale-out: aggregate read throughput of a
//! cluster serving a fixed query mix from the master alone vs the master
//! plus N log-tailing read replicas, **while a writer keeps committing**
//! on the master.
//!
//! This is the read-scaling story of §II: Log Stores "serve log records
//! to read replicas", which read the *same* shared Page Stores at a
//! replica-consistent LSN — so adding a replica adds a compute node's
//! worth of query capacity without copying a byte of page data. Every
//! node runs one reader thread draining the same two scans (a Q6-style
//! selective NDP scan and a pushed-down aggregate); the score is
//! completed queries per second summed across nodes. The writer's
//! sum-preserving transfers run throughout, so replica results are also
//! sanity-checked against the balance invariant — throughput that served
//! torn snapshots would not count.
//!
//! Run with `cargo bench --bench ablation_replica_scaleout`. The final
//! JSON block is what `BENCH_replica_scaleout.json` at the repo root
//! records.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::black_box;
use taurus_bench::{header, SEED};
use taurus_common::schema::{Column, Row, TableSchema};
use taurus_common::{ClusterConfig, DataType, Dec, Value};
use taurus_executor::dsl::col;
use taurus_executor::{Agg, Session};
use taurus_ndp::TaurusDb;
use taurus_replica::Replica;

const SF: f64 = 0.01;
const REPLICAS: [usize; 4] = [0, 1, 2, 3];
const MEASURE: Duration = Duration::from_secs(3);
const ACCTS: i64 = 64;

fn bench_cfg() -> ClusterConfig {
    let mut cfg = ClusterConfig::default();
    cfg.n_page_stores = 4;
    cfg.replication = 3;
    cfg.slice_pages = 128;
    cfg.buffer_pool_pages = 1024;
    cfg.ndp.enabled = true;
    cfg.ndp.min_io_pages = 16;
    cfg.ndp.max_pages_look_ahead = 256;
    // Per-node wire (each SAL attachment gets its own simulated NIC) —
    // matches the paper's testbed where every compute node has one.
    cfg.network.bandwidth_bytes_per_sec = Some(250_000_000);
    cfg.network.latency_us = 100;
    cfg
}

/// The fixed per-node query mix: one selective NDP scan + one pushed
/// aggregate over `lineitem`. Returns rows drained (for black_box).
fn run_mix(db: &Arc<TaurusDb>) -> usize {
    let session = Session::new(db);
    let mut n = 0usize;
    let stream = session
        .query("lineitem")
        .unwrap()
        .select(["l_orderkey", "l_extendedprice"])
        .filter(col("l_quantity").lt(Dec::new(500, 2)))
        .stream()
        .unwrap();
    for row in stream {
        black_box(row.unwrap());
        n += 1;
    }
    let agg = session
        .query("lineitem")
        .unwrap()
        .agg(Agg::sum("l_extendedprice"))
        .agg(Agg::count_star())
        .collect_rows()
        .unwrap();
    black_box(agg);
    n
}

fn main() {
    header("Ablation: read-replica scale-out (master + N log-tailing replicas)");
    let cfg = bench_cfg();
    let db = TaurusDb::new(cfg);
    taurus_tpch::load(&db, SF, SEED).expect("load tpch");
    let acct = db
        .create_table(
            TableSchema::new(
                "acct",
                vec![
                    Column::new("id", DataType::BigInt),
                    Column::new("bal", DataType::BigInt),
                ],
                vec![0],
            ),
            &[],
        )
        .unwrap();
    let rows: Vec<Row> = (0..ACCTS)
        .map(|i| vec![Value::Int(i), Value::Int(100)])
        .collect();
    db.bulk_load(&acct, rows).unwrap();

    // A writer that never stops: sum-preserving transfers on `acct`.
    let stop_writer = Arc::new(AtomicBool::new(false));
    let commits = Arc::new(AtomicU64::new(0));
    let writer = {
        let db = db.clone();
        let stop = stop_writer.clone();
        let commits = commits.clone();
        std::thread::spawn(move || {
            let mut k = 0i64;
            while !stop.load(Ordering::SeqCst) {
                let trx = db.begin();
                let (i, j) = (k % ACCTS, (k * 7 + 3) % ACCTS);
                if i != j {
                    let get = |id: i64| {
                        db.lookup_row(&acct, &db.read_view(trx), &[Value::Int(id)])
                            .unwrap()
                            .unwrap()[1]
                            .as_int()
                            .unwrap()
                    };
                    let (bi, bj) = (get(i), get(j));
                    db.update_row(&acct, trx, &vec![Value::Int(i), Value::Int(bi - 1)])
                        .unwrap();
                    db.update_row(&acct, trx, &vec![Value::Int(j), Value::Int(bj + 1)])
                        .unwrap();
                }
                db.commit(trx);
                commits.fetch_add(1, Ordering::Relaxed);
                k += 1;
                // A steady, not saturating, write load.
                std::thread::sleep(Duration::from_micros(500));
            }
        })
    };

    println!(
        "{:>9} {:>7} {:>12} {:>12} {:>11} {:>12}",
        "replicas", "nodes", "queries", "agg q/s", "speedup", "max lag lsn"
    );
    let mut json_rows: Vec<String> = Vec::new();
    let mut baseline_qps = 0.0f64;
    for &n_replicas in &REPLICAS {
        let replicas: Vec<Arc<Replica>> = (0..n_replicas).map(|_| Replica::attach(&db)).collect();
        for r in &replicas {
            r.wait_caught_up(Duration::from_secs(60)).expect("catch up");
        }
        // One reader thread per node (master + replicas), all warmed once.
        let nodes: Vec<Arc<TaurusDb>> = std::iter::once(db.clone())
            .chain(replicas.iter().map(|r| r.db().clone()))
            .collect();
        for node in &nodes {
            run_mix(node);
        }
        let stop = Arc::new(AtomicBool::new(false));
        let t0 = Instant::now();
        let handles: Vec<_> = nodes
            .iter()
            .map(|node| {
                let node = node.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut done = 0u64;
                    while !stop.load(Ordering::SeqCst) {
                        run_mix(&node);
                        done += 1;
                    }
                    done
                })
            })
            .collect();
        std::thread::sleep(MEASURE);
        stop.store(true, Ordering::SeqCst);
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let elapsed = t0.elapsed().as_secs_f64();
        let qps = total as f64 / elapsed;
        if n_replicas == 0 {
            baseline_qps = qps;
        }
        let max_lag = replicas.iter().map(|r| r.lag()).max().unwrap_or(0);
        // Replica snapshots stayed transaction-consistent under the write
        // load (throughput built on torn reads would be meaningless).
        for r in &replicas {
            let sum = Session::new(r.db())
                .query("acct")
                .unwrap()
                .agg(Agg::sum("bal"))
                .collect_rows()
                .unwrap()[0][0]
                .as_int()
                .unwrap();
            assert_eq!(sum, ACCTS * 100, "torn replica snapshot");
        }
        let speedup = if baseline_qps > 0.0 {
            qps / baseline_qps
        } else {
            1.0
        };
        println!(
            "{n_replicas:>9} {:>7} {total:>12} {qps:>12.2} {speedup:>10.2}x {max_lag:>12}",
            nodes.len()
        );
        json_rows.push(format!(
            "    {{\"replicas\": {n_replicas}, \"nodes\": {}, \"queries_completed\": {total}, \
             \"aggregate_qps\": {qps:.2}, \"speedup_vs_master_only\": {speedup:.2}, \
             \"max_replica_lag_lsn\": {max_lag}}}",
            nodes.len()
        ));
        for r in replicas {
            r.detach();
        }
    }
    stop_writer.store(true, Ordering::SeqCst);
    writer.join().unwrap();

    println!();
    println!("--- BENCH_replica_scaleout.json ---");
    println!("{{");
    println!("  \"bench\": \"ablation_replica_scaleout\",");
    println!(
        "  \"workload\": \"TPC-H lineitem SF {SF} (seed {SEED}), NDP on, per-node Q6-style \
         selective scan + pushed aggregate, {}s measure window, concurrent sum-preserving \
         transfer writer (~2k commits/s target) on a 64-row side table, per-node 250 MB/s \
         wire + 100 us latency\",",
        MEASURE.as_secs()
    );
    println!("  \"results\": [");
    println!("{}", json_rows.join(",\n"));
    println!("  ]");
    println!("}}");
}
