//! §IV-C4 ablation — batch-read size (`innodb_ndp_max_pages_look_ahead`):
//! run-time and request count vs look-ahead. Large batches amortize
//! requests and engage more Page Stores in parallel (the paper's
//! "typically around a thousand pages").

use taurus_bench::*;

fn main() {
    header("Ablation: NDP batch size (innodb_ndp_max_pages_look_ahead, §IV-C4)");
    println!(
        "{:>10} {:>12} {:>12} {:>14}",
        "look-ahead", "wall (ms)", "requests", "bytes (KB)"
    );
    for look_ahead in [4usize, 16, 64, 256, 1024] {
        let mut cfg = bench_config(true);
        cfg.ndp.max_pages_look_ahead = look_ahead;
        let db = setup(0.02, cfg);
        let q6 = &taurus_tpch::micro_queries()[4];
        measure(&db, q6, None); // warm tree internals
        let before = db.metrics().snapshot();
        let m = measure(&db, q6, None);
        let d = db.metrics().snapshot().since(&before);
        println!(
            "{:>10} {:>12.1} {:>12} {:>14}",
            look_ahead,
            ms(m.wall),
            d.net_read_requests,
            d.net_bytes_from_storage / 1024
        );
    }
}
