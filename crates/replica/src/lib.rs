//! Read-replica compute nodes (§II).
//!
//! Log Stores are dual-purpose in Taurus: they durably ack the master's
//! redo *and* "serve log records to read replicas". A [`Replica`] is a
//! full compute node attached to an existing cluster's storage services —
//! **no page data is copied**: it reads the same Page Stores the master
//! writes through, at a *replica-consistent LSN*, and learns everything
//! else (catalog, tree shapes, undo images, transaction boundaries) by
//! tailing the shared log.
//!
//! ## The tailer
//!
//! A background thread polls [`LogStore::read_from_lsn`] from its apply
//! cursor, failing over across the three Log Stores, decodes each redo
//! batch and applies records in strict LSN order:
//!
//! * **page redo** — applied to pages cached in the replica's own buffer
//!   pool (stamping the record LSN), so the cache tracks the newest
//!   applied state; uncached pages are skipped (a later pinned read
//!   fetches the right version from a Page Store chain).
//! * **`SysUndo`** — pushed into the replica's own undo log. The master
//!   writes these *ahead* of the tree redo they protect, so any write the
//!   replica has applied already has its undo — that is what makes
//!   replica-side MVCC reconstruction exact.
//! * **`SysCatalog` / `SysShape`** — catalog and tree-shape changes,
//!   installed immediately (their pages are already covered by the pin).
//! * **`SysTrxEnd` / `SysLoaded`** — *transaction-consistent boundaries*:
//!   the visible LSN advances **only here**, together with the boundary
//!   read view (committed writers visible; in-flight writers active ⇒
//!   invisible; aborted writers are fully compensated before their end
//!   marker, so they end like any other transaction).
//!
//! The tailer keeps two cursors on the engine's `ReplicaState`: the
//! **applied** cursor (the read pin — advanced per *log batch*, so one
//! tree operation's multi-record redo is atomic under the pin; a
//! half-applied split or delete-mark+trx-stamp pair is unobservable)
//! and the **visible** LSN (advanced per boundary, together with the
//! view).
//!
//! ## Why queries see a consistent snapshot
//!
//! A replica session pins every page read at the applied cursor `P`
//! (buffer pool pages serve only when their last-applied LSN ≤ `P`;
//! everything else is a versioned Page Store read — see
//! `SpaceStore::cached_for_read`), so the *structure* it walks is
//! consistent at `P`. Record-level visibility uses the boundary read
//! view at `V ≤ P`: writers without a replicated commit ≤ `V` are
//! invisible, and their on-page effects — committed-after-`V` or still
//! in flight — are reconstructed around via the replicated undo, which
//! is always present for anything applied (write-ahead) — exactly the
//! master's ambiguity handling, including inside NDP pages (the
//! descriptor's low watermark is the boundary view's). Together: every
//! result equals what a master snapshot at boundary `V` would return,
//! even while the master keeps writing.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use taurus_bufferpool::BufferPool;
use taurus_common::{Error, Lsn, Metrics, PageRef, Result, TrxId};
use taurus_ndp::replication::{CatalogPayload, LoadedPayload};
use taurus_ndp::TaurusDb;
use taurus_page::Page;
use taurus_pagestore::{RedoBody, RedoRecord};
use taurus_sal::Sal;

/// A read replica: the replica engine plus its log tailer.
///
/// Create with [`Replica::attach`], query through `Session::new(r.db())`
/// — the whole `Session`/`QueryBuilder` facade works unchanged, NDP scans
/// included. Dropping (or [`Replica::detach`]) stops the tailer and marks
/// the engine detached; queries then fail until re-attachment.
pub struct Replica {
    db: Arc<TaurusDb>,
    stop: Arc<AtomicBool>,
    tailer: Mutex<Option<JoinHandle<()>>>,
    last_error: Arc<Mutex<Option<String>>>,
}

impl Replica {
    /// Attach a replica to a master's cluster (shares its Page Stores,
    /// Log Stores and placements through a read-only SAL attachment).
    pub fn attach(master: &Arc<TaurusDb>) -> Arc<Replica> {
        Self::attach_to_sal(master.sal())
    }

    /// Attach directly to storage services (any SAL of the cluster).
    pub fn attach_to_sal(sal: &Arc<Sal>) -> Arc<Replica> {
        let db = TaurusDb::attach_replica(sal);
        let stop = Arc::new(AtomicBool::new(false));
        let last_error = Arc::new(Mutex::new(None));
        let mut tailer = Tailer::new(db.clone());
        let handle = {
            let stop = stop.clone();
            let last_error = last_error.clone();
            std::thread::Builder::new()
                .name("taurus-replica-tailer".into())
                .spawn(move || {
                    // A dead tailer must never leave a replica silently
                    // serving ever-staler data: panics (corrupt page
                    // application) detach just like apply errors do.
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        tailer.run(&stop)
                    }))
                    .unwrap_or_else(|panic| {
                        let msg = panic
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| panic.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".into());
                        Err(Error::Internal(format!("tailer panicked: {msg}")))
                    });
                    if let Err(e) = result {
                        *last_error.lock() = Some(e.to_string());
                        if let Some(rs) = tailer.db.replica_state() {
                            rs.detach();
                        }
                    }
                })
                .expect("spawn replica tailer")
        };
        Arc::new(Replica {
            db,
            stop,
            tailer: Mutex::new(Some(handle)),
            last_error,
        })
    }

    /// The replica engine: pass to `Session::new` / `run_query` like any
    /// database handle.
    pub fn db(&self) -> &Arc<TaurusDb> {
        &self.db
    }

    /// Newest transaction-consistent LSN this replica serves.
    pub fn visible_lsn(&self) -> Lsn {
        self.db.visible_lsn()
    }

    /// Master LSN minus visible LSN.
    pub fn lag(&self) -> u64 {
        self.db.replica_lag()
    }

    /// The tailer's terminal error, if it died (corrupt log etc.).
    pub fn last_error(&self) -> Option<String> {
        self.last_error.lock().clone()
    }

    /// Block until the tailer's applied cursor reaches `lsn` — at which
    /// point any boundary at or below it has been published too (the
    /// cursor advances only after a record, boundary publication
    /// included, is fully applied). Waiting on the applied cursor rather
    /// than the visible LSN means a log whose tail is not a boundary
    /// record (e.g. bare DDL) still satisfies the wait. Errors on
    /// timeout or a dead tailer.
    pub fn wait_for_lsn(&self, lsn: Lsn, timeout: Duration) -> Result<()> {
        let rs = self
            .db
            .replica_state()
            .expect("Replica wraps a replica engine")
            .clone();
        let t0 = Instant::now();
        loop {
            // Seqlock read: the cursor check only counts when no boundary
            // publication was in flight around it — otherwise the pin may
            // cover a boundary whose view has not been swapped in yet.
            let e1 = rs.publish_epoch();
            if e1.is_multiple_of(2) && rs.read_pin() >= lsn && rs.publish_epoch() == e1 {
                return Ok(());
            }
            if let Some(e) = self.last_error() {
                return Err(Error::InvalidState(format!("replica tailer died: {e}")));
            }
            if t0.elapsed() > timeout {
                return Err(Error::InvalidState(format!(
                    "replica did not reach lsn {lsn} within {timeout:?} (applied {}, visible {})",
                    rs.read_pin(),
                    self.db.visible_lsn()
                )));
            }
            std::thread::yield_now();
        }
    }

    /// Block until the replica has caught up with the master LSN *as of
    /// this call* (the caller quiesced writes at a commit boundary).
    pub fn wait_caught_up(&self, timeout: Duration) -> Result<()> {
        self.wait_for_lsn(self.db.sal().current_lsn(), timeout)
    }

    /// Stop the tailer and mark the engine detached: subsequent queries
    /// fail with the detached error until a new replica is attached.
    pub fn detach(&self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.tailer.lock().take() {
            let _ = h.join();
        }
        if let Some(rs) = self.db.replica_state() {
            rs.detach();
        }
    }
}

impl Drop for Replica {
    fn drop(&mut self) {
        self.detach();
    }
}

/// Upper bound on one uninterruptible tailer sleep (keeps `detach`
/// responsive under long configured poll intervals).
const SLEEP_SLICE: Duration = Duration::from_millis(1);

/// How long [`Tailer::wait_distributed`] spins for a logged record's
/// Page Store distribution before declaring the cluster broken.
const DISTRIBUTION_DEADLINE: Duration = Duration::from_secs(5);

/// The boundary read view carried by a commit watermark / load record:
/// the master's own view ingredients, not an inference — a transaction
/// that begins before a boundary but first writes after it is listed
/// active by the master (its id may be *below* any id the replica has
/// seen write, so no inference from replicated undo could catch it).
fn boundary_view(active: &[TrxId], low_limit: TrxId) -> taurus_mvcc::ReadView {
    let up_limit = active.first().copied().unwrap_or(low_limit);
    taurus_mvcc::ReadView {
        low_limit,
        up_limit,
        active: active.to_vec(),
        creator: 0,
    }
}

/// The log-tailing applier; all state is thread-local to the tailer
/// thread, published through the engine's `ReplicaState`. Boundary read
/// views are not inferred — every boundary record carries the master's
/// own view ingredients (active ids + id cursor), so replica views are
/// exact master views.
struct Tailer {
    db: Arc<TaurusDb>,
    metrics: Arc<Metrics>,
    /// Next LSN to apply (everything below is applied).
    next_lsn: Lsn,
    /// Round-robin cursor over the Log Stores (failover: an empty or
    /// gapped read rotates to the next store).
    ls_cursor: usize,
}

impl Tailer {
    fn new(db: Arc<TaurusDb>) -> Tailer {
        let metrics = db.metrics().clone();
        Tailer {
            db,
            metrics,
            next_lsn: 1,
            ls_cursor: 0,
        }
    }

    fn run(&mut self, stop: &AtomicBool) -> Result<()> {
        let poll = Duration::from_micros(self.db.config().replica.poll_interval_us.max(1));
        let per_poll = self.db.config().replica.batches_per_poll.max(1);
        while !stop.load(Ordering::SeqCst) {
            let applied = self.poll_once(per_poll, stop)?;
            let master = self.db.sal().current_lsn();
            self.metrics
                .set(|m| &m.replica_lag_lsn, self.db.replica_lag());
            if applied == 0 {
                // Nothing new on any Log Store. If records we have not
                // applied exist (mid-append race, or we are waiting out a
                // gap), this sleep is a genuine catch-up stall. Sleep in
                // slices so `detach` never waits out a long poll interval.
                let behind = master >= self.next_lsn;
                let t0 = Instant::now();
                while t0.elapsed() < poll && !stop.load(Ordering::SeqCst) {
                    std::thread::sleep(poll.saturating_sub(t0.elapsed()).min(SLEEP_SLICE));
                }
                if behind {
                    self.metrics.add(
                        |m| &m.replica_catchup_stall_ns,
                        t0.elapsed().as_nanos() as u64,
                    );
                }
            }
        }
        Ok(())
    }

    /// One tailer pass: pull a contiguous run of batches from a Log Store
    /// (rotating on empty/gapped reads) and apply it. Returns the number
    /// of records applied.
    fn poll_once(&mut self, per_poll: usize, stop: &AtomicBool) -> Result<usize> {
        let stores = self.db.sal().log_stores().to_vec();
        let mut applied = 0usize;
        for attempt in 0..stores.len() {
            let ls = &stores[(self.ls_cursor + attempt) % stores.len()];
            let batches = ls.read_from_lsn(self.next_lsn, per_poll);
            let mut progressed = false;
            for (first_lsn, data) in batches {
                if first_lsn > self.next_lsn {
                    // Gap: an earlier-LSN append is still in flight on
                    // this store; stop here and retry next pass.
                    break;
                }
                self.metrics
                    .add(|m| &m.replica_apply_bytes, data.len() as u64);
                for r in RedoRecord::decode_batch(&data)? {
                    if r.lsn < self.next_lsn {
                        continue; // already applied (batch overlap on resume)
                    }
                    if !r.body.is_system() && !self.wait_distributed(&r, stop)? {
                        // Detaching mid-wait: bail before the record is
                        // applied or the cursor advances.
                        return Ok(applied);
                    }
                    self.apply(&r)?;
                    self.next_lsn = r.lsn + 1;
                    applied += 1;
                }
                // The read pin advances at **batch** granularity, never
                // mid-batch: one log batch is one tree operation (one
                // `write_log`), so a multi-record split is atomic under
                // the pin — no reader can observe a half-applied
                // structure change. (Write-ahead undo still precedes its
                // tree write because it travels in an *earlier* batch.)
                if let Some(rs) = self.db.replica_state() {
                    rs.advance_applied(self.next_lsn - 1);
                }
                progressed = true;
            }
            if progressed {
                self.ls_cursor = (self.ls_cursor + attempt) % stores.len();
                break;
            }
        }
        Ok(applied)
    }

    fn apply(&mut self, r: &RedoRecord) -> Result<()> {
        match &r.body {
            RedoBody::SysCatalog(p) => {
                let payload = CatalogPayload::decode(p)?;
                self.db.install_replicated_table(&payload)?;
            }
            RedoBody::SysLoaded(p) => {
                // Bulk-load completion is a boundary: pin first (shapes
                // about to be published must be readable at whatever pin
                // a reader loads after seeing them), then shapes + stats,
                // then the view.
                let payload = LoadedPayload::decode(p)?;
                let view = boundary_view(&payload.active, payload.low_limit);
                self.publish_boundary(r.lsn, view, |db| db.apply_replicated_load(&payload))?;
            }
            RedoBody::SysUndo { key, writer, prev } => {
                self.db.undo.push(r.space, key, *writer, prev.clone());
            }
            RedoBody::SysTrxEnd {
                trx,
                aborted,
                active,
                low_limit,
            } => {
                if *aborted {
                    // The compensation records preceding this marker
                    // restored every page the writer touched (its id no
                    // longer appears anywhere), so its undo is dead
                    // weight — discard it and treat the writer like any
                    // other ended transaction.
                    let _ = self.db.undo.take_for_rollback(*trx);
                }
                let view = boundary_view(active, *low_limit);
                self.publish_boundary(r.lsn, view, |_| Ok(()))?;
            }
            RedoBody::SysShape {
                root,
                height,
                n_leaves,
            } => {
                // Applied immediately, like the split redo it trails:
                // the read pin is the applied cursor, so the new root's
                // pages are already readable, and waiting for a boundary
                // would leave descents on a root page the split just
                // rewrote as its left half. LSN-inverted shape records
                // from racing master splitters are resolved by the
                // monotone leaf-count guard in `apply_replicated_shape`.
                self.db
                    .apply_replicated_shape(r.space, *root, *height, *n_leaves)?;
            }
            _ => self.apply_page_redo(r),
        }
        Ok(())
    }

    /// The master appends to Log Stores *before* distributing to Page
    /// Stores, so a record can be durable (and tailed) microseconds
    /// before its slice replicas have applied it. The read pin must not
    /// cover such a record — a pinned Page Store read would silently
    /// serve the pre-record version — so wait until every replica of the
    /// record's slice reports `applied_lsn >= r.lsn`. Per-slice apply
    /// order is guaranteed by the master's per-space structure latch, so
    /// `applied_lsn >= r.lsn` implies this record (and everything before
    /// it on the slice) is in. Distribution is synchronous inside the
    /// master's `write_log`, so the wait is bounded by that call.
    /// Returns `Ok(false)` when `stop` was raised mid-wait (detach must
    /// never hang on a record the master failed to distribute), and errs
    /// — detaching the replica — if distribution does not complete
    /// within [`DISTRIBUTION_DEADLINE`] (a broken cluster, e.g. the
    /// master's distribution loop died mid-`write_log`).
    fn wait_distributed(&self, r: &RedoRecord, stop: &AtomicBool) -> Result<bool> {
        let sal = self.db.sal();
        let slice = r.slice(self.db.config().slice_pages);
        let Some(replicas) = sal.replicas_of(slice) else {
            return Ok(true); // placement precedes any logged record
        };
        let stores = sal.page_stores();
        let t0 = Instant::now();
        while !replicas
            .iter()
            .all(|&ps| stores[ps].applied_lsn(slice) >= r.lsn)
        {
            if stop.load(Ordering::SeqCst) {
                return Ok(false);
            }
            if t0.elapsed() > DISTRIBUTION_DEADLINE {
                return Err(Error::Internal(format!(
                    "record {} for slice {slice:?} was logged but never \
                     distributed to its Page Store replicas",
                    r.lsn
                )));
            }
            std::thread::yield_now();
        }
        Ok(true)
    }

    /// A transaction-consistent boundary at `lsn`: make sure the read pin
    /// covers it, install whatever `extra` state the boundary carries
    /// (load shapes/statistics), then publish the boundary read view.
    fn publish_boundary(
        &mut self,
        lsn: Lsn,
        view: taurus_mvcc::ReadView,
        extra: impl FnOnce(&TaurusDb) -> Result<()>,
    ) -> Result<()> {
        let rs = self
            .db
            .replica_state()
            .expect("tailer runs on a replica engine")
            .clone();
        // Epoch odd across the whole publication, so "applied covers the
        // boundary" can never be observed with the pre-boundary view
        // still installed (`Replica::wait_for_lsn` relies on this).
        rs.begin_publish();
        rs.advance_applied(lsn);
        extra(&self.db)?;
        rs.publish(lsn, view);
        self.metrics.set(|m| &m.replica_visible_lsn, lsn);
        Ok(())
    }

    /// Apply one page-redo record to the replica's buffer pool: cached
    /// pages advance to the newest applied state (stamped with the record
    /// LSN — the version-pin check depends on it), uncached pages are left
    /// to the pinned read path. `NewPage` images always install: the
    /// master's bulk-load flood warms the replica cache for free.
    fn apply_page_redo(&self, r: &RedoRecord) {
        let bp: &Arc<BufferPool> = self.db.buffer_pool();
        let pref = PageRef::new(r.space, r.page_no);
        match &r.body {
            RedoBody::NewPage(img) => {
                if let Ok(mut p) = Page::from_bytes(img.clone()) {
                    p.set_lsn(r.lsn);
                    bp.insert(pref, Arc::new(p));
                }
            }
            RedoBody::FreePage => bp.remove(pref),
            body => {
                bp.update(pref, |pg| {
                    match body {
                        RedoBody::InsertRecord { slot_idx, rec } => {
                            pg.insert_at_slot(*slot_idx as usize, rec)
                                .expect("replica bp mirror insert");
                        }
                        RedoBody::SetDeleteMark { rec_at, mark } => {
                            taurus_page::record::set_delete_mark(
                                pg.raw_mut(),
                                *rec_at as usize,
                                *mark,
                            );
                        }
                        RedoBody::WriteBytes { at, bytes } => {
                            let at = *at as usize;
                            pg.raw_mut()[at..at + bytes.len()].copy_from_slice(bytes);
                        }
                        RedoBody::SetNext(n) => pg.set_next(*n),
                        RedoBody::SetPrev(n) => pg.set_prev(*n),
                        _ => unreachable!("NewPage/FreePage/system handled by caller"),
                    }
                    pg.set_lsn(r.lsn);
                });
            }
        }
    }
}
