//! Table schemas, index definitions, and memcomparable key encoding.
//!
//! B+ tree node-pointer records and scan range bounds carry *encoded keys*:
//! byte strings whose lexicographic order equals the SQL order of the key
//! tuples. That lets the tree, the batch-read boundary checks (§IV-C4
//! "batch reads are aware of scan boundaries"), and the undo map all compare
//! keys with plain `memcmp`.

use std::cmp::Ordering;
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::ids::{IndexId, SpaceId};
use crate::value::{DataType, Value};

/// A materialized row.
pub type Row = Vec<Value>;

#[derive(Clone, Debug, PartialEq)]
pub struct Column {
    pub name: String,
    pub dtype: DataType,
    pub nullable: bool,
}

impl Column {
    pub fn new(name: &str, dtype: DataType) -> Self {
        Column {
            name: name.to_string(),
            dtype,
            nullable: false,
        }
    }

    pub fn nullable(name: &str, dtype: DataType) -> Self {
        Column {
            name: name.to_string(),
            dtype,
            nullable: true,
        }
    }
}

/// Logical table definition: columns plus the primary-key column positions.
#[derive(Clone, Debug)]
pub struct TableSchema {
    pub name: String,
    pub columns: Vec<Column>,
    /// Positions (into `columns`) of the primary key, in key order.
    pub pk: Vec<usize>,
}

impl TableSchema {
    pub fn new(name: &str, columns: Vec<Column>, pk: Vec<usize>) -> Arc<Self> {
        assert!(!pk.is_empty(), "table {name} needs a primary key");
        for &c in &pk {
            assert!(c < columns.len(), "pk column {c} out of range");
        }
        Arc::new(TableSchema {
            name: name.to_string(),
            columns,
            pk,
        })
    }

    pub fn col_index(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| Error::NotFound(format!("column {name} in {}", self.name)))
    }

    pub fn dtypes(&self) -> Vec<DataType> {
        self.columns.iter().map(|c| c.dtype).collect()
    }

    /// Estimated full-row width in bytes — the denominator of the
    /// optimizer's NDP-projection benefit calculation (§V-A).
    pub fn estimated_row_width(&self) -> usize {
        self.columns.iter().map(|c| c.dtype.estimated_width()).sum()
    }
}

/// One B+ tree. For the primary index the leaf records store the full row
/// and `key_cols == schema.pk`. For a secondary index the leaf records store
/// `key_cols ++ pk_cols` only (InnoDB-style non-covering secondaries).
#[derive(Clone, Debug)]
pub struct IndexDef {
    pub name: String,
    pub index_id: IndexId,
    pub space: SpaceId,
    pub table: Arc<TableSchema>,
    /// Positions into the *table* schema of the index key, in key order.
    pub key_cols: Vec<usize>,
    pub is_primary: bool,
}

impl IndexDef {
    /// The *effective* index key: for secondaries, the declared key columns
    /// extended with the primary key (InnoDB-style), which makes every
    /// index entry unique and makes B+ tree separators precise row
    /// boundaries (PQ partition splits rely on this).
    pub fn effective_key_cols(&self) -> Vec<usize> {
        if self.is_primary {
            return self.key_cols.clone();
        }
        let mut cols = self.key_cols.clone();
        for &p in &self.table.pk {
            if !cols.contains(&p) {
                cols.push(p);
            }
        }
        cols
    }

    /// Positions (into the table schema) of the columns stored in this
    /// index's leaf records, in leaf-record column order.
    pub fn stored_cols(&self) -> Vec<usize> {
        if self.is_primary {
            (0..self.table.columns.len()).collect()
        } else {
            self.effective_key_cols()
        }
    }

    /// Positions *within the leaf record* of the effective key columns.
    pub fn key_positions_in_record(&self) -> Vec<usize> {
        let stored = self.stored_cols();
        self.effective_key_cols()
            .iter()
            .map(|k| stored.iter().position(|s| s == k).unwrap())
            .collect()
    }

    pub fn key_dtypes(&self) -> Vec<DataType> {
        self.effective_key_cols()
            .iter()
            .map(|&c| self.table.columns[c].dtype)
            .collect()
    }
}

// --- memcomparable key encoding -------------------------------------------

const NULL_TAG: u8 = 0x00;
const NOTNULL_TAG: u8 = 0x01;

/// Append the memcomparable encoding of one key part.
pub fn encode_key_part(v: &Value, dtype: &DataType, out: &mut Vec<u8>) {
    if v.is_null() {
        out.push(NULL_TAG);
        return;
    }
    out.push(NOTNULL_TAG);
    match (dtype, v) {
        (DataType::Int | DataType::BigInt, Value::Int(x)) => {
            out.extend_from_slice(&((*x as u64) ^ (1 << 63)).to_be_bytes());
        }
        (DataType::Decimal { scale, .. }, _) => {
            let d = v.as_dec().expect("typed key").rescale(*scale);
            let raw = d.raw as i64;
            out.extend_from_slice(&((raw as u64) ^ (1 << 63)).to_be_bytes());
        }
        (DataType::Date, Value::Date(d)) => {
            out.extend_from_slice(&((d.0 as u32) ^ (1 << 31)).to_be_bytes());
        }
        (DataType::Char(_) | DataType::Varchar(_), Value::Str(s)) => {
            // PAD SPACE semantics: trailing spaces are not significant.
            for &b in s.trim_end_matches(' ').as_bytes() {
                if b == 0x00 {
                    out.extend_from_slice(&[0x00, 0xFF]);
                } else {
                    out.push(b);
                }
            }
            out.extend_from_slice(&[0x00, 0x00]);
        }
        (DataType::Double, Value::Double(x)) => {
            let bits = x.to_bits();
            let flipped = if bits & (1 << 63) != 0 {
                !bits
            } else {
                bits | (1 << 63)
            };
            out.extend_from_slice(&flipped.to_be_bytes());
        }
        (dt, v) => panic!("key encoding mismatch: {v:?} as {dt:?}"),
    }
}

/// Encode a full (or prefix) key tuple.
pub fn encode_key(values: &[Value], dtypes: &[DataType]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 9);
    for (v, dt) in values.iter().zip(dtypes) {
        encode_key_part(v, dt, &mut out);
    }
    out
}

/// Comparator for encoded keys: plain byte order, which by construction
/// equals tuple order (NULLs first).
#[derive(Clone, Copy, Debug, Default)]
pub struct KeyComparator;

impl KeyComparator {
    pub fn cmp(a: &[u8], b: &[u8]) -> Ordering {
        a.cmp(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{Date32, Dec};

    fn k1(v: Value, dt: DataType) -> Vec<u8> {
        encode_key(&[v], &[dt])
    }

    #[test]
    fn int_keys_order_across_sign() {
        let vals = [-5i64, -1, 0, 1, 100, i64::MAX];
        let keys: Vec<_> = vals
            .iter()
            .map(|&v| k1(Value::Int(v), DataType::BigInt))
            .collect();
        for w in keys.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn decimal_and_date_keys_order() {
        let d1 = k1(
            Value::Decimal(Dec::parse("-3.50").unwrap()),
            DataType::Decimal {
                precision: 15,
                scale: 2,
            },
        );
        let d2 = k1(
            Value::Decimal(Dec::parse("3.49").unwrap()),
            DataType::Decimal {
                precision: 15,
                scale: 2,
            },
        );
        assert!(d1 < d2);
        let a = k1(
            Value::Date(Date32::parse("1994-01-01").unwrap()),
            DataType::Date,
        );
        let b = k1(
            Value::Date(Date32::parse("1994-01-02").unwrap()),
            DataType::Date,
        );
        assert!(a < b);
    }

    #[test]
    fn string_keys_prefix_order_and_escape() {
        let a = k1(Value::str("AIR"), DataType::Char(10));
        let b = k1(Value::str("AIR REG"), DataType::Char(10));
        let c = k1(Value::str("AIS"), DataType::Char(10));
        assert!(a < b && b < c);
        // Trailing spaces insignificant (CHAR padding).
        assert_eq!(k1(Value::str("AIR   "), DataType::Char(10)), a);
        // Embedded NUL must not break ordering against the terminator.
        let z1 = k1(Value::str("a\u{0}b"), DataType::Varchar(10));
        let z2 = k1(Value::str("a"), DataType::Varchar(10));
        assert!(z2 < z1);
    }

    #[test]
    fn null_orders_first() {
        let n = k1(Value::Null, DataType::Int);
        let z = k1(Value::Int(i64::from(i32::MIN)), DataType::Int);
        assert!(n < z);
    }

    #[test]
    fn composite_key_orders_lexicographically() {
        let dts = [DataType::Int, DataType::Date];
        let a = encode_key(
            &[
                Value::Int(1),
                Value::Date(Date32::parse("1998-01-01").unwrap()),
            ],
            &dts,
        );
        let b = encode_key(
            &[
                Value::Int(1),
                Value::Date(Date32::parse("1998-01-02").unwrap()),
            ],
            &dts,
        );
        let c = encode_key(
            &[
                Value::Int(2),
                Value::Date(Date32::parse("1990-01-01").unwrap()),
            ],
            &dts,
        );
        assert!(a < b && b < c);
        // A prefix encodes as a strict prefix -> ranges work.
        let p = encode_key(&[Value::Int(1)], &dts[..1]);
        assert!(a.starts_with(&p));
    }

    #[test]
    fn double_keys_order_including_negatives() {
        let vals = [-10.5, -0.0, 0.0, 0.25, 7e9];
        let keys: Vec<_> = vals
            .iter()
            .map(|&v| k1(Value::Double(v), DataType::Double))
            .collect();
        for w in keys.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn secondary_index_stored_cols_append_pk() {
        let schema = TableSchema::new(
            "t",
            vec![
                Column::new("a", DataType::Int),
                Column::new("b", DataType::Int),
                Column::new("c", DataType::Int),
            ],
            vec![0, 1],
        );
        let idx = IndexDef {
            name: "i_c".into(),
            index_id: IndexId(9),
            space: SpaceId(2),
            table: schema,
            key_cols: vec![2],
            is_primary: false,
        };
        assert_eq!(idx.stored_cols(), vec![2, 0, 1]);
        // The effective key extends the declared key with the PK, making
        // secondary entries unique.
        assert_eq!(idx.effective_key_cols(), vec![2, 0, 1]);
        assert_eq!(idx.key_positions_in_record(), vec![0, 1, 2]);
    }
}
