//! Column-major batches: the executor's vectorized interchange format.
//!
//! A [`ColumnBatch`] holds one typed vector per column — specialized
//! `i64`/`Dec`/`Date`/`f64` arrays plus a [`Value`] fallback — each with a
//! validity bitmap, and an optional **selection vector**: a sorted list of
//! physical row indices that survive the filters applied so far. Filters
//! shrink the selection instead of compacting the columns, so a pipeline
//! of Filter → Project → Limit touches the column payload zero times; only
//! a pipeline breaker (sort, aggregation, join build, the wire boundary)
//! pays the gather, via [`ColumnBatch::to_row_batch`].
//!
//! Selection-vector lifetime rules (also in DESIGN.md):
//!
//! 1. A batch under construction (`push_row`) has **no** selection; setting
//!    one freezes the physical rows (`push_row` after `set_selection` is a
//!    debug-assert violation).
//! 2. Selections only ever shrink: downstream operators intersect, never
//!    extend. Indices are sorted, unique and in-bounds — every mutation
//!    site re-checks this in debug builds.
//! 3. `to_row_batch` / `into_row_batch` resolve the selection (the gather)
//!    and drop it; the resulting [`RowBatch`] is dense.
//!
//! [`Batch`] is the row/column sum type operators exchange; the row-major
//! [`RowBatch`] remains the boundary format for the wire protocol and all
//! pipeline breakers.

use crate::batch::RowBatch;
use crate::value::{DataType, Date32, Dec, Value};

/// A fixed-length validity (or truth) bitmap: bit `i` set ⇔ row `i` valid.
/// Bits past `len` are always zero.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    pub fn new() -> Bitmap {
        Bitmap::default()
    }

    /// A bitmap of `len` bits, all set to `bit`.
    pub fn with_len(len: usize, bit: bool) -> Bitmap {
        let mut b = Bitmap {
            words: vec![if bit { !0u64 } else { 0 }; len.div_ceil(64)],
            len,
        };
        b.mask_tail();
        b
    }

    /// Zero any bits past `len` (kept as an invariant so word-level ops
    /// need no per-bit masking).
    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(w) = self.words.last_mut() {
                *w &= (1u64 << tail) - 1;
            }
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn push(&mut self, bit: bool) {
        let (word, off) = (self.len / 64, self.len % 64);
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1u64 << off;
        }
        self.len += 1;
    }

    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len, "bitmap index {i} out of {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    pub fn clear(&mut self) {
        self.words.clear();
        self.len = 0;
    }

    pub fn truncate(&mut self, n: usize) {
        if n >= self.len {
            return;
        }
        self.len = n;
        self.words.truncate(n.div_ceil(64));
        self.mask_tail();
    }

    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// One typed column vector with a validity bitmap. Rows that don't fit
/// the specialized representation (type drift, mixed decimal scales)
/// promote the whole column to `Generic` — correctness never depends on
/// the specialization.
#[derive(Clone, Debug)]
pub enum ColumnVec {
    Int64 {
        vals: Vec<i64>,
        valid: Bitmap,
    },
    Dec {
        raw: Vec<i128>,
        scale: u8,
        valid: Bitmap,
    },
    Date {
        vals: Vec<i32>,
        valid: Bitmap,
    },
    F64 {
        vals: Vec<f64>,
        valid: Bitmap,
    },
    Generic {
        vals: Vec<Value>,
        valid: Bitmap,
    },
}

impl ColumnVec {
    /// The specialized vector for a declared column type.
    pub fn for_dtype(dtype: &DataType, capacity: usize) -> ColumnVec {
        match dtype {
            DataType::Int | DataType::BigInt => ColumnVec::Int64 {
                vals: Vec::with_capacity(capacity),
                valid: Bitmap::new(),
            },
            DataType::Decimal { scale, .. } => ColumnVec::Dec {
                raw: Vec::with_capacity(capacity),
                scale: *scale,
                valid: Bitmap::new(),
            },
            DataType::Date => ColumnVec::Date {
                vals: Vec::with_capacity(capacity),
                valid: Bitmap::new(),
            },
            DataType::Double => ColumnVec::F64 {
                vals: Vec::with_capacity(capacity),
                valid: Bitmap::new(),
            },
            DataType::Char(_) | DataType::Varchar(_) => ColumnVec::generic(capacity),
        }
    }

    pub fn generic(capacity: usize) -> ColumnVec {
        ColumnVec::Generic {
            vals: Vec::with_capacity(capacity),
            valid: Bitmap::new(),
        }
    }

    pub fn len(&self) -> usize {
        match self {
            ColumnVec::Int64 { vals, .. } => vals.len(),
            ColumnVec::Dec { raw, .. } => raw.len(),
            ColumnVec::Date { vals, .. } => vals.len(),
            ColumnVec::F64 { vals, .. } => vals.len(),
            ColumnVec::Generic { vals, .. } => vals.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn valid(&self) -> &Bitmap {
        match self {
            ColumnVec::Int64 { valid, .. }
            | ColumnVec::Dec { valid, .. }
            | ColumnVec::Date { valid, .. }
            | ColumnVec::F64 { valid, .. }
            | ColumnVec::Generic { valid, .. } => valid,
        }
    }

    /// Append one value. A value the specialization cannot hold promotes
    /// the column to `Generic` first (all prior rows rebuilt), then
    /// appends — push never fails.
    pub fn push(&mut self, v: Value) {
        match self {
            ColumnVec::Int64 { vals, valid } => match v {
                Value::Int(x) => {
                    vals.push(x);
                    valid.push(true);
                }
                Value::Null => {
                    vals.push(0);
                    valid.push(false);
                }
                other => {
                    self.promote();
                    self.push(other);
                }
            },
            ColumnVec::Dec { raw, scale, valid } => match v {
                Value::Decimal(d) if d.scale == *scale => {
                    raw.push(d.raw);
                    valid.push(true);
                }
                Value::Null => {
                    raw.push(0);
                    valid.push(false);
                }
                other => {
                    self.promote();
                    self.push(other);
                }
            },
            ColumnVec::Date { vals, valid } => match v {
                Value::Date(d) => {
                    vals.push(d.0);
                    valid.push(true);
                }
                Value::Null => {
                    vals.push(0);
                    valid.push(false);
                }
                other => {
                    self.promote();
                    self.push(other);
                }
            },
            ColumnVec::F64 { vals, valid } => match v {
                Value::Double(x) => {
                    vals.push(x);
                    valid.push(true);
                }
                Value::Null => {
                    vals.push(0.0);
                    valid.push(false);
                }
                other => {
                    self.promote();
                    self.push(other);
                }
            },
            ColumnVec::Generic { vals, valid } => {
                valid.push(!v.is_null());
                vals.push(v);
            }
        }
    }

    /// Rebuild this column as `Generic` (type drift within a batch).
    fn promote(&mut self) {
        let n = self.len();
        let mut g = ColumnVec::generic(n.max(1));
        for i in 0..n {
            g.push(self.get(i));
        }
        *self = g;
    }

    /// The value at physical row `i` (clones out of the vector).
    pub fn get(&self, i: usize) -> Value {
        match self {
            ColumnVec::Int64 { vals, valid } => {
                if valid.get(i) {
                    Value::Int(vals[i])
                } else {
                    Value::Null
                }
            }
            ColumnVec::Dec { raw, scale, valid } => {
                if valid.get(i) {
                    Value::Decimal(Dec::new(raw[i], *scale))
                } else {
                    Value::Null
                }
            }
            ColumnVec::Date { vals, valid } => {
                if valid.get(i) {
                    Value::Date(Date32(vals[i]))
                } else {
                    Value::Null
                }
            }
            ColumnVec::F64 { vals, valid } => {
                if valid.get(i) {
                    Value::Double(vals[i])
                } else {
                    Value::Null
                }
            }
            ColumnVec::Generic { vals, .. } => vals[i].clone(),
        }
    }

    pub fn clear(&mut self) {
        match self {
            ColumnVec::Int64 { vals, valid } => {
                vals.clear();
                valid.clear();
            }
            ColumnVec::Dec { raw, valid, .. } => {
                raw.clear();
                valid.clear();
            }
            ColumnVec::Date { vals, valid } => {
                vals.clear();
                valid.clear();
            }
            ColumnVec::F64 { vals, valid } => {
                vals.clear();
                valid.clear();
            }
            ColumnVec::Generic { vals, valid } => {
                vals.clear();
                valid.clear();
            }
        }
    }

    fn truncate(&mut self, n: usize) {
        match self {
            ColumnVec::Int64 { vals, valid } => {
                vals.truncate(n);
                valid.truncate(n);
            }
            ColumnVec::Dec { raw, valid, .. } => {
                raw.truncate(n);
                valid.truncate(n);
            }
            ColumnVec::Date { vals, valid } => {
                vals.truncate(n);
                valid.truncate(n);
            }
            ColumnVec::F64 { vals, valid } => {
                vals.truncate(n);
                valid.truncate(n);
            }
            ColumnVec::Generic { vals, valid } => {
                vals.truncate(n);
                valid.truncate(n);
            }
        }
    }
}

/// A column-major batch with an optional selection vector. Mirrors the
/// [`RowBatch`] construction API (`with_capacity` / `push_row` / `is_full`
/// / `clear`) so scans can build either layout behind one interface.
#[derive(Clone, Debug)]
pub struct ColumnBatch {
    len: usize,
    capacity_rows: usize,
    cols: Vec<ColumnVec>,
    selection: Option<Vec<u32>>,
}

impl ColumnBatch {
    /// A batch with one specialized column per declared type.
    pub fn with_capacity(dtypes: &[DataType], capacity_rows: usize) -> ColumnBatch {
        let capacity_rows = capacity_rows.max(1);
        let prealloc = capacity_rows.min(crate::batch::DEFAULT_SCAN_BATCH_ROWS);
        ColumnBatch {
            len: 0,
            capacity_rows,
            cols: dtypes
                .iter()
                .map(|dt| ColumnVec::for_dtype(dt, prealloc))
                .collect(),
            selection: None,
        }
    }

    /// A batch of `width` generic columns (callers without declared types).
    pub fn generic_with_capacity(width: usize, capacity_rows: usize) -> ColumnBatch {
        let capacity_rows = capacity_rows.max(1);
        let prealloc = capacity_rows.min(crate::batch::DEFAULT_SCAN_BATCH_ROWS);
        ColumnBatch {
            len: 0,
            capacity_rows,
            cols: (0..width).map(|_| ColumnVec::generic(prealloc)).collect(),
            selection: None,
        }
    }

    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// Physical row count (ignores the selection).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Rows visible through the selection (== `len` when none is set).
    pub fn selected_len(&self) -> usize {
        match &self.selection {
            Some(s) => s.len(),
            None => self.len,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.selected_len() == 0
    }

    pub fn is_full(&self) -> bool {
        self.len >= self.capacity_rows
    }

    pub fn capacity_rows(&self) -> usize {
        self.capacity_rows
    }

    pub fn col(&self, i: usize) -> &ColumnVec {
        &self.cols[i]
    }

    /// Append one row across all columns. Only legal before a selection is
    /// set (rule 1 of the selection lifetime contract).
    pub fn push_row(&mut self, row: impl IntoIterator<Item = Value>) {
        debug_assert!(
            self.selection.is_none(),
            "push_row on a batch with a selection"
        );
        let mut n = 0usize;
        for (col, v) in self.cols.iter_mut().zip(row) {
            col.push(v);
            n += 1;
        }
        assert_eq!(n, self.cols.len(), "row width != batch width");
        self.len += 1;
        self.debug_check();
    }

    /// The value at (physical row, column).
    pub fn value_at(&self, col: usize, row: usize) -> Value {
        self.cols[col].get(row)
    }

    pub fn selection(&self) -> Option<&[u32]> {
        self.selection.as_deref()
    }

    /// Install (or replace) the selection. Indices must be sorted, unique
    /// and in-bounds; a replacement must be a subset in spirit (callers
    /// intersect) — debug builds verify the ordering invariants.
    pub fn set_selection(&mut self, sel: Vec<u32>) {
        self.selection = Some(sel);
        self.debug_check();
    }

    /// Physical row indices visible through the selection, in order.
    pub fn selected_rows(&self) -> impl Iterator<Item = usize> + '_ {
        let sel = self.selection.as_deref();
        (0..self.selected_len()).map(move |i| match sel {
            Some(s) => s[i] as usize,
            None => i,
        })
    }

    /// Keep only the first `n` *selected* rows (LIMIT). With a selection
    /// this trims the selection; without one it trims the columns.
    pub fn truncate_selected(&mut self, n: usize) {
        match &mut self.selection {
            Some(s) => s.truncate(n),
            None => {
                if n < self.len {
                    for c in &mut self.cols {
                        c.truncate(n);
                    }
                    self.len = n;
                }
            }
        }
        self.debug_check();
    }

    /// A batch of the columns in `keep` order (projection pass-through);
    /// shares nothing, preserves the selection.
    pub fn project_cols(&self, keep: &[usize]) -> ColumnBatch {
        let cb = ColumnBatch {
            len: self.len,
            capacity_rows: self.capacity_rows,
            cols: keep.iter().map(|&k| self.cols[k].clone()).collect(),
            selection: self.selection.clone(),
        };
        cb.debug_check();
        cb
    }

    /// Gather into a dense row-major batch, resolving the selection.
    pub fn to_row_batch(&self) -> RowBatch {
        let mut out = RowBatch::with_capacity(self.width(), self.selected_len().max(1));
        for r in self.selected_rows() {
            out.push_row(self.cols.iter().map(|c| c.get(r)));
        }
        out
    }

    pub fn into_row_batch(self) -> RowBatch {
        self.to_row_batch()
    }

    pub fn clear(&mut self) {
        for c in &mut self.cols {
            c.clear();
        }
        self.len = 0;
        self.selection = None;
    }

    /// Debug-build invariants, re-checked at every mutation site: each
    /// column (and its validity bitmap) is exactly `len` rows; selection
    /// indices are sorted, unique and in-bounds.
    #[inline]
    fn debug_check(&self) {
        #[cfg(debug_assertions)]
        {
            for (i, c) in self.cols.iter().enumerate() {
                debug_assert_eq!(c.len(), self.len, "column {i} length != batch len");
                debug_assert_eq!(
                    c.valid().len(),
                    self.len,
                    "column {i} validity bitmap != batch len"
                );
            }
            if let Some(sel) = &self.selection {
                for w in sel.windows(2) {
                    debug_assert!(w[0] < w[1], "selection not sorted/unique: {:?}", &w[..2]);
                }
                if let Some(&last) = sel.last() {
                    debug_assert!(
                        (last as usize) < self.len,
                        "selection index {last} out of {} rows",
                        self.len
                    );
                }
            }
        }
    }
}

/// The operator interchange sum type: row-major or column-major. Pipeline
/// breakers and the wire boundary call [`Batch::into_row_batch`]; pipeline
/// operators handle both arms.
#[derive(Clone, Debug)]
pub enum Batch {
    Row(RowBatch),
    Col(ColumnBatch),
}

impl Batch {
    pub fn width(&self) -> usize {
        match self {
            Batch::Row(b) => b.width(),
            Batch::Col(b) => b.width(),
        }
    }

    /// Rows a consumer will see (selection resolved).
    pub fn selected_len(&self) -> usize {
        match self {
            Batch::Row(b) => b.len(),
            Batch::Col(b) => b.selected_len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.selected_len() == 0
    }

    /// Resolve to dense row-major form (the breaker/boundary gather).
    pub fn into_row_batch(self) -> RowBatch {
        match self {
            Batch::Row(b) => b,
            Batch::Col(b) => b.into_row_batch(),
        }
    }

    /// Keep only the first `n` visible rows (LIMIT).
    pub fn truncate_selected(&mut self, n: usize) {
        match self {
            Batch::Row(b) => b.truncate_rows(n),
            Batch::Col(b) => b.truncate_selected(n),
        }
    }
}

impl From<RowBatch> for Batch {
    fn from(b: RowBatch) -> Batch {
        Batch::Row(b)
    }
}

impl From<ColumnBatch> for Batch {
    fn from(b: ColumnBatch) -> Batch {
        Batch::Col(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dtypes() -> Vec<DataType> {
        vec![
            DataType::BigInt,
            DataType::Decimal {
                precision: 15,
                scale: 2,
            },
            DataType::Date,
            DataType::Varchar(16),
            DataType::Double,
        ]
    }

    fn sample_row(i: i64) -> Vec<Value> {
        vec![
            Value::Int(i),
            Value::Decimal(Dec::new(i as i128 * 100, 2)),
            Value::Date(Date32(i as i32)),
            Value::str(format!("row-{i}")),
            Value::Double(i as f64 / 2.0),
        ]
    }

    #[test]
    fn bitmap_push_get_truncate() {
        let mut b = Bitmap::new();
        for i in 0..130 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), 130);
        for i in 0..130 {
            assert_eq!(b.get(i), i % 3 == 0, "bit {i}");
        }
        assert_eq!(b.count_ones(), (0..130).filter(|i| i % 3 == 0).count());
        b.truncate(65);
        assert_eq!(b.len(), 65);
        assert_eq!(b.count_ones(), (0..65).filter(|i| i % 3 == 0).count());
        // Tail bits past len are masked off so word ops need no clamping.
        assert_eq!(b.words().last().unwrap() >> 1, 0);
    }

    #[test]
    fn typed_columns_roundtrip_values() {
        let mut cb = ColumnBatch::with_capacity(&dtypes(), 8);
        for i in 0..5 {
            cb.push_row(sample_row(i));
        }
        cb.push_row(vec![Value::Null; 5]);
        assert_eq!(cb.len(), 6);
        for i in 0..5 {
            let want = sample_row(i as i64);
            for (c, w) in want.iter().enumerate() {
                assert_eq!(cb.value_at(c, i), *w, "({c},{i})");
            }
        }
        for c in 0..5 {
            assert_eq!(cb.value_at(c, 5), Value::Null);
            assert!(!cb.col(c).valid().get(5));
        }
    }

    #[test]
    fn type_drift_promotes_to_generic() {
        let mut col = ColumnVec::for_dtype(&DataType::BigInt, 4);
        col.push(Value::Int(1));
        col.push(Value::Null);
        col.push(Value::str("oops")); // drift: promotes, loses nothing
        assert!(matches!(col, ColumnVec::Generic { .. }));
        assert_eq!(col.get(0), Value::Int(1));
        assert_eq!(col.get(1), Value::Null);
        assert_eq!(col.get(2), Value::str("oops"));
        assert!(!col.valid().get(1));
    }

    #[test]
    fn mixed_decimal_scales_promote() {
        let mut col = ColumnVec::for_dtype(
            &DataType::Decimal {
                precision: 15,
                scale: 2,
            },
            4,
        );
        col.push(Value::Decimal(Dec::new(100, 2)));
        col.push(Value::Decimal(Dec::new(5, 4))); // different scale
        assert!(matches!(col, ColumnVec::Generic { .. }));
        assert_eq!(col.get(0), Value::Decimal(Dec::new(100, 2)));
        assert_eq!(col.get(1), Value::Decimal(Dec::new(5, 4)));
    }

    #[test]
    fn selection_gather_matches_dense_subset() {
        let mut cb = ColumnBatch::with_capacity(&dtypes(), 16);
        for i in 0..10 {
            cb.push_row(sample_row(i));
        }
        cb.set_selection(vec![1, 4, 9]);
        assert_eq!(cb.selected_len(), 3);
        assert_eq!(cb.len(), 10);
        let rb = cb.to_row_batch();
        assert_eq!(rb.len(), 3);
        assert_eq!(rb.row(0), sample_row(1).as_slice());
        assert_eq!(rb.row(1), sample_row(4).as_slice());
        assert_eq!(rb.row(2), sample_row(9).as_slice());
    }

    #[test]
    fn truncate_selected_trims_selection_then_columns() {
        let mut cb = ColumnBatch::with_capacity(&dtypes(), 16);
        for i in 0..6 {
            cb.push_row(sample_row(i));
        }
        let mut with_sel = cb.clone();
        with_sel.set_selection(vec![0, 2, 4, 5]);
        with_sel.truncate_selected(2);
        assert_eq!(with_sel.selected_len(), 2);
        assert_eq!(with_sel.len(), 6); // physical rows untouched
        cb.truncate_selected(3);
        assert_eq!(cb.len(), 3);
        assert_eq!(cb.col(0).valid().len(), 3);
    }

    #[test]
    fn project_cols_preserves_selection() {
        let mut cb = ColumnBatch::with_capacity(&dtypes(), 8);
        for i in 0..4 {
            cb.push_row(sample_row(i));
        }
        cb.set_selection(vec![1, 3]);
        let p = cb.project_cols(&[3, 0]);
        assert_eq!(p.width(), 2);
        assert_eq!(p.selection(), Some(&[1u32, 3][..]));
        let rb = p.to_row_batch();
        assert_eq!(rb.row(0), &[Value::str("row-1"), Value::Int(1)]);
        assert_eq!(rb.row(1), &[Value::str("row-3"), Value::Int(3)]);
    }

    #[test]
    fn batch_enum_boundary_contract() {
        let mut cb = ColumnBatch::generic_with_capacity(2, 4);
        cb.push_row(vec![Value::Int(1), Value::str("a")]);
        cb.push_row(vec![Value::Int(2), Value::str("b")]);
        cb.set_selection(vec![1]);
        let mut b: Batch = cb.into();
        assert_eq!(b.width(), 2);
        assert_eq!(b.selected_len(), 1);
        b.truncate_selected(1);
        let rb = b.into_row_batch();
        assert_eq!(rb.to_rows(), vec![vec![Value::Int(2), Value::str("b")]]);
    }

    // --- invariant-assert suite (each debug_assert driven once) -------------

    #[test]
    #[should_panic(expected = "row width != batch width")]
    fn push_row_wrong_width_asserts() {
        let mut cb = ColumnBatch::generic_with_capacity(3, 4);
        cb.push_row(vec![Value::Int(1)]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "push_row on a batch with a selection")]
    fn push_after_selection_asserts() {
        let mut cb = ColumnBatch::generic_with_capacity(1, 4);
        cb.push_row(vec![Value::Int(1)]);
        cb.set_selection(vec![0]);
        cb.push_row(vec![Value::Int(2)]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "selection not sorted/unique")]
    fn unsorted_selection_asserts() {
        let mut cb = ColumnBatch::generic_with_capacity(1, 4);
        cb.push_row(vec![Value::Int(1)]);
        cb.push_row(vec![Value::Int(2)]);
        cb.set_selection(vec![1, 0]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "selection not sorted/unique")]
    fn duplicate_selection_asserts() {
        let mut cb = ColumnBatch::generic_with_capacity(1, 4);
        cb.push_row(vec![Value::Int(1)]);
        cb.push_row(vec![Value::Int(2)]);
        cb.set_selection(vec![1, 1]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "out of")]
    fn out_of_bounds_selection_asserts() {
        let mut cb = ColumnBatch::generic_with_capacity(1, 4);
        cb.push_row(vec![Value::Int(1)]);
        cb.set_selection(vec![7]);
    }
}
