//! SQL values, data types, and their binary encodings.
//!
//! The set of types is exactly what TPC-H plus the paper's examples need:
//! integers, fixed-point decimals, dates, fixed/variable-length strings and
//! doubles. Decimals are the workhorse (`l_extendedprice * (1 - l_discount)`
//! style arithmetic) and are implemented as a scaled `i128` so partial
//! aggregation in Page Stores can never overflow what the compute node
//! would have produced — the paper's §V-B2 correctness requirement that
//! storage-side evaluation bit-match compute-side evaluation.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use crate::error::{Error, Result};

/// Column data type. Fixed-width types report `Some(width)` from
/// [`DataType::fixed_width`]; `Varchar` is the only variable-width type and
/// its byte length is stored in the record header (see `taurus-page`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DataType {
    /// 32-bit signed integer (stored as 4 bytes).
    Int,
    /// 64-bit signed integer (stored as 8 bytes).
    BigInt,
    /// Fixed-point decimal with the given scale, stored as a scaled i64.
    Decimal { precision: u8, scale: u8 },
    /// Days since 1970-01-01, stored as 4 bytes.
    Date,
    /// Fixed-length character string, space padded to `n` bytes.
    Char(u16),
    /// Variable-length string with maximum length `n`.
    Varchar(u16),
    /// IEEE-754 double.
    Double,
}

impl DataType {
    /// On-disk width for fixed-width types; `None` for `Varchar`.
    pub fn fixed_width(&self) -> Option<usize> {
        match self {
            DataType::Int => Some(4),
            DataType::BigInt => Some(8),
            DataType::Decimal { .. } => Some(8),
            DataType::Date => Some(4),
            DataType::Char(n) => Some(*n as usize),
            DataType::Varchar(_) => None,
            DataType::Double => Some(8),
        }
    }

    /// Average width used by the optimizer's projection-benefit estimate
    /// (§V-A: fixed widths from the dictionary, average width from stats
    /// for variable columns — we use half the declared max as the default
    /// prior before real stats are collected).
    pub fn estimated_width(&self) -> usize {
        match self {
            DataType::Varchar(n) => (*n as usize) / 2 + 1,
            other => other.fixed_width().unwrap(),
        }
    }

    pub fn is_numeric(&self) -> bool {
        matches!(
            self,
            DataType::Int | DataType::BigInt | DataType::Decimal { .. } | DataType::Double
        )
    }

    pub fn is_string(&self) -> bool {
        matches!(self, DataType::Char(_) | DataType::Varchar(_))
    }

    /// Compact tag used when serializing descriptors.
    pub fn tag(&self) -> u8 {
        match self {
            DataType::Int => 0,
            DataType::BigInt => 1,
            DataType::Decimal { .. } => 2,
            DataType::Date => 3,
            DataType::Char(_) => 4,
            DataType::Varchar(_) => 5,
            DataType::Double => 6,
        }
    }
}

/// Fixed-point decimal: `raw * 10^-scale`.
///
/// Arithmetic follows MySQL-ish rules: add/sub align to the larger scale,
/// multiply adds scales, divide extends the scale by 4. All intermediates
/// are i128 so TPC-H SUM() aggregates cannot overflow.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Dec {
    pub raw: i128,
    pub scale: u8,
}

const POW10: [i128; 31] = {
    let mut t = [1i128; 31];
    let mut i = 1;
    while i < 31 {
        t[i] = t[i - 1] * 10;
        i += 1;
    }
    t
};

impl Dec {
    pub fn new(raw: i128, scale: u8) -> Self {
        Dec { raw, scale }
    }

    pub fn from_int(v: i64) -> Self {
        Dec {
            raw: v as i128,
            scale: 0,
        }
    }

    /// Parse `-123.45` style literals.
    pub fn parse(s: &str) -> Result<Self> {
        let s = s.trim();
        let (neg, s) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s),
        };
        let (int_part, frac_part) = match s.split_once('.') {
            Some((i, f)) => (i, f),
            None => (s, ""),
        };
        if int_part.is_empty() && frac_part.is_empty() {
            return Err(Error::Parse(format!("bad decimal: {s:?}")));
        }
        let mut raw: i128 = 0;
        for c in int_part.chars().chain(frac_part.chars()) {
            let d = c
                .to_digit(10)
                .ok_or_else(|| Error::Parse(format!("bad decimal digit {c:?}")))?;
            raw = raw * 10 + d as i128;
        }
        if neg {
            raw = -raw;
        }
        Ok(Dec {
            raw,
            scale: frac_part.len() as u8,
        })
    }

    /// Rescale to `scale`, truncating toward zero if narrowing.
    pub fn rescale(self, scale: u8) -> Self {
        match scale.cmp(&self.scale) {
            Ordering::Equal => self,
            Ordering::Greater => Dec {
                raw: self.raw * POW10[(scale - self.scale) as usize],
                scale,
            },
            Ordering::Less => Dec {
                raw: self.raw / POW10[(self.scale - scale) as usize],
                scale,
            },
        }
    }

    fn align(a: Dec, b: Dec) -> (i128, i128, u8) {
        let scale = a.scale.max(b.scale);
        (a.rescale(scale).raw, b.rescale(scale).raw, scale)
    }

    pub fn add(self, o: Dec) -> Dec {
        let (a, b, s) = Dec::align(self, o);
        Dec {
            raw: a + b,
            scale: s,
        }
    }

    pub fn sub(self, o: Dec) -> Dec {
        let (a, b, s) = Dec::align(self, o);
        Dec {
            raw: a - b,
            scale: s,
        }
    }

    pub fn mul(self, o: Dec) -> Dec {
        Dec {
            raw: self.raw * o.raw,
            scale: self.scale + o.scale,
        }
    }

    /// Division extends the dividend scale by 4 digits (MySQL's
    /// `div_precision_increment` default).
    pub fn div(self, o: Dec) -> Result<Dec> {
        if o.raw == 0 {
            return Err(Error::Arithmetic("decimal division by zero".into()));
        }
        let target = self.scale + 4;
        let num = self.raw * POW10[(target - self.scale + o.scale) as usize];
        Ok(Dec {
            raw: num / o.raw,
            scale: target,
        })
    }

    pub fn neg(self) -> Dec {
        Dec {
            raw: -self.raw,
            scale: self.scale,
        }
    }

    /// Total order across scales, *without* the silent wrap `align` would
    /// risk: upscaling multiplies the raw value by up to 10^30, which can
    /// exceed `i128`. If the upscale of one side overflows, that side's
    /// magnitude provably exceeds any representable value of the other,
    /// so its sign decides the ordering. The vector kernels' deferral
    /// path and the scalar VM both land here, keeping the two evaluators
    /// bit-identical even on extreme operands.
    pub fn cmp_dec(self, o: Dec) -> Ordering {
        let scale = self.scale.max(o.scale);
        let up = |d: Dec| d.raw.checked_mul(POW10[(scale - d.scale) as usize]);
        match (up(self), up(o)) {
            (Some(a), Some(b)) => a.cmp(&b),
            // `self` overflowed: |self| > i128::MAX ≥ |b upscaled|.
            (None, _) => {
                if self.raw > 0 {
                    Ordering::Greater
                } else {
                    Ordering::Less
                }
            }
            (_, None) => {
                if o.raw > 0 {
                    Ordering::Less
                } else {
                    Ordering::Greater
                }
            }
        }
    }

    pub fn to_f64(self) -> f64 {
        self.raw as f64 / POW10[self.scale as usize] as f64
    }

    pub fn is_zero(self) -> bool {
        self.raw == 0
    }
}

impl fmt::Display for Dec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.scale == 0 {
            return write!(f, "{}", self.raw);
        }
        let p = POW10[self.scale as usize];
        let neg = self.raw < 0;
        let abs = self.raw.unsigned_abs();
        let int = abs / p.unsigned_abs();
        let frac = abs % p.unsigned_abs();
        if neg {
            write!(f, "-")?;
        }
        write!(f, "{}.{:0width$}", int, frac, width = self.scale as usize)
    }
}

/// Days since 1970-01-01 (can be negative).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Date32(pub i32);

impl Date32 {
    /// Howard Hinnant's `days_from_civil`.
    pub fn from_ymd(y: i32, m: u32, d: u32) -> Self {
        let y = if m <= 2 { y - 1 } else { y };
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = (y - era * 400) as i64;
        let mp = ((m as i64) + 9) % 12;
        let doy = (153 * mp + 2) / 5 + (d as i64) - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        Date32((era as i64 * 146_097 + doe - 719_468) as i32)
    }

    /// Howard Hinnant's `civil_from_days`.
    pub fn to_ymd(self) -> (i32, u32, u32) {
        let z = self.0 as i64 + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097;
        let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
        let mp = (5 * doy + 2) / 153;
        let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
        let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32;
        ((if m <= 2 { y + 1 } else { y }) as i32, m, d)
    }

    /// Parse `YYYY-MM-DD`.
    pub fn parse(s: &str) -> Result<Self> {
        let mut it = s.split('-');
        let bad = || Error::Parse(format!("bad date: {s:?}"));
        let y: i32 = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let m: u32 = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let d: u32 = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        if it.next().is_some() || !(1..=12).contains(&m) || !(1..=31).contains(&d) {
            return Err(bad());
        }
        Ok(Date32::from_ymd(y, m, d))
    }

    pub fn year(self) -> i32 {
        self.to_ymd().0
    }

    pub fn month(self) -> u32 {
        self.to_ymd().1
    }

    pub fn add_days(self, n: i32) -> Self {
        Date32(self.0 + n)
    }

    /// `DATE + INTERVAL n MONTH` with day clamping (MySQL semantics).
    pub fn add_months(self, n: i32) -> Self {
        let (y, m, d) = self.to_ymd();
        let total = y as i64 * 12 + (m as i64 - 1) + n as i64;
        let ny = (total.div_euclid(12)) as i32;
        let nm = (total.rem_euclid(12)) as u32 + 1;
        let max_d = days_in_month(ny, nm);
        Date32::from_ymd(ny, nm, d.min(max_d))
    }

    pub fn add_years(self, n: i32) -> Self {
        self.add_months(n * 12)
    }
}

fn days_in_month(y: i32, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if (y % 4 == 0 && y % 100 != 0) || y % 400 == 0 {
                29
            } else {
                28
            }
        }
        _ => unreachable!("bad month {m}"),
    }
}

impl fmt::Display for Date32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.to_ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

/// A runtime SQL value. `Null` participates in three-valued logic in the
/// expression layer; comparisons involving `Null` return `None`.
#[derive(Clone, PartialEq, Debug)]
pub enum Value {
    Null,
    Int(i64),
    Decimal(Dec),
    Date(Date32),
    Str(Arc<str>),
    Double(f64),
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Value {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Double(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::str(v)
    }
}

impl From<Date32> for Value {
    fn from(v: Date32) -> Value {
        Value::Date(v)
    }
}

impl From<Dec> for Value {
    fn from(v: Dec) -> Value {
        Value::Decimal(v)
    }
}

impl Value {
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(v) => Ok(*v),
            other => Err(Error::Type(format!("expected int, got {other:?}"))),
        }
    }

    pub fn as_dec(&self) -> Result<Dec> {
        match self {
            Value::Decimal(d) => Ok(*d),
            Value::Int(v) => Ok(Dec::from_int(*v)),
            other => Err(Error::Type(format!("expected decimal, got {other:?}"))),
        }
    }

    pub fn as_date(&self) -> Result<Date32> {
        match self {
            Value::Date(d) => Ok(*d),
            other => Err(Error::Type(format!("expected date, got {other:?}"))),
        }
    }

    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(Error::Type(format!("expected string, got {other:?}"))),
        }
    }

    pub fn as_f64(&self) -> Result<f64> {
        match self {
            Value::Double(v) => Ok(*v),
            Value::Int(v) => Ok(*v as f64),
            Value::Decimal(d) => Ok(d.to_f64()),
            other => Err(Error::Type(format!("expected double, got {other:?}"))),
        }
    }

    /// SQL comparison: `None` if either side is NULL or the types are
    /// incomparable. Numeric types cross-compare (int vs decimal vs double);
    /// strings compare ignoring `CHAR` trailing-space padding, matching
    /// MySQL's PAD SPACE collation behaviour.
    pub fn cmp_sql(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Decimal(a), Decimal(b)) => Some(a.cmp_dec(*b)),
            (Int(a), Decimal(b)) => Some(Dec::from_int(*a).cmp_dec(*b)),
            (Decimal(a), Int(b)) => Some(a.cmp_dec(Dec::from_int(*b))),
            (Date(a), Date(b)) => Some(a.cmp(b)),
            (Str(a), Str(b)) => Some(a.trim_end_matches(' ').cmp(b.trim_end_matches(' '))),
            (Double(a), Double(b)) => a.partial_cmp(b),
            (Double(a), Int(b)) => a.partial_cmp(&(*b as f64)),
            (Int(a), Double(b)) => (*a as f64).partial_cmp(b),
            (Double(a), Decimal(b)) => a.partial_cmp(&b.to_f64()),
            (Decimal(a), Double(b)) => a.to_f64().partial_cmp(b),
            _ => None,
        }
    }

    /// Total ordering for sort operators / group keys: NULL first, then by
    /// `cmp_sql`; incomparable pairs order by type tag (never expected for
    /// well-typed plans, but keeps sorting total).
    pub fn cmp_total(&self, other: &Value) -> Ordering {
        match (self.is_null(), other.is_null()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Less,
            (false, true) => Ordering::Greater,
            (false, false) => self
                .cmp_sql(other)
                .unwrap_or_else(|| self.type_tag().cmp(&other.type_tag())),
        }
    }

    fn type_tag(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) => 1,
            Value::Decimal(_) => 2,
            Value::Date(_) => 3,
            Value::Str(_) => 4,
            Value::Double(_) => 5,
        }
    }

    /// Encode into a record-column byte image for the given declared type.
    /// Fixed-width types produce exactly `fixed_width()` bytes; `Varchar`
    /// produces the raw bytes (its length lives in the record header).
    pub fn encode_column(&self, dtype: &DataType, out: &mut Vec<u8>) -> Result<()> {
        match (dtype, self) {
            (DataType::Int, Value::Int(v)) => {
                let v = i32::try_from(*v).map_err(|_| Error::Type(format!("int overflow: {v}")))?;
                out.extend_from_slice(&v.to_le_bytes());
            }
            (DataType::BigInt, Value::Int(v)) => out.extend_from_slice(&v.to_le_bytes()),
            (DataType::Decimal { scale, .. }, v) => {
                let d = v.as_dec()?.rescale(*scale);
                let raw = i64::try_from(d.raw)
                    .map_err(|_| Error::Type(format!("decimal overflow: {d}")))?;
                out.extend_from_slice(&raw.to_le_bytes());
            }
            (DataType::Date, Value::Date(d)) => out.extend_from_slice(&d.0.to_le_bytes()),
            (DataType::Char(n), Value::Str(s)) => {
                let n = *n as usize;
                let b = s.as_bytes();
                if b.len() > n {
                    return Err(Error::Type(format!("CHAR({n}) overflow: {s:?}")));
                }
                out.extend_from_slice(b);
                out.resize(out.len() + (n - b.len()), b' ');
            }
            (DataType::Varchar(n), Value::Str(s)) => {
                if s.len() > *n as usize {
                    return Err(Error::Type(format!("VARCHAR({n}) overflow")));
                }
                out.extend_from_slice(s.as_bytes());
            }
            (DataType::Double, v) => out.extend_from_slice(&v.as_f64()?.to_le_bytes()),
            (dt, v) => return Err(Error::Type(format!("cannot store {v:?} as {dt:?}"))),
        }
        Ok(())
    }

    /// Decode a column byte image produced by [`Value::encode_column`].
    pub fn decode_column(dtype: &DataType, bytes: &[u8]) -> Value {
        match dtype {
            DataType::Int => Value::Int(i32::from_le_bytes(bytes[..4].try_into().unwrap()) as i64),
            DataType::BigInt => Value::Int(i64::from_le_bytes(bytes[..8].try_into().unwrap())),
            DataType::Decimal { scale, .. } => Value::Decimal(Dec {
                raw: i64::from_le_bytes(bytes[..8].try_into().unwrap()) as i128,
                scale: *scale,
            }),
            DataType::Date => {
                Value::Date(Date32(i32::from_le_bytes(bytes[..4].try_into().unwrap())))
            }
            // CHAR columns strip their space padding on read (MySQL
            // semantics), so compute-node rows and storage-side byte slices
            // compare identically.
            DataType::Char(_) => Value::Str(Arc::from(
                std::str::from_utf8(bytes)
                    .unwrap_or("\u{fffd}")
                    .trim_end_matches(' '),
            )),
            DataType::Varchar(_) => {
                Value::Str(Arc::from(std::str::from_utf8(bytes).unwrap_or("\u{fffd}")))
            }
            DataType::Double => Value::Double(f64::from_le_bytes(bytes[..8].try_into().unwrap())),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Decimal(d) => write!(f, "{d}"),
            Value::Date(d) => write!(f, "{d}"),
            Value::Str(s) => write!(f, "{}", s.trim_end_matches(' ')),
            Value::Double(v) => write!(f, "{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decimal_parse_display_roundtrip() {
        for s in ["0.00", "123.45", "-7.07", "1000000.99", "42"] {
            let d = Dec::parse(s).unwrap();
            let back = Dec::parse(&d.to_string()).unwrap();
            assert_eq!(d.cmp_dec(back), Ordering::Equal, "{s}");
        }
        assert_eq!(Dec::parse("123.45").unwrap().raw, 12345);
        assert_eq!(Dec::parse("-0.05").unwrap().raw, -5);
        assert!(Dec::parse("").is_err());
        assert!(Dec::parse("1.2.3").is_err());
    }

    #[test]
    fn decimal_arithmetic_matches_hand_results() {
        let a = Dec::parse("10.50").unwrap();
        let b = Dec::parse("2.5").unwrap();
        assert_eq!(a.add(b).to_string(), "13.00");
        assert_eq!(a.sub(b).to_string(), "8.00");
        assert_eq!(a.mul(b).to_string(), "26.250");
        assert_eq!(a.div(b).unwrap().to_string(), "4.200000");
        // The TPC-H Q1 shape: price * (1 - disc) * (1 + tax).
        let price = Dec::parse("901.00").unwrap();
        let disc = Dec::parse("0.05").unwrap();
        let tax = Dec::parse("0.02").unwrap();
        let one = Dec::from_int(1);
        let v = price.mul(one.sub(disc)).mul(one.add(tax));
        assert_eq!(v.to_string(), "873.069000");
    }

    #[test]
    fn decimal_div_by_zero_is_error() {
        assert!(Dec::from_int(1).div(Dec::from_int(0)).is_err());
    }

    #[test]
    fn date_roundtrip_and_epoch() {
        assert_eq!(Date32::from_ymd(1970, 1, 1).0, 0);
        assert_eq!(Date32::from_ymd(1998, 12, 1).to_ymd(), (1998, 12, 1));
        for &(y, m, d) in &[(1992, 1, 1), (1998, 12, 31), (2000, 2, 29), (1996, 2, 29)] {
            assert_eq!(Date32::from_ymd(y, m, d).to_ymd(), (y, m, d));
        }
    }

    #[test]
    fn date_parse_and_display() {
        let d = Date32::parse("2010-01-01").unwrap();
        assert_eq!(d.to_string(), "2010-01-01");
        assert!(Date32::parse("2010-13-01").is_err());
        assert!(Date32::parse("2010-01").is_err());
    }

    #[test]
    fn date_interval_arithmetic() {
        // The paper's Listing 1 predicate: joindate < DATE'2010-01-01' + INTERVAL 1 YEAR.
        let d = Date32::parse("2010-01-01").unwrap();
        assert_eq!(d.add_years(1).to_string(), "2011-01-01");
        assert_eq!(
            Date32::parse("1995-03-31")
                .unwrap()
                .add_months(1)
                .to_string(),
            "1995-04-30"
        );
        assert_eq!(
            Date32::parse("1998-07-01")
                .unwrap()
                .add_days(-90)
                .to_string(),
            "1998-04-02"
        );
        assert_eq!(
            Date32::parse("1996-01-31")
                .unwrap()
                .add_months(13)
                .to_string(),
            "1997-02-28"
        );
    }

    #[test]
    fn value_cross_type_comparison() {
        assert_eq!(
            Value::Int(3).cmp_sql(&Value::Decimal(Dec::parse("3.00").unwrap())),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Decimal(Dec::parse("2.99").unwrap()).cmp_sql(&Value::Int(3)),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Null.cmp_sql(&Value::Int(1)), None);
        // CHAR pad-space semantics.
        assert_eq!(
            Value::str("FOB  ").cmp_sql(&Value::str("FOB")),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn column_encode_decode_roundtrip() {
        let cases: Vec<(DataType, Value)> = vec![
            (DataType::Int, Value::Int(-42)),
            (DataType::BigInt, Value::Int(1 << 40)),
            (
                DataType::Decimal {
                    precision: 15,
                    scale: 2,
                },
                Value::Decimal(Dec::parse("90449.25").unwrap()),
            ),
            (
                DataType::Date,
                Value::Date(Date32::parse("1994-01-01").unwrap()),
            ),
            (DataType::Char(10), Value::str("BUILDING")),
            (DataType::Varchar(44), Value::str("deposits sleep quickly")),
            (DataType::Double, Value::Double(3.25)),
        ];
        for (dt, v) in cases {
            let mut buf = Vec::new();
            v.encode_column(&dt, &mut buf).unwrap();
            if let Some(w) = dt.fixed_width() {
                assert_eq!(buf.len(), w, "{dt:?}");
            }
            let back = Value::decode_column(&dt, &buf);
            assert_eq!(back.cmp_sql(&v), Some(Ordering::Equal), "{dt:?} {v:?}");
        }
    }

    #[test]
    fn char_overflow_rejected() {
        let mut buf = Vec::new();
        assert!(Value::str("TOOLONGVALUE")
            .encode_column(&DataType::Char(4), &mut buf)
            .is_err());
    }
}
