//! Identifier newtypes used across the cluster.
//!
//! The database is divided into *spaces* (one per index, like an InnoDB
//! tablespace). A space is a linear array of fixed-size pages addressed by
//! [`PageNo`]; contiguous runs of pages form *slices* (the paper's 10 GB
//! placement unit, scaled down here) which are the unit of distribution
//! across Page Stores.

use std::fmt;

/// Log sequence number. Strictly increasing across the whole cluster; every
/// redo record and every page version carries one.
pub type Lsn = u64;

/// Transaction identifier. Assigned in increasing order by the transaction
/// manager; record headers store the id of the last writer.
pub type TrxId = u64;

/// Identifies one B+ tree (a "tablespace"): primary index or secondary index.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct SpaceId(pub u32);

/// Page number within a space.
pub type PageNo = u32;

/// Index identifier stored in page headers (diagnostics / sanity checks).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct IndexId(pub u64);

/// Global page address: (space, page number).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageRef {
    pub space: SpaceId,
    pub page_no: PageNo,
}

impl PageRef {
    pub fn new(space: SpaceId, page_no: PageNo) -> Self {
        PageRef { space, page_no }
    }
}

impl fmt::Debug for PageRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.space.0, self.page_no)
    }
}

/// A slice: a contiguous range of `slice_pages` pages within one space.
/// Slices are the unit of placement/replication across Page Stores.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SliceId {
    pub space: SpaceId,
    /// Index of the slice within the space: `page_no / slice_pages`.
    pub seq: u32,
}

impl SliceId {
    /// Slice containing `page_no` given the configured pages-per-slice.
    pub fn of(space: SpaceId, page_no: PageNo, slice_pages: u32) -> Self {
        SliceId {
            space,
            seq: page_no / slice_pages,
        }
    }
}

impl fmt::Debug for SliceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}/{}", self.space.0, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_of_maps_page_ranges() {
        let sp = SpaceId(7);
        assert_eq!(SliceId::of(sp, 0, 256).seq, 0);
        assert_eq!(SliceId::of(sp, 255, 256).seq, 0);
        assert_eq!(SliceId::of(sp, 256, 256).seq, 1);
        assert_eq!(SliceId::of(sp, 1000, 256).seq, 3);
    }

    #[test]
    fn page_ref_orders_by_space_then_page() {
        let a = PageRef::new(SpaceId(1), 9);
        let b = PageRef::new(SpaceId(2), 0);
        assert!(a < b);
        assert_eq!(format!("{a:?}"), "1:9");
    }
}
