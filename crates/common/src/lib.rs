//! Shared foundation types for the Taurus NDP reproduction.
//!
//! This crate holds everything the rest of the workspace agrees on:
//! SQL values and data types ([`value`]), table schemas and key encoding
//! ([`schema`]), the row batches of the vectorized result pipeline
//! ([`batch`]) and their column-major counterpart with validity bitmaps
//! and selection vectors ([`colbatch`]), error handling ([`error`]),
//! engine/cluster configuration
//! ([`config`]) and the metrics registry used to reproduce the paper's
//! network/CPU measurements ([`metrics`]).

pub mod batch;
pub mod colbatch;
pub mod config;
pub mod error;
pub mod govern;
pub mod ids;
pub mod metrics;
pub mod schema;
pub mod value;

pub use batch::{RowBatch, RowBatchIter};
pub use colbatch::{Batch, Bitmap, ColumnBatch, ColumnVec};
pub use config::{
    BatchLayout, ClusterConfig, FaultConfig, GovernConfig, NdpConfig, NetworkConfig, ReplicaConfig,
    ServerConfig,
};
pub use error::{Error, Result};
pub use govern::{QueryCtx, TenantId, DEFAULT_TENANT};
pub use ids::{IndexId, Lsn, PageNo, PageRef, SliceId, SpaceId, TrxId};
pub use metrics::{Metrics, MetricsSnapshot};
pub use schema::{Column, IndexDef, KeyComparator, Row, TableSchema};
pub use value::{DataType, Date32, Dec, Value};
