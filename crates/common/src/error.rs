//! Workspace-wide error type.

use std::fmt;

pub type Result<T> = std::result::Result<T, Error>;

/// Unified error enum. Kept small and explicit: database substrates report
/// structural corruption distinctly from user-level type/parse problems so
/// tests can assert on the failure class.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Malformed literal (decimal/date parse failures etc.).
    Parse(String),
    /// Type mismatch at runtime (e.g. comparing a date to a string column).
    Type(String),
    /// Arithmetic fault (division by zero, overflow).
    Arithmetic(String),
    /// Structural corruption: bad page checksums, broken record chains.
    Corruption(String),
    /// Referenced object (page, slice, table, index) does not exist.
    NotFound(String),
    /// Operation rejected in the current state (e.g. write in a read-only
    /// transaction, descriptor/page version no longer retained).
    InvalidState(String),
    /// A name (table, column, index) failed to resolve against the
    /// catalog, or a positional column reference was out of range. Raised
    /// by the query-builder facade before any plan is constructed.
    NameResolution(String),
    /// The requested query shape is valid SQL but outside what the engine
    /// executes (e.g. a GROUP BY that is not a prefix of the chosen index
    /// key, which streaming aggregation requires).
    Unsupported(String),
    /// Catch-all for internal invariant breaks; always a bug.
    Internal(String),
    /// The node (or one of its resource pools) is at capacity and shed
    /// the request instead of queueing it. Always retryable: nothing was
    /// executed, and capacity frees up as in-flight work drains.
    Overloaded(String),
    /// The query's deadline budget expired before the read path could
    /// complete (browned-out store, exhausted retries). The partial work
    /// is discarded; retrying with a fresh budget is safe.
    DeadlineExceeded(String),
    /// Static verification rejected the plan/program before execution:
    /// the message carries the verifier's rendered diagnostics (kind,
    /// plan-path location, detail — one per line). Raised by the
    /// `taurus-verify` pre-execution gate instead of letting a malformed
    /// plan surface as an `Internal` invariant break mid-scan.
    Verify(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::Type(m) => write!(f, "type error: {m}"),
            Error::Arithmetic(m) => write!(f, "arithmetic error: {m}"),
            Error::Corruption(m) => write!(f, "corruption: {m}"),
            Error::NotFound(m) => write!(f, "not found: {m}"),
            Error::InvalidState(m) => write!(f, "invalid state: {m}"),
            Error::NameResolution(m) => write!(f, "name resolution: {m}"),
            Error::Unsupported(m) => write!(f, "unsupported: {m}"),
            Error::Internal(m) => write!(f, "internal error: {m}"),
            Error::Overloaded(m) => write!(f, "overloaded: {m}"),
            Error::DeadlineExceeded(m) => write!(f, "deadline exceeded: {m}"),
            Error::Verify(m) => write!(f, "verification failed: {m}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_class_and_message() {
        let e = Error::Corruption("bad checksum on 3:7".into());
        assert_eq!(e.to_string(), "corruption: bad checksum on 3:7");
    }
}
