//! Cluster and NDP configuration knobs.
//!
//! Every tunable the paper names has a field here:
//! `innodb_ndp_max_pages_look_ahead` (§IV-C4), the ≥10,000-page NDP gate
//! (§VII-C, scaled down), the Page Store NDP thread pool and queue
//! (§IV-D2), the descriptor cache toggle (§IV-D1) and the network model
//! that reproduces the I/O-bound behaviour of §VII-A.

/// `TAURUS_SCAN_BATCH_ROWS` override for [`ClusterConfig::scan_batch_rows`]
/// (applied by both config constructors). CI runs the whole test suite
/// with this pinned to `1` so row-at-a-time delivery — every mid-batch
/// edge degenerated to a batch boundary — stays a permanently exercised
/// configuration. Invalid or zero values are ignored.
fn scan_batch_rows_env_override(default: usize) -> usize {
    env_usize_override("TAURUS_SCAN_BATCH_ROWS", default)
}

/// Read a positive-`usize` environment override, falling back to `default`
/// when unset, unparsable or zero. CI uses these to run the whole suite
/// under alternative cluster shapes (fan-out width, replication, prefetch
/// depth) without patching every test's config constructor.
fn env_usize_override(var: &str, default: usize) -> usize {
    match std::env::var(var) {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => default,
        },
        Err(_) => default,
    }
}

/// Which in-memory layout scan batches use between executor operators.
/// Both layouts are byte-identical at the wire/result boundary; the CI
/// matrix runs the full suite under each.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchLayout {
    /// Row-major [`crate::RowBatch`] everywhere (the pre-columnar path).
    Row,
    /// Column-major [`crate::ColumnBatch`] from the scan up to the first
    /// pipeline breaker, with selection-vector filtering.
    Columnar,
}

/// `TAURUS_BATCH_LAYOUT` override: `"columnar"` selects
/// [`BatchLayout::Columnar`]; anything else (including unset/empty) keeps
/// the row-major default.
fn batch_layout_env_override() -> BatchLayout {
    match std::env::var("TAURUS_BATCH_LAYOUT") {
        Ok(v) if v.trim().eq_ignore_ascii_case("columnar") => BatchLayout::Columnar,
        _ => BatchLayout::Row,
    }
}

/// NDP behaviour knobs (compute-node side decisions + Page Store limits).
#[derive(Clone, Debug)]
pub struct NdpConfig {
    /// Master switch; `false` forces the classical scan path everywhere so
    /// that "non-NDP queries do not suffer any performance penalties".
    pub enabled: bool,
    /// `innodb_ndp_max_pages_look_ahead`: maximum pages per batch read and,
    /// equally, the scan's buffer-pool NDP-frame quota (§IV-C4).
    pub max_pages_look_ahead: usize,
    /// Minimum *estimated physical I/O* (pages not already cached) for a
    /// scan to qualify for NDP. Paper value 10,000; scaled default 64.
    pub min_io_pages: u64,
    /// Enable NDP column projection when the projected width is at most
    /// this fraction of the full row width (§V-A "width reduction is high
    /// enough").
    pub projection_width_threshold: f64,
    /// Enable NDP predicate pushdown only when the estimated filter factor
    /// (fraction surviving) is at most this value (§V-B1 "sufficiently
    /// selective"). Default 1.0: the paper's own micro-benchmark pushes
    /// predicates with ~0.97 filter factors (Q001), so the gate defaults
    /// open; lower it to study the trade-off.
    pub predicate_max_filter_factor: f64,
    /// Page Store descriptor cache (§IV-D1).
    pub descriptor_cache: bool,
    /// How many leaf batches the NDP scan keeps in flight: while batch N
    /// is consumed in logical page order, batches N+1..N+prefetch-1 are
    /// already extracted and their batch reads dispatched across Page
    /// Stores. `1` disables the overlap (strictly fetch-then-consume);
    /// the default double-buffers. The per-scan NDP frame quota
    /// (`max_pages_look_ahead`, capped at half the buffer pool) is
    /// *split* across the in-flight batches, so prefetching never grows
    /// the NDP area footprint.
    pub prefetch_batches: usize,
}

impl Default for NdpConfig {
    fn default() -> Self {
        NdpConfig {
            enabled: true,
            max_pages_look_ahead: 1024,
            min_io_pages: 64,
            projection_width_threshold: 0.8,
            predicate_max_filter_factor: 1.0,
            descriptor_cache: true,
            prefetch_batches: env_usize_override("TAURUS_PREFETCH_BATCHES", 2),
        }
    }
}

/// How long a replica read path retries a pinned access whose at-pin
/// version aged out of a Page Store's retention window before surfacing
/// the staleness error — the single policy shared by per-page chain
/// reads (refreshing pin) and whole-walk restarts (fresh cut). Sized for
/// a tailer briefly starved by reader threads on a loaded box; the retry
/// only delays the error path, never a successful read.
pub const STALE_PIN_RETRY: std::time::Duration = std::time::Duration::from_millis(500);

/// Read-replica behaviour knobs (the log-tailing compute nodes of §II:
/// Log Stores "serve log records to read replicas", which read the same
/// shared Page Stores at a replica-consistent LSN).
#[derive(Clone, Debug)]
pub struct ReplicaConfig {
    /// How long the log tailer sleeps when it has fully caught up with
    /// the Log Stores, in microseconds. Env override
    /// `TAURUS_REPLICA_POLL_US`.
    pub poll_interval_us: u64,
    /// Maximum tolerated staleness, in LSNs, before a replica *refuses to
    /// serve* new queries (`Session::query` fails until the tailer
    /// catches back up). `None` = serve at any lag. Env override
    /// `TAURUS_REPLICA_MAX_LAG_LSN` (0 or unparsable = unlimited).
    pub max_lag_lsn: Option<u64>,
    /// Log batches pulled per tailer poll.
    pub batches_per_poll: usize,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig {
            poll_interval_us: env_usize_override("TAURUS_REPLICA_POLL_US", 200) as u64,
            max_lag_lsn: match std::env::var("TAURUS_REPLICA_MAX_LAG_LSN") {
                Ok(v) => v.trim().parse::<u64>().ok().filter(|&n| n > 0),
                Err(_) => None,
            },
            batches_per_poll: 64,
        }
    }
}

/// Network-serving knobs for the TCP front end (`crates/server`): the
/// process that turns this library into the paper's client-facing
/// compute node. Follows the same env-override convention as the rest
/// of the config: empty/unparsable/zero values fall back to defaults.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// TCP listen address. Port `0` binds an ephemeral port (tests and
    /// benches read the bound address back from the server handle). Env
    /// override `TAURUS_LISTEN_ADDR` (non-empty value wins).
    pub listen_addr: String,
    /// Worker permits: how many queries may *execute* concurrently
    /// across all sessions. Excess queries queue at the permit gate;
    /// sessions themselves are not refused by this knob. Defaults above
    /// the core count because queries spend much of their time blocked
    /// on the simulated storage wire, not on CPU. Env override
    /// `TAURUS_SERVER_WORKER_THREADS`.
    pub worker_threads: usize,
    /// Maximum concurrently connected sessions; a connection beyond the
    /// cap is answered with an error frame and closed. Env override
    /// `TAURUS_SERVER_MAX_SESSIONS`.
    pub max_sessions: usize,
    /// Per-session read timeout in milliseconds: a session idle longer
    /// than this is closed (frees its slot under `max_sessions`), and
    /// the same budget bounds each query's *execution* — the serving
    /// loop installs it as the query deadline, so a browned-out storage
    /// path surfaces as a `DeadlineExceeded` error frame instead of a
    /// silently hung stream. Env override
    /// `TAURUS_SERVER_READ_TIMEOUT_MS` (0 = no timeout/deadline).
    pub session_read_timeout_ms: u64,
    /// How many queries may *wait* at the worker-permit gate before new
    /// queries are refused with the retryable `Overloaded` wire error
    /// instead of queueing without bound. Env override
    /// `TAURUS_SERVER_GATE_QUEUE`.
    pub gate_queue_depth: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            listen_addr: match std::env::var("TAURUS_LISTEN_ADDR") {
                Ok(v) if !v.trim().is_empty() => v.trim().to_string(),
                _ => "127.0.0.1:4907".to_string(),
            },
            worker_threads: env_usize_override(
                "TAURUS_SERVER_WORKER_THREADS",
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
                    .max(4),
            ),
            max_sessions: env_usize_override("TAURUS_SERVER_MAX_SESSIONS", 1024),
            session_read_timeout_ms: env_usize_override("TAURUS_SERVER_READ_TIMEOUT_MS", 30_000)
                as u64,
            gate_queue_depth: env_usize_override("TAURUS_SERVER_GATE_QUEUE", 256),
        }
    }
}

/// Resource-governance knobs: per-tenant NDP admission on the Page
/// Stores and the SAL's retry/backoff discipline. Env overrides follow
/// the workspace convention (empty/unparsable/zero → default):
///
/// - `TAURUS_NDP_TENANT_QUOTA` — per-tenant cap on queued NDP jobs at
///   each Page Store (`ndp_tenant_quota`; 0 = unlimited, the embedded
///   default). With a quota, one tenant can occupy at most that many
///   queue slots; its overflow degrades to raw page reads while other
///   tenants' pushdown is untouched.
/// - `TAURUS_NDP_FORCE_SHED` — set to `1` to force the store-level
///   shed-to-compute decision on every batch (`ndp_force_shed`): the
///   whole slice is served as raw pages, as if the store's queue were
///   permanently saturated. A chaos/test knob.
/// - `TAURUS_READ_RETRY_ROUNDS` — how many full passes over a slice's
///   replica set a SAL read makes before giving up
///   (`read_retry_rounds`). Round 1 is the normal failover pass; later
///   rounds re-visit replicas after a jittered backoff, riding out
///   brownouts shorter than the query's deadline.
/// - `TAURUS_READ_BACKOFF_US` — base backoff between retry rounds in
///   microseconds (`read_backoff_us`); doubled per round, ±50 % jitter,
///   capped at 250 ms (see `govern::backoff_delay`).
#[derive(Clone, Debug)]
pub struct GovernConfig {
    pub ndp_tenant_quota: usize,
    pub ndp_force_shed: bool,
    pub read_retry_rounds: u32,
    pub read_backoff_us: u64,
}

impl Default for GovernConfig {
    fn default() -> Self {
        GovernConfig {
            ndp_tenant_quota: match std::env::var("TAURUS_NDP_TENANT_QUOTA") {
                Ok(v) => v.trim().parse::<usize>().unwrap_or(0),
                Err(_) => 0,
            },
            ndp_force_shed: std::env::var("TAURUS_NDP_FORCE_SHED")
                .map(|v| v.trim() == "1")
                .unwrap_or(false),
            read_retry_rounds: env_usize_override("TAURUS_READ_RETRY_ROUNDS", 2) as u32,
            read_backoff_us: env_usize_override("TAURUS_READ_BACKOFF_US", 500) as u64,
        }
    }
}

/// Brownout fault injection, applied to the Page Stores a `Sal` builds
/// (never to directly-constructed stores, so unit tests own their fault
/// state). All knobs target the single store `TAURUS_FAULT_STORE` names;
/// with that unset, no fault is injected. Env overrides:
///
/// - `TAURUS_FAULT_STORE` — index of the Page Store to fault (0-based).
/// - `TAURUS_FAULT_LATENCY_MS` — added latency per read/NDP request:
///   the store stays alive but slow (a brownout), exercising failover,
///   deadline and shed paths without errors.
/// - `TAURUS_FAULT_ERROR_RATE` — percentage (1–100) of read requests
///   that fail with a retryable error.
/// - `TAURUS_FAULT_UNTIL_LSN` — reads fail while the target slice's
///   applied LSN is below this bound (a store stuck in recovery).
/// - `TAURUS_NDP_SKIP_EVERY_NTH` — apply `SkipPolicy::EveryNth(n)` to
///   every store (the chaos leg's page-scoped degradation knob).
#[derive(Clone, Debug)]
pub struct FaultConfig {
    pub store: Option<usize>,
    pub latency_ms: u64,
    pub error_rate: u32,
    pub until_lsn: u64,
    pub skip_every_nth: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            store: match std::env::var("TAURUS_FAULT_STORE") {
                Ok(v) => v.trim().parse::<usize>().ok(),
                Err(_) => None,
            },
            latency_ms: env_usize_override("TAURUS_FAULT_LATENCY_MS", 0) as u64,
            error_rate: match std::env::var("TAURUS_FAULT_ERROR_RATE") {
                Ok(v) => v.trim().parse::<u32>().unwrap_or(0).min(100),
                Err(_) => 0,
            },
            until_lsn: match std::env::var("TAURUS_FAULT_UNTIL_LSN") {
                Ok(v) => v.trim().parse::<u64>().unwrap_or(0),
                Err(_) => 0,
            },
            skip_every_nth: match std::env::var("TAURUS_NDP_SKIP_EVERY_NTH") {
                Ok(v) => v.trim().parse::<u64>().unwrap_or(0),
                Err(_) => 0,
            },
        }
    }
}

/// Simulated network model applied at the SAL boundary.
#[derive(Clone, Debug, Default)]
pub struct NetworkConfig {
    /// Shared bandwidth across all compute<->storage transfers, in bytes
    /// per second of simulated wall time. `None` = infinite (metering only).
    pub bandwidth_bytes_per_sec: Option<u64>,
    /// Fixed per-request latency in microseconds.
    pub latency_us: u64,
}

/// Whole-cluster configuration.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Regular page size; InnoDB default 16 KB.
    pub page_size: usize,
    /// Pages per slice (the paper's 10 GB placement unit, scaled).
    pub slice_pages: u32,
    /// Number of Page Store servers.
    pub n_page_stores: usize,
    /// Page Store replicas per slice (paper: 3).
    pub replication: usize,
    /// Number of Log Store servers (paper: logs written in triplicate).
    pub n_log_stores: usize,
    /// Compute-node buffer pool capacity, in pages.
    pub buffer_pool_pages: usize,
    /// Rows per scan-result batch: the frontend scan accumulates
    /// surviving rows into one reusable [`crate::RowBatch`] of this many
    /// rows and hands it downstream in a single `on_batch` call (one
    /// channel message on the streaming path). `1` degenerates to
    /// row-at-a-time delivery; the default is
    /// [`crate::batch::DEFAULT_SCAN_BATCH_ROWS`].
    pub scan_batch_rows: usize,
    /// Scan-batch layout between executor operators (row-major or
    /// columnar with selection vectors). Env override
    /// `TAURUS_BATCH_LAYOUT=columnar`; results are identical either way.
    pub batch_layout: BatchLayout,
    /// Worker threads per Page Store dedicated to NDP (§IV-D2).
    pub pagestore_ndp_threads: usize,
    /// Bounded NDP request queue per Page Store; overflow => best-effort
    /// skip, raw page returned (§IV-D2). Sized to absorb a full batch
    /// (look-ahead) per tenant; shrink it to provoke skips.
    pub pagestore_ndp_queue: usize,
    /// Simulated NDP service time per page, in microseconds (0 = free).
    /// Models the storage-side CPU a real store spends filtering and
    /// projecting one page — at toy scale factors pages are nearly
    /// empty, which would make the bounded NDP pool an infinitely fast
    /// server and queue contention unobservable. Sleep-based like the
    /// network model, so it costs no host CPU.
    pub pagestore_ndp_service_us: u64,
    /// Page versions retained per page for LSN-versioned batch reads.
    pub pagestore_versions_retained: usize,
    pub ndp: NdpConfig,
    pub network: NetworkConfig,
    pub replica: ReplicaConfig,
    pub server: ServerConfig,
    pub govern: GovernConfig,
    pub fault: FaultConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            page_size: 16 * 1024,
            slice_pages: 256,
            n_page_stores: env_usize_override("TAURUS_N_PAGE_STORES", 4),
            replication: env_usize_override("TAURUS_REPLICATION", 3),
            n_log_stores: 3,
            buffer_pool_pages: 2048,
            scan_batch_rows: scan_batch_rows_env_override(crate::batch::DEFAULT_SCAN_BATCH_ROWS),
            batch_layout: batch_layout_env_override(),
            pagestore_ndp_threads: 4,
            pagestore_ndp_queue: 2048,
            pagestore_ndp_service_us: 0,
            pagestore_versions_retained: 8,
            ndp: NdpConfig::default(),
            network: NetworkConfig::default(),
            replica: ReplicaConfig::default(),
            server: ServerConfig::default(),
            govern: GovernConfig::default(),
            fault: FaultConfig::default(),
        }
    }
}

impl ClusterConfig {
    /// Small configuration for unit tests: tiny pool, tiny slices, so that
    /// eviction / multi-slice / multi-store paths all get exercised on
    /// small data.
    pub fn small_for_tests() -> Self {
        ClusterConfig {
            page_size: 4 * 1024,
            slice_pages: 8,
            n_page_stores: env_usize_override("TAURUS_N_PAGE_STORES", 3),
            replication: env_usize_override("TAURUS_REPLICATION", 2),
            n_log_stores: 3,
            buffer_pool_pages: 64,
            // Deliberately tiny and odd: mid-page capacity flushes and
            // partially-filled trailing batches get exercised everywhere.
            scan_batch_rows: scan_batch_rows_env_override(7),
            batch_layout: batch_layout_env_override(),
            pagestore_ndp_threads: 2,
            pagestore_ndp_queue: 16,
            pagestore_ndp_service_us: 0,
            pagestore_versions_retained: 8,
            ndp: NdpConfig {
                min_io_pages: 1,
                max_pages_look_ahead: 16,
                ..NdpConfig::default()
            },
            network: NetworkConfig::default(),
            replica: ReplicaConfig::default(),
            server: ServerConfig::default(),
            govern: GovernConfig::default(),
            fault: FaultConfig::default(),
        }
    }

    /// Replicas actually used (cannot exceed the number of Page Stores).
    pub fn effective_replication(&self) -> usize {
        self.replication.min(self.n_page_stores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Is this override var actually *effective*? Must mirror
    /// `env_usize_override`: CI sets unused matrix dimensions to empty
    /// strings, which the parser ignores — so presence alone would
    /// silently skip the default assertions on every CI leg.
    fn overridden(var: &str) -> bool {
        std::env::var(var)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .is_some_and(|n| n >= 1)
    }

    #[test]
    fn defaults_match_paper_scale_map() {
        let c = ClusterConfig::default();
        assert_eq!(c.page_size, 16 * 1024);
        // CI runs the suite under alternative cluster shapes via env
        // overrides; the paper-scale assertions only hold un-overridden.
        if !overridden("TAURUS_N_PAGE_STORES") {
            assert_eq!(c.n_page_stores, 4);
        }
        if !overridden("TAURUS_REPLICATION") {
            assert_eq!(c.replication, 3);
        }
        if !overridden("TAURUS_PREFETCH_BATCHES") {
            assert_eq!(c.ndp.prefetch_batches, 2, "double-buffered by default");
        }
        assert!(c.ndp.prefetch_batches >= 1);
        assert_eq!(c.ndp.max_pages_look_ahead, 1024);
        assert!(c.ndp.enabled);
    }

    #[test]
    fn server_defaults_and_overrides() {
        let c = ServerConfig::default();
        if std::env::var("TAURUS_LISTEN_ADDR")
            .map(|v| v.trim().is_empty())
            .unwrap_or(true)
        {
            assert_eq!(c.listen_addr, "127.0.0.1:4907");
        }
        if !overridden("TAURUS_SERVER_MAX_SESSIONS") {
            assert_eq!(c.max_sessions, 1024);
        }
        if !overridden("TAURUS_SERVER_READ_TIMEOUT_MS") {
            assert_eq!(c.session_read_timeout_ms, 30_000);
        }
        // Queries block on the simulated wire, so the permit pool never
        // collapses to a single-core serializer.
        assert!(c.worker_threads >= 4);
        // The cluster config carries the serving knobs like every other
        // subsystem's.
        let cc = ClusterConfig::small_for_tests();
        assert_eq!(cc.server.max_sessions, c.max_sessions);
    }

    #[test]
    fn governance_and_fault_defaults_are_inert() {
        let g = GovernConfig::default();
        if !overridden("TAURUS_NDP_TENANT_QUOTA") {
            assert_eq!(g.ndp_tenant_quota, 0, "quotas off by default");
        }
        if std::env::var("TAURUS_NDP_FORCE_SHED").is_err() {
            assert!(!g.ndp_force_shed);
        }
        if !overridden("TAURUS_READ_RETRY_ROUNDS") {
            assert_eq!(g.read_retry_rounds, 2);
        }
        assert!(g.read_retry_rounds >= 1);
        let f = FaultConfig::default();
        if std::env::var("TAURUS_FAULT_STORE")
            .map(|v| v.trim().parse::<usize>().is_err())
            .unwrap_or(true)
        {
            assert!(f.store.is_none(), "no fault injected by default");
        }
        assert!(f.error_rate <= 100);
        // The cluster config carries both, like every other subsystem's.
        let c = ClusterConfig::small_for_tests();
        assert_eq!(c.govern.ndp_tenant_quota, g.ndp_tenant_quota);
        assert_eq!(c.fault.latency_ms, f.latency_ms);
    }

    #[test]
    fn batch_layout_defaults_to_row_unless_columnar_requested() {
        let c = ClusterConfig::small_for_tests();
        match std::env::var("TAURUS_BATCH_LAYOUT") {
            Ok(v) if v.trim().eq_ignore_ascii_case("columnar") => {
                assert_eq!(c.batch_layout, BatchLayout::Columnar);
            }
            // Unset, empty or unknown values all keep the row default —
            // CI legs set unused matrix dimensions to "".
            _ => assert_eq!(c.batch_layout, BatchLayout::Row),
        }
        assert_eq!(
            ClusterConfig::default().batch_layout,
            c.batch_layout,
            "both constructors honor the same override"
        );
    }

    #[test]
    fn effective_replication_caps_at_store_count() {
        let mut c = ClusterConfig::default();
        c.n_page_stores = 2;
        assert_eq!(c.effective_replication(), 2);
    }
}
