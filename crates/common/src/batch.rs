//! Row batches: the unit of the vectorized result pipeline.
//!
//! The paper keeps per-record work tiny inside Page Stores (the §V-B VM
//! evaluates predicates over raw record bytes, no row materialization)
//! and amortizes round trips with batch reads (§IV-C). [`RowBatch`] is
//! the frontend's counterpart: scans accumulate surviving rows into one
//! reusable batch instead of allocating a fresh `Vec<Value>` per record,
//! and every downstream hand-off (consumer callback, stream channel
//! message) happens once per *batch*, not once per row.
//!
//! Layout: a row group — one flat `Vec<Value>` holding `len * width`
//! values in row-major order. The batch owns its values (scans release
//! page frames as soon as a page drains, so borrowing record bytes is
//! not an option), and `clear()` keeps the allocation so a scan reuses
//! one buffer for its whole lifetime.

use crate::schema::Row;
use crate::value::Value;

/// Default rows per scan batch ([`crate::config::ClusterConfig::scan_batch_rows`]).
/// ~1024 rows amortizes per-batch overhead to noise while keeping a
/// batch of typical rows comfortably cache-resident.
pub const DEFAULT_SCAN_BATCH_ROWS: usize = 1024;

/// An owned, fixed-width batch of rows in row-major order. Construct
/// via [`RowBatch::with_capacity`] (no `Default`: a default batch would
/// have capacity 0 and report itself full while empty).
#[derive(Clone, Debug, PartialEq)]
pub struct RowBatch {
    /// Values per row. A zero-width batch is legal (e.g. a bare
    /// `COUNT(*)` scan delivers empty rows); `len` is tracked explicitly
    /// so row count never depends on `width`.
    width: usize,
    len: usize,
    capacity_rows: usize,
    values: Vec<Value>,
}

impl RowBatch {
    /// An empty batch that flushes after `capacity_rows` rows of `width`
    /// values each.
    pub fn with_capacity(width: usize, capacity_rows: usize) -> RowBatch {
        let capacity_rows = capacity_rows.max(1);
        RowBatch {
            width,
            len: 0,
            capacity_rows,
            values: Vec::with_capacity(width * capacity_rows.min(DEFAULT_SCAN_BATCH_ROWS)),
        }
    }

    /// Values per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Rows currently buffered.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Has the batch reached its flush threshold?
    pub fn is_full(&self) -> bool {
        self.len >= self.capacity_rows
    }

    pub fn capacity_rows(&self) -> usize {
        self.capacity_rows
    }

    /// Append one row. The iterator must yield exactly `width` values —
    /// enforced with a hard assert, because a wrong-width row would
    /// silently shift every later row's slice boundaries (the check is
    /// one integer compare per row, noise next to the extend itself).
    pub fn push_row(&mut self, row: impl IntoIterator<Item = Value>) {
        let before = self.values.len();
        self.values.extend(row);
        assert_eq!(
            self.values.len() - before,
            self.width,
            "row width mismatch in RowBatch::push_row"
        );
        self.len += 1;
    }

    /// Borrow row `i`.
    pub fn row(&self, i: usize) -> &[Value] {
        let start = i * self.width;
        &self.values[start..start + self.width]
    }

    /// Iterate the buffered rows as slices.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[Value]> {
        // `chunks_exact(0)` panics; a zero-width batch yields `len`
        // empty rows instead.
        RowsIter {
            batch: self,
            next: 0,
        }
    }

    /// Reserve room for `additional` more rows (one allocation instead of
    /// per-row growth — operators that know a batch's output bound call
    /// this once before their emit loop).
    pub fn reserve_rows(&mut self, additional: usize) {
        self.values.reserve(additional * self.width.max(1));
    }

    /// Keep only the first `n` rows (no-op when `n >= len`). The batch
    /// keeps its allocation; LIMIT uses this to cut the final batch at
    /// the row boundary.
    pub fn truncate_rows(&mut self, n: usize) {
        if n < self.len {
            self.values.truncate(n * self.width);
            self.len = n;
        }
    }

    /// Drop all rows, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.values.clear();
        self.len = 0;
    }

    /// Consume the batch into an owned-row iterator (the pull side of a
    /// stream pops rows from here locally, no channel traffic per row).
    pub fn into_rows(self) -> RowBatchIter {
        RowBatchIter {
            width: self.width,
            remaining: self.len,
            values: self.values.into_iter(),
        }
    }

    /// Materialize as a `Vec<Row>` (test/diagnostic convenience).
    pub fn to_rows(&self) -> Vec<Row> {
        self.rows().map(|r| r.to_vec()).collect()
    }
}

struct RowsIter<'a> {
    batch: &'a RowBatch,
    next: usize,
}

impl<'a> Iterator for RowsIter<'a> {
    type Item = &'a [Value];

    fn next(&mut self) -> Option<&'a [Value]> {
        if self.next >= self.batch.len {
            return None;
        }
        let r = self.batch.row(self.next);
        self.next += 1;
        Some(r)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.batch.len - self.next;
        (n, Some(n))
    }
}

impl ExactSizeIterator for RowsIter<'_> {}

/// Owning row iterator over a consumed [`RowBatch`].
#[derive(Debug, Default)]
pub struct RowBatchIter {
    width: usize,
    remaining: usize,
    values: std::vec::IntoIter<Value>,
}

impl RowBatchIter {
    /// An iterator over no rows (a stream's state before its first batch).
    pub fn empty() -> RowBatchIter {
        RowBatchIter::default()
    }

    /// Values per row of the consumed batch (a partially-drained
    /// iterator can be re-batched at the same width).
    pub fn width(&self) -> usize {
        self.width
    }
}

impl Iterator for RowBatchIter {
    type Item = Row;

    fn next(&mut self) -> Option<Row> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(self.values.by_ref().take(self.width).collect())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for RowBatchIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_iterate_clear_reuses_allocation() {
        let mut b = RowBatch::with_capacity(2, 3);
        assert!(b.is_empty() && !b.is_full());
        for i in 0..3i64 {
            b.push_row([Value::Int(i), Value::Int(i * 10)]);
        }
        assert!(b.is_full());
        assert_eq!(b.len(), 3);
        assert_eq!(b.row(1), &[Value::Int(1), Value::Int(10)]);
        let rows: Vec<_> = b.rows().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2], &[Value::Int(2), Value::Int(20)]);
        let cap = b.values.capacity();
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.values.capacity(), cap, "clear keeps the allocation");
    }

    #[test]
    fn into_rows_yields_owned_rows_in_order() {
        let mut b = RowBatch::with_capacity(2, 8);
        b.push_row([Value::Int(1), Value::str("a")]);
        b.push_row([Value::Int(2), Value::str("b")]);
        let mut it = b.into_rows();
        assert_eq!(it.len(), 2);
        assert_eq!(it.next(), Some(vec![Value::Int(1), Value::str("a")]));
        assert_eq!(it.next(), Some(vec![Value::Int(2), Value::str("b")]));
        assert_eq!(it.next(), None);
    }

    #[test]
    fn zero_width_rows_still_count() {
        let mut b = RowBatch::with_capacity(0, 4);
        for _ in 0..4 {
            b.push_row([]);
        }
        assert!(b.is_full());
        assert_eq!(b.len(), 4);
        assert_eq!(b.rows().count(), 4);
        let mut it = b.into_rows();
        assert_eq!(it.len(), 4);
        assert_eq!(it.next(), Some(Vec::new()));
        assert_eq!(it.count(), 3);
    }

    #[test]
    fn truncate_rows_cuts_at_row_boundary() {
        let mut b = RowBatch::with_capacity(2, 4);
        for i in 0..4i64 {
            b.push_row([Value::Int(i), Value::Int(-i)]);
        }
        b.truncate_rows(9); // no-op past the end
        assert_eq!(b.len(), 4);
        b.truncate_rows(2);
        assert_eq!(b.len(), 2);
        assert_eq!(b.row(1), &[Value::Int(1), Value::Int(-1)]);
        b.truncate_rows(0);
        assert!(b.is_empty());
    }

    #[test]
    fn capacity_is_at_least_one() {
        let mut b = RowBatch::with_capacity(1, 0);
        assert!(!b.is_full());
        b.push_row([Value::Null]);
        assert!(b.is_full(), "capacity 0 clamps to 1");
    }
}
