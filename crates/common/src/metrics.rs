//! Cluster-wide metrics: the quantities the paper's figures are made of.
//!
//! *Network* counters are incremented exactly once per transfer, at the SAL
//! boundary (`taurus-sal`), so "bytes from storage" means what Fig. 5/7 mean.
//! *Compute CPU* is measured with `CLOCK_THREAD_CPUTIME_ID` on compute-node
//! threads only (query thread + PQ workers); Page Store worker pools
//! accumulate into the separate `ps_cpu_ns`, reproducing the paper's
//! "CPU time on the SQL node" vs. storage-side split.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Read the calling thread's consumed CPU time in nanoseconds.
///
/// Blocking (channel waits, simulated network sleeps) does not accumulate,
/// which is precisely why the paper's "CPU freed on the SQL node" effect is
/// directly observable in-process.
pub fn thread_cpu_ns() -> u64 {
    let mut ts = libc::timespec {
        tv_sec: 0,
        tv_nsec: 0,
    };
    // SAFETY: ts is a valid out-pointer; CLOCK_THREAD_CPUTIME_ID is portable
    // on Linux which is the only supported bench platform.
    let rc = unsafe { libc::clock_gettime(libc::CLOCK_THREAD_CPUTIME_ID, &mut ts) };
    if rc != 0 {
        return 0;
    }
    ts.tv_sec as u64 * 1_000_000_000 + ts.tv_nsec as u64
}

/// RAII guard adding the enclosed region's thread-CPU time to a counter.
pub struct CpuGuard<'a> {
    counter: &'a AtomicU64,
    start: u64,
}

impl<'a> CpuGuard<'a> {
    pub fn new(counter: &'a AtomicU64) -> Self {
        CpuGuard {
            counter,
            start: thread_cpu_ns(),
        }
    }
}

impl Drop for CpuGuard<'_> {
    fn drop(&mut self) {
        let end = thread_cpu_ns();
        self.counter
            .fetch_add(end.saturating_sub(self.start), Ordering::Relaxed);
    }
}

macro_rules! metrics_struct {
    ($($(#[$doc:meta])* $name:ident),* $(,)?) => {
        /// Live atomic counters, shared via `Arc` across the whole cluster.
        #[derive(Default, Debug)]
        pub struct Metrics {
            $($(#[$doc])* pub $name: AtomicU64,)*
            /// Per-tenant governance counters, keyed by [`crate::TenantId`]
            /// and materialized lazily on first touch. Not part of
            /// [`MetricsSnapshot`] (which stays `Copy`); rendered as
            /// trailing `tenant{id}.name value` lines by `render_text`.
            pub tenants: TenantRegistry,
        }

        /// A point-in-time copy of [`Metrics`]; supports subtraction to get
        /// per-query deltas.
        #[derive(Clone, Copy, Default, Debug, PartialEq)]
        pub struct MetricsSnapshot {
            $(pub $name: u64,)*
        }

        impl Metrics {
            pub fn snapshot(&self) -> MetricsSnapshot {
                MetricsSnapshot {
                    $($name: self.$name.load(Ordering::Relaxed),)*
                }
            }
        }

        impl Metrics {
            /// Render every counter as one `name value` line, in
            /// declaration order — a stable scrape format (the network
            /// server's STATS opcode serves exactly this), so operators
            /// and load tests read `replica_lag_lsn` or
            /// `prefetch_stall_ns` without linking the library. Tenants
            /// touched since startup append `tenant{id}.name value`
            /// lines after the fixed counters (same two-token shape).
            pub fn render_text(&self) -> String {
                let mut out = self.snapshot().render_text();
                self.tenants.render_into(&mut out);
                out
            }
        }

        impl MetricsSnapshot {
            /// Counter-wise `self - earlier` (saturating).
            pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
                MetricsSnapshot {
                    $($name: self.$name.saturating_sub(earlier.$name),)*
                }
            }

            /// See [`Metrics::render_text`].
            pub fn render_text(&self) -> String {
                use std::fmt::Write;
                let mut out = String::new();
                $(let _ = writeln!(out, "{} {}", stringify!($name), self.$name);)*
                out
            }
        }
    };
}

metrics_struct! {
    /// Bytes sent compute -> storage (requests, redo, descriptors).
    net_bytes_to_storage,
    /// Bytes received storage -> compute (pages, NDP pages, log acks).
    net_bytes_from_storage,
    /// Read requests issued to Page Stores (batch = 1 request per
    /// sub-batch). Charged per *attempt*: a failed-over read counts once
    /// per replica tried, so wire accounting stays honest.
    net_read_requests,
    /// Read attempts beyond the first replica (failover retries, both the
    /// single-page path and NDP sub-batch dispatch).
    read_retries,
    /// Raw (unprocessed) pages shipped to the compute node.
    pages_shipped_raw,
    /// NDP-processed pages shipped to the compute node.
    pages_shipped_ndp,
    /// Empty-after-filtering NDP pages (shipped as header-only markers).
    pages_shipped_empty,
    /// Compute-node CPU nanoseconds (query threads + PQ workers).
    compute_cpu_ns,
    /// Rows delivered by scans to the executor, counted at batch
    /// granularity when each batch is handed over (a consumer stopping
    /// mid-batch still received the whole batch; a scan erroring out
    /// still counts what it delivered before the error).
    rows_scanned,
    /// Rows delivered inside scan-result batches (amortization
    /// numerator; equals `rows_scanned` by construction — both are
    /// charged at flush time, on every path).
    rows_batched,
    /// Scan-result batches handed to consumers (amortization denominator;
    /// empty batches are never emitted).
    batches_emitted,
    /// Rows emitted by executor pipeline operators, charged at each
    /// operator's emit site (`next_batch` returning a batch). One row
    /// flowing through k operators counts k times — this is a pipeline
    /// *traffic* counter, not a result-row counter.
    operator_rows,
    /// Batches emitted by executor pipeline operators (traffic
    /// denominator for `operator_rows`; empty batches are never emitted).
    operator_batches,
    /// Pages whose NDP processing had to be completed by InnoDB on the
    /// compute node (raw fallback, cache-copied, or ambiguous-heavy).
    ndp_completed_on_compute,
    /// Records returned as ambiguous by Page Stores (visibility unresolved).
    ambiguous_records,
    /// Buffer pool hits / misses / evictions.
    bp_hits,
    bp_misses,
    bp_evictions,
    /// NDP frames currently allocated from the free list (gauge-ish).
    bp_ndp_frames,
    /// NDP leaf batches currently in flight in prefetching scans (gauge:
    /// incremented when a batch read is dispatched, decremented when the
    /// batch is fully consumed or the scan is cancelled). ≥ 2 while a
    /// double-buffered scan overlaps fetch with consumption.
    ndp_batches_in_flight,
    /// High-water mark of `ndp_batches_in_flight` (monotone; the direct
    /// observable for "batch N+1 was on the wire while batch N drained").
    ndp_batches_in_flight_peak,
    /// Nanoseconds NDP scan consumers spent blocked waiting for a
    /// prefetched page that had not arrived yet (0 = storage fully hid
    /// behind compute; large = the scan is storage-bound).
    prefetch_stall_ns,
    /// NDP batch requests currently being served across all Page Stores
    /// (gauge) and its high-water mark — the storage-side view of the
    /// same overlap: > slice-fan-out peak means requests from different
    /// leaf batches overlapped inside the stores.
    ps_requests_in_flight,
    ps_requests_in_flight_peak,
    /// Page Store: pages NDP-processed in storage.
    ps_pages_processed,
    /// Page Store: NDP requests skipped due to resource control (pages).
    ps_ndp_skipped,
    /// Page Store: worker CPU nanoseconds.
    ps_cpu_ns,
    /// Page Store: descriptor cache hits / misses.
    ps_desc_cache_hits,
    ps_desc_cache_misses,
    /// Page Store: nanoseconds spent decoding + compiling descriptors.
    ps_desc_decode_ns,
    /// Log Store: bytes appended (sum over replicas).
    log_bytes_appended,
    /// Wall nanoseconds spent flushing redo batches to the Log Stores
    /// (the triplicate-append fan-out on the commit path); divided by
    /// `log_flushes`, the commit-latency contribution of log durability.
    log_flush_ns,
    /// Number of `write_log` flushes (denominator for `log_flush_ns`).
    log_flushes,
    /// Replica: newest transaction-consistent LSN this node serves
    /// (absolute gauge, written by the log tailer at every boundary).
    replica_visible_lsn,
    /// Replica: master LSN minus visible LSN, sampled at every tailer
    /// pass (absolute gauge — the staleness the `max_lag` contract is
    /// about).
    replica_lag_lsn,
    /// Replica: log-batch bytes decoded and applied by the tailer.
    replica_apply_bytes,
    /// Replica: nanoseconds the tailer spent sleeping while *behind* the
    /// master (log records existed that it had not applied yet — e.g.
    /// waiting out an LSN gap while a master write_log is mid-append).
    /// Time spent idle while fully caught up does not count.
    replica_catchup_stall_ns,
    /// Records filtered out inside Page Stores (never shipped).
    ps_records_filtered,
    /// Records aggregated away inside Page Stores.
    ps_records_aggregated,
    /// Server: sessions currently connected (gauge) and its high-water
    /// mark.
    server_sessions,
    server_sessions_peak,
    /// Server: connections refused at the `server.max_sessions` cap.
    server_sessions_refused,
    /// Server: read queries served over the wire (named plans, builder
    /// requests and point lookups).
    server_queries,
    /// Server: DML statements committed over the wire.
    server_dml,
    /// Server: result rows / result-batch frames / frame payload bytes
    /// sent to clients.
    server_rows_sent,
    server_batches_sent,
    server_bytes_sent,
    /// Server: error frames sent to clients.
    server_errors_sent,
    /// Server: reads routed to the master / to a replica (the routing
    /// outcome, counted at node selection).
    server_routed_master,
    server_routed_replica,
    /// Server: reads that started on a replica and were transparently
    /// re-run on the master after the replica refused (detached or past
    /// its lag bound between routing and execution).
    server_failovers,
    /// Page Store: pages degraded to raw by the *store-level* shed
    /// decision (saturated NDP queue or forced shed) — the whole batch
    /// falls back to compute, distinct from per-page `ps_ndp_skipped`.
    ps_ndp_shed,
    /// Page Store: NDP jobs refused because the requesting tenant was at
    /// its admission quota (the page still ships raw; nothing fails).
    ps_ndp_quota_rejected,
    /// SAL: jittered backoff sleeps taken between replica retry rounds.
    read_backoff_waits,
    /// Reads/queries aborted because their deadline budget expired.
    deadline_exceeded,
    /// Server: queries refused with the retryable `Overloaded` error
    /// because the worker-permit gate's wait queue was full.
    server_overload_refused,
    /// Executor: physical rows evaluated by the column-at-a-time
    /// (vectorized) predicate path — Filter operators, scan residuals
    /// and Page-Store NDP pushdown all charge it.
    vector_eval_rows,
    /// Executor: selectivity of the most recent vectorized filter, as
    /// the percentage of a batch's physical rows that survived (set
    /// absolutely per batch — a gauge, not an accumulating counter).
    selection_density_pct,
    /// Server: SQL-text queries received over the wire (tag-4 payloads,
    /// including EXPLAIN).
    sql_queries,
    /// Server: SQL-text queries refused with a positioned parse/bind
    /// diagnostic (wire error code 1) before any operator opened.
    sql_parse_errors,
}

/// Per-tenant governance counters: who is consuming NDP admission and
/// who is being bounded. Tiny and fixed-shape — a registry entry is
/// created on a tenant's first metered action and lives for the process.
#[derive(Default, Debug)]
pub struct TenantCounters {
    /// Queries attributed to this tenant at the serving layer.
    pub queries: AtomicU64,
    /// NDP jobs admitted to a Page Store pool for this tenant.
    pub ndp_admitted: AtomicU64,
    /// NDP jobs refused at this tenant's admission quota.
    pub ndp_quota_rejected: AtomicU64,
    /// Pages degraded to raw for this tenant by store-level shed.
    pub pages_shed: AtomicU64,
}

/// Lazily-populated map of [`TenantCounters`] keyed by tenant id. Lives
/// inside [`Metrics`] but outside [`MetricsSnapshot`]: the snapshot stays
/// a flat `Copy` struct, while tenants render as trailing scrape lines.
#[derive(Default, Debug)]
pub struct TenantRegistry {
    inner: std::sync::RwLock<std::collections::BTreeMap<crate::TenantId, Arc<TenantCounters>>>,
}

impl TenantRegistry {
    /// The counters for `tenant`, created on first touch.
    pub fn tenant(&self, tenant: crate::TenantId) -> Arc<TenantCounters> {
        if let Some(c) = self.inner.read().unwrap().get(&tenant) {
            return c.clone();
        }
        self.inner
            .write()
            .unwrap()
            .entry(tenant)
            .or_default()
            .clone()
    }

    /// Tenant ids seen so far (sorted).
    pub fn ids(&self) -> Vec<crate::TenantId> {
        self.inner.read().unwrap().keys().copied().collect()
    }

    /// Append `tenant{id}.name value` lines (same two-token shape as the
    /// fixed counters; scrape parsers need no special casing).
    pub fn render_into(&self, out: &mut String) {
        use std::fmt::Write;
        for (id, c) in self.inner.read().unwrap().iter() {
            let _ = writeln!(
                out,
                "tenant{id}.queries {}",
                c.queries.load(Ordering::Relaxed)
            );
            let _ = writeln!(
                out,
                "tenant{id}.ndp_admitted {}",
                c.ndp_admitted.load(Ordering::Relaxed)
            );
            let _ = writeln!(
                out,
                "tenant{id}.ndp_quota_rejected {}",
                c.ndp_quota_rejected.load(Ordering::Relaxed)
            );
            let _ = writeln!(
                out,
                "tenant{id}.pages_shed {}",
                c.pages_shed.load(Ordering::Relaxed)
            );
        }
    }
}

impl Metrics {
    pub fn shared() -> Arc<Metrics> {
        Arc::new(Metrics::default())
    }

    pub fn add(&self, f: impl Fn(&Metrics) -> &AtomicU64, v: u64) {
        f(self).fetch_add(v, Ordering::Relaxed);
    }

    /// Decrement a gauge-style counter (in-flight counts). Saturating in
    /// spirit: gauges are only decremented by the guard that incremented
    /// them, so they never underflow in correct code.
    pub fn sub(&self, f: impl Fn(&Metrics) -> &AtomicU64, v: u64) {
        f(self).fetch_sub(v, Ordering::Relaxed);
    }

    /// Overwrite an absolute gauge (e.g. `replica_visible_lsn`): unlike
    /// the additive counters, these report the *current* value of some
    /// external quantity.
    pub fn set(&self, f: impl Fn(&Metrics) -> &AtomicU64, v: u64) {
        f(self).store(v, Ordering::Relaxed);
    }

    /// Increment a gauge and record its high-water mark in `peak`.
    /// Returns the gauge value after the increment.
    pub fn gauge_inc(
        &self,
        gauge: impl Fn(&Metrics) -> &AtomicU64,
        peak: impl Fn(&Metrics) -> &AtomicU64,
    ) -> u64 {
        let now = gauge(self).fetch_add(1, Ordering::Relaxed) + 1;
        peak(self).fetch_max(now, Ordering::Relaxed);
        now
    }
}

impl MetricsSnapshot {
    /// Total pages shipped over the network, any kind.
    pub fn pages_shipped(&self) -> u64 {
        self.pages_shipped_raw + self.pages_shipped_ndp + self.pages_shipped_empty
    }

    /// Percentage reduction of `get(self)` relative to `get(baseline)`:
    /// the formula behind every "reduction" figure in §VII.
    pub fn reduction_pct(
        &self,
        baseline: &MetricsSnapshot,
        get: impl Fn(&MetricsSnapshot) -> u64,
    ) -> f64 {
        let b = get(baseline);
        if b == 0 {
            return 0.0;
        }
        (1.0 - get(self) as f64 / b as f64) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_delta() {
        let m = Metrics::default();
        m.net_bytes_from_storage.store(100, Ordering::Relaxed);
        let s1 = m.snapshot();
        m.net_bytes_from_storage.fetch_add(250, Ordering::Relaxed);
        m.pages_shipped_ndp.fetch_add(3, Ordering::Relaxed);
        let d = m.snapshot().since(&s1);
        assert_eq!(d.net_bytes_from_storage, 250);
        assert_eq!(d.pages_shipped_ndp, 3);
        assert_eq!(d.net_bytes_to_storage, 0);
    }

    #[test]
    fn gauge_inc_tracks_peak() {
        let m = Metrics::default();
        let inc = |m: &Metrics| {
            m.gauge_inc(
                |m| &m.ndp_batches_in_flight,
                |m| &m.ndp_batches_in_flight_peak,
            )
        };
        assert_eq!(inc(&m), 1);
        assert_eq!(inc(&m), 2);
        m.sub(|m| &m.ndp_batches_in_flight, 1);
        assert_eq!(inc(&m), 2);
        m.sub(|m| &m.ndp_batches_in_flight, 1);
        m.sub(|m| &m.ndp_batches_in_flight, 1);
        let s = m.snapshot();
        assert_eq!(s.ndp_batches_in_flight, 0, "gauge balanced");
        assert_eq!(s.ndp_batches_in_flight_peak, 2, "peak sticks");
    }

    #[test]
    fn render_text_is_stable_name_value_lines() {
        let m = Metrics::default();
        m.net_bytes_to_storage.store(7, Ordering::Relaxed);
        m.server_sessions.store(3, Ordering::Relaxed);
        let text = m.render_text();
        // Declaration order: the first line is the first declared field.
        assert!(text.starts_with("net_bytes_to_storage 7\n"), "{text}");
        assert!(text.contains("\nserver_sessions 3\n"));
        assert!(text.contains("\nndp_batches_in_flight 0\n"));
        // Every line is exactly `name value`.
        for line in text.lines() {
            let mut parts = line.split(' ');
            assert!(parts.next().is_some_and(|n| !n.is_empty()));
            assert!(parts.next().is_some_and(|v| v.parse::<u64>().is_ok()));
            assert_eq!(parts.next(), None, "extra tokens in `{line}`");
        }
        assert_eq!(
            text.lines().count(),
            Metrics::default().render_text().lines().count()
        );
    }

    #[test]
    fn tenant_counters_render_as_trailing_two_token_lines() {
        let m = Metrics::default();
        // Untouched registry: rendering is identical to the snapshot's.
        assert_eq!(m.render_text(), m.snapshot().render_text());
        m.tenants.tenant(7).queries.fetch_add(3, Ordering::Relaxed);
        m.tenants
            .tenant(2)
            .ndp_quota_rejected
            .fetch_add(1, Ordering::Relaxed);
        // Same Arc on re-touch, not a fresh counter.
        m.tenants.tenant(7).queries.fetch_add(1, Ordering::Relaxed);
        assert_eq!(m.tenants.ids(), vec![2, 7]);
        let text = m.render_text();
        assert!(text.contains("\ntenant7.queries 4\n"), "{text}");
        assert!(text.contains("\ntenant2.ndp_quota_rejected 1\n"));
        // Tenant lines come after every fixed counter, sorted by id.
        let t2 = text.find("tenant2.").unwrap();
        let t7 = text.find("tenant7.").unwrap();
        assert!(t2 < t7);
        assert!(text.rfind("server_overload_refused").unwrap() < t2);
        // Still strictly `name value` per line.
        for line in text.lines() {
            assert_eq!(line.split(' ').count(), 2, "`{line}`");
        }
    }

    /// Spin until the thread-CPU clock visibly advances (its resolution can
    /// be coarse on some kernels), bounded so a broken clock still fails.
    fn burn_until_tick() {
        let a = thread_cpu_ns();
        let mut x = 1u64;
        for i in 0..200_000_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
            if i % 1_000_000 == 0 && thread_cpu_ns() > a {
                std::hint::black_box(x);
                return;
            }
        }
        std::hint::black_box(x);
        panic!("thread CPU clock did not advance after heavy spinning");
    }

    #[test]
    fn thread_cpu_clock_advances_under_load() {
        burn_until_tick();
    }

    #[test]
    fn cpu_guard_accumulates() {
        let c = AtomicU64::new(0);
        {
            let _g = CpuGuard::new(&c);
            burn_until_tick();
        }
        assert!(c.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn reduction_pct_formula() {
        let base = MetricsSnapshot {
            net_bytes_from_storage: 1000,
            ..Default::default()
        };
        let ndp = MetricsSnapshot {
            net_bytes_from_storage: 10,
            ..Default::default()
        };
        let r = ndp.reduction_pct(&base, |s| s.net_bytes_from_storage);
        assert!((r - 99.0).abs() < 1e-9);
    }
}
