//! Resource-governance primitives shared across the read path.
//!
//! The paper's resource control (§IV-D2) is *local* to a Page Store: a
//! bounded NDP pool that sheds work rather than queueing unboundedly.
//! Multi-tenant operation needs two more things that must travel *with*
//! the query, not live on any one node: who is asking ([`TenantId`]) and
//! how long they are willing to wait ([`QueryCtx::deadline`]). This
//! module defines that context plus the retry/backoff arithmetic the SAL
//! uses between replica rounds. Everything here is `std`-only — the
//! common crate deliberately has no external dependencies.

use std::time::{Duration, Instant};

/// A tenant (billing/isolation unit). Sessions carry one; the Page
/// Stores meter and bound NDP admission per tenant.
pub type TenantId = u32;

/// The tenant used when nothing was specified: in-process embedded use,
/// background engine work (redo distribution, replica tailing), and
/// legacy wire clients that predate the tenant handshake field.
pub const DEFAULT_TENANT: TenantId = 0;

/// Per-query context threaded from the session (or the network server)
/// down through the executor, the scan core and the SAL. `Copy` on
/// purpose: it crosses thread spawns and struct literals constantly and
/// must never be a reason to hold a lock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryCtx {
    pub tenant: TenantId,
    /// Absolute point in time after which the read path stops retrying
    /// and the scan loops abort with [`crate::Error::DeadlineExceeded`].
    /// `None` means no budget (the embedded default).
    pub deadline: Option<Instant>,
}

impl QueryCtx {
    /// The embedded default: anonymous tenant, no deadline.
    pub fn new() -> QueryCtx {
        QueryCtx {
            tenant: DEFAULT_TENANT,
            deadline: None,
        }
    }

    pub fn for_tenant(tenant: TenantId) -> QueryCtx {
        QueryCtx {
            tenant,
            deadline: None,
        }
    }

    pub fn with_deadline(mut self, deadline: Instant) -> QueryCtx {
        self.deadline = Some(deadline);
        self
    }

    /// Derive the deadline from a budget starting now. A zero budget
    /// means "no deadline" (the config's conventional off value).
    pub fn with_budget_ms(self, budget_ms: u64) -> QueryCtx {
        if budget_ms == 0 {
            return self;
        }
        self.with_deadline(Instant::now() + Duration::from_millis(budget_ms))
    }

    /// Has the budget expired?
    pub fn expired(&self) -> bool {
        matches!(self.deadline, Some(d) if Instant::now() >= d)
    }

    /// Error for an expired budget, naming the caller's phase.
    pub fn check(&self, what: &str) -> crate::Result<()> {
        if self.expired() {
            return Err(crate::Error::DeadlineExceeded(format!(
                "query deadline expired during {what}"
            )));
        }
        Ok(())
    }

    /// Time left before the deadline (`None` = unbounded).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

impl Default for QueryCtx {
    fn default() -> QueryCtx {
        QueryCtx::new()
    }
}

/// Jittered exponential backoff between retry rounds: base · 2^(round-1),
/// ±50 % deterministic jitter from a seed, capped. The jitter source is a
/// tiny xorshift — the workspace is offline and the common crate takes no
/// dependencies; statistical quality is irrelevant here, de-synchronizing
/// concurrent retriers is the whole point.
pub fn backoff_delay(base: Duration, round: u32, seed: u64) -> Duration {
    const CAP: Duration = Duration::from_millis(250);
    if base.is_zero() || round == 0 {
        return Duration::ZERO;
    }
    let exp = base.saturating_mul(1u32 << (round - 1).min(8));
    let exp = exp.min(CAP);
    // xorshift64 over (seed, round) for a stable-but-spread jitter factor.
    let mut x = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(u64::from(round));
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    // Map into [0.5, 1.5).
    let frac = (x % 1000) as f64 / 1000.0; // [0, 1)
    exp.mul_f64(0.5 + frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ctx_never_expires() {
        let ctx = QueryCtx::new();
        assert_eq!(ctx.tenant, DEFAULT_TENANT);
        assert!(!ctx.expired());
        assert!(ctx.check("anything").is_ok());
        assert!(ctx.remaining().is_none());
    }

    #[test]
    fn zero_budget_means_no_deadline() {
        let ctx = QueryCtx::for_tenant(7).with_budget_ms(0);
        assert_eq!(ctx.tenant, 7);
        assert!(ctx.deadline.is_none());
    }

    #[test]
    fn expired_deadline_is_an_error_naming_the_phase() {
        let ctx = QueryCtx::new().with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(ctx.expired());
        let err = ctx.check("page read").unwrap_err();
        assert!(matches!(err, crate::Error::DeadlineExceeded(_)));
        assert!(err.to_string().contains("page read"), "{err}");
        assert_eq!(ctx.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn backoff_grows_with_rounds_and_stays_bounded() {
        let base = Duration::from_millis(2);
        let d1 = backoff_delay(base, 1, 42);
        let d3 = backoff_delay(base, 3, 42);
        // Jitter is ±50 %: round 1 ∈ [1, 3) ms, round 3 ∈ [4, 12) ms.
        assert!(d1 >= Duration::from_millis(1) && d1 < Duration::from_millis(3));
        assert!(d3 >= Duration::from_millis(4) && d3 < Duration::from_millis(12));
        // Hard cap regardless of round.
        assert!(backoff_delay(base, 30, 1) <= Duration::from_millis(375));
        // Degenerate inputs are free.
        assert_eq!(backoff_delay(Duration::ZERO, 5, 9), Duration::ZERO);
        assert_eq!(backoff_delay(base, 0, 9), Duration::ZERO);
    }

    #[test]
    fn jitter_varies_with_seed() {
        let base = Duration::from_millis(10);
        let spread: std::collections::HashSet<u128> = (0..16)
            .map(|seed| backoff_delay(base, 2, seed).as_nanos())
            .collect();
        assert!(spread.len() > 8, "jitter collapsed: {spread:?}");
    }
}
