//! B+ tree behaviour: build, lookup, insert/split, delete-mark, update,
//! leaf scans, and §IV-C4 batch extraction with range boundaries.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use taurus_btree::builder::{bulk_build, count_rows};
use taurus_btree::{BTree, RedoOp, ScanRange, TreeStore};
use taurus_common::schema::{Column, IndexDef, TableSchema};
use taurus_common::{DataType, Error, IndexId, PageNo, Result, SpaceId, Value};
use taurus_page::{Page, RecordView};

/// In-memory TreeStore applying ops exactly like the engine would.
struct MemStore {
    pages: RwLock<HashMap<PageNo, Arc<Page>>>,
    next: AtomicU32,
    latch: RwLock<()>,
    lsn: AtomicU64,
}

impl MemStore {
    fn new() -> MemStore {
        MemStore {
            pages: RwLock::new(HashMap::new()),
            next: AtomicU32::new(0),
            latch: RwLock::new(()),
            lsn: AtomicU64::new(1),
        }
    }
}

impl TreeStore for MemStore {
    fn read(&self, page_no: PageNo) -> Result<Arc<Page>> {
        self.pages
            .read()
            .get(&page_no)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("page {page_no}")))
    }

    fn allocate(&self) -> PageNo {
        self.next.fetch_add(1, Ordering::SeqCst)
    }

    fn write(&self, ops: Vec<RedoOp>) -> Result<()> {
        let mut pages = self.pages.write();
        self.lsn.fetch_add(1, Ordering::SeqCst);
        for op in ops {
            match op {
                RedoOp::NewPage(p) => {
                    pages.insert(p.page_no(), Arc::new(p));
                }
                RedoOp::InsertRecord {
                    page_no,
                    slot_idx,
                    rec,
                } => {
                    let p = pages.get_mut(&page_no).unwrap();
                    Arc::make_mut(p).insert_at_slot(slot_idx as usize, &rec)?;
                }
                RedoOp::SetDeleteMark {
                    page_no,
                    rec_at,
                    mark,
                } => {
                    let p = pages.get_mut(&page_no).unwrap();
                    taurus_page::record::set_delete_mark(
                        Arc::make_mut(p).raw_mut(),
                        rec_at as usize,
                        mark,
                    );
                }
                RedoOp::WriteBytes { page_no, at, bytes } => {
                    let p = pages.get_mut(&page_no).unwrap();
                    let raw = Arc::make_mut(p).raw_mut();
                    raw[at as usize..at as usize + bytes.len()].copy_from_slice(&bytes);
                }
                RedoOp::SetPrev { page_no, prev } => {
                    let p = pages.get_mut(&page_no).unwrap();
                    Arc::make_mut(p).set_prev(prev);
                }
            }
        }
        Ok(())
    }

    fn structure_latch(&self) -> &RwLock<()> {
        &self.latch
    }

    fn current_lsn(&self) -> u64 {
        self.lsn.load(Ordering::SeqCst)
    }
}

fn test_tree() -> BTree {
    let schema = TableSchema::new(
        "t",
        vec![
            Column::new("id", DataType::BigInt),
            Column::new("val", DataType::Int),
            Column::new("name", DataType::Varchar(32)),
        ],
        vec![0],
    );
    BTree::new(IndexDef {
        name: "pk".into(),
        index_id: IndexId(1),
        space: SpaceId(1),
        table: schema,
        key_cols: vec![0],
        is_primary: true,
    })
}

fn row(id: i64) -> Vec<Value> {
    vec![
        Value::Int(id),
        Value::Int(id * 7 % 100),
        Value::str(format!("name-{id}")),
    ]
}

const PAGE: usize = 1024;

fn build(n: i64) -> (BTree, MemStore) {
    let tree = test_tree();
    let store = MemStore::new();
    bulk_build(&tree, &store, PAGE, (0..n).map(|i| row(i * 2)), 1).unwrap();
    (tree, store)
}

/// All keys by walking the leaf chain.
fn scan_keys(tree: &BTree, store: &MemStore) -> Vec<i64> {
    let mut out = Vec::new();
    let mut page = tree.seek_leaf(store, &ScanRange::full()).unwrap().unwrap();
    loop {
        for off in page.iter_chain() {
            let v = RecordView::new(page.record_at(off), &tree.leaf_layout);
            if !v.delete_mark() {
                out.push(v.value(0).as_int().unwrap());
            }
        }
        match page.next() {
            taurus_page::NO_PAGE => break,
            n => page = store.read(n).unwrap(),
        }
    }
    out
}

#[test]
fn bulk_build_preserves_order_and_counts() {
    let (tree, store) = build(500);
    assert!(
        tree.height() >= 2,
        "500 rows on 1 KB pages must not fit one leaf"
    );
    assert!(tree.n_leaves() > 4);
    let keys = scan_keys(&tree, &store);
    assert_eq!(keys.len(), 500);
    assert!(keys.windows(2).all(|w| w[0] < w[1]));
    assert_eq!(count_rows(&tree, &store).unwrap(), 500);
}

#[test]
fn bulk_build_deep_tree() {
    let (tree, store) = build(5000);
    assert!(
        tree.height() >= 3,
        "expected a level-2 tree, got {}",
        tree.height()
    );
    let keys = scan_keys(&tree, &store);
    assert_eq!(keys.len(), 5000);
    assert_eq!(keys[0], 0);
    assert_eq!(*keys.last().unwrap(), 9998);
}

#[test]
fn empty_build_then_insert() {
    let tree = test_tree();
    let store = MemStore::new();
    bulk_build(&tree, &store, PAGE, std::iter::empty(), 1).unwrap();
    assert_eq!(tree.n_leaves(), 0);
    tree.insert(&store, &row(42), 2).unwrap();
    tree.insert(&store, &row(7), 2).unwrap();
    assert_eq!(scan_keys(&tree, &store), vec![7, 42]);
}

#[test]
fn point_lookup_hit_and_miss() {
    let (tree, store) = build(200);
    let hit = tree
        .get(&store, &tree.encode_search_key(&[Value::Int(42 * 2)]))
        .unwrap();
    assert!(hit.is_some());
    let rec = hit.unwrap();
    let v = RecordView::new(&rec.bytes, &tree.leaf_layout);
    assert_eq!(v.value(0), Value::Int(84));
    // Odd keys were never inserted.
    let miss = tree
        .get(&store, &tree.encode_search_key(&[Value::Int(85)]))
        .unwrap();
    assert!(miss.is_none());
}

#[test]
fn inserts_with_splits_keep_everything() {
    let (tree, store) = build(300); // even keys 0..598
    let leaves_before = tree.n_leaves();
    // Insert all the odd keys (forces many splits).
    for i in 0..300 {
        tree.insert(&store, &row(i * 2 + 1), 5).unwrap();
    }
    assert!(tree.n_leaves() > leaves_before);
    let keys = scan_keys(&tree, &store);
    assert_eq!(keys.len(), 600);
    assert!(keys.windows(2).all(|w| w[0] < w[1]));
    // Every key findable by point lookup (exercises parent separators).
    for k in [0i64, 1, 299, 300, 597, 598, 599] {
        assert!(
            tree.get(&store, &tree.encode_search_key(&[Value::Int(k)]))
                .unwrap()
                .is_some(),
            "key {k} lost after splits"
        );
    }
}

#[test]
fn duplicate_insert_rejected() {
    let (tree, store) = build(10);
    assert!(tree.insert(&store, &row(4), 5).is_err());
}

#[test]
fn delete_mark_stamps_writer() {
    let (tree, store) = build(50);
    let key = tree.encode_search_key(&[Value::Int(20)]);
    let old = tree.set_delete_mark(&store, &key, 99, true).unwrap();
    let old_view_trx = {
        let v = RecordView::new(&old, &tree.leaf_layout);
        v.trx_id()
    };
    assert_eq!(old_view_trx, 1, "previous image keeps the old writer");
    let loc = tree.get(&store, &key).unwrap().unwrap();
    let v = RecordView::new(&loc.bytes, &tree.leaf_layout);
    assert!(v.delete_mark());
    assert_eq!(v.trx_id(), 99);
    assert_eq!(count_rows(&tree, &store).unwrap(), 49);
    // Unmark (rollback path).
    tree.set_delete_mark(&store, &key, 1, false).unwrap();
    assert_eq!(count_rows(&tree, &store).unwrap(), 50);
}

#[test]
fn update_in_place_fixed_width() {
    let (tree, store) = build(50);
    let mut r = row(20);
    r[1] = Value::Int(-12345);
    let old = tree.update_in_place(&store, &r, 42).unwrap();
    assert!(!old.is_empty());
    let key = tree.encode_search_key(&[Value::Int(20)]);
    let loc = tree.get(&store, &key).unwrap().unwrap();
    let v = RecordView::new(&loc.bytes, &tree.leaf_layout);
    assert_eq!(v.value(1), Value::Int(-12345));
    assert_eq!(v.trx_id(), 42);
    // Changing a varchar's length is rejected.
    let mut r2 = row(20);
    r2[1] = Value::Int(-12345);
    r2[2] = Value::str("this-name-is-much-longer-now!!");
    assert!(tree.update_in_place(&store, &r2, 43).is_err());
}

#[test]
fn batch_extraction_covers_all_leaves_in_order() {
    let (tree, store) = build(2000);
    let mut collected: Vec<PageNo> = Vec::new();
    let mut resume: Option<Vec<u8>> = None;
    let mut rounds = 0;
    loop {
        let (pages, lsn, next) = tree
            .collect_leaf_batch(&store, &ScanRange::full(), resume.as_deref(), 7)
            .unwrap();
        assert!(lsn > 0);
        assert!(pages.len() <= 7);
        collected.extend(&pages);
        rounds += 1;
        match next {
            Some(k) => resume = Some(k),
            None => break,
        }
    }
    assert!(rounds > 3, "expected multiple batches");
    // The batches must enumerate exactly the leaf chain, in order.
    let mut chain: Vec<PageNo> = Vec::new();
    let mut page = tree.seek_leaf(&store, &ScanRange::full()).unwrap().unwrap();
    loop {
        chain.push(page.page_no());
        match page.next() {
            taurus_page::NO_PAGE => break,
            n => page = store.read(n).unwrap(),
        }
    }
    assert_eq!(collected, chain);
}

#[test]
fn batch_extraction_respects_range_boundaries() {
    let (tree, store) = build(2000); // keys 0..3998 even
    let lo = tree.encode_search_key(&[Value::Int(1000)]);
    let hi = tree.encode_search_key(&[Value::Int(1400)]);
    let range = ScanRange {
        lower: Some((lo, true)),
        upper: Some((hi, true)),
    };
    let (pages, _, resume) = tree
        .collect_leaf_batch(&store, &range, None, 10_000)
        .unwrap();
    assert!(resume.is_none());
    // The selected leaves must cover [1000,1400] and little more.
    let full = tree
        .collect_leaf_batch(&store, &ScanRange::full(), None, 10_000)
        .unwrap()
        .0;
    assert!(
        pages.len() < full.len() / 2,
        "{} vs {}",
        pages.len(),
        full.len()
    );
    // All keys in range appear in the collected pages.
    let mut seen = Vec::new();
    for no in &pages {
        let p = store.read(*no).unwrap();
        for off in p.iter_chain() {
            let v = RecordView::new(p.record_at(off), &tree.leaf_layout);
            let k = v.value(0).as_int().unwrap();
            if (1000..=1400).contains(&k) {
                seen.push(k);
            }
        }
    }
    seen.sort_unstable();
    let expect: Vec<i64> = (1000..=1400).filter(|k| k % 2 == 0).collect();
    assert_eq!(seen, expect);
}

#[test]
fn batch_extraction_single_leaf_tree() {
    let (tree, store) = build(5);
    assert_eq!(tree.height(), 1);
    let (pages, _, resume) = tree
        .collect_leaf_batch(&store, &ScanRange::full(), None, 10)
        .unwrap();
    assert_eq!(pages, vec![tree.root()]);
    assert!(resume.is_none());
}

#[test]
fn scan_range_semantics() {
    let k = |v: i64| taurus_common::schema::encode_key(&[Value::Int(v)], &[DataType::BigInt]);
    let r = ScanRange {
        lower: Some((k(10), true)),
        upper: Some((k(20), false)),
    };
    assert!(!r.contains(&k(9)));
    assert!(r.contains(&k(10)));
    assert!(r.contains(&k(19)));
    assert!(!r.contains(&k(20)));
    assert!(r.past_upper(&k(20)));
    assert!(!r.past_upper(&k(19)));
    // Prefix semantics on a composite key.
    let dts = [DataType::BigInt, DataType::BigInt];
    let prefix = taurus_common::schema::encode_key(&[Value::Int(5)], &dts[..1]);
    let full_key = taurus_common::schema::encode_key(&[Value::Int(5), Value::Int(99)], &dts);
    let pr = ScanRange {
        lower: Some((prefix.clone(), true)),
        upper: Some((prefix.clone(), true)),
    };
    assert!(
        pr.contains(&full_key),
        "key extending an inclusive prefix bound matches"
    );
    assert!(!pr.past_upper(&full_key));
}
