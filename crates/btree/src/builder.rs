//! Bottom-up bulk build (the TPC-H load path).
//!
//! Rows must arrive in key order. Leaves are packed to a fill factor that
//! leaves headroom for later inserts, chained left-to-right, then internal
//! levels are built bottom-up with first-key separators. All pages are
//! emitted through [`TreeStore::write`] as `NewPage` redo — exactly how a
//! Taurus master materializes pages in Page Stores (it never writes pages,
//! only log records).

use taurus_common::{Result, TrxId, Value};
use taurus_page::{encode_record, Page, RecordMeta, RecordView};

use crate::{encode_node_ptr, BTree, RedoOp, TreeStore};

/// How many `NewPage` ops to buffer per `TreeStore::write` call.
const WRITE_BATCH: usize = 64;

/// Free bytes to leave per leaf for future point inserts (~6 %).
fn fill_reserve(page_size: usize) -> usize {
    page_size / 16
}

struct LevelBuilder<'a> {
    store: &'a dyn TreeStore,
    pending: Vec<RedoOp>,
}

impl<'a> LevelBuilder<'a> {
    fn flush_if_full(&mut self) -> Result<()> {
        if self.pending.len() >= WRITE_BATCH {
            let ops = std::mem::take(&mut self.pending);
            self.store.write(ops)?;
        }
        Ok(())
    }

    fn emit(&mut self, page: Page) -> Result<()> {
        self.pending.push(RedoOp::NewPage(page));
        self.flush_if_full()
    }

    fn finish(mut self) -> Result<()> {
        if !self.pending.is_empty() {
            self.store.write(std::mem::take(&mut self.pending))?;
        }
        Ok(())
    }
}

/// Build the tree from sorted rows (leaf-record column order). Replaces
/// any previous content. Returns the number of leaf pages.
pub fn bulk_build(
    tree: &BTree,
    store: &dyn TreeStore,
    page_size: usize,
    rows: impl Iterator<Item = Vec<Value>>,
    trx_id: TrxId,
) -> Result<u32> {
    let _x = store.structure_latch().write();
    let reserve = fill_reserve(page_size);
    let mut lb = LevelBuilder {
        store,
        pending: Vec::new(),
    };

    // --- leaves -----------------------------------------------------------
    // (first_key, page_no) of each completed leaf.
    let mut leaf_index: Vec<(Vec<u8>, u32)> = Vec::new();
    let mut cur: Option<Page> = None;
    let mut cur_first_key: Vec<u8> = Vec::new();
    let mut prev_no: Option<u32> = None;
    let mut rec_buf: Vec<u8> = Vec::new();

    for row in rows {
        rec_buf.clear();
        encode_record(
            &tree.leaf_layout,
            &row,
            RecordMeta::ordinary(trx_id),
            None,
            &mut rec_buf,
        )?;
        let needs_new = match &cur {
            None => true,
            Some(p) => !p.fits(rec_buf.len() + reserve),
        };
        if needs_new {
            if let Some(mut done) = cur.take() {
                let no = done.page_no();
                if let Some(prev) = prev_no {
                    done.set_prev(prev);
                    // Fix the previous page's next pointer after the fact.
                    lb.pending.push(RedoOp::WriteBytes {
                        page_no: prev,
                        at: 36,
                        bytes: no.to_le_bytes().to_vec(),
                    });
                }
                prev_no = Some(no);
                leaf_index.push((std::mem::take(&mut cur_first_key), no));
                lb.emit(done)?;
            }
            let no = store.allocate();
            cur = Some(Page::new_index(
                page_size,
                tree.def.space,
                no,
                tree.def.index_id.0,
                0,
            ));
            cur_first_key = tree.key_of_row(&row);
        }
        cur.as_mut().unwrap().append_record(&rec_buf)?;
    }
    if let Some(mut done) = cur.take() {
        let no = done.page_no();
        if let Some(prev) = prev_no {
            done.set_prev(prev);
            lb.pending.push(RedoOp::WriteBytes {
                page_no: prev,
                at: 36,
                bytes: no.to_le_bytes().to_vec(),
            });
        }
        leaf_index.push((std::mem::take(&mut cur_first_key), no));
        lb.emit(done)?;
    }

    // Empty table: a single empty leaf root.
    if leaf_index.is_empty() {
        let no = store.allocate();
        let root = Page::new_index(page_size, tree.def.space, no, tree.def.index_id.0, 0);
        lb.emit(root)?;
        lb.finish()?;
        tree.set_shape(no, 1, 0);
        return Ok(0);
    }
    let n_leaves = leaf_index.len() as u32;

    // --- internal levels ----------------------------------------------------
    let mut level: u16 = 1;
    let mut entries = leaf_index;
    while entries.len() > 1 {
        let mut next_entries: Vec<(Vec<u8>, u32)> = Vec::new();
        let mut cur: Option<Page> = None;
        let mut cur_first: Vec<u8> = Vec::new();
        let mut prev_no: Option<u32> = None;
        let mut node_buf: Vec<u8> = Vec::new();
        for (sep, child) in entries {
            node_buf.clear();
            encode_node_ptr(&sep, child, &mut node_buf);
            let needs_new = match &cur {
                None => true,
                Some(p) => !p.fits(node_buf.len() + reserve),
            };
            if needs_new {
                if let Some(mut done) = cur.take() {
                    let no = done.page_no();
                    if let Some(prev) = prev_no {
                        done.set_prev(prev);
                        lb.pending.push(RedoOp::WriteBytes {
                            page_no: prev,
                            at: 36,
                            bytes: no.to_le_bytes().to_vec(),
                        });
                    }
                    prev_no = Some(no);
                    next_entries.push((std::mem::take(&mut cur_first), no));
                    lb.emit(done)?;
                }
                let no = store.allocate();
                cur = Some(Page::new_index(
                    page_size,
                    tree.def.space,
                    no,
                    tree.def.index_id.0,
                    level,
                ));
                cur_first = sep.clone();
            }
            cur.as_mut().unwrap().append_record(&node_buf)?;
        }
        if let Some(mut done) = cur.take() {
            let no = done.page_no();
            if let Some(prev) = prev_no {
                done.set_prev(prev);
                lb.pending.push(RedoOp::WriteBytes {
                    page_no: prev,
                    at: 36,
                    bytes: no.to_le_bytes().to_vec(),
                });
            }
            next_entries.push((std::mem::take(&mut cur_first), no));
            lb.emit(done)?;
        }
        entries = next_entries;
        level += 1;
    }
    lb.finish()?;
    let root = entries[0].1;
    tree.set_shape(root, level as u32, n_leaves);
    Ok(n_leaves)
}

/// Count rows by walking the leaf chain (diagnostics / tests).
pub fn count_rows(tree: &BTree, store: &dyn TreeStore) -> Result<u64> {
    let mut n = 0u64;
    let mut page = match tree.seek_leaf(store, &crate::ScanRange::full())? {
        Some(p) => p,
        None => return Ok(0),
    };
    loop {
        for off in page.iter_chain() {
            let v = RecordView::new(page.record_at(off), &tree.leaf_layout);
            if !v.delete_mark() {
                n += 1;
            }
        }
        match page.next() {
            taurus_page::NO_PAGE => break,
            next => page = store.read(next)?,
        }
    }
    Ok(n)
}
