//! B+ trees over the page substrate (§IV-C4).
//!
//! An InnoDB table "is always accessed by scanning an index (primary or
//! secondary)". This crate provides those trees: bottom-up bulk build,
//! point insert with splits, delete-marking, in-place updates, leaf-chain
//! range scans, and — the NDP-relevant part — *level-1 batch extraction*:
//! descend with the structure latch held shared, collect child leaf page
//! numbers bounded by the scan range ("a batch read is aware of scan
//! boundaries … because level-1 pages store 'boundary' values"), capture
//! the LSN, release. Page Stores then serve the page versions matching
//! that LSN while the tree keeps changing.
//!
//! Concurrency model: pages are immutable snapshots (`Arc<Page>`); all
//! structural mutation is funnelled through [`TreeStore::write`] under the
//! store's structure latch held exclusively, while batch extraction holds
//! it shared — the moral equivalent of the paper's "shared page locks …
//! from the root page until a level-1 page".

pub mod builder;

use std::borrow::Cow;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use taurus_common::schema::{encode_key, IndexDef};
use taurus_common::{DataType, Error, Lsn, PageNo, Result, TrxId, Value};
use taurus_page::{encode_record, Page, RecType, RecordLayout, RecordMeta, RecordView, NO_PAGE};

/// Redo-shaped mutation operations the tree emits; the engine mirrors them
/// into the buffer pool and ships them as redo records through the SAL.
#[derive(Clone, Debug)]
pub enum RedoOp {
    NewPage(Page),
    InsertRecord {
        page_no: PageNo,
        slot_idx: u16,
        rec: Vec<u8>,
    },
    SetDeleteMark {
        page_no: PageNo,
        rec_at: u16,
        mark: bool,
    },
    WriteBytes {
        page_no: PageNo,
        at: u16,
        bytes: Vec<u8>,
    },
    SetPrev {
        page_no: PageNo,
        prev: PageNo,
    },
}

/// The tree's view of its storage (implemented by the engine: buffer pool
/// + SAL underneath).
pub trait TreeStore: Send + Sync {
    /// Read a page of this tree's space.
    fn read(&self, page_no: PageNo) -> Result<Arc<Page>>;

    /// Read a page *as of* `lsn`. Stores without page versioning (the
    /// master: its own writes are always newest) serve the live page;
    /// read replicas serve the exact at-LSN version, so one batch
    /// extraction's structure walk and page fetches all observe a single
    /// cut — a split landing mid-batch cannot tear record placement
    /// across the pages of the batch.
    fn read_pinned(&self, page_no: PageNo, _lsn: Lsn) -> Result<Arc<Page>> {
        self.read(page_no)
    }

    /// Can a failed pinned walk be retried at a fresh cut? `true` on read
    /// replicas, where a hot page's at-cut version can age out of the
    /// Page Stores' retention window mid-walk — the whole walk restarts
    /// at a newer captured LSN (never mixing cuts). `false` on the
    /// master, whose reads cannot go stale.
    fn pin_retryable(&self) -> bool {
        false
    }
    /// Allocate the next page number in this space.
    fn allocate(&self) -> PageNo;
    /// Apply mutations: buffer pool + redo through the SAL.
    fn write(&self, ops: Vec<RedoOp>) -> Result<()>;
    /// The per-space structure latch (paper: S-latches root→level-1).
    fn structure_latch(&self) -> &RwLock<()>;
    /// Current durable LSN (stamped on batch reads).
    fn current_lsn(&self) -> Lsn;
}

/// Run `f` with a freshly captured LSN, restarting — whole walk, fresh
/// cut — while the store reports the failure class retryable
/// (`InvalidState`: a trimmed at-cut version on a replica), bounded by
/// the shared staleness-retry policy. See [`TreeStore::pin_retryable`].
fn with_pin_retry<T>(store: &dyn TreeStore, mut f: impl FnMut(Lsn) -> Result<T>) -> Result<T> {
    let t0 = std::time::Instant::now();
    loop {
        match f(store.current_lsn()) {
            Ok(v) => return Ok(v),
            Err(e @ Error::InvalidState(_))
                if store.pin_retryable()
                    && t0.elapsed() < taurus_common::config::STALE_PIN_RETRY =>
            {
                let _ = e;
                std::thread::yield_now();
            }
            Err(e) => return Err(e),
        }
    }
}

/// Key range for scans; bounds are encoded (possibly prefix) keys.
#[derive(Clone, Debug, Default)]
pub struct ScanRange {
    pub lower: Option<(Vec<u8>, bool)>,
    pub upper: Option<(Vec<u8>, bool)>,
}

impl ScanRange {
    pub fn full() -> ScanRange {
        ScanRange::default()
    }

    pub fn point(key: Vec<u8>) -> ScanRange {
        ScanRange {
            lower: Some((key.clone(), true)),
            upper: Some((key, true)),
        }
    }

    /// Does `key` fall within the range? Prefix bounds use group semantics:
    /// a key *extending* an inclusive bound matches it.
    pub fn contains(&self, key: &[u8]) -> bool {
        if let Some((lo, inc)) = &self.lower {
            let pass = if *inc {
                key >= lo.as_slice()
            } else {
                key > lo.as_slice() && !key.starts_with(lo)
            };
            if !pass {
                return false;
            }
        }
        if let Some((hi, inc)) = &self.upper {
            let pass = if *inc {
                key <= hi.as_slice() || key.starts_with(hi)
            } else {
                key < hi.as_slice()
            };
            if !pass {
                return false;
            }
        }
        true
    }

    /// Is `key` strictly above every key in the range (early scan stop)?
    pub fn past_upper(&self, key: &[u8]) -> bool {
        match &self.upper {
            None => false,
            Some((hi, true)) => key > hi.as_slice() && !key.starts_with(hi),
            Some((hi, false)) => key >= hi.as_slice(),
        }
    }
}

/// Location of a record found by point lookup.
#[derive(Clone, Debug)]
pub struct RecordLoc {
    pub page_no: PageNo,
    pub rec_at: u16,
    pub bytes: Vec<u8>,
}

/// One B+ tree (primary or secondary index).
pub struct BTree {
    pub def: IndexDef,
    root: AtomicU32,
    height: AtomicU32,
    /// Layout of leaf records (the index's stored columns).
    pub leaf_layout: RecordLayout,
    /// Layout of internal node-pointer records: (key bytes, child page no).
    node_layout: RecordLayout,
    /// Positions of the key columns within leaf records.
    pub key_positions: Vec<usize>,
    key_dtypes: Vec<DataType>,
    n_leaves: AtomicU32,
}

pub(crate) fn node_layout() -> RecordLayout {
    RecordLayout::new(vec![DataType::Varchar(2048), DataType::Int])
}

/// Encode a node-pointer record: raw separator key bytes + child page.
pub(crate) fn encode_node_ptr(key: &[u8], child: PageNo, out: &mut Vec<u8>) {
    // Mirrors taurus-page's record encoding for [Varchar(2048), Int]:
    // 13-byte header + 1-byte null bitmap + 2-byte varlen + key + child.
    out.push(RecType::NodePtr as u8);
    out.extend_from_slice(&0u16.to_le_bytes()); // next (page fixes up)
    out.extend_from_slice(&0u16.to_le_bytes()); // heap_no
    out.extend_from_slice(&0u64.to_le_bytes()); // trx_id
    out.push(0); // null bitmap
    out.extend_from_slice(&(key.len() as u16).to_le_bytes());
    out.extend_from_slice(key);
    out.extend_from_slice(&(child as i32).to_le_bytes());
}

impl BTree {
    pub fn new(def: IndexDef) -> BTree {
        let stored = def.stored_cols();
        let leaf_layout =
            RecordLayout::new(stored.iter().map(|&c| def.table.columns[c].dtype).collect());
        let key_positions = def.key_positions_in_record();
        let key_dtypes = def.key_dtypes();
        BTree {
            def,
            root: AtomicU32::new(NO_PAGE),
            height: AtomicU32::new(0),
            leaf_layout,
            node_layout: node_layout(),
            key_positions,
            key_dtypes,
            n_leaves: AtomicU32::new(0),
        }
    }

    pub fn root(&self) -> PageNo {
        self.root.load(Ordering::SeqCst)
    }

    pub fn height(&self) -> u32 {
        self.height.load(Ordering::SeqCst)
    }

    pub fn n_leaves(&self) -> u32 {
        self.n_leaves.load(Ordering::SeqCst)
    }

    /// Install the tree's shape directly: the bulk builder sets it after
    /// a bottom-up build, and read replicas set it from replicated
    /// shape/load records (shape lives outside the page substrate, so it
    /// cannot arrive via page redo).
    pub fn set_shape(&self, root: PageNo, height: u32, n_leaves: u32) {
        self.root.store(root, Ordering::SeqCst);
        self.height.store(height, Ordering::SeqCst);
        self.n_leaves.store(n_leaves, Ordering::SeqCst);
    }

    /// Encode the index key of a *stored row* (leaf-record column order).
    pub fn key_of_row(&self, stored_row: &[Value]) -> Vec<u8> {
        let vals: Vec<Value> = self
            .key_positions
            .iter()
            .map(|&p| stored_row[p].clone())
            .collect();
        encode_key(&vals, &self.key_dtypes)
    }

    /// Encode a (possibly prefix) search key from key-column values.
    pub fn encode_search_key(&self, key_values: &[Value]) -> Vec<u8> {
        encode_key(key_values, &self.key_dtypes[..key_values.len()])
    }

    /// Extract the encoded key from a leaf record.
    pub fn key_of_leaf_record(&self, rec: &RecordView<'_>) -> Vec<u8> {
        let vals: Vec<Value> = self.key_positions.iter().map(|&p| rec.value(p)).collect();
        encode_key(&vals, &self.key_dtypes)
    }

    fn leaf_key_extractor<'a>(&'a self) -> impl Fn(&'a [u8]) -> Cow<'a, [u8]> {
        move |bytes: &'a [u8]| {
            let view = RecordView::new(bytes, &self.leaf_layout);
            Cow::Owned(self.key_of_leaf_record(&view))
        }
    }

    fn node_key_extractor<'a>(&'a self) -> impl Fn(&'a [u8]) -> Cow<'a, [u8]> {
        move |bytes: &'a [u8]| {
            let view = RecordView::new(bytes, &self.node_layout);
            Cow::Borrowed(view.field_bytes(0))
        }
    }

    /// Child page referenced by a node-pointer record.
    fn node_child(&self, rec: &RecordView<'_>) -> PageNo {
        rec.value(1).as_int().expect("node child") as PageNo
    }

    /// Pick the child to descend into for `key`: the rightmost entry whose
    /// separator is `<= key` (first entry if none).
    fn pick_child(&self, page: &Page, key: &[u8]) -> PageNo {
        let (idx, exact) = page.lower_bound(key, self.node_key_extractor());
        let n = page.n_slots() as usize;
        let pick = if exact { idx } else { idx.saturating_sub(1) }.min(n.saturating_sub(1));
        let off = page
            .slot_offsets()
            .nth(pick)
            .expect("non-empty internal page");
        let rec = RecordView::new(page.record_at(off), &self.node_layout);
        self.node_child(&rec)
    }

    /// Descend from the root to the leaf that may contain `key`, with
    /// every page read pinned at `lsn`. Returns the internal-page path
    /// (for splits) and the leaf. The pin makes the walk a single cut:
    /// on a read replica, a split applied by the tailer *between* the
    /// parent read and the child read would otherwise leave the target
    /// key in a sibling the stale parent pointer never reaches. (On the
    /// master `read_pinned` is a plain read, and writers hold the
    /// structure latch anyway.)
    fn descend(
        &self,
        store: &dyn TreeStore,
        key: &[u8],
        lsn: Lsn,
    ) -> Result<(Vec<Arc<Page>>, Arc<Page>)> {
        let root = self.root();
        if root == NO_PAGE {
            return Err(Error::InvalidState("empty tree".into()));
        }
        let mut path = Vec::new();
        let mut page = store.read_pinned(root, lsn)?;
        while !page.is_leaf() {
            let child = self.pick_child(&page, key);
            path.push(page);
            page = store.read_pinned(child, lsn)?;
        }
        Ok((path, page))
    }

    /// Point lookup by full encoded key.
    pub fn get(&self, store: &dyn TreeStore, key: &[u8]) -> Result<Option<RecordLoc>> {
        if self.root() == NO_PAGE {
            return Ok(None);
        }
        with_pin_retry(store, |lsn| {
            let (_, leaf) = self.descend(store, key, lsn)?;
            let (idx, exact) = leaf.lower_bound(key, self.leaf_key_extractor());
            if !exact {
                return Ok(None);
            }
            let off = leaf.slot_offsets().nth(idx).unwrap();
            let view = RecordView::new(leaf.record_at(off), &self.leaf_layout);
            Ok(Some(RecordLoc {
                page_no: leaf.page_no(),
                rec_at: off,
                bytes: view.raw().to_vec(),
            }))
        })
    }

    /// Insert a stored row. Duplicate full keys are rejected.
    pub fn insert(&self, store: &dyn TreeStore, row: &[Value], trx_id: TrxId) -> Result<()> {
        let _x = store.structure_latch().write();
        let key = self.key_of_row(row);
        let mut rec = Vec::with_capacity(64);
        encode_record(
            &self.leaf_layout,
            row,
            RecordMeta::ordinary(trx_id),
            None,
            &mut rec,
        )?;
        if self.root() == NO_PAGE {
            return Err(Error::InvalidState(
                "insert into un-built tree: bulk_build first (0 rows is fine)".into(),
            ));
        }
        let (path, leaf) = self.descend(store, &key, store.current_lsn())?;
        let (idx, exact) = leaf.lower_bound(&key, self.leaf_key_extractor());
        if exact {
            return Err(Error::InvalidState(format!(
                "duplicate key in index {}",
                self.def.name
            )));
        }
        if leaf.fits(rec.len()) {
            return store.write(vec![RedoOp::InsertRecord {
                page_no: leaf.page_no(),
                slot_idx: idx as u16,
                rec,
            }]);
        }
        self.split_and_insert(store, path, leaf, idx, rec)
    }

    /// Split `leaf` and insert. Both halves are rewritten as full page
    /// images (coarser than InnoDB's redo, but identical in effect).
    fn split_and_insert(
        &self,
        store: &dyn TreeStore,
        path: Vec<Arc<Page>>,
        leaf: Arc<Page>,
        insert_idx: usize,
        rec: Vec<u8>,
    ) -> Result<()> {
        let mut recs: Vec<Vec<u8>> = leaf
            .slot_offsets()
            .map(|off| {
                RecordView::new(leaf.record_at(off), &self.leaf_layout)
                    .raw()
                    .to_vec()
            })
            .collect();
        recs.insert(insert_idx, rec);
        let mid = recs.len() / 2;
        let right_no = store.allocate();
        let page_size = leaf.byte_len();
        let mut left = Page::new_index(page_size, leaf.space(), leaf.page_no(), leaf.index_id(), 0);
        let mut right = Page::new_index(page_size, leaf.space(), right_no, leaf.index_id(), 0);
        for r in &recs[..mid] {
            left.append_record(r)?;
        }
        for r in &recs[mid..] {
            right.append_record(r)?;
        }
        left.set_prev(leaf.prev());
        left.set_next(right_no);
        right.set_prev(leaf.page_no());
        right.set_next(leaf.next());
        let mut ops = Vec::with_capacity(4);
        if leaf.next() != NO_PAGE {
            ops.push(RedoOp::SetPrev {
                page_no: leaf.next(),
                prev: right_no,
            });
        }
        ops.push(RedoOp::NewPage(left));
        ops.push(RedoOp::NewPage(right));
        let sep = {
            let v = RecordView::new(&recs[mid], &self.leaf_layout);
            self.key_of_leaf_record(&v)
        };
        let mut node_rec = Vec::with_capacity(sep.len() + 24);
        encode_node_ptr(&sep, right_no, &mut node_rec);
        self.n_leaves.fetch_add(1, Ordering::SeqCst);
        self.insert_into_parent(store, path, leaf.page_no(), node_rec, sep, ops)
    }

    /// Insert a node-pointer record into the parent, splitting upward as
    /// needed; `ops` accumulates and is written once at the end.
    fn insert_into_parent(
        &self,
        store: &dyn TreeStore,
        mut path: Vec<Arc<Page>>,
        left_child: PageNo,
        node_rec: Vec<u8>,
        sep: Vec<u8>,
        mut ops: Vec<RedoOp>,
    ) -> Result<()> {
        match path.pop() {
            None => {
                // Root split: a new root pointing at both halves.
                let new_root_no = store.allocate();
                let page_size = store.read(self.root())?.byte_len();
                let mut root = Page::new_index(
                    page_size,
                    self.def.space,
                    new_root_no,
                    self.def.index_id.0,
                    self.height() as u16,
                );
                let mut left_ptr = Vec::with_capacity(24);
                encode_node_ptr(&[], left_child, &mut left_ptr); // -infinity
                root.append_record(&left_ptr)?;
                root.append_record(&node_rec)?;
                ops.push(RedoOp::NewPage(root));
                store.write(ops)?;
                self.root.store(new_root_no, Ordering::SeqCst);
                self.height.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }
            Some(parent) => {
                let (idx, _) = parent.lower_bound(&sep, self.node_key_extractor());
                if parent.fits(node_rec.len()) {
                    ops.push(RedoOp::InsertRecord {
                        page_no: parent.page_no(),
                        slot_idx: idx as u16,
                        rec: node_rec,
                    });
                    return store.write(ops);
                }
                let mut recs: Vec<Vec<u8>> = parent
                    .slot_offsets()
                    .map(|off| {
                        RecordView::new(parent.record_at(off), &self.node_layout)
                            .raw()
                            .to_vec()
                    })
                    .collect();
                recs.insert(idx, node_rec);
                let mid = recs.len() / 2;
                let right_no = store.allocate();
                let page_size = parent.byte_len();
                let mut left = Page::new_index(
                    page_size,
                    parent.space(),
                    parent.page_no(),
                    parent.index_id(),
                    parent.level(),
                );
                let mut right = Page::new_index(
                    page_size,
                    parent.space(),
                    right_no,
                    parent.index_id(),
                    parent.level(),
                );
                for r in &recs[..mid] {
                    left.append_record(r)?;
                }
                for r in &recs[mid..] {
                    right.append_record(r)?;
                }
                left.set_prev(parent.prev());
                left.set_next(right_no);
                right.set_prev(parent.page_no());
                right.set_next(parent.next());
                if parent.next() != NO_PAGE {
                    ops.push(RedoOp::SetPrev {
                        page_no: parent.next(),
                        prev: right_no,
                    });
                }
                let up_sep = RecordView::new(&recs[mid], &self.node_layout)
                    .field_bytes(0)
                    .to_vec();
                ops.push(RedoOp::NewPage(left));
                ops.push(RedoOp::NewPage(right));
                let mut up_rec = Vec::with_capacity(up_sep.len() + 24);
                encode_node_ptr(&up_sep, right_no, &mut up_rec);
                self.insert_into_parent(store, path, parent.page_no(), up_rec, up_sep, ops)
            }
        }
    }

    /// Set/clear the delete mark, stamping `trx_id` as the writer.
    /// Returns the previous record image (for the undo log).
    pub fn set_delete_mark(
        &self,
        store: &dyn TreeStore,
        key: &[u8],
        trx_id: TrxId,
        mark: bool,
    ) -> Result<Vec<u8>> {
        let _x = store.structure_latch().write();
        let loc = self
            .get(store, key)?
            .ok_or_else(|| Error::NotFound(format!("key in {}", self.def.name)))?;
        store.write(vec![
            RedoOp::SetDeleteMark {
                page_no: loc.page_no,
                rec_at: loc.rec_at,
                mark,
            },
            RedoOp::WriteBytes {
                page_no: loc.page_no,
                at: loc.rec_at + 5,
                bytes: trx_id.to_le_bytes().to_vec(),
            },
        ])?;
        Ok(loc.bytes)
    }

    /// Update a row in place. Only same-length images are supported (all
    /// fixed-width columns); size-changing updates would relocate the
    /// record, which this reproduction does not need. Returns the previous
    /// image.
    pub fn update_in_place(
        &self,
        store: &dyn TreeStore,
        row: &[Value],
        trx_id: TrxId,
    ) -> Result<Vec<u8>> {
        let _x = store.structure_latch().write();
        let key = self.key_of_row(row);
        let loc = self
            .get(store, &key)?
            .ok_or_else(|| Error::NotFound(format!("key in {}", self.def.name)))?;
        let mut rec = Vec::with_capacity(loc.bytes.len());
        encode_record(
            &self.leaf_layout,
            row,
            RecordMeta::ordinary(trx_id),
            None,
            &mut rec,
        )?;
        if rec.len() != loc.bytes.len() {
            return Err(Error::InvalidState(
                "variable-length update would move the record; unsupported".into(),
            ));
        }
        // Preserve the in-page chain pointer and heap number.
        rec[1..5].copy_from_slice(&loc.bytes[1..5]);
        store.write(vec![RedoOp::WriteBytes {
            page_no: loc.page_no,
            at: loc.rec_at,
            bytes: rec,
        }])?;
        Ok(loc.bytes)
    }

    /// Find the first leaf whose records may intersect `range`.
    pub fn seek_leaf(&self, store: &dyn TreeStore, range: &ScanRange) -> Result<Option<Arc<Page>>> {
        if self.root() == NO_PAGE {
            return Ok(None);
        }
        // Pinned descent (see `descend`); the chain walk that follows is
        // split-safe without a fixed pin — each page's at-cut `next`
        // leads to its at-cut successor and keys only move rightward.
        with_pin_retry(store, |lsn| match &range.lower {
            Some((key, _)) => {
                let (_, leaf) = self.descend(store, key, lsn)?;
                Ok(Some(leaf))
            }
            None => {
                let mut page = store.read_pinned(self.root(), lsn)?;
                while !page.is_leaf() {
                    let off = page
                        .slot_offsets()
                        .next()
                        .ok_or_else(|| Error::Corruption("empty internal page".into()))?;
                    let rec = RecordView::new(page.record_at(off), &self.node_layout);
                    let child = self.node_child(&rec);
                    page = store.read_pinned(child, lsn)?;
                }
                Ok(Some(page))
            }
        })
    }

    /// §IV-C4 batch extraction: under the shared structure latch, walk
    /// level-1 pages collecting up to `max_pages` child leaf page numbers
    /// within `range`, starting at `resume_at` (a separator key returned by
    /// a previous call). The LSN is captured while latched. Returns
    /// `(leaf page numbers, lsn, resume key for the next batch)`.
    pub fn collect_leaf_batch(
        &self,
        store: &dyn TreeStore,
        range: &ScanRange,
        resume_at: Option<&[u8]>,
        max_pages: usize,
    ) -> Result<(Vec<PageNo>, Lsn, Option<Vec<u8>>)> {
        // The retry wrapper re-runs the whole extraction at a fresh cut
        // when a replica's pinned walk ages out of version retention; the
        // LSN itself is captured *under* the latch (writers cannot
        // interleave between capture and walk on the master).
        with_pin_retry(store, |_| {
            self.collect_leaf_batch_once(store, range, resume_at, max_pages)
        })
    }

    fn collect_leaf_batch_once(
        &self,
        store: &dyn TreeStore,
        range: &ScanRange,
        resume_at: Option<&[u8]>,
        max_pages: usize,
    ) -> Result<(Vec<PageNo>, Lsn, Option<Vec<u8>>)> {
        let _s = store.structure_latch().read();
        let lsn = store.current_lsn();
        if self.root() == NO_PAGE {
            return Ok((Vec::new(), lsn, None));
        }
        if self.height() <= 1 {
            // Root is the only leaf: nothing to batch beyond it.
            let pages = if resume_at.is_some() {
                Vec::new()
            } else {
                vec![self.root()]
            };
            return Ok((pages, lsn, None));
        }
        let start_key: Option<&[u8]> = match (resume_at, &range.lower) {
            (Some(k), _) => Some(k),
            (None, Some((k, _))) => Some(k.as_slice()),
            (None, None) => None,
        };
        // Descend to the level-1 page covering the start key. The whole
        // walk is pinned at the captured LSN: the leaf set this batch
        // enumerates must come from the same cut its pages are fetched
        // at (see `TreeStore::read_pinned`).
        let mut page = store.read_pinned(self.root(), lsn)?;
        while page.level() > 1 {
            let child = match start_key {
                Some(k) => self.pick_child(&page, k),
                None => {
                    let off = page.slot_offsets().next().unwrap();
                    self.node_child(&RecordView::new(page.record_at(off), &self.node_layout))
                }
            };
            page = store.read_pinned(child, lsn)?;
        }
        let mut out: Vec<PageNo> = Vec::new();
        let mut resume: Option<Vec<u8>> = None;
        'outer: loop {
            let offs: Vec<u16> = page.slot_offsets().collect();
            for (i, off) in offs.iter().enumerate() {
                let rec = RecordView::new(page.record_at(*off), &self.node_layout);
                let sep = rec.field_bytes(0);
                if out.is_empty() && resume.is_none() {
                    // Skip children that end at or before the start key.
                    if let Some(k) = start_key {
                        if let Some(next_off) = offs.get(i + 1) {
                            let next_sep =
                                RecordView::new(page.record_at(*next_off), &self.node_layout)
                                    .field_bytes(0);
                            if !next_sep.is_empty() && next_sep <= k {
                                continue;
                            }
                        }
                    }
                }
                // Child starts past the range: stop (boundary awareness).
                if !sep.is_empty() && range.past_upper(sep) {
                    break 'outer;
                }
                if out.len() >= max_pages {
                    resume = Some(sep.to_vec());
                    break 'outer;
                }
                out.push(self.node_child(&rec));
            }
            match page.next() {
                NO_PAGE => break,
                next => page = store.read_pinned(next, lsn)?,
            }
        }
        Ok((out, lsn, resume))
    }
}
