//! Generic hash aggregation over any input — a pipeline breaker that
//! *consumes* streamed batches (the input is never materialized as a
//! `Vec<Row>`; only the grouped partial states are held), then finalizes
//! and re-emits in batches. Group output order is the encoded-group-key
//! order, exactly as the Volcano path always produced.

use taurus_common::{Batch, Result};
use taurus_optimizer::plan::HashAggNode;

use super::{charge_emit, BatchEmitter, BoxOp, Operator};
use crate::exec::{finalize_agg_groups, ExecContext, HashAggAcc};

pub(crate) struct HashAggOp<'r, 'env> {
    ctx: &'env ExecContext<'env>,
    node: &'env HashAggNode,
    child: Option<BoxOp<'r>>,
    out: Option<BatchEmitter>,
}

impl<'r, 'env> HashAggOp<'r, 'env> {
    pub(crate) fn new(
        ctx: &'env ExecContext<'env>,
        node: &'env HashAggNode,
        child: BoxOp<'r>,
    ) -> HashAggOp<'r, 'env> {
        HashAggOp {
            ctx,
            node,
            child: Some(child),
            out: None,
        }
    }
}

impl Operator for HashAggOp<'_, '_> {
    fn name(&self) -> &'static str {
        "HashAgg"
    }

    fn open(&mut self) -> Result<()> {
        match &mut self.child {
            Some(c) => c.open(),
            None => Ok(()),
        }
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        if self.out.is_none() {
            let mut acc = HashAggAcc::new(self.node);
            if let Some(child) = &mut self.child {
                while let Some(b) = child.next_batch()? {
                    // Pipeline breaker: resolve any selection to dense
                    // rows at the consumption boundary.
                    let b = b.into_row_batch();
                    for row in b.rows() {
                        acc.update(row)?;
                    }
                }
            }
            if let Some(mut c) = self.child.take() {
                c.close();
            }
            let rows = finalize_agg_groups(acc.finish())?;
            self.out = Some(BatchEmitter::new(rows, self.ctx.db));
        }
        match self.out.as_mut().and_then(BatchEmitter::next_batch) {
            Some(b) => {
                let b = Batch::Row(b);
                charge_emit(self.ctx.db, &b);
                Ok(Some(b))
            }
            None => Ok(None),
        }
    }

    fn close(&mut self) {
        if let Some(mut c) = self.child.take() {
            c.close();
        }
        self.out = None;
    }
}
