//! Sort / TopN: the canonical pipeline breaker. The input drains fully
//! on the first pull (stable sort, same comparator the Volcano executor
//! always used), the optional TopN limit truncates, and the sorted run
//! re-emits in batches.

use taurus_common::schema::Row;
use taurus_common::{Batch, Result};
use taurus_ndp::TaurusDb;
use taurus_optimizer::plan::SortNode;

use super::{charge_emit, BatchEmitter, BoxOp, Operator};
use crate::exec::ExecContext;

pub(crate) struct SortOp<'r, 'env> {
    db: &'env TaurusDb,
    node: &'env SortNode,
    child: Option<BoxOp<'r>>,
    out: Option<BatchEmitter>,
}

impl<'r, 'env> SortOp<'r, 'env> {
    pub(crate) fn new(
        ctx: &'env ExecContext<'env>,
        node: &'env SortNode,
        child: BoxOp<'r>,
    ) -> SortOp<'r, 'env> {
        SortOp {
            db: ctx.db,
            node,
            child: Some(child),
            out: None,
        }
    }
}

impl Operator for SortOp<'_, '_> {
    fn name(&self) -> &'static str {
        if self.node.limit.is_some() {
            "TopN"
        } else {
            "Sort"
        }
    }

    fn open(&mut self) -> Result<()> {
        match &mut self.child {
            Some(c) => c.open(),
            None => Ok(()),
        }
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        if self.out.is_none() {
            let mut rows: Vec<Row> = Vec::new();
            if let Some(child) = &mut self.child {
                while let Some(b) = child.next_batch()? {
                    // Pipeline breaker: selections resolve to dense rows.
                    let b = b.into_row_batch();
                    rows.reserve(b.len());
                    rows.extend(b.into_rows());
                }
            }
            if let Some(mut c) = self.child.take() {
                c.close();
            }
            rows.sort_by(|a, b| {
                for (pos, desc) in &self.node.keys {
                    let ord = a[*pos].cmp_total(&b[*pos]);
                    let ord = if *desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            if let Some(n) = self.node.limit {
                rows.truncate(n);
            }
            self.out = Some(BatchEmitter::new(rows, self.db));
        }
        match self.out.as_mut().and_then(BatchEmitter::next_batch) {
            Some(b) => {
                let b = Batch::Row(b);
                charge_emit(self.db, &b);
                Ok(Some(b))
            }
            None => Ok(None),
        }
    }

    fn close(&mut self) {
        if let Some(mut c) = self.child.take() {
            c.close();
        }
        self.out = None;
    }
}
