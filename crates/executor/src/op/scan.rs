//! Scan leaves of the operator pipeline.
//!
//! [`BatchScanOp`] adapts the engine's push-based scan ([`scan`] driving
//! [`ScanConsumer`] callbacks) to the pull contract: `open()` spawns a
//! producer thread on the executor's scoped thread pool, the producer
//! runs the batch-native scan core into a small bounded channel of
//! [`RowBatch`]es, and `next_batch()` receives from it. The channel *is*
//! the backpressure: the scan runs at most [`STREAM_CHANNEL_BATCHES`]
//! batches ahead of the consumer, and closing the operator (dropping the
//! receiver) makes the producer's next send fail — [`ChannelConsumer`]
//! turns that into the `ScanConsumer` early-stop `false`, terminating
//! the scan exactly like a row-level stop always has.
//!
//! [`AggScanOp`] is a pipeline breaker: index-ordered streaming
//! aggregation (with NDP partial merging) runs to completion on open and
//! the finalized groups re-emit in batches.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender};

use crossbeam::thread::{Scope, ScopedJoinHandle};
use taurus_common::colbatch::{Batch, ColumnBatch};
use taurus_common::metrics::CpuGuard;
use taurus_common::{QueryCtx, Result, RowBatch, Value};
use taurus_expr::agg::AggState;
use taurus_expr::ast::Expr;
use taurus_expr::vector::VectorProgram;
use taurus_ndp::{scan_ctx, ReadView, ScanConsumer, TaurusDb};
use taurus_optimizer::plan::{AggScanNode, ScanNode};

use super::{charge_emit, BatchEmitter, Operator};
use crate::exec::{
    exec_agg_scan_partials, finalize_agg_groups, remap_to_output, residual_survives, scan_spec,
    ExecContext,
};
use crate::stream::STREAM_CHANNEL_BATCHES;

/// ScanConsumer that forwards surviving rows into a bounded channel, one
/// message per batch. A failed send means the receiver is gone (closed
/// operator, dropped stream): the consumer returns `false` and the scan
/// terminates early.
pub(crate) struct ChannelConsumer<'a> {
    pub(crate) tx: &'a SyncSender<Result<Batch>>,
    pub(crate) db: &'a TaurusDb,
    /// Residual predicate conjuncts over scan-output positions.
    pub(crate) residual: Vec<Expr>,
    /// Column-at-a-time form of the conjoined residual. Dropped (poisoned
    /// to `None`) after the first vector-eval error — the scalar path
    /// short-circuits past lanes eager evaluation cannot.
    pub(crate) vector: Option<VectorProgram>,
    /// Narrow delivered rows to these scan-output positions.
    pub(crate) project: Option<Vec<usize>>,
}

impl ChannelConsumer<'_> {
    /// Compile the conjoined residual for the vectorized fast path.
    /// `out_dtypes` are the scan's *output-position* column types (the
    /// space the residual is remapped into); when the range analysis
    /// proves every rescale overflow-free over them, the program is
    /// marked [`VectorProgram::mark_proven_safe`] and the decimal kernels
    /// skip their per-lane checked-overflow deferral. Scan outputs are
    /// storage-backed by definition, so the proof's `|raw| <= i64::MAX`
    /// premise always holds here.
    pub(crate) fn residual_vector(
        residual: &[Expr],
        out_dtypes: Option<&[taurus_common::DataType]>,
    ) -> Option<VectorProgram> {
        if residual.is_empty() {
            return None;
        }
        let pred = Expr::and(residual.to_vec());
        let mut vp = VectorProgram::from_expr(&pred).ok()?;
        if let Some(dtypes) = out_dtypes {
            if taurus_verify::analyze_predicate(&pred, dtypes).proven {
                vp.mark_proven_safe();
            }
        }
        Some(vp)
    }

    fn survives(&self, row: &[Value]) -> Result<bool> {
        residual_survives(&self.residual, row)
    }

    fn out_width(&self, in_width: usize) -> usize {
        self.project.as_ref().map_or(in_width, |keep| keep.len())
    }

    fn push_projected(&self, out: &mut RowBatch, row: &[Value]) {
        match &self.project {
            Some(keep) => out.push_row(keep.iter().map(|&p| row[p].clone())),
            None => out.push_row(row.iter().cloned()),
        }
    }
}

impl ScanConsumer for ChannelConsumer<'_> {
    fn on_row(&mut self, row: &[Value]) -> Result<bool> {
        // Row-at-a-time fallback (the scan core always batches): wrap the
        // row in a single-row batch.
        if !self.survives(row)? {
            return Ok(true);
        }
        let mut out = RowBatch::with_capacity(self.out_width(row.len()), 1);
        self.push_projected(&mut out, row);
        Ok(self.tx.send(Ok(Batch::Row(out))).is_ok())
    }

    fn on_batch(&mut self, batch: &RowBatch) -> Result<bool> {
        if self.residual.is_empty() && self.project.is_none() {
            // Nothing to filter or narrow: forward the batch as-is (one
            // allocation, one value clone — no per-row rebuild).
            return Ok(self.tx.send(Ok(Batch::Row(batch.clone()))).is_ok());
        }
        let mut out = RowBatch::with_capacity(self.out_width(batch.width()), batch.len());
        for row in batch.rows() {
            if self.survives(row)? {
                self.push_projected(&mut out, row);
            }
        }
        if out.is_empty() {
            // Everything filtered: nothing to hand over, keep scanning.
            return Ok(true);
        }
        // A closed receiver means the consumer stopped pulling (dropped
        // stream, early break): end the scan without error.
        Ok(self.tx.send(Ok(Batch::Row(out))).is_ok())
    }

    fn on_col_batch(&mut self, batch: &ColumnBatch) -> Result<bool> {
        if self.residual.is_empty() && self.project.is_none() {
            // Forward column vectors as-is: the whole scan→filter→stream
            // spine stays column-major.
            return Ok(self.tx.send(Ok(Batch::Col(batch.clone()))).is_ok());
        }
        if self.residual.is_empty() {
            // lint:allow(panic): branch taken only when project.is_some()
            let keep = self.project.as_ref().expect("checked above");
            return Ok(self
                .tx
                .send(Ok(Batch::Col(batch.project_cols(keep))))
                .is_ok());
        }
        if let Some(vp) = &self.vector {
            match vp.eval_batch(batch) {
                Ok(verdicts) => {
                    let physical = batch.len();
                    let sel: Vec<u32> = match batch.selection() {
                        Some(old) => old
                            .iter()
                            .copied()
                            .filter(|&i| verdicts.is_true(i as usize))
                            .collect(),
                        None => verdicts.true_indices(),
                    };
                    let m = self.db.metrics();
                    m.add(|x| &x.vector_eval_rows, physical as u64);
                    if let Some(pct) = (sel.len() * 100).checked_div(physical) {
                        m.set(|x| &x.selection_density_pct, pct as u64);
                    }
                    if sel.is_empty() {
                        // Everything filtered: keep scanning.
                        return Ok(true);
                    }
                    let mut out = batch.clone();
                    out.set_selection(sel);
                    if let Some(keep) = &self.project {
                        out = out.project_cols(keep);
                    }
                    return Ok(self.tx.send(Ok(Batch::Col(out))).is_ok());
                }
                Err(_) => self.vector = None,
            }
        }
        // Residual didn't vectorize (or just failed): scalar row path.
        self.on_batch(&batch.to_row_batch())
    }

    fn on_partial(&mut self, _states: Vec<AggState>) -> Result<bool> {
        Err(taurus_common::Error::Internal(
            "row stream received aggregate partials".into(),
        ))
    }
}

/// Run one scan producer to completion: residual filtering and optional
/// projection fused into [`ChannelConsumer`], errors and panics surfaced
/// through the channel (a panic must not masquerade as a clean truncated
/// end-of-stream). Shared by [`BatchScanOp`] and [`crate::RowStream`]'s
/// bare-scan fast path.
pub(crate) fn run_scan_producer(
    db: &TaurusDb,
    node: &ScanNode,
    view: ReadView,
    qctx: QueryCtx,
    tx: &SyncSender<Result<Batch>>,
    project: Option<Vec<usize>>,
) {
    // The producer is a compute-node thread: its CPU lands in
    // `compute_cpu_ns`, like any query thread.
    let _cpu = CpuGuard::new(&db.metrics().compute_cpu_ns);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| -> Result<()> {
        let table = db.table(&node.table)?;
        let ctx = ExecContext { db, view, qctx };
        let spec = scan_spec(node, &ctx, None, None)?;
        let residual: Vec<Expr> = node
            .residual_conjuncts()
            .into_iter()
            .map(|e| remap_to_output(e, &node.output))
            .collect::<Result<_>>()?;
        // Output-position dtypes for the range analysis; `None` (and no
        // overflow proof) if any output position is out of schema range —
        // such a plan fails in the scan core anyway.
        let out_dtypes: Option<Vec<taurus_common::DataType>> = node
            .output
            .iter()
            .map(|&c| table.schema.columns.get(c).map(|col| col.dtype))
            .collect();
        let mut consumer = ChannelConsumer {
            tx,
            db,
            vector: ChannelConsumer::residual_vector(&residual, out_dtypes.as_deref()),
            residual,
            project,
        };
        scan_ctx(ctx.db, &table, &spec, &ctx.view, ctx.qctx, &mut consumer)?;
        Ok(())
    }));
    match result {
        Ok(Ok(())) => {}
        // Receiver may already be gone; nothing else to do then.
        Ok(Err(e)) => {
            let _ = tx.send(Err(e));
        }
        Err(panic) => {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            let _ = tx.send(Err(taurus_common::Error::Internal(format!(
                "scan producer panicked: {msg}"
            ))));
        }
    }
}

/// Pull-side of a batch-native table scan (see the module docs).
pub(crate) struct BatchScanOp<'r, 'scope, 'env> {
    db: &'env TaurusDb,
    node: &'env ScanNode,
    view: ReadView,
    qctx: QueryCtx,
    scope: &'r Scope<'scope, 'env>,
    rx: Option<Receiver<Result<Batch>>>,
    producer: Option<ScopedJoinHandle<'scope, ()>>,
    done: bool,
}

impl<'r, 'scope, 'env> BatchScanOp<'r, 'scope, 'env>
where
    'env: 'scope,
{
    pub(crate) fn new(
        ctx: &'env ExecContext<'env>,
        node: &'env ScanNode,
        scope: &'r Scope<'scope, 'env>,
    ) -> BatchScanOp<'r, 'scope, 'env> {
        BatchScanOp {
            db: ctx.db,
            node,
            view: ctx.view.clone(),
            qctx: ctx.qctx,
            scope,
            rx: None,
            producer: None,
            done: false,
        }
    }

    /// Drop the receiver (unblocking a producer mid-send) and join the
    /// producer so no scan outlives the operator.
    fn shutdown(&mut self) {
        self.done = true;
        self.rx = None;
        if let Some(h) = self.producer.take() {
            let _ = h.join();
        }
    }
}

impl Operator for BatchScanOp<'_, '_, '_> {
    fn name(&self) -> &'static str {
        "BatchScan"
    }

    fn open(&mut self) -> Result<()> {
        if self.rx.is_some() || self.done {
            return Ok(());
        }
        let (tx, rx) = sync_channel::<Result<Batch>>(STREAM_CHANNEL_BATCHES);
        let db = self.db;
        let node = self.node;
        let view = self.view.clone();
        let qctx = self.qctx;
        self.producer = Some(
            self.scope
                .spawn(move |_| run_scan_producer(db, node, view, qctx, &tx, None)),
        );
        self.rx = Some(rx);
        Ok(())
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        let Some(rx) = &self.rx else {
            return Ok(None);
        };
        match rx.recv() {
            Ok(Ok(batch)) => {
                charge_emit(self.db, &batch);
                Ok(Some(batch))
            }
            Ok(Err(e)) => {
                self.shutdown();
                Err(e)
            }
            Err(_) => {
                // Producer finished and dropped its sender.
                self.shutdown();
                Ok(None)
            }
        }
    }

    fn close(&mut self) {
        self.shutdown();
    }
}

impl Drop for BatchScanOp<'_, '_, '_> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Streaming (index-ordered) aggregation fused onto a scan — a pipeline
/// breaker: groups finalize on open, then re-emit batch-at-a-time.
pub(crate) struct AggScanOp<'env> {
    ctx: &'env ExecContext<'env>,
    node: &'env AggScanNode,
    out: Option<BatchEmitter>,
}

impl<'env> AggScanOp<'env> {
    pub(crate) fn new(ctx: &'env ExecContext<'env>, node: &'env AggScanNode) -> AggScanOp<'env> {
        AggScanOp {
            ctx,
            node,
            out: None,
        }
    }
}

impl Operator for AggScanOp<'_> {
    fn name(&self) -> &'static str {
        "AggScan"
    }

    fn open(&mut self) -> Result<()> {
        let partials = exec_agg_scan_partials(self.node, self.ctx, None)?;
        let rows = finalize_agg_groups(partials)?;
        self.out = Some(BatchEmitter::new(rows, self.ctx.db));
        Ok(())
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        match self.out.as_mut().and_then(BatchEmitter::next_batch) {
            Some(b) => {
                let b = Batch::Row(b);
                charge_emit(self.ctx.db, &b);
                Ok(Some(b))
            }
            None => Ok(None),
        }
    }

    fn close(&mut self) {
        self.out = None;
    }
}
