//! Gather: the leader side of parallel query (§VI). The Exchange child
//! is range-partitioned across worker threads by
//! [`crate::parallel::exec_exchange`]; Gather is the barrier that merges
//! per-worker rows or partial aggregate groups and re-emits the merged
//! result in batches. PQ is inherently a pipeline breaker — the leader
//! merge cannot begin until every worker finishes — so the materialized
//! hand-off here is the same one the worker protocol always had.

use taurus_common::{Batch, Result};
use taurus_optimizer::plan::ExchangeNode;

use super::{charge_emit, BatchEmitter, Operator};
use crate::exec::ExecContext;
use crate::parallel::exec_exchange;

pub(crate) struct GatherOp<'env> {
    ctx: &'env ExecContext<'env>,
    node: &'env ExchangeNode,
    out: Option<BatchEmitter>,
}

impl<'env> GatherOp<'env> {
    pub(crate) fn new(ctx: &'env ExecContext<'env>, node: &'env ExchangeNode) -> GatherOp<'env> {
        GatherOp {
            ctx,
            node,
            out: None,
        }
    }
}

impl Operator for GatherOp<'_> {
    fn name(&self) -> &'static str {
        "Gather"
    }

    fn open(&mut self) -> Result<()> {
        let rows = exec_exchange(self.node, self.ctx)?;
        self.out = Some(BatchEmitter::new(rows, self.ctx.db));
        Ok(())
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        match self.out.as_mut().and_then(BatchEmitter::next_batch) {
            Some(b) => {
                let b = Batch::Row(b);
                charge_emit(self.ctx.db, &b);
                Ok(Some(b))
            }
            None => Ok(None),
        }
    }

    fn close(&mut self) {
        self.out = None;
    }
}
