//! The batch-native pull operator pipeline.
//!
//! Every [`Plan`] variant lowers to a physical [`Operator`] with the
//! Volcano-with-batches contract:
//!
//! * `open()` acquires resources (spawns the scan producer, builds the
//!   hash table, materializes the sort input) — it is called exactly once,
//!   before the first `next_batch()`.
//! * `next_batch()` pulls the next [`Batch`] of output — row-major or
//!   column-major with a selection vector — or `None` at end of stream.
//!   Batches are never empty (selection resolved).
//! * `close()` releases resources *early* — in particular it cancels any
//!   producing scan (dropping the scan channel receiver makes the
//!   producer's next send fail, which [`taurus_ndp::ScanConsumer`]
//!   surfaces as an early-termination `false`). Dropping an operator
//!   closes it too; `close()` exists so pipeline breakers and `LIMIT`
//!   can cancel their subtree the moment it is no longer needed.
//!
//! Pull backpressure replaces materialized `Vec<Row>` hand-offs: a
//! `Limit` that stops pulling stops the scan (§IV-C batch reads stop
//! being issued), and `RowStream` can stream *any* sort-free prefix of a
//! plan — the pipeline breakers (sort, aggregation, hash-join build,
//! PQ gather) materialize at their breaker and re-emit in batches.
//!
//! Operators borrow the plan and [`ExecContext`] for `'env` and spawn
//! producer threads on a [`crossbeam::thread::Scope`] so that the whole
//! tree works with plain references — no `Arc` plumbing through the
//! executor. [`crate::exec::execute`] is a thin collect over this
//! pipeline; [`crate::RowStream`] forwards its batches through the
//! stream channel.

mod agg;
mod gather;
mod join;
mod pipe;
mod scan;
mod sort;

pub(crate) use scan::run_scan_producer;

use crossbeam::thread::Scope;
use taurus_common::schema::Row;
use taurus_common::{Batch, Result, RowBatch};
use taurus_ndp::TaurusDb;
use taurus_optimizer::plan::Plan;

use crate::exec::ExecContext;

/// A physical operator: batch-at-a-time pull execution.
///
/// The interchange format is [`Batch`]: scans produce column-major
/// batches under the columnar layout, `Filter` narrows them by selection
/// vector without compaction, and pipeline breakers (sort, aggregation,
/// join build, gather) resolve to dense row-major form at their input.
/// Row-major batches flow through unchanged, so the two layouts coexist
/// in one pipeline.
pub trait Operator {
    /// Stable operator name. `EXPLAIN`'s physical rendering lives in the
    /// optimizer crate and re-states this mapping; the
    /// `operator_names_match_physical_explain` test pins the two
    /// together so they cannot silently diverge.
    fn name(&self) -> &'static str;

    /// Acquire resources; called once before the first `next_batch`.
    fn open(&mut self) -> Result<()>;

    /// Pull the next non-empty batch, or `None` at end of stream.
    fn next_batch(&mut self) -> Result<Option<Batch>>;

    /// Release resources and cancel producing scans. Idempotent.
    fn close(&mut self);
}

/// A lowered operator: boxed against the scope-ref lifetime `'r` (the
/// operator may hold scoped producer join handles and `'env` plan/context
/// borrows; both outlive `'r`).
pub type BoxOp<'r> = Box<dyn Operator + 'r>;

/// Lower a logical plan to its physical operator tree. Scan leaves spawn
/// their producers on `scope` when opened.
pub fn lower<'r, 'scope, 'env>(
    plan: &'env Plan,
    ctx: &'env ExecContext<'env>,
    scope: &'r Scope<'scope, 'env>,
) -> Result<BoxOp<'r>>
where
    'env: 'scope,
    'scope: 'r,
{
    Ok(match plan {
        Plan::Scan(node) => Box::new(scan::BatchScanOp::new(ctx, node, scope)),
        Plan::AggScan(node) => Box::new(scan::AggScanOp::new(ctx, node)),
        Plan::LookupJoin(node) => Box::new(join::LookupJoinOp::new(
            ctx,
            node,
            lower(&node.outer, ctx, scope)?,
        )),
        Plan::HashJoin(node) => Box::new(join::HashJoinOp::new(
            ctx,
            node,
            lower(&node.left, ctx, scope)?,
            lower(&node.right, ctx, scope)?,
        )),
        Plan::HashAgg(node) => Box::new(agg::HashAggOp::new(
            ctx,
            node,
            lower(&node.input, ctx, scope)?,
        )),
        Plan::Project(p) => Box::new(pipe::ProjectOp::new(
            ctx,
            &p.exprs,
            lower(&p.input, ctx, scope)?,
        )),
        Plan::Filter(f) => Box::new(pipe::FilterOp::new(ctx, f, lower(&f.input, ctx, scope)?)),
        Plan::Sort(s) => Box::new(sort::SortOp::new(ctx, s, lower(&s.input, ctx, scope)?)),
        Plan::Limit { input, n } => {
            Box::new(pipe::LimitOp::new(ctx, *n, lower(input, ctx, scope)?))
        }
        Plan::Exchange(e) => Box::new(gather::GatherOp::new(ctx, e)),
    })
}

/// Charge the pipeline-traffic counters at an operator's emit site.
/// Columnar batches charge their *selected* row count — the rows a
/// consumer will actually see — so the counters read the same under
/// either layout.
pub(crate) fn charge_emit(db: &TaurusDb, batch: &Batch) {
    db.metrics()
        .add(|m| &m.operator_rows, batch.selected_len() as u64);
    db.metrics().add(|m| &m.operator_batches, 1);
}

/// Re-emit a breaker's materialized rows in batches of the configured
/// scan batch size (sort / aggregation / gather output side).
pub(crate) struct BatchEmitter {
    rows: std::vec::IntoIter<Row>,
    batch_rows: usize,
}

impl BatchEmitter {
    pub(crate) fn new(rows: Vec<Row>, db: &TaurusDb) -> BatchEmitter {
        BatchEmitter {
            rows: rows.into_iter(),
            batch_rows: db.config().scan_batch_rows.max(1),
        }
    }

    pub(crate) fn next_batch(&mut self) -> Option<RowBatch> {
        let first = self.rows.next()?;
        let mut b = RowBatch::with_capacity(first.len(), self.batch_rows);
        b.push_row(first);
        while !b.is_full() {
            match self.rows.next() {
                Some(r) => b.push_row(r),
                None => break,
            }
        }
        Some(b)
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use taurus_common::schema::{Column, TableSchema};
    use taurus_common::{ClusterConfig, DataType};
    use taurus_expr::ast::Expr;
    use taurus_ndp::TaurusDb;
    use taurus_optimizer::plan::{
        AggFuncEx, AggItem, AggScanNode, HashAggNode, HashJoinNode, JoinType, LookupJoinNode,
        ScanNode,
    };

    use super::*;

    fn tiny_db() -> Arc<TaurusDb> {
        let db = TaurusDb::new(ClusterConfig::small_for_tests());
        let schema = TableSchema::new(
            "t",
            vec![
                Column::new("id", DataType::BigInt),
                Column::new("v", DataType::Int),
            ],
            vec![0],
        );
        db.create_table(schema, &[]).unwrap();
        db
    }

    fn scan() -> Plan {
        Plan::Scan(ScanNode::new("t", vec![0, 1]))
    }

    fn count_star() -> AggItem {
        AggItem {
            func: AggFuncEx::CountStar,
            input: None,
        }
    }

    /// `explain_physical` (optimizer crate) re-states the name mapping
    /// `lower` implements here; pin the two against each other so a new
    /// or renamed operator cannot silently diverge between them.
    #[test]
    fn operator_names_match_physical_explain() {
        let db = tiny_db();
        let ctx = ExecContext::new(&db);
        let plans: Vec<Plan> = vec![
            scan(),
            scan().filter(Expr::ge(Expr::col(1), Expr::int(0))),
            scan().project(vec![Expr::col(0)]),
            scan().limit(3),
            scan().sort(vec![(0, false)]),
            scan().top_n(vec![(0, false)], 2),
            scan().exchange(2),
            Plan::HashJoin(HashJoinNode {
                left: Box::new(scan()),
                right: Box::new(scan()),
                left_keys: vec![0],
                right_keys: vec![0],
                join: JoinType::Inner,
            }),
            Plan::HashAgg(HashAggNode {
                input: Box::new(scan()),
                group: vec![],
                aggs: vec![count_star()],
            }),
            Plan::AggScan(AggScanNode {
                scan: ScanNode::new("t", vec![0]),
                group_cols: vec![],
                aggs: vec![count_star()],
            }),
            Plan::LookupJoin(LookupJoinNode {
                outer: Box::new(scan()),
                table: "t".into(),
                index: 0,
                outer_key_cols: vec![0],
                on: None,
                inner_output: vec![1],
                join: JoinType::Inner,
                inner_predicate: vec![],
            }),
        ];
        for plan in &plans {
            // `lower` without `open` spawns nothing; only the name is read.
            let root_name =
                crossbeam::thread::scope(|s| lower(plan, &ctx, s).unwrap().name().to_string())
                    .unwrap();
            let phys = taurus_optimizer::explain_physical(plan, &db);
            // Line 0 is the "Physical pipeline (batch = ...)" header; the
            // root operator is line 1.
            let root_line = phys.lines().nth(1).unwrap().trim_start();
            let rendered = root_line.trim_start_matches("-> ");
            assert!(
                rendered.starts_with(&root_name),
                "lower() says {root_name:?}, explain_physical renders {rendered:?}"
            );
        }
    }
}
