//! Join operators.
//!
//! [`HashJoinOp`] is a half-breaker: the build (right) side drains fully
//! into the hash table on the first pull, the probe (left) side then
//! streams batch-at-a-time — a `LIMIT` above stops the probe scan early,
//! and only the build side is ever materialized.
//!
//! [`LookupJoinOp`] streams its outer side and does index point lookups
//! per outer row through the shared [`LookupProbe`] machinery (also used
//! by the PQ worker path), so it never materializes anything beyond the
//! current output batch.

use std::collections::HashMap;

use taurus_common::schema::Row;
use taurus_common::{Batch, Result, RowBatch, Value};
use taurus_optimizer::plan::{HashJoinNode, JoinType, LookupJoinNode};

use super::{charge_emit, BoxOp, Operator};
use crate::exec::{group_key_bytes, ExecContext, LookupProbe};

pub(crate) struct HashJoinOp<'r, 'env> {
    ctx: &'env ExecContext<'env>,
    node: &'env HashJoinNode,
    left: Option<BoxOp<'r>>,
    right: Option<BoxOp<'r>>,
    build: HashMap<Vec<u8>, Vec<usize>>,
    right_rows: Vec<Row>,
    right_width: usize,
    built: bool,
}

impl<'r, 'env> HashJoinOp<'r, 'env> {
    pub(crate) fn new(
        ctx: &'env ExecContext<'env>,
        node: &'env HashJoinNode,
        left: BoxOp<'r>,
        right: BoxOp<'r>,
    ) -> HashJoinOp<'r, 'env> {
        HashJoinOp {
            ctx,
            node,
            left: Some(left),
            right: Some(right),
            build: HashMap::new(),
            right_rows: Vec::new(),
            right_width: 0,
            built: false,
        }
    }

    /// Drain the build side into the hash table (first pull only).
    fn build_side(&mut self) -> Result<()> {
        if self.built {
            return Ok(());
        }
        if let Some(right) = &mut self.right {
            while let Some(b) = right.next_batch()? {
                // Build side materializes: selections resolve to rows.
                let b = b.into_row_batch();
                self.right_rows.reserve(b.len());
                self.right_rows.extend(b.into_rows());
            }
        }
        if let Some(mut r) = self.right.take() {
            r.close();
        }
        for (i, r) in self.right_rows.iter().enumerate() {
            let kv: Row = self.node.right_keys.iter().map(|&p| r[p].clone()).collect();
            if kv.iter().any(|v| v.is_null()) {
                continue;
            }
            self.build.entry(group_key_bytes(&kv)).or_default().push(i);
        }
        // The static plan width, not `right_rows.first()`: an empty build
        // side must still NULL-pad LEFT OUTER output to the full right
        // width (the legacy executor got this wrong and emitted unpadded
        // rows, which blew up downstream operators indexing past them).
        self.right_width = taurus_verify::plan_width(&self.node.right);
        self.built = true;
        Ok(())
    }
}

impl Operator for HashJoinOp<'_, '_> {
    fn name(&self) -> &'static str {
        "HashJoin"
    }

    fn open(&mut self) -> Result<()> {
        if let Some(l) = &mut self.left {
            l.open()?;
        }
        if let Some(r) = &mut self.right {
            r.open()?;
        }
        Ok(())
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        self.build_side()?;
        loop {
            let Some(left) = &mut self.left else {
                return Ok(None);
            };
            let Some(b) = left.next_batch()? else {
                if let Some(mut l) = self.left.take() {
                    l.close();
                }
                return Ok(None);
            };
            let b = b.into_row_batch();
            let out_width = match self.node.join {
                JoinType::Inner | JoinType::LeftOuter => b.width() + self.right_width,
                JoinType::Semi | JoinType::Anti => b.width(),
            };
            let mut out = RowBatch::with_capacity(out_width, b.len());
            for l in b.rows() {
                let kv: Row = self.node.left_keys.iter().map(|&p| l[p].clone()).collect();
                let matches = if kv.iter().any(|v| v.is_null()) {
                    None
                } else {
                    self.build.get(&group_key_bytes(&kv))
                };
                match self.node.join {
                    JoinType::Inner => {
                        if let Some(idxs) = matches {
                            // The match fanout is the one output bound the
                            // batch pre-sizing cannot see.
                            out.reserve_rows(idxs.len());
                            for &i in idxs {
                                out.push_row(
                                    l.iter().cloned().chain(self.right_rows[i].iter().cloned()),
                                );
                            }
                        }
                    }
                    JoinType::LeftOuter => match matches {
                        Some(idxs) if !idxs.is_empty() => {
                            out.reserve_rows(idxs.len());
                            for &i in idxs {
                                out.push_row(
                                    l.iter().cloned().chain(self.right_rows[i].iter().cloned()),
                                );
                            }
                        }
                        _ => out.push_row(
                            l.iter()
                                .cloned()
                                .chain(std::iter::repeat_n(Value::Null, self.right_width)),
                        ),
                    },
                    JoinType::Semi => {
                        if matches.map(|m| !m.is_empty()).unwrap_or(false) {
                            out.push_row(l.iter().cloned());
                        }
                    }
                    JoinType::Anti => {
                        if !matches.map(|m| !m.is_empty()).unwrap_or(false) {
                            out.push_row(l.iter().cloned());
                        }
                    }
                }
            }
            if !out.is_empty() {
                let out = Batch::Row(out);
                charge_emit(self.ctx.db, &out);
                return Ok(Some(out));
            }
        }
    }

    fn close(&mut self) {
        if let Some(mut l) = self.left.take() {
            l.close();
        }
        if let Some(mut r) = self.right.take() {
            r.close();
        }
        self.build.clear();
        self.right_rows.clear();
    }
}

/// Nested-loop join driven by inner-index point lookups, streaming the
/// outer side.
pub(crate) struct LookupJoinOp<'r, 'env> {
    ctx: &'env ExecContext<'env>,
    node: &'env LookupJoinNode,
    outer: Option<BoxOp<'r>>,
    probe: Option<LookupProbe<'env>>,
}

impl<'r, 'env> LookupJoinOp<'r, 'env> {
    pub(crate) fn new(
        ctx: &'env ExecContext<'env>,
        node: &'env LookupJoinNode,
        outer: BoxOp<'r>,
    ) -> LookupJoinOp<'r, 'env> {
        LookupJoinOp {
            ctx,
            node,
            outer: Some(outer),
            probe: None,
        }
    }
}

impl Operator for LookupJoinOp<'_, '_> {
    fn name(&self) -> &'static str {
        "LookupJoin"
    }

    fn open(&mut self) -> Result<()> {
        self.probe = Some(LookupProbe::new(self.node, self.ctx)?);
        match &mut self.outer {
            Some(o) => o.open(),
            None => Ok(()),
        }
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        let probe = self
            .probe
            .as_ref()
            .ok_or_else(|| taurus_common::Error::Internal("LookupJoin not opened".into()))?;
        loop {
            let Some(outer) = &mut self.outer else {
                return Ok(None);
            };
            let Some(b) = outer.next_batch()? else {
                if let Some(mut o) = self.outer.take() {
                    o.close();
                }
                return Ok(None);
            };
            let b = b.into_row_batch();
            let out_width = match self.node.join {
                JoinType::Inner | JoinType::LeftOuter => b.width() + self.node.inner_output.len(),
                JoinType::Semi | JoinType::Anti => b.width(),
            };
            let mut out = RowBatch::with_capacity(out_width, b.len());
            for orow in b.rows() {
                probe.probe(self.ctx, orow, &mut |row| out.push_row(row))?;
            }
            if !out.is_empty() {
                let out = Batch::Row(out);
                charge_emit(self.ctx.db, &out);
                return Ok(Some(out));
            }
        }
    }

    fn close(&mut self) {
        if let Some(mut o) = self.outer.take() {
            o.close();
        }
        self.probe = None;
    }
}
