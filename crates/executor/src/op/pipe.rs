//! Streaming (non-breaking) operators: Filter, Project, Limit.
//!
//! All three pull one child batch at a time and emit without buffering,
//! so they add no materialization anywhere in the pipeline. On columnar
//! input they are also *compaction-free*: `Filter` evaluates its
//! predicate column-at-a-time ([`VectorProgram`]) and narrows the batch
//! by intersecting selection vectors, `Project` reorders column
//! references without touching the data, and `Limit` truncates the
//! selection — dense rows are only gathered at a pipeline breaker or the
//! stream boundary. `Limit` is the early-stop operator: the moment its
//! budget is spent it *closes* its child subtree, which cancels the
//! producing scans (pull backpressure all the way into `ScanConsumer`
//! early termination) instead of truncating a fully materialized input.

use taurus_common::colbatch::{Batch, ColumnBatch};
use taurus_common::schema::Row;
use taurus_common::{Result, RowBatch};
use taurus_expr::ast::Expr;
use taurus_expr::eval::{eval, eval_pred};
use taurus_expr::vector::VectorProgram;
use taurus_ndp::TaurusDb;
use taurus_optimizer::plan::FilterNode;

use super::{charge_emit, BoxOp, Operator};
use crate::exec::ExecContext;

/// Residual row filter over any input.
pub(crate) struct FilterOp<'r, 'env> {
    db: &'env TaurusDb,
    predicate: &'env Expr,
    /// Column-at-a-time form of the predicate, when it vectorizes.
    vector: Option<VectorProgram>,
    /// Poisoned after the first vector-eval error: the scalar path is
    /// authoritative (it short-circuits past lanes eager evaluation
    /// cannot), so one failed batch disables the vector path for the
    /// rest of the query.
    vector_disabled: bool,
    child: BoxOp<'r>,
}

impl<'r, 'env> FilterOp<'r, 'env> {
    pub(crate) fn new(
        ctx: &'env ExecContext<'env>,
        node: &'env FilterNode,
        child: BoxOp<'r>,
    ) -> FilterOp<'r, 'env> {
        let mut vector = VectorProgram::from_expr(&node.predicate).ok();
        // When the filter's input columns are storage-backed (scan values
        // passed through unmodified) and the range analysis proves every
        // decimal rescale overflow-free, the vector kernels may skip
        // their per-lane checked-overflow deferral.
        if let Some(vp) = vector.as_mut() {
            if taurus_verify::columns_storage_backed(&node.input) {
                if let Some(schema) = taurus_verify::infer_plan(&node.input, ctx.db).schema {
                    let dtypes: Vec<_> = schema.iter().map(|c| c.dtype).collect();
                    if taurus_verify::analyze_predicate(&node.predicate, &dtypes).proven {
                        vp.mark_proven_safe();
                    }
                }
            }
        }
        FilterOp {
            db: ctx.db,
            predicate: &node.predicate,
            vector,
            vector_disabled: false,
            child,
        }
    }

    /// Vectorized filter: evaluate over all physical rows, then shrink
    /// the selection (never grow, never compact). `Ok(None)` = nothing
    /// survived, `Err(cb)` = vector eval failed, caller re-runs the
    /// batch through the scalar path.
    fn filter_columnar(
        &mut self,
        mut cb: ColumnBatch,
    ) -> std::result::Result<Option<ColumnBatch>, ColumnBatch> {
        // lint:allow(panic): next_batch only calls in when vector.is_some()
        let vp = self.vector.as_ref().expect("checked by caller");
        let verdicts = match vp.eval_batch(&cb) {
            Ok(v) => v,
            Err(_) => {
                self.vector_disabled = true;
                return Err(cb);
            }
        };
        let physical = cb.len();
        let sel: Vec<u32> = match cb.selection() {
            Some(old) => old
                .iter()
                .copied()
                .filter(|&i| verdicts.is_true(i as usize))
                .collect(),
            None => verdicts.true_indices(),
        };
        let m = self.db.metrics();
        m.add(|x| &x.vector_eval_rows, physical as u64);
        if let Some(pct) = (sel.len() * 100).checked_div(physical) {
            m.set(|x| &x.selection_density_pct, pct as u64);
        }
        if sel.is_empty() {
            return Ok(None);
        }
        cb.set_selection(sel);
        Ok(Some(cb))
    }
}

impl Operator for FilterOp<'_, '_> {
    fn name(&self) -> &'static str {
        "Filter"
    }

    fn open(&mut self) -> Result<()> {
        self.child.open()
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        loop {
            let Some(b) = self.child.next_batch()? else {
                return Ok(None);
            };
            let rb = match b {
                Batch::Col(cb) if self.vector.is_some() && !self.vector_disabled => {
                    match self.filter_columnar(cb) {
                        Ok(None) => continue,
                        Ok(Some(out)) => {
                            let out = Batch::Col(out);
                            charge_emit(self.db, &out);
                            return Ok(Some(out));
                        }
                        Err(cb) => cb.to_row_batch(),
                    }
                }
                other => other.into_row_batch(),
            };
            let mut out = RowBatch::with_capacity(rb.width(), rb.len());
            for row in rb.rows() {
                if eval_pred(self.predicate, row)? == Some(true) {
                    out.push_row(row.iter().cloned());
                }
            }
            if !out.is_empty() {
                let out = Batch::Row(out);
                charge_emit(self.db, &out);
                return Ok(Some(out));
            }
        }
    }

    fn close(&mut self) {
        self.child.close();
    }
}

/// Per-row expression projection.
pub(crate) struct ProjectOp<'r, 'env> {
    db: &'env TaurusDb,
    exprs: &'env [Expr],
    /// `Some(keep)` iff every projection is a bare column reference —
    /// the case a columnar batch handles by reordering column vectors.
    cols_only: Option<Vec<usize>>,
    child: BoxOp<'r>,
}

impl<'r, 'env> ProjectOp<'r, 'env> {
    pub(crate) fn new(
        ctx: &'env ExecContext<'env>,
        exprs: &'env [Expr],
        child: BoxOp<'r>,
    ) -> ProjectOp<'r, 'env> {
        let cols_only = exprs
            .iter()
            .map(|e| match e {
                Expr::Col(i) => Some(*i),
                _ => None,
            })
            .collect();
        ProjectOp {
            db: ctx.db,
            exprs,
            cols_only,
            child,
        }
    }
}

impl Operator for ProjectOp<'_, '_> {
    fn name(&self) -> &'static str {
        "Project"
    }

    fn open(&mut self) -> Result<()> {
        self.child.open()
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        let Some(b) = self.child.next_batch()? else {
            return Ok(None);
        };
        if let Batch::Col(cb) = &b {
            if let Some(keep) = &self.cols_only {
                if keep.iter().all(|&i| i < cb.width()) {
                    // Pure column selection: move column vectors, keep the
                    // selection — no per-row work at all.
                    let out = Batch::Col(cb.project_cols(keep));
                    charge_emit(self.db, &out);
                    return Ok(Some(out));
                }
            }
        }
        let rb = b.into_row_batch();
        let mut out = RowBatch::with_capacity(self.exprs.len(), rb.len());
        for row in rb.rows() {
            let vals: Row = self
                .exprs
                .iter()
                .map(|e| eval(e, row))
                .collect::<Result<_>>()?;
            out.push_row(vals);
        }
        let out = Batch::Row(out);
        charge_emit(self.db, &out);
        Ok(Some(out))
    }

    fn close(&mut self) {
        self.child.close();
    }
}

/// LIMIT with early-stop: stops pulling after `n` rows and cancels the
/// producing subtree immediately.
pub(crate) struct LimitOp<'r, 'env> {
    db: &'env TaurusDb,
    remaining: usize,
    child: Option<BoxOp<'r>>,
}

impl<'r, 'env> LimitOp<'r, 'env> {
    pub(crate) fn new(
        ctx: &'env ExecContext<'env>,
        n: usize,
        child: BoxOp<'r>,
    ) -> LimitOp<'r, 'env> {
        LimitOp {
            db: ctx.db,
            remaining: n,
            child: Some(child),
        }
    }

    /// Close and drop the child subtree: scan producers observe their
    /// channel receiver disappearing and terminate.
    fn release_child(&mut self) {
        if let Some(mut c) = self.child.take() {
            c.close();
        }
    }
}

impl Operator for LimitOp<'_, '_> {
    fn name(&self) -> &'static str {
        "Limit"
    }

    fn open(&mut self) -> Result<()> {
        if self.remaining == 0 {
            // LIMIT 0: never start the scans at all.
            self.release_child();
            return Ok(());
        }
        match &mut self.child {
            Some(c) => c.open(),
            None => Ok(()),
        }
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        if self.remaining == 0 {
            self.release_child();
            return Ok(None);
        }
        let Some(child) = &mut self.child else {
            return Ok(None);
        };
        let Some(mut b) = child.next_batch()? else {
            self.release_child();
            return Ok(None);
        };
        // The budget counts *visible* rows, so a columnar batch is
        // truncated through its selection vector — still no compaction.
        if b.selected_len() >= self.remaining {
            b.truncate_selected(self.remaining);
            self.remaining = 0;
            // Budget spent mid-stream: cancel the producing subtree now,
            // not when the operator tree is eventually dropped.
            self.release_child();
        } else {
            self.remaining -= b.selected_len();
        }
        charge_emit(self.db, &b);
        Ok(Some(b))
    }

    fn close(&mut self) {
        self.release_child();
    }
}
