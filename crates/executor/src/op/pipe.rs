//! Streaming (non-breaking) operators: Filter, Project, Limit.
//!
//! All three pull one child batch at a time and emit without buffering,
//! so they add no materialization anywhere in the pipeline. `Limit` is
//! the early-stop operator: the moment its budget is spent it *closes*
//! its child subtree, which cancels the producing scans (pull
//! backpressure all the way into `ScanConsumer` early termination)
//! instead of truncating a fully materialized input.

use taurus_common::schema::Row;
use taurus_common::{Result, RowBatch};
use taurus_expr::ast::Expr;
use taurus_expr::eval::{eval, eval_pred};
use taurus_ndp::TaurusDb;

use super::{charge_emit, BoxOp, Operator};
use crate::exec::ExecContext;

/// Residual row filter over any input.
pub(crate) struct FilterOp<'r, 'env> {
    db: &'env TaurusDb,
    predicate: &'env Expr,
    child: BoxOp<'r>,
}

impl<'r, 'env> FilterOp<'r, 'env> {
    pub(crate) fn new(
        ctx: &'env ExecContext<'env>,
        predicate: &'env Expr,
        child: BoxOp<'r>,
    ) -> FilterOp<'r, 'env> {
        FilterOp {
            db: ctx.db,
            predicate,
            child,
        }
    }
}

impl Operator for FilterOp<'_, '_> {
    fn name(&self) -> &'static str {
        "Filter"
    }

    fn open(&mut self) -> Result<()> {
        self.child.open()
    }

    fn next_batch(&mut self) -> Result<Option<RowBatch>> {
        loop {
            let Some(b) = self.child.next_batch()? else {
                return Ok(None);
            };
            let mut out = RowBatch::with_capacity(b.width(), b.len());
            for row in b.rows() {
                if eval_pred(self.predicate, row)? == Some(true) {
                    out.push_row(row.iter().cloned());
                }
            }
            if !out.is_empty() {
                charge_emit(self.db, &out);
                return Ok(Some(out));
            }
        }
    }

    fn close(&mut self) {
        self.child.close();
    }
}

/// Per-row expression projection.
pub(crate) struct ProjectOp<'r, 'env> {
    db: &'env TaurusDb,
    exprs: &'env [Expr],
    child: BoxOp<'r>,
}

impl<'r, 'env> ProjectOp<'r, 'env> {
    pub(crate) fn new(
        ctx: &'env ExecContext<'env>,
        exprs: &'env [Expr],
        child: BoxOp<'r>,
    ) -> ProjectOp<'r, 'env> {
        ProjectOp {
            db: ctx.db,
            exprs,
            child,
        }
    }
}

impl Operator for ProjectOp<'_, '_> {
    fn name(&self) -> &'static str {
        "Project"
    }

    fn open(&mut self) -> Result<()> {
        self.child.open()
    }

    fn next_batch(&mut self) -> Result<Option<RowBatch>> {
        let Some(b) = self.child.next_batch()? else {
            return Ok(None);
        };
        let mut out = RowBatch::with_capacity(self.exprs.len(), b.len());
        for row in b.rows() {
            let vals: Row = self
                .exprs
                .iter()
                .map(|e| eval(e, row))
                .collect::<Result<_>>()?;
            out.push_row(vals);
        }
        charge_emit(self.db, &out);
        Ok(Some(out))
    }

    fn close(&mut self) {
        self.child.close();
    }
}

/// LIMIT with early-stop: stops pulling after `n` rows and cancels the
/// producing subtree immediately.
pub(crate) struct LimitOp<'r, 'env> {
    db: &'env TaurusDb,
    remaining: usize,
    child: Option<BoxOp<'r>>,
}

impl<'r, 'env> LimitOp<'r, 'env> {
    pub(crate) fn new(
        ctx: &'env ExecContext<'env>,
        n: usize,
        child: BoxOp<'r>,
    ) -> LimitOp<'r, 'env> {
        LimitOp {
            db: ctx.db,
            remaining: n,
            child: Some(child),
        }
    }

    /// Close and drop the child subtree: scan producers observe their
    /// channel receiver disappearing and terminate.
    fn release_child(&mut self) {
        if let Some(mut c) = self.child.take() {
            c.close();
        }
    }
}

impl Operator for LimitOp<'_, '_> {
    fn name(&self) -> &'static str {
        "Limit"
    }

    fn open(&mut self) -> Result<()> {
        if self.remaining == 0 {
            // LIMIT 0: never start the scans at all.
            self.release_child();
            return Ok(());
        }
        match &mut self.child {
            Some(c) => c.open(),
            None => Ok(()),
        }
    }

    fn next_batch(&mut self) -> Result<Option<RowBatch>> {
        if self.remaining == 0 {
            self.release_child();
            return Ok(None);
        }
        let Some(child) = &mut self.child else {
            return Ok(None);
        };
        let Some(mut b) = child.next_batch()? else {
            self.release_child();
            return Ok(None);
        };
        if b.len() >= self.remaining {
            b.truncate_rows(self.remaining);
            self.remaining = 0;
            // Budget spent mid-stream: cancel the producing subtree now,
            // not when the operator tree is eventually dropped.
            self.release_child();
        } else {
            self.remaining -= b.len();
        }
        charge_emit(self.db, &b);
        Ok(Some(b))
    }

    fn close(&mut self) {
        self.release_child();
    }
}
