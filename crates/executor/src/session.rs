//! The public query facade: [`Session`] and [`QueryBuilder`].
//!
//! The paper's encapsulation claim — "the MySQL query execution layers
//! above the storage engine are unaware of NDP processing" — holds at this
//! API boundary too: callers name tables and columns, compose filters and
//! aggregates, and get rows back. Whether predicates, projections, or
//! aggregates execute inside Page Stores is decided internally: every
//! built plan runs through the optimizer's §IV-B NDP post-processing pass
//! before execution (unless the session's `ndp` switch is off — the
//! equivalent of MySQL's `optimizer_switch`, used by the A/B examples and
//! benchmarks).
//!
//! ```no_run
//! # use taurus_executor::{dsl::col, Agg, Session};
//! # fn demo(db: &std::sync::Arc<taurus_ndp::TaurusDb>) -> taurus_common::Result<()> {
//! let session = Session::new(db);
//! let avg = session
//!     .query("worker")?
//!     .filter(col("age").lt(40))
//!     .agg(Agg::avg("salary"))
//!     .collect_rows()?;
//! # let _ = avg; Ok(())
//! # }
//! ```
//!
//! A [`Session`] owns the MVCC read view: every query it builds sees the
//! same snapshot, replacing ad-hoc `ExecContext` construction. The legacy
//! `execute(plan, ctx)` path still exists underneath — the builder lowers
//! onto it, and parity tests compare the two directly.

use std::sync::Arc;

use taurus_common::metrics::CpuGuard;
use taurus_common::schema::Row;
use taurus_common::{Error, QueryCtx, Result, TenantId, TrxId};
use taurus_expr::ast::Expr;
use taurus_ndp::{ReadView, Table, TaurusDb};
use taurus_optimizer::ndp_post::{ndp_post_process, NdpReport};
use taurus_optimizer::plan::{AggFuncEx, AggItem, AggScanNode, Plan, ScanNode};

use crate::dsl::{ColRef, QExpr};
use crate::exec::{execute, ExecContext};
use crate::stream::RowStream;
use crate::QueryRun;

/// A session: a database handle plus the MVCC read view all of its
/// queries share. Create one per logical "connection"/snapshot.
pub struct Session {
    db: Arc<TaurusDb>,
    view: ReadView,
    trx: TrxId,
    ndp: bool,
    /// Tenant this session's queries are attributed to: Page-Store
    /// admission control bills NDP work (and quota rejections) to it.
    tenant: TenantId,
    /// Optional per-query wall-clock budget: each query stamps its own
    /// deadline from this when execution starts.
    budget_ms: Option<u64>,
}

impl Session {
    /// Open a session reading the current committed state.
    pub fn new(db: &Arc<TaurusDb>) -> Session {
        Session::for_trx(db, 0)
    }

    /// Open a session with the snapshot a given transaction would see.
    pub fn for_trx(db: &Arc<TaurusDb>, trx: TrxId) -> Session {
        Session {
            db: db.clone(),
            view: db.read_view(trx),
            trx,
            ndp: true,
            tenant: taurus_common::DEFAULT_TENANT,
            budget_ms: None,
        }
    }

    /// Attribute this session's queries to a tenant: Page-Store admission
    /// control bills NDP work (and quota rejections) to it, and the
    /// server's per-tenant metrics break out under its id.
    pub fn with_tenant(mut self, tenant: TenantId) -> Session {
        self.tenant = tenant;
        self
    }

    pub fn set_tenant(&mut self, tenant: TenantId) {
        self.tenant = tenant;
    }

    /// Set a wall-clock budget applied to each query individually: the
    /// deadline is stamped when execution starts, and scans/reads past it
    /// fail with `Error::DeadlineExceeded` instead of stalling on a
    /// degraded Page Store. `0` clears the budget.
    pub fn set_query_budget_ms(&mut self, ms: u64) {
        self.budget_ms = if ms == 0 { None } else { Some(ms) };
    }

    /// Stamp the governance context for a query starting *now*: the
    /// session's tenant plus a fresh deadline from the budget (if any).
    pub fn query_ctx(&self) -> QueryCtx {
        QueryCtx::for_tenant(self.tenant).with_budget_ms(self.budget_ms.unwrap_or(0))
    }

    /// Session-level NDP switch (the facade's `optimizer_switch`): with
    /// `false`, plans skip the NDP post-processing pass and every scan
    /// takes the classical path. Results never change — only where the
    /// filtering/aggregation work happens.
    pub fn with_ndp(mut self, enabled: bool) -> Session {
        self.ndp = enabled;
        self
    }

    pub fn set_ndp(&mut self, enabled: bool) {
        self.ndp = enabled;
    }

    /// Whether NDP post-processing applies to plans built in this session.
    pub fn ndp(&self) -> bool {
        self.ndp
    }

    /// Re-snapshot (same transaction identity): subsequent queries see
    /// commits made since the session was opened, and a `for_trx` session
    /// keeps seeing its own transaction's writes.
    ///
    /// On a **replica**, the new view is the replicated boundary snapshot
    /// (commits the log tailer has published), never one derived from the
    /// replica's local `TrxManager` — a local view would declare every
    /// master transaction visible and serve torn half-transactions.
    /// `TaurusDb::read_view` enforces this for every caller.
    pub fn refresh(&mut self) {
        self.view = self.db.read_view(self.trx);
    }

    pub fn db(&self) -> &Arc<TaurusDb> {
        &self.db
    }

    pub fn view(&self) -> &ReadView {
        &self.view
    }

    /// Start a query against `table`. Fails immediately if the table does
    /// not exist — or, on a replica, if the node may not serve: a
    /// detached replica (tailer stopped), one lagging beyond
    /// `replica.max_lag_lsn`, or a transaction-bound session (replicas
    /// are read-only; only snapshot sessions make sense there).
    pub fn query(&self, table: &str) -> Result<QueryBuilder<'_>> {
        self.check_replica_session()?;
        let table = self.db.table(table).map_err(|_| {
            Error::NameResolution(format!(
                "table `{table}` not found (known tables: {})",
                known_tables(&self.db)
            ))
        })?;
        Ok(QueryBuilder {
            session: self,
            table,
            index: 0,
            filters: Vec::new(),
            select: None,
            group: Vec::new(),
            aggs: Vec::new(),
            order: Vec::new(),
            limit: None,
            degree: None,
            err: None,
        })
    }

    /// Escape hatch: run a prebuilt [`Plan`] under this session's read
    /// view (parity tests and the TPC-H plan builders use this). The
    /// plan executes through the operator pipeline; this terminal merely
    /// collects every batch.
    pub fn execute_plan(&self, plan: &Plan) -> Result<Vec<Row>> {
        let ctx = ExecContext {
            db: &self.db,
            view: self.view.clone(),
            qctx: self.query_ctx(),
        };
        execute(plan, &ctx)
    }

    /// Escape hatch: stream a prebuilt [`Plan`] under this session's read
    /// view. Any plan streams; pipeline breakers materialize at their
    /// breaker inside the pipeline, and dropping the stream cancels the
    /// producing scans.
    pub fn stream_plan(&self, plan: Plan) -> RowStream {
        RowStream::spawn_plan(self.db.clone(), plan, self.view.clone(), self.query_ctx())
    }

    /// MVCC point lookup under this session's read view.
    pub fn lookup(&self, table: &str, pk: &[taurus_common::Value]) -> Result<Option<Row>> {
        self.check_replica_session()?;
        let t = self.db.table(table)?;
        self.db.lookup_row(&t, &self.view, pk)
    }

    /// Replica guardrails shared by every serving entry point: the node
    /// must be serveable (attached, within the lag contract) and the
    /// session must be a snapshot session (a transaction-bound session on
    /// a read-only node could never see its transaction's writes).
    fn check_replica_session(&self) -> Result<()> {
        self.db.check_serveable()?;
        if self.db.is_replica() && self.trx != 0 {
            return Err(Error::Unsupported(
                "transaction-bound session on a read replica: replicas are read-only; \
                 use a snapshot session (Session::new)"
                    .into(),
            ));
        }
        Ok(())
    }
}

fn known_tables(db: &TaurusDb) -> String {
    let mut names: Vec<String> = db.tables().iter().map(|t| t.schema.name.clone()).collect();
    names.sort();
    names.join(", ")
}

/// What an aggregate runs over: a bare `&str` names a *column*
/// (`Agg::sum("l_quantity")`), and any [`QExpr`] gives a full expression
/// (`Agg::sum(col("l_extendedprice").mul(col("l_discount")))`).
#[derive(Clone, Debug)]
pub struct AggInput(QExpr);

impl From<&str> for AggInput {
    fn from(column: &str) -> AggInput {
        AggInput(QExpr::Col(column.to_string()))
    }
}

impl From<usize> for AggInput {
    fn from(position: usize) -> AggInput {
        AggInput(QExpr::Nth(position))
    }
}

impl From<QExpr> for AggInput {
    fn from(e: QExpr) -> AggInput {
        AggInput(e)
    }
}

/// An aggregate item for [`QueryBuilder::agg`].
#[derive(Clone, Debug)]
pub struct Agg {
    func: AggFuncEx,
    input: Option<QExpr>,
}

impl Agg {
    pub fn count_star() -> Agg {
        Agg {
            func: AggFuncEx::CountStar,
            input: None,
        }
    }

    pub fn count(input: impl Into<AggInput>) -> Agg {
        Agg {
            func: AggFuncEx::Count,
            input: Some(input.into().0),
        }
    }

    pub fn sum(input: impl Into<AggInput>) -> Agg {
        Agg {
            func: AggFuncEx::Sum,
            input: Some(input.into().0),
        }
    }

    pub fn min(input: impl Into<AggInput>) -> Agg {
        Agg {
            func: AggFuncEx::Min,
            input: Some(input.into().0),
        }
    }

    pub fn max(input: impl Into<AggInput>) -> Agg {
        Agg {
            func: AggFuncEx::Max,
            input: Some(input.into().0),
        }
    }

    pub fn avg(input: impl Into<AggInput>) -> Agg {
        Agg {
            func: AggFuncEx::Avg,
            input: Some(input.into().0),
        }
    }
}

/// EXPLAIN output plus the optimizer's per-table NDP decision reports.
#[derive(Clone, Debug)]
pub struct Explained {
    /// Listing-2-shaped plan rendering (NDP annotations included).
    pub text: String,
    /// One report per table access, pre-order.
    pub reports: Vec<NdpReport>,
}

impl std::fmt::Display for Explained {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.text)?;
        for r in &self.reports {
            writeln!(
                f,
                "   [{}] est_io={:.0} pages, filter_factor={:.3}, projection={}, aggregate={}{}",
                r.table,
                r.est_io_pages,
                r.filter_factor,
                r.projection,
                r.aggregation,
                if r.gated_by_io {
                    " (NDP gated: below min-IO threshold)"
                } else {
                    ""
                },
            )?;
        }
        Ok(())
    }
}

/// Fluent single-table query builder; see the module docs.
///
/// Resolution errors (unknown column, out-of-range position) are deferred:
/// the first one is stored and surfaced by whichever terminal runs, so
/// chains stay fluent.
pub struct QueryBuilder<'s> {
    session: &'s Session,
    table: Arc<Table>,
    index: usize,
    /// Resolved predicate conjuncts over table columns.
    filters: Vec<Expr>,
    /// Explicitly selected table columns (`None` = all, or group/agg).
    select: Option<Vec<usize>>,
    group: Vec<usize>,
    aggs: Vec<AggItem>,
    /// (result-row position, descending).
    order: Vec<(usize, bool)>,
    limit: Option<usize>,
    degree: Option<usize>,
    err: Option<Error>,
}

impl QueryBuilder<'_> {
    fn fail(mut self, e: Error) -> Self {
        if self.err.is_none() {
            self.err = Some(e);
        }
        self
    }

    /// Scan via a named secondary index instead of the primary.
    pub fn via_index(mut self, name: &str) -> Self {
        match self.table.find_index(name) {
            Some(i) => {
                self.index = i;
                self
            }
            None => {
                let e = Error::NameResolution(format!(
                    "index `{name}` not found on table `{}`",
                    self.table.schema.name
                ));
                self.fail(e)
            }
        }
    }

    /// Add a predicate (AND-combined with previous filters). Top-level
    /// AND conjuncts are split so the optimizer can push them down
    /// individually.
    pub fn filter(mut self, predicate: impl Into<QExpr>) -> Self {
        match predicate.into().resolve(&self.table.schema) {
            Ok(Expr::And(conjuncts)) => {
                self.filters.extend(conjuncts);
                self
            }
            Ok(e) => {
                self.filters.push(e);
                self
            }
            Err(e) => self.fail(e),
        }
    }

    /// Choose the output columns (by name or position). Without `select`,
    /// a plain query returns all columns and an aggregate query returns
    /// `group columns ++ aggregates`.
    pub fn select<C: Into<ColRef>>(mut self, cols: impl IntoIterator<Item = C>) -> Self {
        let mut resolved = Vec::new();
        for c in cols {
            match c.into().resolve(&self.table.schema) {
                Ok(i) => resolved.push(i),
                Err(e) => return self.fail(e),
            }
        }
        self.select = Some(resolved);
        self
    }

    /// GROUP BY the given columns. Aggregation streams during the scan,
    /// which requires the group columns to be a prefix of the chosen
    /// index key (rows then arrive already grouped) — anything else is
    /// reported as [`Error::Unsupported`] by the terminal.
    pub fn group_by<C: Into<ColRef>>(mut self, cols: impl IntoIterator<Item = C>) -> Self {
        let mut resolved = Vec::new();
        for c in cols {
            match c.into().resolve(&self.table.schema) {
                Ok(i) => resolved.push(i),
                Err(e) => return self.fail(e),
            }
        }
        self.group = resolved;
        self
    }

    /// Add an aggregate to the output.
    pub fn agg(mut self, agg: Agg) -> Self {
        let input = match agg.input {
            None => None,
            Some(q) => match q.resolve(&self.table.schema) {
                Ok(e) => Some(e),
                Err(e) => return self.fail(e),
            },
        };
        self.aggs.push(AggItem {
            func: agg.func,
            input,
        });
        self
    }

    /// ORDER BY a result-row position (0-based into the query's output).
    pub fn order_by(mut self, result_position: usize, descending: bool) -> Self {
        self.order.push((result_position, descending));
        self
    }

    pub fn limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    /// Run the scan stage with parallel-query workers (§VI).
    pub fn parallel(mut self, degree: usize) -> Self {
        self.degree = Some(degree);
        self
    }

    // --- plan construction --------------------------------------------------

    /// A secondary index stores only `key ++ pk` columns; anything else the
    /// query references must be reported here, by name, rather than as an
    /// opaque execution-time failure.
    fn check_index_coverage(&self, output: &[usize]) -> Result<()> {
        let def = &self.table.index(self.index).tree.def;
        if def.is_primary {
            return Ok(());
        }
        let stored = def.stored_cols();
        if let Some(&missing) = output.iter().find(|c| !stored.contains(c)) {
            let schema = &self.table.schema;
            return Err(Error::Unsupported(format!(
                "column `{}` is not stored in secondary index `{}` (stored: {}); \
                 scan via the primary index instead",
                schema.columns[missing].name,
                def.name,
                stored
                    .iter()
                    .map(|&c| schema.columns[c].name.as_str())
                    .collect::<Vec<_>>()
                    .join(", "),
            )));
        }
        Ok(())
    }

    /// Build the un-optimized plan; terminals call [`QueryBuilder::plan`]
    /// which also runs the NDP pass.
    fn build(&self) -> Result<Plan> {
        if let Some(e) = &self.err {
            return Err(e.clone());
        }
        let schema = &self.table.schema;
        let mut predicate_cols: Vec<usize> = Vec::new();
        for f in &self.filters {
            predicate_cols.extend(f.columns());
        }

        let (plan, width) = if self.aggs.is_empty() && self.group.is_empty() {
            // Plain scan. Deliver the selected columns plus whatever the
            // residual predicates need; hide the extras with a projection.
            let user_cols: Vec<usize> = match &self.select {
                Some(cols) => cols.clone(),
                None => (0..schema.columns.len()).collect(),
            };
            let mut output = user_cols.clone();
            for &c in &predicate_cols {
                if !output.contains(&c) {
                    output.push(c);
                }
            }
            let extras = output.len() > user_cols.len();
            self.check_index_coverage(&output)?;
            let scan = ScanNode::new(&schema.name, output)
                .with_index(self.index)
                .with_predicate(self.filters.clone());
            // PQ wraps the scan itself, beneath any projection.
            let mut plan = Plan::Scan(scan);
            if let Some(d) = self.degree {
                plan = plan.exchange(d);
            }
            if extras {
                plan = plan.project((0..user_cols.len()).map(Expr::Col).collect());
            }
            (plan, user_cols.len())
        } else {
            // Aggregation fused onto the scan (the only NDP-eligible
            // shape, §V-C). Streaming group-by needs index order.
            if self.select.is_some() {
                return Err(Error::Unsupported(
                    "select() cannot be combined with group_by()/agg(): an \
                     aggregate query returns `group columns ++ aggregates`"
                        .into(),
                ));
            }
            let key = self.table.index(self.index).tree.def.effective_key_cols();
            let group_is_prefix = self.group.len() <= key.len()
                && self.group.iter().zip(key.iter()).all(|(a, b)| a == b);
            if !group_is_prefix {
                let names = |cols: &[usize]| {
                    cols.iter()
                        .map(|&c| schema.columns[c].name.clone())
                        .collect::<Vec<_>>()
                        .join(", ")
                };
                return Err(Error::Unsupported(format!(
                    "GROUP BY ({}) is not a prefix of index `{}` key ({}); \
                     streaming aggregation requires key-prefix grouping",
                    names(&self.group),
                    self.table.index(self.index).tree.def.name,
                    names(&key),
                )));
            }
            let mut output: Vec<usize> = self.group.clone();
            for item in &self.aggs {
                if let Some(e) = &item.input {
                    for c in e.columns() {
                        if !output.contains(&c) {
                            output.push(c);
                        }
                    }
                }
            }
            for &c in &predicate_cols {
                if !output.contains(&c) {
                    output.push(c);
                }
            }
            self.check_index_coverage(&output)?;
            let scan = ScanNode::new(&schema.name, output)
                .with_index(self.index)
                .with_predicate(self.filters.clone());
            let mut plan = Plan::AggScan(AggScanNode {
                scan,
                group_cols: self.group.clone(),
                aggs: self.aggs.clone(),
            });
            if let Some(d) = self.degree {
                plan = plan.exchange(d);
            }
            (plan, self.group.len() + self.aggs.len())
        };

        finish_ordering(plan, width, &self.order, self.limit)
    }

    /// The optimized plan this builder lowers to: built, then run through
    /// the §IV-B NDP post-processing pass (when the session has NDP on).
    pub fn plan(&self) -> Result<(Plan, Vec<NdpReport>)> {
        let mut plan = self.build()?;
        let reports = if self.session.ndp {
            ndp_post_process(&mut plan, &self.session.db)?
        } else {
            Vec::new()
        };
        // Debug builds verify every built plan — builder bugs (and NDP
        // post-processing bugs) reject here with structured diagnostics
        // rather than surfacing downstream.
        #[cfg(debug_assertions)]
        taurus_verify::check_plan(&plan, &self.session.db)?;
        Ok((plan, reports))
    }

    // --- terminals ----------------------------------------------------------

    /// EXPLAIN: the optimized plan rendering plus per-table NDP reports.
    pub fn explain(&self) -> Result<Explained> {
        let (plan, reports) = self.plan()?;
        Ok(Explained {
            text: taurus_optimizer::explain(&plan, &self.session.db),
            reports,
        })
    }

    /// Execute and stream rows. Every plan streams through the operator
    /// pipeline: plain scans straight from storage, composed plans
    /// batch-at-a-time from the lowered operator tree (pipeline breakers
    /// — aggregates, sorts, PQ gather — materialize only at their
    /// breaker). A full result set is never materialized at the API
    /// boundary, and dropping the stream cancels the producing scans.
    pub fn stream(self) -> Result<RowStream> {
        let (plan, _) = self.plan()?;
        Ok(RowStream::spawn_plan(
            self.session.db.clone(),
            plan,
            self.session.view.clone(),
            self.session.query_ctx(),
        ))
    }

    /// Execute and materialize all rows.
    pub fn collect_rows(self) -> Result<Vec<Row>> {
        let (plan, _) = self.plan()?;
        self.session.execute_plan(&plan)
    }

    /// Execute, returning rows plus the measurements the paper's figures
    /// are made of (wall time, SQL-node CPU, network bytes).
    pub fn run(self) -> Result<QueryRun> {
        let (plan, _) = self.plan()?;
        let db = &self.session.db;
        let before = db.metrics().snapshot();
        let t0 = std::time::Instant::now();
        let rows = {
            let _cpu = CpuGuard::new(&db.metrics().compute_cpu_ns);
            self.session.execute_plan(&plan)?
        };
        let wall = t0.elapsed();
        let delta = db.metrics().snapshot().since(&before);
        Ok(QueryRun { rows, wall, delta })
    }
}

/// Apply ORDER BY / LIMIT with result-position validation.
fn finish_ordering(
    plan: Plan,
    width: usize,
    order: &[(usize, bool)],
    limit: Option<usize>,
) -> Result<Plan> {
    for &(pos, _) in order {
        if pos >= width {
            return Err(Error::NameResolution(format!(
                "ORDER BY position {pos} out of range for a {width}-column result"
            )));
        }
    }
    Ok(match (order.is_empty(), limit) {
        (false, Some(n)) => plan.top_n(order.to_vec(), n),
        (false, None) => plan.sort(order.to_vec()),
        (true, Some(n)) => plan.limit(n),
        (true, None) => plan,
    })
}
