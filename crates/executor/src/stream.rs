//! Streaming query results.
//!
//! [`RowStream`] is the default result type of the [`crate::Session`]
//! facade: a pull-based iterator of rows backed by a producer thread and
//! a small bounded channel of **row batches** — one channel message per
//! batch, rows popped locally from the current batch. Since the operator
//! pipeline landed, *any* plan streams: the producer thread lowers the
//! plan ([`crate::op::lower`]) and pulls its root operator, so a
//! sort-free filter/project/limit over a join or aggregate streams
//! without materializing the full result set. Pipeline breakers
//! (aggregation, sorts, hash-join builds, PQ gather) materialize at
//! their breaker *inside* the pipeline and re-emit in batches.
//!
//! The pipeline advances only as fast as the stream is pulled. Dropping
//! the stream closes the channel; the producer's next send fails, it
//! stops pulling the root operator, and closing the operator tree
//! cancels every in-flight scan (their own channel receivers disappear,
//! surfacing as `ScanConsumer` early termination). Bare scans skip the
//! operator hop entirely and run the scan core straight into the stream
//! channel — the PR-2 fast path, unchanged.

use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::Arc;
use std::thread::JoinHandle;

use taurus_common::batch::RowBatchIter;
use taurus_common::metrics::CpuGuard;
use taurus_common::schema::Row;
use taurus_common::{Batch, QueryCtx, Result, RowBatch};
use taurus_expr::ast::Expr;
use taurus_ndp::{ReadView, TaurusDb};
use taurus_optimizer::plan::{Plan, ScanNode};

use crate::exec::ExecContext;
use crate::op::{lower, run_scan_producer};

/// How many row batches the producer may run ahead of the consumer. The
/// look-ahead bound is batch-granular: up to this many queued batches
/// plus the one being built, i.e. ~3 × `scan_batch_rows` rows of
/// materialized look-ahead at most — kept small deliberately so an
/// abandoned stream wastes little scan work and memory.
pub(crate) const STREAM_CHANNEL_BATCHES: usize = 2;

/// An iterator of query result rows; see the module docs for how plans
/// stream and where pipeline breakers materialize. Always backed by a
/// live producer thread behind a bounded batch channel.
pub struct RowStream {
    rx: Receiver<Result<Batch>>,
    /// Rows of the most recently received batch, popped locally.
    cur: RowBatchIter,
    producer: Option<JoinHandle<()>>,
}

impl RowStream {
    /// Spawn a producer thread executing `plan` under `view`, delivering
    /// row batches through a bounded channel. Bare scans (optionally
    /// under a prefix projection, which the builder uses to hide
    /// predicate-only columns) take the direct scan-core fast path;
    /// everything else lowers to the operator pipeline on the producer
    /// thread.
    pub(crate) fn spawn_plan(
        db: Arc<TaurusDb>,
        plan: Plan,
        view: ReadView,
        qctx: QueryCtx,
    ) -> RowStream {
        // Debug builds verify the plan before anything spawns; a
        // rejected plan surfaces as the stream's first (and only) item,
        // before any operator opens or scan producer starts.
        #[cfg(debug_assertions)]
        if let Err(e) = taurus_verify::check_plan(&plan, &db) {
            return RowStream::fail(e);
        }
        match plan {
            Plan::Scan(node) => RowStream::spawn_scan(db, node, view, qctx, None),
            Plan::Project(p) if project_is_prefix(&p.exprs) => {
                let keep: Vec<usize> = (0..p.exprs.len()).collect();
                match *p.input {
                    Plan::Scan(node) => RowStream::spawn_scan(db, node, view, qctx, Some(keep)),
                    other => RowStream::spawn_pipeline(
                        db,
                        Plan::Project(taurus_optimizer::plan::ProjectNode {
                            input: Box::new(other),
                            exprs: p.exprs,
                        }),
                        view,
                        qctx,
                    ),
                }
            }
            other => RowStream::spawn_pipeline(db, other, view, qctx),
        }
    }

    /// A stream that delivers exactly one error: the verification gate's
    /// rejection, produced before any operator or producer existed.
    #[cfg(debug_assertions)]
    fn fail(e: taurus_common::Error) -> RowStream {
        let (tx, rx) = sync_channel::<Result<Batch>>(1);
        let _ = tx.send(Err(e));
        RowStream {
            rx,
            cur: RowBatchIter::empty(),
            producer: None,
        }
    }

    /// The general path: lower the plan on the producer thread and pull
    /// its root operator into the stream channel.
    fn spawn_pipeline(db: Arc<TaurusDb>, plan: Plan, view: ReadView, qctx: QueryCtx) -> RowStream {
        let (tx, rx) = sync_channel::<Result<Batch>>(STREAM_CHANNEL_BATCHES);
        let producer = std::thread::Builder::new()
            .name("taurus-row-stream".into())
            .spawn(move || {
                // The producer is a compute-node thread: its CPU lands in
                // `compute_cpu_ns`, like any query thread.
                let _cpu = CpuGuard::new(&db.metrics().compute_cpu_ns);
                // A panic must surface as a stream error, not as a clean
                // (truncated!) end-of-stream: catch it and send it over.
                let result =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| -> Result<()> {
                        let ctx = ExecContext {
                            db: &db,
                            view,
                            qctx,
                        };
                        crossbeam::thread::scope(|s| -> Result<()> {
                            let mut root = lower(&plan, &ctx, s)?;
                            root.open()?;
                            while let Some(batch) = root.next_batch()? {
                                if tx.send(Ok(batch)).is_err() {
                                    // Receiver gone (dropped stream): stop
                                    // pulling; closing the tree cancels
                                    // every in-flight scan.
                                    break;
                                }
                            }
                            root.close();
                            Ok(())
                        })
                        // lint:allow(panic): inside catch_unwind; re-raising a child
                        // panic here surfaces it as a stream error below
                        .expect("stream pipeline scope panicked")
                    }));
                match result {
                    Ok(Ok(())) => {}
                    // Receiver may already be gone; nothing else to do then.
                    Ok(Err(e)) => {
                        let _ = tx.send(Err(e));
                    }
                    Err(panic) => {
                        let msg = panic
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| panic.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".into());
                        let _ = tx.send(Err(taurus_common::Error::Internal(format!(
                            "row-stream producer panicked: {msg}"
                        ))));
                    }
                }
            })
            // lint:allow(panic): thread spawn fails only on OS resource exhaustion
            .expect("spawn row-stream producer");
        RowStream {
            rx,
            cur: RowBatchIter::empty(),
            producer: Some(producer),
        }
    }

    /// Fast path for bare scans: run the scan core straight into the
    /// stream channel (no operator hop). `project` optionally narrows
    /// each delivered row to the given scan-output positions.
    pub(crate) fn spawn_scan(
        db: Arc<TaurusDb>,
        node: ScanNode,
        view: ReadView,
        qctx: QueryCtx,
        project: Option<Vec<usize>>,
    ) -> RowStream {
        let (tx, rx) = sync_channel::<Result<Batch>>(STREAM_CHANNEL_BATCHES);
        let producer = std::thread::Builder::new()
            .name("taurus-row-stream".into())
            .spawn(move || run_scan_producer(&db, &node, view, qctx, &tx, project))
            // lint:allow(panic): thread spawn fails only on OS resource exhaustion
            .expect("spawn row-stream producer");
        RowStream {
            rx,
            cur: RowBatchIter::empty(),
            producer: Some(producer),
        }
    }

    /// Drain the stream into a vector (convenience terminal).
    pub fn collect_rows(self) -> Result<Vec<Row>> {
        self.collect()
    }

    /// Pull the next whole batch. This is the wire path of the network
    /// server: result frames encode straight from these batches, no
    /// per-row rematerialization between the scan pipeline and the
    /// socket. Rows already popped by `next()` are not repeated — a
    /// partially-consumed current batch is drained into a fresh batch
    /// first. `None` means the producer finished cleanly. Columnar
    /// pipeline batches resolve to dense row-major form right here — the
    /// wire protocol and every caller above this line are layout-blind.
    pub fn next_batch(&mut self) -> Option<Result<RowBatch>> {
        if self.cur.len() > 0 {
            let mut b = RowBatch::with_capacity(self.cur.width(), self.cur.len());
            for row in self.cur.by_ref() {
                b.push_row(row);
            }
            return Some(Ok(b));
        }
        self.rx.recv().ok().map(|r| r.map(Batch::into_row_batch))
    }
}

/// Are the projection expressions exactly `col0, col1, ... colN`?
fn project_is_prefix(exprs: &[Expr]) -> bool {
    exprs
        .iter()
        .enumerate()
        .all(|(i, e)| matches!(e, Expr::Col(c) if *c == i))
}

impl Iterator for RowStream {
    type Item = Result<Row>;

    fn next(&mut self) -> Option<Result<Row>> {
        loop {
            if let Some(row) = self.cur.next() {
                return Some(Ok(row));
            }
            match self.rx.recv() {
                Ok(Ok(batch)) => self.cur = batch.into_row_batch().into_rows(),
                Ok(Err(e)) => return Some(Err(e)),
                Err(_) => return None, // producer finished
            }
        }
    }
}

impl Drop for RowStream {
    fn drop(&mut self) {
        // Unblock the producer (its next send fails), then join it so no
        // pipeline outlives the stream handle. Batches already buffered
        // locally in `cur` are simply dropped.
        drop(std::mem::replace(&mut self.rx, sync_channel(1).1));
        if let Some(h) = self.producer.take() {
            let _ = h.join();
        }
    }
}
