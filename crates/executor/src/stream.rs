//! Streaming query results.
//!
//! [`RowStream`] is the default result type of the [`crate::Session`]
//! facade: a pull-based iterator of rows. For plain table scans it is
//! backed by the engine's push-based [`ScanConsumer`] callbacks running on
//! a producer thread behind a small bounded channel, so the scan advances
//! only as fast as the consumer pulls — dropping the stream early stops
//! the scan after at most one channel's worth of look-ahead, and a full
//! result set is never materialized at the API boundary. Pipeline-breaking
//! plans (aggregation, joins, sorts) materialize at their breaker exactly
//! as the Volcano executor always has, and stream the final operator's
//! output from memory.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

use taurus_common::metrics::CpuGuard;
use taurus_common::schema::Row;
use taurus_common::{Result, Value};
use taurus_expr::agg::AggState;
use taurus_expr::ast::Expr;
use taurus_expr::eval::eval_pred;
use taurus_ndp::{scan, ReadView, ScanConsumer, TaurusDb};
use taurus_optimizer::plan::ScanNode;

use crate::exec::{remap_to_output, scan_spec, ExecContext};

/// How many rows the scan may run ahead of the consumer.
pub(crate) const STREAM_CHANNEL_ROWS: usize = 256;

/// An iterator of query result rows; see the module docs for which plans
/// stream from storage and which stream from a materialized breaker.
pub struct RowStream {
    inner: StreamInner,
}

enum StreamInner {
    /// Live scan on a producer thread; ends when the channel drains.
    Scan {
        rx: Receiver<Result<Row>>,
        producer: Option<JoinHandle<()>>,
    },
    /// Output of a materializing operator.
    Rows(std::vec::IntoIter<Row>),
}

impl RowStream {
    pub(crate) fn from_rows(rows: Vec<Row>) -> RowStream {
        RowStream {
            inner: StreamInner::Rows(rows.into_iter()),
        }
    }

    /// Spawn a producer thread scanning `node` under `view`, delivering
    /// rows through a bounded channel. `project` optionally narrows each
    /// delivered row to the given scan-output positions (the builder uses
    /// this to hide predicate-only columns).
    pub(crate) fn spawn_scan(
        db: Arc<TaurusDb>,
        node: ScanNode,
        view: ReadView,
        project: Option<Vec<usize>>,
    ) -> RowStream {
        let (tx, rx) = sync_channel::<Result<Row>>(STREAM_CHANNEL_ROWS);
        let producer = std::thread::Builder::new()
            .name("taurus-row-stream".into())
            .spawn(move || {
                // The producer is a compute-node thread: its CPU lands in
                // `compute_cpu_ns`, like any query thread.
                let _cpu = CpuGuard::new(&db.metrics().compute_cpu_ns);
                let result = (|| -> Result<()> {
                    let table = db.table(&node.table)?;
                    let ctx = ExecContext { db: &db, view };
                    let spec = scan_spec(&node, &ctx, None, None)?;
                    let residual: Vec<Expr> = node
                        .residual_conjuncts()
                        .into_iter()
                        .map(|e| remap_to_output(e, &node.output))
                        .collect();
                    let mut consumer = ChannelConsumer {
                        tx: &tx,
                        residual,
                        project,
                    };
                    scan(ctx.db, &table, &spec, &ctx.view, &mut consumer)?;
                    Ok(())
                })();
                if let Err(e) = result {
                    // Receiver may already be gone; nothing else to do then.
                    let _ = tx.send(Err(e));
                }
            })
            .expect("spawn row-stream producer");
        RowStream {
            inner: StreamInner::Scan {
                rx,
                producer: Some(producer),
            },
        }
    }

    /// Drain the stream into a vector (convenience terminal).
    pub fn collect_rows(self) -> Result<Vec<Row>> {
        self.collect()
    }
}

impl Iterator for RowStream {
    type Item = Result<Row>;

    fn next(&mut self) -> Option<Result<Row>> {
        match &mut self.inner {
            StreamInner::Scan { rx, .. } => rx.recv().ok(),
            StreamInner::Rows(it) => it.next().map(Ok),
        }
    }
}

impl Drop for RowStream {
    fn drop(&mut self) {
        if let StreamInner::Scan { rx, producer } = &mut self.inner {
            // Unblock the producer (its next send fails), then join it so
            // no scan outlives the stream handle.
            drop(std::mem::replace(rx, sync_channel(1).1));
            if let Some(h) = producer.take() {
                let _ = h.join();
            }
        }
    }
}

/// ScanConsumer that forwards surviving rows into the channel.
struct ChannelConsumer<'a> {
    tx: &'a SyncSender<Result<Row>>,
    /// Residual predicate conjuncts over scan-output positions.
    residual: Vec<Expr>,
    /// Narrow delivered rows to these scan-output positions.
    project: Option<Vec<usize>>,
}

impl ScanConsumer for ChannelConsumer<'_> {
    fn on_row(&mut self, row: &[Value]) -> Result<bool> {
        for p in &self.residual {
            if eval_pred(p, row)? != Some(true) {
                return Ok(true);
            }
        }
        let out: Row = match &self.project {
            Some(keep) => keep.iter().map(|&p| row[p].clone()).collect(),
            None => row.to_vec(),
        };
        // A closed receiver means the consumer stopped pulling (dropped
        // stream, early break): end the scan without error.
        Ok(self.tx.send(Ok(out)).is_ok())
    }

    fn on_partial(&mut self, _states: Vec<AggState>) -> Result<bool> {
        Err(taurus_common::Error::Internal(
            "row stream received aggregate partials".into(),
        ))
    }
}
