//! Streaming query results.
//!
//! [`RowStream`] is the default result type of the [`crate::Session`]
//! facade: a pull-based iterator of rows. For plain table scans it is
//! backed by the engine's push-based [`ScanConsumer`] callbacks running on
//! a producer thread behind a small bounded channel of **row batches**:
//! the scan delivers whole [`RowBatch`]es, the producer sends one channel
//! message per batch (not per row), and the iterator pops rows from its
//! current batch locally. The scan advances only as fast as the consumer
//! pulls — dropping the stream early stops the scan after at most one
//! channel's worth of batch look-ahead — and a full result set is never
//! materialized at the API boundary. Pipeline-breaking plans
//! (aggregation, joins, sorts) materialize at their breaker exactly as
//! the Volcano executor always has, and stream the final operator's
//! output from memory.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

use taurus_common::batch::RowBatchIter;
use taurus_common::metrics::CpuGuard;
use taurus_common::schema::Row;
use taurus_common::{Result, RowBatch, Value};
use taurus_expr::agg::AggState;
use taurus_expr::ast::Expr;
use taurus_ndp::{scan, ReadView, ScanConsumer, TaurusDb};
use taurus_optimizer::plan::ScanNode;

use crate::exec::{remap_to_output, residual_survives, scan_spec, ExecContext};

/// How many row batches the scan may run ahead of the consumer. The
/// look-ahead bound is batch-granular now: up to this many queued
/// batches plus the one being built, i.e. ~3 × `scan_batch_rows` rows
/// of materialized look-ahead at most — kept small deliberately so an
/// abandoned stream wastes little scan work and memory.
pub(crate) const STREAM_CHANNEL_BATCHES: usize = 2;

/// An iterator of query result rows; see the module docs for which plans
/// stream from storage and which stream from a materialized breaker.
pub struct RowStream {
    inner: StreamInner,
}

enum StreamInner {
    /// Live scan on a producer thread; ends when the channel drains.
    Scan {
        rx: Receiver<Result<RowBatch>>,
        /// Rows of the most recently received batch, popped locally.
        cur: RowBatchIter,
        producer: Option<JoinHandle<()>>,
    },
    /// Output of a materializing operator.
    Rows(std::vec::IntoIter<Row>),
}

impl RowStream {
    pub(crate) fn from_rows(rows: Vec<Row>) -> RowStream {
        RowStream {
            inner: StreamInner::Rows(rows.into_iter()),
        }
    }

    /// Spawn a producer thread scanning `node` under `view`, delivering
    /// row batches through a bounded channel. `project` optionally narrows
    /// each delivered row to the given scan-output positions (the builder
    /// uses this to hide predicate-only columns).
    pub(crate) fn spawn_scan(
        db: Arc<TaurusDb>,
        node: ScanNode,
        view: ReadView,
        project: Option<Vec<usize>>,
    ) -> RowStream {
        let (tx, rx) = sync_channel::<Result<RowBatch>>(STREAM_CHANNEL_BATCHES);
        let producer = std::thread::Builder::new()
            .name("taurus-row-stream".into())
            .spawn(move || {
                // The producer is a compute-node thread: its CPU lands in
                // `compute_cpu_ns`, like any query thread.
                let _cpu = CpuGuard::new(&db.metrics().compute_cpu_ns);
                // A panic must surface as a stream error, not as a clean
                // (truncated!) end-of-stream: catch it and send it over.
                let result =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| -> Result<()> {
                        let table = db.table(&node.table)?;
                        let ctx = ExecContext { db: &db, view };
                        let spec = scan_spec(&node, &ctx, None, None)?;
                        let residual: Vec<Expr> = node
                            .residual_conjuncts()
                            .into_iter()
                            .map(|e| remap_to_output(e, &node.output))
                            .collect();
                        let mut consumer = ChannelConsumer {
                            tx: &tx,
                            residual,
                            project,
                        };
                        scan(ctx.db, &table, &spec, &ctx.view, &mut consumer)?;
                        Ok(())
                    }));
                match result {
                    Ok(Ok(())) => {}
                    // Receiver may already be gone; nothing else to do then.
                    Ok(Err(e)) => {
                        let _ = tx.send(Err(e));
                    }
                    Err(panic) => {
                        let msg = panic
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| panic.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".into());
                        let _ = tx.send(Err(taurus_common::Error::Internal(format!(
                            "row-stream producer panicked: {msg}"
                        ))));
                    }
                }
            })
            .expect("spawn row-stream producer");
        RowStream {
            inner: StreamInner::Scan {
                rx,
                cur: RowBatchIter::empty(),
                producer: Some(producer),
            },
        }
    }

    /// Drain the stream into a vector (convenience terminal).
    pub fn collect_rows(self) -> Result<Vec<Row>> {
        self.collect()
    }
}

impl Iterator for RowStream {
    type Item = Result<Row>;

    fn next(&mut self) -> Option<Result<Row>> {
        match &mut self.inner {
            StreamInner::Scan { rx, cur, .. } => loop {
                if let Some(row) = cur.next() {
                    return Some(Ok(row));
                }
                match rx.recv() {
                    Ok(Ok(batch)) => *cur = batch.into_rows(),
                    Ok(Err(e)) => return Some(Err(e)),
                    Err(_) => return None, // producer finished
                }
            },
            StreamInner::Rows(it) => it.next().map(Ok),
        }
    }
}

impl Drop for RowStream {
    fn drop(&mut self) {
        if let StreamInner::Scan { rx, producer, .. } = &mut self.inner {
            // Unblock the producer (its next send fails), then join it so
            // no scan outlives the stream handle. Batches already buffered
            // locally in `cur` are simply dropped.
            drop(std::mem::replace(rx, sync_channel(1).1));
            if let Some(h) = producer.take() {
                let _ = h.join();
            }
        }
    }
}

/// ScanConsumer that forwards surviving rows into the channel, one
/// message per batch.
struct ChannelConsumer<'a> {
    tx: &'a SyncSender<Result<RowBatch>>,
    /// Residual predicate conjuncts over scan-output positions.
    residual: Vec<Expr>,
    /// Narrow delivered rows to these scan-output positions.
    project: Option<Vec<usize>>,
}

impl ChannelConsumer<'_> {
    fn survives(&self, row: &[Value]) -> Result<bool> {
        residual_survives(&self.residual, row)
    }

    fn out_width(&self, in_width: usize) -> usize {
        self.project.as_ref().map_or(in_width, |keep| keep.len())
    }

    fn push_projected(&self, out: &mut RowBatch, row: &[Value]) {
        match &self.project {
            Some(keep) => out.push_row(keep.iter().map(|&p| row[p].clone())),
            None => out.push_row(row.iter().cloned()),
        }
    }
}

impl ScanConsumer for ChannelConsumer<'_> {
    fn on_row(&mut self, row: &[Value]) -> Result<bool> {
        // Row-at-a-time fallback (the scan core always batches): wrap the
        // row in a single-row batch.
        if !self.survives(row)? {
            return Ok(true);
        }
        let mut out = RowBatch::with_capacity(self.out_width(row.len()), 1);
        self.push_projected(&mut out, row);
        Ok(self.tx.send(Ok(out)).is_ok())
    }

    fn on_batch(&mut self, batch: &RowBatch) -> Result<bool> {
        if self.residual.is_empty() && self.project.is_none() {
            // Nothing to filter or narrow: forward the batch as-is (one
            // allocation, one value clone — no per-row rebuild).
            return Ok(self.tx.send(Ok(batch.clone())).is_ok());
        }
        let mut out = RowBatch::with_capacity(self.out_width(batch.width()), batch.len());
        for row in batch.rows() {
            if self.survives(row)? {
                self.push_projected(&mut out, row);
            }
        }
        if out.is_empty() {
            // Everything filtered: nothing to hand over, keep scanning.
            return Ok(true);
        }
        // A closed receiver means the consumer stopped pulling (dropped
        // stream, early break): end the scan without error.
        Ok(self.tx.send(Ok(out)).is_ok())
    }

    fn on_partial(&mut self, _states: Vec<AggState>) -> Result<bool> {
        Err(taurus_common::Error::Internal(
            "row stream received aggregate partials".into(),
        ))
    }
}
