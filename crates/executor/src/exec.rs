//! The executor's scan/aggregate/join machinery and the `execute()`
//! entry point.
//!
//! Since the batch-native pull pipeline ([`crate::op`]) landed,
//! `execute()` is a thin collect over the lowered operator tree: rows
//! flow batch-at-a-time between operators, only genuine pipeline
//! breakers (sort, aggregation, hash-join build, PQ gather) materialize,
//! and `LIMIT` cancels its producing scans instead of truncating a
//! materialized input. This module keeps the shared execution machinery
//! the operators (and the PQ worker paths in [`crate::parallel`]) are
//! built from: NDP-aware scan specs and consumers, streaming/hash
//! aggregation with partial-merge support, and index lookup probing.
//! The executor is the "SQL layer" of the paper: it evaluates residual
//! predicates and merges NDP aggregate partials — without knowing
//! whether the work below happened in a Page Store or on the compute
//! node.

use std::collections::HashMap;

use taurus_common::schema::Row;
use taurus_common::{Dec, Error, QueryCtx, Result, RowBatch, Value};
use taurus_expr::agg::{AggSpec, AggState};
use taurus_expr::ast::Expr;
use taurus_expr::eval::{eval, eval_pred};
use taurus_expr::ir::encode_value;
use taurus_ndp::ReadView;
use taurus_ndp::{scan_ctx, NdpChoice, ScanConsumer, ScanRange, ScanSpec, TaurusDb};
use taurus_optimizer::plan::{
    AggFuncEx, AggItem, AggScanNode, HashAggNode, JoinType, LookupJoinNode, Plan, ScanNode,
};

/// Execution context for one query.
pub struct ExecContext<'a> {
    pub db: &'a TaurusDb,
    pub view: ReadView,
    /// Governance context (tenant identity + deadline) billed and checked
    /// by every scan this query issues. Defaults to the anonymous tenant
    /// with no deadline.
    pub qctx: QueryCtx,
}

impl<'a> ExecContext<'a> {
    pub fn new(db: &'a TaurusDb) -> ExecContext<'a> {
        ExecContext {
            db,
            view: db.read_view(0),
            qctx: QueryCtx::new(),
        }
    }
}

/// Execute a plan to completion: lower it to the batch-native pull
/// pipeline ([`crate::op`]) and collect every emitted batch. Scan
/// producers run on scoped threads and are joined (or cancelled, on
/// error/limit) before this returns.
pub fn execute(plan: &Plan, ctx: &ExecContext<'_>) -> Result<Vec<Row>> {
    // Debug builds verify the plan before any operator lowers: malformed
    // plans are rejected here with structured diagnostics
    // (`Error::Verify`) instead of surfacing mid-scan. Release builds
    // rely on the same checks having run in CI (`taurus-verify --all`)
    // plus the typed per-site errors below.
    #[cfg(debug_assertions)]
    taurus_verify::check_plan(plan, ctx.db)?;
    crossbeam::thread::scope(|s| -> Result<Vec<Row>> {
        let mut root = crate::op::lower(plan, ctx, s)?;
        root.open()?;
        let mut out: Vec<Row> = Vec::new();
        while let Some(batch) = root.next_batch()? {
            let batch = batch.into_row_batch();
            out.reserve(batch.len());
            out.extend(batch.into_rows());
        }
        root.close();
        Ok(out)
    })
    // lint:allow(panic): a panicking scoped thread already poisoned the scope;
    // stream/session entry points catch this and surface a stream error
    .expect("executor scope panicked")
}

// --- scans -------------------------------------------------------------------

/// Resolve a [`RangeSpec`] (literal key values) into encoded bounds.
fn encode_range(node: &ScanNode, ctx: &ExecContext<'_>) -> Result<ScanRange> {
    let table = ctx.db.table(&node.table)?;
    let tree = &table.index(node.index).tree;
    let enc = |b: &Option<(Vec<Value>, bool)>| {
        b.as_ref()
            .map(|(vals, inc)| (tree.encode_search_key(vals), *inc))
    };
    Ok(ScanRange {
        lower: enc(&node.range.lower),
        upper: enc(&node.range.upper),
    })
}

/// Build the core [`ScanSpec`] for a scan node.
pub(crate) fn scan_spec(
    node: &ScanNode,
    ctx: &ExecContext<'_>,
    range_override: Option<ScanRange>,
    extra_ndp_agg: Option<&NdpChoice>,
) -> Result<ScanSpec> {
    let range = match range_override {
        Some(r) => r,
        None => encode_range(node, ctx)?,
    };
    let ndp = match (&node.ndp, extra_ndp_agg) {
        (_, Some(full_choice)) => Some(full_choice.clone()),
        (Some(d), None) => Some(d.choice.clone()),
        (None, None) => None,
    };
    Ok(ScanSpec {
        index: node.index,
        range,
        ndp,
        output_cols: node.output.clone(),
    })
}

/// Does `row` pass every residual predicate conjunct? The one shared
/// definition of residual semantics for all scan consumers.
pub(crate) fn residual_survives(residual: &[Expr], row: &[Value]) -> Result<bool> {
    for p in residual {
        if eval_pred(p, row)? != Some(true) {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Map table-column expressions onto scan-output positions, delegating
/// to the verifier's shared definition ([`taurus_verify::remap_onto`]).
/// A column the scan does not deliver is a malformed plan — reported as
/// [`Error::Verify`] with the same structured diagnostic the
/// pre-execution gate produces, never a panic (plans can reach the
/// executor from hand-built trees, not just the vetted builder).
pub(crate) fn remap_to_output(e: &Expr, output: &[usize]) -> Result<Expr> {
    taurus_verify::remap_onto(
        e,
        output,
        taurus_verify::DiagKind::ResidualNotInOutput,
        "scan",
    )
    .map_err(|d| Error::Verify(d.to_string()))
}

struct RowCollector {
    rows: Vec<Row>,
    residual: Vec<Expr>,
}

impl RowCollector {
    fn accept(&mut self, row: &[Value]) -> Result<()> {
        if residual_survives(&self.residual, row)? {
            self.rows.push(row.to_vec());
        }
        Ok(())
    }
}

impl ScanConsumer for RowCollector {
    fn on_row(&mut self, row: &[Value]) -> Result<bool> {
        self.accept(row)?;
        Ok(true)
    }

    fn on_batch(&mut self, batch: &RowBatch) -> Result<bool> {
        if self.residual.is_empty() {
            // Every row survives: reserve exactly once per batch.
            self.rows.reserve(batch.len());
        }
        for row in batch.rows() {
            self.accept(row)?;
        }
        Ok(true)
    }

    fn on_partial(&mut self, _states: Vec<AggState>) -> Result<bool> {
        Err(Error::Internal(
            "plain scan received aggregate partials".into(),
        ))
    }
}

/// Run a plain scan: residual filtering fused into the consumer.
pub(crate) fn exec_scan(
    node: &ScanNode,
    ctx: &ExecContext<'_>,
    range_override: Option<ScanRange>,
) -> Result<Vec<Row>> {
    let table = ctx.db.table(&node.table)?;
    let spec = scan_spec(node, ctx, range_override, None)?;
    let residual: Vec<Expr> = node
        .residual_conjuncts()
        .into_iter()
        .map(|e| remap_to_output(e, &node.output))
        .collect::<Result<_>>()?;
    let mut c = RowCollector {
        rows: Vec::new(),
        residual,
    };
    scan_ctx(ctx.db, &table, &spec, &ctx.view, ctx.qctx, &mut c)?;
    Ok(c.rows)
}

// --- aggregation -------------------------------------------------------------

/// Executor-side aggregate state (supports AVG via SUM+COUNT).
#[derive(Clone, Debug)]
pub(crate) enum AggStateEx {
    Simple(AggState),
    Avg { sum: AggState, count: i64 },
}

impl AggStateEx {
    pub(crate) fn new(item: &AggItem, dtypes: &[taurus_common::DataType]) -> AggStateEx {
        let input_dtype = item.input.as_ref().and_then(|e| e.dtype(dtypes).ok());
        match item.func {
            AggFuncEx::Avg => AggStateEx::Avg {
                sum: AggState::new(
                    &AggSpec {
                        func: taurus_expr::agg::AggFunc::Sum,
                        col: None,
                    },
                    input_dtype,
                ),
                count: 0,
            },
            f => {
                // lint:allow(panic): AVG was decomposed to SUM+COUNT above
                let func = f.storage_func().expect("non-AVG");
                AggStateEx::Simple(AggState::new(&AggSpec { func, col: None }, input_dtype))
            }
        }
    }

    pub(crate) fn update(&mut self, v: &Value) {
        match self {
            AggStateEx::Simple(s) => s.update(v),
            AggStateEx::Avg { sum, count } => {
                if !v.is_null() {
                    sum.update(v);
                    *count += 1;
                }
            }
        }
    }

    /// Merge storage partials. An AVG state consumes *two* storage states
    /// (SUM + COUNT — the §III decomposition); others consume one.
    /// Returns how many were consumed.
    pub(crate) fn merge_partial(&mut self, others: &[AggState]) -> Result<usize> {
        match self {
            AggStateEx::Simple(s) => {
                s.merge(
                    others
                        .first()
                        .ok_or_else(|| Error::Internal("missing storage partial".into()))?,
                )?;
                Ok(1)
            }
            AggStateEx::Avg { sum, count } => {
                let (s, c) = match others {
                    [s, c, ..] => (s, c),
                    _ => return Err(Error::Internal("AVG needs SUM+COUNT partials".into())),
                };
                sum.merge(s)?;
                match c {
                    AggState::Count(n) => *count += n,
                    other => {
                        return Err(Error::Internal(format!("AVG count partial is {other:?}")))
                    }
                }
                Ok(2)
            }
        }
    }

    pub(crate) fn merge_ex(&mut self, other: &AggStateEx) -> Result<()> {
        match (self, other) {
            (AggStateEx::Simple(a), AggStateEx::Simple(b)) => a.merge(b),
            (AggStateEx::Avg { sum: s1, count: c1 }, AggStateEx::Avg { sum: s2, count: c2 }) => {
                s1.merge(s2)?;
                *c1 += c2;
                Ok(())
            }
            _ => Err(Error::Internal("mismatched executor agg states".into())),
        }
    }

    pub(crate) fn finalize(&self) -> Value {
        match self {
            AggStateEx::Simple(s) => s.finalize(),
            AggStateEx::Avg { sum, count } => {
                if *count == 0 {
                    return Value::Null;
                }
                match sum.finalize() {
                    Value::Null => Value::Null,
                    Value::Int(v) => Value::Decimal(
                        Dec::from_int(v)
                            .div(Dec::from_int(*count))
                            // lint:allow(panic): a finalized group saw >= 1 row, count != 0
                            .expect("count>0"),
                    ),
                    Value::Decimal(d) => {
                        // lint:allow(panic): a finalized group saw >= 1 row, count != 0
                        Value::Decimal(d.div(Dec::from_int(*count)).expect("count>0"))
                    }
                    Value::Double(d) => Value::Double(d / *count as f64),
                    other => other,
                }
            }
        }
    }
}

/// Partially-aggregated groups keyed by encoded group values; mergeable
/// across PQ workers.
pub(crate) type AggPartials = Vec<(Vec<u8>, Row, Vec<AggStateEx>)>;

pub(crate) fn group_key_bytes(vals: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 8);
    for v in vals {
        encode_value(v, &mut out);
    }
    out
}

/// Merge partial group lists (leader side of PQ / plain finalize input).
pub(crate) fn merge_partial_groups(parts: Vec<AggPartials>) -> Result<AggPartials> {
    let mut map: HashMap<Vec<u8>, (Row, Vec<AggStateEx>)> = HashMap::new();
    let mut order: Vec<Vec<u8>> = Vec::new();
    for part in parts {
        for (key, gvals, states) in part {
            match map.get_mut(&key) {
                None => {
                    order.push(key.clone());
                    map.insert(key, (gvals, states));
                }
                Some((_, mine)) => {
                    for (m, s) in mine.iter_mut().zip(&states) {
                        m.merge_ex(s)?;
                    }
                }
            }
        }
    }
    order.sort_unstable();
    Ok(order
        .into_iter()
        .map(|k| {
            // lint:allow(panic): iterating keys collected from this very map
            let (g, s) = map.remove(&k).expect("present");
            (k, g, s)
        })
        .collect())
}

pub(crate) fn finalize_agg_groups(partials: AggPartials) -> Result<Vec<Row>> {
    Ok(partials
        .into_iter()
        .map(|(_, mut gvals, states)| {
            gvals.extend(states.iter().map(|s| s.finalize()));
            gvals
        })
        .collect())
}

/// Stream-aggregating consumer for `AggScan` (group = index prefix, so
/// rows arrive grouped; partials attach to the current group).
struct StreamAggConsumer<'a> {
    /// Positions of group columns within the delivered row.
    group_pos: Vec<usize>,
    /// Agg input expressions remapped to delivered-row positions.
    inputs: Vec<Option<Expr>>,
    items: &'a [AggItem],
    dtypes: Vec<taurus_common::DataType>,
    residual: Vec<Expr>,
    current: Option<(Vec<u8>, Row, Vec<AggStateEx>)>,
    done: AggPartials,
}

impl StreamAggConsumer<'_> {
    fn fresh_states(&self) -> Vec<AggStateEx> {
        self.items
            .iter()
            .map(|i| AggStateEx::new(i, &self.dtypes))
            .collect()
    }

    fn flush(&mut self) {
        if let Some(g) = self.current.take() {
            self.done.push(g);
        }
    }

    fn accept(&mut self, row: &[Value]) -> Result<()> {
        if !residual_survives(&self.residual, row)? {
            return Ok(());
        }
        let gvals: Row = self.group_pos.iter().map(|&p| row[p].clone()).collect();
        let key = group_key_bytes(&gvals);
        let switch = match &self.current {
            Some((k, _, _)) => *k != key,
            None => true,
        };
        if switch {
            self.flush();
            self.current = Some((key, gvals, self.fresh_states()));
        }
        // lint:allow(panic): the branch above just installed current for this key
        let (_, _, states) = self.current.as_mut().expect("set above");
        for (st, input) in states.iter_mut().zip(&self.inputs) {
            match input {
                None => st.update(&Value::Int(1)),
                Some(e) => st.update(&eval(e, row)?),
            }
        }
        Ok(())
    }
}

impl ScanConsumer for StreamAggConsumer<'_> {
    // The scan flushes its batch before any `on_partial`, so the carrier
    // row is always in `current` by the time partials arrive.
    fn on_row(&mut self, row: &[Value]) -> Result<bool> {
        self.accept(row)?;
        Ok(true)
    }

    fn on_batch(&mut self, batch: &RowBatch) -> Result<bool> {
        for row in batch.rows() {
            self.accept(row)?;
        }
        Ok(true)
    }

    // Columnar batches aggregate straight off the column vectors —
    // `value_at` gathers one cell at a time, no RowBatch is ever built.
    fn on_col_batch(&mut self, batch: &taurus_common::ColumnBatch) -> Result<bool> {
        let mut row: Row = Vec::with_capacity(batch.width());
        let indices: Vec<u32> = match batch.selection() {
            Some(sel) => sel.to_vec(),
            None => (0..batch.len() as u32).collect(),
        };
        for i in indices {
            row.clear();
            row.extend((0..batch.width()).map(|c| batch.value_at(c, i as usize)));
            self.accept(&row)?;
        }
        Ok(true)
    }

    fn on_partial(&mut self, states: Vec<AggState>) -> Result<bool> {
        let (_, _, mine) = self
            .current
            .as_mut()
            .ok_or_else(|| Error::Internal("partial before carrier row".into()))?;
        let mut at = 0usize;
        for m in mine.iter_mut() {
            at += m.merge_partial(&states[at..])?;
        }
        if at != states.len() {
            return Err(Error::Internal(format!(
                "storage sent {} partial states, consumed {at}",
                states.len()
            )));
        }
        Ok(true)
    }
}

/// Run an AggScan, returning mergeable partial groups.
pub(crate) fn exec_agg_scan_partials(
    node: &AggScanNode,
    ctx: &ExecContext<'_>,
    range_override: Option<ScanRange>,
) -> Result<AggPartials> {
    let table = ctx.db.table(&node.scan.table)?;
    let dtypes = table.schema.dtypes();
    let spec = scan_spec(&node.scan, ctx, range_override, None)?;
    let group_pos: Vec<usize> = node
        .group_cols
        .iter()
        .map(|c| {
            node.scan.output.iter().position(|o| o == c).ok_or_else(|| {
                Error::Verify(
                    taurus_verify::Diagnostic::error(
                        taurus_verify::DiagKind::GroupColNotInOutput,
                        "AggScan",
                        format!("group column {c} not in scan output {:?}", node.scan.output),
                    )
                    .to_string(),
                )
            })
        })
        .collect::<Result<_>>()?;
    let inputs: Vec<Option<Expr>> = node
        .aggs
        .iter()
        .map(|a| {
            a.input
                .as_ref()
                .map(|e| remap_to_output(e, &node.scan.output))
                .transpose()
        })
        .collect::<Result<_>>()?;
    let residual: Vec<Expr> = node
        .scan
        .residual_conjuncts()
        .into_iter()
        .map(|e| remap_to_output(e, &node.scan.output))
        .collect::<Result<_>>()?;
    let scalar = node.group_cols.is_empty();
    let mut c = StreamAggConsumer {
        group_pos,
        inputs,
        items: &node.aggs,
        dtypes,
        residual,
        current: None,
        done: Vec::new(),
    };
    if scalar {
        // Scalar aggregation always has exactly one group.
        c.current = Some((Vec::new(), Vec::new(), c.fresh_states()));
    }
    scan_ctx(ctx.db, &table, &spec, &ctx.view, ctx.qctx, &mut c)?;
    c.flush();
    Ok(c.done)
}

/// Streaming accumulator for generic hash aggregation: rows (from any
/// source — materialized vectors on the PQ worker path, pulled batches in
/// the operator pipeline) update grouped states one at a time; only the
/// grouped partials are ever held.
pub(crate) struct HashAggAcc<'a> {
    node: &'a HashAggNode,
    /// Input dtypes are unknowable in general; agg inputs are evaluated
    /// per row, so states infer their shape from the first value.
    dtypes: Vec<taurus_common::DataType>,
    map: HashMap<Vec<u8>, (Row, Vec<AggStateEx>)>,
}

impl<'a> HashAggAcc<'a> {
    pub(crate) fn new(node: &'a HashAggNode) -> HashAggAcc<'a> {
        HashAggAcc {
            node,
            dtypes: Vec::new(),
            map: HashMap::new(),
        }
    }

    pub(crate) fn update(&mut self, row: &[Value]) -> Result<()> {
        let gvals: Row = self
            .node
            .group
            .iter()
            .map(|e| eval(e, row))
            .collect::<Result<_>>()?;
        let key = group_key_bytes(&gvals);
        let entry = self.map.entry(key).or_insert_with(|| {
            (
                gvals.clone(),
                self.node
                    .aggs
                    .iter()
                    .map(|i| AggStateEx::new(i, &self.dtypes))
                    .collect(),
            )
        });
        for (st, item) in entry.1.iter_mut().zip(&self.node.aggs) {
            match &item.input {
                None => st.update(&Value::Int(1)),
                Some(e) => st.update(&eval(e, row)?),
            }
        }
        Ok(())
    }

    /// Grouped partials in encoded-key order (deterministic regardless of
    /// hash-map iteration order).
    pub(crate) fn finish(self) -> AggPartials {
        if self.map.is_empty() && self.node.group.is_empty() {
            // Scalar aggregate over an empty input: one all-initial group.
            let states: Vec<AggStateEx> = self
                .node
                .aggs
                .iter()
                .map(|i| AggStateEx::new(i, &self.dtypes))
                .collect();
            return vec![(Vec::new(), Vec::new(), states)];
        }
        let mut out: AggPartials = self.map.into_iter().map(|(k, (g, s))| (k, g, s)).collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

/// Run a generic HashAgg, returning mergeable partial groups. When the
/// input is a scan and `range_override` is given, the scan is bounded (PQ
/// worker path).
pub(crate) fn exec_hash_agg_partials(
    node: &HashAggNode,
    ctx: &ExecContext<'_>,
    range_override: Option<ScanRange>,
) -> Result<AggPartials> {
    let rows = match (&*node.input, range_override) {
        (Plan::Scan(s), ro) => exec_scan(s, ctx, ro)?,
        (other, None) => execute(other, ctx)?,
        (_, Some(_)) => {
            return Err(Error::Internal(
                "partitioned HashAgg requires a Scan input".into(),
            ))
        }
    };
    let mut acc = HashAggAcc::new(node);
    for row in rows {
        acc.update(&row)?;
    }
    Ok(acc.finish())
}

// --- joins -------------------------------------------------------------------

/// The per-outer-row machinery of a lookup join, resolved once per join
/// execution and shared between the streaming [`crate::op`] operator and
/// the PQ worker path ([`exec_lookup_join`]).
pub(crate) struct LookupProbe<'a> {
    node: &'a LookupJoinNode,
    table: std::sync::Arc<taurus_ndp::Table>,
    /// Columns the inner scan must deliver: requested outputs + predicate
    /// columns (the `on` references inner columns via inner_output only).
    fetch: Vec<usize>,
    /// Inner-side predicates remapped onto `fetch` positions.
    inner_preds: Vec<Expr>,
    /// `inner_output` positions within `fetch`.
    out_pos: Vec<usize>,
    /// When the chosen (secondary) index does not store every needed
    /// column, the lookup finds primary keys and fetches the full row from
    /// the primary index — InnoDB's non-covering-secondary path.
    covering: bool,
    pk_cols: Vec<usize>,
}

impl<'a> LookupProbe<'a> {
    pub(crate) fn new(node: &'a LookupJoinNode, ctx: &ExecContext<'_>) -> Result<LookupProbe<'a>> {
        let table = ctx.db.table(&node.table)?;
        let mut fetch: Vec<usize> = node.inner_output.clone();
        for p in &node.inner_predicate {
            fetch.extend(p.columns());
        }
        fetch.sort_unstable();
        fetch.dedup();
        let inner_preds: Vec<Expr> = node
            .inner_predicate
            .iter()
            .map(|e| remap_to_output(e, &fetch))
            .collect::<Result<_>>()?;
        let out_pos: Vec<usize> = node
            .inner_output
            .iter()
            // lint:allow(panic): fetch was built as a superset of inner_output above
            .map(|c| fetch.iter().position(|f| f == c).expect("subset"))
            .collect();
        let idx_stored = table.index(node.index).tree.def.stored_cols();
        let covering = fetch.iter().all(|c| idx_stored.contains(c));
        let pk_cols = table.schema.pk.clone();
        Ok(LookupProbe {
            node,
            table,
            fetch,
            inner_preds,
            out_pos,
            covering,
            pk_cols,
        })
    }

    /// Probe the inner index for one outer row, emitting every joined
    /// output row (join-type semantics included).
    pub(crate) fn probe(
        &self,
        ctx: &ExecContext<'_>,
        orow: &[Value],
        emit: &mut dyn FnMut(Row),
    ) -> Result<()> {
        let node = self.node;
        let key_vals: Vec<Value> = node
            .outer_key_cols
            .iter()
            .map(|&p| orow[p].clone())
            .collect();
        if key_vals.iter().any(|v| v.is_null()) {
            match node.join {
                JoinType::Anti => emit(orow.to_vec()),
                JoinType::LeftOuter => {
                    let mut r = orow.to_vec();
                    r.extend(std::iter::repeat_n(Value::Null, node.inner_output.len()));
                    emit(r);
                }
                _ => {}
            }
            return Ok(());
        }
        let tree = &self.table.index(node.index).tree;
        let range = ScanRange::point(tree.encode_search_key(&key_vals));
        let c = if self.covering {
            let spec = ScanSpec {
                index: node.index,
                range,
                ndp: None, // point lookups never qualify for NDP (§IV-B)
                output_cols: self.fetch.clone(),
            };
            let mut c = RowCollector {
                rows: Vec::new(),
                residual: self.inner_preds.clone(),
            };
            scan_ctx(ctx.db, &self.table, &spec, &ctx.view, ctx.qctx, &mut c)?;
            c
        } else {
            // Secondary hit -> primary row fetch, then filter.
            let spec = ScanSpec {
                index: node.index,
                range,
                ndp: None,
                output_cols: self.pk_cols.clone(),
            };
            let mut keys = RowCollector {
                rows: Vec::new(),
                residual: Vec::new(),
            };
            scan_ctx(ctx.db, &self.table, &spec, &ctx.view, ctx.qctx, &mut keys)?;
            let mut c = RowCollector {
                rows: Vec::new(),
                residual: Vec::new(),
            };
            'rows: for pk in keys.rows {
                if let Some(full) = ctx.db.lookup_row(&self.table, &ctx.view, &pk)? {
                    let projected: Row = self.fetch.iter().map(|&f| full[f].clone()).collect();
                    for p in &self.inner_preds {
                        if eval_pred(p, &projected)? != Some(true) {
                            continue 'rows;
                        }
                    }
                    c.rows.push(projected);
                }
            }
            c
        };
        let mut matched = false;
        for irow in &c.rows {
            let mut combined = orow.to_vec();
            combined.extend(self.out_pos.iter().map(|&p| irow[p].clone()));
            if let Some(on) = &node.on {
                if eval_pred(on, &combined)? != Some(true) {
                    continue;
                }
            }
            matched = true;
            match node.join {
                JoinType::Inner | JoinType::LeftOuter => emit(combined),
                JoinType::Semi | JoinType::Anti => break,
            }
        }
        match node.join {
            JoinType::Semi if matched => emit(orow.to_vec()),
            JoinType::Anti if !matched => emit(orow.to_vec()),
            JoinType::LeftOuter if !matched => {
                let mut r = orow.to_vec();
                r.extend(std::iter::repeat_n(Value::Null, node.inner_output.len()));
                emit(r);
            }
            _ => {}
        }
        Ok(())
    }
}

/// Run a lookup join over a materialized outer (PQ worker path, where the
/// outer scan is range-bounded per worker).
pub(crate) fn exec_lookup_join(
    node: &LookupJoinNode,
    ctx: &ExecContext<'_>,
    outer_range_override: Option<ScanRange>,
) -> Result<Vec<Row>> {
    let outer_rows = match (&*node.outer, outer_range_override) {
        (Plan::Scan(s), ro) => exec_scan(s, ctx, ro)?,
        (other, None) => execute(other, ctx)?,
        (_, Some(_)) => {
            return Err(Error::Internal(
                "partitioned LookupJoin requires a Scan outer".into(),
            ))
        }
    };
    let probe = LookupProbe::new(node, ctx)?;
    let mut out: Vec<Row> = Vec::new();
    for orow in outer_rows {
        probe.probe(ctx, &orow, &mut |row| out.push(row))?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use taurus_common::schema::{Column, TableSchema};
    use taurus_common::{ClusterConfig, DataType};

    fn tiny_db() -> (Arc<TaurusDb>, Arc<taurus_ndp::Table>) {
        let db = TaurusDb::new(ClusterConfig::small_for_tests());
        let schema = TableSchema::new(
            "t",
            vec![
                Column::new("a", DataType::BigInt),
                Column::new("b", DataType::BigInt),
                Column::new("c", DataType::BigInt),
            ],
            vec![0],
        );
        let t = db.create_table(schema, &[]).unwrap();
        db.bulk_load(
            &t,
            (0..20i64)
                .map(|i| vec![Value::Int(i), Value::Int(i * 2), Value::Int(i * 3)])
                .collect(),
        )
        .unwrap();
        (db, t)
    }

    /// A plan whose residual predicate references a column the scan does
    /// not deliver must surface as a structured `Error::Verify`, not a
    /// panic (executor threads turning malformed plans into aborts would
    /// take the whole process down). In debug builds the pre-execution
    /// gate rejects it before any operator opens; the per-site remap
    /// produces the same error in release builds.
    #[test]
    fn malformed_residual_column_is_an_error_not_a_panic() {
        let (db, _t) = tiny_db();
        let ctx = ExecContext::new(&db);
        let mut node = ScanNode::new("t", vec![0, 1]);
        node.predicate = vec![Expr::gt(Expr::col(2), Expr::int(5))]; // col 2 not in output
        let err = execute(&Plan::Scan(node), &ctx).unwrap_err();
        assert!(
            matches!(err, Error::Verify(ref m) if m.contains("not in scan output")),
            "{err:?}"
        );
    }

    /// Same contract for an AggScan whose GROUP BY column the scan does
    /// not deliver.
    #[test]
    fn malformed_group_column_is_an_error_not_a_panic() {
        let (db, _t) = tiny_db();
        let ctx = ExecContext::new(&db);
        let node = AggScanNode {
            scan: ScanNode::new("t", vec![0, 1]),
            group_cols: vec![2], // not in scan output
            aggs: Vec::new(),
        };
        let err = exec_agg_scan_partials(&node, &ctx, None).unwrap_err();
        assert!(
            matches!(err, Error::Verify(ref m) if m.contains("group column")),
            "{err:?}"
        );
        // And through the full pipeline entry point.
        let err = execute(&Plan::AggScan(node), &ctx).unwrap_err();
        assert!(matches!(err, Error::Verify(_)), "{err:?}");
    }
}
