//! The query-builder expression DSL: expression trees over *named*
//! columns.
//!
//! [`crate::QueryBuilder`] resolves these against the target table's
//! schema when the plan is built, so callers write `col("l_shipdate")`
//! instead of hard-coding column positions — unknown names surface as
//! [`Error::NameResolution`] before anything executes. The node set
//! mirrors the executor's [`Expr`]; lowering is a 1:1 structural map plus
//! name lookup.
//!
//! Literal ergonomics: the comparison/arithmetic methods take
//! `impl Into<QExpr>`, and `i64`, `&str`, [`Value`], [`Date32`] and
//! [`Dec`] all convert — `col("age").lt(40)` just works. `date("...")`
//! and `dec("...")` parse SQL literals (panicking on malformed program
//! text, exactly like [`Expr::date`]).

use taurus_common::schema::TableSchema;
use taurus_common::{Date32, Dec, Error, Result, Value};
use taurus_expr::ast::Expr;
// Re-exported: `QExpr` embeds these in its public variants.
pub use taurus_expr::ast::{ArithOp, CmpOp};

/// An unresolved expression over a table's columns (by name or position).
#[derive(Clone, Debug)]
pub enum QExpr {
    /// Column reference by name; resolved against the table schema.
    Col(String),
    /// Column reference by position (bounds-checked at build time).
    Nth(usize),
    Lit(Value),
    Cmp(CmpOp, Box<QExpr>, Box<QExpr>),
    And(Vec<QExpr>),
    Or(Vec<QExpr>),
    Not(Box<QExpr>),
    Arith(ArithOp, Box<QExpr>, Box<QExpr>),
    Neg(Box<QExpr>),
    Like {
        expr: Box<QExpr>,
        pattern: String,
        negated: bool,
    },
    InList {
        expr: Box<QExpr>,
        list: Vec<Value>,
        negated: bool,
    },
    Between {
        expr: Box<QExpr>,
        lo: Box<QExpr>,
        hi: Box<QExpr>,
    },
    IsNull {
        expr: Box<QExpr>,
        negated: bool,
    },
    ExtractYear(Box<QExpr>),
}

/// Reference a column by name.
pub fn col(name: &str) -> QExpr {
    QExpr::Col(name.to_string())
}

/// Reference a column by schema position.
pub fn nth(position: usize) -> QExpr {
    QExpr::Nth(position)
}

/// An explicit literal (when `Into<QExpr>` inference is not enough).
pub fn lit(v: impl Into<Value>) -> QExpr {
    QExpr::Lit(v.into())
}

/// A DATE literal, e.g. `date("1994-01-01")`. Panics on malformed program
/// text (literals are code, not data).
pub fn date(s: &str) -> QExpr {
    // lint:allow(panic): documented contract — literals are code, not data
    QExpr::Lit(Value::Date(Date32::parse(s).expect("literal date")))
}

/// A DECIMAL literal, e.g. `dec("0.05")`. Panics on malformed program text.
pub fn dec(s: &str) -> QExpr {
    // lint:allow(panic): documented contract — literals are code, not data
    QExpr::Lit(Value::Decimal(Dec::parse(s).expect("literal decimal")))
}

impl From<i64> for QExpr {
    fn from(v: i64) -> QExpr {
        QExpr::Lit(Value::Int(v))
    }
}

impl From<i32> for QExpr {
    fn from(v: i32) -> QExpr {
        QExpr::Lit(Value::Int(v as i64))
    }
}

impl From<f64> for QExpr {
    fn from(v: f64) -> QExpr {
        QExpr::Lit(Value::Double(v))
    }
}

impl From<&str> for QExpr {
    fn from(v: &str) -> QExpr {
        QExpr::Lit(Value::str(v))
    }
}

impl From<Value> for QExpr {
    fn from(v: Value) -> QExpr {
        QExpr::Lit(v)
    }
}

impl From<Date32> for QExpr {
    fn from(v: Date32) -> QExpr {
        QExpr::Lit(Value::Date(v))
    }
}

impl From<Dec> for QExpr {
    fn from(v: Dec) -> QExpr {
        QExpr::Lit(Value::Decimal(v))
    }
}

macro_rules! cmp_method {
    ($($name:ident => $op:expr),* $(,)?) => {$(
        pub fn $name(self, rhs: impl Into<QExpr>) -> QExpr {
            QExpr::Cmp($op, Box::new(self), Box::new(rhs.into()))
        }
    )*};
}

macro_rules! arith_method {
    ($($name:ident => $op:expr),* $(,)?) => {$(
        pub fn $name(self, rhs: impl Into<QExpr>) -> QExpr {
            QExpr::Arith($op, Box::new(self), Box::new(rhs.into()))
        }
    )*};
}

impl QExpr {
    cmp_method! {
        eq => CmpOp::Eq,
        ne => CmpOp::Ne,
        lt => CmpOp::Lt,
        le => CmpOp::Le,
        gt => CmpOp::Gt,
        ge => CmpOp::Ge,
    }

    arith_method! {
        add => ArithOp::Add,
        sub => ArithOp::Sub,
        mul => ArithOp::Mul,
        div => ArithOp::Div,
    }

    pub fn and(self, rhs: impl Into<QExpr>) -> QExpr {
        match self {
            QExpr::And(mut xs) => {
                xs.push(rhs.into());
                QExpr::And(xs)
            }
            other => QExpr::And(vec![other, rhs.into()]),
        }
    }

    pub fn or(self, rhs: impl Into<QExpr>) -> QExpr {
        match self {
            QExpr::Or(mut xs) => {
                xs.push(rhs.into());
                QExpr::Or(xs)
            }
            other => QExpr::Or(vec![other, rhs.into()]),
        }
    }

    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> QExpr {
        QExpr::Not(Box::new(self))
    }

    pub fn neg(self) -> QExpr {
        QExpr::Neg(Box::new(self))
    }

    pub fn like(self, pattern: &str) -> QExpr {
        QExpr::Like {
            expr: Box::new(self),
            pattern: pattern.to_string(),
            negated: false,
        }
    }

    pub fn not_like(self, pattern: &str) -> QExpr {
        QExpr::Like {
            expr: Box::new(self),
            pattern: pattern.to_string(),
            negated: true,
        }
    }

    pub fn in_list<V: Into<Value>>(self, list: impl IntoIterator<Item = V>) -> QExpr {
        QExpr::InList {
            expr: Box::new(self),
            list: list.into_iter().map(Into::into).collect(),
            negated: false,
        }
    }

    pub fn between(self, lo: impl Into<QExpr>, hi: impl Into<QExpr>) -> QExpr {
        QExpr::Between {
            expr: Box::new(self),
            lo: Box::new(lo.into()),
            hi: Box::new(hi.into()),
        }
    }

    pub fn is_null(self) -> QExpr {
        QExpr::IsNull {
            expr: Box::new(self),
            negated: false,
        }
    }

    pub fn is_not_null(self) -> QExpr {
        QExpr::IsNull {
            expr: Box::new(self),
            negated: true,
        }
    }

    pub fn extract_year(self) -> QExpr {
        QExpr::ExtractYear(Box::new(self))
    }

    /// Lower to an executor [`Expr`] with column references resolved
    /// against `schema` (positions into the table schema).
    pub fn resolve(&self, schema: &TableSchema) -> Result<Expr> {
        let rebox = |e: &QExpr| -> Result<Box<Expr>> { Ok(Box::new(e.resolve(schema)?)) };
        Ok(match self {
            QExpr::Col(name) => Expr::Col(resolve_column(schema, name)?),
            QExpr::Nth(i) => {
                check_position(schema, *i)?;
                Expr::Col(*i)
            }
            QExpr::Lit(v) => Expr::Lit(v.clone()),
            QExpr::Cmp(op, a, b) => Expr::Cmp(*op, rebox(a)?, rebox(b)?),
            QExpr::And(xs) => Expr::and(
                xs.iter()
                    .map(|x| x.resolve(schema))
                    .collect::<Result<_>>()?,
            ),
            QExpr::Or(xs) => Expr::or(
                xs.iter()
                    .map(|x| x.resolve(schema))
                    .collect::<Result<_>>()?,
            ),
            QExpr::Not(a) => Expr::Not(rebox(a)?),
            QExpr::Arith(op, a, b) => Expr::Arith(*op, rebox(a)?, rebox(b)?),
            QExpr::Neg(a) => Expr::Neg(rebox(a)?),
            QExpr::Like {
                expr,
                pattern,
                negated,
            } => Expr::Like {
                expr: rebox(expr)?,
                pattern: pattern.clone(),
                negated: *negated,
            },
            QExpr::InList {
                expr,
                list,
                negated,
            } => Expr::InList {
                expr: rebox(expr)?,
                list: list.clone(),
                negated: *negated,
            },
            QExpr::Between { expr, lo, hi } => Expr::Between {
                expr: rebox(expr)?,
                lo: rebox(lo)?,
                hi: rebox(hi)?,
            },
            QExpr::IsNull { expr, negated } => Expr::IsNull {
                expr: rebox(expr)?,
                negated: *negated,
            },
            QExpr::ExtractYear(a) => Expr::ExtractYear(rebox(a)?),
        })
    }
}

/// Resolve one column name against a schema.
pub(crate) fn resolve_column(schema: &TableSchema, name: &str) -> Result<usize> {
    schema
        .columns
        .iter()
        .position(|c| c.name == name)
        .ok_or_else(|| {
            Error::NameResolution(format!(
                "column `{name}` not found in table `{}` (columns: {})",
                schema.name,
                schema
                    .columns
                    .iter()
                    .map(|c| c.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        })
}

/// Bounds-check one positional column reference.
pub(crate) fn check_position(schema: &TableSchema, position: usize) -> Result<()> {
    if position >= schema.columns.len() {
        return Err(Error::NameResolution(format!(
            "column position {position} out of range for table `{}` ({} columns)",
            schema.name,
            schema.columns.len()
        )));
    }
    Ok(())
}

/// A column reference accepted by [`crate::QueryBuilder::select`] and
/// friends: either a name or a schema position.
#[derive(Clone, Debug)]
pub enum ColRef {
    Name(String),
    Position(usize),
}

impl ColRef {
    pub(crate) fn resolve(&self, schema: &TableSchema) -> Result<usize> {
        match self {
            ColRef::Name(n) => resolve_column(schema, n),
            ColRef::Position(p) => {
                check_position(schema, *p)?;
                Ok(*p)
            }
        }
    }
}

impl From<&str> for ColRef {
    fn from(v: &str) -> ColRef {
        ColRef::Name(v.to_string())
    }
}

impl From<String> for ColRef {
    fn from(v: String) -> ColRef {
        ColRef::Name(v)
    }
}

impl From<usize> for ColRef {
    fn from(v: usize) -> ColRef {
        ColRef::Position(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taurus_common::schema::Column;
    use taurus_common::DataType;

    fn schema() -> std::sync::Arc<TableSchema> {
        TableSchema::new(
            "t",
            vec![
                Column::new("a", DataType::BigInt),
                Column::new("b", DataType::Int),
            ],
            vec![0],
        )
    }

    #[test]
    fn resolves_names_and_positions() {
        let s = schema();
        let e = col("b").lt(5).and(nth(0).ge(1i64)).resolve(&s).unwrap();
        assert_eq!(e.columns(), vec![0, 1]);
        assert_eq!(e.to_string(), "((col1 < 5) AND (col0 >= 1))");
    }

    #[test]
    fn unknown_name_is_name_resolution_error() {
        let s = schema();
        let err = col("nope").eq(1i64).resolve(&s).unwrap_err();
        assert!(matches!(err, Error::NameResolution(_)), "{err}");
        let err = nth(9).eq(1i64).resolve(&s).unwrap_err();
        assert!(matches!(err, Error::NameResolution(_)), "{err}");
    }
}
