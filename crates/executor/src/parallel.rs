//! Parallel query (§VI): "a table or range scan can be range-partitioned
//! into many sub-scans that are processed in parallel by a pool of worker
//! threads", each sub-scan independently NDP-capable — giving, together
//! with SAL fan-out and Page Store worker pools, the paper's three levels
//! of parallelism.
//!
//! Worker threads are *compute-node* threads: their CPU accrues to
//! `compute_cpu_ns`, exactly like the paper's SQL-node accounting. Partial
//! aggregation follows §III: "AVG is computed by keeping SUM and COUNT
//! values per thread, and a separate 'leader' thread then aggregates the
//! partial values."
//!
//! Each worker's sub-scan delivers batch-at-a-time into the shared
//! batch-native consumers (`RowCollector` / `StreamAggConsumer`), so the
//! per-row hand-off cost inside a worker is the same amortized cost as a
//! serial scan; the leader then merges whole per-worker results. In the
//! operator pipeline this whole protocol sits behind the `Gather`
//! operator — the leader merge is PQ's inherent pipeline breaker, and
//! the merged result re-emits in batches.

use taurus_common::metrics::CpuGuard;
use taurus_common::schema::Row;
use taurus_common::{Error, Result};
use taurus_ndp::{partition_ranges, ScanRange};
use taurus_optimizer::plan::{ExchangeNode, Plan};

use crate::exec::{
    exec_agg_scan_partials, exec_hash_agg_partials, exec_lookup_join, exec_scan,
    finalize_agg_groups, merge_partial_groups, AggPartials, ExecContext,
};

/// Partition the scan underneath `child` and run one worker per range.
pub(crate) fn exec_exchange(node: &ExchangeNode, ctx: &ExecContext<'_>) -> Result<Vec<Row>> {
    let degree = node.degree.max(1);
    // Locate the partitionable scan.
    let scan_node = match &*node.child {
        Plan::Scan(s) => s,
        Plan::AggScan(a) => &a.scan,
        Plan::HashAgg(h) => match &*h.input {
            Plan::Scan(s) => s,
            _ => {
                return Err(Error::InvalidState(
                    "Exchange(HashAgg) requires a Scan input".into(),
                ))
            }
        },
        Plan::LookupJoin(j) => match &*j.outer {
            Plan::Scan(s) => s,
            _ => {
                return Err(Error::InvalidState(
                    "Exchange(LookupJoin) requires a Scan outer".into(),
                ))
            }
        },
        other => {
            return Err(Error::InvalidState(format!(
                "Exchange cannot partition {other:?}"
            )))
        }
    };
    let table = ctx.db.table(&scan_node.table)?;
    let tree = &table.index(scan_node.index).tree;
    let enc = |b: &Option<(Vec<taurus_common::Value>, bool)>| {
        b.as_ref()
            .map(|(vals, inc)| (tree.encode_search_key(vals), *inc))
    };
    let base_range = ScanRange {
        lower: enc(&scan_node.range.lower),
        upper: enc(&scan_node.range.upper),
    };
    let parts = partition_ranges(&table, scan_node.index, &base_range, degree)?;

    enum WorkerOut {
        Rows(Vec<Row>),
        Partials(AggPartials),
    }

    let results: Vec<Result<WorkerOut>> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = parts
            .iter()
            .map(|range| {
                let range = range.clone();
                let child = &node.child;
                let db = ctx.db;
                let view = ctx.view.clone();
                let qctx = ctx.qctx;
                s.spawn(move |_| -> Result<WorkerOut> {
                    // PQ workers are compute threads (SQL-node CPU).
                    let _cpu = CpuGuard::new(&db.metrics().compute_cpu_ns);
                    let wctx = ExecContext { db, view, qctx };
                    match &**child {
                        Plan::Scan(sn) => Ok(WorkerOut::Rows(exec_scan(sn, &wctx, Some(range))?)),
                        Plan::AggScan(a) => Ok(WorkerOut::Partials(exec_agg_scan_partials(
                            a,
                            &wctx,
                            Some(range),
                        )?)),
                        Plan::HashAgg(h) => Ok(WorkerOut::Partials(exec_hash_agg_partials(
                            h,
                            &wctx,
                            Some(range),
                        )?)),
                        Plan::LookupJoin(j) => {
                            Ok(WorkerOut::Rows(exec_lookup_join(j, &wctx, Some(range))?))
                        }
                        // lint:allow(panic): plan shape validated before workers spawn
                        _ => unreachable!("validated above"),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            // lint:allow(panic): re-raise a worker panic on the leader; the stream
            // producer catch_unwind above turns it into a query error
            .map(|h| h.join().expect("pq worker panicked"))
            .collect()
    })
    // lint:allow(panic): same re-raise as the worker join above
    .expect("pq scope");

    // Leader merge: collect every worker's output first (surfacing the
    // first error), then concatenate rows with one exact reservation.
    let mut outs = Vec::with_capacity(results.len());
    for r in results {
        outs.push(r?);
    }
    let total_rows: usize = outs
        .iter()
        .map(|o| match o {
            WorkerOut::Rows(rs) => rs.len(),
            WorkerOut::Partials(_) => 0,
        })
        .sum();
    let mut rows: Vec<Row> = Vec::with_capacity(total_rows);
    let mut partials: Vec<AggPartials> = Vec::new();
    let mut saw_partials = false;
    for o in outs {
        match o {
            WorkerOut::Rows(mut rs) => rows.append(&mut rs),
            WorkerOut::Partials(p) => {
                saw_partials = true;
                partials.push(p);
            }
        }
    }
    if saw_partials {
        let merged = merge_partial_groups(partials)?;
        // A scalar aggregate may produce one group per worker with the
        // same (empty) key — merge_partial_groups already folded them.
        finalize_agg_groups(merged)
    } else {
        Ok(rows)
    }
}
