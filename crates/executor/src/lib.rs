//! The batch-native pull executor, parallel query (§III, §VI), and the
//! public query facade.
//!
//! * [`session`] — the **public API**: [`Session`] owns the MVCC read
//!   view; [`QueryBuilder`] resolves names, builds the plan, and always
//!   routes it through the optimizer's NDP post-processing pass;
//!   [`RowStream`] streams *any* plan's results batch-at-a-time.
//! * [`dsl`] — named-column expression trees the builder resolves.
//! * [`op`] — the physical operator pipeline: every [`Plan`] variant
//!   lowers to an [`op::Operator`] with the
//!   `open()/next_batch()/close()` pull contract; batches flow between
//!   operators, pipeline breakers materialize only at their breaker, and
//!   `LIMIT`/dropped streams cancel producing scans through channel
//!   backpressure.
//! * [`exec`] — shared execution machinery (NDP-aware scan specs and
//!   consumers, stream/hash aggregation with partial-merge support,
//!   lookup probing) plus `execute(plan, ctx)`, the materializing
//!   escape hatch implemented *on top of* the pipeline (the TPC-H
//!   builders and parity tests use it).
//! * [`parallel`] — PQ: range partitioning, per-worker partial
//!   aggregation, leader merge (surfaced as the pipeline's `Gather`).

pub mod dsl;
pub mod exec;
pub mod op;
pub mod parallel;
pub mod session;
pub mod stream;

pub use exec::{execute, ExecContext};
pub use op::{lower, BoxOp, Operator};
pub use session::{Agg, Explained, QueryBuilder, Session};
pub use stream::RowStream;

use taurus_common::metrics::CpuGuard;
use taurus_common::schema::Row;
use taurus_common::{MetricsSnapshot, Result};
use taurus_ndp::TaurusDb;
use taurus_optimizer::plan::Plan;

/// A query's results plus the measurements the paper's figures are made of.
#[derive(Clone, Debug)]
pub struct QueryRun {
    pub rows: Vec<Row>,
    pub wall: std::time::Duration,
    /// Metrics delta over the run (network bytes, SQL-node CPU, pages...).
    pub delta: MetricsSnapshot,
}

/// Execute a plan, measuring wall time, SQL-node CPU and network traffic.
pub fn run_query(db: &TaurusDb, plan: &Plan) -> Result<QueryRun> {
    let before = db.metrics().snapshot();
    let t0 = std::time::Instant::now();
    let rows = {
        let _cpu = CpuGuard::new(&db.metrics().compute_cpu_ns);
        let ctx = ExecContext::new(db);
        execute(plan, &ctx)?
    };
    let wall = t0.elapsed();
    let delta = db.metrics().snapshot().since(&before);
    Ok(QueryRun { rows, wall, delta })
}
