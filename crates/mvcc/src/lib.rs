//! Multi-version concurrency control: transaction ids, read views, and the
//! compute-node undo log.
//!
//! The NDP-relevant split (§IV-D, §V-A): Page Stores receive only a single
//! *low-watermark* transaction id inside the descriptor ("a complete list
//! of active transactions is not included to reduce CPU overhead in Page
//! Stores"). Records below the watermark are definitely visible; everything
//! else is *ambiguous* and must be shipped back unmodified, because only
//! the compute node holds the full read view and the undo chains needed to
//! reconstruct older versions.

pub mod trx;
pub mod undo;

pub use trx::{ReadView, TrxManager};
pub use undo::{UndoLog, UndoRecord};

/// The bootstrap/loader transaction id: data loaded at id 1 is visible to
/// every read view.
pub const BOOTSTRAP_TRX: taurus_common::TrxId = 1;
