//! Transaction manager and read views (InnoDB-style).

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use taurus_common::TrxId;

/// Allocates transaction ids and tracks the active set.
pub struct TrxManager {
    next_id: AtomicU64,
    active: Mutex<BTreeSet<TrxId>>,
}

impl Default for TrxManager {
    fn default() -> Self {
        Self::new()
    }
}

impl TrxManager {
    pub fn new() -> TrxManager {
        // Id 1 is the bootstrap loader (always committed); real
        // transactions start at 2.
        TrxManager {
            next_id: AtomicU64::new(2),
            active: Mutex::new(BTreeSet::new()),
        }
    }

    /// Start a transaction: allocate the next id and mark it active.
    pub fn begin(&self) -> TrxId {
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        self.active.lock().insert(id);
        id
    }

    /// Commit (or finish rolling back): remove from the active set.
    pub fn end(&self, id: TrxId) {
        self.active.lock().remove(&id);
    }

    pub fn is_active(&self, id: TrxId) -> bool {
        self.active.lock().contains(&id)
    }

    /// Build a consistent read view for `creator` (0 for an autonomous
    /// read-only snapshot).
    pub fn read_view(&self, creator: TrxId) -> ReadView {
        let active = self.active.lock();
        let low_limit = self.next_id.load(Ordering::SeqCst);
        let ids: Vec<TrxId> = active.iter().copied().filter(|&id| id != creator).collect();
        let up_limit = ids.first().copied().unwrap_or(low_limit);
        ReadView {
            low_limit,
            up_limit,
            active: ids,
            creator,
        }
    }

    /// Oldest id any *future* read view could consider invisible; undo
    /// entries older than the view horizon of every active transaction can
    /// be purged.
    pub fn oldest_active(&self) -> TrxId {
        self.active
            .lock()
            .first()
            .copied()
            .unwrap_or_else(|| self.next_id.load(Ordering::SeqCst))
    }
}

/// A consistent snapshot: which transaction ids are visible.
#[derive(Clone, Debug, PartialEq)]
pub struct ReadView {
    /// Ids `>= low_limit` started after the view: invisible.
    pub low_limit: TrxId,
    /// Ids `< up_limit` committed before any active transaction: visible.
    pub up_limit: TrxId,
    /// Ids active at view creation (excluding the creator): invisible.
    pub active: Vec<TrxId>,
    /// The transaction this view belongs to (sees its own writes).
    pub creator: TrxId,
}

impl ReadView {
    /// Full visibility check — only possible on the compute node.
    pub fn visible(&self, trx_id: TrxId) -> bool {
        if trx_id == self.creator {
            return true;
        }
        if trx_id < self.up_limit {
            return true;
        }
        if trx_id >= self.low_limit {
            return false;
        }
        self.active.binary_search(&trx_id).is_err()
    }

    /// The single transaction id shipped to Page Stores in the NDP
    /// descriptor (§IV-C1): records with `trx_id <` this are certainly
    /// visible; the rest are ambiguous. Conservative by construction —
    /// even the creator's own writes are "ambiguous" to a Page Store and
    /// get resolved on the compute node.
    pub fn low_watermark(&self) -> TrxId {
        self.up_limit
    }

    /// A view that sees everything (used by bulk loaders / DDL).
    pub fn all_visible() -> ReadView {
        ReadView {
            low_limit: TrxId::MAX,
            up_limit: TrxId::MAX,
            active: Vec::new(),
            creator: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_monotonic_and_active_tracked() {
        let tm = TrxManager::new();
        let a = tm.begin();
        let b = tm.begin();
        assert!(b > a);
        assert!(tm.is_active(a) && tm.is_active(b));
        tm.end(a);
        assert!(!tm.is_active(a));
    }

    #[test]
    fn read_view_visibility_rules() {
        let tm = TrxManager::new();
        let t_old = tm.begin(); // 2
        tm.end(t_old); // committed before the view
        let t_active = tm.begin(); // 3, still running
        let me = tm.begin(); // 4
        let view = tm.read_view(me);
        assert!(view.visible(crate::BOOTSTRAP_TRX));
        assert!(view.visible(t_old), "committed-before must be visible");
        assert!(
            !view.visible(t_active),
            "concurrent active must be invisible"
        );
        assert!(view.visible(me), "own writes visible");
        let t_future = tm.begin();
        assert!(!view.visible(t_future), "started-after must be invisible");
    }

    #[test]
    fn low_watermark_is_conservative() {
        let tm = TrxManager::new();
        let t1 = tm.begin();
        let me = tm.begin();
        let view = tm.read_view(me);
        let wm = view.low_watermark();
        // Everything below the watermark must be visible under the full rules.
        for id in 1..wm {
            assert!(
                view.visible(id),
                "id {id} below watermark {wm} but invisible"
            );
        }
        // The active transaction must NOT be below the watermark.
        assert!(t1 >= wm);
        tm.end(t1);
        tm.end(me);
    }

    #[test]
    fn watermark_with_no_active_transactions() {
        let tm = TrxManager::new();
        let view = tm.read_view(0);
        // Everything allocated so far is visible; watermark = next id.
        assert_eq!(view.low_watermark(), view.up_limit);
        assert!(view.visible(1));
    }

    #[test]
    fn all_visible_view() {
        let v = ReadView::all_visible();
        assert!(v.visible(1));
        assert!(v.visible(1 << 40));
    }

    #[test]
    fn oldest_active_drives_purge_horizon() {
        let tm = TrxManager::new();
        let a = tm.begin();
        let _b = tm.begin();
        assert_eq!(tm.oldest_active(), a);
        tm.end(a);
        assert_eq!(tm.oldest_active(), _b);
    }
}
