//! The compute-node undo log.
//!
//! Page Stores cannot traverse undo chains ("the required undo records may
//! reside in other Page Stores" — §IV-A); in this reproduction the same
//! boundary holds because undo lives here, on the compute node, keyed by
//! (space, primary key). Every write pushes the *previous* record image;
//! version reconstruction walks the chain newest→oldest until it reaches an
//! image whose embedded trx_id is visible to the read view.

use std::collections::HashMap;

use parking_lot::Mutex;
use taurus_common::{SpaceId, TrxId};

use crate::trx::ReadView;

/// One undo entry: the record image *before* the write (None = the write
/// was the row's insertion).
#[derive(Clone, Debug, PartialEq)]
pub struct UndoRecord {
    /// The transaction that performed the write this entry undoes.
    pub writer: TrxId,
    /// Previous record image (full record bytes, including header);
    /// `None` if the row did not exist before.
    pub prev_image: Option<Vec<u8>>,
}

type RowKey = (u32, Vec<u8>);

/// Undo chains for all rows, plus a per-transaction index for rollback.
#[derive(Default)]
pub struct UndoLog {
    chains: Mutex<HashMap<RowKey, Vec<UndoRecord>>>,
    by_trx: Mutex<HashMap<TrxId, Vec<RowKey>>>,
}

/// Extract the writer trx id embedded in a record image (header offset 5).
fn image_trx(image: &[u8]) -> TrxId {
    u64::from_le_bytes(image[5..13].try_into().expect("record image too short"))
}

impl UndoLog {
    pub fn new() -> UndoLog {
        UndoLog::default()
    }

    /// Record an undo entry for a write by `writer` to `key` in `space`.
    pub fn push(&self, space: SpaceId, key: &[u8], writer: TrxId, prev_image: Option<Vec<u8>>) {
        let k = (space.0, key.to_vec());
        self.chains
            .lock()
            .entry(k.clone())
            .or_default()
            .push(UndoRecord { writer, prev_image });
        self.by_trx.lock().entry(writer).or_default().push(k);
    }

    /// Reconstruct the version of a row visible to `view`, starting from
    /// the current on-page image. Returns:
    /// * `Some(image)` — the visible version (may be `current` itself);
    /// * `None` — no version is visible (row created after the view).
    ///
    /// This is the InnoDB-side handling of *ambiguous* records returned by
    /// Page Stores (§IV-D).
    pub fn reconstruct(
        &self,
        space: SpaceId,
        key: &[u8],
        current: &[u8],
        view: &ReadView,
    ) -> Option<Vec<u8>> {
        if view.visible(image_trx(current)) {
            return Some(current.to_vec());
        }
        let chains = self.chains.lock();
        let chain = chains.get(&(space.0, key.to_vec()))?;
        // Walk newest -> oldest. chain[i].prev_image is the image before
        // the i-th write; the image after write i carries writer's trx id.
        for entry in chain.iter().rev() {
            match &entry.prev_image {
                None => return None, // reached the insertion; row invisible
                Some(img) => {
                    if view.visible(image_trx(img)) {
                        return Some(img.clone());
                    }
                }
            }
        }
        None
    }

    /// Pop all undo entries of `trx` for rollback, newest first. The caller
    /// (engine) re-applies the previous images to the tree.
    pub fn take_for_rollback(&self, trx: TrxId) -> Vec<(SpaceId, Vec<u8>, UndoRecord)> {
        let keys = self.by_trx.lock().remove(&trx).unwrap_or_default();
        let mut chains = self.chains.lock();
        let mut out = Vec::new();
        for (space, key) in keys.into_iter().rev() {
            if let Some(chain) = chains.get_mut(&(space, key.clone())) {
                // The newest entry by this trx must be at the tail (a trx's
                // writes to one row are sequential).
                if let Some(pos) = chain.iter().rposition(|e| e.writer == trx) {
                    let entry = chain.remove(pos);
                    out.push((SpaceId(space), key, entry));
                }
            }
        }
        out
    }

    /// Drop chains no future view can need: every entry's writer committed
    /// before `horizon` *and* the current row versions (trx < horizon) are
    /// visible to everyone.
    pub fn purge(&self, horizon: TrxId) {
        let mut chains = self.chains.lock();
        chains.retain(|_, chain| {
            chain.retain(|e| e.writer >= horizon);
            !chain.is_empty()
        });
    }

    pub fn chain_len(&self, space: SpaceId, key: &[u8]) -> usize {
        self.chains
            .lock()
            .get(&(space.0, key.to_vec()))
            .map_or(0, |c| c.len())
    }

    pub fn total_entries(&self) -> usize {
        self.chains.lock().values().map(|c| c.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trx::TrxManager;

    /// Build a minimal record image: 13-byte header with trx at offset 5,
    /// one payload byte identifying the version.
    fn image(trx: TrxId, version: u8) -> Vec<u8> {
        let mut b = vec![0u8; 14];
        b[5..13].copy_from_slice(&trx.to_le_bytes());
        b[13] = version;
        b
    }

    #[test]
    fn reconstruct_walks_to_visible_version() {
        let tm = TrxManager::new();
        let undo = UndoLog::new();
        let sp = SpaceId(1);
        let key = b"k1";

        let t1 = tm.begin(); // insert
        undo.push(sp, key, t1, None);
        tm.end(t1);

        let reader = tm.begin();
        let view = tm.read_view(reader); // sees t1 only

        let t2 = tm.begin(); // concurrent update, invisible to reader
        undo.push(sp, key, t2, Some(image(t1, 1)));
        let current = image(t2, 2);

        let got = undo.reconstruct(sp, key, &current, &view).unwrap();
        assert_eq!(got, image(t1, 1), "must rebuild the t1 version");

        // A fresh view (after t2 commits) sees the current image directly.
        tm.end(t2);
        tm.end(reader);
        let v2 = tm.read_view(0);
        assert_eq!(undo.reconstruct(sp, key, &current, &v2).unwrap(), current);
    }

    #[test]
    fn row_created_after_view_is_absent() {
        let tm = TrxManager::new();
        let undo = UndoLog::new();
        let sp = SpaceId(1);
        let reader = tm.begin();
        let view = tm.read_view(reader);
        let t2 = tm.begin();
        undo.push(sp, b"new", t2, None);
        let current = image(t2, 1);
        assert_eq!(undo.reconstruct(sp, b"new", &current, &view), None);
    }

    #[test]
    fn multi_version_chain_selects_correct_snapshot() {
        let tm = TrxManager::new();
        let undo = UndoLog::new();
        let sp = SpaceId(1);
        let key = b"row";
        // v1 by t1, v2 by t2, v3 by t3, each committed in turn, with a
        // reader snapshotted between t2 and t3.
        let t1 = tm.begin();
        undo.push(sp, key, t1, None);
        tm.end(t1);
        let t2 = tm.begin();
        undo.push(sp, key, t2, Some(image(t1, 1)));
        tm.end(t2);
        let reader = tm.begin();
        let view = tm.read_view(reader);
        let t3 = tm.begin();
        undo.push(sp, key, t3, Some(image(t2, 2)));
        let current = image(t3, 3);
        assert_eq!(
            undo.reconstruct(sp, key, &current, &view).unwrap(),
            image(t2, 2)
        );
    }

    #[test]
    fn rollback_returns_entries_newest_first() {
        let tm = TrxManager::new();
        let undo = UndoLog::new();
        let sp = SpaceId(2);
        let t = tm.begin();
        undo.push(sp, b"a", t, None);
        undo.push(sp, b"b", t, Some(image(1, 0)));
        let entries = undo.take_for_rollback(t);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].1, b"b".to_vec());
        assert_eq!(entries[1].1, b"a".to_vec());
        assert_eq!(undo.total_entries(), 0);
    }

    #[test]
    fn purge_drops_old_entries() {
        let undo = UndoLog::new();
        let sp = SpaceId(1);
        undo.push(sp, b"x", 5, None);
        undo.push(sp, b"x", 9, Some(image(5, 1)));
        undo.push(sp, b"y", 3, None);
        undo.purge(6);
        assert_eq!(undo.chain_len(sp, b"x"), 1);
        assert_eq!(undo.chain_len(sp, b"y"), 0);
    }
}
