//! Fuzz leg for the SQL frontend (PR 10 satellite):
//!
//! * the lexer/parser never panic, on arbitrary byte soup, on random
//!   streams of valid SQL tokens, and on mutated TPC-H query texts —
//!   every failure is a positioned `Error::Parse`;
//! * whatever *does* parse round-trips: `parse → print → parse` yields
//!   the same AST, and the second print is byte-identical (printing is a
//!   fixed point);
//! * the binder never panics either — mutated TPC-H texts against a live
//!   catalog either bind or fail with `Error::Parse`.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;
use taurus_common::config::ClusterConfig;
use taurus_common::Error;
use taurus_executor::Session;
use taurus_ndp::TaurusDb;
use taurus_sql::{parse, tpch_sql};

fn db() -> &'static Arc<TaurusDb> {
    static DB: OnceLock<Arc<TaurusDb>> = OnceLock::new();
    DB.get_or_init(|| {
        let mut cfg = ClusterConfig::default();
        cfg.buffer_pool_pages = 256;
        let db = TaurusDb::new(cfg);
        taurus_tpch::load(&db, 0.001, 7).unwrap();
        db
    })
}

/// Parse must return — never panic — and errors must be positioned.
fn parse_never_panics(text: &str) {
    match parse(text) {
        Ok(stmt) => {
            // Fixed point: print → parse → print must converge byte-wise.
            // (AST equality would be too strict — every node carries its
            // source position, which legitimately moves when reprinted.)
            let printed = stmt.to_string();
            let reparsed = parse(&printed)
                .unwrap_or_else(|e| panic!("printed SQL failed to re-parse: {e}\n{printed}"));
            assert_eq!(printed, reparsed.to_string(), "printer not a fixed point");
        }
        Err(Error::Parse(msg)) => {
            assert!(msg.starts_with("line "), "unpositioned diagnostic: {msg}");
        }
        Err(other) => panic!("non-Parse error from parse(): {other:?}"),
    }
}

/// Tokens that commonly appear in the supported grammar, to build
/// random "token soup" that stresses the parser well past what byte
/// soup reaches.
const VOCAB: &[&str] = &[
    "select",
    "from",
    "where",
    "group",
    "by",
    "having",
    "order",
    "limit",
    "as",
    "join",
    "left",
    "inner",
    "on",
    "and",
    "or",
    "not",
    "in",
    "like",
    "between",
    "is",
    "null",
    "case",
    "when",
    "then",
    "else",
    "end",
    "exists",
    "asc",
    "desc",
    "force",
    "index",
    "explain",
    "distinct",
    "count",
    "sum",
    "min",
    "max",
    "avg",
    "extract",
    "year",
    "substring",
    "for",
    "date",
    "*",
    "(",
    ")",
    ",",
    ".",
    "=",
    "<>",
    "<",
    "<=",
    ">",
    ">=",
    "+",
    "-",
    "/",
    "0",
    "1",
    "42",
    "0.05",
    "'str'",
    "lineitem",
    "l_orderkey",
    "c_name",
    "t1",
    "x",
];

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..Default::default() })]

    #[test]
    fn byte_soup_never_panics(text in "[ -~\\n\\t]{0,80}") {
        parse_never_panics(&text);
    }

    #[test]
    fn token_soup_never_panics(picks in proptest::collection::vec(0usize..VOCAB.len(), 0..40)) {
        let text = picks.iter().map(|&i| VOCAB[i]).collect::<Vec<_>>().join(" ");
        parse_never_panics(&text);
    }

    #[test]
    fn mutated_tpch_never_panics(
        q in 0usize..22,
        mode in 0usize..3,
        at in 0usize..1000,
        with in 0usize..VOCAB.len(),
    ) {
        let (_, text) = tpch_sql::all()[q];
        let bytes: Vec<char> = text.chars().collect();
        let at = at % bytes.len().max(1);
        let mutated: String = match mode {
            // Truncate.
            0 => bytes[..at].iter().collect(),
            // Delete one char.
            1 => bytes
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != at)
                .map(|(_, c)| c)
                .collect(),
            // Splice a random token in.
            _ => {
                let mut s: String = bytes[..at].iter().collect();
                s.push(' ');
                s.push_str(VOCAB[with]);
                s.push(' ');
                s.extend(&bytes[at..]);
                s
            }
        };
        parse_never_panics(&mutated);
        // The binder must also stay panic-free: whatever parses either
        // binds or reports a positioned diagnostic.
        if let Ok(taurus_sql::Statement::Select(sel)) = parse(&mutated) {
            match taurus_sql::bind(&Session::new(db()), &sel) {
                Ok(_) => {}
                Err(Error::Parse(msg)) => {
                    prop_assert!(msg.starts_with("line "), "unpositioned: {}", msg);
                }
                // Scalar subqueries execute during binding; their typed
                // runtime failures surface as other error kinds.
                Err(_) => {}
            }
        }
    }
}

#[test]
fn tpch_texts_parse_and_roundtrip() {
    for (name, text) in tpch_sql::all() {
        let stmt = parse(text).unwrap_or_else(|e| panic!("{name} does not parse: {e}"));
        let printed = stmt.to_string();
        let reparsed = parse(&printed).unwrap_or_else(|e| panic!("{name} reprint broke: {e}"));
        assert_eq!(
            printed,
            reparsed.to_string(),
            "{name}: printer not a fixed point"
        );
    }
}
